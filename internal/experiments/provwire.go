package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"time"

	"lva/internal/obs/prov"
)

// Provenance wiring: every engine path that produces a design-point
// result (counter scheduler, direct Run* tasks, sweep points, stream
// recordings, phase-2 runs) reports to the prov ledger through the
// helpers here. The contract mirrors the timeline seam: provBegin does
// one atomic load, and with no active ledger nothing below it reads the
// clock, builds a string, or allocates — pinned by TestProvOffIsFree.

// GoldenCodeVersion stamps provenance records with the generation of
// figure-producing code that minted them. Bump it whenever
// testdata/figure_hashes.json is regenerated: a manifest whose records
// carry another stamp was produced by code whose figures may differ.
const GoldenCodeVersion = "figures-2026-08-pr8"

// EnableProvenance installs a fresh provenance ledger stamped with
// GoldenCodeVersion. Call before the first run so every evaluation of
// the process is covered; WriteProvManifest renders the result.
func EnableProvenance() { prov.Enable(GoldenCodeVersion) }

// DisableProvenance ends the provenance session and returns the final
// ledger (nil when none was active).
func DisableProvenance() *prov.Ledger { return prov.Disable() }

// ProvCounters assembles the deterministic engine counters the manifest
// reconciles against: the trace-store accounting plus the run-cache
// lookup count.
func ProvCounters() prov.Counters {
	t := TraceCounters()
	return prov.Counters{
		Recordings:      t.Recordings,
		FooterPoints:    t.HeaderHits,
		ReplayedPoints:  t.ReplayPoints + t.ReplayHits,
		ExecPoints:      t.ExecPoints,
		RunCacheLookups: eng().cacheLookups.Value(),
	}
}

// WriteProvManifest renders the active provenance ledger as a
// byte-stable NDJSON manifest, reconciled against ProvCounters.
func WriteProvManifest(w io.Writer) error {
	return prov.WriteManifest(w, prov.Active(), ProvCounters())
}

// provFP is the canonical short fingerprint of a design-point key — the
// same identity the run cache deduplicates on, hashed like streamFile
// hashes stream keys.
func provFP(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8])
}

// provFlowID names the Perfetto flow that links a recording span to the
// spans that later consume the stream.
func provFlowID(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Route justifications. Constants so identical records aggregate and the
// manifest stays byte-stable.
const (
	provWhyColdRecord   = "no recording on disk; captured annotated stream"
	provWhyReRecord     = "existing recording unreadable; re-recorded"
	provWhyPrecise      = "design point is the precise recording run"
	provWhyBaseline     = "config equals Table II baseline; counters ride the recorded footer"
	provWhyFeedbackFree = "FeedbackFree=true: annotated loads never observe approximator output"
	provWhyFeedback     = "LVA attachment on feedback kernel; values depend on approximator state"
	provWhyLVP          = "LVP never hands predicted values to the kernel"
	provWhyPrefetch     = "prefetcher never alters load values"
	provWhyNoStream     = "no recording available; executed"
	provWhyReplayFail   = "replay failed; executed"
	provWhyReplayOff    = "replay disabled; executed through the run cache"
	provWhyOutputRow    = "output-error row: kernel arithmetic required"
	provWhySweepExec    = "sweep point needs output error or feedback kernel; executed"
	provWhyStream       = "phase-2 model streams the precise recording"
	provWhyCapture      = "no recording available; replayed in-memory capture"
)

// Span stage paths, shared so records allocate no per-emit slices.
var (
	provStagesFooter      = []string{"schedule", "tracestore", "footer", "figure-append"}
	provStagesReplay      = []string{"schedule", "tracestore", "replay", "figure-append"}
	provStagesCtrExec     = []string{"schedule", "tracestore", "exec", "figure-append"}
	provStagesRunExec     = []string{"schedule", "runcache", "exec", "figure-append"}
	provStagesRecord      = []string{"schedule", "runcache", "capture-stream"}
	provStagesSweepReplay = []string{"schedule", "tracestore", "replay", "sweep-append"}
	provStagesSweepExec   = []string{"schedule", "runcache", "exec", "sweep-append"}
	provStagesStream      = []string{"schedule", "tracestore", "stream", "figure-append"}
)

// provCtx anchors one serving stage: the active ledger (nil = off) plus
// the stage's wall-clock start and gate queue wait. provBegin is the
// single seam load; when it returns an off context every later method is
// a nil check and nothing else.
type provCtx struct {
	l      *prov.Ledger
	start  time.Time
	queued time.Duration
}

func provBegin(queued time.Duration) provCtx {
	l := prov.Active()
	if l == nil {
		return provCtx{}
	}
	return provCtx{l: l, start: time.Now(), queued: queued}
}

func (p provCtx) on() bool { return p.l != nil }

// point emits the provenance record of one design-point evaluation.
// st supplies the consumed (or produced) artifact identity; served marks
// scheduling-dependent memo-vs-fresh detail ("" when not applicable).
func (p provCtx) point(fig, label, sched string, route prov.Route, counter, why, key string,
	st *gridStream, stages []string, served string) {
	if p.l == nil {
		return
	}
	rec := prov.Record{
		Figure:        fig,
		Label:         label,
		Scheduler:     sched,
		Route:         route,
		Counter:       counter,
		Fingerprint:   provFP(key),
		Justification: why,
		Stages:        stages,
	}
	if st != nil {
		rec.Artifact, rec.ArtifactSHA256, rec.ArtifactBytes = st.artifact()
	}
	p.l.Emit(rec, prov.Cost{
		WallUS:  time.Since(p.start).Microseconds(),
		QueueUS: p.queued.Microseconds(),
		Served:  served,
	})
}

// stage closes the pid-4 timeline span of one serving stage. flowPh/"s"
// opens a flow arrow (recording spans), "f" lands one (consuming spans);
// flowKey is the stream cache key both ends hash into the flow id.
func (p provCtx) stage(name, flowPh, flowKey string, args map[string]any) {
	if p.l == nil {
		return
	}
	tl := timeline.Load()
	if tl == nil {
		return
	}
	tid := tl.nextProvTid()
	tl.span(tlPidProv, tid, name, "prov", p.start, args)
	if flowKey != "" {
		tl.flow(flowPh, provFlowID(flowKey), tlPidProv, tid, p.start)
	}
}

// artifact identifies the on-disk recording behind a stream cell: file
// basename (directory-independent), a SHA-256 prefix of the file bytes,
// and its size. The hash is computed at most once per cell and process;
// the LVAG encoding is deterministic, so the triple is a function of
// (workload, seed) alone and safe for the byte-stable manifest.
func (st *gridStream) artifact() (name, sum string, size int64) {
	if st == nil || st.path == "" {
		return "", "", 0
	}
	st.artOnce.Do(func() {
		f, err := os.Open(st.path)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		n, err := io.Copy(h, f)
		if err != nil {
			return
		}
		st.artHash = hex.EncodeToString(h.Sum(nil)[:8])
		st.artSize = n
	})
	if st.artHash == "" {
		return "", "", 0
	}
	return filepath.Base(st.path), st.artHash, st.artSize
}
