// Package coherence implements the MSI directory protocol used by the
// full-system simulator (Table II: MSI over a distributed shared L2). The
// directory lives at each block's L2 home node and tracks which private L1s
// hold the block and in what state; the timing simulator asks it what
// messages a load or store implies and charges the corresponding NoC and
// cache events.
package coherence

import "fmt"

// State is an MSI block state as tracked by the directory.
type State uint8

const (
	// Invalid: no L1 holds the block.
	Invalid State = iota
	// Shared: one or more L1s hold a read-only copy.
	Shared
	// Modified: exactly one L1 holds a dirty, exclusive copy.
	Modified
)

func (s State) String() string {
	switch s {
	case Shared:
		return "S"
	case Modified:
		return "M"
	default:
		return "I"
	}
}

type line struct {
	state   State
	sharers uint64 // bitmask of nodes with a copy
	owner   int    // valid when state == Modified
}

// Action tells the timing simulator what a request implies beyond the
// home-node lookup.
type Action struct {
	// FlushFrom >= 0 means the block must be fetched from that node's L1
	// (it holds the only up-to-date copy in Modified state).
	FlushFrom int
	// Invalidate lists nodes whose L1 copies must be invalidated.
	Invalidate []int
}

// Directory tracks MSI state for all blocks. Not safe for concurrent use.
type Directory struct {
	nodes int
	lines map[uint64]*line

	// Invalidations counts invalidation messages implied by stores.
	Invalidations uint64
	// Flushes counts owner-flush round trips implied by remote dirty copies.
	Flushes uint64
}

// NewDirectory builds a directory for n nodes. It panics if n is outside
// [1,64] (the sharer bitmask is a uint64): node counts are fixed experiment
// parameters, so an illegal one is a programming error, not a runtime
// condition.
func NewDirectory(n int) *Directory {
	if n <= 0 || n > 64 {
		panic(fmt.Sprintf("coherence: node count %d out of range [1,64]", n))
	}
	return &Directory{nodes: n, lines: make(map[uint64]*line)}
}

// StateOf returns the directory state of a block.
func (d *Directory) StateOf(block uint64) State {
	if l, ok := d.lines[block]; ok {
		return l.state
	}
	return Invalid
}

// Sharers returns the nodes currently holding the block.
func (d *Directory) Sharers(block uint64) []int {
	l, ok := d.lines[block]
	if !ok {
		return nil
	}
	var out []int
	for n := 0; n < d.nodes; n++ {
		if l.sharers&(1<<uint(n)) != 0 {
			out = append(out, n)
		}
	}
	return out
}

func (d *Directory) get(block uint64) *line {
	l, ok := d.lines[block]
	if !ok {
		l = &line{owner: -1}
		d.lines[block] = l
	}
	return l
}

// Load records node reading block and returns the implied action. The
// requester ends with (at least) a Shared copy; a remote Modified owner is
// downgraded to Shared after flushing.
func (d *Directory) Load(block uint64, node int) Action {
	l := d.get(block)
	act := Action{FlushFrom: -1}
	switch l.state {
	case Invalid:
		l.state = Shared
	case Shared:
		// nothing extra
	case Modified:
		if l.owner != node {
			act.FlushFrom = l.owner
			d.Flushes++
			l.state = Shared
			l.owner = -1
		} else {
			// Requester already owns it (shouldn't be a miss, but a
			// conflict eviction may have dropped the L1 copy silently).
			l.state = Shared
			l.owner = -1
		}
	}
	l.sharers |= 1 << uint(node)
	return act
}

// Store records node writing block and returns the implied action: all
// other sharers are invalidated and a remote dirty owner flushes first.
func (d *Directory) Store(block uint64, node int) Action {
	l := d.get(block)
	act := Action{FlushFrom: -1}
	if l.state == Modified && l.owner != node && l.owner >= 0 {
		act.FlushFrom = l.owner
		d.Flushes++
	}
	for n := 0; n < d.nodes; n++ {
		if n == node {
			continue
		}
		if l.sharers&(1<<uint(n)) != 0 {
			act.Invalidate = append(act.Invalidate, n)
			d.Invalidations++
		}
	}
	l.state = Modified
	l.owner = node
	l.sharers = 1 << uint(node)
	return act
}

// Evict records that node dropped its copy (L1 replacement). A Modified
// owner eviction implies a writeback, which the caller charges separately.
func (d *Directory) Evict(block uint64, node int) {
	l, ok := d.lines[block]
	if !ok {
		return
	}
	l.sharers &^= 1 << uint(node)
	if l.state == Modified && l.owner == node {
		l.state = Invalid
		l.owner = -1
	}
	if l.sharers == 0 {
		delete(d.lines, block)
	}
}
