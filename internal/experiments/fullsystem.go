package experiments

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"sync"

	"lva/internal/fullsys"
	"lva/internal/memsim"
	"lva/internal/obs/prov"
	"lva/internal/trace"
	"lva/internal/workloads"
)

// fullsysDegrees are the approximation degrees swept in Figures 10 and 11.
var fullsysDegrees = []int{0, 2, 4, 8, 16}

// CaptureTrace runs a workload precisely under the phase-1 simulator and
// records its 4-thread access trace for phase-2 replay, mirroring the
// paper's methodology (approximation is applied during replay, where the
// paper notes instruction streams vary by at most ~2.4%). The capture
// buffer is preallocated from the access count of a precise run — served
// by the run cache, so it costs at most one extra simulation process-wide
// and is free whenever the figures needed the precise point anyway.
func CaptureTrace(w workloads.Workload, seed uint64) *trace.Trace {
	n := RunPrecise(w, seed).Sim
	cfg := memsim.DefaultConfig()
	cfg.Attach = memsim.AttachNone
	sim := memsim.New(cfg)
	sim.CaptureSized(w.Name(), int(n.Loads+n.Stores))
	w.Run(sim, seed)
	return sim.TakeTrace()
}

// fullsysRun is one phase-2 replay result.
type fullsysRun struct {
	precise fullsys.Result
	byDeg   map[int]fullsys.Result
}

type traceCell struct {
	once sync.Once
	tr   *trace.Trace
}

var traceCells sync.Map // workload name -> *traceCell

// cachedTrace memoizes the phase-1 capture per workload and process.
func cachedTrace(w workloads.Workload) *trace.Trace {
	c, _ := traceCells.LoadOrStore(w.Name(), &traceCell{})
	cell := c.(*traceCell)
	cell.once.Do(func() { cell.tr = CaptureTrace(w, DefaultSeed) })
	return cell.tr
}

// runFullsys runs one phase-2 configuration for w. With replay enabled it
// streams the recorded precise grid trace from disk chunk by chunk —
// fullsys never holds the flat trace in memory — and falls back to the
// materialized in-memory capture when no recording is available.
func runFullsys(w workloads.Workload, cfg fullsys.Config) fullsys.Result {
	pc := provBegin(0)
	label := "precise"
	if cfg.Approx != nil {
		label = "lva-d" + strconv.Itoa(cfg.Approx.Degree)
	}
	if replayEnabled() {
		if st := ensureStream(streamPrecise, w, DefaultSeed); st.path != "" {
			if r, err := streamFullsys(cfg, st); err == nil {
				if pc.on() {
					key := runKey("fullsys", w, label, DefaultSeed)
					pc.point("fullsys", w.Name()+"/"+label, "fullsys", prov.RouteReplay,
						prov.CounterNone, provWhyStream, key, st, provStagesStream, "")
					pc.stage("fullsys "+w.Name()+"/"+label, "f", st.hdr.Key,
						map[string]any{"route": "replay", "workload": w.Name()})
				}
				return r
			}
		}
	}
	r := fullsys.New(cfg).Run(cachedTrace(w))
	if pc.on() {
		key := runKey("fullsys", w, label, DefaultSeed)
		pc.point("fullsys", w.Name()+"/"+label, "fullsys", prov.RouteExec,
			prov.CounterNone, provWhyCapture, key, nil, provStagesRunExec, "")
		pc.stage("fullsys "+w.Name()+"/"+label, "", "",
			map[string]any{"route": "exec", "workload": w.Name()})
	}
	return r
}

func streamFullsys(cfg fullsys.Config, st *gridStream) (fullsys.Result, error) {
	f, err := os.Open(st.path)
	if err != nil {
		return fullsys.Result{}, err
	}
	defer f.Close()
	gr, err := trace.NewGridReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return fullsys.Result{}, err
	}
	return fullsys.New(cfg).RunStream(st.hdr.Threads, gr)
}

type fsCell struct {
	once sync.Once
	r    *fullsysRun
}

var fsCells sync.Map // workload name -> *fsCell

// fullSystemSweep replays a workload's trace precisely and under LVA at
// every degree in fullsysDegrees, memoizing per process (Figures 10 and 11
// share these runs). Distinct workloads sweep concurrently.
func fullSystemSweep(w workloads.Workload) *fullsysRun {
	c, _ := fsCells.LoadOrStore(w.Name(), &fsCell{})
	cell := c.(*fsCell)
	cell.once.Do(func() {
		run := &fullsysRun{byDeg: make(map[int]fullsys.Result)}
		cfg := fullsys.DefaultConfig()
		run.precise = runFullsys(w, cfg)

		for _, d := range fullsysDegrees {
			acfg := BaselineFor(w)
			acfg.Degree = d
			// Full-system value delay is realistic (~1 load on average,
			// §VI-E) rather than the conservative 4 of the design-space
			// phase.
			acfg.ValueDelay = 1
			c := cfg
			c.Approx = &acfg
			run.byDeg[d] = runFullsys(w, c)
		}
		cell.r = run
	})
	return cell.r
}

// Fig10 reproduces Figure 10: full-system speedup (a) and dynamic energy
// savings in the memory hierarchy (b) for approximation degrees 0..16.
// Expected shape: ~8.5% mean speedup with bodytrack and canneal best;
// energy savings grow with degree (mean ~12.6% at degree 16).
func Fig10() *Figure {
	f := &Figure{
		ID:         "fig10",
		Title:      "Full-system speedup and energy savings vs. approximation degree",
		ValueUnit:  "speedup fraction / energy-savings fraction",
		Benchmarks: workloads.Names(),
	}
	sweeps := sweepAll()
	for _, d := range fullsysDegrees {
		row := Row{Label: fmt.Sprintf("speedup approx-%d", d)}
		for _, r := range sweeps {
			lva := r.byDeg[d]
			row.Values = append(row.Values,
				float64(r.precise.Cycles)/float64(lva.Cycles)-1)
		}
		f.Rows = append(f.Rows, row)
	}
	for _, d := range fullsysDegrees {
		row := Row{Label: fmt.Sprintf("energy savings approx-%d", d)}
		for _, r := range sweeps {
			lva := r.byDeg[d]
			row.Values = append(row.Values,
				1-lva.Energy.TotalPJ()/r.precise.Energy.TotalPJ())
		}
		f.Rows = append(f.Rows, row)
	}

	// The paper's accompanying §VI-E statistics.
	var latRed0, latRed16, trafRed16 float64
	n := 0.0
	for _, r := range sweeps {
		pl := r.precise.AvgExposedMissLatency()
		if pl > 0 {
			latRed0 += 1 - r.byDeg[0].AvgExposedMissLatency()/pl
			latRed16 += 1 - r.byDeg[16].AvgExposedMissLatency()/pl
		}
		if r.precise.FlitHops > 0 {
			trafRed16 += 1 - float64(r.byDeg[16].FlitHops)/float64(r.precise.FlitHops)
		}
		n++
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("mean exposed L1-miss-latency reduction: %.1f%% (degree 0), %.1f%% (degree 16); paper: 41.0%% and 47.2%%", latRed0/n*100, latRed16/n*100),
		fmt.Sprintf("mean interconnect traffic reduction at degree 16: %.1f%%; paper: 37.2%%", trafRed16/n*100),
		"paper: 8.5% mean speedup (up to 28.6%); 12.6% mean energy savings at degree 16 (up to 44.1%)")
	return f
}

// Fig11 reproduces Figure 11: the L1-miss energy-delay product, normalized
// to precise execution, for approximation degrees 0..16. Expected shape:
// EDP falls as degree rises (paper: -41.9%, -53.8%, -63.8% mean at degrees
// 0, 4, 16).
func Fig11() *Figure {
	f := &Figure{
		ID:         "fig11",
		Title:      "L1-miss energy-delay product vs. approximation degree",
		ValueUnit:  "normalized EDP (lower is better)",
		Benchmarks: workloads.Names(),
	}
	base := Row{Label: "baseline"}
	for range workloads.All() {
		base.Values = append(base.Values, 1)
	}
	f.Rows = append(f.Rows, base)
	sweeps := sweepAll()
	for _, d := range fullsysDegrees {
		row := Row{Label: fmt.Sprintf("approx-%d", d)}
		for _, r := range sweeps {
			p := r.precise.MissEDP()
			if p == 0 {
				row.Values = append(row.Values, 1)
				continue
			}
			row.Values = append(row.Values, r.byDeg[d].MissEDP()/p)
		}
		f.Rows = append(f.Rows, row)
	}
	f.Notes = append(f.Notes, "paper: mean L1-miss EDP reductions of 41.9%, 53.8% and 63.8% at degrees 0, 4 and 16")
	return f
}

// sweepAll warms the full-system sweeps for every workload concurrently
// and returns them in registry order.
func sweepAll() []*fullsysRun {
	out := make([]*fullsysRun, len(workloads.Names()))
	forEachWorkload("fullsys-sweep", func(i int, w workloads.Workload) {
		out[i] = fullSystemSweep(w)
	})
	return out
}

// FullSystemResult exposes the memoized phase-2 replays for a workload so
// tools (cmd/lvaexp -v, tests) can inspect raw cycle/energy numbers.
func FullSystemResult(w workloads.Workload, degree int) (precise, lva fullsys.Result) {
	r := fullSystemSweep(w)
	return r.precise, r.byDeg[degree]
}
