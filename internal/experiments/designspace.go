package experiments

import (
	"fmt"

	"lva/internal/core"
	"lva/internal/memsim"
	"lva/internal/workloads"
)

// ghbSizes are the history depths of Figures 4 and 5.
var ghbSizes = []int{0, 1, 2, 4}

// normalizedMPKI divides effective MPKI by the precise run's MPKI.
func normalizedMPKI(run, precise RunResult) float64 {
	p := precise.Sim.RawMPKI()
	if p == 0 {
		return 0
	}
	return run.Sim.EffectiveMPKI() / p
}

// mpkiValues converts a row of runs into normalized-MPKI values.
func mpkiValues(runs, precise []RunResult) []float64 {
	out := make([]float64, len(runs))
	for i := range runs {
		out[i] = normalizedMPKI(runs[i], precise[i])
	}
	return out
}

// errorValues converts a row of runs into output-error values.
func errorValues(runs, precise []RunResult) []float64 {
	out := make([]float64, len(runs))
	for i := range runs {
		out[i] = ErrorVs(runs[i], precise[i])
	}
	return out
}

// fetchValues converts a row of runs into normalized fetch counts.
func fetchValues(runs, precise []RunResult) []float64 {
	out := make([]float64, len(runs))
	for i := range runs {
		out[i] = float64(runs[i].Sim.Fetches) / float64(precise[i].Sim.Fetches)
	}
	return out
}

// The ctr* twins of the helpers above operate on the bare counter results
// the replay scheduler fills in (counter figures never see an Output).

func ctrNormalizedMPKI(run, precise *memsim.Result) float64 {
	p := precise.RawMPKI()
	if p == 0 {
		return 0
	}
	return run.EffectiveMPKI() / p
}

func ctrMPKIValues(runs, precise []*memsim.Result) []float64 {
	out := make([]float64, len(runs))
	for i := range runs {
		out[i] = ctrNormalizedMPKI(runs[i], precise[i])
	}
	return out
}

func ctrFetchValues(runs, precise []*memsim.Result) []float64 {
	out := make([]float64, len(runs))
	for i := range runs {
		out[i] = float64(runs[i].Fetches) / float64(precise[i].Fetches)
	}
	return out
}

// Fig4 reproduces Figure 4: normalized MPKI of LVA vs. an idealized LVP for
// GHB sizes 0, 1, 2 and 4. Expected shape: LVA achieves lower MPKI than LVP
// on average (no exact-match requirement), and MPKI tends to rise with GHB
// size for floating-point-heavy workloads (hash dispersion).
func Fig4() *Figure {
	f := &Figure{
		ID:         "fig4",
		Title:      "LVA vs. idealized LVP for different GHB sizes",
		ValueUnit:  "normalized MPKI (lower is better)",
		Benchmarks: workloads.Names(),
	}
	b := newBatch("fig4")
	precise := b.ctrPrecise()
	lvpRuns := make([][]*memsim.Result, len(ghbSizes))
	lvaRuns := make([][]*memsim.Result, len(ghbSizes))
	for gi, g := range ghbSizes {
		g := g
		lvpRuns[gi] = b.ctrLVP(fmt.Sprintf("LVP-GHB-%d", g), func(w workloads.Workload) core.Config {
			cfg := BaselineFor(w)
			cfg.GHBSize = g
			return cfg
		})
		lvaRuns[gi] = b.ctrLVA(fmt.Sprintf("LVA-GHB-%d", g), func(w workloads.Workload) core.Config {
			cfg := BaselineFor(w)
			cfg.GHBSize = g
			return cfg
		})
	}
	b.run()
	for gi, g := range ghbSizes {
		f.Rows = append(f.Rows, Row{Label: fmt.Sprintf("LVP-GHB-%d", g), Values: ctrMPKIValues(lvpRuns[gi], precise)})
	}
	for gi, g := range ghbSizes {
		f.Rows = append(f.Rows, Row{Label: fmt.Sprintf("LVA-GHB-%d", g), Values: ctrMPKIValues(lvaRuns[gi], precise)})
	}
	f.Notes = append(f.Notes, "paper: LVA achieves lower normalized MPKI than idealized LVP on average; MPKI tends to increase with GHB size")
	return f
}

// Fig5 reproduces Figure 5: output error of LVA for different GHB sizes.
// Expected shape: error around or below 10% for all applications except
// ferret (whose metric is pessimistic), near zero for swaptions and x264.
func Fig5() *Figure {
	f := &Figure{
		ID:         "fig5",
		Title:      "Output error of LVA for different GHB sizes",
		ValueUnit:  "output error (fraction)",
		Benchmarks: workloads.Names(),
	}
	b := newBatch("fig5")
	precise := b.precise()
	ghbRuns := make([][]RunResult, len(ghbSizes))
	for gi, g := range ghbSizes {
		g := g
		ghbRuns[gi] = b.lva(fmt.Sprintf("GHB-%d", g), func(w workloads.Workload) core.Config {
			cfg := BaselineFor(w)
			cfg.GHBSize = g
			return cfg
		})
	}
	b.run()
	for gi, g := range ghbSizes {
		f.Rows = append(f.Rows, Row{Label: fmt.Sprintf("GHB-%d", g), Values: errorValues(ghbRuns[gi], precise)})
	}
	f.Notes = append(f.Notes, "paper: error ~<=10% everywhere but ferret; near-zero for swaptions and x264")
	return f
}

// confidenceWindows are the relaxed windows of Figure 6; 0 is the paper's
// "0% (ideal LVP)" series and -1 its "infinite" window.
var confidenceWindows = []float64{0, 0.05, 0.10, 0.20, -1}

func windowLabel(w float64) string {
	switch {
	case w == 0:
		return "0% (ideal LVP)"
	case w < 0:
		return "infinite"
	default:
		return fmt.Sprintf("%.0f%%", w*100)
	}
}

// Fig6 reproduces Figure 6: MPKI (a) and output error (b) across relaxed
// confidence windows. Both integer and floating-point data employ
// confidence here, per the paper. Expected shape: wider windows reduce
// MPKI monotonically and raise error.
func Fig6() *Figure {
	f := &Figure{
		ID:         "fig6",
		Title:      "Performance and error for varying confidence windows",
		ValueUnit:  "normalized MPKI / error fraction",
		Benchmarks: workloads.Names(),
	}
	b := newBatch("fig6")
	precise := b.precise()
	winRuns := make([][]RunResult, len(confidenceWindows))
	for wi, win := range confidenceWindows {
		win := win
		if win == 0 {
			winRuns[wi] = b.lvp("win-ideal-lvp", func(workloads.Workload) core.Config {
				return core.DefaultConfig()
			})
		} else {
			winRuns[wi] = b.lva(fmt.Sprintf("win-%g", win), func(workloads.Workload) core.Config {
				cfg := core.DefaultConfig()
				cfg.Window = win
				cfg.IntConfidence = true // both data kinds use confidence here
				return cfg
			})
		}
	}
	b.run()
	for wi, win := range confidenceWindows {
		f.Rows = append(f.Rows,
			Row{Label: "MPKI " + windowLabel(win), Values: mpkiValues(winRuns[wi], precise)},
			Row{Label: "error " + windowLabel(win), Values: errorValues(winRuns[wi], precise)})
	}
	f.Notes = append(f.Notes, "paper: relaxing the window lowers MPKI and raises error; x264 sees big MPKI cuts at near-zero error; ferret error grows with relaxation")
	return f
}

// valueDelays are the staleness assumptions of Figure 7.
var valueDelays = []int{4, 8, 16, 32}

// Fig7 reproduces Figure 7: MPKI (a) and output error (b) across value
// delays. Expected shape: LVA is resilient — neither MPKI nor error moves
// much, except canneal's error (its swapped coordinates are
// inter-dependent) and coverage collapse for very stale blackscholes.
func Fig7() *Figure {
	f := &Figure{
		ID:         "fig7",
		Title:      "Performance and error for varying value delays",
		ValueUnit:  "normalized MPKI / error fraction",
		Benchmarks: workloads.Names(),
	}
	b := newBatch("fig7")
	precise := b.precise()
	delayRuns := make([][]RunResult, len(valueDelays))
	for di, d := range valueDelays {
		d := d
		delayRuns[di] = b.lva(fmt.Sprintf("delay-%d", d), func(w workloads.Workload) core.Config {
			cfg := BaselineFor(w)
			cfg.ValueDelay = d
			return cfg
		})
	}
	b.run()
	for di, d := range valueDelays {
		f.Rows = append(f.Rows,
			Row{Label: fmt.Sprintf("MPKI delay-%d", d), Values: mpkiValues(delayRuns[di], precise)},
			Row{Label: fmt.Sprintf("error delay-%d", d), Values: errorValues(delayRuns[di], precise)})
	}
	f.Notes = append(f.Notes, "paper: value delay has little impact on MPKI or error for all benchmarks except canneal's error")
	return f
}

// degrees are the approximation/prefetch degrees of Figures 8 and 9.
var degrees = []int{2, 4, 8, 16}

// Fig8 reproduces Figure 8: normalized MPKI (a) and normalized fetches (b)
// for prefetch degrees vs. approximation degrees. Expected shape:
// prefetching cuts MPKI while inflating fetches (up to ~1.7x at degree 16);
// LVA cuts both (fetch reduction ~39% at degree 16); canneal defeats the
// prefetcher entirely.
func Fig8() *Figure {
	f := &Figure{
		ID:         "fig8",
		Title:      "MPKI and fetches for varying approximation and prefetch degrees",
		ValueUnit:  "normalized MPKI / normalized fetches",
		Benchmarks: workloads.Names(),
	}
	b := newBatch("fig8")
	precise := b.ctrPrecise()
	prefRuns := make([][]*memsim.Result, len(degrees))
	apxRuns := make([][]*memsim.Result, len(degrees))
	for di, d := range degrees {
		d := d
		prefRuns[di] = b.ctrPrefetch(fmt.Sprintf("prefetch-%d", d), d)
		apxRuns[di] = b.ctrLVA(fmt.Sprintf("approx-%d", d), func(w workloads.Workload) core.Config {
			cfg := BaselineFor(w)
			cfg.Degree = d
			return cfg
		})
	}
	b.run()
	for di, d := range degrees {
		f.Rows = append(f.Rows,
			Row{Label: fmt.Sprintf("MPKI prefetch-%d", d), Values: ctrMPKIValues(prefRuns[di], precise)},
			Row{Label: fmt.Sprintf("fetches prefetch-%d", d), Values: ctrFetchValues(prefRuns[di], precise)})
	}
	for di, d := range degrees {
		f.Rows = append(f.Rows,
			Row{Label: fmt.Sprintf("MPKI approx-%d", d), Values: ctrMPKIValues(apxRuns[di], precise)},
			Row{Label: fmt.Sprintf("fetches approx-%d", d), Values: ctrFetchValues(apxRuns[di], precise)})
	}
	f.Notes = append(f.Notes,
		"paper: prefetch-16 increases fetched blocks by ~73% on average while LVA-16 reduces them by ~39%",
		"paper: canneal's random access defeats the prefetcher (no MPKI reduction at any degree)")
	return f
}

// Fig9 reproduces Figure 9: LVA output error for approximation degrees
// 0..16. Expected shape: error grows with degree (less frequent training).
func Fig9() *Figure {
	f := &Figure{
		ID:         "fig9",
		Title:      "LVA output error with different approximation degrees",
		ValueUnit:  "output error (fraction)",
		Benchmarks: workloads.Names(),
	}
	allDegrees := append([]int{0}, degrees...)
	b := newBatch("fig9")
	precise := b.precise()
	degRuns := make([][]RunResult, len(allDegrees))
	for di, d := range allDegrees {
		d := d
		degRuns[di] = b.lva(fmt.Sprintf("approx-%d", d), func(w workloads.Workload) core.Config {
			cfg := BaselineFor(w)
			cfg.Degree = d
			return cfg
		})
	}
	b.run()
	for di, d := range allDegrees {
		f.Rows = append(f.Rows, Row{Label: fmt.Sprintf("approx-%d", d), Values: errorValues(degRuns[di], precise)})
	}
	f.Notes = append(f.Notes, "paper: higher approximation degree trains less often and increases output error")
	return f
}

// Fig12 reproduces Figure 12: the number of static (distinct) PC values
// that access approximate data. Expected shape: small counts everywhere
// (the paper's max is ~300, for x264), motivating small approximator
// tables.
func Fig12() *Figure {
	f := &Figure{
		ID:         "fig12",
		Title:      "Number of static (distinct) PCs issuing approximate loads",
		ValueUnit:  "count",
		Benchmarks: workloads.Names(),
	}
	b := newBatch("fig12")
	runs := b.ctrLVA("lva", BaselineFor)
	b.run()
	row := Row{Label: "static approx load PCs"}
	for _, r := range runs {
		row.Values = append(row.Values, float64(r.StaticPCs))
	}
	f.Rows = []Row{row}
	f.Notes = append(f.Notes, "paper: at most ~300 static approximate loads (x264); small tables suffice")
	return f
}

// mantissaLosses are the precision reductions of Figure 13.
var mantissaLosses = []int{0, 5, 11, 17, 23}

// Fig13 reproduces Figure 13: fluidanimate's normalized MPKI as
// floating-point mantissa bits are dropped from the approximator's history
// (GHB size 2, confidence disabled). Expected shape: MPKI falls as bits
// are removed (better value locality in the hash).
func Fig13() *Figure {
	fl := workloads.NewFluidanimate()
	f := &Figure{
		ID:         "fig13",
		Title:      "fluidanimate MPKI vs. floating-point precision loss (GHB 2, confidence off)",
		ValueUnit:  "normalized MPKI",
		Benchmarks: []string{fl.Name()},
	}
	b := newBatch("fig13")
	precise := b.ctrPrecisePoint(fl)
	lossRuns := make([]*memsim.Result, len(mantissaLosses))
	for bi, bits := range mantissaLosses {
		cfg := core.DefaultConfig()
		cfg.GHBSize = 2
		cfg.Window = -1 // confidence disabled (never rejects)
		cfg.MantissaLoss = bits
		lossRuns[bi] = b.ctrLVAPoint(fmt.Sprintf("loss-%d", bits), fl, cfg)
	}
	b.run()
	for bi, bits := range mantissaLosses {
		f.Rows = append(f.Rows, Row{
			Label:  fmt.Sprintf("loss-%d bits", bits),
			Values: []float64{ctrNormalizedMPKI(lossRuns[bi], precise)},
		})
	}
	f.Notes = append(f.Notes, "paper: removing mantissa bits improves hash value locality, so MPKI goes down; error stays ~10%")
	return f
}

// Fig1 reproduces Figure 1 quantitatively: bodytrack's output under precise
// vs. approximate execution. The examples/vision program renders the actual
// images; here we report the per-frame trajectory deviation (the paper
// quotes 7.7% output error for its rendering).
func Fig1() *Figure {
	bt := workloads.NewBodytrack()
	f := &Figure{
		ID:         "fig1",
		Title:      "bodytrack output: precise vs. LVA (trajectory deviation)",
		ValueUnit:  "fraction of image diagonal",
		Benchmarks: []string{bt.Name()},
	}
	b := newBatch("fig1")
	precise := b.one("precise", func() RunResult { return RunPrecise(bt, DefaultSeed) })
	run := b.one("lva", func() RunResult { return RunLVA(bt, BaselineFor(bt), DefaultSeed) })
	b.run()
	f.Rows = append(f.Rows, Row{Label: "output error", Values: []float64{ErrorVs(*run, *precise)}})
	f.Rows = append(f.Rows, Row{Label: "coverage", Values: []float64{run.Sim.Coverage()}})
	f.Notes = append(f.Notes, "run examples/vision to render the precise and approximate tracking overlays as PGM images")
	return f
}
