package core

import (
	"testing"
	"testing/quick"

	"lva/internal/value"
)

// immediate returns a baseline config with no value delay so trainings
// commit synchronously, which most behavioural tests want.
func immediate() Config {
	cfg := DefaultConfig()
	cfg.ValueDelay = 0
	return cfg
}

// train pushes n identical actual values through the approximator at pc.
func train(a *Approximator, pc uint64, v value.Value, n int) {
	for i := 0; i < n; i++ {
		a.OnMiss(pc, v)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.TableEntries = 0 },
		func(c *Config) { c.TableEntries = 500 }, // not pow2
		func(c *Config) { c.TagBits = 0 },
		func(c *Config) { c.TagBits = 64 },
		func(c *Config) { c.ConfidenceBits = 0 },
		func(c *Config) { c.ConfidenceBits = 9 },
		func(c *Config) { c.GHBSize = -1 },
		func(c *Config) { c.LHBSize = 0 },
		func(c *Config) { c.Degree = -1 },
		func(c *Config) { c.ValueDelay = -1 },
		func(c *Config) { c.MantissaLoss = 24 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfBounds(t *testing.T) {
	c := DefaultConfig()
	if c.ConfMin() != -8 || c.ConfMax() != 7 {
		t.Fatalf("4-bit confidence bounds: [%d,%d]", c.ConfMin(), c.ConfMax())
	}
}

func TestStorageBitsMatchesPaperEstimate(t *testing.T) {
	// Paper §VII-A: ~18 KB at 64-bit values, ~10 KB at 32-bit for the
	// 512-entry baseline. Allow generous slack for bookkeeping bits.
	c := DefaultConfig()
	kb64 := float64(c.StorageBits(64)) / 8 / 1024
	kb32 := float64(c.StorageBits(32)) / 8 / 1024
	if kb64 < 16 || kb64 > 20 {
		t.Errorf("64-bit storage = %.1f KB, paper says ~18 KB", kb64)
	}
	if kb32 < 8 || kb32 > 12 {
		t.Errorf("32-bit storage = %.1f KB, paper says ~10 KB", kb32)
	}
}

func TestColdMissFetchesAndDoesNotApproximate(t *testing.T) {
	a := New(immediate())
	d := a.OnMiss(0x400, value.FromInt(7))
	if d.Approximated {
		t.Fatal("cold miss must not approximate")
	}
	if !d.Fetch {
		t.Fatal("cold miss must fetch to train")
	}
	if a.Stats().NoEntry != 1 {
		t.Fatalf("stats = %+v", a.Stats())
	}
}

func TestIntegerApproximationWithoutConfidence(t *testing.T) {
	a := New(immediate()) // baseline: no confidence for integers
	train(a, 0x400, value.FromInt(10), 2)
	d := a.OnMiss(0x400, value.FromInt(99))
	if !d.Approximated {
		t.Fatal("integer load with history must be approximated")
	}
	if d.Value.Int() != 10 {
		t.Fatalf("approximation = %v, want average of history (10)", d.Value.Int())
	}
	if !d.Fetch {
		t.Fatal("degree 0 must always fetch")
	}
}

func TestAverageComputation(t *testing.T) {
	a := New(immediate())
	for _, v := range []int64{8, 10, 12, 14} {
		a.OnMiss(0x400, value.FromInt(v))
	}
	d := a.OnMiss(0x400, value.FromInt(0))
	if !d.Approximated || d.Value.Int() != 11 {
		t.Fatalf("average of LHB {8,10,12,14} = %v, want 11", d.Value.Int())
	}
}

func TestLHBCapacity(t *testing.T) {
	cfg := immediate()
	cfg.LHBSize = 2
	a := New(cfg)
	for _, v := range []int64{100, 1, 3} { // 100 must age out
		a.OnMiss(0x400, value.FromInt(v))
	}
	d := a.OnMiss(0x400, value.FromInt(0))
	if d.Value.Int() != 2 {
		t.Fatalf("LHB must keep only the last 2 values: avg = %v, want 2", d.Value.Int())
	}
}

func TestFloatConfidenceGate(t *testing.T) {
	a := New(immediate())
	// Erratic float values: averages miss the ±10% window, confidence
	// sinks below zero, approximations stop.
	vals := []float64{1, 1000, 2, 2000, 3, 3000, 4, 4000}
	for _, v := range vals {
		a.OnMiss(0x400, value.FromFloat(v))
	}
	d := a.OnMiss(0x400, value.FromFloat(5))
	if d.Approximated {
		t.Fatal("low confidence must suppress FP approximation")
	}
	if !d.Fetch {
		t.Fatal("suppressed approximation must still fetch")
	}
	if a.Stats().LowConfidence == 0 {
		t.Fatal("low-confidence events must be counted")
	}
}

func TestFloatConfidenceRecovers(t *testing.T) {
	a := New(immediate())
	// Stable values: every training is within the window; confidence
	// stays >= 0 and approximations flow.
	train(a, 0x400, value.FromFloat(50), 3)
	d := a.OnMiss(0x400, value.FromFloat(50))
	if !d.Approximated || d.Value.Float() != 50 {
		t.Fatalf("stable FP stream must approximate: %+v", d)
	}
	if conf, ok := a.EntryConfidence(0x400); !ok || conf <= 0 {
		t.Fatalf("confidence should be positive, got %d (ok=%v)", conf, ok)
	}
}

func TestConfidenceSaturation(t *testing.T) {
	cfg := immediate()
	a := New(cfg)
	train(a, 0x400, value.FromFloat(50), 100)
	if conf, _ := a.EntryConfidence(0x400); conf != cfg.ConfMax() {
		t.Fatalf("confidence must saturate at %d, got %d", cfg.ConfMax(), conf)
	}
	// Now feed alternating magnitudes (averages are never within ±10% of
	// either extreme); the counter must floor at ConfMin.
	for i := 0; i < 100; i++ {
		v := 1.0
		if i%2 == 0 {
			v = 1e6
		}
		a.OnMiss(0x400, value.FromFloat(v))
	}
	if conf, _ := a.EntryConfidence(0x400); conf != cfg.ConfMin() {
		t.Fatalf("confidence must floor at %d, got %d", cfg.ConfMin(), conf)
	}
}

func TestIntConfidenceFlag(t *testing.T) {
	cfg := immediate()
	cfg.IntConfidence = true
	a := New(cfg)
	// Erratic integers now hit the confidence gate too.
	for _, v := range []int64{1, 1000, 2, 2000, 3, 3000, 4, 4000} {
		a.OnMiss(0x400, value.FromInt(v))
	}
	d := a.OnMiss(0x400, value.FromInt(5))
	if d.Approximated {
		t.Fatal("IntConfidence must gate integer approximations")
	}
}

func TestInfiniteWindowNeverRejects(t *testing.T) {
	cfg := immediate()
	cfg.Window = -1
	a := New(cfg)
	for _, v := range []float64{1, 1e6, 2, 2e6} {
		a.OnMiss(0x400, value.FromFloat(v))
	}
	d := a.OnMiss(0x400, value.FromFloat(3))
	if !d.Approximated {
		t.Fatal("infinite window must always approximate once history exists")
	}
	if a.Stats().ConfRejects != 0 {
		t.Fatalf("infinite window must never reject: %+v", a.Stats())
	}
}

func TestApproximationDegreeFetchRatio(t *testing.T) {
	// Degree D: 1 fetch per D+1 covered misses (paper §III-C: degree 4
	// yields a 1:5 fetch-to-miss ratio).
	for _, degree := range []int{1, 4, 16} {
		cfg := immediate()
		cfg.Degree = degree
		a := New(cfg)
		train(a, 0x400, value.FromInt(10), 1) // cold fetch seeds the LHB
		fetches := 0
		const misses = 1000 // multiple of common degree+1 values not needed
		for i := 0; i < misses; i++ {
			d := a.OnMiss(0x400, value.FromInt(10))
			if !d.Approximated {
				t.Fatalf("degree %d: miss %d not approximated", degree, i)
			}
			if d.Fetch {
				fetches++
			}
		}
		want := misses / (degree + 1)
		if fetches < want-1 || fetches > want+1 {
			t.Errorf("degree %d: %d fetches for %d misses, want ~%d",
				degree, fetches, misses, want)
		}
	}
}

func TestDegreeReusesSameValue(t *testing.T) {
	cfg := immediate()
	cfg.Degree = 4
	a := New(cfg)
	train(a, 0x400, value.FromInt(10), 1)
	var first int64
	for i := 0; i < 4; i++ {
		d := a.OnMiss(0x400, value.FromInt(int64(100+i)))
		if i == 0 {
			first = d.Value.Int()
		} else if d.Value.Int() != first {
			t.Fatalf("value must be reused while the degree counter drains")
		}
		if d.Fetch {
			t.Fatalf("miss %d must elide the fetch", i)
		}
	}
}

func TestValueDelayDefersTraining(t *testing.T) {
	cfg := DefaultConfig() // ValueDelay = 4
	a := New(cfg)
	a.OnMiss(0x400, value.FromInt(10))
	if a.PendingTrainings() != 1 {
		t.Fatalf("pending = %d, want 1", a.PendingTrainings())
	}
	// History must still be empty: an immediate second miss cannot use it.
	d := a.OnMiss(0x400, value.FromInt(10))
	if d.Approximated {
		t.Fatal("training must not be visible before the value delay elapses")
	}
	for i := 0; i < 4; i++ {
		a.OnLoad()
	}
	if a.PendingTrainings() != 0 {
		t.Fatalf("pending = %d after delay, want 0", a.PendingTrainings())
	}
	d = a.OnMiss(0x400, value.FromInt(10))
	if !d.Approximated {
		t.Fatal("after the delay the entry must approximate")
	}
}

func TestDrainCommitsPending(t *testing.T) {
	a := New(DefaultConfig())
	a.OnMiss(0x400, value.FromInt(5))
	a.Drain()
	if a.PendingTrainings() != 0 {
		t.Fatal("Drain must flush pending trainings")
	}
	if a.Stats().Trainings != 1 {
		t.Fatalf("trainings = %d", a.Stats().Trainings)
	}
}

func TestLVPModeExactMatchOnly(t *testing.T) {
	cfg := immediate()
	cfg.Mode = ModeLVP
	cfg.Window = 0
	a := New(cfg)
	train(a, 0x400, value.FromFloat(1.0), 3)
	// Exact value in LHB: correct prediction.
	d := a.OnMiss(0x400, value.FromFloat(1.0))
	if !d.Approximated || !d.Correct {
		t.Fatalf("LVP with exact match must predict: %+v", d)
	}
	if !d.Fetch {
		t.Fatal("LVP must always fetch to validate")
	}
	// Close-but-not-exact: no coverage.
	d = a.OnMiss(0x400, value.FromFloat(1.0000001))
	if d.Approximated {
		t.Fatal("LVP must not cover approximate matches")
	}
}

func TestLVPDegreeIgnored(t *testing.T) {
	// In LVP mode every miss fetches regardless of the degree setting the
	// memsim layer forces; here we verify the mode's own behaviour.
	cfg := immediate()
	cfg.Mode = ModeLVP
	a := New(cfg)
	train(a, 0x400, value.FromInt(1), 5)
	for i := 0; i < 10; i++ {
		if d := a.OnMiss(0x400, value.FromInt(1)); !d.Fetch {
			t.Fatal("LVP must fetch on every miss")
		}
	}
}

func TestGHBChangesIndexing(t *testing.T) {
	cfg := immediate()
	cfg.GHBSize = 2
	a := New(cfg)
	// Establish history under one global context.
	train(a, 0x400, value.FromInt(10), 4)
	// A different PC writes different values into the GHB, changing the
	// context for 0x400; the entry may no longer match.
	train(a, 0x999, value.FromInt(777777), 2)
	d := a.OnMiss(0x400, value.FromInt(10))
	// With GHB context shifted, the original entry is unreachable: the
	// approximator behaves as cold (this is the paper's observation that
	// larger GHBs hurt coverage for fine-grained values).
	if d.Approximated {
		t.Log("note: context happened to alias; acceptable but unlikely")
	}
	if a.Stats().Misses == 0 {
		t.Fatal("stats must accumulate")
	}
}

func TestMantissaLossImprovesFloatLocality(t *testing.T) {
	mk := func(loss int) *Approximator {
		cfg := immediate()
		cfg.GHBSize = 2
		cfg.Window = -1
		cfg.MantissaLoss = loss
		return New(cfg)
	}
	// Values jitter in the low mantissa bits; with truncation the GHB
	// context is stable, without it the context never repeats.
	run := func(a *Approximator) uint64 {
		base := 1.0
		for i := 0; i < 200; i++ {
			jitter := float64(i%7) * 1e-7
			a.OnMiss(0x400, value.FromFloat(base+jitter))
		}
		return a.Stats().Approximations
	}
	full := run(mk(0))
	trunc := run(mk(23))
	if trunc <= full {
		t.Fatalf("mantissa truncation must raise coverage: full=%d trunc=%d", full, trunc)
	}
}

func TestResetClearsState(t *testing.T) {
	a := New(immediate())
	train(a, 0x400, value.FromInt(10), 5)
	a.Reset()
	if a.Stats() != (Stats{}) {
		t.Fatal("Reset must clear stats")
	}
	d := a.OnMiss(0x400, value.FromInt(10))
	if d.Approximated {
		t.Fatal("Reset must clear table state")
	}
}

func TestTagAliasingRetags(t *testing.T) {
	cfg := immediate()
	cfg.TableEntries = 1 // everything aliases to entry 0
	cfg.GHBSize = 0
	a := New(cfg)
	train(a, 0x01, value.FromInt(10), 3)
	// A different PC maps to the same entry with a different tag: the
	// newcomer must evict and retag, not reuse the old history.
	d := a.OnMiss(0x02<<30, value.FromInt(99))
	if d.Approximated {
		t.Fatal("tag mismatch must not approximate from stale history")
	}
}

func TestStatsCoverage(t *testing.T) {
	a := New(immediate())
	train(a, 0x400, value.FromInt(1), 4)
	st := a.Stats()
	if st.Coverage() < 0 || st.Coverage() > 1 {
		t.Fatalf("coverage out of range: %v", st.Coverage())
	}
	if (Stats{}).Coverage() != 0 {
		t.Fatal("empty coverage must be 0")
	}
}

func TestStatsInvariants(t *testing.T) {
	// Property: for any random mixed-value stream, the bookkeeping holds:
	// approximations <= misses, fetches + elided == misses covered+uncovered
	// consistency, trainings <= fetches.
	f := func(vals []int32, degSel uint8) bool {
		cfg := immediate()
		cfg.Degree = int(degSel % 5)
		a := New(cfg)
		for i, v := range vals {
			pc := uint64(0x400 + (i%3)*8)
			a.OnMiss(pc, value.FromInt(int64(v%50)))
		}
		a.Drain()
		st := a.Stats()
		if st.Approximations > st.Misses {
			return false
		}
		if st.Fetches+st.ElidedFetches != st.Misses {
			return false
		}
		return st.Trainings <= st.Fetches
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestModeAndComputeStrings(t *testing.T) {
	if ModeLVA.String() != "LVA" || ModeLVP.String() != "LVP" {
		t.Fatal("mode strings")
	}
	if ComputeAverage.String() != "average" || ComputeLast.String() != "last" || ComputeStride.String() != "stride" {
		t.Fatal("compute strings")
	}
}

func TestComputeKinds(t *testing.T) {
	for _, tc := range []struct {
		kind ComputeKind
		want int64
	}{
		{ComputeAverage, 20}, // avg(10,20,30) = 20
		{ComputeLast, 30},
		{ComputeStride, 40}, // 30 + (30-20)
	} {
		cfg := immediate()
		cfg.Compute = tc.kind
		a := New(cfg)
		for _, v := range []int64{10, 20, 30} {
			a.OnMiss(0x400, value.FromInt(v))
		}
		d := a.OnMiss(0x400, value.FromInt(0))
		if !d.Approximated || d.Value.Int() != tc.want {
			t.Errorf("%v: got %v, want %v", tc.kind, d.Value.Int(), tc.want)
		}
	}
}
