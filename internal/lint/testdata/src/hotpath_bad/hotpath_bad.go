// Package hotpath_bad exercises the hotpath analyzer's failure cases:
// interface parameters, fmt calls and interface conversions inside
// functions whose names mark them as per-load machinery.
package hotpath_bad

import "fmt"

// Memory stands in for the simulator's workload-facing interface.
type Memory interface {
	LoadFloat(pc, addr uint64, precise float64, approx bool) float64
}

// Stringer is a second interface to exercise conversion targets.
type Stringer interface{ String() string }

type sim struct{ loads uint64 }

func (s *sim) LoadFloat(pc, addr uint64, precise float64, approx bool) float64 {
	s.loads++
	return precise
}

// Load takes the interface where a concrete *sim is required.
func Load(m Memory, addr uint64) float64 { // want:hotpath
	return m.LoadFloat(0, addr, 1, false)
}

// recordAccess formats on the per-access path.
func recordAccess(pc uint64) string {
	return fmt.Sprintf("pc=%x", pc) // want:hotpath
}

// onMiss boxes its operand into the empty interface explicitly.
func onMiss(v float64) any {
	return any(v) // want:hotpath
}

// fillBlock converts a concrete value to a named interface type.
func fillBlock(s *sim) Memory {
	return Memory(s) // want:hotpath
}

// trainEntry hits several rules at once: an interface parameter and a
// fmt call in the body.
func trainEntry(m Memory) { // want:hotpath
	fmt.Println(m.LoadFloat(0, 0, 0, false)) // want:hotpath
}
