package workloads

import (
	"math"
	"testing"

	"lva/internal/memsim"
)

// Behavioural tests for the remaining kernels: ferret, fluidanimate,
// bodytrack, swaptions.

// --- ferret -----------------------------------------------------------

func TestFerretPreciseSearchFindsClusterMates(t *testing.T) {
	// On a precise run, the top results of each query should come from
	// nearby clusters; the search must at least be self-consistent: the
	// best-ranked image repeats across reruns.
	fe := NewFerret()
	fe.Segments, fe.Queries, fe.Clusters = 768, 12, 16
	a, _ := runPrecise(fe, 21)
	b, _ := runPrecise(fe, 21)
	ra, rb := a.(FerretOutput).Results, b.(FerretOutput).Results
	for q := range ra {
		if len(ra[q]) == 0 || ra[q][0] != rb[q][0] {
			t.Fatalf("query %d: unstable top result", q)
		}
	}
}

func TestFerretRecallDegradesGracefully(t *testing.T) {
	// Under LVA the recall error must be nonzero (features are perturbed)
	// but far from total: most of the result set survives.
	fe := NewFerret()
	fe.Segments, fe.Queries, fe.Clusters = 768, 12, 16
	precise, _ := runPrecise(fe, 23)
	sim := memsim.New(memsim.DefaultConfig())
	approx := fe.Run(sim, 23)
	e := approx.Error(precise)
	if e >= 0.8 {
		t.Fatalf("ferret recall collapsed: %.1f%% error", e*100)
	}
}

func TestFerretErrorMetricIntersection(t *testing.T) {
	a := FerretOutput{Results: [][]int{{1, 2, 3, 4}}}
	b := FerretOutput{Results: [][]int{{1, 2, 9, 8}}}
	if got := b.Error(a); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("error = %v, want 0.5 (half the precise set recovered)", got)
	}
	// Order-insensitive.
	c := FerretOutput{Results: [][]int{{4, 3, 2, 1}}}
	if got := c.Error(a); got != 0 {
		t.Fatalf("permuted identical set must have zero error, got %v", got)
	}
}

// --- fluidanimate ------------------------------------------------------

func TestFluidanimateParticleCountConserved(t *testing.T) {
	fl := NewFluidanimate()
	fl.Particles, fl.Cells, fl.Steps = 768, 8, 2
	out, _ := runPrecise(fl, 25)
	cells := out.(FluidanimateOutput).Cell
	if len(cells) != 768 {
		t.Fatalf("particles lost: %d", len(cells))
	}
}

func TestFluidanimateGravityPullsDown(t *testing.T) {
	// After a few steps the population's mean cell-y must not rise
	// (gravity acts downward; reflections can keep it level).
	fl := NewFluidanimate()
	fl.Particles, fl.Cells, fl.Steps = 768, 8, 3
	out, _ := runPrecise(fl, 27)
	cells := out.(FluidanimateOutput).Cell
	var meanY float64
	for _, c := range cells {
		meanY += float64((c / fl.Cells) % fl.Cells)
	}
	meanY /= float64(len(cells))
	// Initial fill is the lower 2/3 of the box: mean y-cell ~ (0.33*8)=2.6.
	if meanY > 3.5 {
		t.Fatalf("fluid floated upward: mean y-cell %.2f", meanY)
	}
}

func TestFluidanimateDensityAffectsMotion(t *testing.T) {
	// Two different seeds yield different final configurations (the
	// dynamics are input-sensitive, so approximation can show up in the
	// displaced-particle metric).
	fl := NewFluidanimate()
	fl.Particles, fl.Cells, fl.Steps = 768, 8, 2
	a, _ := runPrecise(fl, 1)
	b, _ := runPrecise(fl, 2)
	if a.Error(b) == 0 {
		t.Fatal("distinct fluids should differ")
	}
}

func TestReflect01(t *testing.T) {
	v := 1.0
	if got := reflect01(-0.1, &v); got != 0.1 || v != -1 {
		t.Fatalf("low reflection: %v, %v", got, v)
	}
	v = 1.0
	if got := reflect01(1.2, &v); math.Abs(got-0.8) > 1e-12 || v != -1 {
		t.Fatalf("high reflection: %v, %v", got, v)
	}
	v = 1.0
	if got := reflect01(0.5, &v); got != 0.5 || v != 1 {
		t.Fatalf("interior: %v, %v", got, v)
	}
}

func TestClampHelpers(t *testing.T) {
	if clampIdx(-1, 4) != 0 || clampIdx(9, 4) != 3 || clampIdx(2, 4) != 2 {
		t.Fatal("clampIdx")
	}
	if clampV(2, 1) != 1 || clampV(-2, 1) != -1 || clampV(0.5, 1) != 0.5 {
		t.Fatal("clampV")
	}
	if sq(3) != 9 {
		t.Fatal("sq")
	}
}

// --- bodytrack ---------------------------------------------------------

func TestBodytrackLikelihoodPeaksAtBody(t *testing.T) {
	// The synthetic frame must reward the true body position: pixels at
	// the body centre are bright, background is dark.
	rng := NewRNG(3)
	w, h := 256, 192
	img := SynthFrame(rng, w, h, 0, 0)
	cx, cy := bodyCenter(w, h, 0)
	centre := img[int(cy)*w+int(cx)]
	corner := img[5*w+5]
	if centre < 180 || corner > 60 {
		t.Fatalf("body contrast wrong: centre %d, corner %d", centre, corner)
	}
}

func TestBodytrackTrackerFollowsMotion(t *testing.T) {
	bt := NewBodytrack()
	bt.Frames, bt.Particles = 4, 96
	out, _ := runPrecise(bt, 29)
	traj := out.(BodytrackOutput).Trajectory
	// The body moves right by ~8px/frame; the estimates must too.
	if traj[len(traj)-1].X <= traj[0].X {
		t.Fatalf("tracker did not follow rightward motion: %+v", traj)
	}
}

// --- swaptions ---------------------------------------------------------

func TestSwaptionsPricesNonNegative(t *testing.T) {
	sw := NewSwaptions()
	sw.NSwaptions, sw.Paths = 8, 60
	out, _ := runPrecise(sw, 31)
	for i, p := range out.(SwaptionsOutput).Prices {
		if p < 0 || math.IsNaN(p) {
			t.Fatalf("price %d = %v", i, p)
		}
	}
}

func TestSwaptionsTinyWorkingSet(t *testing.T) {
	// Table I: swaptions has essentially zero MPKI — its data fits in L1.
	sw := NewSwaptions()
	_, res := runPrecise(sw, 33)
	if res.RawMPKI() > 0.05 {
		t.Fatalf("swaptions MPKI %.4f should be near zero", res.RawMPKI())
	}
	if res.Loads == 0 {
		t.Fatal("swaptions must still load through the hierarchy")
	}
}

func TestSwaptionsMorePathsLessVariance(t *testing.T) {
	// Monte-Carlo sanity: doubling paths moves prices toward a stable
	// value; two different path counts agree within a loose tolerance.
	a := NewSwaptions()
	a.NSwaptions, a.Paths = 4, 150
	b := NewSwaptions()
	b.NSwaptions, b.Paths = 4, 300
	ao, _ := runPrecise(a, 35)
	bo, _ := runPrecise(b, 35)
	ap, bp := ao.(SwaptionsOutput).Prices, bo.(SwaptionsOutput).Prices
	for i := range ap {
		if bp[i] == 0 && ap[i] == 0 {
			continue
		}
		rel := math.Abs(ap[i]-bp[i]) / (math.Abs(bp[i]) + 1e-9)
		if rel > 0.8 {
			t.Fatalf("price %d unstable across path counts: %v vs %v", i, ap[i], bp[i])
		}
	}
}
