package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Event kinds emitted by the experiment engine.
const (
	// EventFigureDone fires when one figure driver finishes; Done/Total
	// track progress across the requested figure set.
	EventFigureDone = "figure.done"
	// EventSweepPoint fires per completed sweep design point; Name is the
	// sweep label, Done/Total the point progress within that sweep.
	EventSweepPoint = "sweep.point"
)

// Event is one structured progress notification. Events are a live
// side-channel for humans and tests — they carry no simulation results and
// never feed back into figures.
type Event struct {
	Kind  string // one of the Event* constants
	Name  string // figure ID or sweep label
	Done  int    // completed units of Kind's granularity
	Total int    // total units, 0 when unknown
}

// subscribers holds the registered event callbacks. subCount mirrors
// len(subs) atomically so Emit can skip the lock when nobody listens —
// the common case for every non-interactive run.
var (
	subMu    sync.Mutex
	subs     map[int]func(Event)
	subNext  int
	subCount atomic.Int32
)

// OnEvent registers fn to receive every emitted event and returns a cancel
// function. Callbacks run synchronously on the emitting goroutine and may
// be invoked concurrently; they must be fast and race-safe.
func OnEvent(fn func(Event)) (cancel func()) {
	subMu.Lock()
	if subs == nil {
		subs = make(map[int]func(Event))
	}
	id := subNext
	subNext++
	subs[id] = fn
	subCount.Store(int32(len(subs)))
	subMu.Unlock()
	return func() {
		subMu.Lock()
		delete(subs, id)
		subCount.Store(int32(len(subs)))
		subMu.Unlock()
	}
}

// Emit delivers e to every subscriber. With no subscribers it is a single
// atomic load.
func Emit(e Event) {
	if subCount.Load() == 0 {
		return
	}
	subMu.Lock()
	fns := make([]func(Event), 0, len(subs))
	for _, fn := range subs {
		fns = append(fns, fn)
	}
	subMu.Unlock()
	for _, fn := range fns {
		fn(e)
	}
}

// NewProgressPrinter returns an event callback that writes human-readable
// progress lines to w (pass it to OnEvent). Figure completions always
// print; sweep points are throttled to every 8th point plus the final one
// so long sweeps stay legible on a terminal.
func NewProgressPrinter(w io.Writer) func(Event) {
	var mu sync.Mutex
	return func(e Event) {
		switch e.Kind {
		case EventFigureDone:
			mu.Lock()
			fmt.Fprintf(w, "lva: figure %s done (%d/%d)\n", e.Name, e.Done, e.Total)
			mu.Unlock()
		case EventSweepPoint:
			if e.Done%8 != 0 && e.Done != e.Total {
				return
			}
			mu.Lock()
			fmt.Fprintf(w, "lva: sweep %s %d/%d points\n", e.Name, e.Done, e.Total)
			mu.Unlock()
		}
	}
}
