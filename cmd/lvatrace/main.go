// Command lvatrace captures, inspects and replays the memory-access traces
// that connect the phase-1 (Pin-like) simulator to the phase-2 full-system
// simulator, and manages the record-once grid streams the experiment
// drivers replay across the design grid.
//
//	lvatrace record -bench canneal -dir traces    # record a grid stream
//	lvatrace stat traces/<hash>.lvag              # summarize a grid stream
//
//	lvatrace -capture canneal -o canneal.lvat     # record a 4-thread trace
//	lvatrace -info canneal.lvat                   # summarize a trace file
//	lvatrace -replay canneal.lvat -degree 4       # full-system replay
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"lva/internal/core"
	"lva/internal/experiments"
	"lva/internal/fullsys"
	"lva/internal/obs/phase"
	"lva/internal/trace"
	"lva/internal/workloads"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "record":
			if err := cmdRecord(os.Args[2:]); err != nil {
				fail(err)
			}
			return
		case "stat":
			if err := cmdStat(os.Args[2:]); err != nil {
				fail(err)
			}
			return
		case "phases":
			if err := cmdPhases(os.Args[2:]); err != nil {
				fail(err)
			}
			return
		}
	}

	var (
		capture = flag.String("capture", "", "benchmark to capture a trace from")
		out     = flag.String("o", "", "output trace file (with -capture)")
		info    = flag.String("info", "", "trace file to summarize")
		replay  = flag.String("replay", "", "trace file to replay in the full-system simulator")
		degree  = flag.Int("degree", 0, "approximation degree for -replay (-1 = precise)")
		seed    = flag.Uint64("seed", experiments.DefaultSeed, "workload input seed")
	)
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintln(w, "usage: lvatrace record|stat|phases ... (grid streams) or flags (flat traces):")
		fmt.Fprintln(w, "  lvatrace record -bench <name|all> [-kind precise|lvabase] [-dir d] [-seed n]")
		fmt.Fprintln(w, "  lvatrace stat <file.lvag ...> [-decode]")
		fmt.Fprintln(w, "  lvatrace phases <file.lvag ...> [-window n] [-json]")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *capture != "":
		if err := doCapture(*capture, *out, *seed); err != nil {
			fail(err)
		}
	case *info != "":
		if err := doInfo(*info); err != nil {
			fail(err)
		}
	case *replay != "":
		if err := doReplay(*replay, *degree); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lvatrace:", err)
	os.Exit(1)
}

// cmdRecord captures grid streams into a directory. Re-running against a
// warm directory is a no-op per stream: recordings found on disk are
// trusted, so this doubles as a cheap "is the store warm?" check.
func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("lvatrace record", flag.ExitOnError)
	var (
		bench = fs.String("bench", "all", "benchmark to record, or \"all\"")
		kind  = fs.String("kind", "precise", "stream kind: precise or lvabase")
		dir   = fs.String("dir", "", "trace directory (default: $LVA_TRACE_DIR, else a temp dir)")
		seed  = fs.Uint64("seed", experiments.DefaultSeed, "workload input seed")
	)
	fs.Parse(args)
	if *dir != "" {
		experiments.SetTraceDir(*dir)
	}

	var ws []workloads.Workload
	if *bench == "all" {
		ws = workloads.All()
	} else {
		w, err := workloads.ByName(*bench)
		if err != nil {
			return err
		}
		ws = []workloads.Workload{w}
	}
	before := experiments.TraceCounters()
	for _, w := range ws {
		path, err := experiments.EnsureGridStream(*kind, w, *seed)
		if err != nil {
			return err
		}
		hdr, size, err := gridFooter(path)
		if err != nil {
			return err
		}
		fmt.Printf("%-13s %s: %d accesses, %d chunks, %s\n",
			w.Name(), path, hdr.Accesses, hdr.Chunks, byteSize(size))
	}
	after := experiments.TraceCounters()
	fmt.Printf("recorded %d stream(s), %d already on disk\n",
		after.Recordings-before.Recordings,
		uint64(len(ws))-(after.Recordings-before.Recordings))
	return nil
}

// cmdStat summarizes grid stream files from their footers; -decode also
// streams every chunk to verify the encoding end to end.
func cmdStat(args []string) error {
	fs := flag.NewFlagSet("lvatrace stat", flag.ExitOnError)
	decode := fs.Bool("decode", false, "decode every chunk (validates the file) and report static approximate PCs")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("stat: no files given")
	}
	for _, path := range fs.Args() {
		if err := statGrid(path, *decode); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

func statGrid(path string, decode bool) error {
	hdr, size, err := gridFooter(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: stream %q seed %d (key %s)\n", path, hdr.Name, hdr.Seed, hdr.Key)
	fmt.Printf("  accesses=%d loads=%d stores=%d approxLoads=%d threads=%d instructions=%d\n",
		hdr.Accesses, hdr.Loads, hdr.Stores, hdr.ApproxLoads, hdr.Threads, hdr.Instructions)
	perAccess := 0.0
	if hdr.Accesses > 0 {
		perAccess = float64(size) / float64(hdr.Accesses)
	}
	fmt.Printf("  chunks=%d fileSize=%s (%.2f bytes/access; flat encoding is 30)\n",
		hdr.Chunks, byteSize(size), perAccess)
	if len(hdr.Meta) > 0 {
		fmt.Printf("  footer meta: %s\n", strings.TrimSpace(string(hdr.Meta)))
	}
	if !decode {
		return nil
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	gr, err := trace.NewGridReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return err
	}
	var accesses uint64
	pcs := map[uint64]struct{}{}
	minChunk, maxChunk := 0, 0
	var minPer, maxPer float64
	for {
		chunk, _, err := gr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		accesses += uint64(len(chunk))
		for _, a := range chunk {
			if a.Approx && a.Op != trace.Store {
				pcs[a.PC] = struct{}{}
			}
		}
		cb := gr.LastChunkBytes()
		if minChunk == 0 || cb < minChunk {
			minChunk = cb
		}
		if cb > maxChunk {
			maxChunk = cb
		}
		if len(chunk) > 0 {
			per := float64(cb) / float64(len(chunk))
			if minPer == 0 || per < minPer {
				minPer = per
			}
			if per > maxPer {
				maxPer = per
			}
		}
	}
	if accesses != hdr.Accesses {
		return fmt.Errorf("decoded %d accesses, footer says %d", accesses, hdr.Accesses)
	}
	fmt.Printf("  decode ok: %d accesses, %d static approximate-load PCs\n", accesses, len(pcs))
	chunks, decAccesses, decBytes := gr.DecodedStats()
	if chunks > 0 && decAccesses > 0 {
		mean := float64(decBytes) / float64(chunks)
		per := float64(decBytes) / float64(decAccesses)
		fmt.Printf("  chunk sizes: min=%s mean=%s max=%s (%d chunks, framing included)\n",
			byteSize(int64(minChunk)), byteSize(int64(mean)), byteSize(int64(maxChunk)), chunks)
		fmt.Printf("  bytes/access: min=%.2f mean=%.2f max=%.2f per chunk\n", minPer, per, maxPer)
		fmt.Printf("  compression: %.2fx vs flat 30 B/access (%s vs %s)\n",
			30/per, byteSize(int64(decAccesses*30)), byteSize(int64(decBytes)))
	}
	return nil
}

// cmdPhases phase-profiles grid streams offline: one decode pass per
// file, no simulation. The profile clusters epoch fingerprints of the
// annotated-load stream (PC sketch, address regions, stride histogram);
// with no sim attached there are no miss/error scalars, so the table
// reports phase structure and occupancy only. -json emits the published
// snapshot (byte-stable across runs and processes).
func cmdPhases(args []string) error {
	fs := flag.NewFlagSet("lvatrace phases", flag.ExitOnError)
	window := fs.Int("window", 0, "epoch window in annotated loads (0 = default)")
	asJSON := fs.Bool("json", false, "emit the phase snapshot as JSON instead of tables")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("phases: no files given")
	}
	if *window != 0 {
		phase.SetEpochWindow(*window)
	}
	for _, path := range fs.Args() {
		prof, hdr, err := experiments.ProfileGridStream(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if !*asJSON {
			printPhaseProfile(path, hdr, prof)
		}
	}
	if *asJSON {
		b, err := phase.TakeSnapshot().JSON()
		if err != nil {
			return err
		}
		os.Stdout.Write(b)
	}
	return nil
}

func printPhaseProfile(path string, hdr trace.GridHeader, prof phase.ScopeProfile) {
	fmt.Printf("%s: stream %q seed %d\n", path, hdr.Name, hdr.Seed)
	fmt.Printf("  scope=%s window=%d epochs=%d dropped=%d loads=%d\n",
		prof.Scope, prof.EpochWindow, prof.TotalEpochs, prof.DroppedEpochs, prof.Loads)
	if len(prof.Phases) == 0 {
		fmt.Println("  no epochs (stream shorter than one window?)")
		return
	}
	fmt.Printf("  %d phase(s):\n", len(prof.Phases))
	for _, p := range prof.Phases {
		fmt.Printf("    phase %-2d epochs=%-5d occupancy=%5.1f%% medoid=epoch %d\n",
			p.ID, p.Epochs, 100*p.Occupancy, p.MedoidEpoch)
	}
	fmt.Printf("  timeline: %s\n", phaseTimelineString(prof.Timeline, 64))
}

// phaseTimelineString renders an epoch->phase assignment as one hex digit
// per slot, downsampled to at most width slots (majority phase per slot).
func phaseTimelineString(tl []int, width int) string {
	if len(tl) == 0 {
		return ""
	}
	if width > len(tl) {
		width = len(tl)
	}
	out := make([]byte, width)
	for s := 0; s < width; s++ {
		lo, hi := s*len(tl)/width, (s+1)*len(tl)/width
		if hi == lo {
			hi = lo + 1
		}
		var count [16]int
		best := tl[lo]
		for _, id := range tl[lo:hi] {
			if id >= 0 && id < 16 {
				count[id]++
				if count[id] > count[best] {
					best = id
				}
			}
		}
		out[s] = "0123456789abcdef"[best&15]
	}
	return string(out)
}

func gridFooter(path string) (trace.GridHeader, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.GridHeader{}, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return trace.GridHeader{}, 0, err
	}
	hdr, err := trace.ReadGridFooter(f)
	return hdr, st.Size(), err
}

func byteSize(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

func doCapture(bench, out string, seed uint64) error {
	w, err := workloads.ByName(bench)
	if err != nil {
		return err
	}
	tr := experiments.CaptureTrace(w, seed)
	if out == "" {
		out = bench + ".lvat"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		return err
	}
	fmt.Printf("captured %d accesses (%d threads) to %s\n", tr.Len(), tr.Threads(), out)
	return nil
}

func doInfo(path string) error {
	tr, err := readTrace(path)
	if err != nil {
		return err
	}
	var loads, stores, approx uint64
	pcs := map[uint64]struct{}{}
	for _, a := range tr.Accesses {
		if a.Op == trace.Store {
			stores++
		} else {
			loads++
		}
		if a.Approx {
			approx++
			pcs[a.PC] = struct{}{}
		}
	}
	fmt.Printf("trace %q: %d accesses, %d threads\n", tr.Name, tr.Len(), tr.Threads())
	fmt.Printf("  loads=%d stores=%d approximate=%d staticApproxPCs=%d\n",
		loads, stores, approx, len(pcs))
	return nil
}

func doReplay(path string, degree int) error {
	tr, err := readTrace(path)
	if err != nil {
		return err
	}
	cfg := fullsys.DefaultConfig()
	label := "precise"
	if degree >= 0 {
		acfg := core.DefaultConfig()
		acfg.Degree = degree
		acfg.ValueDelay = 1
		cfg.Approx = &acfg
		label = fmt.Sprintf("lva degree %d", degree)
	}
	r := fullsys.New(cfg).Run(tr)
	fmt.Printf("replay %q (%s):\n", tr.Name, label)
	fmt.Printf("  cycles=%d IPC=%.3f misses=%d covered=%d fetches=%d\n",
		r.Cycles, r.IPC(), r.L1LoadMisses, r.Covered, r.Fetches)
	fmt.Printf("  L2acc=%d dram=%d flitHops=%d invals=%d flushes=%d\n",
		r.L2Accesses, r.DRAMAccesses, r.FlitHops, r.Invalidations, r.Flushes)
	fmt.Printf("  avgServiceLat=%.1f avgExposedMissLat=%.1f energy=%.3g pJ missEDP=%.3g\n",
		r.AvgServiceLatency(), r.AvgExposedMissLatency(), r.Energy.TotalPJ(), r.MissEDP())
	return nil
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}
