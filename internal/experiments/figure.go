package experiments

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lva/internal/obs"
	"lva/internal/stats"
	"lva/internal/workloads"
)

// Figure is the structured result of one experiment: a set of labelled
// series, each holding one value per benchmark, matching the bar groups of
// the paper's figures. The mean column reproduces the paper's per-series
// average.
type Figure struct {
	ID         string
	Title      string
	ValueUnit  string // e.g. "normalized MPKI", "% error"
	Benchmarks []string
	Rows       []Row
	Notes      []string
}

// Row is one series (one bar colour in the paper's figures).
type Row struct {
	Label  string
	Values []float64 // aligned with Figure.Benchmarks
}

// Mean returns the arithmetic mean across benchmarks.
func (r Row) Mean() float64 { return stats.Mean(r.Values) }

// Value returns the series value for a benchmark.
func (f *Figure) Value(label, bench string) (float64, bool) {
	bi := -1
	for i, b := range f.Benchmarks {
		if b == bench {
			bi = i
			break
		}
	}
	if bi < 0 {
		return 0, false
	}
	for _, r := range f.Rows {
		if r.Label == label {
			return r.Values[bi], true
		}
	}
	return 0, false
}

// Row returns the series with the given label.
func (f *Figure) Row(label string) (Row, bool) {
	for _, r := range f.Rows {
		if r.Label == label {
			return r, true
		}
	}
	return Row{}, false
}

// Table renders the figure as an aligned text table, one row per series.
func (f *Figure) Table() *stats.Table {
	header := append([]string{"series"}, f.Benchmarks...)
	header = append(header, "mean")
	t := stats.NewTable(fmt.Sprintf("%s — %s (%s)", f.ID, f.Title, f.ValueUnit), header...)
	for _, r := range f.Rows {
		cells := []string{r.Label}
		for _, v := range r.Values {
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		cells = append(cells, fmt.Sprintf("%.3f", r.Mean()))
		t.AddRow(cells...)
	}
	return t
}

// String renders the table plus notes.
func (f *Figure) String() string {
	var b strings.Builder
	b.WriteString(f.Table().String())
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Precise returns the (memoized) precise run for a workload at DefaultSeed.
// Memoization lives in the process-wide run cache shared by all Run* entry
// points.
func Precise(w workloads.Workload) RunResult {
	return RunPrecise(w, DefaultSeed)
}

// Registry maps experiment ids to their drivers: the paper's tables and
// figures plus the ablations/extensions this reproduction adds.
var Registry = map[string]func() *Figure{
	"table1":           Table1,
	"fig1":             Fig1,
	"fig4":             Fig4,
	"fig5":             Fig5,
	"fig6":             Fig6,
	"fig7":             Fig7,
	"fig8":             Fig8,
	"fig9":             Fig9,
	"fig10":            Fig10,
	"fig11":            Fig11,
	"fig12":            Fig12,
	"fig13":            Fig13,
	"ablation-table":   AblationTable,
	"ablation-compute": AblationCompute,
	"ablation-conf":    AblationConfidence,
	"ablation-lhb":     AblationLHB,
	"ext-lane":         ExtLane,
	"ext-mlp":          ExtMLP,
}

// IDs returns the experiment ids in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		// table1 first, then fig1..fig13 numerically, then the
		// ablations/extensions alphabetically.
		ka, kb := idKey(ids[a]), idKey(ids[b])
		if ka != kb {
			return ka < kb
		}
		return ids[a] < ids[b]
	})
	return ids
}

func idKey(id string) int {
	if id == "table1" {
		return -1
	}
	var n int
	if _, err := fmt.Sscanf(id, "fig%d", &n); err == nil {
		return n
	}
	return 1000 // ablations/extensions after the paper's artifacts
}

// RunAll regenerates the named experiments (every registry experiment when
// ids is empty) with cross-figure scheduling: each driver runs in its own
// goroutine and admits its simulation points through the shared
// Parallelism-bounded gate, so points from different figures interleave
// while the run cache simulates every shared design point exactly once.
// Figures are returned in ids order (registry order when ids is empty).
func RunAll(ids ...string) ([]*Figure, error) {
	if len(ids) == 0 {
		ids = IDs()
	}
	for _, id := range ids {
		if Registry[id] == nil {
			return nil, fmt.Errorf("experiments: unknown experiment %q (valid: %v)", id, IDs())
		}
	}
	figs := make([]*Figure, len(ids))
	var wg sync.WaitGroup
	var done atomic.Int32
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			// Label the driver goroutine (and everything it spawns) so CPU
			// and goroutine profiles attribute samples to their figure; the
			// labels are cheap enough to apply unconditionally.
			pprof.Do(context.Background(), pprof.Labels("lva_figure", id), func(context.Context) {
				tl := timeline.Load()
				start := time.Now()
				figs[i] = Registry[id]()
				if tl != nil {
					tl.span(tlPidFigures, i, id, "figure", start, nil)
				}
			})
			eng().figuresDone.Inc()
			obs.Emit(obs.Event{
				Kind: obs.EventFigureDone, Name: id,
				Done: int(done.Add(1)), Total: len(ids),
			})
		}(i, id)
	}
	wg.Wait()
	return figs, nil
}
