// Command lvalint runs the repository's custom static-analysis suite: the
// determinism and validation invariants the simulator's credibility rests
// on (seeded randomness, validated configs, documented panic contracts,
// race-free fan-out, order-independent FP accumulation).
//
// Usage:
//
//	go run ./cmd/lvalint ./...            # lint every package
//	go run ./cmd/lvalint ./internal/core  # lint one package
//	go run ./cmd/lvalint -list            # describe the analyzers
//
// Findings print as file:line: [analyzer] message; the process exits 1 when
// any unsuppressed finding remains and 2 on load/type errors. A finding is
// suppressed by a `//lint:ignore <analyzer> <reason>` comment on the same
// line or the line above.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lva/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "also print suppressed findings")
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	if err := run(flag.Args(), *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "lvalint:", err)
		os.Exit(2)
	}
}

func run(patterns []string, verbose bool) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	modRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		return err
	}
	dirs, err := lint.ExpandPatterns(cwd, patterns)
	if err != nil {
		return err
	}

	var pkgs []*lint.Package
	loadFailed := false
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvalint: %v\n", err)
			loadFailed = true
			continue
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "lvalint: %s: %v\n", pkg.Path, terr)
			loadFailed = true
		}
		pkgs = append(pkgs, pkg)
	}
	if loadFailed {
		os.Exit(2)
	}

	findings := lint.Run(loader.Fset(), pkgs, lint.Analyzers())
	failed := false
	for _, f := range findings {
		if f.Suppressed {
			if verbose {
				fmt.Printf("%s (suppressed: %s)\n", rel(modRoot, f), f.SuppressReason)
			}
			continue
		}
		fmt.Println(rel(modRoot, f))
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	return nil
}

// rel renders a finding with the filename relative to the module root.
func rel(modRoot string, f lint.Finding) string {
	if r, err := filepath.Rel(modRoot, f.Pos.Filename); err == nil {
		f.Pos.Filename = r
	}
	return f.String()
}
