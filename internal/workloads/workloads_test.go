package workloads

import (
	"math"
	"testing"
	"testing/quick"

	"lva/internal/memsim"
)

// fastAll returns all seven kernels shrunk so the whole suite runs quickly
// while exercising every code path.
func fastAll() []Workload {
	bs := NewBlackscholes()
	bs.N, bs.Passes = 2048, 1
	bt := NewBodytrack()
	bt.Frames, bt.Particles, bt.PartPoints = 2, 32, 6
	cn := NewCanneal()
	cn.Blocks, cn.GridSide, cn.Steps = 1<<12, 64, 1500
	fe := NewFerret()
	fe.Segments, fe.Queries, fe.Clusters = 512, 8, 16
	fl := NewFluidanimate()
	fl.Particles, fl.Cells, fl.Steps = 512, 6, 1
	sw := NewSwaptions()
	sw.NSwaptions, sw.Paths = 4, 40
	x := NewX264()
	x.Width, x.Height, x.Frames = 96, 64, 3
	return []Workload{bs, bt, cn, fe, fl, sw, x}
}

func runPrecise(w Workload, seed uint64) (Output, memsim.Result) {
	cfg := memsim.DefaultConfig()
	cfg.Attach = memsim.AttachNone
	sim := memsim.New(cfg)
	out := w.Run(sim, seed)
	return out, sim.Result()
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("expected 7 workloads, got %d", len(all))
	}
	names := Names()
	want := []string{"blackscholes", "bodytrack", "canneal", "ferret", "fluidanimate", "swaptions", "x264"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names[%d] = %q, want %q", i, names[i], n)
		}
	}
	for _, n := range want {
		if _, err := ByName(n); err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("unknown name must error")
	}
}

func TestFloatDataFlags(t *testing.T) {
	// §V-A: blackscholes, ferret, fluidanimate, swaptions approximate FP;
	// bodytrack, canneal, x264 approximate integers.
	want := map[string]bool{
		"blackscholes": true, "ferret": true, "fluidanimate": true, "swaptions": true,
		"bodytrack": false, "canneal": false, "x264": false,
	}
	for _, w := range All() {
		if w.FloatData() != want[w.Name()] {
			t.Errorf("%s FloatData = %v", w.Name(), w.FloatData())
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, w := range fastAll() {
		out1, res1 := runPrecise(w, 7)
		out2, res2 := runPrecise(w, 7)
		if res1.Instructions != res2.Instructions || res1.LoadMisses != res2.LoadMisses {
			t.Errorf("%s: non-deterministic counts: %+v vs %+v", w.Name(), res1, res2)
		}
		if got := out1.Error(out2); got != 0 {
			t.Errorf("%s: identical runs differ by %v", w.Name(), got)
		}
	}
}

func TestSelfErrorIsZero(t *testing.T) {
	for _, w := range fastAll() {
		out, _ := runPrecise(w, 3)
		if got := out.Error(out); got != 0 {
			t.Errorf("%s: self error = %v", w.Name(), got)
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	for _, w := range fastAll() {
		if w.Name() == "x264" {
			continue // x264's input is seed-noise only; outputs barely move
		}
		a, _ := runPrecise(w, 1)
		b, _ := runPrecise(w, 2)
		if a.Error(b) == 0 {
			t.Errorf("%s: different seeds produced identical outputs", w.Name())
		}
	}
}

func TestCrossTypeErrorIsOne(t *testing.T) {
	outs := []Output{
		BlackscholesOutput{Prices: []float64{1}},
		BodytrackOutput{Trajectory: []Vec2{{1, 1}}, Diagonal: 10},
		CannealOutput{RoutingCost: 5},
		FerretOutput{Results: [][]int{{1}}},
		FluidanimateOutput{Cell: []int{1}},
		SwaptionsOutput{Prices: []float64{1}},
		X264Output{PSNR: 30, Bits: 100},
	}
	for i, a := range outs {
		for j, b := range outs {
			if i == j {
				continue
			}
			if got := a.Error(b); got != 1 {
				t.Errorf("outs[%d].Error(outs[%d]) = %v, want 1", i, j, got)
			}
		}
	}
}

func TestApproximateRunsStayInRange(t *testing.T) {
	// Under the baseline approximator the error metric of every kernel
	// must be a sane fraction (not NaN/Inf/negative).
	for _, w := range fastAll() {
		precise, _ := runPrecise(w, 5)
		cfg := memsim.DefaultConfig() // LVA baseline
		sim := memsim.New(cfg)
		approx := w.Run(sim, 5)
		e := approx.Error(precise)
		if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
			t.Errorf("%s: pathological error %v", w.Name(), e)
		}
	}
}

func TestWorkloadsIssueApproximateLoads(t *testing.T) {
	for _, w := range fastAll() {
		_, res := runPrecise(w, 9)
		// Every kernel annotates something (fig12 counts these sites).
		sim := memsim.New(memsim.DefaultConfig())
		w.Run(sim, 9)
		r := sim.Result()
		if r.StaticPCs == 0 {
			t.Errorf("%s: no approximate load sites", w.Name())
		}
		if res.Loads == 0 || res.Instructions == 0 {
			t.Errorf("%s: no activity: %+v", w.Name(), res)
		}
	}
}

func TestBlackscholesPricesArePositive(t *testing.T) {
	bs := NewBlackscholes()
	bs.N, bs.Passes = 512, 1
	out, _ := runPrecise(bs, 11)
	prices := out.(BlackscholesOutput).Prices
	if len(prices) != 512 {
		t.Fatalf("prices = %d", len(prices))
	}
	for i, p := range prices {
		if p < 0 || math.IsNaN(p) {
			t.Fatalf("price %d = %v", i, p)
		}
	}
}

func TestBlackscholesErrorMetric(t *testing.T) {
	a := BlackscholesOutput{Prices: []float64{100, 100, 100, 100}}
	b := BlackscholesOutput{Prices: []float64{100, 100.5, 102, 90}}
	// Two of four prices differ by more than 1%.
	if got := b.Error(a); got != 0.5 {
		t.Fatalf("error = %v, want 0.5", got)
	}
}

func TestSwaptionsErrorMetric(t *testing.T) {
	a := SwaptionsOutput{Prices: []float64{1, 2}}
	b := SwaptionsOutput{Prices: []float64{1.1, 2}}
	if got := b.Error(a); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("error = %v, want 0.05 (mean of 10%% and 0%%)", got)
	}
}

func TestCannealErrorMetric(t *testing.T) {
	a := CannealOutput{RoutingCost: 200}
	b := CannealOutput{RoutingCost: 220}
	if got := b.Error(a); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("error = %v, want 0.1", got)
	}
}

func TestCannealCostDecreases(t *testing.T) {
	cn := NewCanneal()
	cn.Blocks, cn.GridSide, cn.Steps = 1<<12, 64, 4000
	out, _ := runPrecise(cn, 13)
	final := out.(CannealOutput).RoutingCost
	// Initial random placement cost for this netlist: measure by running
	// zero steps.
	cn0 := NewCanneal()
	cn0.Blocks, cn0.GridSide, cn0.Steps = 1<<12, 64, 0
	out0, _ := runPrecise(cn0, 13)
	initial := out0.(CannealOutput).RoutingCost
	if final >= initial {
		t.Fatalf("annealing must reduce routing cost: %v -> %v", initial, final)
	}
}

func TestFerretRecallOnPreciseRun(t *testing.T) {
	fe := NewFerret()
	fe.Segments, fe.Queries, fe.Clusters = 512, 8, 16
	out, _ := runPrecise(fe, 17)
	res := out.(FerretOutput).Results
	if len(res) != 8 {
		t.Fatalf("queries = %d", len(res))
	}
	for q, ids := range res {
		if len(ids) == 0 {
			t.Fatalf("query %d returned nothing", q)
		}
	}
}

func TestFluidanimateParticlesStayInBox(t *testing.T) {
	fl := NewFluidanimate()
	fl.Particles, fl.Cells, fl.Steps = 512, 6, 2
	out, _ := runPrecise(fl, 19)
	cells := out.(FluidanimateOutput).Cell
	max := fl.Cells * fl.Cells * fl.Cells
	for i, c := range cells {
		if c < 0 || c >= max {
			t.Fatalf("particle %d in cell %d (max %d)", i, c, max)
		}
	}
}

func TestX264OutputsQuality(t *testing.T) {
	x := NewX264()
	x.Width, x.Height, x.Frames = 96, 64, 3
	out, _ := runPrecise(x, 23)
	o := out.(X264Output)
	if o.PSNR < 20 || o.PSNR > 60 {
		t.Fatalf("implausible PSNR %v", o.PSNR)
	}
	if o.Bits <= 0 {
		t.Fatalf("bit cost %v", o.Bits)
	}
}

func TestBodytrackTracksTheBody(t *testing.T) {
	bt := NewBodytrack()
	bt.Frames, bt.Particles = 3, 64
	out, _ := runPrecise(bt, 29)
	o := out.(BodytrackOutput)
	if len(o.Trajectory) != 3 {
		t.Fatalf("trajectory frames = %d", len(o.Trajectory))
	}
	for f, p := range o.Trajectory {
		tx, ty := bodyCenter(bt.Width, bt.Height, f)
		d := math.Hypot(p.X-tx, p.Y-ty)
		if d > 20 {
			t.Fatalf("frame %d: estimate (%v,%v) is %v px from truth (%v,%v)",
				f, p.X, p.Y, d, tx, ty)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed must be remapped")
	}
}

func TestRNGRanges(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		m := int(n%100) + 1
		for i := 0; i < 20; i++ {
			if v := r.Float64(); v < 0 || v >= 1 {
				return false
			}
			if v := r.Intn(m); v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(7)
	var sum, sum2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("norm variance = %v", variance)
	}
}

func TestArenaAlignmentAndDisjointness(t *testing.T) {
	a := NewArena()
	x := a.Alloc(100)
	y := a.Alloc(10)
	if x%64 != 0 || y%64 != 0 {
		t.Fatal("allocations must be block-aligned")
	}
	if y < x+100 {
		t.Fatal("allocations must not overlap")
	}
	if x == 0 {
		t.Fatal("address zero is reserved")
	}
}

func TestArrayAddressing(t *testing.T) {
	a := NewArena()
	f := NewF64Array(a, 8)
	if f.Addr(3)-f.Addr(0) != 24 {
		t.Fatal("f64 stride must be 8 bytes")
	}
	i := NewI32Array(a, 8)
	if i.Addr(3)-i.Addr(0) != 12 {
		t.Fatal("i32 stride must be 4 bytes")
	}
}

func TestArrayLoadStoreThroughMemory(t *testing.T) {
	sim := memsim.New(memsim.Config{
		L1:     memsim.DefaultConfig().L1,
		Attach: memsim.AttachNone,
	})
	a := NewArena()
	f := NewF64Array(a, 4)
	f.Store(sim, 0x400, 2, 1.25)
	if got := f.Load(sim, 0x404, 2, false); got != 1.25 {
		t.Fatalf("array roundtrip = %v", got)
	}
	r := sim.Result()
	if r.Stores != 1 || r.Loads != 1 {
		t.Fatalf("memory traffic = %+v", r)
	}
}

func TestTopK(t *testing.T) {
	d := []float64{5, 1, 3, 1, 9}
	got := topK(d, 3)
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("topK = %v", got)
	}
	if got := topK(d, 99); len(got) != len(d) {
		t.Fatal("k beyond length must clamp")
	}
}

func TestTruncatedRun(t *testing.T) {
	// Zero-step / zero-pass configurations must not panic and must give
	// empty-but-valid outputs.
	cn := NewCanneal()
	cn.Blocks, cn.GridSide, cn.Steps = 1<<10, 32, 0
	out, _ := runPrecise(cn, 1)
	if out.(CannealOutput).RoutingCost <= 0 {
		t.Fatal("even an unannealed netlist has positive cost")
	}
}
