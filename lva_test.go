package lva_test

import (
	"bytes"
	"testing"

	"lva"
	"lva/internal/trace"
)

// TestFacadeApproximator exercises the public approximator API directly.
func TestFacadeApproximator(t *testing.T) {
	cfg := lva.DefaultApproximatorConfig()
	cfg.ValueDelay = 0
	a := lva.NewApproximator(cfg)
	for i := 0; i < 4; i++ {
		a.OnMiss(0x400, lva.IntValue(40))
	}
	d := a.OnMiss(0x400, lva.IntValue(100))
	if !d.Approximated || d.Value.Int() != 40 {
		t.Fatalf("decision = %+v", d)
	}
}

// TestFacadeSimulator runs a small kernel through the public simulator.
func TestFacadeSimulator(t *testing.T) {
	cfg := lva.DefaultSimConfig()
	sim := lva.NewSimulator(cfg)
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 4096; i++ {
			sim.LoadFloat(0x400, 0x100000+uint64(i)*8, 50.0, true)
			sim.Tick(10)
		}
	}
	res := sim.Result()
	if res.LoadMisses == 0 {
		t.Fatal("a 32 KB stream over two passes must miss")
	}
	if res.Coverage() == 0 {
		t.Fatal("a constant value stream must be covered")
	}
	if res.EffectiveMPKI() >= res.RawMPKI() {
		t.Fatal("coverage must reduce effective MPKI")
	}
}

// TestFacadeWorkloads checks the workload registry via the facade.
func TestFacadeWorkloads(t *testing.T) {
	if len(lva.Workloads()) != 7 {
		t.Fatal("seven kernels expected")
	}
	w, err := lva.WorkloadByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "swaptions" || !w.FloatData() {
		t.Fatalf("workload = %v", w)
	}
	if _, err := lva.WorkloadByName("nope"); err == nil {
		t.Fatal("unknown workload must error")
	}
}

// TestFacadeEndToEnd captures a trace via the facade, serializes it, and
// replays it in the full-system simulator — the complete two-phase
// methodology through public API only.
func TestFacadeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload run")
	}
	sw := lva.NewSwaptions()
	sw.NSwaptions, sw.Paths = 4, 50
	tr := lva.CaptureTrace(sw, 42)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}

	var buf bytes.Buffer
	if err := trace.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}

	sys := lva.NewSystem(lva.DefaultSystemConfig())
	res := sys.Run(tr2)
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Fatalf("replay result = %+v", res)
	}

	acfg := lva.DefaultApproximatorConfig()
	acfg.ValueDelay = 1
	scfg := lva.DefaultSystemConfig()
	scfg.Approx = &acfg
	res2 := lva.NewSystem(scfg).Run(tr2)
	if res2.Cycles > res.Cycles*2 {
		t.Fatalf("LVA replay pathologically slow: %d vs %d", res2.Cycles, res.Cycles)
	}
}

// TestRunExperiment drives an experiment through the facade registry.
func TestRunExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs")
	}
	fig, ok := lva.RunExperiment("fig12")
	if !ok {
		t.Fatal("fig12 must exist")
	}
	row, ok := fig.Row("static approx load PCs")
	if !ok {
		t.Fatal("missing row")
	}
	// Paper Figure 12: static approximate-load counts are small (<= ~300).
	for i, v := range row.Values {
		if v <= 0 || v > 300 {
			t.Fatalf("%s: static PCs = %v, outside the paper's range",
				fig.Benchmarks[i], v)
		}
	}
	if _, ok := lva.RunExperiment("nope"); ok {
		t.Fatal("unknown experiment must miss")
	}
	if len(lva.Experiments()) != 18 {
		t.Fatalf("experiments = %d", len(lva.Experiments()))
	}
}
