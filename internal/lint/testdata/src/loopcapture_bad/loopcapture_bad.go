// Package loopcapture_bad exercises the loopcapture analyzer's failure
// cases: goroutines racing on captured state.
package loopcapture_bad

import "sync"

// SharedIndex launches workers that all write the same slice element: the
// index is captured from outside the loop, so the writes race.
func SharedIndex(out []int) {
	var wg sync.WaitGroup
	k := 0
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[k] = 1 // want:loopcapture
		}()
	}
	wg.Wait()
}

// SharedCounter increments a captured counter without a lock.
func SharedCounter() int {
	var wg sync.WaitGroup
	done := 0
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done++ // want:loopcapture
		}()
	}
	wg.Wait()
	return done
}
