// Command lvasim runs one benchmark kernel under one memory-hierarchy
// configuration and reports MPKI, coverage, fetches and output error
// against a precise run of the same seed.
//
// Usage:
//
//	lvasim -bench canneal -attach lva -degree 4
//	lvasim -bench all -attach lvp -ghb 2
package main

import (
	"flag"
	"fmt"
	"os"

	"lva/internal/core"
	"lva/internal/experiments"
	"lva/internal/obs"
	"lva/internal/stats"
	"lva/internal/workloads"
)

func main() {
	var (
		bench    = flag.String("bench", "all", "benchmark name or 'all'")
		attach   = flag.String("attach", "lva", "attachment: precise|lva|lvp|prefetch")
		ghb      = flag.Int("ghb", 0, "global history buffer size")
		window   = flag.Float64("window", 0.10, "confidence window (fraction; -1 = infinite)")
		intConf  = flag.Bool("intconf", false, "apply confidence to integer data too")
		degree   = flag.Int("degree", 0, "approximation degree (lva) or prefetch degree")
		delay    = flag.Int("delay", 4, "value delay in load instructions")
		mantissa = flag.Int("mantissa", 0, "floating-point mantissa bits dropped")
		seed     = flag.Uint64("seed", experiments.DefaultSeed, "workload input seed")
		pprof    = flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	if *pprof != "" {
		obs.SetEnabled(true)
		addr, err := obs.ServeDebug(*pprof)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvasim:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "lvasim: debug server on http://%s/debug/pprof/\n", addr)
	}

	var ws []workloads.Workload
	if *bench == "all" {
		ws = workloads.All()
	} else {
		w, err := workloads.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ws = []workloads.Workload{w}
	}

	tbl := stats.NewTable("", "benchmark", "attach", "insts", "loadMPKI", "effMPKI", "coverage", "fetches", "error")
	for _, w := range ws {
		precise := experiments.RunPrecise(w, *seed)

		var run experiments.RunResult
		switch *attach {
		case "precise":
			run = precise
		case "lva", "lvp":
			cfg := core.DefaultConfig()
			cfg.GHBSize = *ghb
			cfg.Window = *window
			cfg.IntConfidence = *intConf
			cfg.Degree = *degree
			cfg.ValueDelay = *delay
			cfg.MantissaLoss = *mantissa
			if *attach == "lva" {
				run = experiments.RunLVA(w, cfg, *seed)
			} else {
				run = experiments.RunLVP(w, cfg, *seed)
			}
		case "prefetch":
			run = experiments.RunPrefetch(w, *degree, *seed)
		default:
			fmt.Fprintf(os.Stderr, "unknown attachment %q\n", *attach)
			os.Exit(2)
		}

		errFrac := 0.0
		if *attach != "precise" {
			errFrac = experiments.ErrorVs(run, precise)
		}
		tbl.AddRow(
			w.Name(), *attach,
			fmt.Sprintf("%d", run.Sim.Instructions),
			fmt.Sprintf("%.3f", run.Sim.RawMPKI()),
			fmt.Sprintf("%.3f", run.Sim.EffectiveMPKI()),
			stats.Percent(run.Sim.Coverage()),
			fmt.Sprintf("%d", run.Sim.Fetches),
			stats.Percent(errFrac),
		)
	}
	fmt.Print(tbl)
}
