package workloads

import (
	"testing"

	"lva/internal/memsim"
	"lva/internal/trace"
)

// batchOut collects everything a scenario run produces that the batched
// accessors could possibly change: the full capture trace and every value
// the kernel consumed.
type batchOut struct {
	tr        *trace.Trace
	consumed  []float64
	consumedI []int32
}

// runBatchScenario drives one mixed workload through a capturing simulator,
// using either the batched accessors or their documented scalar-loop
// equivalents. The data set (3 SoA float arrays + one pixel array, ~200 KB)
// overflows the 64 KB L1 every pass, so the scenario exercises hits,
// misses, covered approximate misses, delayed training and (under
// AttachPrefetch) prefetch fills.
func runBatchScenario(att memsim.Attachment, batched bool) batchOut {
	cfg := memsim.DefaultConfig()
	cfg.Attach = att
	sim := memsim.New(cfg)
	sim.Capture("batch-scenario")

	arena := NewArena()
	const n = 4096
	ax := NewF64Array(arena, n)
	ay := NewF64Array(arena, n)
	az := NewF64Array(arena, n)
	pix := NewI32Array(arena, 4*n)
	rng := NewRNG(99)
	for i := 0; i < n; i++ {
		ax.Data[i] = rng.Float64()
		ay.Data[i] = rng.Float64()
		az.Data[i] = rng.Float64()
	}
	for i := range pix.Data {
		pix.Data[i] = int32(rng.Intn(256))
	}

	var out batchOut
	arrays := []*F64Array{ax, ay, az}
	gatherPCs := []uint64{pcBase(1, 0), pcBase(1, 1), pcBase(1, 2)}
	rangePC := pcBase(1, 3)
	rowPCs := []uint64{pcBase(1, 4), pcBase(1, 5), pcBase(1, 6), pcBase(1, 7)}
	storePC := pcBase(1, 8)

	fbuf := make([]float64, 64)
	ibuf := make([]int32, 64)
	sbuf := make([]int32, 64)
	for pass := 0; pass < 2; pass++ {
		// SoA gather (blackscholes/fluidanimate shape).
		for i := 0; i < n; i += 7 {
			sim.SetThread(i % 4)
			if batched {
				GatherF64(sim, arrays, gatherPCs, i, true, fbuf[:3])
			} else {
				for k, a := range arrays {
					fbuf[k] = sim.LoadFloat(gatherPCs[k], a.Addr(i), a.Data[i], true)
				}
			}
			out.consumed = append(out.consumed, fbuf[0], fbuf[1], fbuf[2])
			sim.Tick(3)
		}
		// Contiguous same-site range (streaming shape).
		for lo := 0; lo+64 <= n; lo += 512 {
			if batched {
				ax.LoadRange(sim, rangePC, lo, lo+64, true, fbuf)
			} else {
				for i := lo; i < lo+64; i++ {
					fbuf[i-lo] = sim.LoadFloat(rangePC, ax.Addr(i), ax.Data[i], true)
				}
			}
			out.consumed = append(out.consumed, fbuf...)
		}
		// Unrolled pixel row with cycling sites (x264 SAD shape), including
		// a short row (n < len(dst) prefix) like a frame-edge candidate.
		for _, rowLen := range []int{64, 64, 17} {
			lo := (pass + 1) * 321
			if batched {
				pix.LoadRow(sim, rowPCs, lo, rowLen, true, ibuf)
			} else {
				addr := pix.Addr(lo)
				for k := 0; k < rowLen; k++ {
					ibuf[k] = int32(sim.LoadInt(rowPCs[k%len(rowPCs)], addr, int64(pix.Data[lo+k]), true))
					addr += 4
				}
			}
			out.consumedI = append(out.consumedI, ibuf[:rowLen]...)
		}
		// Streaming publish (x264 recon shape).
		for k := range sbuf {
			sbuf[k] = int32(pass*64 + k)
		}
		if batched {
			pix.StoreRange(sim, storePC, 128, sbuf)
		} else {
			addr := pix.Addr(128)
			for k, v := range sbuf {
				pix.Data[128+k] = v
				sim.Store(storePC, addr)
				addr += 4
			}
		}
	}
	out.tr = sim.TakeTrace()
	return out
}

// TestBatchedAccessorsMatchScalar is the batching contract: under every
// attachment, each batched accessor issues an access stream identical to
// its scalar-loop equivalent — same PCs, addresses, values, ordering,
// thread tags and gaps — and the kernel consumes identical values.
func TestBatchedAccessorsMatchScalar(t *testing.T) {
	atts := []memsim.Attachment{
		memsim.AttachNone, memsim.AttachLVA, memsim.AttachLVP, memsim.AttachPrefetch,
	}
	for _, att := range atts {
		t.Run(att.String(), func(t *testing.T) {
			scalar := runBatchScenario(att, false)
			batch := runBatchScenario(att, true)
			if len(scalar.tr.Accesses) == 0 {
				t.Fatal("scenario recorded no accesses")
			}
			if len(scalar.tr.Accesses) != len(batch.tr.Accesses) {
				t.Fatalf("access count: scalar %d, batched %d",
					len(scalar.tr.Accesses), len(batch.tr.Accesses))
			}
			for i := range scalar.tr.Accesses {
				if scalar.tr.Accesses[i] != batch.tr.Accesses[i] {
					t.Fatalf("access %d differs:\nscalar  %+v\nbatched %+v",
						i, scalar.tr.Accesses[i], batch.tr.Accesses[i])
				}
			}
			if len(scalar.consumed) != len(batch.consumed) ||
				len(scalar.consumedI) != len(batch.consumedI) {
				t.Fatalf("consumed value counts differ")
			}
			for i := range scalar.consumed {
				if scalar.consumed[i] != batch.consumed[i] {
					t.Fatalf("consumed float %d: scalar %v, batched %v",
						i, scalar.consumed[i], batch.consumed[i])
				}
			}
			for i := range scalar.consumedI {
				if scalar.consumedI[i] != batch.consumedI[i] {
					t.Fatalf("consumed int %d: scalar %v, batched %v",
						i, scalar.consumedI[i], batch.consumedI[i])
				}
			}
		})
	}
}
