// Approxisa: the paper's §IV ISA-extension model in action. A small
// assembly program — a windowed moving-average filter over a sensor
// array — marks its data loads approximate with `ld.a`. Running the same
// binary against a precise and an LVA-attached memory hierarchy shows the
// hardware contract end to end: the backing memory always holds precise
// values, the pipeline consumes approximations, and only the final output
// differs (slightly).
//
//	go run ./examples/approxisa
package main

import (
	"fmt"
	"log"

	"lva"
)

// program filters n samples at `base` into `out`: out[i] is the mean of
// samples i-1, i, i+1 (clamped), scaled by 16 for integer math. The sample
// loads use ld.a — they are annotated approximate; indices, bounds and the
// output writes stay precise, following the paper's §IV guidelines.
const program = `
	# r1 = base, r2 = out, r3 = i, r4 = n
	li  r1, 0x100000
	li  r2, 0x400000
	li  r3, 1
	li  r4, 4095

loop:
	bge r3, r4, done

	# addr = base + 8*i
	li   r6, 8
	mul  r5, r3, r6
	add  r5, r5, r1

	ld.a r7, -8(r5)      # sample[i-1]   (approximate)
	ld.a r8, 0(r5)       # sample[i]     (approximate)
	ld.a r9, 8(r5)       # sample[i+1]   (approximate)

	add  r10, r7, r8
	add  r10, r10, r9
	li   r11, 3
	div  r10, r10, r11   # mean

	mul  r12, r3, r6
	add  r12, r12, r2
	st   r10, 0(r12)     # out[i] = mean  (precise store)

	tick 12              # surrounding scalar work
	addi r3, r3, 1
	jmp  loop

done:
	halt
`

const (
	base = uint64(0x100000)
	out  = uint64(0x400000)
	n    = 4096
)

// seed fills the sample array with a slowly-varying integer signal.
func seed(vm *lva.VM) {
	v := int64(1000)
	for i := 0; i < n; i++ {
		v += int64((i%7)-3) * 4 // gentle drift
		vm.PokeInt(base+uint64(i)*8, v)
	}
}

func run(attach lva.Attachment) (*lva.VM, lva.SimResult) {
	prog, err := lva.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	cfg := lva.DefaultSimConfig()
	cfg.Attach = attach
	sim := lva.NewSimulator(cfg)
	vm := lva.NewVM(prog, sim)
	seed(vm)
	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}
	return vm, sim.Result()
}

func main() {
	preciseVM, preciseRes := run(lva.AttachNone)
	lvaVM, lvaRes := run(lva.AttachLVA)

	// Output error: mean relative difference of the filtered signal.
	var errSum float64
	for i := 1; i < n-1; i++ {
		p := preciseVM.PeekInt(out + uint64(i)*8)
		a := lvaVM.PeekInt(out + uint64(i)*8)
		d := p - a
		if d < 0 {
			d = -d
		}
		if p != 0 {
			errSum += float64(d) / float64(p)
		}
	}

	fmt.Println("approxisa: moving-average filter with ld.a annotated loads")
	fmt.Printf("%-8s %12s %10s %10s %10s\n", "config", "insts", "MPKI", "coverage", "fetches")
	fmt.Printf("%-8s %12d %10.3f %10s %10d\n",
		"precise", preciseRes.Instructions, preciseRes.EffectiveMPKI(), "-", preciseRes.Fetches)
	fmt.Printf("%-8s %12d %10.3f %9.1f%% %10d\n",
		"lva", lvaRes.Instructions, lvaRes.EffectiveMPKI(), lvaRes.Coverage()*100, lvaRes.Fetches)
	fmt.Printf("\nfiltered-output mean relative error: %.4f%%\n", errSum/float64(n-2)*100)
	fmt.Printf("static approximate load PCs: %d (the three ld.a sites)\n", lvaRes.StaticPCs)
}
