package noc

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Width: 0, Height: 2, CtrlFlits: 1, DataFlits: 5},
		{Width: 2, Height: 2, CtrlFlits: 0, DataFlits: 5},
		{Width: 2, Height: 2, CtrlFlits: 1, DataFlits: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if DefaultConfig().Nodes() != 4 {
		t.Fatal("2x2 mesh must have 4 nodes")
	}
}

func TestXYRoute(t *testing.T) {
	m := New(Config{Width: 3, Height: 3, RouterCycles: 3, LinkCycles: 1, CtrlFlits: 1, DataFlits: 5})
	// Node layout: 0 1 2 / 3 4 5 / 6 7 8. XY: X first, then Y.
	route := m.Route(0, 8)
	want := []int{0, 1, 2, 5, 8}
	if len(route) != len(want) {
		t.Fatalf("route = %v", route)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route = %v, want %v", route, want)
		}
	}
	if m.Hops(0, 8) != 4 {
		t.Fatalf("hops = %d", m.Hops(0, 8))
	}
	if m.Hops(4, 4) != 0 {
		t.Fatal("self route must have 0 hops")
	}
}

func TestRouteAdjacency(t *testing.T) {
	// Property: every consecutive pair in any route is mesh-adjacent.
	m := New(Config{Width: 4, Height: 4, RouterCycles: 3, LinkCycles: 1, CtrlFlits: 1, DataFlits: 5})
	f := func(s, d uint8) bool {
		src, dst := int(s%16), int(d%16)
		route := m.Route(src, dst)
		if route[0] != src || route[len(route)-1] != dst {
			return false
		}
		for i := 0; i+1 < len(route); i++ {
			ax, ay := route[i]%4, route[i]/4
			bx, by := route[i+1]%4, route[i+1]/4
			manhattan := abs(ax-bx) + abs(ay-by)
			if manhattan != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestLatencyUncontended(t *testing.T) {
	m := New(DefaultConfig())
	// 0 -> 3 in a 2x2 mesh: 2 hops, each 3 (router) + 1 (link); a 1-flit
	// control packet adds no serialization beyond the last hop.
	arr := m.SendCtrl(0, 3, 100)
	if want := uint64(100 + 2*4); arr != want {
		t.Fatalf("ctrl arrival = %d, want %d", arr, want)
	}
	// 5-flit data packet: +4 cycles of tail serialization (fresh mesh so
	// the control packet above doesn't contend).
	m = New(DefaultConfig())
	arr = m.SendData(0, 3, 100)
	if want := uint64(100 + 2*4 + 4); arr != want {
		t.Fatalf("data arrival = %d, want %d", arr, want)
	}
}

func TestSelfSendIsFree(t *testing.T) {
	m := New(DefaultConfig())
	if got := m.SendData(2, 2, 55); got != 55 {
		t.Fatalf("self send arrival = %d", got)
	}
	if m.Stats().FlitHops != 0 {
		t.Fatal("self send must not count flit-hops")
	}
}

func TestContentionSerializes(t *testing.T) {
	m := New(DefaultConfig())
	first := m.SendData(0, 1, 100)
	second := m.SendData(0, 1, 100)
	if second <= first {
		t.Fatalf("contending packet must arrive later: %d vs %d", second, first)
	}
	if second-first != 5 {
		t.Fatalf("serialization delay = %d, want 5 flits", second-first)
	}
}

func TestFlitHopAccounting(t *testing.T) {
	m := New(DefaultConfig())
	m.SendData(0, 3, 0) // 2 hops x 5 flits
	m.SendCtrl(1, 0, 0) // 1 hop x 1 flit
	st := m.Stats()
	if st.FlitHops != 11 {
		t.Fatalf("flit-hops = %d, want 11", st.FlitHops)
	}
	if st.Packets != 2 {
		t.Fatalf("packets = %d", st.Packets)
	}
}

func TestMonotonicTime(t *testing.T) {
	// Property: arrival >= departure for any sequence of sends issued in
	// nondecreasing time order.
	f := func(pairs []uint8) bool {
		m := New(DefaultConfig())
		now := uint64(0)
		for _, p := range pairs {
			src, dst := int(p%4), int(p/4)%4
			arr := m.SendData(src, dst, now)
			if arr < now {
				return false
			}
			now += uint64(p % 3)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	m := New(DefaultConfig())
	m.SendData(0, 3, 0)
	m.Reset()
	if m.Stats() != (Stats{}) {
		t.Fatal("Reset must clear stats")
	}
	// Link reservations must be cleared too: a fresh packet at t=0 sees
	// the uncontended latency again.
	if got := m.SendData(0, 1, 0); got != 4+4 {
		t.Fatalf("post-reset latency = %d", got)
	}
}
