// Package allocbudget_bad breaks its committed hot-path budget: a fmt
// call pushes Bump past its inline-cost ceiling and makes its argument
// escape, and Leak returns the address of a local.
package allocbudget_bad

import "fmt"

// Counter is a hot-path-shaped accumulator with a logging habit.
type Counter struct {
	n   int
	log []string
}

// Bump is budgeted inlinable and allocation-free, but the fmt call blows
// both: formatting costs more than the ceiling and tag escapes into the
// ... argument slice.
func (c *Counter) Bump(tag string) { // want:allocbudget
	c.log = append(c.log, fmt.Sprintf("bump %s", tag))
	c.n++
}

// Leak is budgeted noEscape, but returning &x moves x to the heap.
func Leak(n int) *int { // want:allocbudget
	x := n * 2
	return &x
}
