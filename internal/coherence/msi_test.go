package coherence

import (
	"fmt"
	"testing"
	"testing/quick"
)

const blk = uint64(0x1000)

func TestInitialStateInvalid(t *testing.T) {
	d := NewDirectory(4)
	if d.StateOf(blk) != Invalid {
		t.Fatal("unknown block must be Invalid")
	}
	if d.Sharers(blk) != nil {
		t.Fatal("unknown block must have no sharers")
	}
}

func TestLoadGrantsShared(t *testing.T) {
	d := NewDirectory(4)
	act := d.Load(blk, 0)
	if act.FlushFrom != -1 || len(act.Invalidate) != 0 {
		t.Fatalf("clean load must need nothing: %+v", act)
	}
	if d.StateOf(blk) != Shared {
		t.Fatalf("state = %v", d.StateOf(blk))
	}
	d.Load(blk, 2)
	sh := d.Sharers(blk)
	if len(sh) != 2 || sh[0] != 0 || sh[1] != 2 {
		t.Fatalf("sharers = %v", sh)
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	d := NewDirectory(4)
	d.Load(blk, 0)
	d.Load(blk, 1)
	d.Load(blk, 2)
	act := d.Store(blk, 0)
	if act.FlushFrom != -1 {
		t.Fatalf("no dirty owner to flush: %+v", act)
	}
	if len(act.Invalidate) != 2 {
		t.Fatalf("invalidate list = %v, want nodes 1 and 2", act.Invalidate)
	}
	if d.StateOf(blk) != Modified {
		t.Fatalf("state = %v", d.StateOf(blk))
	}
	if sh := d.Sharers(blk); len(sh) != 1 || sh[0] != 0 {
		t.Fatalf("sharers after store = %v", sh)
	}
	if d.Invalidations != 2 {
		t.Fatalf("invalidations = %d", d.Invalidations)
	}
}

func TestLoadFlushesRemoteDirty(t *testing.T) {
	d := NewDirectory(4)
	d.Store(blk, 1)
	act := d.Load(blk, 0)
	if act.FlushFrom != 1 {
		t.Fatalf("load must flush from the dirty owner: %+v", act)
	}
	if d.StateOf(blk) != Shared {
		t.Fatal("after flush the block is Shared")
	}
	if d.Flushes != 1 {
		t.Fatalf("flushes = %d", d.Flushes)
	}
	sh := d.Sharers(blk)
	if len(sh) != 2 {
		t.Fatalf("both nodes share after downgrade: %v", sh)
	}
}

func TestStoreFlushesRemoteDirty(t *testing.T) {
	d := NewDirectory(4)
	d.Store(blk, 1)
	act := d.Store(blk, 2)
	if act.FlushFrom != 1 {
		t.Fatalf("store must flush the previous owner: %+v", act)
	}
	if len(act.Invalidate) != 1 || act.Invalidate[0] != 1 {
		t.Fatalf("previous owner must be invalidated: %+v", act)
	}
	if d.StateOf(blk) != Modified || d.Sharers(blk)[0] != 2 {
		t.Fatal("ownership must transfer")
	}
}

func TestOwnStoreUpgradeNoFlush(t *testing.T) {
	d := NewDirectory(4)
	d.Load(blk, 0)
	act := d.Store(blk, 0)
	if act.FlushFrom != -1 || len(act.Invalidate) != 0 {
		t.Fatalf("upgrading sole sharer needs nothing: %+v", act)
	}
}

func TestEvict(t *testing.T) {
	d := NewDirectory(4)
	d.Load(blk, 0)
	d.Load(blk, 1)
	d.Evict(blk, 0)
	if sh := d.Sharers(blk); len(sh) != 1 || sh[0] != 1 {
		t.Fatalf("sharers after evict = %v", sh)
	}
	d.Evict(blk, 1)
	if d.StateOf(blk) != Invalid {
		t.Fatal("last evict must drop the line")
	}
	// Evicting a dirty owner invalidates the line.
	d.Store(blk, 2)
	d.Evict(blk, 2)
	if d.StateOf(blk) != Invalid {
		t.Fatal("owner evict must invalidate")
	}
	// Evicting an unknown block is a no-op.
	d.Evict(0xDEAD, 0)
}

func TestNewDirectoryBounds(t *testing.T) {
	// The panic message is a documented contract (see NewDirectory's
	// comment and the nopanic analyzer): it must name the valid range.
	for _, n := range []int{0, -1, 65} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("NewDirectory(%d) must panic", n)
					return
				}
				want := fmt.Sprintf("coherence: node count %d out of range [1,64]", n)
				if r != want {
					t.Errorf("NewDirectory(%d) panic = %v, want %q", n, r, want)
				}
			}()
			NewDirectory(n)
		}()
	}
	// Boundary values must not panic.
	if NewDirectory(1) == nil || NewDirectory(64) == nil {
		t.Fatal("in-range node counts must build a directory")
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Modified.String() != "M" {
		t.Fatal("state strings")
	}
}

// TestSingleOwnerInvariant drives random load/store/evict sequences and
// checks MSI's core invariant: Modified implies exactly one sharer.
func TestSingleOwnerInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		d := NewDirectory(4)
		blocks := []uint64{0x100, 0x200}
		for _, op := range ops {
			b := blocks[int(op>>1)%2]
			node := int(op>>3) % 4
			switch op % 3 {
			case 0:
				d.Load(b, node)
			case 1:
				d.Store(b, node)
			case 2:
				d.Evict(b, node)
			}
			for _, bb := range blocks {
				if d.StateOf(bb) == Modified && len(d.Sharers(bb)) != 1 {
					return false
				}
				if d.StateOf(bb) == Invalid && len(d.Sharers(bb)) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
