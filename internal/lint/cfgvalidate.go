package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// configTypePkgs are the packages whose Config structs carry experiment
// parameters that must be validated before use. A composite literal of one
// of these types in non-test code must start from the package's Default*
// constructor, be handed straight to the package's New (which validates),
// or flow through Validate in the same function.
var configTypePkgs = map[string]bool{
	"lva/internal/core":     true,
	"lva/internal/memsim":   true,
	"lva/internal/cache":    true,
	"lva/internal/dram":     true,
	"lva/internal/noc":      true,
	"lva/internal/prefetch": true,
	"lva/internal/fullsys":  true,
}

// cfgvalidateAnalyzer flags hand-rolled simulator configurations that skip
// validation: a typo'd ad-hoc Config silently skews every downstream number
// (§III-B/C confidence and degree machinery assume legal parameters).
var cfgvalidateAnalyzer = &Analyzer{
	Name: "cfgvalidate",
	Doc:  "config struct literals must start from Default* or pass through Validate/New",
	Run:  runCfgvalidate,
}

// configTypeName returns "pkg.Config" display form when t is one of the
// guarded config types, else "".
func configTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !configTypePkgs[obj.Pkg().Path()] || obj.Name() != "Config" {
		return ""
	}
	return obj.Pkg().Name() + ".Config"
}

func runCfgvalidate(p *Pass) {
	for _, f := range p.Pkg.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				// Default* constructors are the blessed construction sites.
				if strings.HasPrefix(d.Name.Name, "Default") {
					continue
				}
				if d.Body != nil {
					checkConfigLits(p, d.Body, blessedNames(p, d.Body))
				}
			case *ast.GenDecl:
				// Package-level literals can never be validated in place.
				checkConfigLits(p, d, nil)
			}
		}
	}
}

// blessedNames collects identifiers that demonstrably pass through
// validation inside the body: receivers of a .Validate() call and arguments
// to a config package's New* constructor (which validates or panics).
func blessedNames(p *Pass, body ast.Node) map[string]bool {
	blessed := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Validate" {
			if id, ok := unwrapIdent(sel.X); ok {
				blessed[id] = true
			}
		}
		if isConfigNewCall(p, call) {
			for _, arg := range call.Args {
				if id, ok := unwrapIdent(arg); ok {
					blessed[id] = true
				}
			}
		}
		return true
	})
	return blessed
}

// unwrapIdent strips parens, & and field selection down to the root
// identifier: `&c`, `(c)`, `c.L1` all resolve to "c".
func unwrapIdent(e ast.Expr) (string, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return "", false
		}
	}
}

// isConfigNewCall reports whether call invokes a New* constructor belonging
// to one of the config packages (those constructors validate their Config
// and panic on error, so a literal handed to them is checked).
func isConfigNewCall(p *Pass, call *ast.CallExpr) bool {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = p.Pkg.Info.Uses[fun.Sel]
	case *ast.Ident:
		obj = p.Pkg.Info.Uses[fun]
	}
	fn, ok := obj.(*types.Func)
	if !ok || !strings.HasPrefix(fn.Name(), "New") {
		return false
	}
	return fn.Pkg() != nil && configTypePkgs[fn.Pkg().Path()]
}

// checkConfigLits walks root reporting unblessed outermost config literals.
// Parents are tracked so a literal that is directly validated (passed to a
// config New, receiver of an immediate .Validate(), or assigned to a
// blessed name) is accepted; nested config literals inside an accepted
// outer literal are accepted with it.
func checkConfigLits(p *Pass, root ast.Node, blessed map[string]bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if lit, ok := n.(*ast.CompositeLit); ok && len(lit.Elts) > 0 {
			if name := configTypeName(p.Pkg.Info.TypeOf(lit)); name != "" {
				if !litIsBlessed(p, lit, stack, blessed) {
					p.Reportf(lit.Pos(), "%s built by hand without validation: start from %s, or pass it through Validate or the package's New before use",
						name, strings.Replace(name, ".Config", ".DefaultConfig()", 1))
				}
				// Children are skipped: nested config literals share the
				// outer literal's fate.
				return false
			}
		}
		stack = append(stack, n)
		return true
	})
}

// litIsBlessed decides whether one outermost config literal is validated.
func litIsBlessed(p *Pass, lit *ast.CompositeLit, stack []ast.Node, blessed map[string]bool) bool {
	// Walk up through &, parens.
	node := ast.Node(lit)
	i := len(stack) - 1
	for ; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.UnaryExpr, *ast.ParenExpr:
			node = stack[i]
			continue
		case *ast.CallExpr:
			// Argument to a validating constructor.
			if isConfigNewCall(p, parent) {
				for _, arg := range parent.Args {
					if arg == node {
						return true
					}
				}
			}
			return false
		case *ast.SelectorExpr:
			// (core.Config{...}).Validate() — immediate validation.
			return parent.Sel.Name == "Validate" && parent.X == node
		case *ast.AssignStmt:
			for k, rhs := range parent.Rhs {
				if rhs == node && k < len(parent.Lhs) {
					if id, ok := unwrapIdent(parent.Lhs[k]); ok && blessed[id] {
						return true
					}
				}
			}
			return false
		case *ast.ValueSpec:
			for _, name := range parent.Names {
				if blessed[name.Name] {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
	return false
}
