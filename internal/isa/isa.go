// Package isa implements a small RISC-like instruction set with the
// paper's §IV ISA extension: approximate-load instructions (`ld.a`,
// `fld.a`) that mark a load as tolerating load value approximation, the
// EnerJ-style annotation surfaced at the ISA level. Programs are written
// in a simple assembly text form, assembled to an instruction list, and
// executed by a VM whose every data access goes through a memsim.Memory —
// so running a program under a precise or LVA-attached simulator measures
// exactly what the hardware proposal would do to it.
//
// The instruction set (registers r0..r31 with r0 wired to zero, and
// f0..f31):
//
//	li   rD, imm        load integer immediate
//	fli  fD, imm        load float immediate
//	mov  rD, rA         |  fmov fD, fA
//	add/sub/mul/div   rD, rA, rB
//	addi rD, rA, imm
//	fadd/fsub/fmul/fdiv fD, fA, fB
//	cvtf fD, rA         int -> float |  cvti rD, fA   float -> int (truncate)
//	ld   rD, off(rA)    precise int load   |  ld.a  rD, off(rA)  approximate
//	fld  fD, off(rA)    precise float load |  fld.a fD, off(rA)  approximate
//	st   rS, off(rA)    int store          |  fst   fS, off(rA)  float store
//	beq/bne/blt/bge rA, rB, label
//	jmp  label
//	tick n              account n non-memory instructions
//	halt
//
// Comments run from '#' to end of line. Labels are `name:` on their own
// line or before an instruction.
package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Opcode enumerates the VM's operations.
type Opcode uint8

// Opcodes.
const (
	OpLi Opcode = iota
	OpFli
	OpMov
	OpFmov
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpAddi
	OpFadd
	OpFsub
	OpFmul
	OpFdiv
	OpCvtf
	OpCvti
	OpLd
	OpLdA
	OpFld
	OpFldA
	OpSt
	OpFst
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpJmp
	OpTick
	OpHalt
)

var opNames = map[string]Opcode{
	"li": OpLi, "fli": OpFli, "mov": OpMov, "fmov": OpFmov,
	"add": OpAdd, "sub": OpSub, "mul": OpMul, "div": OpDiv, "addi": OpAddi,
	"fadd": OpFadd, "fsub": OpFsub, "fmul": OpFmul, "fdiv": OpFdiv,
	"cvtf": OpCvtf, "cvti": OpCvti,
	"ld": OpLd, "ld.a": OpLdA, "fld": OpFld, "fld.a": OpFldA,
	"st": OpSt, "fst": OpFst,
	"beq": OpBeq, "bne": OpBne, "blt": OpBlt, "bge": OpBge,
	"jmp": OpJmp, "tick": OpTick, "halt": OpHalt,
}

// Inst is one assembled instruction.
type Inst struct {
	Op   Opcode
	D    int     // destination register index
	A, B int     // source register indices
	Imm  int64   // integer immediate / branch target / tick count
	FImm float64 // float immediate
	Off  int64   // load/store offset
	Line int     // source line, for diagnostics
}

// Program is an assembled instruction sequence.
type Program struct {
	Insts  []Inst
	Labels map[string]int
	// PCBase gives each instruction a distinct synthetic PC
	// (PCBase + 4*index), which is what the approximator indexes on.
	PCBase uint64
}

// Assemble parses assembly text into a Program.
func Assemble(src string) (*Program, error) {
	p := &Program{Labels: map[string]int{}, PCBase: 0x800000}
	type patch struct {
		inst  int
		label string
		line  int
	}
	var patches []patch

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading labels (possibly several).
		for {
			if i := strings.IndexByte(line, ':'); i >= 0 && !strings.ContainsAny(line[:i], " \t,") {
				label := line[:i]
				if _, dup := p.Labels[label]; dup {
					return nil, fmt.Errorf("isa: line %d: duplicate label %q", ln+1, label)
				}
				p.Labels[label] = len(p.Insts)
				line = strings.TrimSpace(line[i+1:])
				if line == "" {
					break
				}
				continue
			}
			break
		}
		if line == "" {
			continue
		}

		fields := strings.Fields(line)
		mnem := fields[0]
		op, ok := opNames[mnem]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: unknown mnemonic %q", ln+1, mnem)
		}
		args := splitArgs(strings.TrimSpace(strings.TrimPrefix(line, mnem)))
		inst := Inst{Op: op, Line: ln + 1}

		fail := func(format string, a ...any) error {
			return fmt.Errorf("isa: line %d: "+format, append([]any{ln + 1}, a...)...)
		}
		need := func(n int) error {
			if len(args) != n {
				return fail("%s needs %d operands, got %d", mnem, n, len(args))
			}
			return nil
		}

		var err error
		switch op {
		case OpLi:
			if err = need(2); err == nil {
				inst.D, err = parseReg(args[0], 'r')
				if err == nil {
					inst.Imm, err = strconv.ParseInt(args[1], 0, 64)
				}
			}
		case OpFli:
			if err = need(2); err == nil {
				inst.D, err = parseReg(args[0], 'f')
				if err == nil {
					inst.FImm, err = strconv.ParseFloat(args[1], 64)
				}
			}
		case OpMov:
			if err = need(2); err == nil {
				inst.D, err = parseReg(args[0], 'r')
				if err == nil {
					inst.A, err = parseReg(args[1], 'r')
				}
			}
		case OpFmov:
			if err = need(2); err == nil {
				inst.D, err = parseReg(args[0], 'f')
				if err == nil {
					inst.A, err = parseReg(args[1], 'f')
				}
			}
		case OpAdd, OpSub, OpMul, OpDiv:
			if err = need(3); err == nil {
				inst.D, err = parseReg(args[0], 'r')
				if err == nil {
					inst.A, err = parseReg(args[1], 'r')
				}
				if err == nil {
					inst.B, err = parseReg(args[2], 'r')
				}
			}
		case OpAddi:
			if err = need(3); err == nil {
				inst.D, err = parseReg(args[0], 'r')
				if err == nil {
					inst.A, err = parseReg(args[1], 'r')
				}
				if err == nil {
					inst.Imm, err = strconv.ParseInt(args[2], 0, 64)
				}
			}
		case OpFadd, OpFsub, OpFmul, OpFdiv:
			if err = need(3); err == nil {
				inst.D, err = parseReg(args[0], 'f')
				if err == nil {
					inst.A, err = parseReg(args[1], 'f')
				}
				if err == nil {
					inst.B, err = parseReg(args[2], 'f')
				}
			}
		case OpCvtf:
			if err = need(2); err == nil {
				inst.D, err = parseReg(args[0], 'f')
				if err == nil {
					inst.A, err = parseReg(args[1], 'r')
				}
			}
		case OpCvti:
			if err = need(2); err == nil {
				inst.D, err = parseReg(args[0], 'r')
				if err == nil {
					inst.A, err = parseReg(args[1], 'f')
				}
			}
		case OpLd, OpLdA, OpSt:
			if err = need(2); err == nil {
				inst.D, err = parseReg(args[0], 'r')
				if err == nil {
					inst.Off, inst.A, err = parseMem(args[1])
				}
			}
		case OpFld, OpFldA, OpFst:
			if err = need(2); err == nil {
				inst.D, err = parseReg(args[0], 'f')
				if err == nil {
					inst.Off, inst.A, err = parseMem(args[1])
				}
			}
		case OpBeq, OpBne, OpBlt, OpBge:
			if err = need(3); err == nil {
				inst.A, err = parseReg(args[0], 'r')
				if err == nil {
					inst.B, err = parseReg(args[1], 'r')
				}
				if err == nil {
					patches = append(patches, patch{inst: len(p.Insts), label: args[2], line: ln + 1})
				}
			}
		case OpJmp:
			if err = need(1); err == nil {
				patches = append(patches, patch{inst: len(p.Insts), label: args[0], line: ln + 1})
			}
		case OpTick:
			if err = need(1); err == nil {
				inst.Imm, err = strconv.ParseInt(args[0], 0, 64)
				if err == nil && inst.Imm < 0 {
					err = fail("negative tick")
				}
			}
		case OpHalt:
			err = need(0)
		}
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %w", ln+1, err)
		}
		p.Insts = append(p.Insts, inst)
	}

	for _, pt := range patches {
		target, ok := p.Labels[pt.label]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: undefined label %q", pt.line, pt.label)
		}
		p.Insts[pt.inst].Imm = int64(target)
	}
	return p, nil
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string, kind byte) (int, error) {
	if len(s) < 2 || s[0] != kind {
		return 0, fmt.Errorf("expected %c-register, got %q", kind, s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

// parseMem parses "off(rA)" memory operands.
func parseMem(s string) (off int64, reg int, err error) {
	open := strings.IndexByte(s, '(')
	close := strings.IndexByte(s, ')')
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q (want off(rA))", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err = strconv.ParseInt(offStr, 0, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	reg, err = parseReg(strings.TrimSpace(s[open+1:close]), 'r')
	return off, reg, err
}
