package workloads

import (
	"math"
	"sort"

	"lva/internal/memsim"
)

// Ferret stands in for PARSEC ferret: content-based image similarity
// search. The database holds per-segment floating-point feature vectors
// grouped into images; a query is matched in two stages (cluster-centre
// ranking, then a full scan of the closest clusters). The database feature
// vectors loaded during distance computation are the annotated approximate
// data (§IV). The paper's error metric is conservative: one minus the
// fraction of the precise result set recovered by the approximate run.
type Ferret struct {
	// Segments is the total number of database segments.
	Segments int
	// Dims is the feature-vector dimensionality.
	Dims int
	// SegmentsPerImage groups segments into database images.
	SegmentsPerImage int
	// Clusters is the number of indexing clusters.
	Clusters int
	// ProbeClusters is how many top clusters a query scans fully.
	ProbeClusters int
	// Queries is the number of query images.
	Queries int
	// QuerySegments is the number of segments per query image.
	QuerySegments int
	// TopK is the result-set size per query.
	TopK int
	// TickPerElem models per-element distance cost; TickPerQuery models
	// the up-front segmentation/feature-extraction stages of the pipeline.
	TickPerElem, TickPerQuery int
}

// NewFerret returns the calibrated default configuration.
func NewFerret() *Ferret {
	return &Ferret{
		Segments: 3072, Dims: 24, SegmentsPerImage: 4,
		Clusters: 48, ProbeClusters: 3,
		Queries: 48, QuerySegments: 3, TopK: 8,
		TickPerElem: 8, TickPerQuery: 330000,
	}
}

// Name implements Workload.
func (f *Ferret) Name() string { return "ferret" }

// FloatData implements Workload.
func (f *Ferret) FloatData() bool { return true }

// FeedbackFree implements Workload: the annotated feature database is
// read-only after setup, the probe order and cluster traversal are driven
// by precise Go-side metadata, and loaded values only accumulate into
// per-query distances — never into stored state or addresses.
func (f *Ferret) FeedbackFree() bool { return true }

// FerretOutput is the per-query result sets (database image ids). Error is
// 1 - |approx ∩ precise| / |precise| averaged over queries.
type FerretOutput struct {
	Results [][]int
}

// Error implements Output.
func (o FerretOutput) Error(precise Output) float64 {
	p, ok := precise.(FerretOutput)
	if !ok || len(p.Results) != len(o.Results) || len(o.Results) == 0 {
		return 1
	}
	var sum float64
	for q := range o.Results {
		ref := make(map[int]bool, len(p.Results[q]))
		for _, id := range p.Results[q] {
			ref[id] = true
		}
		if len(ref) == 0 {
			continue
		}
		inter := 0
		for _, id := range o.Results[q] {
			if ref[id] {
				inter++
			}
		}
		sum += 1 - float64(inter)/float64(len(ref))
	}
	return sum / float64(len(o.Results))
}

// Run implements Workload.
func (f *Ferret) Run(mem *memsim.Sim, seed uint64) Output {
	rng := NewRNG(seed)
	arena := NewArena()

	// Cluster centres: the latent structure of the database.
	centers := make([][]float64, f.Clusters)
	for c := range centers {
		centers[c] = make([]float64, f.Dims)
		for d := range centers[c] {
			centers[c][d] = rng.Float64() * 10
		}
	}

	// Database: one flat array of feature values, segment-major. Each
	// segment belongs to a cluster (centre + noise) and to an image.
	db := NewF64Array(arena, f.Segments*f.Dims)
	segCluster := make([]int, f.Segments)
	clusterSegs := make([][]int, f.Clusters)
	for s := 0; s < f.Segments; s++ {
		c := rng.Intn(f.Clusters)
		segCluster[s] = c
		clusterSegs[c] = append(clusterSegs[c], s)
		for d := 0; d < f.Dims; d++ {
			db.Data[s*f.Dims+d] = centers[c][d] + rng.Norm()*0.6
		}
	}

	results := make([][]int, f.Queries)
	for q := 0; q < f.Queries; q++ {
		mem.SetThread(q * 4 / f.Queries)
		// Feature extraction / segmentation stages of the pipeline.
		mem.Tick(uint64(f.TickPerQuery))

		// Aggregate image scores across this query's segments.
		imgScore := make(map[int]float64)
		for qs := 0; qs < f.QuerySegments; qs++ {
			// Query vector: a perturbed database cluster member (precise:
			// it is local to the query pipeline).
			qc := rng.Intn(f.Clusters)
			qvec := make([]float64, f.Dims)
			for d := range qvec {
				qvec[d] = centers[qc][d] + rng.Norm()*0.7
			}

			// Stage 1: rank cluster centres (index structure: precise).
			cdist := make([]float64, f.Clusters)
			for c := 0; c < f.Clusters; c++ {
				var s2 float64
				for d := 0; d < f.Dims; d++ {
					diff := qvec[d] - centers[c][d]
					s2 += diff * diff
				}
				cdist[c] = s2
			}
			probe := topK(cdist, f.ProbeClusters)

			// Stage 2: full scan of the probed clusters; the database
			// feature loads are approximate.
			for _, c := range probe {
				for _, s := range clusterSegs[c] {
					var s2 float64
					for d := 0; d < f.Dims; d++ {
						v := db.Load(mem, pcBase(idFerret, d), s*f.Dims+d, true)
						diff := qvec[d] - v
						s2 += diff * diff
						mem.Tick(uint64(f.TickPerElem))
					}
					img := s / f.SegmentsPerImage
					score := math.Sqrt(s2)
					if old, okk := imgScore[img]; !okk || score < old {
						imgScore[img] = score
					}
				}
			}
		}

		// Top-K images by best-segment distance.
		ids := make([]int, 0, len(imgScore))
		dist := make([]float64, 0, len(imgScore))
		for id := range imgScore {
			ids = append(ids, id)
		}
		// Deterministic order for ties.
		sort.Ints(ids)
		for _, id := range ids {
			dist = append(dist, imgScore[id])
		}
		top := topK(dist, f.TopK)
		res := make([]int, len(top))
		for i, t := range top {
			res[i] = ids[t]
		}
		results[q] = res
	}
	return FerretOutput{Results: results}
}
