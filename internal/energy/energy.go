// Package energy provides the dynamic-energy model for the full-system
// simulator. The paper uses CACTI 5.1 at 32 nm to obtain per-access dynamic
// energies for the caches, main memory and the approximator tables (§V-B);
// we use representative per-event constants of the same magnitudes, so the
// energy *ratios* the paper reports are preserved. The approximator-table
// overhead is charged explicitly on every approximator access.
package energy

// Model holds per-event dynamic energies in picojoules.
type Model struct {
	// L1Access is one 16 KB L1 read/write.
	L1Access float64
	// L2Access is one 512 KB L2-bank read/write.
	L2Access float64
	// DRAMAccess is one 64 B main-memory access.
	DRAMAccess float64
	// FlitHop is one flit traversing one router+link.
	FlitHop float64
	// LowPowerFlitHop is one flit traversing the deprioritized low-power
	// lane used for training fetches (§VI-C: LVA tolerates high value
	// delay, so approximated blocks can take slow, energy-efficient paths).
	LowPowerFlitHop float64
	// ApproxAccess is one approximator-table lookup or training write
	// (a ~18 KB direct-mapped SRAM, §VII-A).
	ApproxAccess float64
}

// Default32nm returns per-event energies representative of the paper's
// 32 nm CACTI configuration.
func Default32nm() Model {
	return Model{
		L1Access:        10,
		L2Access:        60,
		DRAMAccess:      15000,
		FlitHop:         6,
		LowPowerFlitHop: 2,
		ApproxAccess:    8,
	}
}

// Tally accumulates event counts and reports total dynamic energy.
type Tally struct {
	Model Model

	L1Accesses       uint64
	L2Accesses       uint64
	DRAMAccesses     uint64
	FlitHops         uint64
	LowPowerFlitHops uint64
	ApproxAccesses   uint64
}

// NewTally returns a tally using the given model.
func NewTally(m Model) *Tally { return &Tally{Model: m} }

// TotalPJ returns the total dynamic energy in picojoules.
func (t *Tally) TotalPJ() float64 {
	return float64(t.L1Accesses)*t.Model.L1Access +
		float64(t.L2Accesses)*t.Model.L2Access +
		float64(t.DRAMAccesses)*t.Model.DRAMAccess +
		float64(t.FlitHops)*t.Model.FlitHop +
		float64(t.LowPowerFlitHops)*t.Model.LowPowerFlitHop +
		float64(t.ApproxAccesses)*t.Model.ApproxAccess
}

// FetchPathPJ returns the energy spent beyond the L1 — the L2, DRAM and NoC
// energy that servicing (or eliding) block fetches controls. This is the
// energy component the paper's L1-miss EDP metric tracks (Figure 11).
func (t *Tally) FetchPathPJ() float64 {
	return float64(t.L2Accesses)*t.Model.L2Access +
		float64(t.DRAMAccesses)*t.Model.DRAMAccess +
		float64(t.FlitHops)*t.Model.FlitHop +
		float64(t.LowPowerFlitHops)*t.Model.LowPowerFlitHop
}
