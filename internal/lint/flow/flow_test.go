package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// loadSrc type-checks one synthetic package and wraps it for Build.
func loadSrc(t *testing.T, src string) (*token.FileSet, *Pkg) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking: %v", err)
	}
	return fset, &Pkg{Path: "p", Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// byName indexes the graph's functions for assertions.
func byName(g *Graph) map[string]*Func {
	m := make(map[string]*Func)
	for _, fn := range g.All() {
		m[fn.Obj.Name()] = fn
	}
	return m
}

func hasCallee(fn, callee *Func) bool {
	for _, c := range fn.Callees {
		if c == callee {
			return true
		}
	}
	return false
}

// TestBuildAndEffects covers call-graph construction and the effect
// summaries: spawn transitivity and WaitGroup-parameter Done facts flowing
// through a forwarding hop, plus CallDonesWaitGroup at a launch site.
func TestBuildAndEffects(t *testing.T) {
	fset, pkg := loadSrc(t, `package p

import "sync"

func leaf(wg *sync.WaitGroup) { defer wg.Done() }

func forward(wg *sync.WaitGroup) { leaf(wg) }

func launch(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go forward(&wg)
	}
	wg.Wait()
}

func serial() int { return len("x") }
`)
	g := Build(fset, []*Pkg{pkg})
	fns := byName(g)
	for _, name := range []string{"leaf", "forward", "launch", "serial"} {
		if fns[name] == nil {
			t.Fatalf("graph is missing %s; have %d nodes", name, len(g.All()))
		}
	}
	if !hasCallee(fns["forward"], fns["leaf"]) {
		t.Errorf("forward should have callee leaf")
	}
	if !hasCallee(fns["launch"], fns["forward"]) {
		t.Errorf("launch should have callee forward (via the go statement)")
	}
	if len(fns["serial"].Callees) != 0 {
		t.Errorf("serial should have no callees, got %d", len(fns["serial"].Callees))
	}

	ComputeEffects(g)
	if !fns["launch"].SpawnsDirect || !fns["launch"].Spawns {
		t.Errorf("launch should spawn directly")
	}
	if fns["forward"].Spawns {
		t.Errorf("forward does not itself spawn; the go statement belongs to launch")
	}
	if !fns["leaf"].WGParamDone[0] {
		t.Errorf("leaf should Done its WaitGroup parameter")
	}
	if !fns["forward"].WGParamDone[0] {
		t.Errorf("forward should inherit Done for its forwarded WaitGroup parameter")
	}
	if fns["forward"].WGParamWait[0] || fns["forward"].WGParamAdd[0] {
		t.Errorf("forward neither Adds nor Waits its parameter")
	}

	// The launch site itself: go forward(&wg) must be provably Done-ing.
	var goCall *ast.CallExpr
	ast.Inspect(fns["launch"].Decl.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			goCall = gs.Call
		}
		return true
	})
	if goCall == nil {
		t.Fatalf("no go statement found in launch")
	}
	wgObj := rootObj(pkg.Info, goCall.Args[0])
	if wgObj == nil || !IsWaitGroup(wgObj.Type()) {
		t.Fatalf("could not resolve the WaitGroup argument")
	}
	if !g.CallDonesWaitGroup(pkg.Info, goCall, wgObj) {
		t.Errorf("go forward(&wg) should resolve as Done-ing wg through the call graph")
	}
}

// TestTaintSummaries covers the order-taint engine: map-range sources,
// summaries across function boundaries (tainted returns, parameter-to-sink
// flows, parameter-sorting barriers), kill on barriers, and the
// closure-return rule (a sort comparator must not taint the sorter).
func TestTaintSummaries(t *testing.T) {
	fset, pkg := loadSrc(t, `package p

func keys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}

func sortNow(xs []string) {}

func sortIdx(xs []string, less func(i, j int) bool) {}

func emit(xs []string) {}

func publish(m map[string]int) {
	emit(keys(m))
}

func publishSorted(m map[string]int) {
	ks := keys(m)
	sortNow(ks)
	emit(ks)
}

func forwardToSink(xs []string) { emit(xs) }

func sorter(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sortIdx(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func useSorter(m map[string]int) {
	emit(sorter(m))
}

func sortParam(xs []string) { sortNow(xs) }
`)
	g := Build(fset, []*Pkg{pkg})
	cfg := TaintConfig{
		IsSink: func(f *types.Func) (string, bool) {
			if f.Name() == "emit" {
				return "the emit sink", true
			}
			return "", false
		},
		IsBarrier: func(f *types.Func) bool {
			return f.Name() == "sortNow" || f.Name() == "sortIdx"
		},
	}
	a, findings := runTaint(g, cfg)
	fns := byName(g)

	if sum := a.Summary(fns["keys"]); !sum.ReturnsTainted {
		t.Errorf("keys returns map-ordered data; summary says clean")
	}
	if sum := a.Summary(fns["sorter"]); sum.ReturnsTainted {
		t.Errorf("sorter sorts before returning; summary says tainted (closure return leaked into the summary?)")
	}
	if sum := a.Summary(fns["forwardToSink"]); sum.ParamToSink&1 == 0 {
		t.Errorf("forwardToSink passes param 0 to a sink; summary bit missing")
	}
	if sum := a.Summary(fns["sortParam"]); sum.SortsParam&1 == 0 {
		t.Errorf("sortParam sorts its parameter via sortNow; SortsParam bit missing")
	}

	wantIn := map[string]int{"publish": 1}
	got := make(map[string]int)
	for _, f := range findings {
		got[f.Fn.Obj.Name()]++
	}
	for fn, n := range wantIn {
		if got[fn] != n {
			t.Errorf("want %d finding(s) in %s, got %d", n, fn, got[fn])
		}
	}
	for fn, n := range got {
		if wantIn[fn] == 0 {
			t.Errorf("unexpected %d finding(s) in %s: %+v", n, fn, findings)
		}
	}
}
