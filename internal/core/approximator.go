package core

import (
	"lva/internal/obs"
	"lva/internal/obs/attr"
	"lva/internal/obs/phase"
	"lva/internal/value"
)

// Decision is the approximator's response to a cache miss.
type Decision struct {
	// Approximated reports whether a value was generated and handed to the
	// processor (coverage). When false the load behaves precisely: the
	// processor waits for the fetch.
	Approximated bool
	// Value is the approximate value (valid only when Approximated).
	Value value.Value
	// Fetch reports whether the block is fetched from the next level of
	// the hierarchy. With approximation degree > 0 a covered miss may
	// elide the fetch entirely (Fetch == false).
	Fetch bool
	// Correct reports, in LVP mode, whether the idealized predictor had
	// the exact value available (upper bound on prediction correctness).
	Correct bool
}

// Stats counts approximator events.
type Stats struct {
	Misses         uint64 // approximate-load misses presented
	Approximations uint64 // misses covered with a generated value
	Fetches        uint64 // block fetches issued (training loads)
	ElidedFetches  uint64 // fetches skipped via approximation degree
	Trainings      uint64 // training commits (after value delay)
	ConfAccepts    uint64 // trainings within the confidence window
	ConfRejects    uint64 // trainings outside the window
	NoEntry        uint64 // misses with no matching table entry
	LowConfidence  uint64 // misses rejected by the confidence counter
	LVPCorrect     uint64 // LVP mode: exact value present in LHB
}

// Coverage returns the fraction of misses that were approximated.
func (s Stats) Coverage() float64 {
	if s.Misses == 0 {
		return 0
	}
	return float64(s.Approximations) / float64(s.Misses)
}

type entry struct {
	valid  bool
	tag    uint64
	conf   int
	degree int    // remaining reuses before the next training fetch
	lru    uint64 // recency stamp for associative tables
	lhb    []value.Value
}

// pendingTrain models value delay: the actual value arrives at the history
// buffers only once the core's load counter reaches `due`.
type pendingTrain struct {
	set       int         // table set captured at miss time
	tag       uint64      // tag captured at miss time
	pc        uint64      // load PC, for per-site attribution
	actual    value.Value // precise value from memory
	approx    value.Value // value the approximator generated (or would have)
	hadApprox bool        // whether approx is meaningful for confidence
	due       uint64      // loadTick at which the fetched value arrives
}

// Approximator is the load value approximator of Figure 3. It is not safe
// for concurrent use; the simulators instantiate one per core.
type Approximator struct {
	cfg     Config
	idxMask uint64
	idxBits uint
	tagMask uint64
	// table holds every way of every set contiguously, indexed
	// set*ways + way — the same flat layout as internal/cache, so a set
	// probe touches adjacent memory instead of chasing per-set slices.
	table    []entry
	ways     int
	clock    uint64
	ghb      []value.Value // ring of last GHBSize trained values
	ghbHead  int
	ghbCount int
	// pending is a FIFO ring of in-flight trainings ordered by due tick
	// (delays are uniform, so enqueue order IS due order). A ring with a
	// head cursor makes OnLoad's advance a single head comparison instead
	// of a decrement-and-compact walk over every in-flight entry per load.
	pending   []pendingTrain
	pendHead  int
	pendCount int
	loadTick  uint64 // loads issued so far (OnLoad calls)
	stats     Stats
	// om is non-nil only when obs metrics were enabled at construction.
	om *coreMetrics
	// at is non-nil only when a flight recorder was attached for this run;
	// the hooks fire on training commits, never on the load fast path.
	at *attr.Recorder
	// ph is non-nil only when a phase profiler was attached for this run;
	// it observes the relative error of judged training commits.
	ph *phase.Profiler
}

// New builds an approximator; it panics on an invalid Config since
// configurations are fixed experiment parameters.
func New(cfg Config) *Approximator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	idxBits := uint(0)
	for 1<<idxBits < cfg.Sets() {
		idxBits++
	}
	a := &Approximator{
		cfg:     cfg,
		idxMask: uint64(cfg.Sets() - 1),
		idxBits: idxBits,
		tagMask: (uint64(1) << cfg.TagBits) - 1,
		table:   make([]entry, cfg.Sets()*cfg.TableWays),
		ways:    cfg.TableWays,
	}
	if cfg.GHBSize > 0 {
		a.ghb = make([]value.Value, cfg.GHBSize)
	}
	if obs.Enabled() {
		a.om = sharedCoreMetrics()
	}
	return a
}

// Config returns the configuration the approximator was built with.
func (a *Approximator) Config() Config { return a.cfg }

// SetAttribution attaches a flight recorder for this run (nil detaches).
// Call before issuing loads; the simulator wires it when attr.Enabled().
func (a *Approximator) SetAttribution(rec *attr.Recorder) { a.at = rec }

// SetPhaseProfile attaches a phase profiler for this run (nil detaches).
// Call before issuing loads; the simulator wires it when phase.Enabled().
func (a *Approximator) SetPhaseProfile(p *phase.Profiler) { a.ph = p }

// Stats returns a copy of the event counters.
func (a *Approximator) Stats() Stats { return a.stats }

// hash folds the load PC and the GHB contents into a table set index and
// tag using XOR, the paper's baseline context hash h(PC, GHB).
func (a *Approximator) hash(pc uint64) (set int, tag uint64) {
	h := pc
	// Mix the PC so nearby PCs spread across the table.
	h ^= h >> 17
	for i := 0; i < a.ghbCount; i++ {
		v := a.ghb[(a.ghbHead-1-i+len(a.ghb)*2)%len(a.ghb)]
		x := value.Truncate(v, a.cfg.MantissaLoss).Bits
		// Fold the value so its entropy (which for floats lives in the
		// high exponent/mantissa bits, especially after truncation)
		// reaches the low bits that form the index and tag. Equal values
		// still hash equally, so truncation improves locality (§VII-B).
		x ^= x >> 33
		x ^= x >> 15
		h ^= x
	}
	return int(h & a.idxMask), (h >> a.idxBits) & a.tagMask
}

// setOf returns the ways of one table set as a window into the flat array.
func (a *Approximator) setOf(set int) []entry {
	base := set * a.ways
	return a.table[base : base+a.ways]
}

// lookup finds the tag-matching entry in a set and refreshes its recency.
func (a *Approximator) lookup(set int, tag uint64) *entry {
	w := a.setOf(set)
	for i := range w {
		e := &w[i]
		if e.valid && e.tag == tag {
			a.clock++
			e.lru = a.clock
			return e
		}
	}
	return nil
}

// OnMiss is invoked on an L1 miss of an approximate load. `actual` is the
// precise value in memory; the execution-driven simulator knows it and the
// approximator uses it only for (possibly delayed) training, mirroring the
// hardware where X_actual arrives with the fetched block.
func (a *Approximator) OnMiss(pc uint64, actual value.Value) Decision {
	a.stats.Misses++
	set, tag := a.hash(pc)
	e := a.lookup(set, tag)

	if e == nil {
		// Cold or aliased entry: no approximation possible; fetch, then
		// (after the value delay) allocate/retag and train.
		a.stats.NoEntry++
		a.stats.Fetches++
		a.enqueueTrain(set, tag, pc, actual, value.Value{}, false)
		return Decision{Fetch: true}
	}

	if a.cfg.Mode == ModeLVP {
		return a.lvpMiss(set, tag, pc, e, actual)
	}

	if len(e.lhb) == 0 {
		// Entry exists but has no history yet (e.g. retagged while a
		// training is still pending): behave precisely.
		a.stats.NoEntry++
		a.stats.Fetches++
		a.enqueueTrain(set, tag, pc, actual, value.Value{}, false)
		return Decision{Fetch: true}
	}

	candidate := a.cfg.Compute.apply(e.lhb)

	// Confidence gate: floating-point data always uses the counter;
	// integer data only when IntConfidence is set (§VI-B).
	useConf := actual.Kind == value.Float || a.cfg.IntConfidence
	if useConf && e.conf < 0 {
		a.stats.LowConfidence++
		a.stats.Fetches++
		a.enqueueTrain(set, tag, pc, actual, candidate, true)
		return Decision{Fetch: true}
	}

	a.stats.Approximations++

	// Approximation made: the degree counter (initialized to the maximum
	// degree, decremented per approximation) decides whether the fetch is
	// elided. Only when it reaches zero is the block fetched, the entry
	// trained, and the counter reset (§III-C). While the counter drains the
	// LHB is unchanged, so the recomputed candidate is the same value the
	// paper describes as "reused".
	if a.cfg.Degree > 0 && e.degree > 0 {
		e.degree--
		a.stats.ElidedFetches++
		return Decision{Approximated: true, Value: candidate, Fetch: false}
	}
	e.degree = a.cfg.Degree
	a.stats.Fetches++
	a.enqueueTrain(set, tag, pc, actual, candidate, true)
	return Decision{Approximated: true, Value: candidate, Fetch: true}
}

// lvpMiss implements the idealized LVP baseline: coverage iff the exact
// value sits in the LHB; the block is always fetched and trained.
func (a *Approximator) lvpMiss(set int, tag, pc uint64, e *entry, actual value.Value) Decision {
	correct := false
	for _, v := range e.lhb {
		if v.Equal(actual) {
			correct = true
			break
		}
	}
	a.stats.Fetches++
	a.enqueueTrain(set, tag, pc, actual, actual, false)
	if correct {
		a.stats.LVPCorrect++
		a.stats.Approximations++
		return Decision{Approximated: true, Value: actual, Fetch: true, Correct: true}
	}
	return Decision{Fetch: true}
}

// enqueueTrain schedules a training commit after the configured value delay.
func (a *Approximator) enqueueTrain(set int, tag, pc uint64, actual, approx value.Value, hadApprox bool) {
	t := pendingTrain{set: set, tag: tag, pc: pc, actual: actual, approx: approx, hadApprox: hadApprox}
	if a.cfg.ValueDelay == 0 {
		a.commitTrain(t)
		return
	}
	t.due = a.loadTick + uint64(a.cfg.ValueDelay)
	if a.pendCount == len(a.pending) {
		a.growPending()
	}
	a.pending[(a.pendHead+a.pendCount)%len(a.pending)] = t
	a.pendCount++
}

// growPending (re)sizes the pending ring. Steady state holds at most
// ValueDelay in-flight trainings (one enqueue per load, each live for
// ValueDelay loads), but callers driving OnMiss without OnLoad (tests,
// benchmarks) can exceed that, so the ring doubles like a slice.
func (a *Approximator) growPending() {
	next := make([]pendingTrain, max(2*len(a.pending), a.cfg.ValueDelay+1))
	for i := 0; i < a.pendCount; i++ {
		next[i] = a.pending[(a.pendHead+i)%len(a.pending)]
	}
	a.pending = next
	a.pendHead = 0
}

// OnLoad must be called once per load instruction issued by the core (hit
// or miss, approximate or not). It advances the load tick against which
// value-delay due times are checked: blocks "arrive" only after the
// configured number of further loads. The common case (nothing in flight)
// is an inlinable counter bump plus one compare; the commit walk lives in
// advancePending so this wrapper stays under the inliner budget of the
// simulator's load path.
func (a *Approximator) OnLoad() {
	a.loadTick++
	if a.pendCount == 0 {
		return
	}
	a.advancePending()
}

func (a *Approximator) advancePending() {
	for a.pendCount > 0 {
		t := a.pending[a.pendHead]
		if t.due > a.loadTick {
			return
		}
		a.pendHead = (a.pendHead + 1) % len(a.pending)
		a.pendCount--
		a.commitTrain(t)
	}
}

// Drain commits all pending trainings immediately (end of simulation).
func (a *Approximator) Drain() {
	for ; a.pendCount > 0; a.pendCount-- {
		a.commitTrain(a.pending[a.pendHead])
		a.pendHead = (a.pendHead + 1) % len(a.pending)
	}
}

// commitTrain performs step 4 of Figure 2: X_actual is pushed into the GHB
// and the entry's LHB, and the confidence counter moves by ±1 depending on
// whether X_approx fell within the relaxed confidence window.
func (a *Approximator) commitTrain(t pendingTrain) {
	a.stats.Trainings++
	if m := a.om; m != nil {
		m.trainings.Inc()
	}
	stored := value.Truncate(t.actual, a.cfg.MantissaLoss)

	// GHB push (all trained values, global across entries).
	if len(a.ghb) > 0 {
		a.ghb[a.ghbHead] = stored
		a.ghbHead = (a.ghbHead + 1) % len(a.ghb)
		if a.ghbCount < len(a.ghb) {
			a.ghbCount++
		}
	}

	e := a.lookup(t.set, t.tag)
	if e == nil {
		// (Re)allocate: pick an invalid way or evict the LRU one.
		w := a.setOf(t.set)
		victim := 0
		for i := range w {
			if !w[i].valid {
				victim = i
				break
			}
			if w[i].lru < w[victim].lru {
				victim = i
			}
		}
		a.clock++
		// Reuse the victim's LHB backing array: retagging is frequent under
		// hash aliasing and reallocation here dominated the miss path.
		lhb := w[victim].lhb[:0]
		w[victim] = entry{valid: true, tag: t.tag, conf: 0, degree: a.cfg.Degree, lru: a.clock, lhb: lhb}
		e = &w[victim]
	}
	// Maintain the LHB as a fixed window in place: append until full, then
	// slide left, never re-slicing (which churned the backing array).
	if e.lhb == nil {
		e.lhb = make([]value.Value, 0, a.cfg.LHBSize)
	}
	if len(e.lhb) < a.cfg.LHBSize {
		e.lhb = append(e.lhb, stored)
	} else {
		copy(e.lhb, e.lhb[1:])
		e.lhb[len(e.lhb)-1] = stored
	}

	if !t.hadApprox {
		if at := a.at; at != nil {
			at.Train(t.pc, false, false, false, false, 0)
		}
		return
	}
	before := e.conf
	// The relative error feeds both observability seams; compute it once
	// and only when at least one of them is wired.
	relErr := 0.0
	if a.om != nil || a.at != nil || a.ph != nil {
		relErr = value.RelDiff(t.approx.Float(), t.actual.Float())
	}
	if value.WithinWindow(t.approx, t.actual, a.cfg.Window) {
		a.stats.ConfAccepts++
		if e.conf < a.cfg.ConfMax() {
			e.conf++
		}
		gained := before < 0 && e.conf >= 0
		if m := a.om; m != nil {
			m.confAccepts.Inc()
			if gained {
				m.confGained.Inc()
			}
			m.relErr.Observe(relErr)
		}
		if at := a.at; at != nil {
			at.Train(t.pc, true, true, gained, false, relErr)
		}
		if ph := a.ph; ph != nil {
			ph.Train(relErr)
		}
		return
	}
	a.stats.ConfRejects++
	step := 1
	// §III-B future work: penalize approximations proportionally to how
	// far off they were. Beyond twice the window costs an extra step.
	if a.cfg.ProportionalConfidence && a.cfg.Window > 0 &&
		!value.WithinWindow(t.approx, t.actual, 2*a.cfg.Window) {
		step = 2
	}
	e.conf -= step
	if e.conf < a.cfg.ConfMin() {
		e.conf = a.cfg.ConfMin()
	}
	lost := before >= 0 && e.conf < 0
	if m := a.om; m != nil {
		m.confRejects.Inc()
		if lost {
			m.confLost.Inc()
		}
		m.relErr.Observe(relErr)
	}
	if at := a.at; at != nil {
		at.Train(t.pc, true, false, false, lost, relErr)
	}
	if ph := a.ph; ph != nil {
		ph.Train(relErr)
	}
}

// Reset clears all table, history and pending-training state, keeping the
// configuration. Statistics are also reset.
func (a *Approximator) Reset() {
	for i := range a.table {
		a.table[i] = entry{}
	}
	for i := range a.ghb {
		a.ghb[i] = value.Value{}
	}
	a.ghbHead, a.ghbCount = 0, 0
	a.pendHead, a.pendCount = 0, 0
	a.loadTick = 0
	a.stats = Stats{}
}

// PendingTrainings reports how many fetched blocks are still in flight
// (useful for tests of the value-delay machinery).
func (a *Approximator) PendingTrainings() int { return a.pendCount }

// EntryConfidence exposes the confidence counter for the entry a PC hashes
// to with the current GHB state, for tests and introspection. The second
// result reports whether a valid, tag-matching entry exists.
func (a *Approximator) EntryConfidence(pc uint64) (int, bool) {
	set, tag := a.hash(pc)
	w := a.setOf(set)
	for i := range w {
		if w[i].valid && w[i].tag == tag {
			return w[i].conf, true
		}
	}
	return 0, false
}

// OccupiedEntries counts valid table entries (table-utilization metric for
// the hardware-budget discussion of §VII-A).
func (a *Approximator) OccupiedEntries() int {
	n := 0
	for i := range a.table {
		if a.table[i].valid {
			n++
		}
	}
	return n
}
