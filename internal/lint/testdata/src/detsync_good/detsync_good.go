// Package detsync_good holds the blessed fan-out shapes: preallocated
// index-assigned results, Add-before-go with deferred Done (directly or
// through a handed-off worker), and channel messages that carry their own
// index.
package detsync_good

import "sync"

// GatherIndexed is the canonical deterministic fan-out: every worker owns
// out[i], so completion order cannot reach the result.
func GatherIndexed(jobs []int) []int {
	var wg sync.WaitGroup
	out := make([]int, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = j * j
		}()
	}
	wg.Wait()
	return out
}

// doneWorker computes one job and Dones the WaitGroup it was handed.
func doneWorker(wg *sync.WaitGroup, out []int, i, j int) {
	defer wg.Done()
	out[i] = j * j
}

// forward passes its WaitGroup one hop further down before Done runs; the
// transitive summary still proves the pairing.
func forward(wg *sync.WaitGroup, out []int, i, j int) {
	doneWorker(wg, out, i, j)
}

// HandOff launches named workers whose Done is proven across the call
// graph, including through the forwarding hop.
func HandOff(jobs []int) []int {
	var wg sync.WaitGroup
	out := make([]int, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go forward(&wg, out, i, j)
	}
	wg.Wait()
	return out
}

// indexed carries its own slot, so channel delivery order is harmless.
type indexed struct {
	idx int
	val int
}

// DrainIndexed assigns results by the index the message carries — the
// channel is a transport, not an ordering source.
func DrainIndexed(results chan indexed, n int) []int {
	out := make([]int, n)
	for i := 0; i < n; i++ {
		r := <-results
		out[r.idx] = r.val
	}
	return out
}

// CountDrain folds received values into scalars; no result slice inherits
// the delivery order.
func CountDrain(results chan int) (sum int) {
	for v := range results {
		sum += v
	}
	return sum
}
