package memsim

import (
	"sync"

	"lva/internal/obs"
)

// simMetrics is the package's obs seam (see lvalint's obshooks analyzer:
// hot-path counters must live behind a struct like this, wired only when
// obs.SetEnabled(true) ran before construction). All simulators in the
// process share one instance, so the counters aggregate every kernel
// simulated since enablement.
type simMetrics struct {
	misses  *obs.Counter
	approx  *obs.Counter
	fetches *obs.Counter
}

// sharedSimMetrics lazily registers the package's metrics exactly once.
var sharedSimMetrics = sync.OnceValue(func() *simMetrics {
	r := obs.Default()
	return &simMetrics{
		misses:  r.Counter("memsim_load_misses", "L1 load misses across all simulators"),
		approx:  r.Counter("memsim_approximations", "L1 load misses covered by an approximation or prediction"),
		fetches: r.Counter("memsim_fetches", "blocks fetched into the L1 (demand + prefetch + store allocate)"),
	}
})
