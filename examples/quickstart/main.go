// Quickstart: attach a load value approximator to a simulated L1 and
// stream a synthetic sensor kernel through it.
//
// The kernel models the paper's motivating scenario: an application
// iterating over a large array of noisy, approximation-tolerant
// floating-point samples (think sensor frames or media data), with far
// more data than fits in the cache. Run it precisely, with LVA, and with
// the idealized LVP baseline, and compare MPKI / coverage / output drift.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math"

	"lva"
)

const (
	samples = 1 << 16 // 512 KB of float64 samples: 8x the 64 KB L1
	passes  = 3
	loadPC  = 0x401000
)

// kernel streams the samples through the simulated memory hierarchy and
// returns the aggregate the "application" computes (a smoothed power sum).
// The values the kernel actually consumes come back from the simulator —
// under LVA, covered misses return approximate values, exactly as the
// paper's Pin methodology clobbers load results.
func kernel(mem lva.Memory, data []float64) float64 {
	var acc float64
	for p := 0; p < passes; p++ {
		for i, precise := range data {
			v := mem.LoadFloat(loadPC, 0x1000_0000+uint64(i)*8, precise, true)
			acc += v * v / float64(len(data))
			mem.Tick(20) // the surrounding computation
		}
	}
	return acc
}

// makeData builds slowly-varying samples (value locality: neighbouring
// loads are approximately equal, the property LVA exploits).
func makeData() []float64 {
	data := make([]float64, samples)
	for i := range data {
		t := float64(i) / 256
		data[i] = 100 + 10*math.Sin(t) + 0.2*math.Cos(17*t)
	}
	return data
}

func run(attach lva.Attachment) (lva.SimResult, float64) {
	cfg := lva.DefaultSimConfig()
	cfg.Attach = attach
	sim := lva.NewSimulator(cfg)
	out := kernel(sim, makeData())
	return sim.Result(), out
}

func main() {
	preciseRes, preciseOut := run(lva.AttachNone)
	lvaRes, lvaOut := run(lva.AttachLVA)
	lvpRes, _ := run(lva.AttachLVP)

	fmt.Println("quickstart: 512 KB float stream through a 64 KB L1")
	fmt.Printf("%-10s %10s %10s %10s %10s\n", "config", "MPKI", "coverage", "fetches", "outErr")
	fmt.Printf("%-10s %10.3f %10s %10d %10s\n",
		"precise", preciseRes.EffectiveMPKI(), "-", preciseRes.Fetches, "-")
	fmt.Printf("%-10s %10.3f %9.1f%% %10d %9.4f%%\n",
		"lva", lvaRes.EffectiveMPKI(), lvaRes.Coverage()*100, lvaRes.Fetches,
		math.Abs(lvaOut-preciseOut)/preciseOut*100)
	fmt.Printf("%-10s %10.3f %9.1f%% %10d %10s\n",
		"lvp-ideal", lvpRes.EffectiveMPKI(), lvpRes.Coverage()*100, lvpRes.Fetches, "0 (rollback)")

	// The energy-error knob: raise the approximation degree and watch
	// fetches fall while output drift stays modest.
	fmt.Println("\napproximation degree sweep (fetch elision vs. drift):")
	fmt.Printf("%-8s %10s %10s %10s\n", "degree", "fetches", "coverage", "outErr")
	for _, degree := range []int{0, 2, 4, 8, 16} {
		cfg := lva.DefaultSimConfig()
		cfg.Approx.Degree = degree
		sim := lva.NewSimulator(cfg)
		out := kernel(sim, makeData())
		res := sim.Result()
		fmt.Printf("%-8d %10d %9.1f%% %9.4f%%\n",
			degree, res.Fetches, res.Coverage()*100,
			math.Abs(out-preciseOut)/preciseOut*100)
	}
}
