package isa

import (
	"strings"
	"testing"

	"lva/internal/memsim"
)

func preciseMem() *memsim.Simulator {
	cfg := memsim.DefaultConfig()
	cfg.Attach = memsim.AttachNone
	return memsim.New(cfg)
}

func lvaMem() *memsim.Simulator {
	cfg := memsim.DefaultConfig()
	cfg.Approx.ValueDelay = 0
	return memsim.New(cfg)
}

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestArithmetic(t *testing.T) {
	p := mustAssemble(t, `
		li   r1, 6
		li   r2, 7
		mul  r3, r1, r2
		addi r4, r3, -2
		sub  r5, r4, r1
		div  r6, r5, r2   # 34/7 = 4
		halt
	`)
	vm := NewVM(p, preciseMem())
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.R[3] != 42 || vm.R[4] != 40 || vm.R[5] != 34 || vm.R[6] != 4 {
		t.Fatalf("registers: %v", vm.R[:8])
	}
}

func TestFloatOpsAndConversions(t *testing.T) {
	p := mustAssemble(t, `
		fli  f1, 1.5
		fli  f2, 2.5
		fadd f3, f1, f2
		fmul f4, f3, f2
		li   r1, 3
		cvtf f5, r1
		fdiv f6, f4, f5
		cvti r2, f6
		halt
	`)
	vm := NewVM(p, preciseMem())
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.F[3] != 4.0 || vm.F[4] != 10.0 || vm.F[6] != 10.0/3 || vm.R[2] != 3 {
		t.Fatalf("float regs: %v, r2=%d", vm.F[:8], vm.R[2])
	}
}

func TestR0IsZero(t *testing.T) {
	p := mustAssemble(t, `
		li r0, 99
		li r1, 5
		add r2, r1, r0
		halt
	`)
	vm := NewVM(p, preciseMem())
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.R[0] != 0 || vm.R[2] != 5 {
		t.Fatalf("r0 must stay zero: %v", vm.R[:4])
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	p := mustAssemble(t, `
		li r1, 0    # sum
		li r2, 1    # i
		li r3, 11
	loop:
		bge r2, r3, done
		add r1, r1, r2
		addi r2, r2, 1
		jmp loop
	done:
		halt
	`)
	vm := NewVM(p, preciseMem())
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.R[1] != 55 {
		t.Fatalf("sum = %d", vm.R[1])
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	p := mustAssemble(t, `
		li  r1, 0x1000
		li  r2, 123
		st  r2, 0(r1)
		ld  r3, 0(r1)
		fli f1, 2.75
		fst f1, 64(r1)
		fld f2, 64(r1)
		halt
	`)
	vm := NewVM(p, preciseMem())
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.R[3] != 123 || vm.F[2] != 2.75 {
		t.Fatalf("memory roundtrip: r3=%d f2=%v", vm.R[3], vm.F[2])
	}
	if vm.PeekInt(0x1000) != 123 || vm.PeekFloat(0x1040) != 2.75 {
		t.Fatal("backing store must hold precise values")
	}
}

func TestApproximateLoadIsClobbered(t *testing.T) {
	// Train the approximator through misses at one PC with value 10, then
	// an ld.a of a fresh block holding 99 must consume ~10 while the
	// backing store keeps 99.
	// One static ld.a inside a loop: iterations 1-4 train the entry with
	// value 10; iteration 5 reads a block holding 99 but — being the same
	// static instruction — consumes the approximation instead. r5 captures
	// the final loaded value.
	var sb strings.Builder
	sb.WriteString(`
		li r1, 0x100000
		li r3, 0
		li r4, 5
	train:
		bge r3, r4, done
		ld.a r2, 0(r1)
		mov r5, r2
		addi r1, r1, 64
		addi r3, r3, 1
		jmp train
	done:
		halt
	`)
	p := mustAssemble(t, sb.String())
	mem := lvaMem()
	vm := NewVM(p, mem)
	for i := 0; i < 4; i++ {
		vm.PokeInt(uint64(0x100000+i*64), 10)
	}
	vm.PokeInt(0x100000+4*64, 99)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.R[5] != 10 {
		t.Fatalf("approximate load must consume the approximation 10, got %d", vm.R[5])
	}
	if vm.PeekInt(0x100000+4*64) != 99 {
		t.Fatal("backing memory must stay precise")
	}
	if mem.Result().Covered == 0 {
		t.Fatal("coverage must be recorded")
	}
	// The same program with precise `ld` consumes 99.
	p2 := mustAssemble(t, strings.ReplaceAll(sb.String(), "ld.a", "ld"))
	vm2 := NewVM(p2, lvaMem())
	for i := 0; i < 4; i++ {
		vm2.PokeInt(uint64(0x100000+i*64), 10)
	}
	vm2.PokeInt(0x100000+4*64, 99)
	if err := vm2.Run(); err != nil {
		t.Fatal(err)
	}
	if vm2.R[5] != 99 {
		t.Fatalf("precise load must consume 99, got %d", vm2.R[5])
	}
}

func TestTickFlowsToMemory(t *testing.T) {
	p := mustAssemble(t, `
		tick 100
		halt
	`)
	mem := preciseMem()
	vm := NewVM(p, mem)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if mem.Result().Instructions != 100 {
		t.Fatalf("ticks must reach the simulator: %d", mem.Result().Instructions)
	}
}

func TestDivisionByZero(t *testing.T) {
	p := mustAssemble(t, `
		li r1, 5
		div r2, r1, r0
		halt
	`)
	if err := NewVM(p, preciseMem()).Run(); err == nil {
		t.Fatal("integer division by zero must error")
	}
}

func TestRunawayGuard(t *testing.T) {
	p := mustAssemble(t, `
	spin:
		jmp spin
	`)
	vm := NewVM(p, preciseMem())
	vm.MaxSteps = 1000
	if err := vm.Run(); err == nil {
		t.Fatal("infinite loop must hit MaxSteps")
	}
}

func TestFallOffEndHalts(t *testing.T) {
	p := mustAssemble(t, `li r1, 1`)
	if err := NewVM(p, preciseMem()).Run(); err != nil {
		t.Fatalf("implicit halt: %v", err)
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"bogus r1, r2",
		"li r1",               // missing operand
		"li x1, 5",            // bad register kind
		"li r99, 5",           // register out of range
		"ld r1, nonsense",     // bad memory operand
		"jmp nowhere",         // undefined label
		"dup: li r1, 1\ndup:", // duplicate label
		"tick -5",             // negative tick
		"fli f1, notafloat",
	}
	for i, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("case %d (%q) must fail to assemble", i, src)
		}
	}
}

func TestLabelsBeforeInstructions(t *testing.T) {
	p := mustAssemble(t, `
	start: li r1, 1
	       jmp end
	       li r1, 2
	end:   halt
	`)
	vm := NewVM(p, preciseMem())
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.R[1] != 1 {
		t.Fatalf("jump skipped wrong code: r1=%d", vm.R[1])
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := mustAssemble(t, `
		# full-line comment

		li r1, 7   # trailing comment
		halt
	`)
	if len(p.Insts) != 2 {
		t.Fatalf("instructions = %d", len(p.Insts))
	}
}

func TestDistinctPCsPerInstruction(t *testing.T) {
	p := mustAssemble(t, `
		li r1, 0x2000
		ld.a r2, 0(r1)
		ld.a r3, 64(r1)
		halt
	`)
	mem := lvaMem()
	vm := NewVM(p, mem)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if got := mem.Result().StaticPCs; got != 2 {
		t.Fatalf("two ld.a sites must yield 2 static PCs, got %d", got)
	}
}
