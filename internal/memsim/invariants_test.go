package memsim

import (
	"testing"
	"testing/quick"
)

// Property tests: bookkeeping invariants that must hold for any access
// stream under any attachment.

type step struct {
	pc     uint16
	addr   uint16
	value  int16
	approx bool
	store  bool
}

func drive(att Attachment, degree int, steps []step) Result {
	cfg := DefaultConfig()
	cfg.Attach = att
	cfg.Approx.ValueDelay = 0
	cfg.Approx.Degree = degree
	s := New(cfg)
	for _, st := range steps {
		pc := 0x400 + uint64(st.pc%16)*4
		addr := uint64(st.addr) * 8
		if st.store {
			s.Store(pc, addr)
		} else {
			s.LoadInt(pc, addr, int64(st.value), st.approx)
		}
	}
	return s.Result()
}

func checkInvariants(r Result) bool {
	if r.Covered > r.LoadMisses {
		return false
	}
	if r.LoadMisses > r.Loads {
		return false
	}
	if r.Loads+r.Stores > r.Instructions {
		return false
	}
	if r.Coverage() < 0 || r.Coverage() > 1 {
		return false
	}
	if r.EffectiveMPKI() > r.RawMPKI() {
		return false
	}
	return true
}

func TestInvariantsAcrossAttachments(t *testing.T) {
	for _, att := range []Attachment{AttachNone, AttachLVA, AttachLVP, AttachPrefetch} {
		att := att
		f := func(raw []uint32, degSel uint8) bool {
			steps := make([]step, len(raw))
			for i, r := range raw {
				steps[i] = step{
					pc:     uint16(r),
					addr:   uint16(r >> 8),
					value:  int16(r % 97),
					approx: r&1 == 0,
					store:  r&0xF == 7,
				}
			}
			return checkInvariants(drive(att, int(degSel%4), steps))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%v: %v", att, err)
		}
	}
}

func TestPreciseNeverCovers(t *testing.T) {
	f := func(raw []uint32) bool {
		steps := make([]step, len(raw))
		for i, r := range raw {
			steps[i] = step{pc: uint16(r), addr: uint16(r >> 8), value: 1, approx: true}
		}
		r := drive(AttachNone, 0, steps)
		return r.Covered == 0 && r.Fetches == r.LoadMisses+r.Cache.StoreMiss
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLVADegreeZeroFetchesEveryMiss(t *testing.T) {
	// With degree 0 the fetch-per-miss invariant of precise execution is
	// preserved even when approximating (fetches train the approximator).
	f := func(raw []uint16) bool {
		steps := make([]step, len(raw))
		for i, r := range raw {
			steps[i] = step{pc: uint16(r % 64), addr: r, value: int16(r % 13), approx: true}
		}
		res := drive(AttachLVA, 0, steps)
		return res.Fetches == res.LoadMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLVPFetchesEqualMisses(t *testing.T) {
	// LVP always validates: fetches == misses regardless of the degree
	// the caller tried to configure.
	f := func(raw []uint16, degSel uint8) bool {
		steps := make([]step, len(raw))
		for i, r := range raw {
			steps[i] = step{pc: uint16(r % 8), addr: r, value: int16(r % 5), approx: true}
		}
		res := drive(AttachLVP, int(degSel%17), steps)
		return res.Fetches == res.LoadMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxStatsMatchSimCounts(t *testing.T) {
	// The simulator's covered counter must equal the approximator's
	// Approximations stat; its miss counter must equal the approximator's
	// Misses when every load is approximate.
	f := func(raw []uint16) bool {
		steps := make([]step, len(raw))
		for i, r := range raw {
			steps[i] = step{pc: uint16(r % 32), addr: r, value: int16(r % 7), approx: true}
		}
		r := drive(AttachLVA, 0, steps)
		return r.Approx.Approximations == r.Covered && r.Approx.Misses == r.LoadMisses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
