package workloads

import (
	"math"

	"lva/internal/memsim"
)

// Blackscholes stands in for PARSEC blackscholes: closed-form Black–Scholes
// pricing of a portfolio of European options. Matching the paper's
// characterization (§IV), the input arrays are floating point, highly
// redundant (the spot price takes four values, two of which cover >98% of
// the portfolio), read repeatedly and never updated. The input arrays are
// annotated approximate; option type (control flow) is not.
type Blackscholes struct {
	// N is the number of options in the portfolio.
	N int
	// Passes is how many times the portfolio is re-priced (PARSEC re-runs
	// the kernel over the same inputs).
	Passes int
	// TickPerOption models the non-memory instruction cost of one pricing
	// (CNDF evaluations etc.), calibrated so precise MPKI lands near the
	// paper's Table I value (0.93).
	TickPerOption int
}

// NewBlackscholes returns the calibrated default configuration.
func NewBlackscholes() *Blackscholes {
	return &Blackscholes{N: 24576, Passes: 2, TickPerOption: 665}
}

// Name implements Workload.
func (b *Blackscholes) Name() string { return "blackscholes" }

// FloatData implements Workload.
func (b *Blackscholes) FloatData() bool { return true }

// FeedbackFree implements Workload: the annotated option-parameter arrays
// are written only during setup, every price is derived per option without
// being stored back through the simulator, and loop bounds and addresses
// come from precise loop indices — so the access stream cannot depend on
// what an approximator returned.
func (b *Blackscholes) FeedbackFree() bool { return true }

// BlackscholesOutput is the list of computed option prices. The paper's
// error metric: the percentage of prices whose relative error exceeds 1%.
type BlackscholesOutput struct {
	Prices []float64
}

// Error implements Output.
func (o BlackscholesOutput) Error(precise Output) float64 {
	p, ok := precise.(BlackscholesOutput)
	if !ok || len(p.Prices) != len(o.Prices) {
		return 1
	}
	bad := 0
	for i := range o.Prices {
		ref := p.Prices[i]
		d := math.Abs(o.Prices[i] - ref)
		if ref != 0 {
			d /= math.Abs(ref)
		}
		if d > 0.01 {
			bad++
		}
	}
	if len(o.Prices) == 0 {
		return 0
	}
	return float64(bad) / float64(len(o.Prices))
}

// cndf is the cumulative normal distribution function.
func cndf(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// blackScholes prices one European option.
func blackScholes(s, k, r, v, t float64, call bool) float64 {
	// Defensive clamps: approximate inputs must not reach a zero
	// denominator (§IV "Divide-By-Zero" guideline).
	if v < 0.01 {
		v = 0.01
	}
	if t < 0.05 {
		t = 0.05
	}
	if s < 0.01 {
		s = 0.01
	}
	if k < 0.01 {
		k = 0.01
	}
	sq := v * math.Sqrt(t)
	d1 := (math.Log(s/k) + (r+v*v/2)*t) / sq
	d2 := d1 - sq
	if call {
		return s*cndf(d1) - k*math.Exp(-r*t)*cndf(d2)
	}
	return k*math.Exp(-r*t)*cndf(-d2) - s*cndf(-d1)
}

// Load-site identifiers (distinct static PCs, Figure 12).
const (
	bsSiteSpot = iota
	bsSiteStrike
	bsSiteRate
	bsSiteVol
	bsSiteTime
	bsSiteCount
)

// Run implements Workload.
func (b *Blackscholes) Run(mem *memsim.Sim, seed uint64) Output {
	rng := NewRNG(seed)
	arena := NewArena()

	spot := NewF64Array(arena, b.N)
	strike := NewF64Array(arena, b.N)
	rate := NewF64Array(arena, b.N)
	vol := NewF64Array(arena, b.N)
	tim := NewF64Array(arena, b.N)
	prices := NewF64Array(arena, b.N)
	isCall := make([]bool, b.N) // control flow: never approximated

	// Inputs with the redundancy the paper describes: spot takes four
	// values, two of which cover >98% of options. PARSEC's input file is a
	// small template repeated thousands of times, so identical values come
	// in long runs; we reproduce that run structure (it is what gives load
	// value approximators and predictors their value locality here).
	spotVals := []float64{100.0, 42.0, 71.5, 36.3}
	strikeFactor := []float64{0.9, 1.0, 1.1}
	rateVals := []float64{0.0275, 0.1}
	volVals := []float64{0.2, 0.3, 0.4}
	timVals := []float64{0.5, 1.0, 2.0}
	for i := 0; i < b.N; {
		runLen := 32 + rng.Intn(96)
		r := rng.Float64()
		var s float64
		switch {
		case r < 0.55:
			s = spotVals[0]
		case r < 0.98:
			s = spotVals[1]
		case r < 0.99:
			s = spotVals[2]
		default:
			s = spotVals[3]
		}
		k := s * strikeFactor[rng.Intn(3)]
		rt := rateVals[rng.Intn(2)]
		v := volVals[rng.Intn(3)]
		t := timVals[rng.Intn(3)]
		for j := 0; j < runLen && i < b.N; j, i = j+1, i+1 {
			spot.Data[i] = s
			strike.Data[i] = k
			rate.Data[i] = rt
			vol.Data[i] = v
			tim.Data[i] = t
			isCall[i] = rng.Float64() < 0.6
		}
	}

	threads := 4
	// The per-option input read is a structure-of-arrays gather: one load
	// per input array, distinct site each, same index.
	inputs := []*F64Array{spot, strike, rate, vol, tim}
	inputPCs := []uint64{
		pcBase(idBlackscholes, bsSiteSpot),
		pcBase(idBlackscholes, bsSiteStrike),
		pcBase(idBlackscholes, bsSiteRate),
		pcBase(idBlackscholes, bsSiteVol),
		pcBase(idBlackscholes, bsSiteTime),
	}
	var in [bsSiteCount]float64
	for pass := 0; pass < b.Passes; pass++ {
		for i := 0; i < b.N; i++ {
			mem.SetThread(i * threads / b.N)
			GatherF64(mem, inputs, inputPCs, i, true, in[:])
			price := blackScholes(in[0], in[1], in[2], in[3], in[4], isCall[i])
			mem.Tick(uint64(b.TickPerOption))
			prices.Store(mem, pcBase(idBlackscholes, bsSiteCount), i, price)
		}
	}
	out := BlackscholesOutput{Prices: make([]float64, b.N)}
	copy(out.Prices, prices.Data)
	return out
}
