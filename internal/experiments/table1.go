package experiments

import (
	"math"

	"lva/internal/workloads"
)

// Table1 reproduces Table I: precise L1 MPKI per benchmark and the
// variation in dynamic instruction count when load value approximation is
// employed (the paper reports variations of 0.00%–2.37%; approximation
// perturbs control flow only indirectly, through approximated values
// feeding data-dependent branches).
func Table1() *Figure {
	f := &Figure{
		ID:         "table1",
		Title:      "Precise L1 MPKI and dynamic instruction-count variation under LVA",
		ValueUnit:  "MPKI / % variation",
		Benchmarks: workloads.Names(),
	}
	b := newBatch("table1")
	precise := b.ctrPrecise()
	runs := b.ctrLVA("lva", BaselineFor)
	b.run()
	mpki := Row{Label: "precise L1 MPKI"}
	vari := Row{Label: "inst count variation %"}
	for i := range runs {
		mpki.Values = append(mpki.Values, precise[i].RawMPKI())
		d := math.Abs(float64(runs[i].Instructions)-float64(precise[i].Instructions)) /
			float64(precise[i].Instructions) * 100
		vari.Values = append(vari.Values, d)
	}
	f.Rows = []Row{mpki, vari}
	f.Notes = append(f.Notes,
		"paper Table I MPKI: blackscholes 0.93, bodytrack 4.93, canneal 12.50, ferret 3.28, fluidanimate 1.23, swaptions 4.92e-05, x264 0.59",
		"paper Table I variation: 0.99%, 0.05%, 1.25%, 0.60%, 0.17%, 0.00%, 2.37%")
	return f
}
