package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func sampleFigure() *Figure {
	return &Figure{
		ID: "figX", Title: "sample", ValueUnit: "u",
		Benchmarks: []string{"a", "b"},
		Rows: []Row{
			{Label: "s1", Values: []float64{1, 2}},
			{Label: "s2", Values: []float64{0.5, 0}},
		},
		Notes: []string{"a note"},
	}
}

func TestCSVRendering(t *testing.T) {
	out := sampleFigure().CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "series,a,b,mean" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "s1,1,2,1.5") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestJSONRendering(t *testing.T) {
	out, err := sampleFigure().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["id"] != "figX" {
		t.Fatalf("id = %v", decoded["id"])
	}
	means, ok := decoded["means"].(map[string]any)
	if !ok || means["s1"] != 1.5 {
		t.Fatalf("means = %v", decoded["means"])
	}
}

func TestChartRendering(t *testing.T) {
	out := sampleFigure().Chart()
	for _, want := range []string{"figX", "a\n", "b\n", "s1", "s2", "#"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// The max value (2) gets the longest bar; zero gets none.
	lines := strings.Split(out, "\n")
	var barLens []int
	for _, l := range lines {
		if i := strings.IndexByte(l, '|'); i >= 0 {
			barLens = append(barLens, strings.Count(l[i:], "#"))
		}
	}
	if len(barLens) != 4 {
		t.Fatalf("bars = %d", len(barLens))
	}
	// Order: a/s1(1), a/s2(0.5), b/s1(2), b/s2(0).
	if !(barLens[2] > barLens[0] && barLens[0] > barLens[1] && barLens[3] == 0) {
		t.Fatalf("bar scaling wrong: %v", barLens)
	}
}

func TestChartTinyNonZeroVisible(t *testing.T) {
	f := &Figure{
		ID: "f", Benchmarks: []string{"x"},
		Rows: []Row{{Label: "r", Values: []float64{0.0001}}, {Label: "big", Values: []float64{100}}},
	}
	out := f.Chart()
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "r ") && strings.Contains(l, "|") {
			if !strings.Contains(l, "#") {
				t.Fatalf("tiny non-zero value must render a sliver: %q", l)
			}
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	out := sampleFigure().Markdown()
	if !strings.Contains(out, "| series | a | b | mean |") {
		t.Fatalf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "| s1 | 1.000 | 2.000 | 1.500 |") {
		t.Fatalf("markdown row missing:\n%s", out)
	}
}

func TestEmptyFigureRendering(t *testing.T) {
	f := &Figure{ID: "empty"}
	if f.CSV() == "" || f.Chart() == "" || f.Markdown() == "" {
		t.Fatal("empty figures must still render headers")
	}
	if _, err := f.JSON(); err != nil {
		t.Fatal(err)
	}
}
