package workloads

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBlackScholesKnownValue(t *testing.T) {
	// Standard textbook case: S=100, K=100, r=5%, sigma=20%, T=1.
	// Call ~ 10.4506, put ~ 5.5735 (Black–Scholes closed form).
	call := blackScholes(100, 100, 0.05, 0.20, 1, true)
	put := blackScholes(100, 100, 0.05, 0.20, 1, false)
	if math.Abs(call-10.4506) > 0.001 {
		t.Fatalf("call = %v, want ~10.4506", call)
	}
	if math.Abs(put-5.5735) > 0.001 {
		t.Fatalf("put = %v, want ~5.5735", put)
	}
}

func TestPutCallParity(t *testing.T) {
	// C - P = S - K e^{-rT}, for any (sane) inputs.
	f := func(sRaw, kRaw, vRaw, tRaw uint16) bool {
		s := 10 + float64(sRaw%2000)/10 // 10..210
		k := 10 + float64(kRaw%2000)/10
		v := 0.05 + float64(vRaw%100)/200 // 0.05..0.55
		tt := 0.1 + float64(tRaw%40)/10   // 0.1..4.1
		r := 0.03
		c := blackScholes(s, k, r, v, tt, true)
		p := blackScholes(s, k, r, v, tt, false)
		lhs := c - p
		rhs := s - k*math.Exp(-r*tt)
		return math.Abs(lhs-rhs) < 1e-6*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCallMonotoneInSpot(t *testing.T) {
	prev := -1.0
	for s := 50.0; s <= 150; s += 10 {
		c := blackScholes(s, 100, 0.05, 0.2, 1, true)
		if c < prev {
			t.Fatalf("call price must rise with spot: %v after %v", c, prev)
		}
		prev = c
	}
}

func TestCallMonotoneInVol(t *testing.T) {
	prev := -1.0
	for v := 0.05; v <= 0.8; v += 0.05 {
		c := blackScholes(100, 100, 0.05, v, 1, true)
		if c < prev {
			t.Fatalf("call price must rise with volatility: %v after %v", c, prev)
		}
		prev = c
	}
}

func TestBlackScholesDefensiveClamps(t *testing.T) {
	// §IV divide-by-zero guideline: approximated inputs must never reach a
	// zero denominator. Zero/negative inputs must produce finite prices.
	for _, in := range [][5]float64{
		{0, 100, 0.05, 0.2, 1},
		{100, 0, 0.05, 0.2, 1},
		{100, 100, 0.05, 0, 1},
		{100, 100, 0.05, 0.2, 0},
		{-5, -5, 0.05, -1, -1},
	} {
		c := blackScholes(in[0], in[1], in[2], in[3], in[4], true)
		if math.IsNaN(c) || math.IsInf(c, 0) {
			t.Fatalf("inputs %v produced %v", in, c)
		}
	}
}

func TestCNDFProperties(t *testing.T) {
	if got := cndf(0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("cndf(0) = %v", got)
	}
	// Symmetry: N(-x) = 1 - N(x).
	f := func(raw int16) bool {
		x := float64(raw) / 1000
		return math.Abs(cndf(-x)-(1-cndf(x))) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if cndf(10) < 0.999999 || cndf(-10) > 0.000001 {
		t.Fatal("cndf tails")
	}
}

func TestBlackscholesInputRedundancy(t *testing.T) {
	// The paper's characterization: spot takes four values, two of which
	// cover >98% of the portfolio — and values come in runs.
	bs := NewBlackscholes()
	bs.N, bs.Passes = 8192, 1
	_, _ = runPrecise(bs, 42) // populate via a run (inputs built inside Run)
	// Re-derive inputs deterministically by running again and inspecting
	// the output spread: with 4 spot values and 3 strike factors the
	// distinct price count must be small relative to N.
	out, _ := runPrecise(bs, 42)
	prices := out.(BlackscholesOutput).Prices
	distinct := map[float64]bool{}
	for _, p := range prices {
		distinct[p] = true
	}
	// 4 spots x 3 strikes x 2 rates x 3 vols x 3 times x 2 types = 432 max.
	if len(distinct) > 432 {
		t.Fatalf("inputs are not redundant enough: %d distinct prices", len(distinct))
	}
}

func TestBlackscholesRunLengthStructure(t *testing.T) {
	// Consecutive options overwhelmingly share identical prices (the
	// PARSEC input-template run structure LVA exploits).
	bs := NewBlackscholes()
	bs.N, bs.Passes = 8192, 1
	out, _ := runPrecise(bs, 7)
	prices := out.(BlackscholesOutput).Prices
	same := 0
	for i := 1; i < len(prices); i++ {
		if prices[i] == prices[i-1] {
			same++
		}
	}
	frac := float64(same) / float64(len(prices)-1)
	if frac < 0.4 {
		t.Fatalf("run structure missing: only %.1f%% of neighbours identical", frac*100)
	}
}
