// Package obshooks_attr_good exercises the accepted attribution-seam
// patterns: per-recorder state mutated through the receiver, hex rendering
// via strconv instead of fmt, and shared state reached only through a
// lazily built accessor so no statement writes a package-level variable.
package obshooks_attr_good

import (
	"strconv"
	"sync"
)

// Recorder keeps all counters on the instance; the simulator holds a
// nil-able pointer to it and skips every hook when attribution is off.
type Recorder struct {
	scope  string
	loads  uint64
	errSum float64
}

// Load counts on the instance, never on a global.
func (r *Recorder) Load() {
	r.loads++
}

// Train accumulates the relative error on the instance.
func (r *Recorder) Train(relErr float64) {
	r.errSum += relErr
}

// hexPC renders without fmt.
func hexPC(pc uint64) string {
	return "0x" + strconv.FormatUint(pc, 16)
}

// registry is shared publish-side state, reached only through reg().
type registry struct {
	mu     sync.Mutex
	scopes map[string]uint64
}

// reg builds the registry exactly once; callers mutate through the
// returned pointer, so no assignment roots at a package-level identifier.
var reg = sync.OnceValue(func() *registry {
	return &registry{scopes: make(map[string]uint64)}
})

// Publish stores the recorder's totals under its scope.
func Publish(r *Recorder) {
	g := reg()
	g.mu.Lock()
	g.scopes[r.scope] = r.loads
	g.mu.Unlock()
}

var _ = hexPC
