// Package core implements the paper's primary contribution: the load value
// approximator (Figure 3). The approximator is consulted on L1 data-cache
// misses to loads annotated as approximate. It combines a global history
// buffer (GHB) of recently loaded values with a direct-mapped approximator
// table whose entries carry a tag, a saturating signed confidence counter
// (§III-B), a degree counter (§III-C) and a local history buffer (LHB).
//
// The same structure also implements the paper's idealized load value
// prediction (LVP) baseline: a prediction is deemed correct iff any LHB
// entry exactly matches the value in memory, and the block is always
// fetched (§VI).
package core

import (
	"fmt"

	"lva/internal/value"
)

// Mode selects between load value approximation and the idealized load
// value prediction baseline.
type Mode uint8

const (
	// ModeLVA is load value approximation: no rollbacks, relaxed
	// confidence, optional fetch elision via the approximation degree.
	ModeLVA Mode = iota
	// ModeLVP is the paper's idealized load value predictor: coverage is
	// granted iff any LHB value matches the actual value exactly, and the
	// block is always fetched to validate.
	ModeLVP
)

func (m Mode) String() string {
	if m == ModeLVP {
		return "LVP"
	}
	return "LVA"
}

// ComputeKind selects the computation function f applied to the LHB.
type ComputeKind uint8

const (
	// ComputeAverage averages the LHB (the paper's baseline choice).
	ComputeAverage ComputeKind = iota
	// ComputeLast returns the most recent LHB value.
	ComputeLast
	// ComputeStride extrapolates using the last two LHB values.
	ComputeStride
)

func (k ComputeKind) String() string {
	switch k {
	case ComputeLast:
		return "last"
	case ComputeStride:
		return "stride"
	default:
		return "average"
	}
}

func (k ComputeKind) apply(vs []value.Value) value.Value {
	switch k {
	case ComputeLast:
		return value.LastValue(vs)
	case ComputeStride:
		return value.Stride(vs)
	default:
		return value.Average(vs)
	}
}

// Config mirrors the paper's Table II baseline approximator configuration.
// The zero value is not useful; start from DefaultConfig.
type Config struct {
	// Mode selects LVA or the idealized LVP baseline.
	Mode Mode
	// TableEntries is the total number of approximator-table entries
	// (must be a power of two). Baseline: 512.
	TableEntries int
	// TableWays is the table associativity. The paper's baseline table is
	// direct-mapped (1); higher associativity reduces the destructive
	// aliasing the paper discusses for floating-point contexts (§VI-A) at
	// extra hardware cost. Entries are grouped into TableEntries/TableWays
	// LRU sets.
	TableWays int
	// TagBits is the width of the stored tag. Baseline: 21.
	TagBits int
	// ConfidenceBits sizes the saturating signed counter; n bits give the
	// range [-2^(n-1), 2^(n-1)-1]. Baseline: 4 -> [-8, 7]. An approximation
	// is made when the counter is >= 0.
	ConfidenceBits int
	// ProportionalConfidence enables the paper's §III-B future-work
	// optimization: the confidence counter moves by more than one when the
	// approximation is far outside the window (impossible in traditional
	// value prediction, where correctness is binary). Within the window:
	// +1; outside but within 2x: -1; beyond 2x the window: -2.
	ProportionalConfidence bool
	// Window is the relaxed confidence window as a fraction: 0.10 means
	// X_approx must fall within ±10% of X_actual to increment confidence.
	// 0 requires exact equality (traditional value prediction); a negative
	// value is the paper's "infinite" window (never decrement).
	Window float64
	// IntConfidence enables confidence estimation for integer data. The
	// baseline disables it (§VI-B): integer loads are approximated
	// whenever the entry has history.
	IntConfidence bool
	// GHBSize is the number of recent load values hashed into the table
	// index alongside the PC. Baseline: 0.
	GHBSize int
	// LHBSize is the local history buffer depth. Baseline: 4.
	LHBSize int
	// Compute is the computation function f over the LHB. Baseline: average.
	Compute ComputeKind
	// Degree is the approximation degree: how many times a generated value
	// is reused (and the fetch elided) before the entry is trained again.
	// Baseline: 0 (every miss fetches and trains).
	Degree int
	// ValueDelay is the number of subsequent load instructions that issue
	// before a fetched block's actual value reaches the history buffers
	// (§VI-C). The design-space exploration assumes 4.
	ValueDelay int
	// MantissaLoss drops this many (single-precision-equivalent) mantissa
	// bits from floating-point values before they are hashed into the GHB
	// context and stored in history (§VII-B, Figure 13).
	MantissaLoss int
}

// DefaultConfig returns the paper's Table II baseline configuration.
func DefaultConfig() Config {
	return Config{
		Mode:           ModeLVA,
		TableEntries:   512,
		TableWays:      1,
		TagBits:        21,
		ConfidenceBits: 4,
		Window:         0.10,
		IntConfidence:  false,
		GHBSize:        0,
		LHBSize:        4,
		Compute:        ComputeAverage,
		Degree:         0,
		ValueDelay:     4,
		MantissaLoss:   0,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.TableEntries <= 0 || c.TableEntries&(c.TableEntries-1) != 0:
		return fmt.Errorf("core: table entries must be a positive power of two, got %d", c.TableEntries)
	case c.TableWays <= 0 || c.TableEntries%c.TableWays != 0 || sets(c.TableEntries, c.TableWays)&(sets(c.TableEntries, c.TableWays)-1) != 0:
		return fmt.Errorf("core: table ways must divide entries into a power-of-two set count, got %d ways for %d entries", c.TableWays, c.TableEntries)
	case c.TagBits <= 0 || c.TagBits > 43:
		return fmt.Errorf("core: tag bits must be in [1,43], got %d", c.TagBits)
	case c.ConfidenceBits <= 0 || c.ConfidenceBits > 8:
		return fmt.Errorf("core: confidence bits must be in [1,8], got %d", c.ConfidenceBits)
	case c.GHBSize < 0:
		return fmt.Errorf("core: GHB size must be >= 0, got %d", c.GHBSize)
	case c.LHBSize <= 0:
		return fmt.Errorf("core: LHB size must be positive, got %d", c.LHBSize)
	case c.Degree < 0:
		return fmt.Errorf("core: approximation degree must be >= 0, got %d", c.Degree)
	case c.ValueDelay < 0:
		return fmt.Errorf("core: value delay must be >= 0, got %d", c.ValueDelay)
	case c.MantissaLoss < 0 || c.MantissaLoss > 23:
		return fmt.Errorf("core: mantissa loss must be in [0,23], got %d", c.MantissaLoss)
	}
	return nil
}

func sets(entries, ways int) int { return entries / ways }

// Sets returns the number of table sets (TableEntries / TableWays).
func (c Config) Sets() int { return c.TableEntries / c.TableWays }

// ConfMin returns the saturating counter's minimum value.
func (c Config) ConfMin() int { return -(1 << (c.ConfidenceBits - 1)) }

// ConfMax returns the saturating counter's maximum value.
func (c Config) ConfMax() int { return 1<<(c.ConfidenceBits-1) - 1 }

// StorageBits estimates the hardware budget of the approximator table in
// bits, assuming valueBits-wide LHB entries (the paper quotes ~18 KB at 64
// bits and ~10 KB at 32 bits for the 512-entry baseline, §VII-A).
func (c Config) StorageBits(valueBits int) int {
	degreeBits := 0
	for 1<<degreeBits <= c.Degree {
		degreeBits++
	}
	perEntry := c.TagBits + c.ConfidenceBits + degreeBits + c.LHBSize*valueBits + 1 // +1 valid
	return c.TableEntries*perEntry + c.GHBSize*valueBits
}
