package prov

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"sort"
	"strconv"
)

// The provenance manifest is NDJSON: one header line, the sorted
// per-evaluation records, the sorted per-fingerprint run-cache call
// lines, and a summary line whose counters come from the producing
// process. Every line is rendered from a fixed-field struct and the
// sort keys are total, so the document is byte-stable for a given
// design grid — P=1 and P=8 runs of the same figures produce identical
// bytes. Reconciliation (Validate) checks the document against itself
// and against the embedded counters, so a manifest that "doesn't sum"
// is detectable with no live process.

// ManifestVersion is the schema version written and accepted.
const ManifestVersion = 1

// HeaderLine is the first manifest line.
type HeaderLine struct {
	Kind    string `json:"kind"` // "manifest"
	Version int    `json:"version"`
	Code    string `json:"code"`
}

// RecordLine is one aggregated evaluation record.
type RecordLine struct {
	Kind          string   `json:"kind"` // "record"
	Figure        string   `json:"figure"`
	Label         string   `json:"label"`
	Route         string   `json:"route"`
	Counter       string   `json:"counter,omitempty"`
	Scheduler     string   `json:"scheduler"`
	Fingerprint   string   `json:"fingerprint"`
	Why           string   `json:"why"`
	Artifact      string   `json:"artifact,omitempty"`
	ArtifactSHA   string   `json:"artifact_sha256,omitempty"`
	ArtifactBytes int64    `json:"artifact_bytes,omitempty"`
	Code          string   `json:"code"`
	Stages        []string `json:"stages"`
	Count         uint64   `json:"count"`
}

// CallLine aggregates the run-cache lookups of one design-point
// fingerprint. Route is always "cache": which individual caller won the
// singleflight is scheduling-dependent, but the number of lookups per
// fingerprint — and, cold, the hit split (all but the winner) — is not.
type CallLine struct {
	Kind        string `json:"kind"` // "call"
	Route       string `json:"route"`
	Label       string `json:"label"`
	Fingerprint string `json:"fingerprint"`
	Calls       uint64 `json:"calls"`
	Hits        uint64 `json:"hits"`
}

// RouteTotals counts evaluations per route across the whole manifest.
type RouteTotals struct {
	Footer uint64 `json:"footer"`
	Replay uint64 `json:"replay"`
	Exec   uint64 `json:"exec"`
}

// Counters carries the producing process's deterministic engine
// counters, the external half of the reconciliation invariant.
type Counters struct {
	Recordings      uint64 `json:"recordings"`
	FooterPoints    uint64 `json:"footer_points"`
	ReplayedPoints  uint64 `json:"replayed_points"`
	ExecPoints      uint64 `json:"exec_points"`
	RunCacheLookups uint64 `json:"runcache_lookups"`
}

// SummaryLine is the last manifest line.
type SummaryLine struct {
	Kind        string      `json:"kind"` // "summary"
	Evaluations uint64      `json:"evaluations"`
	SimsAvoided uint64      `json:"sims_avoided"`
	Calls       uint64      `json:"calls"`
	Routes      RouteTotals `json:"routes"`
	Counters    Counters    `json:"counters"`
}

// Manifest is a parsed provenance manifest.
type Manifest struct {
	Header  HeaderLine
	Records []RecordLine
	Calls   []CallLine
	Summary SummaryLine
}

// avoided reports how many kernel simulations a record's evaluations
// skipped: footer and replay routes cost zero kernel arithmetic.
func (r RecordLine) avoided() uint64 {
	if r.Route == string(RouteFooter) || r.Route == string(RouteReplay) {
		return r.Count
	}
	return 0
}

// snapshotRecords renders the ledger's aggregated records sorted by
// (figure, label, fingerprint, route).
func (l *Ledger) snapshotRecords() []RecordLine {
	l.mu.Lock()
	out := make([]RecordLine, 0, len(l.recs))
	for _, e := range l.recs {
		out = append(out, RecordLine{
			Kind:          "record",
			Figure:        e.rec.Figure,
			Label:         e.rec.Label,
			Route:         string(e.rec.Route),
			Counter:       e.rec.Counter,
			Scheduler:     e.rec.Scheduler,
			Fingerprint:   e.rec.Fingerprint,
			Why:           e.rec.Justification,
			Artifact:      e.rec.Artifact,
			ArtifactSHA:   e.rec.ArtifactSHA256,
			ArtifactBytes: e.rec.ArtifactBytes,
			Code:          l.code,
			Stages:        e.rec.Stages,
			Count:         e.count,
		})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Figure != b.Figure {
			return a.Figure < b.Figure
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Fingerprint != b.Fingerprint {
			return a.Fingerprint < b.Fingerprint
		}
		return a.Route < b.Route
	})
	return out
}

// snapshotCalls renders the run-cache call lines sorted by
// (label, fingerprint).
func (l *Ledger) snapshotCalls() []CallLine {
	l.mu.Lock()
	out := make([]CallLine, 0, len(l.calls))
	for fp, e := range l.calls {
		out = append(out, CallLine{
			Kind:        "call",
			Route:       string(RouteCache),
			Label:       e.label,
			Fingerprint: fp,
			Calls:       e.calls,
			Hits:        e.hits,
		})
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// WriteManifest renders the ledger as a byte-stable NDJSON manifest,
// embedding the producing process's counters in the summary line.
func WriteManifest(w io.Writer, l *Ledger, c Counters) error {
	if l == nil {
		return errors.New("prov: no active ledger (enable provenance before running)")
	}
	recs := l.snapshotRecords()
	calls := l.snapshotCalls()
	sum := SummaryLine{Kind: "summary", Counters: c}
	for _, r := range recs {
		sum.Evaluations += r.Count
		sum.SimsAvoided += r.avoided()
		switch r.Route {
		case string(RouteFooter):
			sum.Routes.Footer += r.Count
		case string(RouteReplay):
			sum.Routes.Replay += r.Count
		case string(RouteExec):
			sum.Routes.Exec += r.Count
		}
	}
	for _, cl := range calls {
		sum.Calls += cl.Calls
	}
	bw := bufio.NewWriter(w)
	writeLine := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	if err := writeLine(HeaderLine{Kind: "manifest", Version: ManifestVersion, Code: l.code}); err != nil {
		return err
	}
	for _, r := range recs {
		if err := writeLine(r); err != nil {
			return err
		}
	}
	for _, cl := range calls {
		if err := writeLine(cl); err != nil {
			return err
		}
	}
	if err := writeLine(sum); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadManifest parses an NDJSON manifest, enforcing line-level schema:
// a version-1 header first, record/call lines, one summary last.
func ReadManifest(r io.Reader) (*Manifest, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	m := &Manifest{}
	sawHeader, sawSummary := false, false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if sawSummary {
			return nil, manifestErr(lineNo, "content after summary line")
		}
		var probe struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, manifestErr(lineNo, "not a JSON object: "+err.Error())
		}
		switch probe.Kind {
		case "manifest":
			if sawHeader {
				return nil, manifestErr(lineNo, "duplicate header")
			}
			if err := json.Unmarshal(line, &m.Header); err != nil {
				return nil, manifestErr(lineNo, err.Error())
			}
			if m.Header.Version != ManifestVersion {
				return nil, manifestErr(lineNo, "unsupported manifest version "+strconv.Itoa(m.Header.Version))
			}
			sawHeader = true
		case "record":
			if !sawHeader {
				return nil, manifestErr(lineNo, "record before header")
			}
			var rec RecordLine
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, manifestErr(lineNo, err.Error())
			}
			m.Records = append(m.Records, rec)
		case "call":
			if !sawHeader {
				return nil, manifestErr(lineNo, "call before header")
			}
			var cl CallLine
			if err := json.Unmarshal(line, &cl); err != nil {
				return nil, manifestErr(lineNo, err.Error())
			}
			m.Calls = append(m.Calls, cl)
		case "summary":
			if !sawHeader {
				return nil, manifestErr(lineNo, "summary before header")
			}
			if err := json.Unmarshal(line, &m.Summary); err != nil {
				return nil, manifestErr(lineNo, err.Error())
			}
			sawSummary = true
		default:
			return nil, manifestErr(lineNo, "unknown line kind "+strconv.Quote(probe.Kind))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, errors.New("prov: manifest has no header line")
	}
	if !sawSummary {
		return nil, errors.New("prov: manifest has no summary line")
	}
	return m, nil
}

func manifestErr(line int, msg string) error {
	return errors.New("prov: manifest line " + strconv.Itoa(line) + ": " + msg)
}

// validRoutes and validCounters bound the record vocabulary; Validate
// additionally pins which counter each route may feed.
var counterRoutes = map[string]string{
	CounterRecording: string(RouteExec),
	CounterFooter:    string(RouteFooter),
	CounterReplayed:  string(RouteReplay),
	CounterExec:      string(RouteExec),
}

// Validate reconciles the manifest against itself and against the
// embedded engine counters, returning one message per problem. An empty
// slice means every route sum matches: each figure cell's provenance is
// consistent with what the trace store and run cache actually counted.
func (m *Manifest) Validate() []string {
	var problems []string
	bad := func(msg string) { problems = append(problems, msg) }
	var (
		routes  RouteTotals
		evals   uint64
		avoided uint64
		byCtr   = map[string]uint64{}
		calls   uint64
	)
	for i, r := range m.Records {
		at := "record " + strconv.Itoa(i) + " (" + r.Figure + "/" + r.Label + ")"
		if r.Figure == "" || r.Label == "" || r.Fingerprint == "" || r.Why == "" || r.Scheduler == "" {
			bad(at + ": missing required field")
		}
		if r.Count == 0 {
			bad(at + ": zero count")
		}
		if len(r.Stages) == 0 {
			bad(at + ": empty stage path")
		}
		if r.Code != m.Header.Code {
			bad(at + ": code " + strconv.Quote(r.Code) + " != header " + strconv.Quote(m.Header.Code))
		}
		if (r.Artifact == "") != (r.ArtifactSHA == "") {
			bad(at + ": artifact name and hash must come together")
		}
		switch r.Route {
		case string(RouteFooter), string(RouteReplay), string(RouteExec):
		default:
			bad(at + ": invalid route " + strconv.Quote(r.Route))
			continue
		}
		if r.Counter != CounterNone {
			want, ok := counterRoutes[r.Counter]
			if !ok {
				bad(at + ": invalid counter " + strconv.Quote(r.Counter))
			} else if want != r.Route {
				bad(at + ": counter " + strconv.Quote(r.Counter) + " cannot ride route " + strconv.Quote(r.Route))
			}
		}
		switch r.Route {
		case string(RouteFooter):
			routes.Footer += r.Count
		case string(RouteReplay):
			routes.Replay += r.Count
		case string(RouteExec):
			routes.Exec += r.Count
		}
		evals += r.Count
		avoided += r.avoided()
		byCtr[r.Counter] += r.Count
	}
	for i, c := range m.Calls {
		at := "call " + strconv.Itoa(i) + " (" + c.Label + ")"
		if c.Route != string(RouteCache) {
			bad(at + ": route must be \"cache\"")
		}
		if c.Fingerprint == "" || c.Calls == 0 {
			bad(at + ": missing fingerprint or zero calls")
		}
		if c.Hits > c.Calls {
			bad(at + ": " + strconv.FormatUint(c.Hits, 10) + " hits exceed " + strconv.FormatUint(c.Calls, 10) + " calls")
		}
		calls += c.Calls
	}
	sum := m.Summary
	eq := func(name string, got, want uint64) {
		if got != want {
			bad(name + ": manifest sums to " + strconv.FormatUint(got, 10) +
				", summary says " + strconv.FormatUint(want, 10))
		}
	}
	eq("evaluations", evals, sum.Evaluations)
	eq("sims_avoided", avoided, sum.SimsAvoided)
	eq("calls", calls, sum.Calls)
	eq("routes.footer", routes.Footer, sum.Routes.Footer)
	eq("routes.replay", routes.Replay, sum.Routes.Replay)
	eq("routes.exec", routes.Exec, sum.Routes.Exec)
	// The reconciliation invariant proper: per-counter record sums must
	// equal what the trace store and run cache counted in the producing
	// process. A mismatch means an evaluation took a route nobody
	// recorded — exactly the silent routing regression this exists to
	// catch.
	eq("counter/recording vs trace-store Recordings", byCtr[CounterRecording], sum.Counters.Recordings)
	eq("counter/footer vs trace-store HeaderHits", byCtr[CounterFooter], sum.Counters.FooterPoints)
	eq("counter/replayed vs trace-store ReplayPoints+ReplayHits", byCtr[CounterReplayed], sum.Counters.ReplayedPoints)
	eq("counter/exec vs trace-store ExecPoints", byCtr[CounterExec], sum.Counters.ExecPoints)
	eq("calls vs run-cache lookups", calls, sum.Counters.RunCacheLookups)
	return problems
}

// FigureRoutes is the per-figure route aggregation behind the
// lvareport -provenance table.
type FigureRoutes struct {
	Figure      string
	Footer      uint64
	Replay      uint64
	Exec        uint64
	Evaluations uint64
	SimsAvoided uint64
}

// PerFigure aggregates record route counts per figure, sorted by figure.
func (m *Manifest) PerFigure() []FigureRoutes {
	byFig := map[string]*FigureRoutes{}
	var order []string
	for _, r := range m.Records {
		f := byFig[r.Figure]
		if f == nil {
			f = &FigureRoutes{Figure: r.Figure}
			byFig[r.Figure] = f
			order = append(order, r.Figure)
		}
		switch r.Route {
		case string(RouteFooter):
			f.Footer += r.Count
		case string(RouteReplay):
			f.Replay += r.Count
		case string(RouteExec):
			f.Exec += r.Count
		}
		f.Evaluations += r.Count
		f.SimsAvoided += r.avoided()
	}
	sort.Strings(order)
	out := make([]FigureRoutes, len(order))
	for i, name := range order {
		out[i] = *byFig[name]
	}
	return out
}
