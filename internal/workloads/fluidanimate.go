package workloads

import (
	"math"
	"sort"

	"lva/internal/memsim"
)

// Fluidanimate stands in for PARSEC fluidanimate: smoothed-particle
// hydrodynamics of a fluid in a box, with particles binned into grid cells
// so density and force computations only visit nearby cells. The
// floating-point particle attributes (positions, densities) loaded inside
// the density and acceleration kernels are the annotated approximate data
// (§IV); cell indices (memory addressing) are always derived from precise
// positions. The output error metric is the fraction of particles that end
// in a different cell than under precise execution.
type Fluidanimate struct {
	// Particles is the particle count.
	Particles int
	// Cells is the grid resolution per axis (Cells^3 total).
	Cells int
	// Steps is the number of simulated time steps.
	Steps int
	// TickPerPair models the per-neighbour-pair kernel cost.
	TickPerPair int
}

// NewFluidanimate returns the calibrated default configuration.
func NewFluidanimate() *Fluidanimate {
	return &Fluidanimate{Particles: 6144, Cells: 14, Steps: 2, TickPerPair: 24}
}

// Name implements Workload.
func (f *Fluidanimate) Name() string { return "fluidanimate" }

// FloatData implements Workload.
func (f *Fluidanimate) FloatData() bool { return true }

// FeedbackFree implements Workload: densities computed from annotated
// neighbour-position loads are stored and re-loaded in the force pass, and
// updated positions (which re-enter as annotated neighbour loads and drive
// the cell reordering) carry the approximation across timesteps.
func (f *Fluidanimate) FeedbackFree() bool { return false }

// FluidanimateOutput is the final cell index of every particle. The paper's
// metric: percentage of particles in a different cell than precise execution.
type FluidanimateOutput struct {
	Cell []int
}

// Error implements Output.
func (o FluidanimateOutput) Error(precise Output) float64 {
	p, ok := precise.(FluidanimateOutput)
	if !ok || len(p.Cell) != len(o.Cell) || len(o.Cell) == 0 {
		return 1
	}
	moved := 0
	for i := range o.Cell {
		if o.Cell[i] != p.Cell[i] {
			moved++
		}
	}
	return float64(moved) / float64(len(o.Cell))
}

// Load-site identifiers.
const (
	flSiteDensX = iota
	flSiteDensY
	flSiteDensZ
	flSiteForceX
	flSiteForceY
	flSiteForceZ
	flSiteForceDens
	flSiteOwnDens
	flSiteStoreDens
	flSiteStoreX
	flSiteStoreY
	flSiteStoreZ
)

// neighbourhood is the own cell plus the six face-adjacent cells.
var faceCells = [7][3]int{{0, 0, 0}, {1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}}

// Run implements Workload.
func (f *Fluidanimate) Run(mem *memsim.Sim, seed uint64) Output {
	rng := NewRNG(seed)
	arena := NewArena()
	n := f.Particles

	// SoA particle state; coordinates in [0,1).
	px := NewF64Array(arena, n)
	py := NewF64Array(arena, n)
	pz := NewF64Array(arena, n)
	dens := NewF64Array(arena, n)
	vx := make([]float64, n) // velocities: precise local state
	vy := make([]float64, n)
	vz := make([]float64, n)

	for i := 0; i < n; i++ {
		// Fluid initially fills the lower two thirds of the box.
		px.Data[i] = rng.Float64()
		py.Data[i] = rng.Float64() * 0.66
		pz.Data[i] = rng.Float64()
	}

	cells := f.Cells
	h := 1.2 / float64(cells) // smoothing radius slightly above cell size
	h2 := h * h
	cellOf := func(x, y, z float64) int {
		cx := clampIdx(int(x*float64(cells)), cells)
		cy := clampIdx(int(y*float64(cells)), cells)
		cz := clampIdx(int(z*float64(cells)), cells)
		return (cz*cells+cy)*cells + cx
	}

	// Neighbour positions are read as an x/y/z gather: one load per
	// coordinate array, distinct site each, same particle index.
	pos := []*F64Array{px, py, pz}
	densPCs := []uint64{
		pcBase(idFluidanimate, flSiteDensX),
		pcBase(idFluidanimate, flSiteDensY),
		pcBase(idFluidanimate, flSiteDensZ),
	}
	forcePCs := []uint64{
		pcBase(idFluidanimate, flSiteForceX),
		pcBase(idFluidanimate, flSiteForceY),
		pcBase(idFluidanimate, flSiteForceZ),
	}
	var nbr [3]float64

	// orig maps the current array slot back to the original particle id;
	// PARSEC fluidanimate re-sorts particles into cell order every step to
	// keep neighbour traversal cache-friendly, and we do the same.
	orig := make([]int32, n)
	for i := range orig {
		orig[i] = int32(i)
	}

	const dt = 0.1
	for step := 0; step < f.Steps; step++ {
		// Reorder particles by cell (the grid-rebuild pass). Cell indices
		// come from precise positions (addressing data, §IV).
		slotCell := make([]int, n)
		order := make([]int, n)
		for i := 0; i < n; i++ {
			slotCell[i] = cellOf(px.Data[i], py.Data[i], pz.Data[i])
			order[i] = i
		}
		sortByCell(order, slotCell)
		permuteF64(px.Data, order)
		permuteF64(py.Data, order)
		permuteF64(pz.Data, order)
		permuteF64(dens.Data, order)
		permuteF64(vx, order)
		permuteF64(vy, order)
		permuteF64(vz, order)
		permuteI32(orig, order)
		mem.Tick(uint64(n)) // reorder pass cost

		// Bin particles (now contiguous per cell).
		bins := make([][]int32, cells*cells*cells)
		for i := 0; i < n; i++ {
			c := cellOf(px.Data[i], py.Data[i], pz.Data[i])
			bins[c] = append(bins[c], int32(i))
		}

		// Density pass: approximate loads of neighbour positions. The
		// kernel is normalized so density is O(number of neighbours).
		for i := 0; i < n; i++ {
			mem.SetThread(i * 4 / n)
			xi, yi, zi := px.Data[i], py.Data[i], pz.Data[i]
			ci := cellOf(xi, yi, zi)
			cx, cy, cz := ci%cells, (ci/cells)%cells, ci/(cells*cells)
			var d float64
			for _, off := range faceCells {
				nx, ny, nz := cx+off[0], cy+off[1], cz+off[2]
				if nx < 0 || ny < 0 || nz < 0 || nx >= cells || ny >= cells || nz >= cells {
					continue
				}
				for _, j := range bins[(nz*cells+ny)*cells+nx] {
					if int(j) == i {
						continue
					}
					GatherF64(mem, pos, densPCs, int(j), true, nbr[:])
					r2 := sq(xi-nbr[0]) + sq(yi-nbr[1]) + sq(zi-nbr[2])
					if r2 < h2 {
						t := (h2 - r2) / h2
						d += t * t * t
						mem.Tick(uint64(f.TickPerPair))
					}
				}
			}
			dens.Store(mem, pcBase(idFluidanimate, flSiteStoreDens), i, d+0.1)
		}

		// Force + integrate pass: approximate loads of neighbour positions
		// and densities.
		for i := 0; i < n; i++ {
			mem.SetThread(i * 4 / n)
			xi, yi, zi := px.Data[i], py.Data[i], pz.Data[i]
			ci := cellOf(xi, yi, zi)
			cx, cy, cz := ci%cells, (ci/cells)%cells, ci/(cells*cells)
			di := dens.Load(mem, pcBase(idFluidanimate, flSiteOwnDens), i, true)
			if di < 0.05 {
				di = 0.05 // §IV divide-by-zero guideline: clamp denominators
			}
			var ax, ay, az float64
			for _, off := range faceCells {
				nx, ny, nz := cx+off[0], cy+off[1], cz+off[2]
				if nx < 0 || ny < 0 || nz < 0 || nx >= cells || ny >= cells || nz >= cells {
					continue
				}
				for _, j := range bins[(nz*cells+ny)*cells+nx] {
					if int(j) == i {
						continue
					}
					GatherF64(mem, pos, forcePCs, int(j), true, nbr[:])
					jx, jy, jz := nbr[0], nbr[1], nbr[2]
					r2 := sq(xi-jx) + sq(yi-jy) + sq(zi-jz)
					if r2 < h2 && r2 > 1e-10 {
						dj := dens.Load(mem, pcBase(idFluidanimate, flSiteForceDens), int(j), true)
						if dj < 0.05 {
							dj = 0.05
						}
						r := math.Sqrt(r2)
						// Pressure-like repulsion with a normalized kernel.
						p := 10 * sq(1-r/h) / (di * dj)
						ax += (xi - jx) / r * p
						ay += (yi - jy) / r * p
						az += (zi - jz) / r * p
						mem.Tick(uint64(f.TickPerPair))
					}
				}
			}
			ay -= 1.5 // gravity
			vx[i] = clampV(vx[i]+ax*dt, 0.5)
			vy[i] = clampV(vy[i]+ay*dt, 0.5)
			vz[i] = clampV(vz[i]+az*dt, 0.5)
			nxp := reflect01(xi+vx[i]*dt, &vx[i])
			nyp := reflect01(yi+vy[i]*dt, &vy[i])
			nzp := reflect01(zi+vz[i]*dt, &vz[i])
			px.Store(mem, pcBase(idFluidanimate, flSiteStoreX), i, nxp)
			py.Store(mem, pcBase(idFluidanimate, flSiteStoreY), i, nyp)
			pz.Store(mem, pcBase(idFluidanimate, flSiteStoreZ), i, nzp)
		}
	}

	out := FluidanimateOutput{Cell: make([]int, n)}
	for i := 0; i < n; i++ {
		out.Cell[orig[i]] = cellOf(px.Data[i], py.Data[i], pz.Data[i])
	}
	return out
}

// sortByCell sorts the slot permutation `order` by ascending cell id.
func sortByCell(order []int, cell []int) {
	sort.SliceStable(order, func(a, b int) bool { return cell[order[a]] < cell[order[b]] })
}

func permuteF64(xs []float64, order []int) {
	tmp := make([]float64, len(xs))
	for k, o := range order {
		tmp[k] = xs[o]
	}
	copy(xs, tmp)
}

func permuteI32(xs []int32, order []int) {
	tmp := make([]int32, len(xs))
	for k, o := range order {
		tmp[k] = xs[o]
	}
	copy(xs, tmp)
}

func sq(x float64) float64 { return x * x }

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func clampV(v, lim float64) float64 {
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}

// reflect01 bounces a coordinate off the [0,1] walls, flipping velocity.
func reflect01(x float64, v *float64) float64 {
	if x < 0 {
		*v = -*v
		return -x
	}
	if x > 1 {
		*v = -*v
		return 2 - x
	}
	return x
}
