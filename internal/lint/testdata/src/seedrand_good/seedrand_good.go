// Package seedrand_good shows the blessed pattern: deterministic, seeded
// randomness and wall-clock use that never feeds a seed.
package seedrand_good

import "time"

// Next is a seeded xorshift step, the same construction as workloads.RNG.
func Next(s uint64) uint64 {
	s ^= s >> 12
	s ^= s << 25
	s ^= s >> 27
	return s * 0x2545F4914F6CDD1D
}

// Elapsed measures wall time for progress reporting; durations are fine,
// only seed material is not.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start)
}
