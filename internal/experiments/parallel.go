package experiments

import (
	"runtime"
	"sync"
	"time"

	"lva/internal/core"
	"lva/internal/workloads"
)

// Parallelism bounds how many kernel simulations execute concurrently in
// the whole process: every figure row, every RunAll driver and every
// RunSweep job admits its points through one shared gate. Each simulation
// is independent (its own simulator and approximator state) and every
// design point is a deterministic function of (workload, config, seed), so
// results are identical regardless of this setting. Defaults to the
// machine's parallelism.
var Parallelism = runtime.GOMAXPROCS(0)

// simGate is the process-wide admission gate. It re-reads Parallelism on
// every admit, so tests may change the bound between experiments; a lower
// bound takes effect as in-flight simulations drain.
var simGate = struct {
	mu     sync.Mutex
	cond   *sync.Cond
	active int
}{}

func init() { simGate.cond = sync.NewCond(&simGate.mu) }

// admit blocks until a simulation slot is free and claims it, recording
// the wait on the (volatile) queue-wait histogram and publishing the new
// occupancy on the in-flight gauge.
func admit() {
	m := eng()
	start := time.Now()
	simGate.mu.Lock()
	for simGate.active >= max(1, Parallelism) {
		simGate.cond.Wait()
	}
	simGate.active++
	m.inflight.Set(int64(simGate.active))
	simGate.mu.Unlock()
	m.queueWait.Observe(time.Since(start).Seconds())
}

// release returns a slot claimed by admit.
func release() {
	m := eng()
	simGate.mu.Lock()
	simGate.active--
	m.inflight.Set(int64(simGate.active))
	simGate.cond.Signal()
	simGate.mu.Unlock()
}

// batch collects the simulation points of one experiment — any number of
// rows — and runs them all concurrently through the shared gate, so points
// from different rows (and, under RunAll, different figures) are in flight
// at once. Tasks execute while holding a gate slot and must not run nested
// batches or forEachWorkload calls, which would wait for slots they
// themselves occupy.
type batch struct{ tasks []func() }

// add schedules one task for the next run call.
func (b *batch) add(fn func()) { b.tasks = append(b.tasks, fn) }

// run executes every collected task gate-bounded and returns when all have
// finished, leaving the batch empty for reuse.
func (b *batch) run() {
	var wg sync.WaitGroup
	for _, t := range b.tasks {
		wg.Add(1)
		go func(task func()) {
			defer wg.Done()
			admit()
			defer release()
			task()
		}(t)
	}
	wg.Wait()
	b.tasks = nil
}

// one schedules a single simulation point; the returned pointer is filled
// when run returns.
func (b *batch) one(sim func() RunResult) *RunResult {
	out := new(RunResult)
	b.add(func() { *out = sim() })
	return out
}

// lva schedules one LVA point per benchmark under cfgFor(w); the returned
// slice (registry order) is filled when run returns.
func (b *batch) lva(cfgFor func(w workloads.Workload) core.Config) []RunResult {
	out := make([]RunResult, len(workloads.Names()))
	for i, w := range workloads.All() {
		i, w := i, w
		cfg := cfgFor(w)
		b.add(func() { out[i] = RunLVA(w, cfg, DefaultSeed) })
	}
	return out
}

// lvp is lva for the idealized LVP baseline.
func (b *batch) lvp(cfgFor func(w workloads.Workload) core.Config) []RunResult {
	out := make([]RunResult, len(workloads.Names()))
	for i, w := range workloads.All() {
		i, w := i, w
		cfg := cfgFor(w)
		b.add(func() { out[i] = RunLVP(w, cfg, DefaultSeed) })
	}
	return out
}

// prefetch schedules one GHB-prefetcher point per benchmark at a degree.
func (b *batch) prefetch(degree int) []RunResult {
	out := make([]RunResult, len(workloads.Names()))
	for i, w := range workloads.All() {
		i, w := i, w
		b.add(func() { out[i] = RunPrefetch(w, degree, DefaultSeed) })
	}
	return out
}

// precise schedules the precise baseline of every benchmark.
func (b *batch) precise() []RunResult {
	out := make([]RunResult, len(workloads.Names()))
	for i, w := range workloads.All() {
		i, w := i, w
		b.add(func() { out[i] = RunPrecise(w, DefaultSeed) })
	}
	return out
}

// forEachWorkload runs fn once per benchmark through the shared gate,
// passing the benchmark's index in workloads.All() order. It returns when
// all have finished. The full-system drivers use it directly; phase-1
// drivers batch their rows instead so whole figures fan out at once.
func forEachWorkload(fn func(i int, w workloads.Workload)) {
	var wg sync.WaitGroup
	for i, w := range workloads.All() {
		wg.Add(1)
		go func(i int, w workloads.Workload) {
			defer wg.Done()
			admit()
			defer release()
			fn(i, w)
		}(i, w)
	}
	wg.Wait()
}
