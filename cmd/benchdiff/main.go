// Command benchdiff compares two benchmark snapshots produced by
// `./ci.sh bench` (go test -json event streams) and prints per-benchmark
// wall-time and allocation deltas.
//
//	benchdiff [-max-regress 0.15] [-min-ns 1000000] [-warn-only] OLD.json NEW.json
//	benchdiff NEW.json             # baseline = newest committed BENCH_*.json
//
// It exits nonzero when any benchmark slower than -min-ns regresses by more
// than -max-regress in ns/op, or grows allocs/op by more than
// -max-alloc-regress on a benchmark allocating at least -min-allocs, so
// `./ci.sh bench -baseline OLD.json` is a local perf gate. Benchmarks under
// the floors are reported but never gate: at nanosecond scale a shared
// machine's scheduler noise exceeds any sensible bound, and tiny
// allocation counts jump by whole-number steps. Allocation counts, unlike
// wall time, are deterministic — so the alloc gate holds even on noisy
// runners. -warn-only downgrades failures to warnings for CI, where runners
// are noisy and heterogeneous.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// newestCommittedBaseline picks the baseline for single-argument runs:
// the lexically last committed BENCH_*.json (stamps are UTC and sort
// chronologically), asking git for tracked files and falling back to a
// directory glob outside a work tree. The fresh snapshot itself is
// excluded; "" with nil error means no baseline exists yet.
func newestCommittedBaseline(newPath string) (string, error) {
	var candidates []string
	if out, err := exec.Command("git", "ls-files", "BENCH_*.json").Output(); err == nil {
		for _, l := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			if l != "" {
				candidates = append(candidates, l)
			}
		}
	} else {
		g, gerr := filepath.Glob("BENCH_*.json")
		if gerr != nil {
			return "", gerr
		}
		candidates = g
	}
	na, _ := filepath.Abs(newPath)
	kept := candidates[:0]
	for _, c := range candidates {
		if ca, _ := filepath.Abs(c); ca == na {
			continue
		}
		kept = append(kept, c)
	}
	if len(kept) == 0 {
		return "", nil
	}
	sort.Strings(kept)
	return kept[len(kept)-1], nil
}

type result struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
	hasMem      bool
}

type event struct {
	Action string
	Test   string
	Output string
}

// parseSnapshot extracts benchmark results from a go test -json stream.
// The benchmark name comes from the event's Test field (the printed line
// may omit it when tabwriter splits name and values across events); the
// measurements come from scanning "value unit" pairs in the output line.
func parseSnapshot(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := make(map[string]result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate trailing junk; snapshots are advisory artifacts
		}
		if ev.Action != "output" || !strings.HasPrefix(ev.Test, "Benchmark") ||
			!strings.Contains(ev.Output, "ns/op") {
			continue
		}
		r, ok := parseBenchLine(ev.Output)
		if ok {
			out[ev.Test] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results found", path)
	}
	return out, nil
}

func parseBenchLine(line string) (result, bool) {
	var r result
	fields := strings.Fields(line)
	seen := false
	for i := 1; i < len(fields); i++ {
		v, err := strconv.ParseFloat(fields[i-1], 64)
		if err != nil {
			continue
		}
		switch fields[i] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = v
			r.hasMem = true
		case "allocs/op":
			r.AllocsPerOp = v
			r.hasMem = true
		}
	}
	return r, seen
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.15,
		"fail when ns/op regresses by more than this fraction")
	minNs := flag.Float64("min-ns", 1e6,
		"only benchmarks at least this many ns/op can fail the gate")
	maxAllocRegress := flag.Float64("max-alloc-regress", 0.25,
		"fail when allocs/op grows by more than this fraction")
	minAllocs := flag.Float64("min-allocs", 1000,
		"only benchmarks with at least this many allocs/op can fail the alloc gate")
	warnOnly := flag.Bool("warn-only", false,
		"report regressions but always exit 0 (for noisy CI runners)")
	flag.Parse()
	var oldPath, newPath string
	switch flag.NArg() {
	case 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	case 1:
		newPath = flag.Arg(0)
		var err error
		oldPath, err = newestCommittedBaseline(newPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		if oldPath == "" {
			fmt.Println("benchdiff: no committed BENCH_*.json baseline found; nothing to compare (first snapshot?)")
			return
		}
		fmt.Printf("benchdiff: auto-selected baseline %s (newest committed BENCH_*.json)\n", oldPath)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] [OLD.json] NEW.json")
		flag.PrintDefaults()
		os.Exit(2)
	}

	oldRes, err := parseSnapshot(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newRes, err := parseSnapshot(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(oldRes))
	for name := range oldRes {
		if _, ok := newRes[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: snapshots share no benchmarks")
		os.Exit(2)
	}

	fmt.Printf("%-40s %14s %14s %8s %12s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs o→n")
	failed := 0
	for _, name := range names {
		o, n := oldRes[name], newRes[name]
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		mark := ""
		if delta > *maxRegress {
			if o.NsPerOp >= *minNs {
				failed++
				mark = "  REGRESSION"
			} else {
				mark = "  (noise-scale, not gated)"
			}
		}
		allocs := ""
		if o.hasMem || n.hasMem {
			allocs = fmt.Sprintf("%.0f→%.0f", o.AllocsPerOp, n.AllocsPerOp)
		}
		if o.hasMem && n.hasMem && o.AllocsPerOp > 0 &&
			(n.AllocsPerOp-o.AllocsPerOp)/o.AllocsPerOp > *maxAllocRegress {
			if o.AllocsPerOp >= *minAllocs {
				failed++
				mark += "  ALLOC REGRESSION"
			} else if mark == "" {
				mark = "  (alloc growth below floor, not gated)"
			}
		}
		fmt.Printf("%-40s %14.0f %14.0f %+7.1f%% %12s%s\n",
			name, o.NsPerOp, n.NsPerOp, delta*100, allocs, mark)
	}

	// Coverage warnings: a benchmark present in only one snapshot can't be
	// compared, which usually means it was renamed, deleted, or the run was
	// truncated. Warn in both directions (never gate — a rename is not a
	// regression) so a silently shrinking benchmark suite is visible.
	warnMissing(oldRes, newRes, "missing from new snapshot (deleted or renamed?)")
	warnMissing(newRes, oldRes, "missing from baseline (new benchmark, no comparison)")

	if failed > 0 {
		fmt.Printf("benchdiff: %d benchmark(s) regressed beyond %.0f%% ns/op or %.0f%% allocs/op\n",
			failed, *maxRegress*100, *maxAllocRegress*100)
		if !*warnOnly {
			os.Exit(1)
		}
		fmt.Println("benchdiff: -warn-only set, not failing")
		return
	}
	fmt.Printf("benchdiff: no regression beyond %.0f%% ns/op (floor %.0fms) or %.0f%% allocs/op (floor %.0f allocs)\n",
		*maxRegress*100, *minNs/1e6, *maxAllocRegress*100, *minAllocs)
}

// warnMissing prints a sorted warning line for every benchmark present in
// have but absent from other.
func warnMissing(have, other map[string]result, why string) {
	var names []string
	for name := range have {
		if _, ok := other[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-40s warning: %s\n", name, why)
	}
}
