// Package detsync_hot_bad launches goroutines from hot-path-scoped code:
// directly, and transitively through a helper chain the flow graph sees
// through.
package detsync_hot_bad

// prefetchAsync hides the fork one call deep.
func prefetchAsync(addrs []uint64, done chan struct{}) {
	go func() { // want:detsync
		for range addrs {
		}
		close(done)
	}()
}

// warm hides it two calls deep; its own call site trips the transitive
// ban too, since warm is also hot-path-scoped.
func warm(addrs []uint64, done chan struct{}) {
	prefetchAsync(addrs, done) // want:detsync
}

// OnMiss forks directly on the per-load path.
func OnMiss(addr uint64) {
	ch := make(chan struct{})
	go func() { // want:detsync
		_ = addr
		close(ch)
	}()
	<-ch
}

// Touch reaches a goroutine launch through the warm -> prefetchAsync
// chain; the transitive ban catches the call site.
func Touch(addrs []uint64) {
	done := make(chan struct{})
	warm(addrs, done) // want:detsync
	<-done
}
