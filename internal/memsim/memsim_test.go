package memsim

import (
	"fmt"
	"testing"

	"lva/internal/trace"
)

func testConfig(attach Attachment) Config {
	cfg := DefaultConfig()
	cfg.Attach = attach
	cfg.Approx.ValueDelay = 0
	return cfg
}

func TestInstructionAccounting(t *testing.T) {
	s := New(testConfig(AttachNone))
	s.LoadFloat(0x400, 0x1000, 1.0, false)
	s.Store(0x404, 0x2000)
	s.Tick(10)
	r := s.Result()
	if r.Instructions != 12 {
		t.Fatalf("instructions = %d, want 12", r.Instructions)
	}
	if r.Loads != 1 || r.Stores != 1 {
		t.Fatalf("loads/stores = %d/%d", r.Loads, r.Stores)
	}
}

func TestPreciseMissFetches(t *testing.T) {
	s := New(testConfig(AttachNone))
	v := s.LoadFloat(0x400, 0x1000, 2.5, false)
	if v != 2.5 {
		t.Fatalf("precise load must return the precise value, got %v", v)
	}
	r := s.Result()
	if r.LoadMisses != 1 || r.Fetches != 1 || r.Covered != 0 {
		t.Fatalf("result = %+v", r)
	}
	// Second load to the same block hits.
	s2 := New(testConfig(AttachNone))
	s2.LoadFloat(0x400, 0x1000, 2.5, false)
	s2.LoadFloat(0x400, 0x1008, 2.5, false)
	if got := s2.Result().LoadMisses; got != 1 {
		t.Fatalf("same-block second load must hit: misses = %d", got)
	}
}

func TestLVAClobbersValue(t *testing.T) {
	s := New(testConfig(AttachLVA))
	// Train with value 10 at distinct blocks (always missing), then read
	// a fresh block whose precise value is 99: the approximator must
	// return ~10 and that is what the workload must consume.
	for i := 0; i < 4; i++ {
		s.LoadInt(0x400, uint64(0x1000+i*64), 10, true)
	}
	v := s.LoadInt(0x400, 0x9000, 99, true)
	if v != 10 {
		t.Fatalf("covered load must return the approximation 10, got %d", v)
	}
	r := s.Result()
	if r.Covered == 0 {
		t.Fatal("coverage must be counted")
	}
}

func TestLVPReturnsPrecise(t *testing.T) {
	s := New(testConfig(AttachLVP))
	for i := 0; i < 4; i++ {
		s.LoadInt(0x400, uint64(0x1000+i*64), 10, true)
	}
	v := s.LoadInt(0x400, 0x9000, 10, true)
	if v != 10 {
		t.Fatalf("LVP consumes precise values (rollback on mismatch), got %d", v)
	}
	r := s.Result()
	if r.Covered == 0 {
		t.Fatal("an exact-match prediction must count as covered")
	}
	if r.Approx.LVPCorrect == 0 {
		t.Fatal("LVP correctness must be tracked")
	}
}

func TestNonApproxLoadBypassesApproximator(t *testing.T) {
	s := New(testConfig(AttachLVA))
	for i := 0; i < 4; i++ {
		s.LoadInt(0x400, uint64(0x1000+i*64), 10, true)
	}
	v := s.LoadInt(0x500, 0x9000, 77, false)
	if v != 77 {
		t.Fatalf("precise load must not be approximated, got %d", v)
	}
	if got := s.Result().StaticPCs; got != 1 {
		t.Fatalf("static approximate PCs = %d, want 1 (0x400 only)", got)
	}
}

func TestDegreeElidesFills(t *testing.T) {
	cfg := testConfig(AttachLVA)
	cfg.Approx.Degree = 4
	s := New(cfg)
	// Warm the entry.
	s.LoadInt(0x400, 0x1000, 10, true)
	// Misses to fresh blocks: only every 5th should fetch.
	start := s.Result().Fetches
	for i := 1; i <= 10; i++ {
		s.LoadInt(0x400, uint64(0x1000+i*64), 10, true)
	}
	fetched := s.Result().Fetches - start
	if fetched != 2 {
		t.Fatalf("degree 4: %d fetches for 10 covered misses, want 2", fetched)
	}
}

func TestPrefetchAttachment(t *testing.T) {
	cfg := testConfig(AttachPrefetch)
	cfg.Prefetch.Degree = 4
	s := New(cfg)
	// Stride misses: the prefetcher should fill ahead so later loads hit.
	for i := 0; i < 8; i++ {
		s.LoadInt(0x400, uint64(i)*128, 1, false)
	}
	r := s.Result()
	if r.Fetches <= r.LoadMisses {
		t.Fatalf("prefetcher must fetch extra blocks: fetches=%d misses=%d",
			r.Fetches, r.LoadMisses)
	}
	if r.LoadMisses >= 8 {
		t.Fatalf("prefetches must convert some misses to hits: %d", r.LoadMisses)
	}
}

func TestStoreWriteAllocate(t *testing.T) {
	s := New(testConfig(AttachNone))
	s.Store(0x400, 0x1000)
	r := s.Result()
	if r.Fetches != 1 {
		t.Fatalf("store miss must write-allocate: fetches = %d", r.Fetches)
	}
	if r.Cache.StoreMiss != 1 {
		t.Fatalf("cache stats = %+v", r.Cache)
	}
}

func TestEffectiveMPKIMath(t *testing.T) {
	r := Result{Instructions: 2000, LoadMisses: 10, Covered: 6}
	if got := r.EffectiveMPKI(); got != 2.0 {
		t.Fatalf("effective MPKI = %v, want 2", got)
	}
	if got := r.RawMPKI(); got != 5.0 {
		t.Fatalf("raw MPKI = %v, want 5", got)
	}
	if got := r.Coverage(); got != 0.6 {
		t.Fatalf("coverage = %v", got)
	}
	zero := Result{}
	if zero.EffectiveMPKI() != 0 || zero.RawMPKI() != 0 || zero.Coverage() != 0 {
		t.Fatal("zero-result conventions")
	}
}

func TestTraceCapture(t *testing.T) {
	s := New(testConfig(AttachNone))
	s.Capture("unit")
	s.SetThread(2)
	s.Tick(5)
	s.LoadFloat(0x400, 0x1000, 1.5, true)
	s.Store(0x404, 0x2000)
	tr := s.TakeTrace()
	if tr == nil || tr.Len() != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	a := tr.Accesses[0]
	if a.PC != 0x400 || a.Addr != 0x1000 || a.Thread != 2 || !a.Approx || a.Op != trace.Load {
		t.Fatalf("access 0 = %+v", a)
	}
	if a.Gap != 5 {
		t.Fatalf("gap = %d, want 5 (the Tick before the load)", a.Gap)
	}
	if tr.Accesses[1].Op != trace.Store || tr.Accesses[1].Gap != 0 {
		t.Fatalf("access 1 = %+v", tr.Accesses[1])
	}
}

func TestSetThreadBounds(t *testing.T) {
	// The panic message is a documented contract (see SetThread's comment
	// and the nopanic analyzer): it must name the valid range.
	for _, id := range []int{-1, 256} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("SetThread(%d) must panic", id)
					return
				}
				want := fmt.Sprintf("memsim: thread id %d out of range [0,255]", id)
				if r != want {
					t.Errorf("SetThread(%d) panic = %v, want %q", id, r, want)
				}
			}()
			New(testConfig(AttachNone)).SetThread(id)
		}()
	}
	// Boundary ids are accepted.
	s := New(testConfig(AttachNone))
	s.SetThread(0)
	s.SetThread(255)
}

func TestLVPForcesAlwaysFetch(t *testing.T) {
	// Even if the caller configures a degree, the LVP attachment must
	// override it (prediction requires validation).
	cfg := testConfig(AttachLVP)
	cfg.Approx.Degree = 16
	cfg.Approx.Window = 0.5
	s := New(cfg)
	for i := 0; i < 20; i++ {
		s.LoadInt(0x400, uint64(0x1000+i*64), 7, true)
	}
	r := s.Result()
	if r.Fetches != r.LoadMisses {
		t.Fatalf("LVP must fetch every miss: fetches=%d misses=%d", r.Fetches, r.LoadMisses)
	}
}

func TestValueDelayWiring(t *testing.T) {
	cfg := testConfig(AttachLVA)
	cfg.Approx.ValueDelay = 2
	s := New(cfg)
	s.LoadInt(0x400, 0x1000, 10, true) // miss, training pending
	// The very next miss sees no history yet.
	s.LoadInt(0x400, 0x1040, 10, true)
	r0 := s.Result().Covered
	if r0 != 0 {
		t.Fatal("training must be delayed by the configured loads")
	}
	// Two more loads tick the countdown; after that, coverage appears.
	s.LoadInt(0x500, 0x5000, 1, false)
	s.LoadInt(0x500, 0x5008, 1, false)
	s.LoadInt(0x400, 0x1080, 10, true)
	if s.Result().Covered == 0 {
		t.Fatal("after the value delay the entry must cover")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.L1.SizeBytes != 64<<10 || cfg.L1.Ways != 8 || cfg.L1.BlockBytes != 64 {
		t.Fatalf("phase-1 L1 must be 64KB/8-way/64B: %+v", cfg.L1)
	}
	if cfg.Approx.TableEntries != 512 || cfg.Approx.LHBSize != 4 {
		t.Fatalf("approximator defaults: %+v", cfg.Approx)
	}
	if err := cfg.L1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAttachmentString(t *testing.T) {
	if AttachNone.String() != "precise" || AttachLVA.String() != "lva" ||
		AttachLVP.String() != "lvp" || AttachPrefetch.String() != "prefetch" {
		t.Fatal("attachment strings")
	}
}
