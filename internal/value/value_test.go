package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Int.String() != "int" || Float.String() != "float" {
		t.Fatalf("kind strings: %q %q", Int.String(), Float.String())
	}
}

func TestPackUnpackFloat(t *testing.T) {
	for _, f := range []float64{0, 1, -1, 3.14159, 1e-300, 1e300, math.Inf(1)} {
		v := FromFloat(f)
		if v.Kind != Float {
			t.Fatalf("FromFloat(%v).Kind = %v", f, v.Kind)
		}
		if got := v.Float(); got != f {
			t.Fatalf("roundtrip %v -> %v", f, got)
		}
	}
}

func TestPackUnpackInt(t *testing.T) {
	for _, i := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 42} {
		v := FromInt(i)
		if v.Kind != Int {
			t.Fatalf("FromInt(%v).Kind = %v", i, v.Kind)
		}
		if got := v.Int(); got != i {
			t.Fatalf("roundtrip %v -> %v", i, got)
		}
	}
}

func TestCrossKindConversions(t *testing.T) {
	if got := FromInt(7).Float(); got != 7.0 {
		t.Fatalf("int->float: %v", got)
	}
	if got := FromFloat(7.4).Int(); got != 7 {
		t.Fatalf("float->int rounding: %v", got)
	}
	if got := FromFloat(7.5).Int(); got != 8 {
		t.Fatalf("float->int round-to-even: %v", got)
	}
	if got := FromFloat(6.5).Int(); got != 6 {
		t.Fatalf("float->int round-to-even: %v", got)
	}
}

func TestEqual(t *testing.T) {
	if !FromFloat(1.5).Equal(FromFloat(1.5)) {
		t.Fatal("identical floats must be Equal")
	}
	if FromFloat(1.5).Equal(FromFloat(1.5000001)) {
		t.Fatal("different floats must not be Equal")
	}
	// Same bits, different kinds: not equal.
	a := Value{Bits: 3, Kind: Int}
	b := Value{Bits: 3, Kind: Float}
	if a.Equal(b) {
		t.Fatal("kind mismatch must not be Equal")
	}
}

func TestTruncateMantissaZeroBits(t *testing.T) {
	if got := TruncateMantissa(3.14159, 0); got != 3.14159 {
		t.Fatalf("0-bit truncation must be identity, got %v", got)
	}
}

func TestTruncateMantissaReducesPrecision(t *testing.T) {
	x := 1.000244140625 // 1 + 2^-12
	if got := TruncateMantissa(x, 23); got != 1.0 {
		t.Fatalf("full truncation should drop all fraction, got %v", got)
	}
	// Truncation keeps sign and rough magnitude.
	if got := TruncateMantissa(-137.7, 23); got > -64 || got < -256 {
		t.Fatalf("sign/exponent must be preserved, got %v", got)
	}
}

func TestTruncateMantissaProperties(t *testing.T) {
	// Idempotent, magnitude-bounded, sign-preserving for any input/level.
	f := func(x float64, bits uint8) bool {
		b := int(bits % 24)
		if math.IsNaN(x) {
			return true
		}
		y := TruncateMantissa(x, b)
		if TruncateMantissa(y, b) != y {
			return false // not idempotent
		}
		if math.Signbit(x) != math.Signbit(y) && y != 0 {
			return false
		}
		// Truncation never increases magnitude.
		return math.Abs(y) <= math.Abs(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateIntUntouched(t *testing.T) {
	v := FromInt(123456)
	if got := Truncate(v, 23); got != v {
		t.Fatalf("integer values must not be truncated: %v", got)
	}
}

func TestRelDiff(t *testing.T) {
	if got := RelDiff(110, 100); math.Abs(got-0.10) > 1e-12 {
		t.Fatalf("RelDiff(110,100) = %v", got)
	}
	if got := RelDiff(0, 0); got != 0 {
		t.Fatalf("RelDiff(0,0) = %v", got)
	}
	if got := RelDiff(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelDiff(1,0) = %v, want +Inf", got)
	}
}

func TestWithinWindowSemantics(t *testing.T) {
	cases := []struct {
		approx, actual Value
		window         float64
		want           bool
	}{
		// Window 0: exact equality only (traditional value prediction).
		{FromFloat(1.0), FromFloat(1.0), 0, true},
		{FromFloat(1.0), FromFloat(1.0000001), 0, false},
		// ±10% float window.
		{FromFloat(109), FromFloat(100), 0.10, true},
		{FromFloat(111), FromFloat(100), 0.10, false},
		{FromFloat(-109), FromFloat(-100), 0.10, true},
		// Integer windows.
		{FromInt(109), FromInt(100), 0.10, true},
		{FromInt(111), FromInt(100), 0.10, false},
		{FromInt(0), FromInt(0), 0.10, true},
		{FromInt(1), FromInt(0), 0.10, false},
		// Negative window: infinitely relaxed.
		{FromFloat(1e9), FromFloat(1), -1, true},
		// Zero actual admits only zero approx.
		{FromFloat(0), FromFloat(0), 0.10, true},
		{FromFloat(0.001), FromFloat(0), 0.10, false},
	}
	for i, c := range cases {
		if got := WithinWindow(c.approx, c.actual, c.window); got != c.want {
			t.Errorf("case %d: WithinWindow(%v, %v, %v) = %v, want %v",
				i, c.approx, c.actual, c.window, got, c.want)
		}
	}
}

func TestWithinWindowExactAlwaysPasses(t *testing.T) {
	f := func(bits uint64, win uint16) bool {
		v := Value{Bits: bits, Kind: Float}
		if math.IsNaN(v.Float()) {
			return true
		}
		w := float64(win) / 1000
		return WithinWindow(v, v, w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAverage(t *testing.T) {
	got := Average([]Value{FromFloat(1), FromFloat(2), FromFloat(3), FromFloat(6)})
	if got.Kind != Float || got.Float() != 3 {
		t.Fatalf("float average = %v", got)
	}
	gi := Average([]Value{FromInt(1), FromInt(2)})
	if gi.Kind != Int || gi.Int() != 2 { // 1.5 rounds to even
		t.Fatalf("int average = %v", gi)
	}
	if z := Average(nil); z != (Value{}) {
		t.Fatalf("empty average = %v", z)
	}
	// Mixed inputs promote to float.
	m := Average([]Value{FromInt(1), FromFloat(2)})
	if m.Kind != Float || m.Float() != 1.5 {
		t.Fatalf("mixed average = %v", m)
	}
}

func TestAverageWithinBounds(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]Value, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			x := float64(r)
			vs[i] = FromFloat(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		avg := Average(vs).Float()
		return avg >= lo-1e-9 && avg <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLastValue(t *testing.T) {
	if got := LastValue([]Value{FromInt(1), FromInt(9)}); got.Int() != 9 {
		t.Fatalf("LastValue = %v", got)
	}
	if got := LastValue(nil); got != (Value{}) {
		t.Fatalf("LastValue(nil) = %v", got)
	}
}

func TestStride(t *testing.T) {
	got := Stride([]Value{FromInt(10), FromInt(13)})
	if got.Int() != 16 {
		t.Fatalf("int stride = %v", got)
	}
	gf := Stride([]Value{FromFloat(1.0), FromFloat(1.5)})
	if gf.Float() != 2.0 {
		t.Fatalf("float stride = %v", gf)
	}
	if got := Stride([]Value{FromInt(7)}); got.Int() != 7 {
		t.Fatalf("singleton stride = %v", got)
	}
}
