// Command lvaexp regenerates the paper's tables and figures. Each
// experiment id maps to one table/figure of the evaluation (§VI):
//
//	lvaexp table1         # Table I
//	lvaexp fig4 fig5      # selected figures
//	lvaexp all            # everything (phase 1 + full-system)
//
// The output rows/series mirror what the paper plots; EXPERIMENTS.md
// records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lva/internal/experiments"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lvaexp [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: %v, or 'all'\n", experiments.IDs())
		flag.PrintDefaults()
	}
	verbose := flag.Bool("v", false, "print per-experiment timing")
	format := flag.String("format", "table", "output format: table|csv|json|chart")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var ids []string
	for _, a := range args {
		if a == "all" {
			ids = experiments.IDs()
			break
		}
		ids = append(ids, a)
	}

	for _, id := range ids {
		driver, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "lvaexp: unknown experiment %q (valid: %v)\n", id, experiments.IDs())
			os.Exit(2)
		}
		start := time.Now()
		fig := driver()
		switch *format {
		case "table":
			fmt.Println(fig.String())
		case "csv":
			fmt.Print(fig.CSV())
		case "json":
			out, err := fig.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "lvaexp:", err)
				os.Exit(1)
			}
			fmt.Println(out)
		case "chart":
			fmt.Println(fig.Chart())
		default:
			fmt.Fprintf(os.Stderr, "lvaexp: unknown format %q\n", *format)
			os.Exit(2)
		}
		if *verbose {
			fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
