package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// loopcaptureAnalyzer guards the experiment drivers' fan-out pattern: a
// goroutine may fill a shared result slice only through an index that is
// fresh per goroutine (a parameter, a local, or a per-iteration loop
// variable), and may not write captured variables at all unless a mutex is
// visibly held. Violations are exactly the data races that turn a
// deterministic sweep into run-to-run noise.
var loopcaptureAnalyzer = &Analyzer{
	Name: "loopcapture",
	Doc:  "goroutines must write shared slices index-disjointly and captured variables under a lock",
	Run:  runLoopcapture,
}

func runLoopcapture(p *Pass) {
	for _, f := range p.Pkg.Files {
		// Track the loops enclosing each go statement so per-iteration
		// declarations count as fresh.
		var loops []ast.Node
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = append(loops, n)
				ast.Inspect(n, func(m ast.Node) bool {
					if m == n {
						return true
					}
					return walk(m)
				})
				loops = loops[:len(loops)-1]
				return false
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutine(p, lit, loops)
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}

// checkGoroutine inspects one `go func(...){...}(...)` literal.
func checkGoroutine(p *Pass, lit *ast.FuncLit, loops []ast.Node) {
	fresh := func(obj types.Object) bool {
		if obj == nil {
			return true // unresolved: give the benefit of the doubt
		}
		pos := obj.Pos()
		if lit.Pos() <= pos && pos <= lit.End() {
			return true // parameter of, or declared inside, the literal
		}
		for _, l := range loops {
			if l.Pos() <= pos && pos <= l.End() {
				return true // loop variable or loop-body local: per iteration
			}
		}
		return false
	}

	// lockHeld records statements lexically preceded by a .Lock() call in
	// the same block: the repo's convention for guarded shared updates.
	locked := make(map[ast.Stmt]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		held := false
		for _, stmt := range block.List {
			if es, ok := stmt.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						switch sel.Sel.Name {
						case "Lock", "RLock":
							held = true
						case "Unlock", "RUnlock":
							held = false
						}
					}
				}
			}
			if held {
				locked[stmt] = true
			}
		}
		return true
	})

	var stmtStack []ast.Stmt
	underLock := func() bool {
		for _, s := range stmtStack {
			if locked[s] {
				return true
			}
		}
		return false
	}

	report := func(pos token.Pos, target ast.Expr) {
		if underLock() {
			return
		}
		switch t := target.(type) {
		case *ast.IndexExpr:
			p.Reportf(pos, "goroutine writes shared slice element without index-disjoint access: pass the index as a goroutine parameter or guard the write with a mutex")
		case *ast.Ident:
			p.Reportf(pos, "goroutine writes captured variable %s without synchronization: pass it as a parameter or guard the write with a mutex", t.Name)
		default:
			p.Reportf(pos, "goroutine writes captured state without synchronization")
		}
	}

	checkTarget := func(pos token.Pos, target ast.Expr) {
		switch t := target.(type) {
		case *ast.IndexExpr:
			rootName, ok := unwrapIdentExpr(t.X)
			if !ok || fresh(p.Pkg.Info.ObjectOf(rootName)) {
				return
			}
			if _, isSlice := p.Pkg.Info.TypeOf(t.X).Underlying().(*types.Slice); !isSlice {
				return
			}
			// The write is index-disjoint when the index depends on at
			// least one per-goroutine-fresh identifier.
			disjoint := false
			hasIdent := false
			ast.Inspect(t.Index, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := p.Pkg.Info.ObjectOf(id); obj != nil && obj.Parent() != types.Universe {
						hasIdent = true
						if fresh(obj) {
							disjoint = true
						}
					}
				}
				return true
			})
			if !hasIdent || !disjoint {
				report(pos, t)
			}
		case *ast.Ident:
			if obj := p.Pkg.Info.ObjectOf(t); obj != nil && !fresh(obj) {
				report(pos, t)
			}
		}
	}

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			if len(stmtStack) > 0 {
				stmtStack = stmtStack[:len(stmtStack)-1]
			}
			return true
		}
		if stmt, ok := n.(ast.Stmt); ok {
			stmtStack = append(stmtStack, stmt)
		} else {
			stmtStack = append(stmtStack, nil)
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				for _, lhs := range n.Lhs {
					checkTarget(n.Pos(), lhs)
				}
			}
		case *ast.IncDecStmt:
			checkTarget(n.Pos(), n.X)
		}
		return true
	}
	ast.Inspect(lit.Body, visit)
}

// unwrapIdentExpr strips selectors/parens/indexing down to the root
// identifier node.
func unwrapIdentExpr(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}
