package experiments

import (
	"sync"

	"lva/internal/obs"
)

// engMetrics holds the experiment engine's metrics. Unlike the hot-path
// seams in memsim/cache/core these are always on: they fire once per
// kernel simulation or scheduler transition, so their cost is a handful of
// atomics against milliseconds of simulation, and keeping them live means
// RunCacheCounters and the progress reporters work without any opt-in.
type engMetrics struct {
	cacheHits    *obs.Counter
	cacheSims    *obs.Counter
	preciseHits  *obs.Counter
	cacheLookups *obs.Counter
	inflight    *obs.Gauge
	queueWait   *obs.Histogram
	runWall     *obs.Histogram
	figuresDone *obs.Counter
	sweepPoints *obs.Counter
}

// eng lazily registers the engine metrics exactly once. The timing
// histograms are volatile: their values depend on machine load and
// Parallelism, so they are excluded from deterministic snapshots.
var eng = sync.OnceValue(func() *engMetrics {
	r := obs.Default()
	return &engMetrics{
		cacheHits:    r.Counter("runcache_hits", "Run* calls satisfied from the memo store"),
		cacheSims:    r.Counter("runcache_simulated", "kernel simulations actually executed"),
		preciseHits:  r.Counter("runcache_precise_hits", "memo hits on precise baseline runs"),
		cacheLookups: r.Counter("runcache_lookups", "memo-layer lookups (cachedRun entries, hit or miss)"),
		inflight:    r.Gauge("sched_inflight", "simulations currently holding a gate slot"),
		queueWait:   r.Histogram("sched_queue_wait_seconds", "time simulations waited for a gate slot", obs.TimeBuckets, true),
		runWall:     r.Histogram("run_wall_seconds", "wall time of each executed kernel simulation", obs.TimeBuckets, true),
		figuresDone: r.Counter("figures_done", "experiment drivers completed"),
		sweepPoints: r.Counter("sweep_points_done", "sweep design points completed"),
	}
})
