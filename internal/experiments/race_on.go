//go:build race

package experiments

// raceEnabled reports whether the binary was built with the race detector
// (see race_off.go for the rationale).
const raceEnabled = true
