package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// allocbudgetAnalyzer asserts the compiler-verified hot-path budgets: the
// per-load functions PR-4 flattened (Probe, Touch, OnMiss, OnLoad, record,
// the attr hooks) must remain inlinable within a committed cost ceiling
// and must not acquire heap allocations or heap-escaping parameters. The
// analyzer shells out to `go build -gcflags='-m -m'` for each budgeted
// package, parses the compiler's own inlining and escape diagnostics, and
// diffs them against internal/lint/testdata/hotpath_budget.json — so a
// refactor that quietly pushes Probe past the inliner's budget, or adds a
// fmt call that makes a receiver escape, fails lint with the compiler's
// reason attached instead of surfacing weeks later as a Table 1 slowdown.
//
// The build cache replays -m diagnostics, so repeat runs cost milliseconds.
// The budget is stamped with the Go release that produced it; on any other
// toolchain the analyzer skips (costs shift between releases), and
// LVALINT_SKIP=allocbudget turns it off outright. Regenerate the budget
// after an intentional hot-path change with `go run ./cmd/lvalint
// -regen-budget` (see EXPERIMENTS.md).
var allocbudgetAnalyzer = &Analyzer{
	Name: "allocbudget",
	Doc:  "hot-path functions must match the committed inlining/escape budget (compiler-verified via -gcflags='-m -m')",
	Run:  runAllocbudget,
}

// budgetRelPath locates the committed budget below the module root.
const budgetRelPath = "internal/lint/testdata/hotpath_budget.json"

// funcBudget is the committed contract for one function.
type funcBudget struct {
	// Inline requires the compiler to report the function inlinable.
	Inline bool `json:"inline,omitempty"`
	// MaxCost caps the reported inline cost; 0 means "any cost the
	// inliner accepts". The inliner's own ceiling is 80, so MaxCost is
	// headroom *below* that: tripping it warns before inlining is lost.
	MaxCost int `json:"maxCost,omitempty"`
	// NoEscape forbids heap diagnostics inside the function: no value
	// escaping to the heap, no local moved to heap, no parameter leaking
	// to the heap (leaks *to result* are borrow-shaped and allowed).
	NoEscape bool `json:"noEscape,omitempty"`
}

// budgetFile is the on-disk schema of hotpath_budget.json.
type budgetFile struct {
	// Go is the go1.N release the costs were recorded under; the analyzer
	// only runs when the current toolchain matches, because inline costs
	// and escape verdicts shift between compiler releases.
	Go string `json:"go"`
	// Comment is schema documentation carried in the file itself.
	Comment string `json:"comment,omitempty"`
	// Packages maps import path -> compiler-style function name
	// ("(*Cache).Probe", "Config.Validate", "New") -> contract.
	Packages map[string]map[string]funcBudget `json:"packages"`
}

// goRelease trims a runtime version like "go1.24.0" to its release,
// "go1.24", the granularity inline costs are stable at.
func goRelease(v string) string {
	parts := strings.SplitN(v, ".", 3)
	if len(parts) < 2 {
		return v
	}
	return parts[0] + "." + parts[1]
}

// escDiag is one heap diagnostic attributed to a source line.
type escDiag struct {
	file string // path relative to the module root
	line int
	msg  string
}

// pkgDiag is the parsed compiler output for one package directory.
type pkgDiag struct {
	inlineCost map[string]int    // function -> reported inline cost
	notInline  map[string]string // function -> compiler's refusal reason
	escapes    []escDiag
	err        error
}

var (
	budgetCache sync.Map // module root -> *budgetFile or error string
	gcDiagCache sync.Map // package dir -> *pkgDiag
)

// loadBudget reads and caches the committed budget for the module that
// contains dir.
func loadBudget(dir string) (*budgetFile, string, error) {
	modRoot, err := FindModuleRoot(dir)
	if err != nil {
		return nil, "", err
	}
	if v, ok := budgetCache.Load(modRoot); ok {
		if b, ok := v.(*budgetFile); ok {
			return b, modRoot, nil
		}
		return nil, modRoot, fmt.Errorf("%s", v.(string))
	}
	data, err := os.ReadFile(filepath.Join(modRoot, budgetRelPath))
	if err != nil {
		budgetCache.Store(modRoot, err.Error())
		return nil, modRoot, err
	}
	var b budgetFile
	if err := json.Unmarshal(data, &b); err != nil {
		err = fmt.Errorf("parsing %s: %w", budgetRelPath, err)
		budgetCache.Store(modRoot, err.Error())
		return nil, modRoot, err
	}
	budgetCache.Store(modRoot, &b)
	return &b, modRoot, nil
}

// gcDiagLine splits "file:line:col: msg"; returns ok=false for anything
// else (build banners, package lines).
func gcDiagLine(s string) (file string, line int, msg string, ok bool) {
	i := strings.Index(s, ": ")
	if i < 0 {
		return "", 0, "", false
	}
	pos, msg := s[:i], s[i+2:]
	parts := strings.Split(pos, ":")
	if len(parts) < 3 {
		return "", 0, "", false
	}
	line, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		return "", 0, "", false
	}
	return strings.Join(parts[:len(parts)-2], ":"), line, msg, true
}

// leakingParamRe matches only the bare "leaking param: x" form — the one
// that means the parameter itself reaches the heap. "leaking param: x to
// result ~r0" (a borrow) and "leaking param content: x" (pointee reachable
// from the heap, inevitable for pointer receivers that write through
// themselves) are allowed.
var leakingParamRe = regexp.MustCompile(`^leaking param: [A-Za-z_][A-Za-z0-9_.]*$`)

// gcDiagFor runs `go build -gcflags='-m -m'` on the package in dir (from
// the module root, so diagnostic paths come back root-relative) and parses
// the inlining and escape summaries. Results are cached per directory; the
// go build cache makes even the first run cheap when nothing changed.
func gcDiagFor(modRoot, dir string) *pkgDiag {
	if v, ok := gcDiagCache.Load(dir); ok {
		return v.(*pkgDiag)
	}
	d := &pkgDiag{inlineCost: make(map[string]int), notInline: make(map[string]string)}
	rel, err := filepath.Rel(modRoot, dir)
	if err != nil {
		d.err = err
		gcDiagCache.Store(dir, d)
		return d
	}
	relSlash := filepath.ToSlash(rel)
	cmd := exec.Command("go", "build", "-gcflags=-m -m", "./"+relSlash)
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		d.err = fmt.Errorf("go build -gcflags='-m -m' ./%s: %v\n%s", relSlash, err, strings.TrimSpace(string(out)))
		gcDiagCache.Store(dir, d)
		return d
	}
	for _, raw := range strings.Split(string(out), "\n") {
		file, line, msg, ok := gcDiagLine(raw)
		if !ok || strings.HasPrefix(msg, " ") {
			continue // verbose flow-detail lines are indented; skip them
		}
		// Only diagnostics for the package's own files; -m also reports
		// generic instantiations with stdlib positions.
		if !strings.HasPrefix(file, relSlash+"/") && filepath.Dir(file) != relSlash {
			continue
		}
		switch {
		case strings.HasPrefix(msg, "can inline "):
			rest := strings.TrimPrefix(msg, "can inline ")
			name, costPart, ok := strings.Cut(rest, " with cost ")
			if !ok {
				continue
			}
			costStr, _, _ := strings.Cut(costPart, " ")
			if cost, err := strconv.Atoi(costStr); err == nil {
				d.inlineCost[name] = cost
			}
		case strings.HasPrefix(msg, "cannot inline "):
			rest := strings.TrimPrefix(msg, "cannot inline ")
			if name, reason, ok := strings.Cut(rest, ": "); ok {
				d.notInline[name] = reason
			}
		case strings.HasSuffix(msg, " escapes to heap"),
			strings.HasPrefix(msg, "moved to heap: "),
			leakingParamRe.MatchString(msg):
			// "leaking param: x to result ..." is a borrow and fine;
			// the bare form means the parameter itself reaches the heap.
			d.escapes = append(d.escapes, escDiag{file: file, line: line, msg: msg})
		}
	}
	gcDiagCache.Store(dir, d)
	return d
}

// compilerFuncName renders a declaration the way -m diagnostics name it:
// "(*Cache).Probe" for pointer receivers, "Config.Validate" for value
// receivers, "New" for plain functions.
func compilerFuncName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	switch t := ast.Unparen(fd.Recv.List[0].Type).(type) {
	case *ast.StarExpr:
		if id, ok := ast.Unparen(t.X).(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	case *ast.Ident:
		return t.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// inAllocbudgetScope reports whether the package carries a budget.
func inAllocbudgetScope(path string) bool {
	return hotPathPkgs[path] || (isFixturePath(path) && strings.Contains(path, "allocbudget"))
}

func runAllocbudget(p *Pass) {
	if !inAllocbudgetScope(p.Pkg.Path) {
		return
	}
	anchor := p.Pkg.Files[0].Name.Pos()
	budget, modRoot, err := loadBudget(p.Pkg.Dir)
	if err != nil {
		p.Reportf(anchor, "cannot load hot-path budget: %v", err)
		return
	}
	entries := budget.Packages[p.Pkg.Path]
	if len(entries) == 0 {
		p.Reportf(anchor, "package is on the hot path but has no entry in %s: budget its per-load functions or drop it from the hot-path set", budgetRelPath)
		return
	}
	// Inline costs and escape verdicts are compiler-release-specific; a
	// different toolchain than the one the budget was recorded under would
	// only produce noise. (CI pins the matching release; LVALINT_SKIP=
	// allocbudget is the local escape hatch.)
	if goRelease(runtime.Version()) != budget.Go {
		return
	}
	diag := gcDiagFor(modRoot, p.Pkg.Dir)
	if diag.err != nil {
		p.Reportf(anchor, "cannot collect compiler diagnostics: %v", diag.err)
		return
	}

	// Locate each budgeted function's declaration and span.
	type span struct {
		decl      *ast.FuncDecl
		file      string // module-root-relative path
		from, to  int
	}
	decls := make(map[string]span)
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			start := p.Fset.Position(fd.Pos())
			end := p.Fset.Position(fd.End())
			rel, err := filepath.Rel(modRoot, start.Filename)
			if err != nil {
				rel = start.Filename
			}
			decls[compilerFuncName(fd)] = span{decl: fd, file: filepath.ToSlash(rel), from: start.Line, to: end.Line}
		}
	}

	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fb := entries[name]
		sp, ok := decls[name]
		if !ok {
			p.Reportf(anchor, "budget entry %q names no function in this package: update %s (go run ./cmd/lvalint -regen-budget)", name, budgetRelPath)
			continue
		}
		if fb.Inline {
			if reason, bad := diag.notInline[name]; bad {
				p.Reportf(sp.decl.Pos(), "%s must stay inlinable but the compiler refuses: %s (budgeted in %s; if the change is intentional, rework it until the cost fits or re-budget deliberately)", name, reason, budgetRelPath)
			} else if cost, seen := diag.inlineCost[name]; !seen {
				p.Reportf(sp.decl.Pos(), "%s is budgeted inlinable but the compiler emitted no inlining verdict for it", name)
			} else if fb.MaxCost > 0 && cost > fb.MaxCost {
				p.Reportf(sp.decl.Pos(), "%s inline cost %d exceeds its budget of %d (inliner ceiling is 80): trim it, or regenerate the budget if the growth is deliberate (go run ./cmd/lvalint -regen-budget)", name, cost, fb.MaxCost)
			}
		}
		if fb.NoEscape {
			for _, e := range diag.escapes {
				if e.file == sp.file && e.line >= sp.from && e.line <= sp.to {
					p.Reportf(sp.decl.Pos(), "%s must not allocate, but the compiler reports %q at %s:%d: per-load heap traffic undoes the PR-4 flattening", name, e.msg, e.file, e.line)
				}
			}
		}
	}
}

// RegenerateBudget re-records the committed budget from the current
// compiler's diagnostics: for every budgeted function that the compiler
// reports inlinable, MaxCost becomes the observed cost plus ~25% headroom
// (at least 8, capped at the inliner's ceiling of 80), and the file is
// restamped with the running Go release. The set of tracked functions and
// their NoEscape bits are contracts, not observations — they are preserved
// as-is. Returns the path written.
func RegenerateBudget(modRoot string) (string, error) {
	path := filepath.Join(modRoot, budgetRelPath)
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	var b budgetFile
	if err := json.Unmarshal(data, &b); err != nil {
		return "", fmt.Errorf("parsing %s: %w", path, err)
	}
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return "", err
	}
	pkgs := make([]string, 0, len(b.Packages))
	for p := range b.Packages {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, pkgPath := range pkgs {
		rest, ok := strings.CutPrefix(pkgPath, modPath+"/")
		if !ok {
			return "", fmt.Errorf("budget package %s is outside module %s", pkgPath, modPath)
		}
		dir := filepath.Join(modRoot, filepath.FromSlash(rest))
		diag := gcDiagFor(modRoot, dir)
		if diag.err != nil {
			return "", diag.err
		}
		for name, fb := range b.Packages[pkgPath] {
			if !fb.Inline {
				continue
			}
			cost, ok := diag.inlineCost[name]
			if !ok {
				continue // currently not inlinable; keep the old ceiling as the target
			}
			head := cost / 4
			if head < 8 {
				head = 8
			}
			fb.MaxCost = cost + head
			if fb.MaxCost > 80 {
				fb.MaxCost = 80
			}
			b.Packages[pkgPath][name] = fb
		}
	}
	b.Go = goRelease(runtime.Version())
	out, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return "", err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
