// Command lvatrace captures, inspects and replays the memory-access traces
// that connect the phase-1 (Pin-like) simulator to the phase-2 full-system
// simulator.
//
//	lvatrace -capture canneal -o canneal.lvat     # record a 4-thread trace
//	lvatrace -info canneal.lvat                   # summarize a trace file
//	lvatrace -replay canneal.lvat -degree 4       # full-system replay
package main

import (
	"flag"
	"fmt"
	"os"

	"lva/internal/core"
	"lva/internal/experiments"
	"lva/internal/fullsys"
	"lva/internal/trace"
	"lva/internal/workloads"
)

func main() {
	var (
		capture = flag.String("capture", "", "benchmark to capture a trace from")
		out     = flag.String("o", "", "output trace file (with -capture)")
		info    = flag.String("info", "", "trace file to summarize")
		replay  = flag.String("replay", "", "trace file to replay in the full-system simulator")
		degree  = flag.Int("degree", 0, "approximation degree for -replay (-1 = precise)")
		seed    = flag.Uint64("seed", experiments.DefaultSeed, "workload input seed")
	)
	flag.Parse()

	switch {
	case *capture != "":
		if err := doCapture(*capture, *out, *seed); err != nil {
			fail(err)
		}
	case *info != "":
		if err := doInfo(*info); err != nil {
			fail(err)
		}
	case *replay != "":
		if err := doReplay(*replay, *degree); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lvatrace:", err)
	os.Exit(1)
}

func doCapture(bench, out string, seed uint64) error {
	w, err := workloads.ByName(bench)
	if err != nil {
		return err
	}
	tr := experiments.CaptureTrace(w, seed)
	if out == "" {
		out = bench + ".lvat"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		return err
	}
	fmt.Printf("captured %d accesses (%d threads) to %s\n", tr.Len(), tr.Threads(), out)
	return nil
}

func doInfo(path string) error {
	tr, err := readTrace(path)
	if err != nil {
		return err
	}
	var loads, stores, approx uint64
	pcs := map[uint64]struct{}{}
	for _, a := range tr.Accesses {
		if a.Op == trace.Store {
			stores++
		} else {
			loads++
		}
		if a.Approx {
			approx++
			pcs[a.PC] = struct{}{}
		}
	}
	fmt.Printf("trace %q: %d accesses, %d threads\n", tr.Name, tr.Len(), tr.Threads())
	fmt.Printf("  loads=%d stores=%d approximate=%d staticApproxPCs=%d\n",
		loads, stores, approx, len(pcs))
	return nil
}

func doReplay(path string, degree int) error {
	tr, err := readTrace(path)
	if err != nil {
		return err
	}
	cfg := fullsys.DefaultConfig()
	label := "precise"
	if degree >= 0 {
		acfg := core.DefaultConfig()
		acfg.Degree = degree
		acfg.ValueDelay = 1
		cfg.Approx = &acfg
		label = fmt.Sprintf("lva degree %d", degree)
	}
	r := fullsys.New(cfg).Run(tr)
	fmt.Printf("replay %q (%s):\n", tr.Name, label)
	fmt.Printf("  cycles=%d IPC=%.3f misses=%d covered=%d fetches=%d\n",
		r.Cycles, r.IPC(), r.L1LoadMisses, r.Covered, r.Fetches)
	fmt.Printf("  L2acc=%d dram=%d flitHops=%d invals=%d flushes=%d\n",
		r.L2Accesses, r.DRAMAccesses, r.FlitHops, r.Invalidations, r.Flushes)
	fmt.Printf("  avgServiceLat=%.1f avgExposedMissLat=%.1f energy=%.3g pJ missEDP=%.3g\n",
		r.AvgServiceLatency(), r.AvgExposedMissLatency(), r.Energy.TotalPJ(), r.MissEDP())
	return nil
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}
