// Package stats provides small numeric helpers shared by the simulators
// and experiment drivers. Event counting lives in lva/internal/obs, whose
// registry counters are race-safe under the cross-figure scheduler.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Ratio returns a/b, or 0 when b is zero.
func Ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// PerKilo returns events per thousand units (e.g. misses per kilo-instruction).
func PerKilo(events, units uint64) float64 {
	if units == 0 {
		return 0
	}
	return float64(events) * 1000 / float64(units)
}

// SafeDiv returns a/b, or 0 when b is zero.
func SafeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean of xs. Non-positive entries are clamped
// to a tiny positive value so a single zero does not annihilate the mean;
// callers compare normalized ratios where zero means "no events".
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Min returns the smallest of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs (0 for empty input). xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percent formats a fraction (0.123) as a percentage string ("12.3%").
func Percent(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt bounds x to [lo, hi].
func ClampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
