package experiments

import (
	"bufio"
	"fmt"
	"os"
	"time"

	"lva/internal/core"
	"lva/internal/memsim"
	"lva/internal/obs/attr"
	"lva/internal/obs/phase"
	"lva/internal/obs/prov"
	"lva/internal/prefetch"
	"lva/internal/trace"
	"lva/internal/workloads"
)

// Counter scheduling: the replay-many half of the grid pipeline. A figure
// whose rows read only memsim.Result counters (Table 1, Figures 4, 8, 12,
// 13, the table ablation) declares its design points as ctrReqs instead of
// Run* closures; batch.run routes each one:
//
//   - header: the point IS a recorded stream's run (the precise baseline,
//     or the Table II LVA baseline) — its counters come straight from the
//     stream footer. Zero simulation.
//   - replay: the point consumes only precise values (any LVP or prefetch
//     config; any LVA config on a feedback-free kernel), so it is
//     simulated by replaying the workload's precise stream. All replay
//     points of one workload share a single decode pass.
//   - exec: everything else (LVA off the baseline on a feedback kernel)
//     re-executes through the ordinary memoized Run* path, because the
//     values its annotated loads observe depend on the approximator.
//
// Output-error figures never come through here: Output requires kernel
// arithmetic, so they keep calling Run* directly.

type ctrRoute int

const (
	ctrHeader ctrRoute = iota
	ctrReplay
	ctrExec
)

// ctrReq is one counter-only design point.
type ctrReq struct {
	label string
	w     workloads.Workload
	route ctrRoute
	kind  string        // stream kind, header route
	cfg   memsim.Config // simulator config, replay route
	key   string        // canonical Run* fingerprint of the design point
	why   string        // provenance justification of the chosen route
	exec  func() RunResult
	out   *memsim.Result
}

// ctrPrecisePoint schedules one benchmark's precise counters, served from
// the recorded precise stream.
func (b *batch) ctrPrecisePoint(w workloads.Workload) *memsim.Result {
	out := new(memsim.Result)
	b.ctrs = append(b.ctrs, ctrReq{
		label: "precise/" + w.Name(), w: w, route: ctrHeader, kind: streamPrecise,
		key: runKey("precise", w, "", DefaultSeed), why: provWhyPrecise,
		exec: func() RunResult { return RunPrecise(w, DefaultSeed) },
		out:  out,
	})
	return out
}

// ctrPrecise schedules the precise counters of every benchmark.
func (b *batch) ctrPrecise() []*memsim.Result {
	out := make([]*memsim.Result, len(workloads.Names()))
	for i, w := range workloads.All() {
		out[i] = b.ctrPrecisePoint(w)
	}
	return out
}

// ctrLVAPoint schedules one LVA design point's counters, picking the
// cheapest exact route for its configuration and workload.
func (b *batch) ctrLVAPoint(label string, w workloads.Workload, cfg core.Config) *memsim.Result {
	out := new(memsim.Result)
	cfgStr := fmt.Sprintf("%#v", cfg)
	req := ctrReq{label: label, w: w, out: out,
		key:  runKey("lva", w, cfgStr, DefaultSeed),
		exec: func() RunResult { return RunLVA(w, cfg, DefaultSeed) }}
	switch {
	case cfgStr == fmt.Sprintf("%#v", BaselineFor(w)):
		req.route, req.kind, req.why = ctrHeader, streamLVABase, provWhyBaseline
	case w.FeedbackFree():
		req.route, req.why = ctrReplay, provWhyFeedbackFree
		mc := memsim.DefaultConfig()
		mc.Attach = memsim.AttachLVA
		mc.Approx = cfg
		req.cfg = mc
	default:
		req.route, req.why = ctrExec, provWhyFeedback
	}
	b.ctrs = append(b.ctrs, req)
	return out
}

// ctrLVA schedules one LVA point per benchmark under cfgFor(w).
func (b *batch) ctrLVA(label string, cfgFor func(w workloads.Workload) core.Config) []*memsim.Result {
	out := make([]*memsim.Result, len(workloads.Names()))
	for i, w := range workloads.All() {
		out[i] = b.ctrLVAPoint(label+"/"+w.Name(), w, cfgFor(w))
	}
	return out
}

// ctrLVP schedules one idealized-LVP point per benchmark. LVP never hands
// a predicted value to the kernel (mispredictions squash, §II), so every
// LVP configuration replays the precise stream exactly.
func (b *batch) ctrLVP(label string, cfgFor func(w workloads.Workload) core.Config) []*memsim.Result {
	out := make([]*memsim.Result, len(workloads.Names()))
	for i, w := range workloads.All() {
		cfg := cfgFor(w)
		mc := memsim.DefaultConfig()
		mc.Attach = memsim.AttachLVP
		mc.Approx = cfg
		r := new(memsim.Result)
		w := w
		b.ctrs = append(b.ctrs, ctrReq{
			label: label + "/" + w.Name(), w: w, route: ctrReplay, cfg: mc,
			key: runKey("lvp", w, fmt.Sprintf("%#v", cfg), DefaultSeed), why: provWhyLVP,
			exec: func() RunResult { return RunLVP(w, cfg, DefaultSeed) },
			out:  r,
		})
		out[i] = r
	}
	return out
}

// ctrPrefetch schedules one GHB-prefetcher point per benchmark at a
// degree. The prefetcher never alters load values, so it always replays.
func (b *batch) ctrPrefetch(label string, degree int) []*memsim.Result {
	out := make([]*memsim.Result, len(workloads.Names()))
	for i, w := range workloads.All() {
		mc := memsim.DefaultConfig()
		mc.Attach = memsim.AttachPrefetch
		p := prefetch.DefaultConfig()
		p.Degree = degree
		mc.Prefetch = p
		r := new(memsim.Result)
		w := w
		b.ctrs = append(b.ctrs, ctrReq{
			label: label + "/" + w.Name(), w: w, route: ctrReplay, cfg: mc,
			key: prefetchKey(w, degree, DefaultSeed), why: provWhyPrefetch,
			exec: func() RunResult { return RunPrefetch(w, degree, DefaultSeed) },
			out:  r,
		})
		out[i] = r
	}
	return out
}

// scheduleCtrs converts the collected counter requests into batch tasks:
// one task per (workload, kind) header group, one per-workload replay
// task (all its points ride one decode pass), and one task per exec
// point. Grouping follows insertion order, so the task list — and with it
// the timeline — is deterministic across parallelism levels.
func (b *batch) scheduleCtrs() {
	reqs := b.ctrs
	b.ctrs = nil
	if len(reqs) == 0 {
		return
	}
	fig := b.fig
	if !replayEnabled() {
		for i := range reqs {
			r := &reqs[i]
			b.addQ(r.label, func(queued time.Duration) {
				pc := provBegin(queued)
				*r.out = r.exec().Sim
				if pc.on() {
					pc.point(fig, r.label, "run", prov.RouteExec, prov.CounterNone,
						provWhyReplayOff, r.key, nil, provStagesRunExec, "")
					pc.stage("exec "+fig+"/"+r.label, "", "", map[string]any{"route": "exec"})
				}
			})
		}
		return
	}
	type hkey struct{ name, kind string }
	var (
		horder  []hkey
		hgroups = make(map[hkey][]*ctrReq)
		rorder  []string
		rgroups = make(map[string][]*ctrReq)
	)
	for i := range reqs {
		r := &reqs[i]
		switch r.route {
		case ctrHeader:
			k := hkey{r.w.Name(), r.kind}
			if _, ok := hgroups[k]; !ok {
				horder = append(horder, k)
			}
			hgroups[k] = append(hgroups[k], r)
		case ctrReplay:
			if _, ok := rgroups[r.w.Name()]; !ok {
				rorder = append(rorder, r.w.Name())
			}
			rgroups[r.w.Name()] = append(rgroups[r.w.Name()], r)
		default:
			b.addQ(r.label, func(queued time.Duration) {
				pc := provBegin(queued)
				*r.out = r.exec().Sim
				traceStats.execPoints.Add(1)
				if pc.on() {
					pc.point(fig, r.label, "ctr", prov.RouteExec, prov.CounterExec,
						r.why, r.key, nil, provStagesCtrExec, "")
					pc.stage("exec "+fig+"/"+r.label, "", "", map[string]any{"route": "exec", "why": r.why})
				}
			})
		}
	}
	for _, k := range horder {
		group := hgroups[k]
		kind := k.kind
		b.addQ("grid/"+k.name+"/"+kind, func(queued time.Duration) { serveHeaders(fig, kind, group, queued) })
	}
	for _, name := range rorder {
		group := rgroups[name]
		b.addQ("grid/"+name+"/replay", func(queued time.Duration) { serveReplay(fig, group, queued) })
	}
}

// serveHeaders resolves a header group from its recorded stream's footer
// counters. ensureStream falls back to (cached, capturing) execution when
// no recording exists yet, so res is always the exact design-point result.
func serveHeaders(fig, kind string, group []*ctrReq, queued time.Duration) {
	pc := provBegin(queued)
	st := ensureStream(kind, group[0].w, DefaultSeed)
	for _, r := range group {
		*r.out = st.res
		traceStats.headerHits.Add(1)
		pc.point(fig, r.label, "ctr", prov.RouteFooter, prov.CounterFooter,
			r.why, r.key, st, provStagesFooter, "")
	}
	if pc.on() {
		pc.stage("footer "+kind+"/"+group[0].w.Name(), "f", st.hdr.Key,
			map[string]any{"route": "footer", "figure": fig, "points": len(group)})
	}
}

// replayKey is the memo identity of one replayed design point. The full
// simulator config goes into the key, so it separates attachments,
// approximator settings and prefetch degrees exactly as the Run* keys do.
func replayKey(w workloads.Workload, cfg memsim.Config, seed uint64) string {
	return runKey("replay", w, fmt.Sprintf("%#v", cfg), seed)
}

// serveReplay simulates a replay group by streaming the workload's
// precise recording through one fresh simulator per design point: a
// single decode pass, K per-point cache/approximator instances, no kernel
// arithmetic. Points an earlier pass already replayed are served from the
// replay memo and skip the decode entirely. Any failure (no recording,
// disk or decode error) falls back to executing every point.
func serveReplay(fig string, group []*ctrReq, queued time.Duration) {
	w := group[0].w
	pc := provBegin(queued)
	var pst *gridStream
	if pc.on() {
		// Resolve the artifact identity up front so memo-served points
		// carry it too. The cell is warm whenever the memo has entries
		// (both are reset together), so this costs no extra recording.
		pst = ensureStream(streamPrecise, w, DefaultSeed)
	}
	pending := group[:0:0]
	for _, r := range group {
		if v, ok := replayCells.Load(replayKey(r.w, r.cfg, DefaultSeed)); ok {
			*r.out = v.(memsim.Result)
			traceStats.replayHits.Add(1)
			pc.point(fig, r.label, "ctr", prov.RouteReplay, prov.CounterReplayed,
				r.why, r.key, pst, provStagesReplay, "memo")
			continue
		}
		pending = append(pending, r)
	}
	if len(pending) == 0 {
		if pc.on() {
			pc.stage("replay "+w.Name(), "f", pst.hdr.Key,
				map[string]any{"route": "replay", "figure": fig, "points": len(group), "served": "memo"})
		}
		return
	}
	group = pending
	st := ensureStream(streamPrecise, w, DefaultSeed)
	execAll := func(why string) {
		for _, r := range group {
			*r.out = r.exec().Sim
			traceStats.execPoints.Add(1)
			pc.point(fig, r.label, "ctr", prov.RouteExec, prov.CounterExec,
				why, r.key, nil, provStagesCtrExec, "")
		}
		if pc.on() {
			pc.stage("exec "+fig+"/"+w.Name(), "", "",
				map[string]any{"route": "exec", "why": why, "points": len(group)})
		}
	}
	if st.path == "" {
		execAll(provWhyNoStream)
		return
	}
	sims := make([]*memsim.Sim, len(group))
	recs := make([]*attr.Recorder, len(group))
	phs := make([]*phase.Profiler, len(group))
	for i, r := range group {
		sims[i] = memsim.New(r.cfg)
		recs[i] = attrRecorder(w, r.cfg, DefaultSeed)
		if recs[i] != nil {
			sims[i].SetAttribution(recs[i])
		}
		phs[i] = phaseProfiler(w, r.cfg, DefaultSeed)
		if phs[i] != nil {
			sims[i].SetPhaseProfile(phs[i])
		}
	}
	phStart := time.Now()
	f, err := os.Open(st.path)
	if err != nil {
		execAll(provWhyReplayFail)
		return
	}
	defer f.Close()
	gr, err := trace.NewGridReader(bufio.NewReaderSize(f, 1<<16))
	if err == nil {
		err = memsim.Replay(gr, st.hdr.Instructions, sims)
	}
	if err != nil {
		execAll(provWhyReplayFail)
		return
	}
	for i, r := range group {
		res := sims[i].Result()
		*r.out = res
		replayCells.Store(replayKey(r.w, r.cfg, DefaultSeed), res)
		if recs[i] != nil {
			attr.Publish(recs[i])
		}
		if phs[i] != nil {
			publishPhaseProfile(phs[i], phStart)
		}
		traceStats.replayPoints.Add(1)
		pc.point(fig, r.label, "ctr", prov.RouteReplay, prov.CounterReplayed,
			r.why, r.key, st, provStagesReplay, "fresh")
	}
	traceStats.replayPasses.Add(1)
	if pc.on() {
		_, _, decodedBytes := gr.DecodedStats()
		pc.l.AddDecodedBytes(decodedBytes)
		pc.stage("replay "+w.Name(), "f", st.hdr.Key,
			map[string]any{"route": "replay", "figure": fig, "points": len(group), "bytes_decoded": decodedBytes})
	}
}

// replayLVAPoint simulates one LVA design point by replaying the
// workload's precise stream through a single fresh simulator (RunSweep's
// CountersOnly path), falling back to the memoized execution when no
// recording is available. Callers must hold a gate slot; queued is the
// slot wait, attached to the point's provenance cost.
func replayLVAPoint(w workloads.Workload, cfg core.Config, seed uint64, queued time.Duration) memsim.Result {
	mc := memsim.DefaultConfig()
	mc.Attach = memsim.AttachLVA
	mc.Approx = cfg
	pc := provBegin(queued)
	key, label := "", ""
	if pc.on() {
		key = runKey("lva", w, fmt.Sprintf("%#v", cfg), seed)
		label = "lva/" + w.Name()
	}
	if v, ok := replayCells.Load(replayKey(w, mc, seed)); ok {
		traceStats.replayHits.Add(1)
		if pc.on() {
			pst := ensureStream(streamPrecise, w, seed)
			pc.point("sweep", label, "sweep", prov.RouteReplay, prov.CounterReplayed,
				provWhyFeedbackFree, key, pst, provStagesSweepReplay, "memo")
		}
		return v.(memsim.Result)
	}
	st := ensureStream(streamPrecise, w, seed)
	execPoint := func(why string) memsim.Result {
		traceStats.execPoints.Add(1)
		r := RunLVA(w, cfg, seed).Sim
		pc.point("sweep", label, "sweep", prov.RouteExec, prov.CounterExec,
			why, key, nil, provStagesSweepExec, "")
		return r
	}
	if st.path == "" {
		return execPoint(provWhyNoStream)
	}
	sim := memsim.New(mc)
	rec := attrRecorder(w, mc, seed)
	if rec != nil {
		sim.SetAttribution(rec)
	}
	pp := phaseProfiler(w, mc, seed)
	var ppStart time.Time
	if pp != nil {
		sim.SetPhaseProfile(pp)
		ppStart = time.Now()
	}
	f, err := os.Open(st.path)
	if err != nil {
		return execPoint(provWhyReplayFail)
	}
	defer f.Close()
	gr, err := trace.NewGridReader(bufio.NewReaderSize(f, 1<<16))
	if err == nil {
		err = memsim.Replay(gr, st.hdr.Instructions, []*memsim.Sim{sim})
	}
	if err != nil {
		return execPoint(provWhyReplayFail)
	}
	if rec != nil {
		attr.Publish(rec)
	}
	if pp != nil {
		publishPhaseProfile(pp, ppStart)
	}
	traceStats.replayPasses.Add(1)
	traceStats.replayPoints.Add(1)
	res := sim.Result()
	replayCells.Store(replayKey(w, mc, seed), res)
	if pc.on() {
		_, _, decodedBytes := gr.DecodedStats()
		pc.l.AddDecodedBytes(decodedBytes)
		pc.point("sweep", label, "sweep", prov.RouteReplay, prov.CounterReplayed,
			provWhyFeedbackFree, key, st, provStagesSweepReplay, "fresh")
		pc.stage("replay sweep/"+w.Name(), "f", st.hdr.Key,
			map[string]any{"route": "replay", "figure": "sweep", "bytes_decoded": decodedBytes})
	}
	return res
}
