// Package detfloat_good shows the blessed pattern: accumulate over sorted
// keys so the order (and hence the rounding) is identical every run.
package detfloat_good

import "sort"

// SumSorted accumulates in sorted-key order.
func SumSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sum := 0.0
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

// CountKeys ranges over the map with integer accumulation: ordering cannot
// affect an integer sum.
func CountKeys(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}
