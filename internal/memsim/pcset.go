package memsim

// pcSet is a small open-addressed hash set of load PCs, replacing a Go map
// on the per-approximate-load path: kernels cycle through a handful of
// static sites millions of times, so membership is almost always a one-slot
// lookup, and the runtime map's hashing dominated the load fast path.
// Zero is the empty-slot sentinel; PC 0 is tracked separately.
type pcSet struct {
	tab  []uint64
	n    int
	zero bool
}

const pcSetInitial = 256 // power of two, comfortably above Figure 12's max static PC count

func (p *pcSet) slot(pc uint64) uint64 {
	// Fibonacci hashing: synthetic PCs differ only in a few low bits.
	return (pc * 0x9E3779B97F4A7C15) >> 32 & uint64(len(p.tab)-1)
}

// add inserts pc, growing at 3/4 occupancy so probes stay short.
func (p *pcSet) add(pc uint64) {
	if pc == 0 {
		if !p.zero {
			p.zero = true
			p.n++
		}
		return
	}
	if p.tab == nil {
		p.tab = make([]uint64, pcSetInitial)
	}
	mask := uint64(len(p.tab) - 1)
	for i := p.slot(pc); ; i = (i + 1) & mask {
		switch p.tab[i] {
		case pc:
			return
		case 0:
			p.tab[i] = pc
			p.n++
			if (p.n-1)*4 >= len(p.tab)*3 {
				p.grow()
			}
			return
		}
	}
}

func (p *pcSet) grow() {
	old := p.tab
	p.tab = make([]uint64, 2*len(old))
	mask := uint64(len(p.tab) - 1)
	for _, pc := range old {
		if pc == 0 {
			continue
		}
		i := p.slot(pc)
		for p.tab[i] != 0 {
			i = (i + 1) & mask
		}
		p.tab[i] = pc
	}
}

// len returns the number of distinct PCs inserted.
func (p *pcSet) len() int { return p.n }
