// Package nopanic_good shows the blessed patterns: documented panic
// contracts on constructors and error returns everywhere else.
package nopanic_good

import "fmt"

// Thing is a stand-in for a model with a validating constructor.
type Thing struct{ n int }

// New builds a Thing; it panics if n is not positive since sizes are fixed
// experiment parameters.
func New(n int) *Thing {
	if n <= 0 {
		panic(fmt.Sprintf("nopanic_good: size %d out of range [1,inf)", n))
	}
	return &Thing{n: n}
}

// Div returns a/b, reporting division by zero as an error instead of
// crashing the sweep.
func Div(a, b int) (int, error) {
	if b == 0 {
		return 0, fmt.Errorf("nopanic_good: division by zero")
	}
	return a / b, nil
}
