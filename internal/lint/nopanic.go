package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// libraryPkgs are the reusable model packages where a stray panic takes
// down a whole sweep: new code there should return errors. Driver-style
// packages (experiments, cmd, examples) are exempt.
var libraryPkgs = map[string]bool{
	"lva/internal/cache":     true,
	"lva/internal/coherence": true,
	"lva/internal/core":      true,
	"lva/internal/dram":      true,
	"lva/internal/energy":    true,
	"lva/internal/fullsys":   true,
	"lva/internal/isa":       true,
	"lva/internal/memsim":    true,
	"lva/internal/noc":       true,
	"lva/internal/obs":       true,
	"lva/internal/obs/attr":  true,
	"lva/internal/obs/phase": true,
	"lva/internal/obs/prov":  true,
	"lva/internal/prefetch":  true,
	"lva/internal/stats":     true,
	"lva/internal/trace":     true,
	"lva/internal/value":     true,
	"lva/internal/workloads": true,
}

// nopanicAnalyzer flags panic calls in library packages unless the
// enclosing function's doc comment documents the panic contract (the
// constructors validate fixed experiment parameters and deliberately panic;
// everything else should return an error). The allowlist is therefore
// anchored to documented, tested contracts rather than reviewer memory.
var nopanicAnalyzer = &Analyzer{
	Name: "nopanic",
	Doc:  "library packages must not panic unless the function documents the panic contract",
	Run:  runNopanic,
}

func runNopanic(p *Pass) {
	if !libraryPkgs[p.Pkg.Path] && !isFixturePath(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		if p.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			documented := fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "panic")
			if documented {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, builtin := p.Pkg.Info.Uses[id].(*types.Builtin); !builtin {
					return true
				}
				p.Reportf(call.Pos(), "panic in library code path %s: return an error, or document the panic contract in the function comment", fd.Name.Name)
				return true
			})
		}
	}
}
