// Package noc models the paper's network-on-chip: a 2x2 mesh with 3-cycle
// routers (Table II), XY dimension-order routing, and per-link serialization
// so contention lengthens transfers under load (the paper models the NoC
// with BookSim; this is a lighter-weight link-reservation model that
// captures hop latency, serialization and queueing).
package noc

import "fmt"

// Config describes the mesh.
type Config struct {
	// Width, Height are the mesh dimensions (paper: 2x2).
	Width, Height int
	// RouterCycles is the per-hop router pipeline latency (paper: 3).
	RouterCycles uint64
	// LinkCycles is the per-hop link traversal latency.
	LinkCycles uint64
	// CtrlFlits and DataFlits are packet sizes in flits: control packets
	// carry a request/ack; data packets carry a 64 B cache block.
	CtrlFlits, DataFlits int
}

// DefaultConfig returns the paper's NoC parameters.
func DefaultConfig() Config {
	return Config{Width: 2, Height: 2, RouterCycles: 3, LinkCycles: 1, CtrlFlits: 1, DataFlits: 5}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.Width <= 0 || c.Height <= 0:
		return fmt.Errorf("noc: mesh dimensions must be positive, got %dx%d", c.Width, c.Height)
	case c.CtrlFlits <= 0 || c.DataFlits <= 0:
		return fmt.Errorf("noc: packet sizes must be positive, got ctrl=%d data=%d", c.CtrlFlits, c.DataFlits)
	}
	return nil
}

// Nodes returns the node count.
func (c Config) Nodes() int { return c.Width * c.Height }

// link identifies a directed channel between adjacent routers.
type link struct {
	from, to int
}

// Stats counts NoC activity.
type Stats struct {
	Packets  uint64
	FlitHops uint64 // flits x hops: the traffic/energy measure
}

// Mesh is the interconnect model. Not safe for concurrent use.
type Mesh struct {
	cfg      Config
	linkFree map[link]uint64
	stats    Stats
}

// New builds a mesh; it panics on an invalid Config.
func New(cfg Config) *Mesh {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Mesh{cfg: cfg, linkFree: make(map[link]uint64)}
}

// Config returns the mesh configuration.
func (m *Mesh) Config() Config { return m.cfg }

// Stats returns a copy of the counters.
func (m *Mesh) Stats() Stats { return m.stats }

func (m *Mesh) coord(n int) (x, y int) { return n % m.cfg.Width, n / m.cfg.Width }
func (m *Mesh) node(x, y int) int      { return y*m.cfg.Width + x }

// Route returns the XY-routed node sequence from src to dst (inclusive).
func (m *Mesh) Route(src, dst int) []int {
	path := []int{src}
	x, y := m.coord(src)
	dx, dy := m.coord(dst)
	for x != dx {
		if x < dx {
			x++
		} else {
			x--
		}
		path = append(path, m.node(x, y))
	}
	for y != dy {
		if y < dy {
			y++
		} else {
			y--
		}
		path = append(path, m.node(x, y))
	}
	return path
}

// Hops returns the XY hop count between two nodes.
func (m *Mesh) Hops(src, dst int) int { return len(m.Route(src, dst)) - 1 }

// Send injects a packet of `flits` flits at time `now` and returns its
// arrival time at dst. Each directed link serializes: a packet holds the
// link for `flits` cycles, so concurrent traffic queues up. src == dst
// arrives immediately (bank co-located with the core tile).
func (m *Mesh) Send(src, dst int, flits int, now uint64) uint64 {
	m.stats.Packets++
	if src == dst {
		return now
	}
	path := m.Route(src, dst)
	t := now
	for i := 0; i+1 < len(path); i++ {
		l := link{from: path[i], to: path[i+1]}
		depart := t
		if free := m.linkFree[l]; free > depart {
			depart = free
		}
		m.linkFree[l] = depart + uint64(flits)
		t = depart + m.cfg.RouterCycles + m.cfg.LinkCycles
		m.stats.FlitHops += uint64(flits)
	}
	// Tail flits serialize onto the final hop.
	return t + uint64(flits) - 1
}

// SendCtrl sends a control packet (request/ack).
func (m *Mesh) SendCtrl(src, dst int, now uint64) uint64 {
	return m.Send(src, dst, m.cfg.CtrlFlits, now)
}

// SendData sends a data packet (one cache block).
func (m *Mesh) SendData(src, dst int, now uint64) uint64 {
	return m.Send(src, dst, m.cfg.DataFlits, now)
}

// Reset clears link reservations and statistics.
func (m *Mesh) Reset() {
	m.linkFree = make(map[link]uint64)
	m.stats = Stats{}
}
