package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"lva/internal/memsim"
	"lva/internal/obs/attr"
)

// goldenHashFor reads one experiment's recorded hash from the golden file.
func goldenHashFor(t *testing.T, id string) string {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s: %v", goldenPath, err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	h, ok := want[id]
	if !ok {
		t.Fatalf("no golden hash for %q", id)
	}
	return h
}

func figureHash(f *Figure) string {
	sum := sha256.Sum256([]byte(f.String()))
	return hex.EncodeToString(sum[:])
}

// TestAttrOffIsFree is the zero-overhead-when-off gate for the flight
// recorder: with attribution disabled (the default), the annotated-load
// path allocates nothing and figures match their golden hashes bit for bit
// — i.e. the seam really is one nil check.
func TestAttrOffIsFree(t *testing.T) {
	if raceEnabled {
		t.Skip("regenerates table1 under the detector's slowdown; byte-identity is a determinism property the non-race run checks, and the attr seams get race coverage from the memsim/obs/timeline tests")
	}
	if attr.Enabled() {
		t.Fatal("test requires attribution disabled")
	}

	// Per-load allocation check on the annotated path with no recorder.
	sim := memsim.New(memsim.DefaultConfig())
	for i := 0; i < 512; i++ {
		sim.LoadFloat(uint64(0x400+i%8*4), uint64(0x100000+i*64), 1, true)
	}
	addr := uint64(0x900000)
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		sim.LoadFloat(uint64(0x400+i%8*4), addr, 1, true)
		addr += 64
		i++
	}); n != 0 {
		t.Errorf("annotated load with attr off: %v allocs/op, want 0", n)
	}

	// Figure bytes against the committed golden contract.
	ResetRunCache()
	defer ResetRunCache()
	for _, id := range []string{"table1", "fig12", "fig13"} {
		if got, want := figureHash(Registry[id]()), goldenHashFor(t, id); got != want {
			t.Errorf("figure %s hash = %s, want golden %s", id, got, want)
		}
	}
}

// TestFiguresIdenticalWithAttrOn is the observer-effect gate: running with
// the flight recorder wired into every approximate simulation must leave
// every figure byte-identical to its golden hash, while actually
// publishing attribution scopes.
func TestFiguresIdenticalWithAttrOn(t *testing.T) {
	if raceEnabled {
		t.Skip("regenerates table1 under the detector's slowdown (see TestAttrOffIsFree)")
	}
	attr.SetEnabled(true)
	attr.Reset()
	ResetRunCache()
	defer func() {
		attr.SetEnabled(false)
		attr.Reset()
		ResetRunCache()
	}()

	for _, id := range []string{"table1", "fig12", "fig13"} {
		if got, want := figureHash(Registry[id]()), goldenHashFor(t, id); got != want {
			t.Errorf("figure %s hash with attr on = %s, want golden %s", id, got, want)
		}
	}

	snap := attr.TakeSnapshot()
	if len(snap.Scopes) == 0 {
		t.Fatal("no attribution scopes published")
	}
	var sites int
	for _, sc := range snap.Scopes {
		sites += len(sc.Sites)
		if !strings.Contains(sc.Scope, "/lva/") && !strings.Contains(sc.Scope, "/lvp/") {
			t.Errorf("unexpected scope name %q (want bench/attach/hash)", sc.Scope)
		}
	}
	if sites == 0 {
		t.Fatal("published scopes carry no sites")
	}
}

// TestAttrSnapshotDeterministic checks the published attribution is
// byte-stable across repeat runs and Parallelism levels: recorders are
// per-run single-threaded and the run cache simulates each design point
// once, so the scope-sorted snapshot cannot depend on scheduling.
func TestAttrSnapshotDeterministic(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("regenerates two figures three times")
	}
	saved := Parallelism
	attr.SetEnabled(true)
	defer func() {
		Parallelism = saved
		attr.SetEnabled(false)
		attr.Reset()
		ResetRunCache()
	}()

	capture := func(par int) []byte {
		Parallelism = par
		ResetRunCache()
		attr.Reset()
		if _, err := RunAll("fig12", "fig13"); err != nil {
			t.Fatal(err)
		}
		b, err := attr.TakeSnapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	p8a := capture(8)
	p8b := capture(8)
	p1 := capture(1)
	if !bytes.Equal(p8a, p8b) {
		t.Error("attribution snapshot differs between two identical Parallelism=8 runs")
	}
	if !bytes.Equal(p8a, p1) {
		t.Error("attribution snapshot differs between Parallelism=8 and Parallelism=1")
	}

	snap, err := attr.ParseSnapshot(p1)
	if err != nil {
		t.Fatal(err)
	}
	// fig12 runs every benchmark under the LVA baseline; each such scope
	// must carry sites (the paper's point: few static PCs, all attributable).
	var lvaScopes int
	for _, sc := range snap.Scopes {
		if strings.Contains(sc.Scope, "/lva/") {
			lvaScopes++
			if len(sc.Sites) == 0 {
				t.Errorf("scope %s has no sites", sc.Scope)
			}
		}
	}
	if lvaScopes == 0 {
		t.Fatalf("no LVA scopes in snapshot:\n%s", p1)
	}
}
