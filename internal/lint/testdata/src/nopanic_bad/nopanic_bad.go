// Package nopanic_bad exercises the nopanic analyzer's failure cases.
package nopanic_bad

import "fmt"

// Lookup returns the element at i. Nothing in this comment warns the
// caller that an out-of-range index brings the process down.
func Lookup(xs []int, i int) int {
	if i < 0 || i >= len(xs) {
		panic(fmt.Sprintf("index %d out of range", i)) // want:nopanic
	}
	return xs[i]
}

// Halve divides by two.
func Halve(n int) int {
	if n%2 != 0 {
		panic("odd input") // want:nopanic
	}
	return n / 2
}
