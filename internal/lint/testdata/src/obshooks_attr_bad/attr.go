// Package obshooks_attr_bad exercises the obshooks analyzer's extra rules
// for the attribution seam: on top of the hot-path rules (no time.Now, no
// package-level mutation), the flight recorder must never call into
// package fmt.
package obshooks_attr_bad

import (
	"fmt"
	"time"
)

// published is the kind of ad-hoc global registry the seam forbids.
var published int

// Recorder models a flight recorder that breaks every seam rule.
type Recorder struct {
	scope string
	last  time.Time
}

// Train stamps wall-clock time on a simulated event.
func (r *Recorder) Train() {
	r.last = time.Now() // want:obshooks
}

// Scope formats with fmt, which boxes its operands on the load path.
func (r *Recorder) Scope(pc uint64) string {
	return fmt.Sprintf("%s/%#x", r.scope, pc) // want:obshooks
}

// Publish bumps a package-level counter instead of a registry seam.
func Publish(r *Recorder) {
	published++ // want:obshooks
}
