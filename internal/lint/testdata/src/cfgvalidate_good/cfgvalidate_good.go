// Package cfgvalidate_good shows the blessed construction patterns for
// simulator configs.
package cfgvalidate_good

import (
	"lva/internal/cache"
	"lva/internal/core"
)

// FromDefault starts from the package's Default constructor and tweaks
// fields; no literal is involved.
func FromDefault() core.Config {
	cfg := core.DefaultConfig()
	cfg.Degree = 2
	return cfg
}

// Validated builds a literal but passes it through Validate before use.
func Validated() (core.Config, error) {
	cfg := core.Config{TableEntries: 512, TableWays: 1, TagBits: 21, ConfidenceBits: 4, LHBSize: 4}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// HandedToNew relies on the constructor's validation.
func HandedToNew() *cache.Cache {
	return cache.New(cache.Config{SizeBytes: 64 << 10, Ways: 8, BlockBytes: 64, LatencyCycles: 1})
}

// DefaultSmall is a Default* constructor: the one place literals are
// expected to originate.
func DefaultSmall() cache.Config {
	return cache.Config{SizeBytes: 16 << 10, Ways: 4, BlockBytes: 64, LatencyCycles: 1}
}
