// Package memsim is the phase-1, Pin-like memory-hierarchy simulator
// (paper §V-A). Workloads issue every load and store through the Memory
// interface; the simulator models a private L1 data cache and attaches one
// of: nothing (precise), a load value approximator, an idealized load value
// predictor, or a GHB prefetcher. For covered approximate loads the
// returned value is clobbered with the approximation, dynamically altering
// the execution of the workload — exactly the paper's methodology for
// measuring final output error.
package memsim

import (
	"fmt"

	"lva/internal/cache"
	"lva/internal/core"
	"lva/internal/obs"
	"lva/internal/obs/attr"
	"lva/internal/obs/phase"
	"lva/internal/prefetch"
	"lva/internal/trace"
	"lva/internal/value"
)

// Memory is the interface workloads use for every annotated memory access.
// Loads pass the precise value in; the simulator returns either that value
// (hit, or uncovered miss) or an approximation (covered miss of a load with
// approx=true).
type Memory interface {
	// LoadFloat performs a data load of a float64.
	LoadFloat(pc, addr uint64, precise float64, approx bool) float64
	// LoadInt performs a data load of a signed integer.
	LoadInt(pc, addr uint64, precise int64, approx bool) int64
	// Store performs a data store (never approximated, §V-A).
	Store(pc, addr uint64)
	// Tick accounts n non-memory instructions (ALU work between accesses).
	Tick(n uint64)
	// SetThread tags subsequent accesses with a logical thread id, used
	// when capturing traces for the 4-core phase-2 simulator.
	SetThread(t int)
}

// Attachment selects what augments the L1.
type Attachment uint8

const (
	// AttachNone is precise execution: every miss fetches, no coverage.
	AttachNone Attachment = iota
	// AttachLVA attaches the load value approximator.
	AttachLVA
	// AttachLVP attaches the idealized load value predictor baseline.
	AttachLVP
	// AttachPrefetch attaches the GHB prefetcher (applied to all data).
	AttachPrefetch
)

func (a Attachment) String() string {
	switch a {
	case AttachLVA:
		return "lva"
	case AttachLVP:
		return "lvp"
	case AttachPrefetch:
		return "prefetch"
	default:
		return "precise"
	}
}

// Config assembles a phase-1 simulation.
type Config struct {
	L1       cache.Config
	Attach   Attachment
	Approx   core.Config     // used by AttachLVA / AttachLVP
	Prefetch prefetch.Config // used by AttachPrefetch
}

// DefaultConfig returns the paper's phase-1 setup: 64 KB 8-way 64 B-block
// L1 with the Table II baseline approximator attached.
func DefaultConfig() Config {
	return Config{
		L1:     cache.Config{SizeBytes: 64 << 10, Ways: 8, BlockBytes: 64, LatencyCycles: 1},
		Attach: AttachLVA,
		Approx: core.DefaultConfig(),
	}
}

// Result aggregates the phase-1 metrics the paper's figures are built from.
type Result struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	LoadMisses   uint64 // raw L1 load misses, before coverage
	Covered      uint64 // misses satisfied by an approximation/prediction
	Fetches      uint64 // blocks fetched into the L1 (demand + prefetch)
	StaticPCs    int    // distinct PCs that issued approximate loads

	Approx   core.Stats
	Prefetch prefetch.Stats
	Cache    cache.Stats
}

// EffectiveMPKI is load misses per kilo-instruction with covered misses
// counted as hits ("an approximated value is a cache hit", §V-A).
func (r Result) EffectiveMPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.LoadMisses-r.Covered) * 1000 / float64(r.Instructions)
}

// RawMPKI is load misses per kilo-instruction ignoring coverage.
func (r Result) RawMPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.LoadMisses) * 1000 / float64(r.Instructions)
}

// Coverage is the fraction of L1 load misses that were covered.
func (r Result) Coverage() float64 {
	if r.LoadMisses == 0 {
		return 0
	}
	return float64(r.Covered) / float64(r.LoadMisses)
}

// Sim is the concrete phase-1 simulator. Workload kernels call its methods
// directly (devirtualized hot path); it also implements Memory for callers
// that need the interface seam (the ISA VM, tests, external wrappers). Not
// safe for concurrent use.
type Sim struct {
	cfg      Config
	l1       *cache.Cache
	approx   *core.Approximator
	pref     *prefetch.Prefetcher
	thread   uint8
	insts    uint64
	loads    uint64
	stores   uint64
	loadMiss uint64
	storMiss uint64
	covered  uint64
	fetches  uint64
	approxPC pcSet
	// lastApproxPC short-circuits the approxPC map insert: kernels issue
	// millions of approximate loads from a handful of sites, usually the
	// same PC back to back, and the map hash dominated the load path.
	lastApproxPC uint64
	lastPCValid  bool

	// om is non-nil only when obs metrics were enabled at construction;
	// the load-hit fast path never touches it.
	om *simMetrics
	// at is non-nil only when a flight recorder was attached for this run.
	// Its hooks live inside the annotated-load branch, so the plain
	// (approx=false) hit path never tests it.
	at *attr.Recorder
	// ph is non-nil only when a phase profiler was attached for this run.
	// Like at, its hooks live inside the annotated-load branch only.
	ph *phase.Profiler

	rec     *trace.Trace // optional capture
	lastEnd []uint64     // per-thread instruction count at last recorded access

	// grid is the optional streaming capture sink (record-once replay).
	// Mutually exclusive with rec in practice; rec wins if both are set.
	grid *trace.GridWriter
}

// Simulator is kept as an alias for existing callers; new code should use
// the shorter concrete name.
type Simulator = Sim

var _ Memory = (*Sim)(nil)

// New builds a simulator; it panics on an invalid Config since
// configurations are fixed experiment parameters.
func New(cfg Config) *Sim {
	if err := cfg.L1.Validate(); err != nil {
		panic(err)
	}
	s := &Sim{
		cfg: cfg,
		l1:  cache.New(cfg.L1),
	}
	if obs.Enabled() {
		s.om = sharedSimMetrics()
	}
	switch cfg.Attach {
	case AttachLVA:
		s.approx = core.New(cfg.Approx)
	case AttachLVP:
		c := cfg.Approx
		c.Mode = core.ModeLVP
		c.Window = 0 // exact match only
		c.Degree = 0 // always fetch
		s.approx = core.New(c)
	case AttachPrefetch:
		p := cfg.Prefetch
		if p.GHBEntries == 0 {
			p = prefetch.DefaultConfig()
		}
		p.BlockBytes = cfg.L1.BlockBytes
		s.pref = prefetch.New(p)
	}
	return s
}

// Capture directs the simulator to record every access into a trace with
// the given name. Call before running the workload.
func (s *Sim) Capture(name string) { s.CaptureSized(name, 0) }

// CaptureSized is Capture with a capacity hint: accesses is the expected
// number of loads+stores, known exactly when a precise run of the same
// workload has already been simulated (the run cache makes that free).
// Preallocating avoids regrowing the trace slice through dozens of copies
// during multi-million-access captures.
func (s *Sim) CaptureSized(name string, accesses int) {
	s.rec = trace.NewSized(name, accesses)
	s.lastEnd = make([]uint64, 256)
}

// TakeTrace returns the captured trace (nil if Capture was not called).
func (s *Sim) TakeTrace() *trace.Trace { return s.rec }

// SetGridCapture directs the simulator to stream every access into a grid
// trace writer (nil detaches). Unlike Capture nothing is buffered in
// memory: accesses go straight into the writer's chunk encoder. Call
// before running the workload; the writer's own Finish seals the file.
func (s *Sim) SetGridCapture(w *trace.GridWriter) { s.grid = w }

// SetAttribution attaches a flight recorder for this run (nil detaches),
// wiring the attached approximator's training hooks too. Call before
// running the workload; the experiment harness wires one per run when
// attr.Enabled(). Attribution is observational only: it never alters
// simulation behaviour or Result.
func (s *Sim) SetAttribution(rec *attr.Recorder) {
	s.at = rec
	if s.approx != nil {
		s.approx.SetAttribution(rec)
	}
}

// SetPhaseProfile attaches a phase profiler for this run (nil detaches),
// wiring the attached approximator's training hook too. Call before
// running the workload; the experiment harness wires one per run when
// phase.Enabled(). Profiling is observational only: it never alters
// simulation behaviour or Result.
func (s *Sim) SetPhaseProfile(p *phase.Profiler) {
	s.ph = p
	if s.approx != nil {
		s.approx.SetPhaseProfile(p)
	}
}

// SetThread implements Memory. It panics if t is outside [0,255], the
// range the trace encoding's uint8 thread field can represent: thread ids
// come from fixed workload topology, so an illegal one is a programming
// error.
func (s *Sim) SetThread(t int) {
	if t < 0 || t > 255 {
		panic(fmt.Sprintf("memsim: thread id %d out of range [0,255]", t))
	}
	s.thread = uint8(t)
}

// Tick implements Memory.
func (s *Sim) Tick(n uint64) { s.insts += n }

// record appends one access to the capture trace. Callers check s.rec for
// nil first so non-capturing runs (all of phase 1's figures) pay a single
// inlined nil test instead of a function call per access.
func (s *Sim) record(pc, addr uint64, v value.Value, op trace.Op, approx bool) {
	gap := s.insts - s.lastEnd[s.thread]
	if gap > 1<<30 {
		gap = 1 << 30
	}
	// The access instruction itself is not part of the next gap.
	s.lastEnd[s.thread] = s.insts + 1
	s.rec.Append(trace.Access{
		PC: pc, Addr: addr, Value: v, Gap: uint32(gap),
		Thread: s.thread, Op: op, Approx: approx,
	})
}

// load is the common load path; returns the (possibly clobbered) value.
func (s *Sim) load(pc, addr uint64, precise value.Value, approx bool) value.Value {
	if s.rec != nil {
		s.record(pc, addr, precise, trace.Load, approx)
	} else if s.grid != nil {
		s.grid.Access(pc, addr, precise, trace.Load, approx, s.thread, s.insts)
	}
	s.insts++
	if s.approx != nil {
		s.approx.OnLoad() // advance value-delay countdowns on every load
	}
	if approx {
		if !s.lastPCValid || pc != s.lastApproxPC {
			s.approxPC.add(pc)
			s.lastApproxPC, s.lastPCValid = pc, true
		}
		if at := s.at; at != nil {
			at.Load(pc, s.insts)
		}
		if ph := s.ph; ph != nil {
			ph.Load(pc, addr, s.insts)
		}
	}

	// Probe/Touch instead of l1.Load: both inline, so the hit path — the
	// overwhelmingly common case — runs without a single cache-package
	// call frame. Demand counters live here and are merged into the cache
	// stats by Result.
	s.loads++
	if idx := s.l1.Probe(addr); idx >= 0 {
		s.l1.Touch(idx)
		return precise
	}
	s.loadMiss++
	if m := s.om; m != nil {
		m.misses.Inc()
	}

	if approx && s.approx != nil {
		d := s.approx.OnMiss(pc, precise)
		if at := s.at; at != nil {
			at.Miss(pc, d.Approximated, d.Fetch)
		}
		if ph := s.ph; ph != nil {
			ph.Miss(d.Approximated)
		}
		if d.Fetch {
			s.fetches++
			s.l1.FillAbsent(addr, false)
			if m := s.om; m != nil {
				m.fetches.Inc()
			}
		}
		if d.Approximated {
			s.covered++
			if m := s.om; m != nil {
				m.approx.Inc()
			}
			if s.cfg.Attach == AttachLVP {
				// An idealized correct prediction equals the precise
				// value; incorrect predictions roll back and re-execute,
				// so the consumed value is always precise.
				return precise
			}
			return d.Value
		}
		return precise
	}

	// Precise miss path: demand fetch, plus prefetches if attached.
	// Annotated loads still attribute here (uncovered by construction)
	// so precise/prefetch scopes carry comparable per-site miss counts.
	if approx {
		if at := s.at; at != nil {
			at.Miss(pc, false, true)
		}
		if ph := s.ph; ph != nil {
			ph.Miss(false)
		}
	}
	before := s.fetches
	s.fetches++
	s.l1.FillAbsent(addr, false)
	if s.pref != nil {
		for _, t := range s.pref.OnMiss(pc, s.l1.BlockAddr(addr)) {
			if !s.l1.Contains(t) {
				s.fetches++
				s.l1.FillAbsent(t, true)
			}
		}
	}
	if m := s.om; m != nil {
		// Demand fetch plus whatever the prefetcher pulled in, derived from
		// the running total so the loop above stays metric-free.
		m.fetches.Add(s.fetches - before)
	}
	return precise
}

// LoadFloat implements Memory.
func (s *Sim) LoadFloat(pc, addr uint64, precise float64, approx bool) float64 {
	return s.load(pc, addr, value.FromFloat(precise), approx).Float()
}

// LoadInt implements Memory.
func (s *Sim) LoadInt(pc, addr uint64, precise int64, approx bool) int64 {
	return s.load(pc, addr, value.FromInt(precise), approx).Int()
}

// Store implements Memory. Stores are never approximated; misses
// write-allocate.
func (s *Sim) Store(pc, addr uint64) {
	if s.rec != nil {
		s.record(pc, addr, value.Value{}, trace.Store, false)
	} else if s.grid != nil {
		s.grid.Access(pc, addr, value.Value{}, trace.Store, false, s.thread, s.insts)
	}
	s.insts++
	s.stores++
	if idx := s.l1.Probe(addr); idx >= 0 {
		s.l1.TouchStore(idx)
		return
	}
	s.storMiss++
	s.fetches++
	s.l1.FillAbsent(addr, false)
	s.l1.MarkDirty(addr)
	if m := s.om; m != nil {
		m.fetches.Inc()
	}
}

// Result finalizes (drains pending trainings) and returns the metrics.
func (s *Sim) Result() Result {
	if s.approx != nil {
		s.approx.Drain()
	}
	// The hot path bypasses cache.Load/Store (see load), so the demand
	// counters live on the Sim; fold them into the cache's fill/eviction
	// stats to present the usual combined view.
	cs := s.l1.Stats()
	cs.Loads += s.loads
	cs.Stores += s.stores
	cs.LoadMiss += s.loadMiss
	cs.StoreMiss += s.storMiss
	r := Result{
		Instructions: s.insts,
		Loads:        cs.Loads,
		Stores:       cs.Stores,
		LoadMisses:   cs.LoadMiss,
		Covered:      s.covered,
		Fetches:      s.fetches,
		StaticPCs:    s.approxPC.len(),
		Cache:        cs,
	}
	if s.approx != nil {
		r.Approx = s.approx.Stats()
	}
	if s.pref != nil {
		r.Prefetch = s.pref.Stats()
	}
	return r
}
