// Command lvadesign runs a custom design-space exploration over the
// approximator parameters (the paper's phase-1 methodology, §V-A) and
// emits one CSV row per (benchmark, configuration) point.
//
//	lvadesign -bench canneal,x264 -degrees 0,4,16 -windows 0.05,0.1
//	lvadesign -ghbs 0,1,2,4 -o sweep.csv
//
// Lists are comma-separated; omitted dimensions stay at the Table II
// baseline. The cartesian product runs deterministically (seed flag).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lva/internal/experiments"
)

func main() {
	var (
		bench    = flag.String("bench", "", "comma-separated benchmarks (default: all)")
		ghbs     = flag.String("ghbs", "", "GHB sizes, e.g. 0,1,2,4")
		windows  = flag.String("windows", "", "confidence windows, e.g. 0.05,0.1,-1")
		degrees  = flag.String("degrees", "", "approximation degrees, e.g. 0,4,16")
		delays   = flag.String("delays", "", "value delays, e.g. 4,8")
		losses   = flag.String("mantissa", "", "FP mantissa losses in bits, e.g. 0,11,23")
		lhbs     = flag.String("lhbs", "", "LHB depths, e.g. 2,4,8")
		intConf  = flag.Bool("intconf", false, "apply confidence to integer data")
		propConf = flag.Bool("propconf", false, "proportional confidence updates")
		seed     = flag.Uint64("seed", experiments.DefaultSeed, "workload input seed")
		out      = flag.String("o", "", "output CSV file (default stdout)")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	spec := experiments.SweepSpec{
		Benchmarks:    splitStr(*bench),
		IntConfidence: *intConf,
		Proportional:  *propConf,
		Seed:          *seed,
	}
	var err error
	if spec.GHBs, err = splitInts(*ghbs); err != nil {
		fail(err)
	}
	if spec.Windows, err = splitFloats(*windows); err != nil {
		fail(err)
	}
	if spec.Degrees, err = splitInts(*degrees); err != nil {
		fail(err)
	}
	if spec.Delays, err = splitInts(*delays); err != nil {
		fail(err)
	}
	if spec.MantissaLosses, err = splitInts(*losses); err != nil {
		fail(err)
	}
	if spec.LHBs, err = splitInts(*lhbs); err != nil {
		fail(err)
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		dst = f
	}

	progress := func(done, total int) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "\rlvadesign: %d/%d points", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	points, err := experiments.RunSweep(spec, progress)
	if err != nil {
		fail(err)
	}
	if !*quiet {
		s := experiments.RunCacheCounters()
		fmt.Fprintf(os.Stderr, "lvadesign: %d point(s); %d kernel simulation(s), %d run-cache hit(s)\n",
			len(points), s.Simulated, s.Hits)
	}

	w := csv.NewWriter(dst)
	if err := w.Write(experiments.CSVHeader()); err != nil {
		fail(err)
	}
	for _, p := range points {
		if err := w.Write(p.CSVRow()); err != nil {
			fail(err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lvadesign:", err)
	os.Exit(1)
}

func splitStr(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitStr(s) {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitStr(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
