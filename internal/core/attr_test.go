package core

import (
	"testing"

	"lva/internal/obs/attr"
	"lva/internal/value"
)

// TestAttributionTrainCounts drives the approximator with a recorder
// attached and checks that training commits land on the issuing PC with
// accept/reject attribution matching the approximator's own stats.
func TestAttributionTrainCounts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ValueDelay = 0 // commit trainings immediately
	a := New(cfg)
	rec := attr.NewRecorder("core-test")
	a.SetAttribution(rec)

	const pc = uint64(0x420)
	for i := 0; i < 200; i++ {
		a.OnMiss(pc, value.FromFloat(100+float64(i%3)))
	}
	a.Drain()

	stats := a.Stats()
	s := rec.Finalize()
	if len(s.Sites) != 1 {
		t.Fatalf("sites = %d, want 1", len(s.Sites))
	}
	st := s.Sites[0]
	if st.PC != "0x420" {
		t.Fatalf("site PC = %s, want 0x420", st.PC)
	}
	if st.Trainings != stats.Trainings {
		t.Fatalf("attributed trainings = %d, approximator counted %d", st.Trainings, stats.Trainings)
	}
	if st.Accepts != stats.ConfAccepts || st.Rejects != stats.ConfRejects {
		t.Fatalf("attributed accepts/rejects = %d/%d, stats say %d/%d",
			st.Accepts, st.Rejects, stats.ConfAccepts, stats.ConfRejects)
	}
	if st.Accepts+st.Rejects > 0 && st.MeanRelErr <= 0 {
		t.Fatal("judged trainings recorded but mean relative error is zero")
	}
}

// TestAttributionDelayedTraining checks PC attribution survives the pending
// ring: trainings enqueued under a value delay commit against the PC that
// issued the miss, not whatever load ticked the countdown.
func TestAttributionDelayedTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ValueDelay = 4
	a := New(cfg)
	rec := attr.NewRecorder("core-delay")
	a.SetAttribution(rec)

	pcs := []uint64{0x500, 0x504, 0x508}
	for i := 0; i < 120; i++ {
		a.OnMiss(pcs[i%len(pcs)], value.FromFloat(float64(i)))
		a.OnLoad()
		a.OnLoad()
	}
	a.Drain()

	s := rec.Finalize()
	if len(s.Sites) != len(pcs) {
		t.Fatalf("sites = %d, want %d", len(s.Sites), len(pcs))
	}
	var total uint64
	for _, st := range s.Sites {
		if st.Trainings == 0 {
			t.Fatalf("site %s got no trainings", st.PC)
		}
		total += st.Trainings
	}
	if total != a.Stats().Trainings {
		t.Fatalf("attributed trainings sum = %d, approximator counted %d", total, a.Stats().Trainings)
	}
}

// TestAttributionNilRecorderUnchanged pins the seam contract: runs with and
// without a recorder produce identical approximator stats.
func TestAttributionNilRecorderUnchanged(t *testing.T) {
	run := func(wire bool) Stats {
		a := New(DefaultConfig())
		if wire {
			a.SetAttribution(attr.NewRecorder("seam"))
		}
		for i := 0; i < 500; i++ {
			a.OnMiss(uint64(0x400+i%7*4), value.FromFloat(float64(i%11)))
			a.OnLoad()
		}
		a.Drain()
		return a.Stats()
	}
	if run(false) != run(true) {
		t.Fatal("attaching a recorder changed approximator behaviour")
	}
}
