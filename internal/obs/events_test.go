package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestEmitDelivery checks subscribe → emit → cancel semantics.
func TestEmitDelivery(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	cancel := OnEvent(func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	})
	Emit(Event{Kind: EventFigureDone, Name: "fig1", Done: 1, Total: 18})
	cancel()
	Emit(Event{Kind: EventFigureDone, Name: "fig2", Done: 2, Total: 18})

	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Name != "fig1" {
		t.Fatalf("got %+v, want exactly the fig1 event", got)
	}
}

// TestEmitNoSubscribersCheap checks the no-listener fast path does not
// allocate — Emit sits on per-design-point paths of the engine.
func TestEmitNoSubscribersCheap(t *testing.T) {
	e := Event{Kind: EventSweepPoint, Name: "s", Done: 1, Total: 2}
	allocs := testing.AllocsPerRun(1000, func() { Emit(e) })
	if allocs != 0 {
		t.Fatalf("Emit with no subscribers allocates %.1f per op, want 0", allocs)
	}
}

// TestProgressPrinter checks figure lines always print and sweep points
// are throttled to every 8th plus the last.
func TestProgressPrinter(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressPrinter(&buf)
	p(Event{Kind: EventFigureDone, Name: "fig4", Done: 3, Total: 18})
	for i := 1; i <= 10; i++ {
		p(Event{Kind: EventSweepPoint, Name: "degree", Done: i, Total: 10})
	}
	out := buf.String()
	if !strings.Contains(out, "figure fig4 done (3/18)") {
		t.Errorf("missing figure line:\n%s", out)
	}
	if !strings.Contains(out, "sweep degree 8/10") || !strings.Contains(out, "sweep degree 10/10") {
		t.Errorf("missing throttled sweep lines:\n%s", out)
	}
	if n := strings.Count(out, "sweep degree"); n != 2 {
		t.Errorf("sweep printed %d times, want 2 (8th point and final):\n%s", n, out)
	}
}
