// Package prov is the run provenance ledger: a structured record of how
// every design-point evaluation was produced. PR 7's record-once replay
// means a figure cell can come from five places — a run-cache hit, a
// stream-footer read, a grid replay pass, the in-process replay memo, or
// a full kernel execution — and the ledger is the audit trail that says
// which, why, and from which on-disk artifact.
//
// The package follows the obs/attr seam contract exactly: a single
// atomic pointer is the on/off switch, every method is nil-receiver
// safe, and the disabled path is one pointer load with no allocation,
// no clock read and no string work (callers gate all of that on
// Active() != nil). The hot annotated-load path never reaches this
// package at all — emission happens once per design-point evaluation in
// the experiment engine, never per access.
//
// Records are deterministic by construction: route, justification,
// fingerprint and artifact identity are functions of the design grid,
// not of the schedule, so the rendered manifest (see manifest.go) is
// byte-stable across parallelism levels. Scheduling-dependent detail —
// wall time, queue wait, bytes decoded, whether a replay point was
// served from the memo — is kept in volatile aggregates that never
// enter the manifest.
package prov

import (
	"sync"
	"sync/atomic"
)

// Route is how a design-point evaluation obtained its result.
type Route string

const (
	// RouteCache marks run-cache memo service. Which caller of a
	// fingerprint wins the singleflight is scheduling-dependent, so this
	// route appears only on the aggregated per-fingerprint call lines of
	// the manifest, never on per-evaluation records.
	RouteCache Route = "cache"
	// RouteFooter marks counters read straight from a recorded stream's
	// footer; no simulation at all.
	RouteFooter Route = "footer"
	// RouteReplay marks a point simulated (or streamed, phase 2) from a
	// recorded annotated stream; no kernel arithmetic.
	RouteReplay Route = "replay"
	// RouteExec marks a full kernel execution.
	RouteExec Route = "exec"
)

// Counter names which trace-store counter an evaluation incremented, and
// is the join key of the manifest's reconciliation invariant: summed per
// name, record counts must equal the pinned trace-store counters.
const (
	// CounterNone marks evaluations outside the trace-store accounting
	// (output-error rows, phase-2 points, sweep points off the replay
	// path).
	CounterNone = ""
	// CounterRecording ↔ TraceStats.Recordings.
	CounterRecording = "recording"
	// CounterFooter ↔ TraceStats.HeaderHits.
	CounterFooter = "footer"
	// CounterReplayed ↔ TraceStats.ReplayPoints + ReplayHits (the split
	// between fresh replay and memo service is scheduling-dependent; the
	// sum is not).
	CounterReplayed = "replayed"
	// CounterExec ↔ TraceStats.ExecPoints.
	CounterExec = "exec"
)

// Record is the deterministic provenance of one design-point evaluation:
// the leaf of its span tree. Every field must be a function of the
// design grid alone — anything scheduling-dependent belongs in Cost.
type Record struct {
	// Figure is the owning experiment id ("fig4", "table1"), or a
	// pseudo-figure for work no single figure owns deterministically:
	// "tracestore" for stream recordings, "fullsys" for the memoized
	// phase-2 sweeps, "sweep" for RunSweep points.
	Figure string
	// Label names the cell within the figure ("lva-d4/canneal").
	Label string
	// Scheduler is the engine path that routed the evaluation: "ctr"
	// (counter scheduler), "run" (direct Run* task), "sweep", "fullsys",
	// or "store" (a stream recording).
	Scheduler string
	// Route is how the result was produced.
	Route Route
	// Counter names the trace-store counter this evaluation incremented
	// (see the Counter* constants); CounterNone when it touched none.
	Counter string
	// Fingerprint is a short hash of the canonical design-point key —
	// the same identity the run cache deduplicates on.
	Fingerprint string
	// Justification says why the route is exact for this point
	// ("FeedbackFree=true", "LVA attachment on feedback kernel", ...).
	Justification string
	// Artifact identifies the consumed (or produced) LVAG recording:
	// file basename, a prefix of the file's SHA-256, and its size.
	// Empty for routes that touch no recording.
	Artifact       string
	ArtifactSHA256 string
	ArtifactBytes  int64
	// Stages is the span path of the evaluation through the engine
	// (schedule → routing layer → serving leaf → append).
	Stages []string
}

// Cost is the scheduling-dependent side of one evaluation: span wall
// time, gate queue wait, decode volume, and (for replay routes) whether
// the point was served fresh or from the in-process memo. Costs are
// aggregated per record and exported only through volatile surfaces.
type Cost struct {
	WallUS       int64
	QueueUS      int64
	BytesDecoded int64
	// Served is "fresh", "memo", or "" when the distinction does not
	// apply.
	Served string
}

// CostStats is a snapshot of the ledger's volatile decode/stream
// accounting, fed by memsim.Replay and fullsys.RunStream.
type CostStats struct {
	// DecodePasses counts grid decode passes driven through
	// memsim.Replay while the ledger was active.
	DecodePasses uint64
	// DecodedChunks / DecodedAccesses count what those passes decoded.
	DecodedChunks   uint64
	DecodedAccesses uint64
	// DecodedBytes counts framed chunk bytes consumed (reported by the
	// engine from the grid reader; includes chunk framing).
	DecodedBytes uint64
	// ReplaySims counts per-point simulators driven by the passes (one
	// pass fans each access out to every pending design point).
	ReplaySims uint64
	// StreamedChunks / StreamedAccesses count phase-2 full-system
	// streaming volume (fullsys.RunStream).
	StreamedChunks   uint64
	StreamedAccesses uint64
}

// recEntry aggregates every evaluation that produced the same
// deterministic Record.
type recEntry struct {
	rec     Record
	count   uint64
	wallUS  int64
	queueUS int64
	bytes   int64
	memo    uint64
	fresh   uint64
}

// callEntry aggregates run-cache lookups per design-point fingerprint.
type callEntry struct {
	label string
	calls uint64
	hits  uint64
}

// Ledger accumulates provenance for one enablement session. All methods
// are safe for concurrent use and nil-receiver safe.
type Ledger struct {
	code string

	mu    sync.Mutex
	recs  map[string]*recEntry
	calls map[string]*callEntry

	decodePasses    atomic.Uint64
	decodedChunks   atomic.Uint64
	decodedAccesses atomic.Uint64
	decodedBytes    atomic.Uint64
	replaySims      atomic.Uint64
	streamedChunks  atomic.Uint64
	streamedAccs    atomic.Uint64
}

// New returns a fresh ledger stamped with the producing code version
// (see the experiments GoldenCodeVersion constant).
func New(code string) *Ledger {
	return &Ledger{
		code:  code,
		recs:  make(map[string]*recEntry),
		calls: make(map[string]*callEntry),
	}
}

// active is the seam: nil means off, and every emission site is a single
// atomic load away from knowing that.
var active atomic.Pointer[Ledger]

// Enable installs a fresh ledger stamped with code, replacing any
// previous session. Enable before the first run so every evaluation of
// the process is covered.
func Enable(code string) { active.Store(New(code)) }

// Disable ends the session and returns the final ledger (nil when none
// was active). Subsequent evaluations emit nothing.
func Disable() *Ledger { return active.Swap(nil) }

// Enabled reports whether a ledger is active.
func Enabled() bool { return active.Load() != nil }

// Active returns the active ledger, or nil when provenance is off.
// Callers must gate all record construction on the nil check.
func Active() *Ledger { return active.Load() }

// CodeVersion returns the code stamp the ledger was enabled with.
func (l *Ledger) CodeVersion() string {
	if l == nil {
		return ""
	}
	return l.code
}

// Emit adds one design-point evaluation. Evaluations with identical
// deterministic records aggregate into one entry with a count; costs
// accumulate on the side.
func (l *Ledger) Emit(r Record, c Cost) {
	if l == nil {
		return
	}
	k := r.Figure + "\x00" + r.Label + "\x00" + r.Fingerprint + "\x00" + string(r.Route)
	l.mu.Lock()
	e := l.recs[k]
	if e == nil {
		e = &recEntry{rec: r}
		l.recs[k] = e
	}
	e.count++
	e.wallUS += c.WallUS
	e.queueUS += c.QueueUS
	e.bytes += c.BytesDecoded
	switch c.Served {
	case "memo":
		e.memo++
	case "fresh":
		e.fresh++
	}
	l.mu.Unlock()
}

// Call accounts one run-cache lookup of the design point fingerprint.
// hit marks memo service; label names the point on first sight.
func (l *Ledger) Call(fingerprint, label string, hit bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	e := l.calls[fingerprint]
	if e == nil {
		e = &callEntry{label: label}
		l.calls[fingerprint] = e
	}
	e.calls++
	if hit {
		e.hits++
	}
	l.mu.Unlock()
}

// AddDecode accounts one grid decode pass: chunks and accesses decoded,
// fanned out to sims per-point simulators. Called by memsim.Replay.
func (l *Ledger) AddDecode(chunks, accesses, sims uint64) {
	if l == nil {
		return
	}
	l.decodePasses.Add(1)
	l.decodedChunks.Add(chunks)
	l.decodedAccesses.Add(accesses)
	l.replaySims.Add(sims)
}

// AddDecodedBytes accounts framed chunk bytes consumed by decode passes.
func (l *Ledger) AddDecodedBytes(n uint64) {
	if l == nil {
		return
	}
	l.decodedBytes.Add(n)
}

// AddStream accounts phase-2 streaming volume (fullsys.RunStream).
func (l *Ledger) AddStream(chunks, accesses uint64) {
	if l == nil {
		return
	}
	l.streamedChunks.Add(chunks)
	l.streamedAccs.Add(accesses)
}

// Costs snapshots the volatile decode/stream accounting.
func (l *Ledger) Costs() CostStats {
	if l == nil {
		return CostStats{}
	}
	return CostStats{
		DecodePasses:     l.decodePasses.Load(),
		DecodedChunks:    l.decodedChunks.Load(),
		DecodedAccesses:  l.decodedAccesses.Load(),
		DecodedBytes:     l.decodedBytes.Load(),
		ReplaySims:       l.replaySims.Load(),
		StreamedChunks:   l.streamedChunks.Load(),
		StreamedAccesses: l.streamedAccs.Load(),
	}
}
