// Package seedrand_bad exercises the seedrand analyzer's failure cases.
package seedrand_bad

import (
	"math/rand" // want:seedrand
	"time"
)

// Roll draws from the process-global, runtime-seeded generator: two runs of
// the same experiment would see different inputs.
func Roll() int {
	return rand.Intn(6)
}

// Seed derives seed material from the wall clock.
func Seed() uint64 {
	return uint64(time.Now().UnixNano()) // want:seedrand
}
