package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks findings cancelled by a //lint:ignore comment.
	Suppressed bool
	// SuppressReason is the justification given in the ignore comment.
	SuppressReason string
}

// String renders the finding in the canonical file:line: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the id used in reports and //lint:ignore comments.
	Name string
	// Doc is a one-line description for the driver's usage text.
	Doc string
	// Run inspects a package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one (package, analyzer) execution.
type Pass struct {
	Pkg      *Package
	Fset     *token.FileSet
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// isFixturePath reports whether the package is a lint test fixture; fixtures
// opt in to every analyzer regardless of its normal package scope.
func isFixturePath(path string) bool {
	return strings.Contains(path, "/lint/testdata/")
}

// isInternalPath reports whether the package sits under the module's
// internal/ tree.
func isInternalPath(path string) bool {
	return strings.Contains(path, "/internal/")
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		seedrandAnalyzer,
		cfgvalidateAnalyzer,
		nopanicAnalyzer,
		loopcaptureAnalyzer,
		detfloatAnalyzer,
		obshooksAnalyzer,
		hotpathAnalyzer,
	}
}

// AnalyzerByName returns the named analyzer or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	analyzer string // specific analyzer name or "all"
	reason   string
	used     bool
}

// suppressionKey addresses a suppression by file and line.
type suppressionKey struct {
	file string
	line int
}

// collectSuppressions parses //lint:ignore <analyzer> <reason> comments.
// A suppression cancels matching findings on its own line and on the line
// immediately below (so it can trail a statement or precede one). Malformed
// comments (missing reason) are reported as findings of the "lint" pseudo
// analyzer so they cannot silently disable checks.
func collectSuppressions(fset *token.FileSet, pkgs []*Package) (map[suppressionKey]*suppression, []Finding) {
	sups := make(map[suppressionKey]*suppression)
	var malformed []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					fields := strings.Fields(text)
					pos := fset.Position(c.Pos())
					if len(fields) < 2 {
						malformed = append(malformed, Finding{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed //lint:ignore: need an analyzer name and a reason",
						})
						continue
					}
					s := &suppression{analyzer: fields[0], reason: strings.Join(fields[1:], " ")}
					sups[suppressionKey{pos.Filename, pos.Line}] = s
				}
			}
		}
	}
	return sups, malformed
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppressions and returns all findings (suppressed ones included, marked)
// sorted by position.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Pkg: pkg, Fset: fset, analyzer: a, findings: &findings}
			a.Run(pass)
		}
	}
	sups, malformed := collectSuppressions(fset, pkgs)
	for i := range findings {
		f := &findings[i]
		for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
			s, ok := sups[suppressionKey{f.Pos.Filename, line}]
			if ok && (s.analyzer == "all" || s.analyzer == f.Analyzer) {
				f.Suppressed = true
				f.SuppressReason = s.reason
				s.used = true
				break
			}
		}
	}
	findings = append(findings, malformed...)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// Unsuppressed filters findings down to the ones that should fail the gate.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// enclosingFuncDecl returns the function declaration containing pos, if any.
func enclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
