package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lva/internal/obs/prov"
	"lva/internal/workloads"
)

// The run cache is the deduplicating layer every phase-1 simulation flows
// through: RunPrecise, RunLVA, RunLVP and RunPrefetch all memoize on a
// canonical fingerprint of (attach mode, workload and its parameters,
// approximator/prefetcher configuration, seed). The paper's evaluation grid
// shares many design points — the Table II baseline run of each benchmark
// is needed by Table I, Figures 1, 4, 5, 7, 9, 12 and three ablations — so
// regenerating everything in one process simulates each point exactly once.
//
// Semantics are singleflight: the first caller of a fingerprint simulates
// while concurrent callers of the same fingerprint block on its once-cell
// and then share the result. Because every kernel is a deterministic
// function of (workload, config, seed), a memoized result is byte-identical
// to a recomputation, and figures are unchanged by caching or concurrency.

// RunCacheStats is a snapshot of the process-wide run-cache counters.
type RunCacheStats struct {
	// Hits counts Run* calls satisfied from the memo store (simulations
	// avoided).
	Hits uint64
	// Simulated counts kernel simulations actually executed.
	Simulated uint64
	// PreciseHits is the subset of Hits on precise baseline runs. Precise
	// runs were memoized before the run cache existed, so dedup accounting
	// against the pre-cache code excludes them.
	PreciseHits uint64
}

// DedupFraction returns the fraction of end-to-end kernel simulations the
// run cache avoided relative to code that memoizes only precise baselines:
// approximate/prefetch hits over what such code would have simulated.
func (s RunCacheStats) DedupFraction() float64 {
	newHits := s.Hits - s.PreciseHits
	total := s.Simulated + newHits
	if total == 0 {
		return 0
	}
	return float64(newHits) / float64(total)
}

type runCell struct {
	once sync.Once
	r    RunResult
}

var (
	runCells    sync.Map // canonical fingerprint -> *runCell
	runCacheOff atomic.Bool
)

// runKey builds the canonical fingerprint of one simulation point. %#v on
// the workload spells out its concrete type and every calibration
// parameter (the structs are flat value types), so two instances describe
// the same simulation iff their keys are equal; cfg carries the attachment
// configuration the same way.
func runKey(attach string, w workloads.Workload, cfg string, seed uint64) string {
	return fmt.Sprintf("%s|%#v|%s|seed=%d", attach, w, cfg, seed)
}

// cachedRun returns the memoized result for key, simulating at most once
// per process. label names the point on the run timeline (executed
// simulations become spans on the kernel-simulation lanes; memo hits become
// instants). precise marks baseline runs for hit accounting. Counters live
// on the obs registry (one counter surface for lva.go, lvaexp -v and
// -metrics alike); the wall-time histogram is volatile and only wraps
// simulations that actually execute.
func cachedRun(key, label string, precise bool, sim func() RunResult) RunResult {
	m := eng()
	m.cacheLookups.Inc()
	timed := func() RunResult {
		tl := timeline.Load()
		start := time.Now()
		r := sim()
		m.runWall.Observe(time.Since(start).Seconds())
		if tl != nil {
			tl.span(tlPidSims, tl.nextSimTid(), "sim "+label, "sim", start,
				map[string]any{"cache": "miss"})
		}
		return r
	}
	if runCacheOff.Load() {
		m.cacheSims.Inc()
		if l := prov.Active(); l != nil {
			l.Call(provFP(key), label, false)
		}
		return timed()
	}
	c, _ := runCells.LoadOrStore(key, &runCell{})
	cell := c.(*runCell)
	hit := true
	cell.once.Do(func() {
		hit = false
		m.cacheSims.Inc()
		cell.r = timed()
	})
	if l := prov.Active(); l != nil {
		l.Call(provFP(key), label, hit)
	}
	if hit {
		m.cacheHits.Inc()
		if precise {
			m.preciseHits.Inc()
		}
		if tl := timeline.Load(); tl != nil {
			tl.instant(tlPidSims, 0, "hit "+label, "cache", nil)
		}
	}
	return cell.r
}

// RunCacheCounters returns a snapshot of the run-cache counters.
func RunCacheCounters() RunCacheStats {
	m := eng()
	return RunCacheStats{
		Hits:        m.cacheHits.Value(),
		Simulated:   m.cacheSims.Value(),
		PreciseHits: m.preciseHits.Value(),
	}
}

// SetRunCacheEnabled toggles memoization. Disabling routes every Run* call
// straight to the simulator (each call counts as Simulated), which lets
// tests A/B a cached run against a cache-bypassing one. The cache starts
// enabled.
func SetRunCacheEnabled(on bool) { runCacheOff.Store(!on) }

// ResetRunCache drops every memoized run — phase-1 results, grid-trace
// recordings, captured phase-2 traces and full-system replays — and zeroes
// the counters, restoring process-cold behaviour. (Recordings in an
// explicit SetTraceDir/LVA_TRACE_DIR store survive; the per-process temp
// store is deleted.) It is intended for tests and benchmarks and must not
// race with running experiments.
func ResetRunCache() {
	resetTraceStore()
	runCells.Range(func(k, _ any) bool {
		runCells.Delete(k)
		return true
	})
	traceCells.Range(func(k, _ any) bool {
		traceCells.Delete(k)
		return true
	})
	fsCells.Range(func(k, _ any) bool {
		fsCells.Delete(k)
		return true
	})
	m := eng()
	m.cacheHits.Reset()
	m.cacheSims.Reset()
	m.preciseHits.Reset()
	m.cacheLookups.Reset()
}
