package workloads

import (
	"testing"

	"lva/internal/memsim"
)

func smallX264() *X264 {
	x := NewX264()
	x.Width, x.Height, x.Frames = 96, 64, 3
	return x
}

func TestX264FinerQuantImprovesPSNRAndCostsBits(t *testing.T) {
	coarse := smallX264()
	coarse.Quant = 16
	fine := smallX264()
	fine.Quant = 4
	co, _ := runPrecise(coarse, 3)
	fo, _ := runPrecise(fine, 3)
	c, f := co.(X264Output), fo.(X264Output)
	if f.PSNR <= c.PSNR {
		t.Fatalf("finer quantization must raise PSNR: %v vs %v", f.PSNR, c.PSNR)
	}
	if f.Bits <= c.Bits {
		t.Fatalf("finer quantization must cost bits: %v vs %v", f.Bits, c.Bits)
	}
}

func TestX264MotionSearchHelps(t *testing.T) {
	// With a search range, the encoder finds the moving objects and the
	// residual (bit cost) drops versus zero-motion-only encoding.
	still := smallX264()
	still.SearchRange = 0 // degenerate: only the (0,0) candidate
	moving := smallX264()
	so, _ := runPrecise(still, 5)
	mo, _ := runPrecise(moving, 5)
	s, m := so.(X264Output), mo.(X264Output)
	if m.Bits >= s.Bits {
		t.Fatalf("motion search must reduce bit cost: %v vs %v", m.Bits, s.Bits)
	}
}

func TestX264ReasonablePSNRUnderLVA(t *testing.T) {
	// The paper's story for x264: pixels have a bounded range, averages
	// stay in range, so error is near zero even at full coverage.
	x := smallX264()
	precise, _ := runPrecise(x, 7)
	sim := memsim.New(memsim.DefaultConfig())
	approx := x.Run(sim, 7)
	e := approx.Error(precise)
	if e > 0.10 {
		t.Fatalf("x264 output error %.1f%% too high under LVA", e*100)
	}
	if sim.Result().Coverage() < 0.5 {
		t.Fatalf("x264 reference pixels should be highly covered: %.1f%%",
			sim.Result().Coverage()*100)
	}
}

func TestX264StaticSitesAreTheLargest(t *testing.T) {
	// Figure 12: x264 tops the static approximate-PC count (its unrolled
	// SAD, half-pel and intra loops each contribute distinct sites).
	x := smallX264()
	sim := memsim.New(memsim.DefaultConfig())
	x.Run(sim, 9)
	xPCs := sim.Result().StaticPCs
	bt := NewBodytrack()
	bt.Frames, bt.Particles = 2, 32
	sim2 := memsim.New(memsim.DefaultConfig())
	bt.Run(sim2, 9)
	if xPCs <= sim2.Result().StaticPCs {
		t.Fatalf("x264 static PCs (%d) must exceed bodytrack's (%d)",
			xPCs, sim2.Result().StaticPCs)
	}
}

func TestSynthPixelBounds(t *testing.T) {
	rng := NewRNG(1)
	for i := 0; i < 5000; i++ {
		v := synthPixel(rng, i%96, (i/96)%64, i%6)
		if v < 0 || v > 255 {
			t.Fatalf("pixel %d out of 8-bit range", v)
		}
	}
}

func TestAbsI64(t *testing.T) {
	if absI64(-9) != 9 || absI64(9) != 9 || absI64(0) != 0 {
		t.Fatal("absI64")
	}
}
