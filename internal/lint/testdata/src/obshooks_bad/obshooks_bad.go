// Package obshooks_bad exercises the obshooks analyzer's failure cases:
// wall-clock reads and ad-hoc global counters on a simulated hot path.
package obshooks_bad

import "time"

// hits is the kind of package-level counter that races under the
// cross-figure scheduler.
var hits uint64

// counts shows indexed globals are seen through the subscript.
var counts [4]uint64

// tracker shows field writes are seen through the selector.
var tracker struct{ total int }

// Access models a hot-path event handler that mutates globals directly.
func Access(i int) {
	hits++             // want:obshooks
	counts[i]++        // want:obshooks
	tracker.total += 1 // want:obshooks
}

// Stamp models a debugging leftover timing a simulated event.
func Stamp() time.Time {
	return time.Now() // want:obshooks
}
