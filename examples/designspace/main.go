// Designspace: the paper's phase-1 methodology as a library call. Sweep
// the two headline knobs — relaxed confidence window (performance-error)
// and approximation degree (energy-error) — over two contrasting
// benchmarks and print the frontier each knob traces.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"log"
	"os"

	"lva"
)

func main() {
	spec := lva.SweepSpec{
		Benchmarks: []string{"canneal", "blackscholes"},
		Windows:    []float64{0.05, 0.10, 0.20},
		Degrees:    []int{0, 4, 16},
	}
	fmt.Fprintf(os.Stderr, "sweeping %d design points...\n", spec.Points())

	points, err := lva.RunSweep(spec, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("benchmark     window degree |  normMPKI coverage normFetch   outErr")
	last := ""
	for _, p := range points {
		if p.Benchmark != last {
			if last != "" {
				fmt.Println()
			}
			last = p.Benchmark
		}
		fmt.Printf("%-13s %6.2f %6d | %9.3f %7.1f%% %9.3f %7.2f%%\n",
			p.Benchmark, p.Window, p.Degree,
			p.NormalizedMPKI, p.Coverage*100, p.NormFetches, p.OutputError*100)
	}

	fmt.Println(`
reading the frontier:
  - down a window column: wider windows admit more approximations
    (coverage up, normMPKI down) at higher output error;
  - down a degree column: higher degrees elide more fetches
    (normFetch down) at higher output error;
  - canneal (integer, no confidence) moves only with degree, while
    blackscholes (floating point) responds to both knobs.`)
}
