package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"lva/internal/memsim"
	"lva/internal/obs/prov"
	"lva/internal/workloads"
)

// TestProvOffIsFree pins the cost of the disabled provenance seam: with no
// active ledger, a full emission sequence — begin, point, stage — is one
// atomic load plus nil checks, and allocates nothing. This is the contract
// that lets every engine path call these helpers unconditionally.
func TestProvOffIsFree(t *testing.T) {
	if prov.Enabled() {
		t.Fatal("provenance unexpectedly enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		pc := provBegin(0)
		if pc.on() {
			t.Error("provCtx on with no ledger")
		}
		pc.point("fig4", "lva/canneal", "ctr", prov.RouteExec, prov.CounterNone,
			provWhyOutputRow, "key", nil, provStagesRunExec, "")
		pc.stage("exec fig4/lva/canneal", "", "", nil)
	})
	if allocs != 0 {
		t.Errorf("disabled provenance path allocates %.1f times per emission, want 0", allocs)
	}
}

// provManifest renders the active ledger against the live engine counters
// and parses it back.
func provManifest(t *testing.T) ([]byte, *prov.Manifest) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteProvManifest(&buf); err != nil {
		t.Fatalf("WriteProvManifest: %v", err)
	}
	m, err := prov.ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	return buf.Bytes(), m
}

// TestProvManifestPinnedAndStable runs the three counter figures cold with
// provenance on and checks the two core manifest contracts: the summary
// reconciles exactly against the pinned trace-store counters (14
// recordings / 35 footer points / 34 replayed / 15 executed — the same
// numbers TestStreamRecordOnce pins), and a second cold run at a different
// parallelism level renders byte-identical manifest bytes.
func TestProvManifestPinnedAndStable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three figures twice")
	}
	if raceEnabled {
		t.Skip("two cold three-figure runs exceed the race budget")
	}
	saved := Parallelism
	defer func() { Parallelism = saved }()

	run := func(par int) []byte {
		SetTraceDir(t.TempDir())
		defer SetTraceDir("")
		ResetRunCache()
		defer ResetRunCache()
		Parallelism = par
		EnableProvenance()
		defer DisableProvenance()
		if _, err := RunAll("table1", "fig4", "fig12"); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		b, m := provManifest(t)
		if problems := m.Validate(); len(problems) != 0 {
			t.Fatalf("P=%d manifest does not reconcile:\n%v", par, problems)
		}
		return b
	}

	a := run(1)
	m, err := prov.ReadManifest(bytes.NewReader(a))
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	c := m.Summary.Counters
	if c.Recordings != 14 || c.FooterPoints != 35 || c.ReplayedPoints != 34 || c.ExecPoints != 15 {
		t.Errorf("cold counters = %+v, want 14 recordings / 35 footer / 34 replayed / 15 exec", c)
	}
	if m.Summary.Routes.Footer != 35 || m.Summary.Routes.Replay != 34 {
		t.Errorf("route totals = %+v, want 35 footer / 34 replay", m.Summary.Routes)
	}
	for _, fr := range m.PerFigure() {
		if fr.Evaluations == 0 {
			t.Errorf("figure %q has zero evaluations", fr.Figure)
		}
	}

	b := run(8)
	if !bytes.Equal(a, b) {
		t.Error("manifest bytes differ between P=1 and P=8 cold runs — a scheduling-dependent field leaked into the manifest")
	}
}

// TestFigureGoldenHashesProvOn renders the full registry with provenance
// recording active and checks every figure against the committed golden
// hashes: observability must not perturb simulation output by a single
// byte. The manifest produced alongside must reconcile.
func TestFigureGoldenHashesProvOn(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full registry")
	}
	if raceEnabled {
		t.Skip("a second full-registry render exceeds the race budget")
	}
	ResetRunCache()
	defer ResetRunCache()
	EnableProvenance()
	defer DisableProvenance()

	got := figureHashes(t)
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden: reading %s: %v", goldenPath, err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("golden: parsing %s: %v", goldenPath, err)
	}
	for id, h := range got {
		if w, ok := want[id]; ok && h != w {
			t.Errorf("golden: figure %q with provenance on hashed %s, want %s — observability changed simulation output", id, h, w)
		}
	}
	_, m := provManifest(t)
	if problems := m.Validate(); len(problems) != 0 {
		t.Errorf("full-registry manifest does not reconcile:\n%v", problems)
	}
}

// TestTraceStoreCorruptFooterReRecords is the persistent-store resilience
// contract: a truncated LVAG file in LVA_TRACE_DIR (a crashed writer, a
// partial copy) must be silently re-recorded — correct results, a valid
// recording back on disk, and a provenance record saying why — never a
// panic or an error surfaced to the figure drivers.
func TestTraceStoreCorruptFooterReRecords(t *testing.T) {
	if raceEnabled {
		t.Skip("two kernel recordings exceed the race budget")
	}
	t.Setenv("LVA_TRACE_DIR", t.TempDir())
	ResetRunCache()
	defer ResetRunCache()
	w, err := workloads.ByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}

	st := ensureStream(streamPrecise, w, DefaultSeed)
	if st.path == "" {
		t.Fatal("initial recording failed")
	}
	want := st.res
	path := st.path

	// "Next process": in-memory cells reset, the LVA_TRACE_DIR store
	// survives — but its file was truncated to half.
	ResetRunCache()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	EnableProvenance()
	defer DisableProvenance()
	st2 := ensureStream(streamPrecise, w, DefaultSeed)
	if st2.res != want {
		t.Errorf("re-recorded result differs from original:\nwant %+v\ngot  %+v", want, st2.res)
	}
	if st2.path == "" {
		t.Fatal("re-recording did not restore the on-disk stream")
	}
	key, _, _, _ := streamSpec(streamPrecise, w, DefaultSeed)
	if _, _, err := readStreamHeader(st2.path, key); err != nil {
		t.Errorf("re-recorded stream footer unreadable: %v", err)
	}
	if ts := TraceCounters(); ts.Recordings != 1 {
		t.Errorf("Recordings = %d, want 1 (the re-recording)", ts.Recordings)
	}

	_, m := provManifest(t)
	if problems := m.Validate(); len(problems) != 0 {
		t.Errorf("manifest does not reconcile:\n%v", problems)
	}
	found := false
	for _, r := range m.Records {
		if r.Figure == "tracestore" && r.Why == provWhyReRecord {
			found = true
			if r.Counter != prov.CounterRecording {
				t.Errorf("re-record provenance counter = %q, want %q", r.Counter, prov.CounterRecording)
			}
		}
	}
	if !found {
		t.Error("no provenance record justifying the re-recording (want why=re-recorded)")
	}
}

// TestTraceStoreCorruptChunkFallsBackToExec covers the nastier corruption:
// chunk data is garbage but the footer still parses, so the store trusts
// the file and the failure only surfaces mid-decode. The replay path must
// fall back to kernel execution with the exact same result — a partial
// stream is never served — and the provenance record must say the replay
// failed.
func TestTraceStoreCorruptChunkFallsBackToExec(t *testing.T) {
	if raceEnabled {
		t.Skip("recording plus fallback execution exceed the race budget")
	}
	t.Setenv("LVA_TRACE_DIR", t.TempDir())
	ResetRunCache()
	defer ResetRunCache()
	w, err := workloads.ByName("blackscholes") // feedback-free: LVA replays
	if err != nil {
		t.Fatal(err)
	}

	st := ensureStream(streamPrecise, w, DefaultSeed)
	if st.path == "" {
		t.Fatal("recording failed")
	}
	// "Next process": the recording survives in LVA_TRACE_DIR, the
	// counters and cells reset.
	ResetRunCache()
	// Overwrite the first chunk header (right after the 8-byte file
	// prelude) with an absurd access count. The footer at the tail is
	// untouched, so readStreamHeader still succeeds and the store trusts
	// the recording.
	f, err := os.OpenFile(st.path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{0xff}, 8), 8); err != nil {
		t.Fatal(err)
	}
	f.Close()
	key, _, _, _ := streamSpec(streamPrecise, w, DefaultSeed)
	if _, _, err := readStreamHeader(st.path, key); err != nil {
		t.Fatalf("test setup: footer should still read after chunk corruption: %v", err)
	}

	cfg := BaselineFor(w)
	cfg.GHBSize = 2
	cfg.Degree = 4

	EnableProvenance()
	defer DisableProvenance()
	got := replayLVAPoint(w, cfg, DefaultSeed, 0)

	mc := memsim.DefaultConfig()
	mc.Attach = memsim.AttachLVA
	mc.Approx = cfg
	sim := memsim.New(mc)
	w.Run(sim, DefaultSeed)
	if want := sim.Result(); got != want {
		t.Errorf("fallback result differs from direct execution:\nwant %+v\ngot  %+v", want, got)
	}
	if ts := TraceCounters(); ts.ExecPoints != 1 || ts.ReplayPoints != 0 {
		t.Errorf("counters = %+v, want 1 exec point and 0 replay points", ts)
	}

	_, m := provManifest(t)
	if problems := m.Validate(); len(problems) != 0 {
		t.Errorf("manifest does not reconcile:\n%v", problems)
	}
	found := false
	for _, r := range m.Records {
		if r.Figure == "sweep" && r.Why == provWhyReplayFail && r.Route == string(prov.RouteExec) {
			found = true
		}
	}
	if !found {
		t.Error("no provenance record justifying the exec fallback (want why=replay failed)")
	}
}
