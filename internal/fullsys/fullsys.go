// Package fullsys is the phase-2 simulator (paper §V-B): a trace-driven,
// cycle-approximate model of a 4-core system — 4-wide cores with a
// 32-entry-ROB overlap model, private L1 data caches, a distributed shared
// L2 with an MSI directory, a 2x2 mesh NoC with 3-cycle routers, and
// 160-cycle main memory. It replays traces captured by the phase-1
// simulator, attaches a per-core load value approximator, and reports
// execution time, interconnect traffic and dynamic energy — the inputs to
// Figures 10 and 11.
//
// The paper uses FeS2 (full x86 OoO) + BookSim; this model keeps the
// properties those results depend on: load misses expose latency only once
// the ROB fills, covered approximate loads never stall the core, elided
// fetches remove L2/DRAM/NoC events, and shared-L2/NoC contention couples
// the cores.
package fullsys

import (
	"fmt"
	"io"

	"lva/internal/cache"
	"lva/internal/coherence"
	"lva/internal/core"
	"lva/internal/dram"
	"lva/internal/energy"
	"lva/internal/noc"
	"lva/internal/obs/prov"
	"lva/internal/trace"
)

// Config assembles a full-system simulation (defaults follow Table II).
type Config struct {
	// Cores is the core count (paper: 4, one per mesh node).
	Cores int
	// IssueWidth is instructions per cycle when not stalled (paper: 4).
	IssueWidth int
	// ROB is the reorder-buffer depth: how many instructions may issue
	// past the oldest outstanding load miss (paper: 32).
	ROB int
	// MSHRs bounds in-flight block fetches per core; a core that needs a
	// fetch while all MSHRs are busy stalls until one frees, which also
	// throttles off-critical-path training fetches.
	MSHRs int
	// L1 is the per-core private data cache (paper: 16 KB, 8-way, 64 B).
	L1 cache.Config
	// L2 is one bank of the distributed shared L2 (512 KB total across
	// Cores banks, 16-way, 6-cycle).
	L2 cache.Config
	// L2Occupancy is the bank busy time per access (bandwidth model).
	L2Occupancy uint64
	// DRAM is the main-memory device model (banked, row buffers),
	// calibrated so a row miss costs the paper's 160 cycles.
	DRAM dram.Config
	// NoC is the mesh configuration.
	NoC noc.Config
	// Approx, when non-nil, attaches a per-core load value approximator
	// with this configuration; nil replays precisely.
	Approx *core.Config
	// TrainingLane, when non-nil, routes training fetches (covered
	// approximate misses that still fetch to train) over a deprioritized,
	// low-power NoC lane and slower memory path — the §VI-C optimization
	// enabled by LVA's resilience to value delay. Demand fetches are
	// unaffected.
	TrainingLane *TrainingLaneConfig
	// Energy is the per-event energy model.
	Energy energy.Model
}

// TrainingLaneConfig parameterizes the low-power lane for training fetches.
type TrainingLaneConfig struct {
	// RouterCycles is the per-hop router latency of the slow lane
	// (higher than the main lane's 3 cycles).
	RouterCycles uint64
	// ExtraLatency adds a fixed delay per training fetch, modeling
	// low-energy memory modules for approximate data.
	ExtraLatency uint64
}

// DefaultTrainingLane returns a representative slow-lane configuration.
func DefaultTrainingLane() *TrainingLaneConfig {
	return &TrainingLaneConfig{RouterCycles: 9, ExtraLatency: 60}
}

// DefaultConfig returns the paper's Table II full-system configuration.
func DefaultConfig() Config {
	return Config{
		Cores:       4,
		IssueWidth:  4,
		ROB:         32,
		MSHRs:       8,
		L1:          cache.Config{SizeBytes: 16 << 10, Ways: 8, BlockBytes: 64, LatencyCycles: 1},
		L2:          cache.Config{SizeBytes: 128 << 10, Ways: 16, BlockBytes: 64, LatencyCycles: 6},
		L2Occupancy: 2,
		DRAM:        dram.DefaultConfig(),
		NoC:         noc.DefaultConfig(),
		Energy:      energy.Default32nm(),
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.Cores > c.NoC.Nodes() {
		return fmt.Errorf("fullsys: cores %d must be in [1,%d]", c.Cores, c.NoC.Nodes())
	}
	if c.IssueWidth <= 0 {
		return fmt.Errorf("fullsys: issue width must be positive, got %d", c.IssueWidth)
	}
	if c.ROB <= 0 {
		return fmt.Errorf("fullsys: ROB must be positive, got %d", c.ROB)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("fullsys: MSHRs must be positive, got %d", c.MSHRs)
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.DRAM.Validate(); err != nil {
		return err
	}
	return c.NoC.Validate()
}

// Result carries the phase-2 metrics.
type Result struct {
	Cycles       uint64 // makespan: slowest core's finish time
	Instructions uint64
	Loads        uint64
	Stores       uint64

	L1LoadMisses  uint64
	Covered       uint64 // misses satisfied by the approximator
	Fetches       uint64 // block fetches issued into the hierarchy
	ElidedFetches uint64 // fetches skipped via approximation degree
	L2Accesses    uint64
	L2Misses      uint64
	DRAMAccesses  uint64
	DRAMRowHits   uint64
	Writebacks    uint64

	FlitHops         uint64
	LowPowerFlitHops uint64
	Packets          uint64

	Invalidations uint64
	Flushes       uint64

	StallCycles      uint64 // cycles cores spent blocked on load misses
	StallEvents      uint64 // number of blocking waits
	PerCore          []CoreStat
	MissServiceTotal uint64 // summed service latency of demand fetches
	ServicedMisses   uint64

	Energy *energy.Tally
}

// CoreStat summarizes one core's execution.
type CoreStat struct {
	Instructions uint64
	Cycles       uint64
	Accesses     int
}

// IPC returns this core's instructions per cycle.
func (c CoreStat) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// IPC returns aggregate instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// AvgServiceLatency is the mean latency to service a demand fetch.
func (r Result) AvgServiceLatency() float64 {
	if r.ServicedMisses == 0 {
		return 0
	}
	return float64(r.MissServiceTotal) / float64(r.ServicedMisses)
}

// AvgExposedMissLatency is the mean stall time per L1 load miss: the miss
// latency the cores actually saw (covered misses expose none).
func (r Result) AvgExposedMissLatency() float64 {
	if r.L1LoadMisses == 0 {
		return 0
	}
	return float64(r.StallCycles) / float64(r.L1LoadMisses)
}

// MissEDP returns the paper's Figure 11 metric: the energy spent servicing
// L1 misses (the fetch path beyond the L1) times the average exposed miss
// latency. Compare it normalized against precise execution.
func (r Result) MissEDP() float64 {
	return r.Energy.FetchPathPJ() * r.AvgExposedMissLatency()
}

type pendingMiss struct {
	completeAt uint64 // cycles
	atInst     uint64
}

type coreState struct {
	id      int
	accs    []trace.Access
	pos     int
	seen    int    // accesses consumed (accs may be a compacted window)
	cycleQ  uint64 // quarter-cycles (4-wide issue)
	insts   uint64
	pending []pendingMiss
	mshr    []uint64 // completion times of in-flight fetches
	approx  *core.Approximator
}

func (c *coreState) cycles() uint64 { return c.cycleQ / 4 }

// Sim is the full-system simulator. Build with New, feed a trace with Run.
type Sim struct {
	cfg   Config
	mesh  *noc.Mesh
	slow  *noc.Mesh // low-power training lane (nil unless configured)
	dir   *coherence.Directory
	l1    []*cache.Cache
	l2    []*cache.Cache
	l2Fre []uint64
	dram  *dram.DRAM
	tally *energy.Tally
	res   Result
}

// New builds a simulator; it panics on an invalid Config since
// configurations are fixed experiment parameters.
func New(cfg Config) *Sim {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	s := &Sim{
		cfg:   cfg,
		mesh:  noc.New(cfg.NoC),
		dir:   coherence.NewDirectory(cfg.Cores),
		l2Fre: make([]uint64, cfg.Cores),
		dram:  dram.New(cfg.DRAM),
		tally: energy.NewTally(cfg.Energy),
	}
	if cfg.TrainingLane != nil {
		laneCfg := cfg.NoC
		laneCfg.RouterCycles = cfg.TrainingLane.RouterCycles
		s.slow = noc.New(laneCfg)
	}
	for i := 0; i < cfg.Cores; i++ {
		s.l1 = append(s.l1, cache.New(cfg.L1))
		s.l2 = append(s.l2, cache.New(cfg.L2))
	}
	return s
}

// homeOf maps a block address to its L2 home bank / mesh node.
func (s *Sim) homeOf(block uint64) int {
	return int((block >> 6) % uint64(s.cfg.Cores))
}

// newCores builds the per-core replay state.
func (s *Sim) newCores() []*coreState {
	cores := make([]*coreState, s.cfg.Cores)
	for i := range cores {
		cores[i] = &coreState{id: i}
		if s.cfg.Approx != nil {
			cores[i].approx = core.New(*s.cfg.Approx)
		}
	}
	return cores
}

// Run replays the trace and returns the metrics. Each trace thread maps to
// one core. Run may be called once per Sim.
func (s *Sim) Run(tr *trace.Trace) Result {
	cores := s.newCores()
	// Count each core's share first so the per-core queues are allocated
	// exactly once instead of growing through repeated copies of
	// multi-million-access traces.
	counts := make([]int, s.cfg.Cores)
	for i := range tr.Accesses {
		counts[int(tr.Accesses[i].Thread)%s.cfg.Cores]++
	}
	for i, c := range cores {
		c.accs = make([]trace.Access, 0, counts[i])
	}
	for _, a := range tr.Accesses {
		c := cores[int(a.Thread)%s.cfg.Cores]
		c.accs = append(c.accs, a)
	}

	// Advance cores one access at a time, always the core whose next
	// access will issue earliest (its current time plus the compute gap
	// before the access). Shared-resource reservations (links, L2 banks,
	// DRAM) then occur in near-global time order, which the monotonic
	// busy-until contention model requires; residual leapfrogging from
	// ROB/MSHR stalls is bounded by one miss latency.
	for {
		var next *coreState
		var nextKey uint64
		for _, c := range cores {
			if c.pos >= len(c.accs) {
				continue
			}
			key := c.cycleQ + uint64(c.accs[c.pos].Gap)
			if next == nil || key < nextKey {
				next, nextKey = c, key
			}
		}
		if next == nil {
			break
		}
		s.step(next)
	}

	return s.finish(cores)
}

// RunStream replays a grid stream chunk by chunk, never materializing the
// whole trace: each core keeps a bounded queue of not-yet-simulated
// accesses, refilled from the source whenever an active core runs dry, and
// consumed prefixes are compacted away before each refill. threads is the
// stream's thread count (GridHeader.Threads); thread t maps to core
// t mod Cores, and only cores with at least one mapped thread participate
// in refill demand. The pick order — always the core whose next access
// issues earliest — is identical to Run's, because before every pick each
// participating core either has its true next access queued or the stream
// is exhausted. Memory stays bounded by chunk size times thread skew for
// interleaved streams; a stream whose threads run in disjoint phases
// degrades gracefully to buffering (correctness is unaffected).
// RunStream may be called once per Sim.
func (s *Sim) RunStream(threads int, src trace.ChunkSource) (Result, error) {
	cores := s.newCores()
	active := make([]bool, s.cfg.Cores)
	for t := 0; t < threads; t++ {
		active[t%s.cfg.Cores] = true
	}
	needRefill := func() bool {
		for i, c := range cores {
			if active[i] && c.pos >= len(c.accs) {
				return true
			}
		}
		return false
	}
	eof := false
	var chunks, accesses uint64
	refill := func() error {
		if eof || !needRefill() {
			return nil
		}
		// About to grow queues: drop consumed prefixes first so memory is
		// bounded by the unconsumed windows, not the whole stream.
		for _, c := range cores {
			if c.pos > 0 {
				c.accs = c.accs[:copy(c.accs, c.accs[c.pos:])]
				c.pos = 0
			}
		}
		for !eof && needRefill() {
			accs, _, err := src.Next()
			if err == io.EOF {
				eof = true
				return nil
			}
			if err != nil {
				return err
			}
			chunks++
			accesses += uint64(len(accs))
			for _, a := range accs {
				c := cores[int(a.Thread)%s.cfg.Cores]
				c.accs = append(c.accs, a)
			}
		}
		return nil
	}

	for {
		if err := refill(); err != nil {
			return Result{}, err
		}
		var next *coreState
		var nextKey uint64
		for _, c := range cores {
			if c.pos >= len(c.accs) {
				continue
			}
			key := c.cycleQ + uint64(c.accs[c.pos].Gap)
			if next == nil || key < nextKey {
				next, nextKey = c, key
			}
		}
		if next == nil {
			break
		}
		s.step(next)
	}

	// One provenance cost sample per streamed run, only when a ledger is
	// active.
	if l := prov.Active(); l != nil {
		l.AddStream(chunks, accesses)
	}
	return s.finish(cores), nil
}

// finish drains outstanding misses and assembles the Result.
func (s *Sim) finish(cores []*coreState) Result {
	for _, c := range cores {
		// Wait out any outstanding misses at the end of the stream.
		for _, p := range c.pending {
			if p.completeAt*4 > c.cycleQ {
				s.res.StallCycles += p.completeAt - c.cycleQ/4
				c.cycleQ = p.completeAt * 4
			}
		}
		if c.approx != nil {
			c.approx.Drain()
			st := c.approx.Stats()
			s.res.ElidedFetches += st.ElidedFetches
		}
		if c.cycles() > s.res.Cycles {
			s.res.Cycles = c.cycles()
		}
		s.res.Instructions += c.insts
		s.res.PerCore = append(s.res.PerCore, CoreStat{
			Instructions: c.insts,
			Cycles:       c.cycles(),
			Accesses:     c.seen,
		})
	}

	nst := s.mesh.Stats()
	s.res.FlitHops = nst.FlitHops
	s.res.Packets = nst.Packets
	if s.slow != nil {
		sst := s.slow.Stats()
		s.res.LowPowerFlitHops = sst.FlitHops
		s.res.Packets += sst.Packets
		s.tally.LowPowerFlitHops = sst.FlitHops
	}
	s.res.Invalidations = s.dir.Invalidations
	s.res.Flushes = s.dir.Flushes
	s.tally.FlitHops = nst.FlitHops
	for _, l2 := range s.l2 {
		st := l2.Stats()
		s.res.L2Misses += st.Misses()
	}
	s.res.DRAMRowHits = s.dram.Stats().RowHits
	s.res.Energy = s.tally
	return s.res
}

// retire pops misses that completed by now and stalls on the oldest one if
// the ROB would overflow.
func (s *Sim) retire(c *coreState, instsAboutToBe uint64) {
	for len(c.pending) > 0 && c.pending[0].completeAt*4 <= c.cycleQ {
		c.pending = c.pending[1:]
	}
	for len(c.pending) > 0 && instsAboutToBe-c.pending[0].atInst >= uint64(s.cfg.ROB) {
		p := c.pending[0]
		c.pending = c.pending[1:]
		if p.completeAt*4 > c.cycleQ {
			s.res.StallCycles += p.completeAt - c.cycleQ/4
			s.res.StallEvents++
			c.cycleQ = p.completeAt * 4
		}
	}
}

func (s *Sim) step(c *coreState) {
	a := c.accs[c.pos]
	c.pos++
	c.seen++

	// Non-memory instructions since the previous access on this thread.
	gap := uint64(a.Gap)
	c.insts += gap
	c.cycleQ += gap // one quarter-cycle each at 4-wide
	s.retire(c, c.insts+1)

	// The access instruction itself.
	c.insts++
	c.cycleQ++
	now := c.cycles()

	block := s.l1[c.id].BlockAddr(a.Addr)
	s.tally.L1Accesses++

	if a.Op == trace.Store {
		s.res.Stores++
		if s.l1[c.id].Store(a.Addr) {
			// Hit: may still need ownership.
			if s.dir.StateOf(block) != coherence.Modified {
				s.storeUpgrade(c.id, block, now)
			}
			return
		}
		// Store miss: write-allocate through the store buffer; the core
		// does not stall beyond MSHR availability.
		s.issueFetch(c, block, true, false)
		s.l1[c.id].MarkDirty(a.Addr)
		return
	}

	s.res.Loads++
	if c.approx != nil {
		c.approx.OnLoad()
	}
	if s.l1[c.id].Load(a.Addr) {
		return
	}
	s.res.L1LoadMisses++

	if a.Approx && c.approx != nil {
		s.tally.ApproxAccesses++
		d := c.approx.OnMiss(a.PC, a.Value)
		if d.Fetch {
			s.tally.ApproxAccesses++ // training write
		}
		if d.Approximated {
			s.res.Covered++
			if d.Fetch {
				// Training fetch: off the critical path; the core
				// continues with the approximate value, so the fetch may
				// take the slow low-power lane if one is configured.
				s.issueFetch(c, block, false, true)
			}
			return
		}
		// Not covered: behaves like a precise miss below.
		if d.Fetch {
			done := s.issueFetch(c, block, false, false)
			c.pending = append(c.pending, pendingMiss{completeAt: done, atInst: c.insts})
		}
		return
	}

	done := s.issueFetch(c, block, false, false)
	c.pending = append(c.pending, pendingMiss{completeAt: done, atInst: c.insts})
}

// issueFetch sends a block fetch through an MSHR: when all MSHRs hold
// in-flight fetches the core stalls until the earliest completes. This is
// the back-pressure that keeps non-blocking (training and store-buffer)
// fetches from queueing unboundedly in the hierarchy.
func (s *Sim) issueFetch(c *coreState, block uint64, store, training bool) uint64 {
	now := c.cycles()
	live := c.mshr[:0]
	for _, t := range c.mshr {
		if t > now {
			live = append(live, t)
		}
	}
	c.mshr = live
	if len(c.mshr) >= s.cfg.MSHRs {
		min, idx := c.mshr[0], 0
		for i, t := range c.mshr {
			if t < min {
				min, idx = t, i
			}
		}
		s.res.StallCycles += min - now
		s.res.StallEvents++
		c.cycleQ = min * 4
		now = min
		c.mshr = append(c.mshr[:idx], c.mshr[idx+1:]...)
	}
	done := s.fetchBlock(c.id, block, now, store, training)
	c.mshr = append(c.mshr, done)
	return done
}

// storeUpgrade obtains Modified permission for a block already present in
// the requester's L1 (invalidations travel the NoC; the store buffer hides
// the latency from the core).
func (s *Sim) storeUpgrade(node int, block uint64, now uint64) {
	home := s.homeOf(block)
	t := s.mesh.SendCtrl(node, home, now)
	act := s.dir.Store(block, node)
	t = s.coherenceActions(act, home, block, t)
	s.mesh.SendCtrl(home, node, t) // ack
}

// coherenceActions performs owner flushes and sharer invalidations implied
// by a directory action, returning the time all acks have reached home.
func (s *Sim) coherenceActions(act coherence.Action, home int, block uint64, t uint64) uint64 {
	latest := t
	if act.FlushFrom >= 0 {
		ft := s.mesh.SendCtrl(home, act.FlushFrom, t)
		ft += uint64(s.cfg.L1.LatencyCycles)
		s.tally.L1Accesses++
		ft = s.mesh.SendData(act.FlushFrom, home, ft)
		if ft > latest {
			latest = ft
		}
	}
	for _, n := range act.Invalidate {
		it := s.mesh.SendCtrl(home, n, t)
		s.l1[n].Invalidate(block)
		s.tally.L1Accesses++
		it = s.mesh.SendCtrl(n, home, it)
		if it > latest {
			latest = it
		}
	}
	return latest
}

// fetchBlock services a demand or training fetch of a block into node's L1
// and returns its completion time. Training fetches use the low-power lane
// when one is configured.
func (s *Sim) fetchBlock(node int, block uint64, now uint64, store, training bool) uint64 {
	s.res.Fetches++
	home := s.homeOf(block)
	mesh := s.mesh
	if training && s.slow != nil {
		mesh = s.slow
	}

	// Request to the home L2 bank.
	t := mesh.SendCtrl(node, home, now)
	if free := s.l2Fre[home]; free > t {
		t = free
	}
	s.l2Fre[home] = t + s.cfg.L2Occupancy
	t += uint64(s.cfg.L2.LatencyCycles)
	s.tally.L2Accesses++
	s.res.L2Accesses++

	hit := s.l2[home].Load(block)
	if !hit {
		// DRAM access and L2 refill.
		t = s.dram.Access(block, t)
		s.tally.DRAMAccesses++
		s.res.DRAMAccesses++
		if evicted, _, dirtyEvict := s.l2[home].Fill(block, false); dirtyEvict {
			// L2 victim writeback to memory (fire-and-forget; it still
			// occupies the device).
			s.dram.Access(evicted, t)
			s.tally.DRAMAccesses++
			s.res.DRAMAccesses++
		}
	}

	// Coherence at the home node.
	var act coherence.Action
	if store {
		act = s.dir.Store(block, node)
	} else {
		act = s.dir.Load(block, node)
	}
	t = s.coherenceActions(act, home, block, t)

	// Data response to the requester.
	t = mesh.SendData(home, node, t)
	if training && s.cfg.TrainingLane != nil {
		t += s.cfg.TrainingLane.ExtraLatency
	}

	// Install in L1, handling the victim.
	if evicted, was, dirty := s.l1[node].Fill(block, false); was {
		evBlock := s.l1[node].BlockAddr(evicted)
		s.dir.Evict(evBlock, node)
		if dirty {
			// Dirty victims write back to their home bank
			// (fire-and-forget traffic + L2 update).
			s.res.Writebacks++
			evHome := s.homeOf(evBlock)
			s.mesh.SendData(node, evHome, t)
			s.tally.L2Accesses++
			s.res.L2Accesses++
			if !s.l2[evHome].Store(evBlock) {
				s.l2[evHome].Fill(evBlock, false)
			}
			s.l2[evHome].MarkDirty(evBlock)
		}
	}
	if store {
		s.l1[node].MarkDirty(block)
	}

	s.res.MissServiceTotal += t - now
	s.res.ServicedMisses++
	return t
}
