package experiments

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"
)

// The run timeline makes the scheduler visible: when capture is on, the
// engine emits Chrome trace-event JSON (load it at ui.perfetto.dev or
// chrome://tracing) with one track per gate slot showing which figure/row
// task each worker ran and how long it queued, one track per figure driver,
// and one lane of executed kernel simulations with run-cache hits marked as
// instants. Capture is off by default: the pointer below is nil and every
// emission site is a single atomic load.

// Trace-event process ids: Perfetto groups tracks by pid, so the three
// views land in three named groups.
const (
	tlPidWorkers = 1 // gate slots (tid = slot id)
	tlPidFigures = 2 // figure drivers (tid = position in the requested id set)
	tlPidSims    = 3 // executed simulations + run-cache hit instants
	tlPidProv    = 4 // provenance spans: serving stages, flow-linked to recordings
	tlPidPhase   = 5 // phase observatory: one lane per profiled run, phase segments as spans
)

// traceEvent is one Chrome trace-event object. Times are microseconds
// relative to capture start.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"` // flow events only
	BP   string         `json:"bp,omitempty"` // flow binding point ("e" on finishes)
	Args map[string]any `json:"args,omitempty"`
}

// Timeline accumulates trace events for one capture session.
type Timeline struct {
	start time.Time

	mu        sync.Mutex
	events    []traceEvent
	simTids   int // virtual tid allocator for the executed-simulation lane
	provTids  int // virtual tid allocator for the provenance lane
	phaseTids int // virtual tid allocator for the phase-observatory lane
}

// timeline is the active capture (nil = off). Emission sites load it once
// and skip all timing work when no capture is running.
var timeline atomic.Pointer[Timeline]

// StartTimeline begins a new capture session, replacing any previous one.
// Call it before RunAll/RunSweep; TimelineJSON retrieves the result.
func StartTimeline() {
	t := &Timeline{start: time.Now(), events: make([]traceEvent, 0, 4096)}
	t.events = append(t.events,
		metaEvent(tlPidWorkers, "process_name", "gate workers"),
		metaEvent(tlPidFigures, "process_name", "figure drivers"),
		metaEvent(tlPidSims, "process_name", "kernel simulations"),
		metaEvent(tlPidProv, "process_name", "provenance"),
		metaEvent(tlPidPhase, "process_name", "phase observatory"),
	)
	timeline.Store(t)
}

// StopTimeline ends the capture session (subsequent runs emit nothing) and
// returns the captured timeline, or nil when none was running.
func StopTimeline() *Timeline {
	return timeline.Swap(nil)
}

// TimelineActive reports whether a capture session is running.
func TimelineActive() bool { return timeline.Load() != nil }

// TimelineJSON renders the active capture session as a Chrome trace-event
// JSON document ({"traceEvents": [...]}). It may be called while the
// session is still active; the events captured so far are returned.
func TimelineJSON() ([]byte, error) {
	t := timeline.Load()
	if t == nil {
		return nil, errNoTimeline
	}
	return t.JSON()
}

var errNoTimeline = jsonError("experiments: no timeline capture running (call StartTimeline first)")

type jsonError string

func (e jsonError) Error() string { return string(e) }

func metaEvent(pid int, name, value string) traceEvent {
	return traceEvent{Name: name, Ph: "M", PID: pid, Args: map[string]any{"name": value}}
}

// now returns microseconds since capture start.
func (t *Timeline) now() int64 { return time.Since(t.start).Microseconds() }

// span records a complete ("X") event from start to now.
func (t *Timeline) span(pid, tid int, name, cat string, start time.Time, args map[string]any) {
	ts := start.Sub(t.start).Microseconds()
	dur := time.Since(start).Microseconds()
	if dur < 1 {
		dur = 1 // Perfetto drops zero-width spans
	}
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur,
		PID: pid, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// spanAt records a complete ("X") event with an explicit offset and
// duration (both in microseconds since capture start). The phase lanes use
// it to scale epoch-indexed segments onto a run's wall-clock extent, where
// span's now()-anchored arithmetic does not apply.
func (t *Timeline) spanAt(pid, tid int, name, cat string, ts, dur int64, args map[string]any) {
	if dur < 1 {
		dur = 1 // Perfetto drops zero-width spans
	}
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur,
		PID: pid, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// instantAt records an instant ("i") event at an explicit offset.
func (t *Timeline) instantAt(pid, tid int, name, cat string, ts int64, args map[string]any) {
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "i", TS: ts,
		PID: pid, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// instant records an instant ("i") event at now.
func (t *Timeline) instant(pid, tid int, name, cat string, args map[string]any) {
	t.mu.Lock()
	t.events = append(t.events, traceEvent{
		Name: name, Cat: cat, Ph: "i", TS: t.now(),
		PID: pid, TID: tid, Args: args,
	})
	t.mu.Unlock()
}

// nextSimTid hands out lanes for concurrently executing simulations.
func (t *Timeline) nextSimTid() int {
	t.mu.Lock()
	t.simTids++
	tid := t.simTids
	t.mu.Unlock()
	return tid
}

// nextProvTid hands out lanes on the provenance pid.
func (t *Timeline) nextProvTid() int {
	t.mu.Lock()
	t.provTids++
	tid := t.provTids
	t.mu.Unlock()
	return tid
}

// nextPhaseTid hands out lanes on the phase-observatory pid.
func (t *Timeline) nextPhaseTid() int {
	t.mu.Lock()
	t.phaseTids++
	tid := t.phaseTids
	t.mu.Unlock()
	return tid
}

// flow records one end of a flow arrow bound to the span that starts at
// start on (pid, tid): ph "s" opens the arrow at a recording span, ph
// "f" with binding point "e" lands it on a consuming span. Both ends
// share name/cat ("stream"/"prov") and the id derived from the stream
// key, which is how the trace-event format pairs them.
func (t *Timeline) flow(ph string, id uint64, pid, tid int, start time.Time) {
	ev := traceEvent{
		Name: "stream", Cat: "prov", Ph: ph,
		TS:  start.Sub(t.start).Microseconds() + 1, // inside the ≥1µs span
		PID: pid, TID: tid, ID: id,
	}
	if ph == "f" {
		ev.BP = "e"
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// JSON renders the timeline in the Chrome trace-event container format.
func (t *Timeline) JSON() ([]byte, error) {
	t.mu.Lock()
	evs := make([]traceEvent, len(t.events))
	copy(evs, t.events)
	t.mu.Unlock()
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: evs, DisplayTimeUnit: "ms"}
	b, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
