package experiments

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"time"

	"lva/internal/memsim"
	"lva/internal/obs/phase"
	"lva/internal/trace"
	"lva/internal/workloads"
)

// Phase observatory wiring: when phase profiling is enabled, every
// simulated run (fresh execution, counter replay, or stream recording)
// carries a phase.Profiler that fingerprints its annotated-load stream per
// epoch, and a second sim-free path profiles recorded .lvag streams with
// one decode pass. Both publish into the phase registry; finalized
// profiles additionally land on the Perfetto timeline as one lane of
// phase-segment spans per run when a capture session is active.

// phaseProfiler builds the phase profiler for one simulation when phase
// profiling is enabled. The scope mirrors attrRecorder's fingerprint —
// workload name, attachment, short config+seed hash — so each design
// point publishes under a stable, distinct scope. Unlike attribution,
// precise (AttachNone) runs ARE profiled: the phase structure of the
// unapproximated annotated-load stream is exactly what interval sampling
// needs to be judged against.
func phaseProfiler(w workloads.Workload, cfg memsim.Config, seed uint64) *phase.Profiler {
	if !phase.Enabled() {
		return nil
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v|%#v|seed=%d", w, cfg, seed)))
	scope := fmt.Sprintf("%s/%s/%s", w.Name(), cfg.Attach, hex.EncodeToString(sum[:4]))
	return phase.NewProfiler(scope)
}

// publishPhaseProfile finalizes p into the phase registry and, when a
// timeline capture is running, renders its epoch-indexed phase timeline
// as contiguous spans scaled linearly onto the run's wall-clock extent
// (start..now), with an instant at each phase transition.
func publishPhaseProfile(p *phase.Profiler, start time.Time) {
	if p == nil {
		return
	}
	prof := p.Finalize()
	phase.PublishProfile(prof)
	t := timeline.Load()
	n := len(prof.Timeline)
	if t == nil || n == 0 {
		return
	}
	tid := t.nextPhaseTid()
	ts := start.Sub(t.start).Microseconds()
	total := time.Since(start).Microseconds()
	if total < int64(n) {
		total = int64(n) // keep every epoch's span ≥1µs wide
	}
	segStart := 0
	for i := 1; i <= n; i++ {
		if i < n && prof.Timeline[i] == prof.Timeline[segStart] {
			continue
		}
		from := ts + total*int64(segStart)/int64(n)
		to := ts + total*int64(i)/int64(n)
		id := prof.Timeline[segStart]
		t.spanAt(tlPidPhase, tid, fmt.Sprintf("phase %d", id), "phase", from, to-from,
			map[string]any{"scope": prof.Scope, "epochs": i - segStart, "first_epoch": segStart})
		if i < n {
			t.instantAt(tlPidPhase, tid, "transition", "phase", to,
				map[string]any{"scope": prof.Scope, "from": id, "to": prof.Timeline[i]})
		}
		segStart = i
	}
}

// streamScope names the offline profile of a recorded stream: workload
// name, the literal "stream" attachment slot, and a short hash of the
// recording's run-cache key.
func streamScope(hdr trace.GridHeader) string {
	sum := sha256.Sum256([]byte(hdr.Key))
	return fmt.Sprintf("%s/stream/%s", hdr.Name, hex.EncodeToString(sum[:4]))
}

// ProfileGridStream phase-profiles a recorded .lvag grid stream in one
// decode pass, with no simulation: every annotated load's (pc, addr,
// instruction index) feeds the epoch fingerprints directly. The profile
// clusters on access-vector shape alone (no miss/error scalars exist
// without a sim), is published into the phase registry, and is returned
// along with the stream's header.
func ProfileGridStream(path string) (phase.ScopeProfile, trace.GridHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return phase.ScopeProfile{}, trace.GridHeader{}, err
	}
	defer f.Close()
	hdr, err := trace.ReadGridFooter(f)
	if err != nil {
		return phase.ScopeProfile{}, trace.GridHeader{}, fmt.Errorf("experiments: %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return phase.ScopeProfile{}, hdr, err
	}
	gr, err := trace.NewGridReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return phase.ScopeProfile{}, hdr, err
	}
	p := phase.NewStreamProfiler(streamScope(hdr))
	err = trace.Walk(gr, func(a *trace.Access, insts uint64) error {
		if a.Op == trace.Load && a.Approx {
			p.Load(a.PC, a.Addr, insts)
		}
		return nil
	})
	if err != nil {
		return phase.ScopeProfile{}, hdr, err
	}
	prof := p.Finalize()
	phase.PublishProfile(prof)
	return prof, hdr, nil
}
