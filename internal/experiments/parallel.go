package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"lva/internal/core"
	"lva/internal/obs/prov"
	"lva/internal/workloads"
)

// Parallelism bounds how many kernel simulations execute concurrently in
// the whole process: every figure row, every RunAll driver and every
// RunSweep job admits its points through one shared gate. Each simulation
// is independent (its own simulator and approximator state) and every
// design point is a deterministic function of (workload, config, seed), so
// results are identical regardless of this setting. Defaults to the
// machine's parallelism.
var Parallelism = runtime.GOMAXPROCS(0)

// simGate is the process-wide admission gate. It re-reads Parallelism on
// every admit, so tests may change the bound between experiments; a lower
// bound takes effect as in-flight simulations drain. busy tracks which
// slot ids are occupied so the timeline can render one stable track per
// concurrent worker.
var simGate = struct {
	mu     sync.Mutex
	cond   *sync.Cond
	active int
	busy   []bool
}{}

func init() { simGate.cond = sync.NewCond(&simGate.mu) }

// admit blocks until a simulation slot is free and claims it, recording
// the wait on the (volatile) queue-wait histogram and publishing the new
// occupancy on the in-flight gauge. It returns the claimed slot id (lowest
// free, so concurrent work packs onto low-numbered timeline tracks) and
// how long the caller queued.
func admit() (slot int, wait time.Duration) {
	m := eng()
	start := time.Now()
	simGate.mu.Lock()
	for simGate.active >= max(1, Parallelism) {
		simGate.cond.Wait()
	}
	simGate.active++
	for slot < len(simGate.busy) && simGate.busy[slot] {
		slot++
	}
	if slot == len(simGate.busy) {
		simGate.busy = append(simGate.busy, false)
	}
	simGate.busy[slot] = true
	m.inflight.Set(int64(simGate.active))
	simGate.mu.Unlock()
	wait = time.Since(start)
	m.queueWait.Observe(wait.Seconds())
	return slot, wait
}

// release returns the slot claimed by admit.
func release(slot int) {
	m := eng()
	simGate.mu.Lock()
	simGate.active--
	simGate.busy[slot] = false
	m.inflight.Set(int64(simGate.active))
	simGate.cond.Signal()
	simGate.mu.Unlock()
}

// gated runs fn while holding a gate slot. When a timeline capture is
// active it also records a worker span named label on the slot's track,
// with the queue wait attached.
func gated(label string, fn func()) {
	gatedQ(label, func(time.Duration) { fn() })
}

// gatedQ is gated for callers that want the queue wait (provenance
// attaches it to the evaluation's cost record).
func gatedQ(label string, fn func(queued time.Duration)) {
	slot, wait := admit()
	defer release(slot)
	tl := timeline.Load()
	if tl == nil {
		fn(wait)
		return
	}
	start := time.Now()
	fn(wait)
	tl.span(tlPidWorkers, slot, label, "task", start,
		map[string]any{"queue_wait_us": wait.Microseconds()})
}

// task is one labelled simulation point of a batch.
type task struct {
	label string
	fn    func(queued time.Duration)
}

// batch collects the simulation points of one experiment — any number of
// rows — and runs them all concurrently through the shared gate, so points
// from different rows (and, under RunAll, different figures) are in flight
// at once. fig names the owning experiment on the timeline. Tasks execute
// while holding a gate slot and must not run nested batches or
// forEachWorkload calls, which would wait for slots they themselves occupy.
type batch struct {
	fig   string
	tasks []task
	// ctrs are counter-only design points awaiting routing; run converts
	// them into header/replay/exec tasks (see ctrsched.go).
	ctrs []ctrReq
}

// newBatch starts a batch for the named experiment.
func newBatch(fig string) batch { return batch{fig: fig} }

// add schedules one labelled task for the next run call.
func (b *batch) add(label string, fn func()) {
	b.addQ(label, func(time.Duration) { fn() })
}

// addQ is add for tasks that consume their gate queue wait.
func (b *batch) addQ(label string, fn func(queued time.Duration)) {
	b.tasks = append(b.tasks, task{label: label, fn: fn})
}

// run executes every collected task gate-bounded and returns when all have
// finished, leaving the batch empty for reuse. Counter requests are routed
// into tasks first, so header/replay groups fan out alongside exec points.
func (b *batch) run() {
	b.scheduleCtrs()
	var wg sync.WaitGroup
	for _, t := range b.tasks {
		wg.Add(1)
		go func(t task) {
			defer wg.Done()
			gatedQ(b.fig+"/"+t.label, t.fn)
		}(t)
	}
	wg.Wait()
	b.tasks = nil
}

// runTask wraps a direct Run* task: the point executes through the run
// cache (route exec, "run" scheduler), and when provenance is on the
// evaluation is recorded under the canonical key that keyFn builds (keys
// are built lazily so the disabled path does no fmt work).
func (b *batch) runTask(label string, keyFn func() string, run func()) {
	fig := b.fig
	b.addQ(label, func(queued time.Duration) {
		pc := provBegin(queued)
		run()
		if pc.on() {
			pc.point(fig, label, "run", prov.RouteExec, prov.CounterNone,
				provWhyOutputRow, keyFn(), nil, provStagesRunExec, "")
			pc.stage("exec "+fig+"/"+label, "", "", map[string]any{"route": "exec"})
		}
	})
}

// one schedules a single simulation point; the returned pointer is filled
// when run returns.
func (b *batch) one(label string, sim func() RunResult) *RunResult {
	out := new(RunResult)
	fig := b.fig
	b.runTask(label, func() string { return "one|" + fig + "/" + label }, func() { *out = sim() })
	return out
}

// lva schedules one LVA point per benchmark under cfgFor(w); the returned
// slice (registry order) is filled when run returns. label names the row
// on the timeline.
func (b *batch) lva(label string, cfgFor func(w workloads.Workload) core.Config) []RunResult {
	out := make([]RunResult, len(workloads.Names()))
	for i, w := range workloads.All() {
		i, w := i, w
		cfg := cfgFor(w)
		b.runTask(label+"/"+w.Name(),
			func() string { return runKey("lva", w, fmt.Sprintf("%#v", cfg), DefaultSeed) },
			func() { out[i] = RunLVA(w, cfg, DefaultSeed) })
	}
	return out
}

// lvp is lva for the idealized LVP baseline.
func (b *batch) lvp(label string, cfgFor func(w workloads.Workload) core.Config) []RunResult {
	out := make([]RunResult, len(workloads.Names()))
	for i, w := range workloads.All() {
		i, w := i, w
		cfg := cfgFor(w)
		b.runTask(label+"/"+w.Name(),
			func() string { return runKey("lvp", w, fmt.Sprintf("%#v", cfg), DefaultSeed) },
			func() { out[i] = RunLVP(w, cfg, DefaultSeed) })
	}
	return out
}

// prefetch schedules one GHB-prefetcher point per benchmark at a degree.
func (b *batch) prefetch(label string, degree int) []RunResult {
	out := make([]RunResult, len(workloads.Names()))
	for i, w := range workloads.All() {
		i, w := i, w
		b.runTask(label+"/"+w.Name(),
			func() string { return prefetchKey(w, degree, DefaultSeed) },
			func() { out[i] = RunPrefetch(w, degree, DefaultSeed) })
	}
	return out
}

// precise schedules the precise baseline of every benchmark.
func (b *batch) precise() []RunResult {
	out := make([]RunResult, len(workloads.Names()))
	for i, w := range workloads.All() {
		i, w := i, w
		b.runTask("precise/"+w.Name(),
			func() string { return runKey("precise", w, "", DefaultSeed) },
			func() { out[i] = RunPrecise(w, DefaultSeed) })
	}
	return out
}

// forEachWorkload runs fn once per benchmark through the shared gate,
// passing the benchmark's index in workloads.All() order; label names the
// work on the timeline's worker tracks. It returns when all have finished.
// The full-system drivers use it directly; phase-1 drivers batch their
// rows instead so whole figures fan out at once.
func forEachWorkload(label string, fn func(i int, w workloads.Workload)) {
	var wg sync.WaitGroup
	for i, w := range workloads.All() {
		wg.Add(1)
		go func(i int, w workloads.Workload) {
			defer wg.Done()
			gated(label+"/"+w.Name(), func() { fn(i, w) })
		}(i, w)
	}
	wg.Wait()
}
