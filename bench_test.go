// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI). Each BenchmarkTableN/BenchmarkFigN runs the corresponding
// experiment driver — the same code behind `lvaexp <id>` — and reports the
// headline number of that artifact as a custom metric so `go test -bench`
// output doubles as a results summary. Run with -v to print the full
// rows/series the paper plots.
//
//	go test -bench=. -benchmem
//
// Micro-benchmarks for the core structures (approximator, cache, NoC,
// prefetcher) follow at the bottom.
package lva_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"lva"
	"lva/internal/experiments"
	"lva/internal/memsim"
	"lva/internal/stats"
	"lva/internal/trace"
	"lva/internal/workloads"
)

// runFigure drives one experiment per iteration; the figure's table is
// printed once under -v so the bench regenerates the paper's rows.
func runFigure(b *testing.B, id string) *experiments.Figure {
	b.Helper()
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		f, ok := lva.RunExperiment(id)
		if !ok {
			b.Fatalf("unknown experiment %q", id)
		}
		fig = f
	}
	if testing.Verbose() {
		fmt.Println(fig.String())
	}
	return fig
}

// rowMean returns the mean of a series, failing the bench if it is absent.
func rowMean(b *testing.B, f *experiments.Figure, label string) float64 {
	b.Helper()
	r, ok := f.Row(label)
	if !ok {
		b.Fatalf("%s: missing series %q", f.ID, label)
	}
	return r.Mean()
}

// BenchmarkTable1 measures the warm-store process-cold path of the
// record-once trace pipeline: every iteration drops the in-memory caches
// (ResetRunCache) but keeps the on-disk grid recordings, so regenerating
// Table 1 costs 14 footer reads and zero simulation — the cost a fresh
// process pointed at LVA_TRACE_DIR pays.
func BenchmarkTable1(b *testing.B) {
	// Deferred last→first: drop this bench's private state, then leave the
	// shared caches warm for the benchmarks that follow — exactly the state
	// a plain Table 1 regeneration leaves behind.
	defer lva.RunExperiment("table1")
	experiments.SetTraceDir(b.TempDir())
	defer experiments.SetTraceDir("")
	lva.ResetRunCache()
	defer lva.ResetRunCache()
	if _, ok := lva.RunExperiment("table1"); !ok { // record the 14 streams
		b.Fatal("unknown experiment table1")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var fig *experiments.Figure
	for i := 0; i < b.N; i++ {
		lva.ResetRunCache()
		f, _ := lva.RunExperiment("table1")
		fig = f
	}
	b.StopTimer()
	if testing.Verbose() {
		fmt.Println(fig.String())
	}
	b.ReportMetric(rowMean(b, fig, "precise L1 MPKI"), "meanMPKI")
	b.ReportMetric(rowMean(b, fig, "inst count variation %"), "meanInstVar%")
}

func BenchmarkFig1(b *testing.B) {
	f := runFigure(b, "fig1")
	b.ReportMetric(rowMean(b, f, "output error")*100, "bodytrackErr%")
}

func BenchmarkFig4(b *testing.B) {
	f := runFigure(b, "fig4")
	b.ReportMetric(rowMean(b, f, "LVA-GHB-0"), "lvaGHB0normMPKI")
	b.ReportMetric(rowMean(b, f, "LVP-GHB-0"), "lvpGHB0normMPKI")
}

func BenchmarkFig5(b *testing.B) {
	f := runFigure(b, "fig5")
	b.ReportMetric(rowMean(b, f, "GHB-0")*100, "meanErr%GHB0")
}

func BenchmarkFig6(b *testing.B) {
	f := runFigure(b, "fig6")
	b.ReportMetric(rowMean(b, f, "MPKI 10%"), "normMPKI@10%")
	b.ReportMetric(rowMean(b, f, "error infinite")*100, "err%@inf")
}

func BenchmarkFig7(b *testing.B) {
	f := runFigure(b, "fig7")
	b.ReportMetric(rowMean(b, f, "MPKI delay-4"), "normMPKI@d4")
	b.ReportMetric(rowMean(b, f, "MPKI delay-32"), "normMPKI@d32")
}

func BenchmarkFig8(b *testing.B) {
	f := runFigure(b, "fig8")
	b.ReportMetric(rowMean(b, f, "fetches prefetch-16"), "prefetch16fetches")
	b.ReportMetric(rowMean(b, f, "fetches approx-16"), "approx16fetches")
}

func BenchmarkFig9(b *testing.B) {
	f := runFigure(b, "fig9")
	b.ReportMetric(rowMean(b, f, "approx-0")*100, "err%@deg0")
	b.ReportMetric(rowMean(b, f, "approx-16")*100, "err%@deg16")
}

func BenchmarkFig10(b *testing.B) {
	f := runFigure(b, "fig10")
	b.ReportMetric(rowMean(b, f, "speedup approx-0")*100, "speedup%@deg0")
	b.ReportMetric(rowMean(b, f, "energy savings approx-16")*100, "energySave%@deg16")
}

func BenchmarkFig11(b *testing.B) {
	f := runFigure(b, "fig11")
	b.ReportMetric(rowMean(b, f, "approx-0"), "normEDP@deg0")
	b.ReportMetric(rowMean(b, f, "approx-16"), "normEDP@deg16")
}

func BenchmarkFig12(b *testing.B) {
	f := runFigure(b, "fig12")
	row, _ := f.Row("static approx load PCs")
	b.ReportMetric(stats.Max(row.Values), "maxStaticPCs")
}

func BenchmarkFig13(b *testing.B) {
	f := runFigure(b, "fig13")
	b.ReportMetric(rowMean(b, f, "loss-0 bits"), "normMPKI@loss0")
	b.ReportMetric(rowMean(b, f, "loss-23 bits"), "normMPKI@loss23")
}

// ---------------------------------------------------------------------------
// End-to-end benchmarks: regenerating the whole registry through the run
// cache, cold (every design point simulated once) and warm (every point a
// cache hit).

func BenchmarkRunAllCold(b *testing.B) {
	var dedup float64
	for i := 0; i < b.N; i++ {
		lva.ResetRunCache()
		if _, err := lva.RunAll(); err != nil {
			b.Fatal(err)
		}
		dedup = lva.RunCacheCounters().DedupFraction()
	}
	b.ReportMetric(dedup*100, "dedup%")
}

func BenchmarkRunAllWarm(b *testing.B) {
	lva.ResetRunCache()
	if _, err := lva.RunAll(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lva.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunCacheHit measures the memo-store fast path: one already-
// simulated design point served from the cache.
func BenchmarkRunCacheHit(b *testing.B) {
	w := lva.NewSwaptions()
	cfg := experiments.BaselineFor(w)
	experiments.RunLVA(w, cfg, experiments.DefaultSeed) // prime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunLVA(w, cfg, experiments.DefaultSeed)
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: throughput of the core hardware-model structures.

func BenchmarkApproximatorOnMiss(b *testing.B) {
	cfg := lva.DefaultApproximatorConfig()
	cfg.ValueDelay = 0
	a := lva.NewApproximator(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.OnMiss(uint64(0x400+i%32*4), lva.FloatValue(float64(i%100)))
	}
}

func BenchmarkApproximatorWithGHB(b *testing.B) {
	cfg := lva.DefaultApproximatorConfig()
	cfg.ValueDelay = 0
	cfg.GHBSize = 4
	a := lva.NewApproximator(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.OnMiss(uint64(0x400+i%32*4), lva.FloatValue(float64(i%100)))
	}
}

func BenchmarkSimulatorLoadHit(b *testing.B) {
	sim := lva.NewSimulator(lva.DefaultSimConfig())
	sim.LoadFloat(0x400, 0x1000, 1, false) // warm the block
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.LoadFloat(0x400, 0x1000, 1, false)
	}
}

func BenchmarkSimulatorLoadMissCovered(b *testing.B) {
	cfg := lva.DefaultSimConfig()
	cfg.Approx.ValueDelay = 0
	sim := lva.NewSimulator(cfg)
	for i := 0; i < 8; i++ {
		sim.LoadInt(0x400, uint64(0x100000+i*64), 10, true)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh block every time: always a miss, always covered.
		sim.LoadInt(0x400, uint64(0x200000+i*64), 10, true)
	}
}

// Obs twins of the hot-path micro-benchmarks: same loop bodies with the
// metrics registry enabled at construction. ci.sh's overhead check
// compares each pair's disabled run against the seed and bounds the
// enabled-path cost; the disabled originals above must stay within noise
// of their pre-obs numbers because their fast paths carry no
// instrumentation at all (nil seam pointer).

func BenchmarkApproximatorOnMissObs(b *testing.B) {
	lva.SetMetricsEnabled(true)
	defer lva.SetMetricsEnabled(false)
	cfg := lva.DefaultApproximatorConfig()
	cfg.ValueDelay = 0
	a := lva.NewApproximator(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.OnMiss(uint64(0x400+i%32*4), lva.FloatValue(float64(i%100)))
	}
}

func BenchmarkSimulatorLoadHitObs(b *testing.B) {
	lva.SetMetricsEnabled(true)
	defer lva.SetMetricsEnabled(false)
	sim := lva.NewSimulator(lva.DefaultSimConfig())
	sim.LoadFloat(0x400, 0x1000, 1, false) // warm the block
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.LoadFloat(0x400, 0x1000, 1, false)
	}
}

// Batched-accessor micro-benchmarks: per-element cost of the range/row
// helpers the streaming kernels (blackscholes, fluidanimate, x264) use on
// their hot arrays. Steady state is all-hits over a resident window, the
// shape the batching was built for; b.N counts elements, not calls.

func BenchmarkF64LoadRange(b *testing.B) {
	sim := memsim.New(memsim.DefaultConfig())
	arena := workloads.NewArena()
	arr := workloads.NewF64Array(arena, 512)
	dst := make([]float64, 64)
	arr.LoadRange(sim, 0x400, 0, 64, true, dst) // warm the window
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 64 {
		arr.LoadRange(sim, 0x400, 0, 64, true, dst)
	}
}

func BenchmarkI32LoadRow(b *testing.B) {
	sim := memsim.New(memsim.DefaultConfig())
	arena := workloads.NewArena()
	pix := workloads.NewI32Array(arena, 1024)
	pcs := []uint64{0x400, 0x404, 0x408, 0x40c}
	dst := make([]int32, 64)
	pix.LoadRow(sim, pcs, 0, 64, true, dst) // warm the row
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += 64 {
		pix.LoadRow(sim, pcs, 0, 64, true, dst)
	}
}

// ---------------------------------------------------------------------------
// Grid-trace benchmarks: the two halves of the record-once/replay-many
// pipeline, isolated. Record pays one instrumented kernel execution plus
// the streaming encode; replay pays one decode pass plus per-access
// simulator dispatch and no kernel arithmetic.

func BenchmarkGridRecord(b *testing.B) {
	w := workloads.NewBlackscholes()
	cfg := memsim.DefaultConfig()
	cfg.Attach = memsim.AttachNone
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gw := trace.NewGridWriter(io.Discard, w.Name(), "bench", experiments.DefaultSeed)
		sim := memsim.New(cfg)
		sim.SetGridCapture(gw)
		w.Run(sim, experiments.DefaultSeed)
		if _, err := gw.Finish(sim.Result().Instructions, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridReplay(b *testing.B) {
	w := workloads.NewBlackscholes()
	cfg := memsim.DefaultConfig()
	cfg.Attach = memsim.AttachNone
	var buf bytes.Buffer
	gw := trace.NewGridWriter(&buf, w.Name(), "bench", experiments.DefaultSeed)
	sim := memsim.New(cfg)
	sim.SetGridCapture(gw)
	w.Run(sim, experiments.DefaultSeed)
	hdr, err := gw.Finish(sim.Result().Instructions, nil)
	if err != nil {
		b.Fatal(err)
	}
	enc := buf.Bytes()
	lvp := memsim.DefaultConfig()
	lvp.Attach = memsim.AttachLVP
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gr, err := trace.NewGridReader(bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		if err := memsim.Replay(gr, hdr.Instructions, []*memsim.Sim{memsim.New(lvp)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullSystemReplay(b *testing.B) {
	sw := lva.NewSwaptions()
	sw.NSwaptions, sw.Paths = 4, 50
	tr := lva.CaptureTrace(sw, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lva.NewSystem(lva.DefaultSystemConfig()).Run(tr)
	}
}
