package fullsys

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"lva/internal/trace"
	"lva/internal/value"
)

// encodeGridStream synthesizes a multi-chunk, multi-thread grid stream with
// mixed loads/stores/approximate accesses and returns the encoded bytes
// plus its header.
func encodeGridStream(t *testing.T, n, threads int) ([]byte, trace.GridHeader) {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewGridWriter(&buf, "unit", "k", 1)
	insts := uint64(0)
	for i := 0; i < n; i++ {
		thread := uint8(i % threads)
		pc := 0x400 + uint64(i%8)*4
		addr := 0x10000 + uint64(i*2654435761)%2048*64
		if i%5 == 0 {
			w.Access(pc, addr, value.Value{}, trace.Store, false, thread, insts)
		} else {
			w.Access(pc, addr, value.FromInt(int64(i%97)), trace.Load, i%2 == 0, thread, insts)
		}
		insts += 1 + uint64(i%7)
	}
	hdr, err := w.Finish(insts+5, nil)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return buf.Bytes(), hdr
}

// decodeFlat materializes a grid stream into the in-memory trace format.
func decodeFlat(t *testing.T, encoded []byte) *trace.Trace {
	t.Helper()
	gr, err := trace.NewGridReader(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	flat := &trace.Trace{Name: "unit"}
	for {
		accs, _, err := gr.Next()
		if err == io.EOF {
			return flat
		}
		if err != nil {
			t.Fatal(err)
		}
		flat.Accesses = append(flat.Accesses, accs...)
	}
}

// TestRunStreamMatchesRun is the phase-2 streaming contract: chunked replay
// through bounded per-core queues must pick accesses in exactly the order
// the materialized Run does, so every counter — cycles, traffic, energy —
// is identical.
func TestRunStreamMatchesRun(t *testing.T) {
	for _, threads := range []int{1, 3, 4} {
		encoded, hdr := encodeGridStream(t, 20000, threads)
		if hdr.Chunks < 2 {
			t.Fatalf("stream too small to exercise chunking: %d chunks", hdr.Chunks)
		}
		flat := decodeFlat(t, encoded)

		for _, withApprox := range []bool{false, true} {
			cfg := DefaultConfig()
			if withApprox {
				cfg.Approx = approxCfg(4)
			}
			want := New(cfg).Run(flat)
			gr, err := trace.NewGridReader(bytes.NewReader(encoded))
			if err != nil {
				t.Fatal(err)
			}
			got, err := New(cfg).RunStream(hdr.Threads, gr)
			if err != nil {
				t.Fatalf("RunStream: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("threads=%d approx=%v: streamed result differs\n got %+v\nwant %+v",
					threads, withApprox, got, want)
			}
		}
	}
}

func TestRunStreamPropagatesDecodeErrors(t *testing.T) {
	encoded, hdr := encodeGridStream(t, 20000, 4)
	gr, err := trace.NewGridReader(bytes.NewReader(encoded[:len(encoded)/2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(DefaultConfig()).RunStream(hdr.Threads, gr); err == nil {
		t.Fatal("truncated stream must surface an error")
	}
}
