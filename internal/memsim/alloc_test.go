package memsim

import "testing"

// assertZeroAllocs pins a per-load path to zero steady-state allocations —
// the tentpole perf contract: after warmup, no load/store on any attachment
// path may touch the heap.
func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if n := testing.AllocsPerRun(200, fn); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

func TestPerLoadPathsAllocateNothing(t *testing.T) {
	t.Run("load hit", func(t *testing.T) {
		sim := New(DefaultConfig())
		sim.LoadFloat(0x400, 0x1000, 1, false) // warm the block
		assertZeroAllocs(t, "float hit", func() { sim.LoadFloat(0x400, 0x1000, 1, false) })
		assertZeroAllocs(t, "int hit", func() { sim.LoadInt(0x404, 0x1008, 2, true) })
	})

	t.Run("store hit and miss", func(t *testing.T) {
		sim := New(DefaultConfig())
		sim.Store(0x400, 0x1000)
		addr := uint64(0x100000)
		assertZeroAllocs(t, "store hit", func() { sim.Store(0x400, 0x1000) })
		assertZeroAllocs(t, "store miss", func() { sim.Store(0x400, addr); addr += 64 })
	})

	t.Run("covered miss delay-0", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Approx.ValueDelay = 0
		sim := New(cfg)
		// Warm the approximator table for a handful of static PCs so the
		// steady state retrains existing entries (LHB backing reused).
		for i := 0; i < 256; i++ {
			sim.LoadInt(uint64(0x400+i%8*4), uint64(0x100000+i*64), 10, true)
		}
		addr := uint64(0x800000)
		i := 0
		assertZeroAllocs(t, "covered miss", func() {
			sim.LoadInt(uint64(0x400+i%8*4), addr, 10, true)
			addr += 64
			i++
		})
	})

	t.Run("delayed training steady state", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Approx.ValueDelay = 4
		sim := New(cfg)
		for i := 0; i < 256; i++ {
			sim.LoadInt(uint64(0x400+i%8*4), uint64(0x100000+i*64), 10, true)
		}
		addr := uint64(0x800000)
		i := 0
		assertZeroAllocs(t, "delayed training", func() {
			// Miss (enqueue) followed by hits (countdown ticks): the
			// pending ring is at steady-state capacity, so neither the
			// enqueue nor the deferred commit allocates.
			sim.LoadInt(uint64(0x400+i%8*4), addr, 10, true)
			sim.LoadFloat(0x500, 0x1000, 1, false)
			sim.LoadFloat(0x500, 0x1000, 1, false)
			addr += 64
			i++
		})
	})

	t.Run("prefetch attach", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Attach = AttachPrefetch
		sim := New(cfg)
		for i := 0; i < 64; i++ {
			sim.LoadInt(0x400, uint64(0x100000+i*64), 10, false)
		}
		addr := uint64(0x800000)
		assertZeroAllocs(t, "prefetch miss", func() {
			sim.LoadInt(0x400, addr, 10, false)
			addr += 64
		})
	})

	t.Run("capture within preallocated capacity", func(t *testing.T) {
		sim := New(DefaultConfig())
		sim.CaptureSized("alloc-test", 4096)
		sim.LoadFloat(0x400, 0x1000, 1, false)
		assertZeroAllocs(t, "captured hit", func() { sim.LoadFloat(0x400, 0x1000, 1, false) })
		if got := len(sim.TakeTrace().Accesses); got == 0 {
			t.Fatal("capture recorded nothing")
		}
	})
}
