package isa

import (
	"strings"
	"testing"
)

// FuzzAssemble ensures the assembler never panics on arbitrary source text
// and that anything it accepts also survives bounded execution against a
// throwaway memory (no panics, only clean errors).
func FuzzAssemble(f *testing.F) {
	f.Add("li r1, 5\nhalt\n")
	f.Add("loop: addi r1, r1, 1\nblt r1, r2, loop\n")
	f.Add("ld.a r2, 8(r1)\nfst f3, -16(r4)\n")
	f.Add("tick 10\n# comment only\n")
	f.Add(":::\nli\nbogus x y z\n")

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return
		}
		p, err := Assemble(src)
		if err != nil {
			return
		}
		// Execute briefly against a null memory; must not panic.
		vm := NewVM(p, nullMem{})
		vm.MaxSteps = 10_000
		_ = vm.Run()
		_ = strings.TrimSpace(src)
	})
}

// nullMem is a Memory that returns precise values and tracks nothing.
type nullMem struct{}

func (nullMem) LoadFloat(_, _ uint64, precise float64, _ bool) float64 { return precise }
func (nullMem) LoadInt(_, _ uint64, precise int64, _ bool) int64       { return precise }
func (nullMem) Store(_, _ uint64)                                      {}
func (nullMem) Tick(uint64)                                            {}
func (nullMem) SetThread(int)                                          {}
