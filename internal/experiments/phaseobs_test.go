package experiments

import (
	"bytes"
	"strings"
	"testing"

	"lva/internal/memsim"
	"lva/internal/obs/phase"
	"lva/internal/workloads"
)

// TestPhaseOffIsFree is the zero-overhead-when-off gate for the phase
// observatory: with profiling disabled (the default), the annotated-load
// path allocates nothing and figures match their golden hashes bit for
// bit — the seam is one nil check, exactly like attribution's.
func TestPhaseOffIsFree(t *testing.T) {
	if raceEnabled {
		t.Skip("regenerates table1 under the detector's slowdown; byte-identity is a determinism property the non-race run checks, and the phase seams get race coverage from the memsim/phase package tests")
	}
	if phase.Enabled() {
		t.Fatal("test requires phase profiling disabled")
	}

	// Per-load allocation check on the annotated path with no profiler.
	sim := memsim.New(memsim.DefaultConfig())
	for i := 0; i < 512; i++ {
		sim.LoadFloat(uint64(0x400+i%8*4), uint64(0x100000+i*64), 1, true)
	}
	addr := uint64(0x900000)
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		sim.LoadFloat(uint64(0x400+i%8*4), addr, 1, true)
		addr += 64
		i++
	}); n != 0 {
		t.Errorf("annotated load with phase off: %v allocs/op, want 0", n)
	}

	// Figure bytes against the committed golden contract.
	ResetRunCache()
	defer ResetRunCache()
	for _, id := range []string{"table1", "fig12", "fig13"} {
		if got, want := figureHash(Registry[id]()), goldenHashFor(t, id); got != want {
			t.Errorf("figure %s hash = %s, want golden %s", id, got, want)
		}
	}
}

// TestFiguresIdenticalWithPhaseOn is the observer-effect gate: running
// with the phase profiler wired into every simulation must leave every
// figure byte-identical to its golden hash, while actually publishing
// phase profiles (including for precise runs, which attribution skips).
func TestFiguresIdenticalWithPhaseOn(t *testing.T) {
	if raceEnabled {
		t.Skip("regenerates table1 under the detector's slowdown (see TestPhaseOffIsFree)")
	}
	phase.SetEnabled(true)
	phase.Reset()
	ResetRunCache()
	defer func() {
		phase.SetEnabled(false)
		phase.Reset()
		ResetRunCache()
	}()

	for _, id := range []string{"table1", "fig12", "fig13"} {
		if got, want := figureHash(Registry[id]()), goldenHashFor(t, id); got != want {
			t.Errorf("figure %s hash with phase on = %s, want golden %s", id, got, want)
		}
	}

	snap := phase.TakeSnapshot()
	if len(snap.Scopes) == 0 {
		t.Fatal("no phase scopes published")
	}
	var precise, simBacked int
	for _, sc := range snap.Scopes {
		if sc.TotalEpochs == 0 {
			t.Errorf("scope %s published with zero epochs", sc.Scope)
		}
		if strings.Contains(sc.Scope, "/precise/") {
			precise++
		}
		if sc.Projection.HasSim {
			simBacked++
		}
	}
	if precise == 0 {
		t.Error("no precise-run scopes published (phase profiles AttachNone runs)")
	}
	if simBacked == 0 {
		t.Error("no sim-backed projections published")
	}
}

// TestPhaseSnapshotDeterministic checks the published phase snapshot is
// byte-stable across repeat runs and Parallelism levels: profilers are
// per-run single-threaded, clustering is deterministic in epoch order,
// and the run cache simulates each design point once, so the scope-sorted
// snapshot cannot depend on scheduling.
func TestPhaseSnapshotDeterministic(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("regenerates two figures three times")
	}
	saved := Parallelism
	phase.SetEnabled(true)
	defer func() {
		Parallelism = saved
		phase.SetEnabled(false)
		phase.Reset()
		ResetRunCache()
	}()

	capture := func(par int) []byte {
		Parallelism = par
		ResetRunCache()
		phase.Reset()
		if _, err := RunAll("fig12", "fig13"); err != nil {
			t.Fatal(err)
		}
		b, err := phase.TakeSnapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	p8a := capture(8)
	p8b := capture(8)
	p1 := capture(1)
	if !bytes.Equal(p8a, p8b) {
		t.Error("phase snapshot differs between two identical Parallelism=8 runs")
	}
	if !bytes.Equal(p8a, p1) {
		t.Error("phase snapshot differs between Parallelism=8 and Parallelism=1")
	}

	snap, err := phase.ParseSnapshot(p1)
	if err != nil {
		t.Fatal(err)
	}
	var projected int
	for _, sc := range snap.Scopes {
		if len(sc.Phases) == 0 {
			t.Errorf("scope %s clustered into no phases", sc.Scope)
		}
		if sc.Projection.HasSim {
			projected++
			pr := sc.Projection
			if pr.ProjectedMPKI < 0 || pr.ProjectedCoverage < 0 || pr.ProjectedCoverage > 1 {
				t.Errorf("scope %s projection out of range: %+v", sc.Scope, pr)
			}
		}
	}
	if projected == 0 {
		t.Fatalf("no sim-backed projections in snapshot:\n%s", p1)
	}
}

// TestProfileGridStreamOffline checks the sim-free path: a recorded
// stream profiles through one decode pass, yields epochs, carries no
// projection (HasSim false), and repeat decodes are byte-identical.
func TestProfileGridStreamOffline(t *testing.T) {
	w, err := workloads.ByName("blackscholes")
	if err != nil {
		t.Fatal(err)
	}
	ResetRunCache()
	defer ResetRunCache()
	path, err := EnsureGridStream("precise", w, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}

	phase.Reset()
	defer phase.Reset()
	prof, hdr, err := ProfileGridStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Name != "blackscholes" {
		t.Fatalf("header name = %q, want blackscholes", hdr.Name)
	}
	if prof.TotalEpochs == 0 {
		t.Fatal("offline profile has no epochs")
	}
	if prof.Loads != hdr.ApproxLoads {
		t.Fatalf("profiled loads = %d, footer says %d annotated loads", prof.Loads, hdr.ApproxLoads)
	}
	if prof.Projection.HasSim {
		t.Fatal("offline profile claims HasSim")
	}
	if prof.Projection.Representative {
		t.Fatal("offline profile claims representativeness without a sim")
	}
	if !strings.Contains(prof.Scope, "/stream/") {
		t.Fatalf("offline scope = %q, want bench/stream/hash", prof.Scope)
	}

	b1, err := phase.TakeSnapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	phase.Reset()
	if _, _, err := ProfileGridStream(path); err != nil {
		t.Fatal(err)
	}
	b2, err := phase.TakeSnapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("offline phase profile differs between two decodes of the same stream")
	}
}
