// Package suppressed exercises the //lint:ignore mechanism: every finding
// here is explicitly acknowledged, so the gate must pass, and a malformed
// ignore must itself be reported.
package suppressed

import (
	//lint:ignore seedrand fixture demonstrating an acknowledged exception
	"math/rand"
	"time"
)

// Roll documents an acknowledged use of the global generator.
func Roll() int {
	return rand.Intn(6)
}

// Seed has a trailing same-line suppression.
func Seed() uint64 {
	return uint64(time.Now().UnixNano()) //lint:ignore seedrand fixture demonstrating same-line suppression
}

// Lookup carries a suppression with a missing reason, which the driver
// must flag instead of honoring.
func Lookup(xs []int, i int) int {
	if i < 0 || i >= len(xs) {
		//lint:ignore nopanic
		panic("out of range") // want:nopanic
	}
	return xs[i]
}
