// Package mapiter_bad holds order-taint violations: values whose order
// derives from ranging over a map reach rendering, hashing and snapshot
// sinks without a sort barrier.
package mapiter_bad

import (
	"bytes"
	"crypto/sha256"
	"fmt"
)

// RenderDirect ranges a map and prints each key as it comes: the figure's
// row order changes run to run.
func RenderDirect(w *bytes.Buffer, counts map[string]int) {
	for name, n := range counts {
		fmt.Fprintf(w, "%s=%d\n", name, n) // want:mapiter
	}
}

// CollectThenRender gathers the keys first but never sorts them, so the
// slice is just map order with extra steps.
func CollectThenRender(w *bytes.Buffer, counts map[string]int) {
	var names []string
	for name := range counts {
		names = append(names, name)
	}
	fmt.Fprintf(w, "%v\n", names) // want:mapiter
}

// keysOf leaks map order through a return value; the caller below trips
// the sink, proving the summary survives the function boundary.
func keysOf(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// HashKeys feeds map-ordered bytes to a hash: the digests come out in an
// order that flaps run to run.
func HashKeys(m map[string]float64) [][32]byte {
	var sums [][32]byte
	for _, k := range keysOf(m) {
		sums = append(sums, sha256.Sum256([]byte(k))) // want:mapiter
	}
	return sums
}

// sink is a repo-style publication seam; its name marks it ordering
// sensitive and its summary records the parameter-to-sink flow.
func sink(w *bytes.Buffer, rows []string) {
	fmt.Fprintln(w, rows)
}

// ViaHelper pushes map-ordered rows through an intermediate helper; the
// interprocedural summary still connects source to sink.
func ViaHelper(w *bytes.Buffer, m map[int]int) {
	var rows []string
	for k, v := range m {
		rows = append(rows, fmt.Sprint(k, v))
	}
	sink(w, rows) // want:mapiter
}
