package obs

import (
	"math"
	"sync"
	"testing"
)

// TestCounterConcurrent hammers one shared counter from many goroutines;
// under `go test -race` this is the repo's shared-counter race exercise.
func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("test_shared", "race-exercised shared counter")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// TestNilSafety checks every metric method is a safe no-op on nil — the
// contract the zero-overhead disabled path relies on.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	c.Reset()
	if c.Value() != 0 {
		t.Error("nil counter should read 0")
	}

	var g *Gauge
	g.Set(3)
	g.Add(-1)
	g.Reset()
	if g.Value() != 0 {
		t.Error("nil gauge should read 0")
	}

	var h *Histogram
	h.Observe(1.5)
	h.Reset()
	if h.Count() != 0 || h.Bounds() != nil || h.BucketCounts() != nil || h.Quantile(0.5) != 0 {
		t.Error("nil histogram should read empty")
	}
}

// TestDisabledPathAllocFree checks that nil-receiver metric calls neither
// allocate nor panic — the "allocation-free disabled path" claim.
func TestDisabledPathAllocFree(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(0.25)
	})
	if allocs != 0 {
		t.Fatalf("disabled-path metric calls allocate %.1f per op, want 0", allocs)
	}
}

// TestHistogramBucketEdges pins the le (inclusive upper bound) semantics:
// a value exactly on a bound lands in that bound's bucket.
func TestHistogramBucketEdges(t *testing.T) {
	r := New()
	h := r.Histogram("test_edges", "", []float64{1, 2, 4}, false)
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 4.5, math.Inf(1), math.NaN()} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 3} // ≤1: {0.5,1}; ≤2: {1.0000001,2}; ≤4: {4}; overflow: {4.5,+Inf,NaN}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count slice length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d, want 8", h.Count())
	}
}

// TestHistogramQuantile checks the cumulative-walk quantile bound.
func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("test_quant", "", []float64{1, 2, 4, 8}, false)
	// 10 observations: 5 in ≤1, 3 in ≤2, 2 in ≤4.
	for i := 0; i < 5; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 3; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 2; i++ {
		h.Observe(3)
	}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.5, 1}, {0.6, 2}, {0.8, 2}, {0.9, 4}, {1, 4},
		{-1, 1}, {2, 4}, // clamped
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	var empty *Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("nil histogram Quantile should be 0")
	}
}

// TestRegistryIdempotent checks same-name same-kind registration returns
// the same metric, and cross-kind registration panics as documented.
func TestRegistryIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("test_c", "first")
	b := r.Counter("test_c", "second")
	if a != b {
		t.Fatal("re-registering a counter should return the same instance")
	}
	h1 := r.Histogram("test_h", "", []float64{1, 2}, false)
	h2 := r.Histogram("test_h", "", []float64{1, 2}, false)
	if h1 != h2 {
		t.Fatal("re-registering a histogram should return the same instance")
	}

	mustPanic(t, "kind collision", func() { r.Gauge("test_c", "") })
	mustPanic(t, "bound mismatch", func() { r.Histogram("test_h", "", []float64{1, 3}, false) })
	mustPanic(t, "empty bounds", func() { r.Histogram("test_h2", "", nil, false) })
	mustPanic(t, "non-increasing bounds", func() { r.Histogram("test_h3", "", []float64{2, 1}, false) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestRegistryReset checks Reset zeroes in place without invalidating
// handed-out metric pointers.
func TestRegistryReset(t *testing.T) {
	r := New()
	c := r.Counter("test_rc", "")
	g := r.Gauge("test_rg", "")
	h := r.Histogram("test_rh", "", []float64{1}, false)
	c.Add(7)
	g.Set(-2)
	h.Observe(0.5)
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("Reset left state: c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
	c.Inc()
	if r.Counter("test_rc", "").Value() != 1 {
		t.Fatal("pointer invalidated by Reset")
	}
}

// TestEnabledToggle checks the global gate round-trips.
func TestEnabledToggle(t *testing.T) {
	defer SetEnabled(false)
	if Enabled() {
		t.Fatal("metrics should start disabled")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("SetEnabled(true) not observed")
	}
	SetEnabled(false)
	if Enabled() {
		t.Fatal("SetEnabled(false) not observed")
	}
}

// TestDefaultBuckets sanity-checks the shared presets are valid histogram
// bounds (strictly increasing), since several packages register with them.
func TestDefaultBuckets(t *testing.T) {
	for name, bs := range map[string][]float64{"TimeBuckets": TimeBuckets, "ErrorBuckets": ErrorBuckets} {
		for i := 1; i < len(bs); i++ {
			if bs[i] <= bs[i-1] {
				t.Errorf("%s not strictly increasing at %d: %v", name, i, bs)
			}
		}
	}
}
