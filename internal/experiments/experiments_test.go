package experiments

import (
	"strings"
	"testing"

	"lva/internal/workloads"
)

func TestRegistryAndIDs(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"ablation-compute", "ablation-conf", "ablation-lhb", "ablation-table", "ext-lane", "ext-mlp"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
	for _, id := range ids {
		if Registry[id] == nil {
			t.Fatalf("registry missing %q", id)
		}
	}
}

func TestFigureAccessors(t *testing.T) {
	f := &Figure{
		ID: "x", Title: "t", ValueUnit: "u",
		Benchmarks: []string{"a", "b"},
		Rows:       []Row{{Label: "r", Values: []float64{1, 3}}},
	}
	if v, ok := f.Value("r", "b"); !ok || v != 3 {
		t.Fatalf("Value = %v, %v", v, ok)
	}
	if _, ok := f.Value("r", "zzz"); ok {
		t.Fatal("unknown benchmark must miss")
	}
	if _, ok := f.Value("zzz", "a"); ok {
		t.Fatal("unknown series must miss")
	}
	if r, ok := f.Row("r"); !ok || r.Mean() != 2 {
		t.Fatalf("Row = %+v, %v", r, ok)
	}
	out := f.String()
	for _, want := range []string{"x", "series", "a", "b", "mean", "1.000", "3.000", "2.000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered figure missing %q:\n%s", want, out)
		}
	}
}

func TestPreciseMemoization(t *testing.T) {
	w, _ := workloads.ByName("swaptions") // fastest kernel
	a := Precise(w)
	b := Precise(w)
	if a.Sim.Instructions != b.Sim.Instructions {
		t.Fatal("memoized precise runs must be identical")
	}
}

func TestBaselineFor(t *testing.T) {
	for _, w := range workloads.All() {
		cfg := BaselineFor(w)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s baseline invalid: %v", w.Name(), err)
		}
		if cfg.IntConfidence {
			t.Fatalf("%s: baseline never uses integer confidence", w.Name())
		}
	}
}

// TestFig13Shape runs the cheapest full experiment driver end to end and
// checks the paper's claim: dropping mantissa bits lowers fluidanimate's
// normalized MPKI (Figure 13).
func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload run")
	}
	f := Fig13()
	if len(f.Rows) != 5 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	first := f.Rows[0].Values[0] // loss-0
	last := f.Rows[len(f.Rows)-1].Values[0]
	if last >= first {
		t.Fatalf("MPKI must fall with mantissa loss: %.3f -> %.3f", first, last)
	}
}

// TestFig1Shape checks the headline Figure 1 property: bodytrack's output
// under LVA is nearly indiscernible from precise execution.
func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload run")
	}
	f := Fig1()
	errRow, ok := f.Row("output error")
	if !ok {
		t.Fatal("missing output error row")
	}
	if errRow.Values[0] > 0.10 {
		t.Fatalf("bodytrack LVA output error %.3f too high", errRow.Values[0])
	}
	cov, _ := f.Row("coverage")
	if cov.Values[0] < 0.2 {
		t.Fatalf("bodytrack coverage %.3f too low", cov.Values[0])
	}
}

// TestCaptureTraceShape validates the phase-1 -> phase-2 hand-off.
func TestCaptureTraceShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload run")
	}
	w, _ := workloads.ByName("swaptions")
	tr := CaptureTrace(w, DefaultSeed)
	if tr.Len() == 0 {
		t.Fatal("empty trace")
	}
	if tr.Threads() != 4 {
		t.Fatalf("threads = %d, want 4", tr.Threads())
	}
	approx := 0
	for _, a := range tr.Accesses {
		if a.Approx {
			approx++
		}
	}
	if approx == 0 {
		t.Fatal("trace must mark approximate loads")
	}
}
