// Financial: price a Black–Scholes option portfolio under load value
// approximation and walk the paper's performance-error tradeoff — the
// relaxed confidence window (§III-B) — plus the energy-error tradeoff —
// the approximation degree (§III-C).
//
//	go run ./examples/financial
package main

import (
	"fmt"

	"lva"
)

const seed = 42

func main() {
	w := lva.NewBlackscholes()

	// Precise reference run.
	pcfg := lva.DefaultSimConfig()
	pcfg.Attach = lva.AttachNone
	psim := lva.NewSimulator(pcfg)
	preciseOut := w.Run(psim, seed)
	precise := psim.Result()
	fmt.Printf("portfolio: %d options, precise MPKI %.3f\n\n", w.N, precise.RawMPKI())

	fmt.Println("confidence-window sweep (performance-error tradeoff):")
	fmt.Printf("%-10s %10s %10s %12s\n", "window", "effMPKI", "coverage", "pricesOff>1%")
	for _, win := range []float64{0.01, 0.05, 0.10, 0.20, -1} {
		cfg := lva.DefaultSimConfig()
		cfg.Approx.Window = win
		sim := lva.NewSimulator(cfg)
		out := w.Run(sim, seed)
		res := sim.Result()
		label := fmt.Sprintf("±%.0f%%", win*100)
		if win < 0 {
			label = "infinite"
		}
		fmt.Printf("%-10s %10.3f %9.1f%% %11.2f%%\n",
			label, res.EffectiveMPKI(), res.Coverage()*100,
			out.Error(preciseOut)*100)
	}

	fmt.Println("\napproximation-degree sweep (energy-error tradeoff):")
	fmt.Printf("%-8s %10s %12s %12s\n", "degree", "fetches", "fetchSavings", "pricesOff>1%")
	for _, degree := range []int{0, 2, 4, 8, 16} {
		cfg := lva.DefaultSimConfig()
		cfg.Approx.Degree = degree
		sim := lva.NewSimulator(cfg)
		out := w.Run(sim, seed)
		res := sim.Result()
		fmt.Printf("%-8d %10d %11.1f%% %11.2f%%\n",
			degree, res.Fetches,
			(1-float64(res.Fetches)/float64(precise.Fetches))*100,
			out.Error(preciseOut)*100)
	}
}
