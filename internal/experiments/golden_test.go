package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// -update regenerates testdata/figure_hashes.json from the current code.
// Run it only when a change is *meant* to alter simulation output; the
// committed file is the byte-level contract every hot-path refactor must
// preserve.
var updateGolden = flag.Bool("update", false, "rewrite the golden figure hashes")

const goldenPath = "testdata/figure_hashes.json"

// figureHashes renders every registry experiment and hashes its bytes.
func figureHashes(t *testing.T) map[string]string {
	t.Helper()
	figs, err := RunAll()
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	out := make(map[string]string, len(figs))
	for _, f := range figs {
		sum := sha256.Sum256([]byte(f.String()))
		out[f.ID] = hex.EncodeToString(sum[:])
	}
	return out
}

// TestFigureGoldenHashes pins the SHA-256 of every rendered figure so a
// hot-path refactor that silently changes simulation output fails tier-1
// tests instead of slipping through review. Figures render deterministically
// (fixed seeds, ordered rows, %.3f cells), so the hashes are stable across
// machines and parallelism levels.
func TestFigureGoldenHashes(t *testing.T) {
	got := figureHashes(t)

	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden: wrote %d figure hashes to %s", len(ordered), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden: reading %s (regenerate with -update): %v", goldenPath, err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("golden: parsing %s: %v", goldenPath, err)
	}
	if len(want) != len(got) {
		t.Errorf("golden: %d figures rendered, %d hashes on file (run -update after adding/removing experiments)", len(got), len(want))
	}
	for id, h := range got {
		w, ok := want[id]
		if !ok {
			t.Errorf("golden: experiment %q has no recorded hash (run -update if it is new)", id)
			continue
		}
		if h != w {
			t.Errorf("golden: figure %q bytes changed: hash %s, want %s — simulation output is not byte-identical", id, h, w)
		}
	}
}
