package experiments

import (
	"runtime"
	"sync"

	"lva/internal/core"
	"lva/internal/workloads"
)

// Parallelism bounds how many workload simulations run concurrently in the
// experiment drivers and RunSweep. Each simulation is independent (its own
// simulator and approximator state), so results are deterministic
// regardless of this setting. Defaults to the machine's parallelism.
var Parallelism = runtime.GOMAXPROCS(0)

// forEachWorkload runs fn once per benchmark, concurrently (bounded by
// Parallelism), passing the benchmark's index in workloads.All() order.
// It returns when all have finished.
func forEachWorkload(fn func(i int, w workloads.Workload)) {
	ws := workloads.All()
	sem := make(chan struct{}, max(1, Parallelism))
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, w workloads.Workload) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i, w)
		}(i, w)
	}
	wg.Wait()
}

// lvaRow runs cfgFor(w) under LVA for every benchmark concurrently and
// returns the per-benchmark results in registry order.
func lvaRow(cfgFor func(w workloads.Workload) core.Config) []RunResult {
	out := make([]RunResult, len(workloads.Names()))
	forEachWorkload(func(i int, w workloads.Workload) {
		out[i] = RunLVA(w, cfgFor(w), DefaultSeed)
	})
	return out
}

// lvpRow is lvaRow for the idealized LVP baseline.
func lvpRow(cfgFor func(w workloads.Workload) core.Config) []RunResult {
	out := make([]RunResult, len(workloads.Names()))
	forEachWorkload(func(i int, w workloads.Workload) {
		out[i] = RunLVP(w, cfgFor(w), DefaultSeed)
	})
	return out
}

// prefetchRow runs the GHB prefetcher at one degree for every benchmark.
func prefetchRow(degree int) []RunResult {
	out := make([]RunResult, len(workloads.Names()))
	forEachWorkload(func(i int, w workloads.Workload) {
		out[i] = RunPrefetch(w, degree, DefaultSeed)
	})
	return out
}

// preciseAll warms the precise-run cache for every benchmark concurrently
// and returns the results in registry order.
func preciseAll() []RunResult {
	out := make([]RunResult, len(workloads.Names()))
	forEachWorkload(func(i int, w workloads.Workload) {
		out[i] = Precise(w)
	})
	return out
}
