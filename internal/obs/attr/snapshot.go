package attr

import (
	"encoding/json"
	"errors"
	"sort"
	"strconv"
	"sync"
)

// SiteStats is one attribution site as exported in snapshots: the raw Site
// counters plus derived rates, with the PC rendered in hex so snapshots are
// greppable against disassembly-style listings.
type SiteStats struct {
	PC         string  `json:"pc"`
	Loads      uint64  `json:"loads"`
	Misses     uint64  `json:"misses"`
	Covered    uint64  `json:"covered"`
	Fetches    uint64  `json:"fetches"`
	Trainings  uint64  `json:"trainings"`
	Accepts    uint64  `json:"conf_accepts"`
	Rejects    uint64  `json:"conf_rejects"`
	ConfGained uint64  `json:"conf_gained"`
	ConfLost   uint64  `json:"conf_lost"`
	WildErrs   uint64  `json:"wild_errors,omitempty"`
	MeanRelErr float64 `json:"mean_rel_error"`
	MaxRelErr  float64 `json:"max_rel_error"`
}

// EpochStats is one time-series window with derived rates.
type EpochStats struct {
	Index      int     `json:"index"`
	Loads      uint64  `json:"loads"`
	Insts      uint64  `json:"insts"`
	MPKI       float64 `json:"mpki"`
	Coverage   float64 `json:"coverage"`
	MeanRelErr float64 `json:"mean_rel_error"`
	Accepts    uint64  `json:"conf_accepts"`
	Rejects    uint64  `json:"conf_rejects"`
	ConfGained uint64  `json:"conf_gained"`
	ConfLost   uint64  `json:"conf_lost"`
	WildErrs   uint64  `json:"wild_errors,omitempty"`
}

// ScopeStats is the published attribution of one run.
type ScopeStats struct {
	Scope         string       `json:"scope"`
	EpochWindow   int          `json:"epoch_window"`
	TotalEpochs   int          `json:"total_epochs"`
	DroppedEpochs int          `json:"dropped_epochs"`
	Sites         []SiteStats  `json:"sites"`
	Epochs        []EpochStats `json:"epochs,omitempty"`
}

// Snapshot is a frozen, scope-sorted view of every published run.
type Snapshot struct {
	Scopes []ScopeStats `json:"scopes"`
}

// hexPC renders a PC the way snapshots store it.
func hexPC(pc uint64) string { return "0x" + strconv.FormatUint(pc, 16) }

// epochStats derives the exported view of one sealed epoch.
func epochStats(e Epoch) EpochStats {
	s := EpochStats{
		Index: e.Index, Loads: e.Loads, Insts: e.Insts,
		Accepts: e.Accepts, Rejects: e.Rejects,
		ConfGained: e.ConfGained, ConfLost: e.ConfLost,
		WildErrs: e.WildErrs,
	}
	if e.Insts > 0 {
		s.MPKI = float64(e.Misses) * 1000 / float64(e.Insts)
	}
	if e.Misses > 0 {
		s.Coverage = float64(e.Covered) / float64(e.Misses)
	}
	if judged := e.Accepts + e.Rejects - e.WildErrs; judged > 0 {
		s.MeanRelErr = e.ErrSum / float64(judged)
	}
	return s
}

// Finalize seals any partial epoch and freezes the recorder into its
// exported form. Sites are sorted by PC and epochs by index, so the result
// is deterministic for a deterministic run regardless of scheduling.
func (r *Recorder) Finalize() ScopeStats {
	if r.window > 0 && r.epoch.Loads > 0 {
		r.sealEpoch(r.lastInsts)
	}
	out := ScopeStats{
		Scope:         r.scope,
		EpochWindow:   int(r.window),
		TotalEpochs:   r.totalEpochs,
		DroppedEpochs: r.totalEpochs - r.ringLen,
	}
	sites := make([]Site, 0, r.n)
	if r.zeroUsed {
		sites = append(sites, r.zero)
	}
	for i := range r.tab {
		if r.tab[i].PC != 0 {
			sites = append(sites, r.tab[i])
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].PC < sites[j].PC })
	out.Sites = make([]SiteStats, len(sites))
	for i, s := range sites {
		ss := SiteStats{
			PC: hexPC(s.PC), Loads: s.Loads, Misses: s.Misses,
			Covered: s.Covered, Fetches: s.Fetches, Trainings: s.Trainings,
			Accepts: s.Accepts, Rejects: s.Rejects,
			ConfGained: s.ConfGained, ConfLost: s.ConfLost,
			WildErrs: s.WildErrs, MaxRelErr: s.ErrMax,
		}
		if judged := s.Accepts + s.Rejects - s.WildErrs; judged > 0 {
			ss.MeanRelErr = s.ErrSum / float64(judged)
		}
		out.Sites[i] = ss
	}
	for i := 0; i < r.ringLen; i++ {
		e := r.ring[(r.ringStart+i)%len(r.ring)]
		out.Epochs = append(out.Epochs, epochStats(e))
	}
	return out
}

// MeanRelErr is the load-weighted mean relative training error across the
// scope's judged trainings.
func (s ScopeStats) MeanRelErr() float64 {
	var sum float64
	var n uint64
	for _, st := range s.Sites {
		judged := st.Accepts + st.Rejects - st.WildErrs
		sum += st.MeanRelErr * float64(judged)
		n += judged
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// DriftRatio is the simple drift check over the retained epochs: the mean
// relative error of the second half of the time-series divided by the first
// half's. A ratio well above 1 means the approximator got worse as the run
// progressed (e.g. value locality decayed); below 1 it warmed up. The bool
// is false when fewer than two epochs on either side carry judged
// trainings, in which case no drift conclusion is possible.
func (s ScopeStats) DriftRatio() (float64, bool) {
	half := len(s.Epochs) / 2
	if half < 1 {
		return 0, false
	}
	mean := func(es []EpochStats) (float64, bool) {
		var sum float64
		var n uint64
		for _, e := range es {
			judged := e.Accepts + e.Rejects - e.WildErrs
			sum += e.MeanRelErr * float64(judged)
			n += judged
		}
		if n == 0 {
			return 0, false
		}
		return sum / float64(n), true
	}
	first, ok1 := mean(s.Epochs[:half])
	second, ok2 := mean(s.Epochs[half:])
	if !ok1 || !ok2 || first == 0 {
		return 0, false
	}
	return second / first, true
}

// registry is the process-wide store of published run attributions.
type registry struct {
	mu     sync.Mutex
	scopes map[string]ScopeStats
}

// reg lazily builds the registry exactly once (the sync.OnceValue accessor
// keeps every mutation behind a local, per the obshooks global-mutation
// rule).
var reg = sync.OnceValue(func() *registry {
	return &registry{scopes: make(map[string]ScopeStats)}
})

// Publish finalizes rec and stores it under its scope, replacing any prior
// publication of the same scope. Runs are deterministic functions of their
// scope fingerprint, so republication (e.g. with the run cache disabled) is
// idempotent.
func Publish(rec *Recorder) {
	s := rec.Finalize()
	g := reg()
	g.mu.Lock()
	g.scopes[s.Scope] = s
	g.mu.Unlock()
}

// Reset drops every published scope (for tests).
func Reset() {
	g := reg()
	g.mu.Lock()
	g.scopes = make(map[string]ScopeStats)
	g.mu.Unlock()
}

// TakeSnapshot returns the published scopes sorted by name — byte-stable
// across runs and Parallelism levels for a deterministic experiment set.
func TakeSnapshot() Snapshot {
	g := reg()
	g.mu.Lock()
	out := Snapshot{Scopes: make([]ScopeStats, 0, len(g.scopes))}
	for _, s := range g.scopes {
		out.Scopes = append(out.Scopes, s)
	}
	g.mu.Unlock()
	sort.Slice(out.Scopes, func(i, j int) bool { return out.Scopes[i].Scope < out.Scopes[j].Scope })
	return out
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseSnapshot decodes a snapshot written by JSON.
func ParseSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, errors.Join(errors.New("attr: invalid snapshot"), err)
	}
	return s, nil
}
