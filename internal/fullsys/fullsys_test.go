package fullsys

import (
	"testing"

	"lva/internal/core"
	"lva/internal/trace"
	"lva/internal/value"
)

// mkTrace builds a single-thread trace of loads at the given block-aligned
// addresses, all with value 10, optionally approximate.
func mkTrace(addrs []uint64, gap uint32, approx bool) *trace.Trace {
	tr := &trace.Trace{Name: "unit"}
	for _, a := range addrs {
		tr.Append(trace.Access{
			PC: 0x400, Addr: a, Value: value.FromInt(10),
			Gap: gap, Thread: 0, Op: trace.Load, Approx: approx,
		})
	}
	return tr
}

func approxCfg(degree int) *core.Config {
	c := core.DefaultConfig()
	c.Degree = degree
	c.ValueDelay = 1
	return &c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.Cores = 5 }, // more than mesh nodes
		func(c *Config) { c.IssueWidth = 0 },
		func(c *Config) { c.ROB = 0 },
		func(c *Config) { c.MSHRs = 0 },
		func(c *Config) { c.L1.SizeBytes = 0 },
		func(c *Config) { c.L2.Ways = 0 },
		func(c *Config) { c.NoC.Width = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	r := New(DefaultConfig()).Run(&trace.Trace{Name: "empty"})
	if r.Cycles != 0 || r.Instructions != 0 {
		t.Fatalf("empty trace result = %+v", r)
	}
}

func TestHitsAreFast(t *testing.T) {
	// Same block loaded repeatedly: one miss, then hits; runtime is
	// dominated by the single miss.
	addrs := make([]uint64, 100)
	for i := range addrs {
		addrs[i] = 0x1000
	}
	r := New(DefaultConfig()).Run(mkTrace(addrs, 0, false))
	if r.L1LoadMisses != 1 {
		t.Fatalf("misses = %d, want 1", r.L1LoadMisses)
	}
	if r.Cycles > 1000 {
		t.Fatalf("hit-dominated run too slow: %d cycles", r.Cycles)
	}
}

func TestMissStallsWithROB(t *testing.T) {
	// Back-to-back misses to distinct blocks with no compute gap: the ROB
	// lets up to 32 instructions slide before stalling on the oldest.
	addrs := make([]uint64, 64)
	for i := range addrs {
		addrs[i] = uint64(0x10000 + i*64)
	}
	r := New(DefaultConfig()).Run(mkTrace(addrs, 0, false))
	if r.L1LoadMisses != 64 {
		t.Fatalf("misses = %d", r.L1LoadMisses)
	}
	if r.StallCycles == 0 {
		t.Fatal("uncovered misses must stall eventually")
	}
	if r.Fetches != 64 {
		t.Fatalf("fetches = %d", r.Fetches)
	}
}

func TestCoveredMissesDontStall(t *testing.T) {
	// Warm an approximator entry, then miss a lot: with LVA attached and
	// integer data, every miss is covered and the core never waits.
	addrs := make([]uint64, 200)
	for i := range addrs {
		addrs[i] = uint64(0x10000 + i*64)
	}
	cfg := DefaultConfig()
	cfg.Approx = approxCfg(0)
	r := New(cfg).Run(mkTrace(addrs, 0, true))
	if r.Covered < 150 {
		t.Fatalf("covered = %d of %d misses", r.Covered, r.L1LoadMisses)
	}
	pr := New(DefaultConfig()).Run(mkTrace(addrs, 0, true))
	if r.Cycles >= pr.Cycles {
		t.Fatalf("LVA must be faster: %d vs %d cycles", r.Cycles, pr.Cycles)
	}
}

func TestDegreeElidesTraffic(t *testing.T) {
	addrs := make([]uint64, 400)
	for i := range addrs {
		addrs[i] = uint64(0x10000 + i*64)
	}
	run := func(deg int) Result {
		cfg := DefaultConfig()
		cfg.Approx = approxCfg(deg)
		return New(cfg).Run(mkTrace(addrs, 0, true))
	}
	d0, d16 := run(0), run(16)
	if d16.Fetches >= d0.Fetches {
		t.Fatalf("degree 16 must elide fetches: %d vs %d", d16.Fetches, d0.Fetches)
	}
	if d16.FlitHops >= d0.FlitHops {
		t.Fatalf("degree 16 must reduce traffic: %d vs %d", d16.FlitHops, d0.FlitHops)
	}
	if d16.Energy.TotalPJ() >= d0.Energy.TotalPJ() {
		t.Fatalf("degree 16 must save energy: %.3g vs %.3g",
			d16.Energy.TotalPJ(), d0.Energy.TotalPJ())
	}
}

func TestStoresDoNotBlock(t *testing.T) {
	tr := &trace.Trace{Name: "stores"}
	for i := 0; i < 50; i++ {
		tr.Append(trace.Access{
			PC: 0x500, Addr: uint64(0x2000 + i*64), Gap: 0,
			Thread: 0, Op: trace.Store,
		})
	}
	r := New(DefaultConfig()).Run(tr)
	if r.Stores != 50 {
		t.Fatalf("stores = %d", r.Stores)
	}
	// Store misses fetch but the only stalls allowed are MSHR back-pressure.
	if r.Fetches != 50 {
		t.Fatalf("write-allocate fetches = %d", r.Fetches)
	}
}

func TestCoherenceInvalidations(t *testing.T) {
	// Two threads ping-pong a block: thread 0 stores, thread 1 loads.
	tr := &trace.Trace{Name: "pingpong"}
	for i := 0; i < 20; i++ {
		tr.Append(trace.Access{PC: 0x600, Addr: 0x4000, Gap: 10, Thread: 0, Op: trace.Store})
		tr.Append(trace.Access{PC: 0x604, Addr: 0x4000, Value: value.FromInt(1), Gap: 10, Thread: 1, Op: trace.Load})
	}
	r := New(DefaultConfig()).Run(tr)
	if r.Invalidations == 0 {
		t.Fatal("write sharing must invalidate")
	}
	if r.Flushes == 0 {
		t.Fatal("remote dirty reads must flush the owner")
	}
}

func TestMultiThreadMakespan(t *testing.T) {
	// Thread 1 has far more work; the makespan must reflect it.
	tr := &trace.Trace{Name: "skew"}
	tr.Append(trace.Access{PC: 0x700, Addr: 0x8000, Value: value.FromInt(1), Gap: 5, Thread: 0, Op: trace.Load})
	for i := 0; i < 50; i++ {
		tr.Append(trace.Access{PC: 0x704, Addr: uint64(0x9000 + i*64), Value: value.FromInt(1), Gap: 1000, Thread: 1, Op: trace.Load})
	}
	r := New(DefaultConfig()).Run(tr)
	// Thread 1 alone: >= 50 * 1000/4 cycles of compute.
	if r.Cycles < 12000 {
		t.Fatalf("makespan %d too small for thread 1's work", r.Cycles)
	}
	if r.Instructions != 1+5+50*1001 {
		t.Fatalf("instructions = %d", r.Instructions)
	}
}

func TestMSHRBoundsOutstanding(t *testing.T) {
	// With 1 MSHR every fetch serializes; with 8 they overlap. Runtime
	// must reflect that.
	addrs := make([]uint64, 100)
	for i := range addrs {
		addrs[i] = uint64(0x10000 + i*64)
	}
	one := DefaultConfig()
	one.MSHRs = 1
	eight := DefaultConfig()
	eight.MSHRs = 8
	r1 := New(one).Run(mkTrace(addrs, 0, false))
	r8 := New(eight).Run(mkTrace(addrs, 0, false))
	if r1.Cycles <= r8.Cycles {
		t.Fatalf("1 MSHR must be slower than 8: %d vs %d", r1.Cycles, r8.Cycles)
	}
}

func TestL2AndDRAMAccounting(t *testing.T) {
	addrs := []uint64{0x10000, 0x20000, 0x30000}
	r := New(DefaultConfig()).Run(mkTrace(addrs, 0, false))
	if r.L2Accesses < 3 {
		t.Fatalf("every fetch visits the L2: %d", r.L2Accesses)
	}
	if r.DRAMAccesses < 3 {
		t.Fatalf("cold L2 misses must go to DRAM: %d", r.DRAMAccesses)
	}
	if r.Energy.DRAMAccesses != r.DRAMAccesses {
		t.Fatal("energy tally must match the DRAM count")
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{Cycles: 100, Instructions: 400, L1LoadMisses: 10,
		StallCycles: 50, MissServiceTotal: 900, ServicedMisses: 9}
	if r.IPC() != 4 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	if r.AvgServiceLatency() != 100 {
		t.Fatalf("service latency = %v", r.AvgServiceLatency())
	}
	if r.AvgExposedMissLatency() != 5 {
		t.Fatalf("exposed latency = %v", r.AvgExposedMissLatency())
	}
	zero := Result{}
	if zero.IPC() != 0 || zero.AvgServiceLatency() != 0 || zero.AvgExposedMissLatency() != 0 {
		t.Fatal("zero-result conventions")
	}
}

func TestPerCoreStats(t *testing.T) {
	tr := &trace.Trace{Name: "percore"}
	for i := 0; i < 40; i++ {
		tr.Append(trace.Access{
			PC: 0x700, Addr: uint64(0x9000 + i*64), Value: value.FromInt(1),
			Gap: 100, Thread: uint8(i % 2), Op: trace.Load,
		})
	}
	r := New(DefaultConfig()).Run(tr)
	if len(r.PerCore) != 4 {
		t.Fatalf("per-core stats = %d entries", len(r.PerCore))
	}
	var insts uint64
	for _, c := range r.PerCore {
		insts += c.Instructions
		if c.Cycles > r.Cycles {
			t.Fatal("no core can outlast the makespan")
		}
	}
	if insts != r.Instructions {
		t.Fatalf("per-core instructions %d != total %d", insts, r.Instructions)
	}
	if r.PerCore[0].Accesses != 20 || r.PerCore[1].Accesses != 20 {
		t.Fatalf("access split: %+v", r.PerCore)
	}
	if r.PerCore[0].IPC() <= 0 {
		t.Fatal("busy core must have positive IPC")
	}
	if (CoreStat{}).IPC() != 0 {
		t.Fatal("idle core IPC must be 0")
	}
}

func TestValueDelayRealistic(t *testing.T) {
	// Phase-2 approximators use a small value delay; the pipeline must
	// train through it without leaking pending state.
	addrs := make([]uint64, 50)
	for i := range addrs {
		addrs[i] = uint64(0x10000 + i*64)
	}
	cfg := DefaultConfig()
	cfg.Approx = approxCfg(0)
	r := New(cfg).Run(mkTrace(addrs, 2, true))
	if r.Covered == 0 {
		t.Fatal("training must eventually enable coverage")
	}
}
