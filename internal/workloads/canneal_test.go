package workloads

import (
	"math"
	"testing"

	"lva/internal/memsim"
)

func smallCanneal() *Canneal {
	cn := NewCanneal()
	cn.Blocks, cn.GridSide, cn.Steps = 1<<10, 32, 2000
	return cn
}

func TestCannealPlacementIsPermutation(t *testing.T) {
	// After any number of swaps the placement must remain a bijection
	// between blocks and grid cells: swaps preserve the invariant.
	cn := smallCanneal()
	cfg := memsim.DefaultConfig() // LVA attached: approximate run
	sim := memsim.New(cfg)
	cn.Run(sim, 5)
	// Re-run precisely and check by construction (Run rebuilds state; the
	// exported output only carries cost, so verify via a precise re-run's
	// internal consistency: cost must be reproducible).
	out1, _ := runPrecise(cn, 5)
	out2, _ := runPrecise(cn, 5)
	if out1.(CannealOutput).RoutingCost != out2.(CannealOutput).RoutingCost {
		t.Fatal("non-deterministic placement")
	}
}

func TestCannealCostScalesWithGrid(t *testing.T) {
	// Without annealing, expected wire length grows with grid size.
	small := NewCanneal()
	small.Blocks, small.GridSide, small.Steps = 1<<8, 16, 0
	big := NewCanneal()
	big.Blocks, big.GridSide, big.Steps = 1<<10, 32, 0
	so, _ := runPrecise(small, 3)
	bo, _ := runPrecise(big, 3)
	sc := so.(CannealOutput).RoutingCost
	bc := bo.(CannealOutput).RoutingCost
	// 4x blocks and 2x span: cost must grow clearly (by > 4x).
	if bc < sc*4 {
		t.Fatalf("cost must scale with instance size: %v vs %v", sc, bc)
	}
}

func TestCannealMoreStepsLowerCost(t *testing.T) {
	short := smallCanneal()
	short.Steps = 500
	long := smallCanneal()
	long.Steps = 4000
	so, _ := runPrecise(short, 11)
	lo, _ := runPrecise(long, 11)
	if lo.(CannealOutput).RoutingCost >= so.(CannealOutput).RoutingCost {
		t.Fatalf("more annealing must reduce cost: %v vs %v",
			lo.(CannealOutput).RoutingCost, so.(CannealOutput).RoutingCost)
	}
}

func TestCannealApproximateCostErrorBounded(t *testing.T) {
	// Under the baseline approximator the annealer still converges to a
	// placement whose cost is close to precise (the heuristic tolerates
	// coordinate noise — the paper's premise for this benchmark).
	cn := smallCanneal()
	precise, _ := runPrecise(cn, 13)
	sim := memsim.New(memsim.DefaultConfig())
	approx := cn.Run(sim, 13)
	e := approx.Error(precise)
	if e > 0.25 {
		t.Fatalf("approximate annealing diverged: %.1f%% cost error", e*100)
	}
	res := sim.Result()
	if res.Coverage() < 0.5 {
		t.Fatalf("canneal's integer coordinates should be highly covered: %.1f%%",
			res.Coverage()*100)
	}
}

func TestCannealRandomAccessPattern(t *testing.T) {
	// The paper's premise for Figure 8: canneal's swap targets have no
	// spatial pattern, so its miss rate is high and prefetch-resistant.
	cn := smallCanneal()
	_, res := runPrecise(cn, 17)
	if res.LoadMisses*5 < res.Loads {
		// Sanity: >20% of loads miss on this small config (grid arrays
		// exceed a 64 KB L1 only for the full-size instance; with the
		// small test instance the rate is lower but must be nonzero).
		t.Logf("note: small-instance miss rate %.1f%%",
			float64(res.LoadMisses)/float64(res.Loads)*100)
	}
	if res.LoadMisses == 0 {
		t.Fatal("canneal must miss")
	}
}

func TestAbsI32(t *testing.T) {
	if absI32(-3) != 3 || absI32(3) != 3 || absI32(0) != 0 {
		t.Fatal("absI32")
	}
	if absI32(math.MinInt32+1) != math.MaxInt32 {
		t.Fatal("absI32 near min")
	}
}
