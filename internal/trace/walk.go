package trace

import "io"

// Walk streams every access of src through fn along with its global
// instruction index, in stream order, until the source is exhausted or fn
// returns an error. It is the offline-analysis counterpart of
// memsim.Replay: one decode pass, no simulation. fn must not retain the
// Access pointer — it aliases the reader's reused chunk buffer.
func Walk(src ChunkSource, fn func(a *Access, insts uint64) error) error {
	for {
		chunk, insts, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for i := range chunk {
			if err := fn(&chunk[i], insts[i]); err != nil {
				return err
			}
		}
	}
}
