package experiments

import (
	"testing"
)

func TestSweepSpecDefaults(t *testing.T) {
	var spec SweepSpec
	if got := spec.Points(); got != 7 {
		t.Fatalf("empty spec must default to one baseline point per benchmark, got %d", got)
	}
	spec.Benchmarks = []string{"swaptions"}
	spec.Degrees = []int{0, 4}
	spec.GHBs = []int{0, 2}
	if got := spec.Points(); got != 4 {
		t.Fatalf("points = %d, want 4", got)
	}
}

func TestSweepCSVShapes(t *testing.T) {
	hdr := CSVHeader()
	row := (SweepPoint{Benchmark: "x"}).CSVRow()
	if len(hdr) != len(row) {
		t.Fatalf("header/row mismatch: %d vs %d", len(hdr), len(row))
	}
}

func TestSweepUnknownBenchmark(t *testing.T) {
	_, err := RunSweep(SweepSpec{Benchmarks: []string{"nosuch"}}, nil)
	if err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestSweepInvalidConfig(t *testing.T) {
	_, err := RunSweep(SweepSpec{
		Benchmarks: []string{"swaptions"},
		GHBs:       []int{-1},
	}, nil)
	if err == nil {
		t.Fatal("invalid approximator parameter must error")
	}
}

func TestSweepRunsAndReportsProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs")
	}
	spec := SweepSpec{
		Benchmarks: []string{"swaptions"},
		Degrees:    []int{0, 4},
	}
	calls := 0
	points, err := RunSweep(spec, func(done, total int) {
		calls++
		if total != 2 || done > total {
			t.Fatalf("progress(%d, %d)", done, total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || calls != 2 {
		t.Fatalf("points=%d calls=%d", len(points), calls)
	}
	for _, p := range points {
		if p.Benchmark != "swaptions" {
			t.Fatalf("benchmark = %q", p.Benchmark)
		}
		if p.NormalizedMPKI < 0 || p.Coverage < 0 || p.Coverage > 1 {
			t.Fatalf("implausible point %+v", p)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload runs")
	}
	spec := SweepSpec{
		Benchmarks: []string{"swaptions", "x264"},
		Degrees:    []int{0, 4},
	}
	saved := Parallelism
	defer func() { Parallelism = saved }()

	Parallelism = 1
	seq, err := RunSweep(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	Parallelism = 8
	par, err := RunSweep(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("point %d differs:\nseq: %+v\npar: %+v", i, seq[i], par[i])
		}
	}
}
