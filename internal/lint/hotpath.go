package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathAnalyzer keeps the per-load machinery of the simulator packages
// (memsim, cache, core) devirtualized and allocation-free. The phase-1
// figures run hundreds of millions of loads; a single interface call or
// boxing conversion on that path costs more than the entire modeled work
// per access. Inside functions whose name marks them as per-access
// machinery, it forbids:
//
//   - interface-typed parameters: they force dynamic dispatch on every
//     access and block inlining. Hot callees take concrete types (*Sim,
//     *Cache, *Approximator, value.Value); the Memory interface seam is
//     for workload-facing entry points, not internal per-load helpers.
//   - calls into package fmt: Sprintf/Errorf box every operand; message
//     formatting belongs on cold error/validation paths only.
//   - explicit conversions to interface types (including any): each one is
//     a potential heap allocation per access.
//
// Test files are exempt, as is anything acknowledged with //lint:ignore.
var hotpathAnalyzer = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid interface parameters, fmt calls and interface conversions in per-load functions of the simulator hot-path packages",
	Run:  runHotpath,
}

// hotNameParts mark a function as per-access machinery when its lowercased
// name contains any of them.
var hotNameParts = []string{
	"load", "store", "miss", "fill", "access", "train", "tick",
	"probe", "record", "pending",
}

// isHotFunc reports whether a function name denotes per-load machinery.
func isHotFunc(name string) bool {
	lower := strings.ToLower(name)
	for _, part := range hotNameParts {
		if strings.Contains(lower, part) {
			return true
		}
	}
	return false
}

func runHotpath(p *Pass) {
	// Like obshooks, hotpath targets the three named hot-path packages;
	// only its own fixtures opt in.
	if !hotPathPkgs[p.Pkg.Path] &&
		!(isFixturePath(p.Pkg.Path) && strings.Contains(p.Pkg.Path, "hotpath")) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotFunc(fd.Name.Name) {
				continue
			}
			if p.InTestFile(fd.Pos()) {
				continue
			}
			checkHotParams(p, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isFmtCall(p, call) {
					p.Reportf(call.Pos(), "call into package fmt in per-load function %s: formatting boxes its operands; keep it off the hot path", fd.Name.Name)
				}
				reportInterfaceConversion(p, call, fd.Name.Name)
				return true
			})
		}
	}
}

// checkHotParams flags interface-typed parameters of a hot function.
func checkHotParams(p *Pass, fd *ast.FuncDecl) {
	for _, field := range fd.Type.Params.List {
		tv, ok := p.Pkg.Info.Types[field.Type]
		if !ok || !types.IsInterface(tv.Type) {
			continue
		}
		p.Reportf(field.Pos(), "interface-typed parameter %s in per-load function %s: hot callees take concrete types so calls devirtualize and inline", types.TypeString(tv.Type, types.RelativeTo(p.Pkg.Types)), fd.Name.Name)
	}
}

// isFmtCall reports whether call's function is a selector on package fmt.
func isFmtCall(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Pkg.Info.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}

// reportInterfaceConversion flags explicit conversions whose target type is
// an interface — T(x) where T is an interface type boxes x on every call.
func reportInterfaceConversion(p *Pass, call *ast.CallExpr, fn string) {
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || !types.IsInterface(tv.Type) {
		return
	}
	p.Reportf(call.Pos(), "conversion to interface type %s in per-load function %s: boxing allocates per access", types.TypeString(tv.Type, types.RelativeTo(p.Pkg.Types)), fn)
}
