package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeDebug is the -pprof endpoint smoke test: the debug server must
// serve the pprof index and expose the registry through expvar.
func TestServeDebug(t *testing.T) {
	Default().Counter("test_debug_counter", "smoke-test marker").Inc()

	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Timeout: 5 * time.Second}

	fetch := func(path string) string {
		t.Helper()
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read body: %v", path, err)
		}
		return string(body)
	}

	if body := fetch("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index does not look like pprof:\n%.200s", body)
	}

	body := fetch("/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%.200s", err, body)
	}
	raw, ok := vars["lva_metrics"]
	if !ok {
		t.Fatal("/debug/vars missing lva_metrics")
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("lva_metrics is not a snapshot: %v", err)
	}
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "test_debug_counter" && m.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("lva_metrics snapshot missing test_debug_counter: %s", raw)
	}

	// A second ServeDebug must not panic on the expvar re-publish.
	if _, err := ServeDebug("127.0.0.1:0"); err != nil {
		t.Fatalf("second ServeDebug: %v", err)
	}
}
