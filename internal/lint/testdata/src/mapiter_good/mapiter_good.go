// Package mapiter_good holds the blessed shapes: map iteration is fine as
// long as a sort barrier runs before the values become output.
package mapiter_good

import (
	"bytes"
	"fmt"
	"sort"
)

// RenderSorted is the canonical fix: collect, sort, then render.
func RenderSorted(w *bytes.Buffer, counts map[string]int) {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s=%d\n", name, counts[name])
	}
}

// sortRows is an intra-repo barrier: it sorts its parameter in place, and
// the flow summary records that, so callers get credit for calling it.
func sortRows(rows []string) {
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
}

// RenderViaHelper sorts through the helper before rendering.
func RenderViaHelper(w *bytes.Buffer, m map[int]int) {
	var rows []string
	for k, v := range m {
		rows = append(rows, fmt.Sprint(k, v))
	}
	sortRows(rows)
	fmt.Fprintln(w, rows)
}

// CopyByKey writes through keys into a destination map: keyed stores are
// order-insensitive, so no taint survives.
func CopyByKey(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// TotalOf folds a map into a sum; accumulation order does not reach any
// ordering-sensitive sink here (detfloat owns FP-order concerns).
func TotalOf(w *bytes.Buffer, counts map[string]int) {
	total := 0
	for _, n := range counts {
		total += n
	}
	fmt.Fprintf(w, "total=%d\n", total)
}
