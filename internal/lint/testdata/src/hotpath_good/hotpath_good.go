// Package hotpath_good holds code the hotpath analyzer must accept:
// concrete-typed hot functions, and interface use or formatting confined
// to functions outside the per-load vocabulary.
package hotpath_good

import "fmt"

// Memory mirrors the simulator's workload-facing interface.
type Memory interface {
	LoadFloat(pc, addr uint64, precise float64, approx bool) float64
}

type sim struct{ loads uint64 }

func (s *sim) LoadFloat(pc, addr uint64, precise float64, approx bool) float64 {
	s.loads++
	return precise
}

// Load is hot but fully concrete: fine.
func Load(s *sim, addr uint64) float64 {
	return s.LoadFloat(0, addr, 1, false)
}

// probeSet is hot and calls only concrete inlinable helpers.
func probeSet(tags []uint64, key uint64) int {
	for i := range tags {
		if tags[i] == key {
			return i
		}
	}
	return -1
}

// Describe takes the interface and formats — but it is not per-load
// machinery, so both are allowed.
func Describe(m Memory) string {
	return fmt.Sprintf("%T", m)
}

// AsMemory converts to the interface on a cold construction path.
func AsMemory(s *sim) Memory {
	return s // implicit conversion via return is the allowed seam
}

// validate is a cold path that may format errors freely.
func validate(n int) error {
	if n < 0 {
		return fmt.Errorf("negative: %d", n)
	}
	return nil
}
