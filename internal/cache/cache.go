// Package cache implements a set-associative, write-allocate cache model
// with true-LRU replacement. It is used for the 64 KB private L1 of the
// phase-1 (Pin-like) simulator, the 16 KB L1s of the phase-2 full-system
// simulator, and the distributed shared-L2 banks.
package cache

import (
	"fmt"
	"math/bits"

	"lva/internal/obs"
)

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// BlockBytes is the line size.
	BlockBytes int
	// LatencyCycles is the hit latency used by the timing simulator.
	LatencyCycles int
}

// Validate reports a descriptive error for impossible geometries.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("cache: size must be positive, got %d", c.SizeBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache: ways must be positive, got %d", c.Ways)
	case c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("cache: block size must be a positive power of two, got %d", c.BlockBytes)
	case c.SizeBytes%(c.Ways*c.BlockBytes) != 0:
		return fmt.Errorf("cache: size %d not divisible by ways*block (%d*%d)", c.SizeBytes, c.Ways, c.BlockBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.BlockBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.BlockBytes) }

// Stats holds per-cache event counts.
type Stats struct {
	Loads      uint64
	Stores     uint64
	LoadMiss   uint64
	StoreMiss  uint64
	Fills      uint64 // blocks inserted (demand fetches + prefetches)
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// Misses returns total load+store misses.
func (s Stats) Misses() uint64 { return s.LoadMiss + s.StoreMiss }

// Accesses returns total load+store accesses.
func (s Stats) Accesses() uint64 { return s.Loads + s.Stores }

type line struct {
	tag      uint64
	valid    bool
	dirty    bool
	prefetch bool   // inserted by a prefetcher, not yet demanded
	lru      uint64 // larger = more recently used
}

// Cache is a set-associative cache. It tracks block presence and
// recency only; data payloads live with the workloads.
type Cache struct {
	cfg        Config
	sets       [][]line
	setMask    uint64
	setBits    uint // popcount of setMask, precomputed: index/rebuild are the hottest ops
	blockShift uint
	clock      uint64
	stats      Stats
	// PrefetchHits counts demand accesses whose block was brought in by a
	// prefetch (useful-prefetch accounting for Figure 8).
	PrefetchHits uint64
	// om is non-nil only when obs metrics were enabled at construction.
	om *cacheMetrics
}

// New builds a cache for the given geometry; it panics on an invalid
// Config since geometries are compile-time constants in this repository.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := make([][]line, cfg.Sets())
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	mask := uint64(cfg.Sets() - 1)
	c := &Cache{
		cfg:        cfg,
		sets:       sets,
		setMask:    mask,
		setBits:    uint(bits.OnesCount64(mask)),
		blockShift: uint(bits.TrailingZeros64(uint64(cfg.BlockBytes))),
	}
	if obs.Enabled() {
		c.om = sharedCacheMetrics()
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// BlockAddr returns the block-aligned address containing addr.
func (c *Cache) BlockAddr(addr uint64) uint64 { return addr >> c.blockShift << c.blockShift }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.blockShift
	return blk & c.setMask, blk >> c.setBits
}

func (c *Cache) find(set, tag uint64) int {
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			return i
		}
	}
	return -1
}

// Contains reports whether the block holding addr is resident, without
// updating recency or statistics.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	return c.find(set, tag) >= 0
}

// Load performs a demand load of addr. It returns true on a hit. On a miss
// the block is NOT inserted; callers decide whether the fetch happens (LVA
// may elide it entirely) and call Fill.
func (c *Cache) Load(addr uint64) bool {
	c.stats.Loads++
	return c.access(addr, false)
}

func (c *Cache) access(addr uint64, store bool) bool {
	set, tag := c.index(addr)
	if i := c.find(set, tag); i >= 0 {
		c.clock++
		l := &c.sets[set][i]
		l.lru = c.clock
		if store {
			l.dirty = true
		}
		if l.prefetch {
			l.prefetch = false
			c.PrefetchHits++
		}
		return true
	}
	if store {
		c.stats.StoreMiss++
	} else {
		c.stats.LoadMiss++
	}
	return false
}

// Store performs a demand store of addr. It returns true on a hit. Misses
// are write-allocate: the caller is expected to Fill afterwards (stores are
// never approximated, matching the paper's load-only focus).
func (c *Cache) Store(addr uint64) bool {
	c.stats.Stores++
	return c.access(addr, true)
}

// Fill inserts the block containing addr, evicting the LRU way if needed.
// prefetched marks the block as brought in by a prefetcher. It returns the
// evicted block address, whether an eviction of a valid block occurred,
// and whether that victim was dirty (needs a writeback).
func (c *Cache) Fill(addr uint64, prefetched bool) (evicted uint64, wasValid, wasDirty bool) {
	set, tag := c.index(addr)
	if i := c.find(set, tag); i >= 0 {
		// Already resident (e.g. prefetch raced a demand fill): refresh.
		c.clock++
		c.sets[set][i].lru = c.clock
		return 0, false, false
	}
	c.stats.Fills++
	victim := -1
	for i := range c.sets[set] {
		if !c.sets[set][i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(c.sets[set]); i++ {
			if c.sets[set][i].lru < c.sets[set][victim].lru {
				victim = i
			}
		}
		v := &c.sets[set][victim]
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
			wasDirty = true
		}
		if m := c.om; m != nil {
			m.evictions.Inc()
			if wasDirty {
				m.writebacks.Inc()
			}
		}
		evicted = c.rebuild(set, v.tag)
		wasValid = true
	}
	c.clock++
	c.sets[set][victim] = line{tag: tag, valid: true, lru: c.clock, prefetch: prefetched}
	return evicted, wasValid, wasDirty
}

// rebuild reconstructs a block address from set index and tag.
func (c *Cache) rebuild(set, tag uint64) uint64 {
	return ((tag << c.setBits) | set) << c.blockShift
}

// Invalidate removes the block containing addr if present, returning whether
// it was present and whether it was dirty (the coherence layer needs both).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	if i := c.find(set, tag); i >= 0 {
		l := &c.sets[set][i]
		present, dirty = true, l.dirty
		*l = line{}
	}
	return present, dirty
}

// MarkDirty sets the dirty bit of a resident block (used when a store hit is
// modeled externally).
func (c *Cache) MarkDirty(addr uint64) {
	set, tag := c.index(addr)
	if i := c.find(set, tag); i >= 0 {
		c.sets[set][i].dirty = true
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, s := range c.sets {
		for _, l := range s {
			if l.valid {
				n++
			}
		}
	}
	return n
}
