package experiments

import (
	"bytes"
	"testing"

	"lva/internal/obs"
)

// TestFigureBytesUnchangedByMetrics is the determinism gate on the
// instrumentation itself: enabling the full hot-path metrics must not
// change a single figure byte.
func TestFigureBytesUnchangedByMetrics(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	off := Fig13().String()

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	ResetRunCache()
	on := Fig13().String()
	if on != off {
		t.Fatalf("figure bytes changed by enabling metrics:\noff:\n%s\non:\n%s", off, on)
	}
}

// TestMetricsSnapshotDeterministic checks the deterministic snapshot is
// byte-stable across repeated runs and across Parallelism levels: the
// singleflight run cache simulates every design point exactly once per
// cold pass, so event totals cannot depend on scheduling.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates two figures three times")
	}
	saved := Parallelism
	defer func() {
		Parallelism = saved
		ResetRunCache()
		obs.SetEnabled(false)
		obs.Default().Reset()
	}()
	obs.SetEnabled(true)

	capture := func(par int) []byte {
		Parallelism = par
		ResetRunCache()
		obs.Default().Reset()
		if _, err := RunAll("fig12", "fig13"); err != nil {
			t.Fatal(err)
		}
		b, err := obs.Default().Snapshot(false).JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	p8a := capture(8)
	p8b := capture(8)
	p1 := capture(1)
	if !bytes.Equal(p8a, p8b) {
		t.Errorf("snapshot differs between two identical Parallelism=8 runs:\n%s\n---\n%s", p8a, p8b)
	}
	if !bytes.Equal(p8a, p1) {
		t.Errorf("snapshot differs between Parallelism=8 and Parallelism=1:\n%s\n---\n%s", p8a, p1)
	}

	// Sanity: the hot-path seams actually counted.
	snap, err := obs.ParseSnapshot(p1)
	if err != nil {
		t.Fatal(err)
	}
	nonzero := map[string]bool{}
	for _, m := range snap.Metrics {
		if m.Count > 0 {
			nonzero[m.Name] = true
		}
	}
	for _, name := range []string{"memsim_load_misses", "core_trainings", "runcache_simulated", "figures_done"} {
		if !nonzero[name] {
			t.Errorf("expected %s > 0 in snapshot:\n%s", name, p1)
		}
	}
}

// TestEngineMetricsAlwaysOn checks the coarse engine counters fire without
// obs.SetEnabled, since RunCacheCounters and the -v stats are built on them.
func TestEngineMetricsAlwaysOn(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("test requires metrics disabled")
	}
	ResetRunCache()
	defer ResetRunCache()
	Fig13()
	if s := RunCacheCounters(); s.Simulated == 0 {
		t.Fatalf("runcache counters dead with metrics disabled: %+v", s)
	}
	if eng().runWall.Count() == 0 {
		t.Error("run wall-time histogram recorded nothing")
	}
}
