package memsim

import (
	"testing"

	"lva/internal/obs/attr"
)

// driveAnnotated issues a deterministic mix of annotated and plain loads
// across a few static PCs, with enough distinct blocks to force misses.
func driveAnnotated(sim *Simulator) {
	for i := 0; i < 4000; i++ {
		pc := uint64(0x400 + i%5*4)
		sim.LoadFloat(pc, uint64(0x100000+i*64), float64(i%9), true)
		sim.LoadInt(0x700, 0x2000, 7, false) // plain load, never attributed
		sim.Tick(2)
	}
}

// TestAttributionRecordsAnnotatedSites checks the simulator seam: annotated
// loads land on their issuing PCs, plain loads do not appear, and the miss
// split (covered vs fetched) is consistent with the run's totals.
func TestAttributionRecordsAnnotatedSites(t *testing.T) {
	sim := New(DefaultConfig())
	rec := attr.NewRecorder("memsim-test")
	sim.SetAttribution(rec)
	driveAnnotated(sim)
	res := sim.Result()

	s := rec.Finalize()
	if len(s.Sites) != 5 {
		t.Fatalf("sites = %d, want 5 annotated PCs (plain loads must not attribute)", len(s.Sites))
	}
	var loads, misses, covered uint64
	for _, st := range s.Sites {
		loads += st.Loads
		misses += st.Misses
		covered += st.Covered
	}
	if loads != 4000 {
		t.Fatalf("attributed loads = %d, want 4000", loads)
	}
	if misses == 0 || covered == 0 {
		t.Fatalf("expected misses and coverage, got %d/%d", misses, covered)
	}
	if covered != res.Covered {
		t.Fatalf("attributed covered = %d, simulator counted %d", covered, res.Covered)
	}
}

// TestAttributionPreciseAttachmentFetches checks the uncovered-miss path:
// under AttachNone every annotated miss attributes as an uncovered fetch.
func TestAttributionPreciseAttachmentFetches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Attach = AttachNone
	sim := New(cfg)
	rec := attr.NewRecorder("memsim-precise")
	sim.SetAttribution(rec)
	driveAnnotated(sim)

	s := rec.Finalize()
	var misses, covered, fetches uint64
	for _, st := range s.Sites {
		misses += st.Misses
		covered += st.Covered
		fetches += st.Fetches
	}
	if misses == 0 {
		t.Fatal("expected annotated misses under AttachNone")
	}
	if covered != 0 {
		t.Fatalf("covered = %d under AttachNone, want 0", covered)
	}
	if fetches != misses {
		t.Fatalf("fetches = %d, want %d (every precise miss fetches)", fetches, misses)
	}
}

// TestAttributionEpochsTrackInstructions checks the epoch seam end to end
// through the simulator: windows seal on annotated-load counts and carry
// instruction deltas from the simulator's running count.
func TestAttributionEpochsTrackInstructions(t *testing.T) {
	attr.SetEpochWindow(500)
	defer attr.SetEpochWindow(attr.DefaultEpochWindow)
	sim := New(DefaultConfig())
	rec := attr.NewRecorder("memsim-epochs")
	sim.SetAttribution(rec)
	driveAnnotated(sim)

	s := rec.Finalize()
	if len(s.Epochs) != 8 {
		t.Fatalf("epochs = %d, want 8 (4000 annotated loads / 500)", len(s.Epochs))
	}
	for i, e := range s.Epochs {
		if e.Loads != 500 {
			t.Fatalf("epoch %d loads = %d, want 500", i, e.Loads)
		}
		if e.Insts == 0 {
			t.Fatalf("epoch %d has zero instruction delta", i)
		}
	}
}

// TestAttributionSteadyStateAllocFree pins the recorder's own hot methods:
// once the site table holds the run's static PCs and the epoch ring is at
// capacity, attributing a load/miss/training allocates nothing.
func TestAttributionSteadyStateAllocFree(t *testing.T) {
	attr.SetEpochWindow(64)
	defer attr.SetEpochWindow(attr.DefaultEpochWindow)
	cfg := DefaultConfig()
	cfg.Approx.ValueDelay = 0
	sim := New(cfg)
	rec := attr.NewRecorder("memsim-allocs")
	sim.SetAttribution(rec)
	driveAnnotated(sim) // warms the site table and seals epochs into the preallocated ring
	addr := uint64(0x900000)
	i := 0
	assertZeroAllocs(t, "attributed covered miss", func() {
		sim.LoadFloat(uint64(0x400+i%5*4), addr, 1, true)
		addr += 64
		i++
	})
}

// TestAttributionDoesNotChangeResults pins the observer contract: wiring a
// recorder must not perturb any simulation metric.
func TestAttributionDoesNotChangeResults(t *testing.T) {
	run := func(wire bool) Result {
		sim := New(DefaultConfig())
		if wire {
			sim.SetAttribution(attr.NewRecorder("observer"))
		}
		driveAnnotated(sim)
		return sim.Result()
	}
	if run(false) != run(true) {
		t.Fatal("attaching a recorder changed simulation results")
	}
}
