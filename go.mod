module lva

go 1.22
