package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"lva/internal/memsim"
	"lva/internal/prefetch"
	"lva/internal/trace"
	"lva/internal/workloads"
)

// attachCase is one (attachment, configuration) design point used by the
// replay-fidelity tests.
type attachCase struct {
	name string
	cfg  memsim.Config
}

// attachCases returns the four attachment modes at their baseline
// configurations for w.
func attachCases(w workloads.Workload) []attachCase {
	precise := memsim.DefaultConfig()
	precise.Attach = memsim.AttachNone

	lva := memsim.DefaultConfig()
	lva.Attach = memsim.AttachLVA
	lva.Approx = BaselineFor(w)

	lvp := memsim.DefaultConfig()
	lvp.Attach = memsim.AttachLVP
	lvp.Approx = BaselineFor(w)

	pf := memsim.DefaultConfig()
	pf.Attach = memsim.AttachPrefetch
	pcfg := prefetch.DefaultConfig()
	pcfg.Degree = 4
	pf.Prefetch = pcfg

	return []attachCase{
		{"precise", precise},
		{"lva-baseline", lva},
		{"lvp-baseline", lvp},
		{"prefetch-4", pf},
	}
}

// recordGrid executes w under cfg with the grid capture sink attached and
// returns the encoded stream, its header, and the executed counters.
func recordGrid(t *testing.T, w workloads.Workload, cfg memsim.Config) ([]byte, trace.GridHeader, memsim.Result) {
	t.Helper()
	var buf bytes.Buffer
	gw := trace.NewGridWriter(&buf, w.Name(), "test/"+w.Name(), DefaultSeed)
	sim := memsim.New(cfg)
	sim.SetGridCapture(gw)
	w.Run(sim, DefaultSeed)
	res := sim.Result()
	hdr, err := gw.Finish(res.Instructions, nil)
	if err != nil {
		t.Fatalf("%s: finishing grid capture: %v", w.Name(), err)
	}
	return buf.Bytes(), hdr, res
}

// replayGrid decodes an encoded stream once and drives one fresh simulator
// per configuration, returning their counters in order.
func replayGrid(t *testing.T, enc []byte, hdr trace.GridHeader, cfgs []memsim.Config) []memsim.Result {
	t.Helper()
	gr, err := trace.NewGridReader(bytes.NewReader(enc))
	if err != nil {
		t.Fatalf("opening grid reader: %v", err)
	}
	sims := make([]*memsim.Sim, len(cfgs))
	for i, cfg := range cfgs {
		sims[i] = memsim.New(cfg)
	}
	if err := memsim.Replay(gr, hdr.Instructions, sims); err != nil {
		t.Fatalf("replay: %v", err)
	}
	out := make([]memsim.Result, len(sims))
	for i, s := range sims {
		out[i] = s.Result()
	}
	return out
}

// execute runs w under cfg with no capture attached and returns its
// counters — the ground truth replay must reproduce.
func execute(w workloads.Workload, cfg memsim.Config) memsim.Result {
	sim := memsim.New(cfg)
	w.Run(sim, DefaultSeed)
	return sim.Result()
}

// TestReplayMatchesExecution is the fidelity contract of the grid pipeline:
// for every workload and every attachment mode, recording the annotated
// stream and replaying it through a fresh simulator of the same
// configuration yields counters identical to direct execution — misses,
// fetches, coverage, trainings, every field of memsim.Result.
func TestReplayMatchesExecution(t *testing.T) {
	if raceEnabled {
		t.Skip("28 instrumented kernel executions exceed the race budget; TestFigureGoldenHashes exercises replay under race")
	}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			for _, tc := range attachCases(w) {
				enc, hdr, executed := recordGrid(t, w, tc.cfg)
				replayed := replayGrid(t, enc, hdr, []memsim.Config{tc.cfg})[0]
				if executed != replayed {
					t.Errorf("%s: replayed counters differ from execution:\nexecuted: %+v\nreplayed: %+v", tc.name, executed, replayed)
				}
				if hdr.Accesses == 0 {
					t.Errorf("%s: recorded stream is empty", tc.name)
				}
			}
		})
	}
}

// TestPreciseStreamServesAnyConfig is the routing contract behind the
// replay scheduler: one precise recording serves every LVP and prefetch
// configuration exactly (neither ever hands a value back to the kernel),
// and on feedback-free kernels it serves arbitrary LVA configurations too.
// A single decode pass drives all design points at once.
func TestPreciseStreamServesAnyConfig(t *testing.T) {
	if raceEnabled {
		t.Skip("per-workload execute-vs-replay sweeps exceed the race budget; TestFigureGoldenHashes exercises replay under race")
	}
	precise := memsim.DefaultConfig()
	precise.Attach = memsim.AttachNone
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			enc, hdr, _ := recordGrid(t, w, precise)

			var cases []attachCase
			for _, ghb := range []int{0, 2} {
				cfg := memsim.DefaultConfig()
				cfg.Attach = memsim.AttachLVP
				cfg.Approx = BaselineFor(w)
				cfg.Approx.GHBSize = ghb
				cases = append(cases, attachCase{fmt.Sprintf("lvp-ghb-%d", ghb), cfg})
			}
			for _, deg := range []int{1, 8} {
				cfg := memsim.DefaultConfig()
				cfg.Attach = memsim.AttachPrefetch
				pcfg := prefetch.DefaultConfig()
				pcfg.Degree = deg
				cfg.Prefetch = pcfg
				cases = append(cases, attachCase{fmt.Sprintf("prefetch-%d", deg), cfg})
			}
			if w.FeedbackFree() {
				cfg := memsim.DefaultConfig()
				cfg.Attach = memsim.AttachLVA
				cfg.Approx = BaselineFor(w)
				cfg.Approx.GHBSize = 2
				cfg.Approx.Degree = 4
				cases = append(cases, attachCase{"lva-ghb-2-deg-4", cfg})
			}

			cfgs := make([]memsim.Config, len(cases))
			for i, c := range cases {
				cfgs[i] = c.cfg
			}
			replayed := replayGrid(t, enc, hdr, cfgs)
			for i, c := range cases {
				if executed := execute(w, c.cfg); executed != replayed[i] {
					t.Errorf("%s: precise-stream replay differs from execution:\nexecuted: %+v\nreplayed: %+v", c.name, executed, replayed[i])
				}
			}
		})
	}
}

// TestStreamRecordOnce pins the dedup accounting of the trace store across
// three counter figures: each distinct (kind, workload, seed) stream is
// simulated from the kernel at most once per process, and a second
// "process" (ResetRunCache with the trace directory kept) serves the whole
// of Table 1 from on-disk footers with zero simulation.
func TestStreamRecordOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three figures twice")
	}
	if raceEnabled {
		t.Skip("29 kernel simulations exceed the race budget; the replay paths run race-instrumented under TestFigureGoldenHashes")
	}
	SetTraceDir(t.TempDir())
	defer SetTraceDir("")
	ResetRunCache()
	defer ResetRunCache()

	cold := Table1().String()
	Fig4()
	Fig12()

	ts := TraceCounters()
	// Streams: 7 precise + 7 LVA-baseline, each recorded exactly once even
	// though Table 1, Fig 4 and Fig 12 all touch them.
	if ts.Recordings != 14 {
		t.Errorf("Recordings = %d, want 14 (7 precise + 7 lvabase)", ts.Recordings)
	}
	// Header points: Table 1 (7 precise + 7 baseline) + Fig 4 (7 precise +
	// 7 LVA-GHB-0 baselines) + Fig 12 (7 baselines).
	if ts.HeaderHits != 35 {
		t.Errorf("HeaderHits = %d, want 35", ts.HeaderHits)
	}
	// Fig 4 replays: 28 LVP points (4 GHB sizes x 7) plus LVA GHB 1/2/4 on
	// the two feedback-free kernels; one decode pass per workload.
	if ts.ReplayPoints != 34 {
		t.Errorf("ReplayPoints = %d, want 34 (28 LVP + 6 feedback-free LVA)", ts.ReplayPoints)
	}
	if ts.ReplayPasses != 7 {
		t.Errorf("ReplayPasses = %d, want 7 (one decode per workload)", ts.ReplayPasses)
	}
	// Fig 4's LVA GHB 1/2/4 points on the five feedback kernels must
	// re-execute: their annotated loads observe approximator output.
	if ts.ExecPoints != 15 {
		t.Errorf("ExecPoints = %d, want 15 (3 GHB sizes x 5 feedback kernels)", ts.ExecPoints)
	}
	// Kernel executions overall: the 14 recordings plus the 15 feedback
	// points. Nothing else touches a kernel.
	if s := RunCacheCounters(); s.Simulated != 29 {
		t.Errorf("Simulated = %d, want 29 (14 recordings + 15 feedback points): %+v", s.Simulated, s)
	}

	// Second process: the run cache resets but the explicit trace directory
	// survives, so Table 1 is served entirely from recorded footers.
	ResetRunCache()
	warm := Table1().String()
	if warm != cold {
		t.Errorf("warm-store Table 1 differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	ts = TraceCounters()
	if ts.Recordings != 0 {
		t.Errorf("warm store re-recorded %d streams, want 0", ts.Recordings)
	}
	if ts.HeaderHits != 14 {
		t.Errorf("warm HeaderHits = %d, want 14", ts.HeaderHits)
	}
	if s := RunCacheCounters(); s.Simulated != 0 {
		t.Errorf("warm store simulated %d kernels, want 0: %+v", s.Simulated, s)
	}
}

// TestFigureGoldenHashesReplayOff renders the full registry with the
// record/replay pipeline disabled and checks every figure against the same
// golden hashes the replay-enabled run must match — the two execution
// strategies are byte-equivalent.
func TestFigureGoldenHashesReplayOff(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full registry")
	}
	if raceEnabled {
		t.Skip("a second full-registry render exceeds the race budget; the replay-on twin runs race-instrumented")
	}
	SetReplayEnabled(false)
	defer SetReplayEnabled(true)
	ResetRunCache()
	defer ResetRunCache()

	got := figureHashes(t)
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden: reading %s: %v", goldenPath, err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("golden: parsing %s: %v", goldenPath, err)
	}
	for id, h := range got {
		if w, ok := want[id]; ok && h != w {
			t.Errorf("golden: figure %q with replay off hashed %s, want %s — execution and replay disagree", id, h, w)
		}
	}
}
