// Grid traces are the record-once/replay-many encoding behind the phase-1
// design grid: one file per distinct (workload, seed) annotated access
// stream, written while the kernel executes once and replayed against every
// cache/approximator configuration afterwards. The paper's annotation rules
// (§IV: no approximate data in control flow, addresses, or denominators)
// make the precise (PC, addr, value) stream config-invariant, so the
// recording is reusable across the whole grid.
//
// Unlike the flat LVAT format (Write/Read), grid traces stream: accesses
// are delta-encoded into fixed-size chunks so neither the writer nor the
// reader ever materializes the whole stream, and the self-describing header
// travels in a footer (counts are unknown until the run finishes) that a
// stat tool can fetch with one seek.
//
// Layout (all little-endian):
//
//	magic u32 "LVAG" | version u32
//	chunk*:  count u32 (>0) | payloadLen u32 | payload
//	footer:  count u32 (=0) | footerLen u32 | GridHeader JSON
//	         | footerLen u32 | magic u32        (trailer, for ReadGridFooter)
//
// Per access the payload carries: a flags byte; the thread id (only when it
// changed); the TRUE global instruction gap since the previous access as a
// uvarint (the writer does not clamp — the reader reconstructs exact global
// instruction indices from it, then derives the clamped per-thread Gap the
// in-memory Access carries); the PC and address as zigzag varint deltas
// against the previous access; and for loads the precise value — 8 raw
// bytes for floats, a zigzag varint for ints, elided entirely when it
// exactly repeats the previous load's value.
package trace

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"lva/internal/value"
)

const (
	gridMagic   = uint32(0x4C564147) // "LVAG"
	gridVersion = uint32(1)

	gridStore        = 1 << 0
	gridApprox       = 1 << 1
	gridFloat        = 1 << 2
	gridValueRepeat  = 1 << 3
	gridThreadChange = 1 << 4

	// gridChunkAccesses caps accesses per chunk: large enough to amortize
	// framing, small enough that replay decodes into a reusable buffer.
	gridChunkAccesses = 4096
	// maxGridPayload bounds a chunk payload; the worst legal case
	// (gridChunkAccesses accesses at maximum varint width) is ~170 KB, so
	// anything above 1 MB is corruption, not data.
	maxGridPayload = 1 << 20
	maxGridFooter  = 1 << 20
)

// Grid decode errors. Decoding never panics: arbitrary bytes either parse
// or surface one of these (possibly wrapped with position context).
var (
	errGridMagic    = errors.New("trace: bad grid magic")
	errGridVersion  = errors.New("trace: unsupported grid version")
	errGridChunk    = errors.New("trace: corrupt grid chunk")
	errGridFooter   = errors.New("trace: corrupt grid footer")
	errGridFinished = errors.New("trace: grid writer already finished")
)

// GridHeader describes a recorded grid stream. It is written as the file's
// JSON footer and doubles as the replay front-end's summary of the
// recording run: Meta carries the recording simulation's marshaled result
// so counter figures can be served without touching the kernel again.
type GridHeader struct {
	// Name is the workload name.
	Name string
	// Key is the run-cache key of the recording run, tying the file to the
	// exact (attachment, workload, config, seed) that produced it.
	Key string
	// Seed is the workload RNG seed.
	Seed uint64

	Accesses    uint64
	Loads       uint64
	Stores      uint64
	ApproxLoads uint64
	// Instructions is the recording run's final instruction count,
	// including trailing Tick work after the last access.
	Instructions uint64
	// Threads is 1 + the highest thread id recorded.
	Threads int
	Chunks  uint64

	// Meta is opaque recorder payload (the experiments layer stores the
	// recording run's memsim.Result here).
	Meta json.RawMessage
}

// GridWriter streams accesses into the chunked grid encoding. Errors are
// sticky: Access becomes a no-op after the first write failure and Finish
// reports it. Not safe for concurrent use.
type GridWriter struct {
	w   io.Writer
	err error

	name string
	key  string
	seed uint64

	buf   []byte
	count int

	prevPC     uint64
	prevAddr   uint64
	prevVal    value.Value
	lastThread uint8
	lastEnd    uint64 // global instruction index just past the previous access

	accesses    uint64
	loads       uint64
	stores      uint64
	approxLoads uint64
	threads     int
	chunks      uint64
	finished    bool
}

// NewGridWriter starts a grid stream on w, writing the file preamble
// immediately. name/key/seed are recorded verbatim into the footer.
func NewGridWriter(w io.Writer, name, key string, seed uint64) *GridWriter {
	g := &GridWriter{w: w, name: name, key: key, seed: seed}
	var pre [8]byte
	binary.LittleEndian.PutUint32(pre[0:], gridMagic)
	binary.LittleEndian.PutUint32(pre[4:], gridVersion)
	if _, err := w.Write(pre[:]); err != nil {
		g.err = err
	}
	return g
}

// Access appends one access. insts is the global instruction count at the
// moment of the access (before the access instruction itself retires),
// exactly what the simulator's capture hook observes; the writer stores the
// unclamped global gap so replay can reconstruct exact instruction indices.
func (g *GridWriter) Access(pc, addr uint64, v value.Value, op Op, approx bool, thread uint8, insts uint64) {
	if g.err != nil {
		return
	}
	var flags byte
	if op == Store {
		flags = gridStore
	}
	if approx {
		flags |= gridApprox
	}
	repeat := false
	if op == Load {
		if v.Kind == value.Float {
			flags |= gridFloat
		}
		if v == g.prevVal {
			repeat = true
			flags |= gridValueRepeat
		}
	}
	threadChanged := thread != g.lastThread
	if threadChanged {
		flags |= gridThreadChange
	}
	b := append(g.buf, flags)
	if threadChanged {
		b = append(b, thread)
		g.lastThread = thread
	}
	// The access instruction itself is not part of the next gap (mirrors
	// the capture hook's bookkeeping).
	b = binary.AppendUvarint(b, insts-g.lastEnd)
	g.lastEnd = insts + 1
	b = binary.AppendVarint(b, int64(pc-g.prevPC))
	b = binary.AppendVarint(b, int64(addr-g.prevAddr))
	g.prevPC, g.prevAddr = pc, addr
	if op == Load {
		if !repeat {
			if v.Kind == value.Float {
				b = binary.LittleEndian.AppendUint64(b, v.Bits)
			} else {
				b = binary.AppendVarint(b, int64(v.Bits))
			}
		}
		g.prevVal = v
		g.loads++
		if approx {
			g.approxLoads++
		}
	} else {
		g.stores++
	}
	g.buf = b
	if int(thread) >= g.threads {
		g.threads = int(thread) + 1
	}
	g.accesses++
	g.count++
	if g.count >= gridChunkAccesses {
		g.flushChunk()
	}
}

// flushChunk frames and writes the buffered accesses.
func (g *GridWriter) flushChunk() {
	if g.count == 0 || g.err != nil {
		return
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(g.count))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(g.buf)))
	if _, err := g.w.Write(hdr[:]); err != nil {
		g.err = err
		return
	}
	if _, err := g.w.Write(g.buf); err != nil {
		g.err = err
		return
	}
	g.chunks++
	g.count = 0
	g.buf = g.buf[:0]
}

// Finish flushes the final chunk and writes the footer. instructions is the
// recording run's final instruction count; meta is stored opaquely in the
// header. It returns the header it wrote (also on the writer's behalf the
// first sticky error, if any). The writer is unusable afterwards.
func (g *GridWriter) Finish(instructions uint64, meta json.RawMessage) (GridHeader, error) {
	if g.finished {
		return GridHeader{}, errGridFinished
	}
	g.finished = true
	g.flushChunk()
	if g.err != nil {
		return GridHeader{}, g.err
	}
	hdr := GridHeader{
		Name:         g.name,
		Key:          g.key,
		Seed:         g.seed,
		Accesses:     g.accesses,
		Loads:        g.loads,
		Stores:       g.stores,
		ApproxLoads:  g.approxLoads,
		Instructions: instructions,
		Threads:      g.threads,
		Chunks:       g.chunks,
		Meta:         meta,
	}
	foot, err := json.Marshal(hdr)
	if err != nil {
		return GridHeader{}, err
	}
	if len(foot) > maxGridFooter {
		return GridHeader{}, fmt.Errorf("%w: footer %d bytes exceeds cap", errGridFooter, len(foot))
	}
	var fh [8]byte
	binary.LittleEndian.PutUint32(fh[0:], 0) // count=0 marks the footer
	binary.LittleEndian.PutUint32(fh[4:], uint32(len(foot)))
	if _, err := g.w.Write(fh[:]); err != nil {
		return GridHeader{}, err
	}
	if _, err := g.w.Write(foot); err != nil {
		return GridHeader{}, err
	}
	var trail [8]byte
	binary.LittleEndian.PutUint32(trail[0:], uint32(len(foot)))
	binary.LittleEndian.PutUint32(trail[4:], gridMagic)
	if _, err := g.w.Write(trail[:]); err != nil {
		return GridHeader{}, err
	}
	return hdr, nil
}

// ChunkSource yields a grid stream chunk by chunk: each Next returns the
// decoded accesses plus, for each, the global instruction index at which it
// occurred. It returns io.EOF after the final chunk. Returned slices are
// only valid until the next call — consumers that retain must copy.
type ChunkSource interface {
	Next() ([]Access, []uint64, error)
}

// GridReader streams a grid trace back out of r, reversing the delta
// encoding. It implements ChunkSource with reused buffers.
type GridReader struct {
	r    io.Reader
	hdr  GridHeader
	done bool

	payload []byte
	accs    []Access
	insts   []uint64

	prevPC        uint64
	prevAddr      uint64
	prevVal       value.Value
	lastThread    uint8
	lastEndGlobal uint64
	lastEndThread [256]uint64

	chunks    uint64
	accesses  uint64
	bytes     uint64
	lastBytes int
}

// NewGridReader validates the preamble and positions the reader at the
// first chunk.
func NewGridReader(r io.Reader) (*GridReader, error) {
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, fmt.Errorf("trace: reading grid preamble: %w", err)
	}
	if m := binary.LittleEndian.Uint32(pre[0:]); m != gridMagic {
		return nil, fmt.Errorf("%w %#x", errGridMagic, m)
	}
	if v := binary.LittleEndian.Uint32(pre[4:]); v != gridVersion {
		return nil, fmt.Errorf("%w %d", errGridVersion, v)
	}
	return &GridReader{r: r}, nil
}

// Header returns the footer header; valid only after Next returned io.EOF.
func (g *GridReader) Header() (GridHeader, bool) { return g.hdr, g.done }

// Next implements ChunkSource.
func (g *GridReader) Next() ([]Access, []uint64, error) {
	if g.done {
		return nil, nil, io.EOF
	}
	var hdr [8]byte
	if _, err := io.ReadFull(g.r, hdr[:]); err != nil {
		return nil, nil, fmt.Errorf("trace: reading grid chunk header: %w", err)
	}
	count := int(binary.LittleEndian.Uint32(hdr[0:]))
	size := int(binary.LittleEndian.Uint32(hdr[4:]))
	if count == 0 {
		return nil, nil, g.readFooter(size)
	}
	if count > gridChunkAccesses {
		return nil, nil, fmt.Errorf("%w: %d accesses exceeds chunk cap", errGridChunk, count)
	}
	if size > maxGridPayload {
		return nil, nil, fmt.Errorf("%w: %d-byte payload exceeds cap", errGridChunk, size)
	}
	if cap(g.payload) < size {
		g.payload = make([]byte, size)
	}
	p := g.payload[:size]
	if _, err := io.ReadFull(g.r, p); err != nil {
		return nil, nil, fmt.Errorf("trace: reading grid chunk payload: %w", err)
	}
	if cap(g.accs) < count {
		g.accs = make([]Access, count)
		g.insts = make([]uint64, count)
	}
	accs, insts := g.accs[:count], g.insts[:count]
	pos := 0
	for i := 0; i < count; i++ {
		if pos >= len(p) {
			return nil, nil, fmt.Errorf("%w: truncated at access %d", errGridChunk, i)
		}
		flags := p[pos]
		pos++
		thread := g.lastThread
		if flags&gridThreadChange != 0 {
			if pos >= len(p) {
				return nil, nil, fmt.Errorf("%w: truncated thread at access %d", errGridChunk, i)
			}
			thread = p[pos]
			pos++
			g.lastThread = thread
		}
		gap, n := binary.Uvarint(p[pos:])
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: bad gap varint at access %d", errGridChunk, i)
		}
		pos += n
		dpc, n := binary.Varint(p[pos:])
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: bad pc varint at access %d", errGridChunk, i)
		}
		pos += n
		daddr, n := binary.Varint(p[pos:])
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: bad addr varint at access %d", errGridChunk, i)
		}
		pos += n
		g.prevPC += uint64(dpc)
		g.prevAddr += uint64(daddr)

		// Reconstruct the exact global instruction index, then the clamped
		// per-thread gap the in-memory Access format carries (identical to
		// the capture hook's own derivation).
		at := g.lastEndGlobal + gap
		g.lastEndGlobal = at + 1
		perGap := at - g.lastEndThread[thread]
		if perGap > 1<<30 {
			perGap = 1 << 30
		}
		g.lastEndThread[thread] = at + 1

		a := Access{PC: g.prevPC, Addr: g.prevAddr, Gap: uint32(perGap), Thread: thread, Approx: flags&gridApprox != 0}
		if flags&gridStore != 0 {
			a.Op = Store
		} else {
			switch {
			case flags&gridValueRepeat != 0:
				a.Value = g.prevVal
			case flags&gridFloat != 0:
				if pos+8 > len(p) {
					return nil, nil, fmt.Errorf("%w: truncated float value at access %d", errGridChunk, i)
				}
				a.Value = value.Value{Bits: binary.LittleEndian.Uint64(p[pos:]), Kind: value.Float}
				pos += 8
			default:
				iv, n := binary.Varint(p[pos:])
				if n <= 0 {
					return nil, nil, fmt.Errorf("%w: bad value varint at access %d", errGridChunk, i)
				}
				pos += n
				a.Value = value.Value{Bits: uint64(iv), Kind: value.Int}
			}
			g.prevVal = a.Value
		}
		accs[i] = a
		insts[i] = at
	}
	if pos != len(p) {
		return nil, nil, fmt.Errorf("%w: %d trailing payload bytes", errGridChunk, len(p)-pos)
	}
	g.chunks++
	g.accesses += uint64(count)
	g.bytes += uint64(size) + 8
	g.lastBytes = size + 8
	return accs, insts, nil
}

// DecodedStats reports how much of the stream Next has decoded so far:
// whole chunks, accesses, and payload bytes including the 8-byte
// per-chunk framing (the footer and preamble are excluded).
func (g *GridReader) DecodedStats() (chunks, accesses, bytes uint64) {
	return g.chunks, g.accesses, g.bytes
}

// LastChunkBytes returns the framed size of the most recent chunk Next
// decoded, or 0 before the first chunk.
func (g *GridReader) LastChunkBytes() int { return g.lastBytes }

// readFooter consumes the footer and trailer, then reports io.EOF.
func (g *GridReader) readFooter(size int) error {
	if size > maxGridFooter {
		return fmt.Errorf("%w: %d bytes exceeds cap", errGridFooter, size)
	}
	foot := make([]byte, size)
	if _, err := io.ReadFull(g.r, foot); err != nil {
		return fmt.Errorf("trace: reading grid footer: %w", err)
	}
	if err := json.Unmarshal(foot, &g.hdr); err != nil {
		return fmt.Errorf("%w: %v", errGridFooter, err)
	}
	var trail [8]byte
	if _, err := io.ReadFull(g.r, trail[:]); err != nil {
		return fmt.Errorf("trace: reading grid trailer: %w", err)
	}
	if binary.LittleEndian.Uint32(trail[0:]) != uint32(size) ||
		binary.LittleEndian.Uint32(trail[4:]) != gridMagic {
		return fmt.Errorf("%w: bad trailer", errGridFooter)
	}
	g.done = true
	return io.EOF
}

// ReadGridFooter fetches a grid trace's header via the fixed-size trailer
// at the end of the file, without decoding any chunks.
func ReadGridFooter(rs io.ReadSeeker) (GridHeader, error) {
	if _, err := rs.Seek(-8, io.SeekEnd); err != nil {
		return GridHeader{}, fmt.Errorf("trace: seeking grid trailer: %w", err)
	}
	var trail [8]byte
	if _, err := io.ReadFull(rs, trail[:]); err != nil {
		return GridHeader{}, fmt.Errorf("trace: reading grid trailer: %w", err)
	}
	if m := binary.LittleEndian.Uint32(trail[4:]); m != gridMagic {
		return GridHeader{}, fmt.Errorf("%w %#x in trailer", errGridMagic, m)
	}
	size := int64(binary.LittleEndian.Uint32(trail[0:]))
	if size > maxGridFooter {
		return GridHeader{}, fmt.Errorf("%w: %d bytes exceeds cap", errGridFooter, size)
	}
	if _, err := rs.Seek(-(8 + size), io.SeekEnd); err != nil {
		return GridHeader{}, fmt.Errorf("trace: seeking grid footer: %w", err)
	}
	foot := make([]byte, size)
	if _, err := io.ReadFull(rs, foot); err != nil {
		return GridHeader{}, fmt.Errorf("trace: reading grid footer: %w", err)
	}
	var hdr GridHeader
	if err := json.Unmarshal(foot, &hdr); err != nil {
		return GridHeader{}, fmt.Errorf("%w: %v", errGridFooter, err)
	}
	return hdr, nil
}
