package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"sort"
	"strings"

	"lva/internal/lint/flow"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks findings cancelled by a //lint:ignore comment.
	Suppressed bool
	// SuppressReason is the justification given in the ignore comment.
	SuppressReason string
}

// String renders the finding in the canonical file:line: [analyzer] form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one invariant checker. An analyzer is per-package (Run),
// whole-program (RunProgram, with the interprocedural flow graph), or —
// rarely — both.
type Analyzer struct {
	// Name is the id used in reports and //lint:ignore comments.
	Name string
	// Doc is a one-line description for the driver's usage text.
	Doc string
	// Run inspects one package and reports findings through the pass.
	// May be nil for whole-program analyzers.
	Run func(*Pass)
	// RunProgram inspects the entire loaded package set at once, with the
	// flow call graph available; it runs after every per-package pass.
	// May be nil for per-package analyzers.
	RunProgram func(*ProgramPass)
}

// Pass carries one (package, analyzer) execution.
type Pass struct {
	Pkg      *Package
	Fset     *token.FileSet
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ProgramPass carries one whole-program analyzer execution: every loaded
// package plus the interprocedural flow graph built over them.
type ProgramPass struct {
	Pkgs     []*Package
	Fset     *token.FileSet
	Graph    *flow.Graph
	analyzer *Analyzer
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *ProgramPass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// flowPkgs converts the lint loader's packages to the flow package's
// structural mirror.
func flowPkgs(pkgs []*Package) []*flow.Pkg {
	out := make([]*flow.Pkg, len(pkgs))
	for i, p := range pkgs {
		out[i] = &flow.Pkg{Path: p.Path, Files: p.Files, Types: p.Types, Info: p.Info}
	}
	return out
}

// isFixturePath reports whether the package is a lint test fixture; fixtures
// opt in to every analyzer regardless of its normal package scope.
func isFixturePath(path string) bool {
	return strings.Contains(path, "/lint/testdata/")
}

// isInternalPath reports whether the package sits under the module's
// internal/ tree.
func isInternalPath(path string) bool {
	return strings.Contains(path, "/internal/")
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		seedrandAnalyzer,
		cfgvalidateAnalyzer,
		nopanicAnalyzer,
		loopcaptureAnalyzer,
		detfloatAnalyzer,
		obshooksAnalyzer,
		hotpathAnalyzer,
		mapiterAnalyzer,
		detsyncAnalyzer,
		allocbudgetAnalyzer,
	}
}

// EnabledAnalyzers returns the suite minus the comma-separated names in
// the LVALINT_SKIP environment variable. The escape hatch exists for
// analyzers tied to toolchain specifics — allocbudget asserts compiler
// inlining/escape diagnostics, which shift across Go releases — so a
// machine on a different compiler can keep the rest of the gate green
// (e.g. LVALINT_SKIP=allocbudget).
func EnabledAnalyzers() []*Analyzer {
	skip := make(map[string]bool)
	for _, name := range strings.Split(os.Getenv("LVALINT_SKIP"), ",") {
		if name = strings.TrimSpace(name); name != "" {
			skip[name] = true
		}
	}
	var out []*Analyzer
	for _, a := range Analyzers() {
		if !skip[a.Name] {
			out = append(out, a)
		}
	}
	return out
}

// AnalyzerByName returns the named analyzer or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	analyzer string // specific analyzer name or "all"
	reason   string
	pos      token.Position
	used     bool
}

// suppressionKey addresses a suppression by file and line.
type suppressionKey struct {
	file string
	line int
}

// collectSuppressions parses //lint:ignore <analyzer> <reason> comments.
// A suppression cancels matching findings on its own line and on the line
// immediately below (so it can trail a statement or precede one). A
// suppression must carry both a known analyzer name and a non-empty
// justification: a bare `//lint:ignore <analyzer>`, a reason with no
// recognized analyzer in front of it, or a typo'd analyzer name is itself
// reported as a finding of the "lint" pseudo analyzer — malformed
// suppressions must never silently disable checks.
func collectSuppressions(fset *token.FileSet, pkgs []*Package) (map[suppressionKey]*suppression, []Finding) {
	sups := make(map[suppressionKey]*suppression)
	var malformed []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					if text != "" && text[0] != ' ' && text[0] != '\t' {
						continue // some other //lint:ignoreXYZ directive, not ours
					}
					fields := strings.Fields(text)
					pos := fset.Position(c.Pos())
					if len(fields) < 2 {
						malformed = append(malformed, Finding{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed //lint:ignore: need an analyzer name followed by a non-empty reason",
						})
						continue
					}
					if fields[0] != "all" && AnalyzerByName(fields[0]) == nil {
						malformed = append(malformed, Finding{
							Analyzer: "lint",
							Pos:      pos,
							Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q: a typo here would silently disable nothing while looking safe", fields[0]),
						})
						continue
					}
					s := &suppression{analyzer: fields[0], reason: strings.Join(fields[1:], " "), pos: pos}
					sups[suppressionKey{pos.Filename, pos.Line}] = s
				}
			}
		}
	}
	return sups, malformed
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppressions and returns all findings (suppressed ones included, marked)
// sorted by position. Per-package analyzers run first; whole-program
// analyzers then share one interprocedural flow graph built over the full
// package set. A suppression whose analyzer ran but cancelled nothing is
// reported as stale, so suppressions cannot outlive the code they excuse.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{Pkg: pkg, Fset: fset, analyzer: a, findings: &findings}
			a.Run(pass)
		}
	}
	var graph *flow.Graph
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if graph == nil {
			graph = flow.Build(fset, flowPkgs(pkgs))
		}
		a.RunProgram(&ProgramPass{Pkgs: pkgs, Fset: fset, Graph: graph, analyzer: a, findings: &findings})
	}
	sups, malformed := collectSuppressions(fset, pkgs)
	for i := range findings {
		f := &findings[i]
		for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
			s, ok := sups[suppressionKey{f.Pos.Filename, line}]
			if ok && (s.analyzer == "all" || s.analyzer == f.Analyzer) {
				f.Suppressed = true
				f.SuppressReason = s.reason
				s.used = true
				break
			}
		}
	}
	findings = append(findings, malformed...)
	// A named suppression whose analyzer ran in this pass but matched no
	// finding is stale: the code it excused is gone (or never tripped),
	// and keeping it around masks future regressions on that line.
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, s := range sups {
		if !s.used && s.analyzer != "all" && ran[s.analyzer] {
			findings = append(findings, Finding{
				Analyzer: "lint",
				Pos:      s.pos,
				Message:  fmt.Sprintf("stale //lint:ignore %s: the analyzer reports nothing here; delete the suppression", s.analyzer),
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// Unsuppressed filters findings down to the ones that should fail the gate.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// enclosingFuncDecl returns the function declaration containing pos, if any.
func enclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
