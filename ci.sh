#!/usr/bin/env bash
# ci.sh — the repository's full verification gate. Run it locally before
# pushing; .github/workflows/ci.yml runs the same steps.
#
#   build  — go build ./...
#   vet    — go vet ./...
#   lint   — go run ./cmd/lvalint ./...   (project invariants, see DESIGN.md)
#   test   — go test ./...
#   race   — go test -race ./...
#
# `./ci.sh bench [-baseline FILE]` instead runs the benchmark suite once
# (-benchtime=1x), writes the machine-readable go-test event stream to
# BENCH_<stamp>.json, and regenerates every figure with `lvaexp -metrics
# -timeline -manifest -phase` so the deterministic metrics snapshot
# (METRICS_<stamp>.json), the Perfetto-loadable run timeline
# (TIMELINE_<stamp>.json), the provenance manifest (PROV_<stamp>.json),
# and the phase-observatory snapshot (PHASE_<stamp>.json) are archived
# next to it; the manifest is then schema-validated and route-reconciled
# via `lvareport -provenance`, which fails the run on any drift. It then
# compares the fresh snapshot against a baseline via cmd/benchdiff —
# FILE when -baseline is given, else the newest committed BENCH_*.json
# (benchdiff auto-selects and says which; a repo with no prior snapshot
# skips the compare) — and FAILS on a >15% wall-time regression in any
# benchmark slower than 1 ms — the perf gate. CI runs this blocking; set
# BENCHDIFF_FLAGS=-warn-only to demote the compare to advisory (the
# manual escape hatch for noisy machines).
#
# `./ci.sh overhead` checks the observability layer's cost: it runs the
# hot-path micro-benchmarks with the obs registry disabled and enabled and
# bounds the on/off ratio. The disabled path carries no instrumentation at
# all (nil seam pointer), so a blown bound means someone put work on the
# wrong side of the seam.
#
# Tier-1 (the minimum every PR must keep green) is build + test; the other
# steps are the determinism/validation gate this repo's results depend on.
set -euo pipefail
cd "$(dirname "$0")"

step() {
    echo "==> $*"
    "$@"
}

if [[ "${1:-}" == "bench" ]]; then
    baseline=""
    if [[ "${2:-}" == "-baseline" ]]; then
        baseline="${3:?ci.sh bench -baseline requires a BENCH_*.json path}"
        [[ -f "${baseline}" ]] || { echo "ci.sh: baseline ${baseline} not found" >&2; exit 2; }
    fi
    stamp="$(date -u +%Y%m%dT%H%M%SZ)"
    out="BENCH_${stamp}.json"
    echo "==> go test -bench (single iteration) -> ${out}"
    go test -json -run '^$' -bench . -benchtime=1x -benchmem ./... > "${out}"
    echo "ci.sh: benchmark snapshot written to ${out}"
    metrics="METRICS_${stamp}.json"
    tl="TIMELINE_${stamp}.json"
    prov="PROV_${stamp}.json"
    phase="PHASE_${stamp}.json"
    echo "==> lvaexp -metrics -timeline -manifest -phase (registry + timeline + provenance + phases) -> ${metrics}, ${tl}, ${prov}, ${phase}"
    go run ./cmd/lvaexp -metrics "${metrics}" -timeline "${tl}" -manifest "${prov}" -phase "${phase}" all > /dev/null
    echo "ci.sh: metrics snapshot written to ${metrics}"
    echo "ci.sh: run timeline written to ${tl} (open at https://ui.perfetto.dev)"
    echo "ci.sh: provenance manifest written to ${prov}"
    echo "ci.sh: phase-observatory snapshot written to ${phase}"
    # Blocking audit gate: the manifest must parse against the schema and
    # its per-route record counts must reconcile exactly with the embedded
    # trace-store counters. A failure means an engine path evaluated a
    # design point without emitting (or mis-attributing) its provenance.
    step go run ./cmd/lvareport -provenance "${prov}"
    # BENCHDIFF_FLAGS=-warn-only turns the gate advisory (escape hatch).
    if [[ -n "${baseline}" ]]; then
        echo "==> benchdiff ${baseline} -> ${out}"
        # shellcheck disable=SC2086
        go run ./cmd/benchdiff ${BENCHDIFF_FLAGS:-} "${baseline}" "${out}"
    else
        # No explicit baseline: benchdiff picks the newest committed
        # BENCH_*.json itself (and skips cleanly when none exists yet).
        echo "==> benchdiff <auto> -> ${out}"
        # shellcheck disable=SC2086
        go run ./cmd/benchdiff ${BENCHDIFF_FLAGS:-} "${out}"
    fi
    exit 0
fi

if [[ "${1:-}" == "overhead" ]]; then
    echo "==> metrics overhead check (hot-path benchmarks, obs registry off vs on)"
    out="$(go test -run '^$' -bench '^Benchmark(SimulatorLoadHit|ApproximatorOnMiss)(Obs)?$' -benchtime=2000000x -count=3 .)"
    echo "${out}"
    awk '
        function check(base, bound,    on, off, ratio) {
            off = best[base]; on = best[base "Obs"]
            if (off == "" || on == "") {
                printf "overhead: missing benchmark %s\n", base
                return 1
            }
            ratio = on / off
            printf "overhead: %s enabled/disabled = %.3f (bound %.2f)\n", base, ratio, bound
            return ratio > bound ? 1 : 0
        }
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = $3 + 0
            if (!(name in best) || ns < best[name]) best[name] = ns
        }
        END {
            status = 0
            # The hit path never touches the seam, so on/off should be ~1;
            # the bound only absorbs scheduler noise at ns scale.
            if (check("BenchmarkSimulatorLoadHit", 1.30)) status = 1
            # The miss path pays a few atomics and a bucket search per
            # training when enabled.
            if (check("BenchmarkApproximatorOnMiss", 2.50)) status = 1
            exit status
        }
    ' <<<"${out}"
    echo "ci.sh: metrics overhead within bounds"
    exit 0
fi

step go build ./...
step go vet ./...
# The lint step runs the whole dataflow suite (call graph + taint + a
# compile per hot-path package for allocbudget), so its wall time gets its
# own line. Under GitHub Actions, findings additionally surface as ::error
# annotations on the offending lines. LVALINT_SKIP=allocbudget is the
# escape hatch for toolchains the committed budget was not recorded under.
lint_flags=()
if [[ -n "${GITHUB_ACTIONS:-}" ]]; then
    lint_flags+=(-gha)
fi
lint_start=${SECONDS}
step go run ./cmd/lvalint "${lint_flags[@]}" ./...
echo "ci.sh: lvalint finished in $((SECONDS - lint_start))s"
step go test ./...
# The race pass needs headroom past go test's default 10m per-package
# timeout: single-core CI boxes run the experiment regenerations under the
# detector's 5-10x slowdown.
step go test -race -timeout 20m ./...
echo "ci.sh: all checks passed"
