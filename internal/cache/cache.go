// Package cache implements a set-associative, write-allocate cache model
// with true-LRU replacement. It is used for the 64 KB private L1 of the
// phase-1 (Pin-like) simulator, the 16 KB L1s of the phase-2 full-system
// simulator, and the distributed shared-L2 banks.
package cache

import (
	"fmt"
	"math/bits"

	"lva/internal/obs"
)

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// BlockBytes is the line size.
	BlockBytes int
	// LatencyCycles is the hit latency used by the timing simulator.
	LatencyCycles int
}

// Validate reports a descriptive error for impossible geometries.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return fmt.Errorf("cache: size must be positive, got %d", c.SizeBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache: ways must be positive, got %d", c.Ways)
	case c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("cache: block size must be a positive power of two, got %d", c.BlockBytes)
	case c.SizeBytes%(c.Ways*c.BlockBytes) != 0:
		return fmt.Errorf("cache: size %d not divisible by ways*block (%d*%d)", c.SizeBytes, c.Ways, c.BlockBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.BlockBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.BlockBytes) }

// Stats holds per-cache event counts.
type Stats struct {
	Loads      uint64
	Stores     uint64
	LoadMiss   uint64
	StoreMiss  uint64
	Fills      uint64 // blocks inserted (demand fetches + prefetches)
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// Misses returns total load+store misses.
func (s Stats) Misses() uint64 { return s.LoadMiss + s.StoreMiss }

// Accesses returns total load+store accesses.
func (s Stats) Accesses() uint64 { return s.Loads + s.Stores }

const (
	flagDirty uint8 = 1 << iota
	flagPrefetch // inserted by a prefetcher, not yet demanded
)

// meta is the per-line state the probe does not need: recency and flag
// bits. It lives in its own slice so the tag scan stays dense.
type meta struct {
	lru   uint64 // larger = more recently used
	flags uint8
}

// Cache is a set-associative cache. It tracks block presence and
// recency only; data payloads live with the workloads.
type Cache struct {
	cfg Config
	// tags[set*ways+way] holds the line's key: tag<<1|1, or 0 when the way
	// is invalid. Keys are always odd, so an invalid way can never match a
	// probe, and validity needs no separate flag. Keeping bare keys in
	// their own slice means one 8-way set's tags span a single 64-byte
	// host cache line — the probe below is the hottest loop in the
	// repository. (The shift drops tag bit 63; simulated addresses are
	// synthetic and nowhere near 2^63.)
	tags []uint64
	// meta[set*ways+way] carries recency + dirty/prefetch bits, touched
	// only after a probe resolves a way.
	meta       []meta
	ways       int
	setMask    uint64
	setBits    uint // popcount of setMask, precomputed: index/rebuild are the hottest ops
	blockShift uint
	clock      uint64
	stats      Stats
	// PrefetchHits counts demand accesses whose block was brought in by a
	// prefetch (useful-prefetch accounting for Figure 8).
	PrefetchHits uint64
	// om is non-nil only when obs metrics were enabled at construction.
	om *cacheMetrics
}

// New builds a cache for the given geometry; it panics on an invalid
// Config since geometries are compile-time constants in this repository.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	mask := uint64(cfg.Sets() - 1)
	c := &Cache{
		cfg:        cfg,
		tags:       make([]uint64, cfg.Sets()*cfg.Ways),
		meta:       make([]meta, cfg.Sets()*cfg.Ways),
		ways:       cfg.Ways,
		setMask:    mask,
		setBits:    uint(bits.OnesCount64(mask)),
		blockShift: uint(bits.TrailingZeros64(uint64(cfg.BlockBytes))),
	}
	if obs.Enabled() {
		c.om = sharedCacheMetrics()
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// BlockAddr returns the block-aligned address containing addr.
func (c *Cache) BlockAddr(addr uint64) uint64 { return addr >> c.blockShift << c.blockShift }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.blockShift
	return blk & c.setMask, blk >> c.setBits
}

// window returns one set's tag keys plus the flat base index of its first
// way; all way indexing inside the window is bounds-check-free.
func (c *Cache) window(set uint64) ([]uint64, int) {
	base := int(set) * c.ways
	return c.tags[base : base+c.ways], base
}

// probe scans a set's tag window for key. It is the shared inner probe of
// every lookup path; kept tiny so it inlines.
func probe(w []uint64, key uint64) int {
	for i := range w {
		if w[i] == key {
			return i
		}
	}
	return -1
}

// Contains reports whether the block holding addr is resident, without
// updating recency or statistics.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	w, _ := c.window(set)
	return probe(w, tag<<1|1) >= 0
}

// Probe returns the flat line index of addr's block, or -1 on a miss. It
// performs no accounting: hot callers (the phase-1 simulator) pair it with
// Touch/TouchStore on a hit and keep their own demand counters, so the
// whole hit path inlines into the caller with no cache-package call frame.
func (c *Cache) Probe(addr uint64) int {
	blk := addr >> c.blockShift
	base := int(blk&c.setMask) * c.ways
	w := c.tags[base : base+c.ways]
	key := (blk>>c.setBits)<<1 | 1
	for i := range w {
		if w[i] == key {
			return base + i
		}
	}
	return -1
}

// Touch refreshes recency and prefetch accounting for the line at the flat
// index a Probe hit returned.
func (c *Cache) Touch(idx int) {
	c.clock++
	m := &c.meta[idx]
	m.lru = c.clock
	if m.flags&flagPrefetch != 0 {
		m.flags &^= flagPrefetch
		c.PrefetchHits++
	}
}

// TouchStore is Touch plus the store path's dirty bit.
func (c *Cache) TouchStore(idx int) {
	c.clock++
	m := &c.meta[idx]
	m.lru = c.clock
	m.flags |= flagDirty
	if m.flags&flagPrefetch != 0 {
		m.flags &^= flagPrefetch
		c.PrefetchHits++
	}
}

// Load performs a demand load of addr, with hit/miss accounting in the
// cache's own stats. It returns true on a hit. On a miss the block is NOT
// inserted; callers decide whether the fetch happens (LVA may elide it
// entirely) and call Fill.
func (c *Cache) Load(addr uint64) bool {
	c.stats.Loads++
	if idx := c.Probe(addr); idx >= 0 {
		c.Touch(idx)
		return true
	}
	c.stats.LoadMiss++
	return false
}

// Store performs a demand store of addr. It returns true on a hit. Misses
// are write-allocate: the caller is expected to Fill afterwards (stores are
// never approximated, matching the paper's load-only focus).
func (c *Cache) Store(addr uint64) bool {
	c.stats.Stores++
	if idx := c.Probe(addr); idx >= 0 {
		c.TouchStore(idx)
		return true
	}
	c.stats.StoreMiss++
	return false
}

// Fill inserts the block containing addr, evicting the LRU way if needed.
// prefetched marks the block as brought in by a prefetcher. It returns the
// evicted block address, whether an eviction of a valid block occurred,
// and whether that victim was dirty (needs a writeback).
func (c *Cache) Fill(addr uint64, prefetched bool) (evicted uint64, wasValid, wasDirty bool) {
	set, tag := c.index(addr)
	w, base := c.window(set)
	key := tag<<1 | 1
	if i := probe(w, key); i >= 0 {
		// Already resident (e.g. prefetch raced a demand fill): refresh.
		c.clock++
		c.meta[base+i].lru = c.clock
		return 0, false, false
	}
	return c.fill(set, w, base, key, prefetched)
}

// FillAbsent is Fill for callers that just observed the block miss (or
// checked Contains) in the same access, with no intervening insertions: it
// skips Fill's redundant residency probe. The phase-1 demand-miss path
// fills on every miss, so the probe it elides ran once per miss.
func (c *Cache) FillAbsent(addr uint64, prefetched bool) (evicted uint64, wasValid, wasDirty bool) {
	set, tag := c.index(addr)
	w, base := c.window(set)
	return c.fill(set, w, base, tag<<1|1, prefetched)
}

// fill inserts key into the set window, evicting if every way is valid.
func (c *Cache) fill(set uint64, w []uint64, base int, key uint64, prefetched bool) (evicted uint64, wasValid, wasDirty bool) {
	c.stats.Fills++
	mw := c.meta[base : base+c.ways]
	// One pass: first invalid way wins, else the first way with minimal
	// recency (identical choice to scanning twice, at half the loads).
	victim := -1
	minIdx := 0
	for i := range w {
		if w[i] == 0 {
			victim = i
			break
		}
		if mw[i].lru < mw[minIdx].lru {
			minIdx = i
		}
	}
	if victim < 0 {
		victim = minIdx
		c.stats.Evictions++
		if mw[victim].flags&flagDirty != 0 {
			c.stats.Writebacks++
			wasDirty = true
		}
		if m := c.om; m != nil {
			m.evictions.Inc()
			if wasDirty {
				m.writebacks.Inc()
			}
		}
		evicted = c.rebuild(set, w[victim]>>1)
		wasValid = true
	}
	c.clock++
	var flags uint8
	if prefetched {
		flags = flagPrefetch
	}
	w[victim] = key
	mw[victim] = meta{lru: c.clock, flags: flags}
	return evicted, wasValid, wasDirty
}

// rebuild reconstructs a block address from set index and tag.
func (c *Cache) rebuild(set, tag uint64) uint64 {
	return ((tag << c.setBits) | set) << c.blockShift
}

// Invalidate removes the block containing addr if present, returning whether
// it was present and whether it was dirty (the coherence layer needs both).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	w, base := c.window(set)
	if i := probe(w, tag<<1|1); i >= 0 {
		present, dirty = true, c.meta[base+i].flags&flagDirty != 0
		w[i] = 0
		c.meta[base+i] = meta{}
	}
	return present, dirty
}

// MarkDirty sets the dirty bit of a resident block (used when a store hit is
// modeled externally).
func (c *Cache) MarkDirty(addr uint64) {
	set, tag := c.index(addr)
	w, base := c.window(set)
	if i := probe(w, tag<<1|1); i >= 0 {
		c.meta[base+i].flags |= flagDirty
	}
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, k := range c.tags {
		if k != 0 {
			n++
		}
	}
	return n
}
