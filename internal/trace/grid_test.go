package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"

	"lva/internal/value"
)

// gridEvent is one access as the simulator's capture hook sees it: the
// precise value plus the global instruction count at the access.
type gridEvent struct {
	pc, addr uint64
	v        value.Value
	op       Op
	approx   bool
	thread   uint8
	insts    uint64
}

// buildGridEvents generates a deterministic multi-thread stream exercising
// the encoding's edge cases: int and float values, exact value repeats,
// stores, negative PC/addr deltas, long same-thread runs, and one gap large
// enough to clamp the per-thread Gap field.
func buildGridEvents(n int) []gridEvent {
	evs := make([]gridEvent, 0, n)
	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	insts := uint64(0)
	pcs := []uint64{0x400, 0x404, 0x10408, 0x40c} // revisits force negative deltas
	var prev value.Value
	for i := 0; i < n; i++ {
		r := next()
		ev := gridEvent{
			pc:     pcs[r%uint64(len(pcs))],
			addr:   0x10000 + (r>>8)%4096*8,
			thread: uint8(r >> 16 % 3),
			insts:  insts,
		}
		if i > 100 && i < 200 {
			ev.thread = 2 // long same-thread run: no thread bytes
		}
		switch r >> 24 % 4 {
		case 0:
			ev.op = Store
		case 1:
			ev.v = value.FromInt(int64(r>>32) - 1<<30)
			ev.approx = true
		case 2:
			ev.v = value.FromFloat(float64(r>>40) / 7)
			ev.approx = true
		default:
			ev.v = prev // exact repeat of the previous load value
		}
		if ev.op == Load {
			prev = ev.v
		}
		evs = append(evs, ev)
		insts += 1 + r>>48%64
		if i == n/2 {
			insts += 1 << 31 // forces the per-thread Gap clamp on every thread
		}
	}
	return evs
}

// expectedAccesses replays the capture hook's own bookkeeping (per-thread
// clamped gaps, zero Value on stores) over the event stream.
func expectedAccesses(evs []gridEvent) []Access {
	lastEnd := make([]uint64, 256)
	out := make([]Access, 0, len(evs))
	for _, ev := range evs {
		gap := ev.insts - lastEnd[ev.thread]
		if gap > 1<<30 {
			gap = 1 << 30
		}
		lastEnd[ev.thread] = ev.insts + 1
		a := Access{PC: ev.pc, Addr: ev.addr, Gap: uint32(gap), Thread: ev.thread, Op: ev.op, Approx: ev.approx}
		if ev.op == Load {
			a.Value = ev.v
		}
		out = append(out, a)
	}
	return out
}

func writeGrid(t *testing.T, evs []gridEvent, instructions uint64, meta json.RawMessage) (*bytes.Buffer, GridHeader) {
	t.Helper()
	var buf bytes.Buffer
	w := NewGridWriter(&buf, "wl", "key|cfg|seed=42", 42)
	for _, ev := range evs {
		w.Access(ev.pc, ev.addr, ev.v, ev.op, ev.approx, ev.thread, ev.insts)
	}
	hdr, err := w.Finish(instructions, meta)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return &buf, hdr
}

func readGrid(t *testing.T, r io.Reader) ([]Access, []uint64, GridHeader) {
	t.Helper()
	gr, err := NewGridReader(r)
	if err != nil {
		t.Fatalf("NewGridReader: %v", err)
	}
	var accs []Access
	var insts []uint64
	for {
		a, in, err := gr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		accs = append(accs, a...) // reader reuses buffers; append copies
		insts = append(insts, in...)
	}
	hdr, ok := gr.Header()
	if !ok {
		t.Fatal("Header not available after EOF")
	}
	return accs, insts, hdr
}

func TestGridRoundTrip(t *testing.T) {
	const n = 10000 // three chunks
	evs := buildGridEvents(n)
	want := expectedAccesses(evs)
	finalInsts := evs[n-1].insts + 17 // trailing Tick work after the last access
	meta := json.RawMessage(`{"Instructions":123}`)
	buf, whdr := writeGrid(t, evs, finalInsts, meta)
	encoded := append([]byte(nil), buf.Bytes()...)

	accs, insts, hdr := readGrid(t, buf)
	if len(accs) != n {
		t.Fatalf("decoded %d accesses, want %d", len(accs), n)
	}
	for i := range accs {
		if accs[i] != want[i] {
			t.Fatalf("access %d = %+v, want %+v", i, accs[i], want[i])
		}
		if insts[i] != evs[i].insts {
			t.Fatalf("access %d global insts = %d, want %d", i, insts[i], evs[i].insts)
		}
	}
	if whdr.Accesses != hdr.Accesses || whdr.Chunks != hdr.Chunks {
		t.Fatalf("Finish returned %+v but file carries %+v", whdr, hdr)
	}
	var loads, stores, approx uint64
	for _, a := range want {
		if a.Op == Store {
			stores++
		} else {
			loads++
			if a.Approx {
				approx++
			}
		}
	}
	if hdr.Name != "wl" || hdr.Key != "key|cfg|seed=42" || hdr.Seed != 42 {
		t.Fatalf("header identity = %q/%q/%d", hdr.Name, hdr.Key, hdr.Seed)
	}
	if hdr.Accesses != n || hdr.Loads != loads || hdr.Stores != stores || hdr.ApproxLoads != approx {
		t.Fatalf("header counts = %+v, want n=%d loads=%d stores=%d approx=%d", hdr, n, loads, stores, approx)
	}
	if hdr.Instructions != finalInsts || hdr.Threads != 3 || hdr.Chunks != 3 {
		t.Fatalf("header = insts %d threads %d chunks %d", hdr.Instructions, hdr.Threads, hdr.Chunks)
	}
	if !bytes.Equal(hdr.Meta, meta) {
		t.Fatalf("meta = %s, want %s", hdr.Meta, meta)
	}

	// The one-seek footer path must agree with the streaming path.
	fhdr, err := ReadGridFooter(bytes.NewReader(encoded))
	if err != nil {
		t.Fatalf("ReadGridFooter: %v", err)
	}
	if fhdr.Accesses != hdr.Accesses || fhdr.Key != hdr.Key || !bytes.Equal(fhdr.Meta, hdr.Meta) {
		t.Fatalf("footer header %+v disagrees with streamed header %+v", fhdr, hdr)
	}

	// Compression sanity: the whole point of the delta encoding.
	if perAccess := float64(len(encoded)) / n; perAccess > 12 {
		t.Errorf("encoding averages %.1f bytes/access, want well under the 30-byte flat format", perAccess)
	}
}

func TestGridEmptyStream(t *testing.T) {
	buf, _ := writeGrid(t, nil, 99, nil)
	accs, _, hdr := readGrid(t, buf)
	if len(accs) != 0 {
		t.Fatalf("decoded %d accesses from empty stream", len(accs))
	}
	if hdr.Accesses != 0 || hdr.Chunks != 0 || hdr.Threads != 0 || hdr.Instructions != 99 {
		t.Fatalf("empty header = %+v", hdr)
	}
}

// TestGridValueRepeatEdges pins the trickiest encoder states by hand: a
// first load whose value equals the zero prev-value, repeats spanning a
// store (stores must not disturb load-value context), and kind changes
// between bit-identical payloads.
func TestGridValueRepeatEdges(t *testing.T) {
	evs := []gridEvent{
		{pc: 8, addr: 64, v: value.FromInt(0), op: Load, thread: 2, insts: 0},                         // == zero prevVal
		{pc: 8, addr: 128, op: Store, thread: 2, insts: 1},                                            // store between repeats
		{pc: 8, addr: 192, v: value.FromInt(0), op: Load, thread: 2, insts: 2},                        // repeat across store
		{pc: 16, addr: 64, v: value.Value{Bits: 0, Kind: value.Float}, op: Load, thread: 0, insts: 3}, // same bits, new kind
		{pc: 8, addr: 32, v: value.Value{Bits: 0, Kind: value.Float}, op: Load, thread: 2, insts: 40}, // float repeat
	}
	want := expectedAccesses(evs)
	buf, _ := writeGrid(t, evs, 41, nil)
	accs, _, _ := readGrid(t, buf)
	for i := range want {
		if accs[i] != want[i] {
			t.Fatalf("access %d = %+v, want %+v", i, accs[i], want[i])
		}
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n -= len(p); f.n < 0 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestGridWriterStickyError(t *testing.T) {
	w := NewGridWriter(&failWriter{n: 16}, "wl", "k", 1)
	for i := 0; i < 2*gridChunkAccesses; i++ { // forces a chunk flush into the failing writer
		w.Access(uint64(i), uint64(i*8), value.FromInt(int64(i)), Load, false, 0, uint64(i))
	}
	if _, err := w.Finish(uint64(2*gridChunkAccesses), nil); err == nil {
		t.Fatal("Finish must surface the write error")
	}
	if _, err := w.Finish(0, nil); !errors.Is(err, errGridFinished) {
		t.Fatalf("second Finish = %v, want errGridFinished", err)
	}
}

// FuzzGridRead ensures the chunk decoder never panics and always terminates
// on arbitrary bytes: every Next call either consumes input or errors.
func FuzzGridRead(f *testing.F) {
	evs := buildGridEvents(300)
	var buf bytes.Buffer
	w := NewGridWriter(&buf, "seed", "k", 7)
	for _, ev := range evs {
		w.Access(ev.pc, ev.addr, ev.v, ev.op, ev.approx, ev.thread, ev.insts)
	}
	if _, err := w.Finish(evs[len(evs)-1].insts+1, json.RawMessage(`{"a":1}`)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("LVAG garbage"))
	raw := append([]byte(nil), buf.Bytes()...)
	raw[4] ^= 0xFF // version corruption
	f.Add(raw)
	raw2 := append([]byte(nil), buf.Bytes()...)
	raw2[20] ^= 0x80 // payload corruption
	f.Add(raw2)

	f.Fuzz(func(t *testing.T, data []byte) {
		gr, err := NewGridReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var total int
		for {
			accs, insts, err := gr.Next()
			if err != nil {
				break
			}
			if len(accs) != len(insts) {
				t.Fatalf("Next returned %d accesses but %d instruction indices", len(accs), len(insts))
			}
			if len(accs) == 0 {
				t.Fatal("Next returned an empty chunk without error")
			}
			total += len(accs)
		}
		if hdr, ok := gr.Header(); ok && hdr.Accesses < uint64(total) {
			// A parseable footer may disagree with the chunks (fuzzer can
			// splice streams) but decoded chunks are bounded by the framing.
			t.Logf("footer claims %d accesses, decoded %d", hdr.Accesses, total)
		}
		_, _ = ReadGridFooter(bytes.NewReader(data))
	})
}
