package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// CSV renders the figure as comma-separated values: a header of benchmark
// columns and one row per series, ending with the mean.
func (f *Figure) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	header := append([]string{"series"}, f.Benchmarks...)
	header = append(header, "mean")
	_ = w.Write(header)
	for _, r := range f.Rows {
		rec := []string{r.Label}
		for _, v := range r.Values {
			rec = append(rec, strconv.FormatFloat(v, 'g', 6, 64))
		}
		rec = append(rec, strconv.FormatFloat(r.Mean(), 'g', 6, 64))
		_ = w.Write(rec)
	}
	w.Flush()
	return b.String()
}

// jsonFigure is the serialized form of a Figure.
type jsonFigure struct {
	ID         string             `json:"id"`
	Title      string             `json:"title"`
	ValueUnit  string             `json:"value_unit"`
	Benchmarks []string           `json:"benchmarks"`
	Series     []jsonSeries       `json:"series"`
	Notes      []string           `json:"notes,omitempty"`
	Means      map[string]float64 `json:"means"`
}

type jsonSeries struct {
	Label  string    `json:"label"`
	Values []float64 `json:"values"`
}

// JSON renders the figure as an indented JSON document.
func (f *Figure) JSON() (string, error) {
	jf := jsonFigure{
		ID:         f.ID,
		Title:      f.Title,
		ValueUnit:  f.ValueUnit,
		Benchmarks: f.Benchmarks,
		Notes:      f.Notes,
		Means:      map[string]float64{},
	}
	for _, r := range f.Rows {
		jf.Series = append(jf.Series, jsonSeries{Label: r.Label, Values: r.Values})
		jf.Means[r.Label] = r.Mean()
	}
	out, err := json.MarshalIndent(jf, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: marshaling %s: %w", f.ID, err)
	}
	return string(out), nil
}

// Markdown renders the figure as a GitHub-flavoured Markdown table with a
// trailing mean column (used by cmd/lvareport).
func (f *Figure) Markdown() string {
	var b strings.Builder
	b.WriteString("| series |")
	for _, bench := range f.Benchmarks {
		fmt.Fprintf(&b, " %s |", bench)
	}
	b.WriteString(" mean |\n|---|")
	for range f.Benchmarks {
		b.WriteString("---|")
	}
	b.WriteString("---|\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "| %s |", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %.3f |", v)
		}
		fmt.Fprintf(&b, " %.3f |\n", r.Mean())
	}
	b.WriteString("\n")
	return b.String()
}

// Chart renders the figure as grouped horizontal ASCII bars — the closest
// terminal analogue of the paper's bar charts. Bars are scaled to the
// figure's maximum value.
func (f *Figure) Chart() string {
	const width = 46
	peak := 0.0
	for _, r := range f.Rows {
		for _, v := range r.Values {
			peak = max(peak, v)
		}
	}
	if peak == 0 {
		peak = 1
	}
	labelW := 0
	for _, r := range f.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", f.ID, f.Title, f.ValueUnit)
	for bi, bench := range f.Benchmarks {
		fmt.Fprintf(&b, "%s\n", bench)
		for _, r := range f.Rows {
			if bi >= len(r.Values) {
				continue
			}
			v := r.Values[bi]
			n := int(v / peak * width)
			if n < 0 {
				n = 0
			}
			if v > 0 && n == 0 {
				n = 1 // visible sliver for tiny non-zero values
			}
			fmt.Fprintf(&b, "  %-*s |%s %.3f\n", labelW, r.Label, strings.Repeat("#", n), v)
		}
	}
	return b.String()
}
