package trace

import (
	"bytes"
	"testing"

	"lva/internal/value"
)

// FuzzRead ensures the binary decoder never panics and never fabricates
// data on arbitrary inputs: it either errors or returns a well-formed
// trace that re-encodes to an equivalent byte stream.
func FuzzRead(f *testing.F) {
	// Seed with a valid encoding and a few mutations.
	var buf bytes.Buffer
	_ = Write(&buf, &Trace{
		Name: "seed",
		Accesses: []Access{
			{PC: 1, Addr: 2, Value: value.FromInt(3), Gap: 4, Thread: 1, Op: Load, Approx: true},
			{PC: 5, Addr: 6, Op: Store},
		},
	})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("LVAT garbage"))
	raw := append([]byte(nil), buf.Bytes()...)
	raw[4] ^= 0xFF // version corruption
	f.Add(raw)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully-decoded trace must survive a round trip.
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		tr2, err := Read(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if tr2.Len() != tr.Len() || tr2.Name != tr.Name {
			t.Fatalf("round trip changed shape: %d/%q vs %d/%q",
				tr2.Len(), tr2.Name, tr.Len(), tr.Name)
		}
		for i := range tr.Accesses {
			if tr.Accesses[i] != tr2.Accesses[i] {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}
