// Package obs is the simulator's observability layer: a typed metrics
// registry (atomic counters, gauges, fixed-bucket histograms), structured
// event hooks, and debug exposition (expvar + net/http/pprof).
//
// Two properties shape the design:
//
//   - Zero overhead when off. Hot-path packages (memsim, cache, core) wire
//     their metric structs only when SetEnabled(true) was called before the
//     simulator was constructed; otherwise the struct pointer stays nil and
//     the per-event cost is a single pointer load and branch. Every metric
//     method is additionally nil-receiver-safe and allocation-free, so a
//     disabled path never allocates and never takes a lock.
//
//   - Determinism. All metrics are integer event counts (histograms count
//     observations into fixed buckets; no floating-point sums are
//     accumulated), so totals are independent of goroutine interleaving.
//     Metrics whose *values* depend on wall-clock timing (queue waits, run
//     wall times) are registered as volatile and excluded from the
//     deterministic snapshot; see Registry.Snapshot.
//
// The experiment engine (internal/experiments) always counts its coarse
// per-run events — run-cache hits, scheduler occupancy, figure progress —
// because they cost a few atomic operations per kernel simulation. Only
// per-load/per-miss instrumentation is gated by Enabled.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates hot-path metric collection: simulator constructors consult
// it once at build time (see package comment).
var enabled atomic.Bool

// SetEnabled toggles hot-path metric collection. It must be called before
// the simulators whose events should be counted are constructed; already
// built simulators keep the setting they were created with. The experiment
// engine's coarse per-run metrics count regardless.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether hot-path metric collection is on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing, race-safe event counter. The zero
// value is ready to use; all methods are safe on a nil receiver (no-ops
// reading zero), which is how disabled instrumentation costs nothing.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter. Counters are monotonic within one measurement
// epoch; Reset starts a new epoch (tests, process-cold restores).
func (c *Counter) Reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Gauge is a race-safe instantaneous value (e.g. in-flight simulations).
// All methods are safe on a nil receiver.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Reset zeroes the gauge.
func (g *Gauge) Reset() {
	if g != nil {
		g.v.Store(0)
	}
}

// Histogram counts observations into fixed buckets. Bucket i counts values
// v with bounds[i-1] < v <= bounds[i] (the first bucket counts v <=
// bounds[0]); one implicit overflow bucket counts everything above the last
// bound, including +Inf and NaN. Only integer bucket counts are kept — no
// floating-point sum — so concurrent observation order cannot perturb a
// snapshot. All methods are safe on a nil receiver.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Smallest i with bounds[i] >= v; NaN compares false everywhere and
	// lands in the overflow bucket like any out-of-range value.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Bounds returns a copy of the bucket upper bounds (the overflow bucket is
// implicit).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// BucketCounts returns a copy of the per-bucket counts; the final element
// is the overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile returns an upper bound on the q-quantile (q clamped to [0,1]):
// the smallest bucket upper bound whose cumulative count reaches q·Count.
// Observations in the overflow bucket report +Inf is never returned;
// instead the last finite bound is returned for quantiles that land there
// (the histogram cannot resolve beyond its buckets). An empty histogram
// returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= target {
			return h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Reset zeroes every bucket.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.counts {
		h.counts[i].Store(0)
	}
}

// TimeBuckets are the default duration buckets (seconds) for wall-clock
// histograms: 0.5 ms to 60 s on a coarse log scale.
var TimeBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// ErrorBuckets are the default buckets for relative-error histograms: an
// exact bucket (0) plus log-spaced fractions up to 1; larger errors (and
// the +Inf of a missed zero) land in the overflow bucket.
var ErrorBuckets = []float64{0, 1e-6, 1e-4, 1e-3, 0.01, 0.05, 0.1, 0.2, 0.5, 1}

// metric kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// metricEntry is one registered metric with its metadata.
type metricEntry struct {
	name     string
	kind     string
	help     string
	volatile bool
	c        *Counter
	g        *Gauge
	h        *Histogram
}

// Registry holds named metrics. Registration is idempotent: asking for an
// existing name of the same kind returns the same metric, so packages can
// register lazily from multiple call sites. Metric names are compile-time
// constants in this repository, which is why kind collisions panic (see
// the register methods).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metricEntry
}

// New builds an empty registry.
func New() *Registry {
	return &Registry{metrics: make(map[string]*metricEntry)}
}

// defaultRegistry is the process-wide registry every seam registers on.
var defaultRegistry = New()

// Default returns the process-wide registry. It is never nil.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, registering it on first use. It
// panics if name is already registered as a different metric kind: names
// are compile-time constants, so a collision is a programming error.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.get(name, kindCounter, help)
	if e.c == nil {
		e.c = &Counter{}
	}
	r.mu.Unlock()
	return e.c
}

// Gauge returns the named gauge, registering it on first use. It panics on
// a kind collision (see Counter).
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.get(name, kindGauge, help)
	if e.g == nil {
		e.g = &Gauge{}
	}
	r.mu.Unlock()
	return e.g
}

// Histogram returns the named histogram, registering it on first use with
// the given bucket upper bounds. volatile marks metrics whose values
// depend on wall-clock timing; they are excluded from deterministic
// snapshots. It panics on a kind collision, on empty or non-increasing
// bounds, or if an existing histogram was registered with different
// bounds: all three are programming errors in compile-time metric
// definitions.
func (r *Registry) Histogram(name, help string, bounds []float64, volatile bool) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram " + name + " bounds must be strictly increasing")
		}
	}
	e := r.get(name, kindHistogram, help)
	if e.h == nil {
		bs := append([]float64(nil), bounds...)
		e.h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
		e.volatile = volatile
	} else if len(e.h.bounds) != len(bounds) {
		r.mu.Unlock()
		panic("obs: histogram " + name + " re-registered with different bounds")
	} else {
		for i := range bounds {
			if e.h.bounds[i] != bounds[i] {
				r.mu.Unlock()
				panic("obs: histogram " + name + " re-registered with different bounds")
			}
		}
	}
	h := e.h
	r.mu.Unlock()
	return h
}

// get locks the registry and returns the entry for name, creating it with
// the given kind and help on first use. The caller must unlock r.mu. It
// panics when name is registered under a different kind (the documented
// contract of the register methods above).
func (r *Registry) get(name, kind, help string) *metricEntry {
	r.mu.Lock()
	e, ok := r.metrics[name]
	if !ok {
		e = &metricEntry{name: name, kind: kind, help: help}
		r.metrics[name] = e
		return e
	}
	if e.kind != kind {
		r.mu.Unlock()
		panic("obs: metric " + name + " already registered as a " + e.kind)
	}
	return e
}

// Reset zeroes every registered metric in place (pointers handed out stay
// valid), restoring process-cold counts for tests and A/B comparisons.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.metrics {
		e.c.Reset()
		e.g.Reset()
		e.h.Reset()
	}
}
