// Package flow is lvalint's interprocedural dataflow layer. It builds a
// static call graph over the packages the lint loader produced (bottom-up,
// zero dependencies beyond go/ast and go/types), attaches per-function
// effect and taint summaries, and propagates them to a fixed point so the
// analyzers on top — mapiter, detsync — can reason across function
// boundaries instead of one body at a time.
//
// The graph is deliberately conservative where Go's dynamism defeats a
// static view: calls through function values, interface methods without a
// resolved concrete target, and callees whose declarations were not loaded
// all resolve to "unknown". Summaries treat unknown callees as
// effect-free but taint-propagating, which keeps the analyzers sound for
// the determinism properties they check (a finding is only produced when a
// full source-to-sink chain is visible) without drowning callers in
// speculative reports.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Pkg is one loaded, type-checked package as the lint loader presents it.
// It mirrors lint.Package structurally so the lint package can hand its
// packages over without an import cycle.
type Pkg struct {
	// Path is the import path within the module.
	Path string
	// Files are the parsed sources, including in-package _test.go files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's resolution tables.
	Info *types.Info
}

// Func is one node of the call graph: a declared function or method with
// its summary bits. Function literals are attributed to their enclosing
// declaration — a call made inside a closure is an effect of the function
// that wrote the closure, which matches how the determinism rules think
// about fan-out helpers.
type Func struct {
	// Obj is the canonical type-checker object; the graph is keyed on it,
	// so cross-package calls unify on the shared loader's objects.
	Obj *types.Func
	// Decl is the syntax, always with a non-nil Name; Body may be nil for
	// assembly/linkname stubs.
	Decl *ast.FuncDecl
	// Pkg is the declaring package.
	Pkg *Pkg
	// Callees are the statically resolved intra-graph callees, deduplicated.
	Callees []*Func
	// Callers is the reverse adjacency, deduplicated.
	Callers []*Func

	// Effects (filled by ComputeEffects):

	// SpawnsDirect marks a `go` statement lexically inside the function
	// (including inside its closures).
	SpawnsDirect bool
	// Spawns marks goroutine creation anywhere in the function's static
	// call tree: SpawnsDirect or a callee that Spawns.
	Spawns bool
	// WGParamDone/WGParamAdd/WGParamWait mark, per parameter, that a
	// *sync.WaitGroup passed in that position has Done/Add/Wait called on
	// it, directly or through further calls.
	WGParamDone []bool
	WGParamAdd  []bool
	WGParamWait []bool
}

// Graph is the whole-program view over one lint run's package set.
type Graph struct {
	Fset *token.FileSet
	Pkgs []*Pkg
	// Funcs indexes nodes by their canonical type-checker object.
	Funcs map[*types.Func]*Func
	// order preserves deterministic (load, then declaration) iteration.
	order []*Func
}

// All returns every function node in deterministic declaration order.
func (g *Graph) All() []*Func { return g.order }

// Lookup returns the node for a resolved function object, or nil when its
// declaration was not part of the loaded set.
func (g *Graph) Lookup(obj *types.Func) *Func {
	if obj == nil {
		return nil
	}
	return g.Funcs[obj]
}

// CalleeOf statically resolves the target of a call expression to its
// function object: direct calls, method calls (through the selection
// table, so embedded promotions resolve), and method expressions. Calls
// through plain function values and builtins return nil.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := info.Uses[fun].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj, _ := sel.Obj().(*types.Func)
			return obj
		}
		// Package-qualified call (fmt.Sprintf) or method expression.
		obj, _ := info.Uses[fun.Sel].(*types.Func)
		return obj
	}
	return nil
}

// Build constructs the call graph over pkgs. Every function and method
// declaration becomes a node; edges are the statically resolvable calls
// appearing in its body (closures included).
func Build(fset *token.FileSet, pkgs []*Pkg) *Graph {
	g := &Graph{Fset: fset, Pkgs: pkgs, Funcs: make(map[*types.Func]*Func)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || obj == nil {
					continue
				}
				if _, dup := g.Funcs[obj]; dup {
					continue
				}
				fn := &Func{Obj: obj, Decl: fd, Pkg: pkg}
				g.Funcs[obj] = fn
				g.order = append(g.order, fn)
			}
		}
	}
	for _, fn := range g.order {
		if fn.Decl.Body == nil {
			continue
		}
		seen := make(map[*Func]bool)
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := g.Lookup(CalleeOf(fn.Pkg.Info, call))
			if callee == nil || seen[callee] {
				return true
			}
			seen[callee] = true
			fn.Callees = append(fn.Callees, callee)
			callee.Callers = append(callee.Callers, fn)
			return true
		})
	}
	return g
}

// Fixpoint repeatedly applies step to every function until one full sweep
// reports no change, propagating facts through recursion and mutual
// recursion. step returns true when it changed its function's summary.
// Iteration is bounded by the lattice height of the summaries (each step
// may only turn facts on, never off), so termination does not depend on
// step's internals beyond monotonicity.
func (g *Graph) Fixpoint(step func(*Func) bool) {
	for changed := true; changed; {
		changed = false
		for _, fn := range g.order {
			if step(fn) {
				changed = true
			}
		}
	}
}

// EnclosingFunc returns the graph node whose declaration lexically
// contains pos, or nil.
func (g *Graph) EnclosingFunc(pos token.Pos) *Func {
	for _, fn := range g.order {
		if fn.Decl.Pos() <= pos && pos <= fn.Decl.End() {
			return fn
		}
	}
	return nil
}

// isWGPointer reports whether t is *sync.WaitGroup.
func isWGPointer(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

// IsWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func IsWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if isWGPointer(t) {
		return true
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "WaitGroup"
}

// paramIndexOf returns the index of the parameter obj in fn's signature,
// or -1. The receiver does not count as a parameter.
func paramIndexOf(fn *Func, obj types.Object) int {
	sig, ok := fn.Obj.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// ComputeEffects fills the effect summaries (goroutine spawning and
// WaitGroup discipline through *sync.WaitGroup parameters) for every
// function and propagates them bottom-up to a fixed point.
func ComputeEffects(g *Graph) {
	// Seed the direct facts once.
	for _, fn := range g.order {
		if fn.Decl.Body == nil {
			continue
		}
		sig, _ := fn.Obj.Type().(*types.Signature)
		np := 0
		if sig != nil {
			np = sig.Params().Len()
		}
		fn.WGParamDone = make([]bool, np)
		fn.WGParamAdd = make([]bool, np)
		fn.WGParamWait = make([]bool, np)
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				fn.SpawnsDirect = true
				fn.Spawns = true
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				method := sel.Sel.Name
				if method != "Done" && method != "Add" && method != "Wait" {
					return true
				}
				id, ok := ast.Unparen(sel.X).(*ast.Ident)
				if !ok {
					return true
				}
				obj := fn.Pkg.Info.ObjectOf(id)
				if obj == nil || !IsWaitGroup(obj.Type()) {
					return true
				}
				if i := paramIndexOf(fn, obj); i >= 0 {
					switch method {
					case "Done":
						fn.WGParamDone[i] = true
					case "Add":
						fn.WGParamAdd[i] = true
					case "Wait":
						fn.WGParamWait[i] = true
					}
				}
			}
			return true
		})
	}
	// Propagate: spawning is transitive through calls; WaitGroup-parameter
	// facts flow when a parameter is forwarded to a callee position that
	// itself Dones/Adds/Waits it.
	g.Fixpoint(func(fn *Func) bool {
		if fn.Decl.Body == nil {
			return false
		}
		changed := false
		for _, c := range fn.Callees {
			if c.Spawns && !fn.Spawns {
				fn.Spawns = true
				changed = true
			}
		}
		// Forwarded WaitGroup parameters.
		ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := g.Lookup(CalleeOf(fn.Pkg.Info, call))
			if callee == nil {
				return true
			}
			for ai, arg := range call.Args {
				if ai >= len(callee.WGParamDone) {
					break
				}
				obj := rootObj(fn.Pkg.Info, arg)
				if obj == nil {
					continue
				}
				pi := paramIndexOf(fn, obj)
				if pi < 0 || !IsWaitGroup(obj.Type()) {
					continue
				}
				if callee.WGParamDone[ai] && !fn.WGParamDone[pi] {
					fn.WGParamDone[pi] = true
					changed = true
				}
				if callee.WGParamAdd[ai] && !fn.WGParamAdd[pi] {
					fn.WGParamAdd[pi] = true
					changed = true
				}
				if callee.WGParamWait[ai] && !fn.WGParamWait[pi] {
					fn.WGParamWait[pi] = true
					changed = true
				}
			}
			return true
		})
		return changed
	})
}

// CallDonesWaitGroup reports whether the call statically passes wgObj to a
// callee that (transitively) calls Done on that parameter — the shape
// `go worker(&wg, ...)` where worker defers wg.Done.
func (g *Graph) CallDonesWaitGroup(info *types.Info, call *ast.CallExpr, wgObj types.Object) bool {
	callee := g.Lookup(CalleeOf(info, call))
	if callee == nil {
		return false
	}
	for ai, arg := range call.Args {
		if ai >= len(callee.WGParamDone) {
			break
		}
		if rootObj(info, arg) == wgObj && callee.WGParamDone[ai] {
			return true
		}
	}
	return false
}

// rootObj unwraps &x, (x), x.f, x[i] down to the root identifier's object.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
