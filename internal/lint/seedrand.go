package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// seedrandAnalyzer enforces the reproducibility invariant behind every
// number in the paper's figures: all randomness inside internal/ must flow
// through the seeded workloads.RNG. It forbids math/rand (whose global
// functions are seeded from runtime entropy) and time-derived seed material
// such as time.Now().UnixNano().
var seedrandAnalyzer = &Analyzer{
	Name: "seedrand",
	Doc:  "forbid math/rand and time-derived seeds in internal/; use the seeded workloads.RNG",
	Run:  runSeedrand,
}

func runSeedrand(p *Pass) {
	if !isInternalPath(p.Pkg.Path) && !isFixturePath(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s: simulator randomness must flow through the seeded workloads.RNG so runs are reproducible", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "UnixNano", "Unix", "UnixMilli", "UnixMicro", "Nanosecond":
			default:
				return true
			}
			inner, ok := sel.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isTimeNow(p, inner) {
				p.Reportf(call.Pos(), "time-derived value is nondeterministic seed material; derive seeds from the experiment's fixed seed instead")
			}
			return true
		})
	}
}

// isTimeNow reports whether call is time.Now().
func isTimeNow(p *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Now" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "time"
}
