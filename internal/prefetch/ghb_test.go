package prefetch

import (
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{GHBEntries: 16, IndexEntries: 16, Degree: 4, BlockBytes: 64}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{GHBEntries: 0, IndexEntries: 16, Degree: 1, BlockBytes: 64},
		{GHBEntries: 16, IndexEntries: 0, Degree: 1, BlockBytes: 64},
		{GHBEntries: 16, IndexEntries: 15, Degree: 1, BlockBytes: 64}, // not pow2
		{GHBEntries: 16, IndexEntries: 16, Degree: -1, BlockBytes: 64},
		{GHBEntries: 16, IndexEntries: 16, Degree: 1, BlockBytes: 60},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on invalid config")
		}
	}()
	New(Config{})
}

func TestDeltaCorrelation(t *testing.T) {
	p := New(smallConfig())
	const pc = 0x400
	// Misses with a constant stride of 2 blocks (128 B).
	p.OnMiss(pc, 0)
	p.OnMiss(pc, 128)
	targets := p.OnMiss(pc, 256)
	if len(targets) != 4 {
		t.Fatalf("degree-4 prefetch must produce 4 targets, got %d", len(targets))
	}
	want := []uint64{384, 512, 640, 768}
	for i, w := range want {
		if targets[i] != w {
			t.Fatalf("target %d = %d, want %d", i, targets[i], w)
		}
	}
	if p.Stats().DeltaHit == 0 {
		t.Fatal("delta pattern must be recognized")
	}
}

func TestNextLineFallback(t *testing.T) {
	p := New(smallConfig())
	// Random (non-repeating-delta) misses: first few fall back next-line.
	targets := p.OnMiss(0x400, 64000)
	if len(targets) != 4 {
		t.Fatalf("fallback must still issue degree targets, got %d", len(targets))
	}
	if targets[0] != 64000+64 {
		t.Fatalf("next-line target = %d", targets[0])
	}
	if p.Stats().NextLine == 0 {
		t.Fatal("next-line fallback must be counted")
	}
}

func TestDegreeZeroIssuesNothing(t *testing.T) {
	cfg := smallConfig()
	cfg.Degree = 0
	p := New(cfg)
	if got := p.OnMiss(0x400, 0); got != nil {
		t.Fatalf("degree 0 must not prefetch, got %v", got)
	}
}

func TestPerPCHistories(t *testing.T) {
	p := New(smallConfig())
	// Interleave two PCs with different strides; each must be tracked
	// separately through the index table's link chains. (0x101 and 0x202
	// map to distinct slots of the 16-entry test index table.)
	for i := 0; i < 3; i++ {
		p.OnMiss(0x101, uint64(i)*64)
		p.OnMiss(0x202, uint64(i)*320)
	}
	t1 := p.OnMiss(0x101, 3*64)
	t2 := p.OnMiss(0x202, 3*320)
	if t1[0] != 4*64 {
		t.Fatalf("pc1 stride target = %d, want %d", t1[0], 4*64)
	}
	if t2[0] != 4*320 {
		t.Fatalf("pc2 stride target = %d, want %d", t2[0], 4*320)
	}
}

func TestFIFOWrapInvalidatesStaleLinks(t *testing.T) {
	cfg := smallConfig() // 16-entry GHB
	p := New(cfg)
	p.OnMiss(0x100, 0)
	p.OnMiss(0x100, 64)
	// Flood with other PCs so the GHB wraps and 0x100's chain is stale.
	for i := 0; i < 40; i++ {
		p.OnMiss(uint64(0x1000+i*8), uint64(100000+i*6400))
	}
	// Must not crash or follow stale links; falls back to next-line.
	targets := p.OnMiss(0x100, 128)
	if len(targets) == 0 {
		t.Fatal("wrapped history must still prefetch something")
	}
}

func TestNoDuplicateTargets(t *testing.T) {
	f := func(addrs []uint16) bool {
		p := New(smallConfig())
		for _, a := range addrs {
			targets := p.OnMiss(0x400, uint64(a)*64)
			seen := map[uint64]bool{}
			for _, tg := range targets {
				if seen[tg] {
					return false
				}
				seen[tg] = true
			}
			if len(targets) > p.Config().Degree {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	p := New(smallConfig())
	p.OnMiss(0x400, 0)
	p.OnMiss(0x400, 64)
	p.Reset()
	if p.Stats() != (Stats{}) {
		t.Fatal("Reset must clear stats")
	}
	// After reset the old stride must be gone: fallback to next-line.
	targets := p.OnMiss(0x400, 128)
	if targets[0] != 192 {
		t.Fatalf("post-reset target = %d, want next-line 192", targets[0])
	}
}

func TestNegativeDeltaPattern(t *testing.T) {
	p := New(smallConfig())
	p.OnMiss(0x400, 1024)
	p.OnMiss(0x400, 960)
	targets := p.OnMiss(0x400, 896)
	if targets[0] != 832 {
		t.Fatalf("descending stride target = %d, want 832", targets[0])
	}
}
