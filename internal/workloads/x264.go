package workloads

import (
	"math"

	"lva/internal/memsim"
)

// X264 stands in for PARSEC x264: H.264-style encoding of raw frames. The
// dominant, frequently-visited region is block motion estimation: each
// 16x16 macroblock of the current frame searches the previously
// reconstructed frame for the best match (diamond search over SAD). The
// integer pixel loads from the reference frame during SAD are the annotated
// approximate data (§IV). After motion estimation the residual is
// quantized, entropy-coded (bit-cost proxy) and the frame reconstructed.
// The paper's error metric weighs peak signal-to-noise ratio and bit rate
// equally.
type X264 struct {
	// Width, Height are the frame dimensions (multiples of MBSize).
	Width, Height int
	// Frames is the number of encoded frames (frame 0 is intra).
	Frames int
	// MBSize is the macroblock edge (16 in H.264).
	MBSize int
	// SearchRange bounds motion vectors per axis.
	SearchRange int
	// RowStep subsamples SAD rows (a standard early-out optimization).
	RowStep int
	// Quant is the residual quantization step.
	Quant int32
	// TickPerSAD models per-candidate non-memory cost; TickPerMB the
	// per-macroblock mode-decision and entropy-coding cost.
	TickPerSAD, TickPerMB int
}

// NewX264 returns the calibrated default configuration.
func NewX264() *X264 {
	return &X264{
		Width: 192, Height: 128, Frames: 6, MBSize: 16,
		SearchRange: 8, RowStep: 4, Quant: 8,
		TickPerSAD: 40, TickPerMB: 22000,
	}
}

// Name implements Workload.
func (x *X264) Name() string { return "x264" }

// FloatData implements Workload.
func (x *X264) FloatData() bool { return false }

// FeedbackFree implements Workload: the reconstructed reference frame is
// written by the encoder loop and re-loaded as the annotated SAD/half-pel
// reference pixels, and motion-search decisions taken on approximated SADs
// steer which candidate rows are loaded next.
func (x *X264) FeedbackFree() bool { return false }

// X264Output carries the encoder quality/rate results: per-frame PSNR of
// the reconstruction against the raw input, and the bit-cost proxy. Error:
// equal-weighted relative change in mean PSNR and bit rate (§IV).
type X264Output struct {
	PSNR float64 // mean PSNR (dB) over inter frames
	Bits float64 // total bit-cost proxy
}

// Error implements Output.
func (o X264Output) Error(precise Output) float64 {
	p, ok := precise.(X264Output)
	if !ok || p.PSNR == 0 || p.Bits == 0 {
		return 1
	}
	dp := math.Abs(o.PSNR-p.PSNR) / p.PSNR
	db := math.Abs(o.Bits-p.Bits) / p.Bits
	return 0.5*dp + 0.5*db
}

// synthPixel renders the source video: a moving diagonal gradient with two
// translating bright objects plus low-amplitude noise, quantized to 8-bit.
func synthPixel(rng *RNG, xx, yy, frame int) int32 {
	v := 60 + (xx+yy)/4 + frame*2
	// Object 1: moving square.
	ox, oy := 30+6*frame, 40+3*frame
	if xx >= ox && xx < ox+24 && yy >= oy && yy < oy+24 {
		v = 190 + (xx - ox)
	}
	// Object 2: moving ball.
	bx, by := 140-5*frame, 70+2*frame
	dx, dy := xx-bx, yy-by
	if dx*dx+dy*dy < 18*18 {
		v = 230 - (dx*dx+dy*dy)/20
	}
	v += rng.Intn(5) - 2
	if v < 0 {
		v = 0
	}
	if v > 255 {
		v = 255
	}
	return int32(v)
}

// Run implements Workload.
func (x *X264) Run(mem *memsim.Sim, seed uint64) Output {
	arena := NewArena()
	w, h, mb := x.Width, x.Height, x.MBSize

	// Reconstructed reference frame (written by the encoder loop).
	recon := NewI32Array(arena, w*h)

	// Reused scratch: one SAD row of reference pixels, the intra
	// neighbour rows, and the extracted current macroblock. Hoisted out
	// of the per-candidate/per-macroblock paths, which dominated the
	// kernel's allocation count.
	rowBuf := make([]int32, mb)
	intraTop := make([]int32, mb)
	intraLeft := make([]int32, mb)
	cur := make([]int32, mb*mb)

	// sad computes the (row-subsampled) sum of absolute differences
	// between the current macroblock and the reference at (rx, ry).
	// Reference pixel loads are the approximate data; each SAD row is a
	// distinct static load site, mirroring x264's unrolled pixel loops
	// (x264 has the largest static approximate-PC count in Figure 12).
	sad := func(cur []int32, rx, ry int) int64 {
		var total int64
		for r := 0; r < mb; r += x.RowStep {
			yy := ry + r
			if yy < 0 || yy >= h {
				return math.MaxInt32 // out of frame: reject candidate
			}
			// Distinct PC per SAD row and per column-unroll position,
			// mirroring x264's unrolled pixel loops.
			rowPCs := [4]uint64{
				pcBase(idX264, 16+r*4), pcBase(idX264, 16+r*4+1),
				pcBase(idX264, 16+r*4+2), pcBase(idX264, 16+r*4+3),
			}
			// The scalar loop loaded pixels left to right until it ran off
			// the frame edge, then rejected the candidate; reproduce that
			// exact load prefix before rejecting.
			n := mb
			if rx < 0 {
				n = 0
			} else if w-rx < mb {
				n = max(w-rx, 0)
			}
			recon.LoadRow(mem, rowPCs[:], yy*w+rx, n, true, rowBuf)
			if n < mb {
				return math.MaxInt32
			}
			for cx := 0; cx < mb; cx++ {
				d := cur[r*mb+cx] - rowBuf[cx]
				if d < 0 {
					d = -d
				}
				total += int64(d)
			}
		}
		mem.Tick(uint64(x.TickPerSAD))
		return total
	}

	// halfSAD evaluates a half-pel candidate between integer positions
	// (rx,ry) and (rx+dx,ry+dy) using 2-tap interpolation of the
	// reconstructed reference — x264's sub-pel refinement stage. Sampled
	// coarser than full-pel SAD (every 2*RowStep rows).
	halfSAD := func(cur []int32, rx, ry, dx, dy int) int64 {
		var total int64
		for r := 0; r < mb; r += 2 * x.RowStep {
			yy := ry + r
			if yy < 0 || yy+dy < 0 || yy >= h || yy+dy >= h {
				return math.MaxInt32
			}
			for cx := 0; cx < mb; cx += 2 {
				xx := rx + cx
				if xx < 0 || xx+dx < 0 || xx >= w || xx+dx >= w {
					return math.MaxInt32
				}
				a := recon.Load(mem, pcBase(idX264, 96+r/2+cx%4), yy*w+xx, true)
				b := recon.Load(mem, pcBase(idX264, 112+r/2+cx%4), (yy+dy)*w+xx+dx, true)
				d := cur[r*mb+cx] - (a+b+1)/2
				if d < 0 {
					d = -d
				}
				total += int64(d)
			}
		}
		mem.Tick(uint64(x.TickPerSAD))
		return total
	}

	// intraCost evaluates the three H.264 16x16 intra modes (DC,
	// horizontal, vertical) from the reconstructed neighbour pixels.
	// Returns the best mode cost, or MaxInt32 at frame edges. The
	// neighbour-pixel loads are approximate, with per-mode sites.
	intraCost := func(cur []int32, mx, my int) int64 {
		if mx == 0 || my == 0 {
			return math.MaxInt32
		}
		top, left := intraTop, intraLeft
		var dcSum int64
		for i := 0; i < mb; i++ {
			top[i] = recon.Load(mem, pcBase(idX264, 128+i%4), (my-1)*w+mx+i, true)
			left[i] = recon.Load(mem, pcBase(idX264, 132+i%4), (my+i)*w+mx-1, true)
			dcSum += int64(top[i]) + int64(left[i])
		}
		dc := int32(dcSum / int64(2*mb))
		var costDC, costH, costV int64
		for r := 0; r < mb; r += x.RowStep {
			for cx := 0; cx < mb; cx++ {
				p := cur[r*mb+cx]
				costDC += absI64(int64(p - dc))
				costH += absI64(int64(p - left[r]))
				costV += absI64(int64(p - top[cx]))
			}
		}
		mem.Tick(uint64(x.TickPerSAD))
		best := costDC
		if costH < best {
			best = costH
		}
		if costV < best {
			best = costV
		}
		return best
	}

	var bits float64
	var psnrSum float64
	interFrames := 0

	for frame := 0; frame < x.Frames; frame++ {
		frameRNG := NewRNG(seed ^ uint64(frame+1)*0x51ED)
		curFrame := make([]int32, w*h)
		for yy := 0; yy < h; yy++ {
			for xx := 0; xx < w; xx++ {
				curFrame[yy*w+xx] = synthPixel(frameRNG, xx, yy, frame)
			}
		}

		if frame == 0 {
			// Intra frame: store directly as the first reference.
			for i, v := range curFrame {
				recon.Data[i] = v
			}
			continue
		}

		var sse float64
		mbCols, mbRows := w/mb, h/mb
		newRecon := make([]int32, w*h)
		for mbi := 0; mbi < mbCols*mbRows; mbi++ {
			mem.SetThread(mbi * 4 / (mbCols * mbRows))
			mx := (mbi % mbCols) * mb
			my := (mbi / mbCols) * mb

			// Extract the current macroblock (current-frame pixels are
			// produced by the capture pipeline; treated as local).
			for r := 0; r < mb; r++ {
				copy(cur[r*mb:(r+1)*mb], curFrame[(my+r)*w+mx:(my+r)*w+mx+mb])
			}

			// Diamond search around (0,0) motion.
			bestX, bestY := mx, my
			bestCost := sad(cur, mx, my)
			stepSize := x.SearchRange / 2
			for stepSize >= 1 {
				improved := true
				for improved {
					improved = false
					for _, d := range [4][2]int{{stepSize, 0}, {-stepSize, 0}, {0, stepSize}, {0, -stepSize}} {
						cx, cy := bestX+d[0], bestY+d[1]
						if cx < mx-x.SearchRange || cx > mx+x.SearchRange ||
							cy < my-x.SearchRange || cy > my+x.SearchRange {
							continue
						}
						c := sad(cur, cx, cy)
						if c < bestCost {
							bestCost, bestX, bestY = c, cx, cy
							improved = true
						}
					}
				}
				stepSize /= 2
			}

			// Half-pel refinement: x264 checks the four half positions
			// around the best integer vector. We keep the integer vector
			// (prediction still reads integer pixels) but the refinement's
			// cost evaluation issues its interpolation loads, perturbing
			// the mode decision below when approximated.
			halfBest := bestCost
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				if c := halfSAD(cur, bestX, bestY, d[0], d[1]); c < halfBest {
					halfBest = c
				}
			}

			// Intra/inter mode decision (compare against 16x16 intra).
			_ = intraCost(cur, mx, my)
			mem.Tick(uint64(x.TickPerMB))

			// Residual coding against the chosen predictor, using the
			// precise reconstruction data (transform/quantization operate
			// on exact pixel buffers).
			for r := 0; r < mb; r++ {
				for cx := 0; cx < mb; cx++ {
					pred := int32(0)
					ry, rx2 := bestY+r, bestX+cx
					if ry >= 0 && ry < h && rx2 >= 0 && rx2 < w {
						pred = recon.Data[ry*w+rx2]
					}
					res := cur[r*mb+cx] - pred
					q := (res + x.Quant/2) / x.Quant * x.Quant
					if res < 0 {
						q = (res - x.Quant/2) / x.Quant * x.Quant
					}
					rec := pred + q
					if rec < 0 {
						rec = 0
					}
					if rec > 255 {
						rec = 255
					}
					newRecon[(my+r)*w+mx+cx] = rec
					// Bit-cost proxy: ~log2 of quantized magnitude.
					mag := q / x.Quant
					if mag < 0 {
						mag = -mag
					}
					bits += math.Log2(float64(mag) + 1)
					d := float64(curFrame[(my+r)*w+mx+cx] - rec)
					sse += d * d
				}
			}
		}

		// Publish the reconstruction as the next reference frame (encoder
		// writes it back through the hierarchy).
		recon.StoreRange(mem, pcBase(idX264, 60), 0, newRecon)
		mse := sse / float64(w*h)
		if mse < 1e-9 {
			mse = 1e-9
		}
		psnrSum += 10 * math.Log10(255*255/mse)
		interFrames++
	}

	return X264Output{PSNR: psnrSum / float64(interFrames), Bits: bits}
}

func absI64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
