package experiments

import (
	"fmt"
	"sync"
	"time"

	"lva/internal/core"
	"lva/internal/memsim"
	"lva/internal/obs"
	"lva/internal/obs/prov"
	"lva/internal/workloads"
)

// SweepSpec describes a cartesian design-space exploration over the
// approximator parameters (the paper's phase-1 methodology, §V-A). Every
// combination of the listed values runs once per benchmark. Empty lists
// default to the Table II baseline value.
type SweepSpec struct {
	// Benchmarks to sweep; empty means all seven.
	Benchmarks []string
	// GHBs are global-history-buffer sizes.
	GHBs []int
	// Windows are relaxed confidence windows (fractions; -1 = infinite).
	Windows []float64
	// Degrees are approximation degrees.
	Degrees []int
	// Delays are value delays (load instructions).
	Delays []int
	// MantissaLosses are FP precision reductions (bits).
	MantissaLosses []int
	// LHBs are local-history-buffer depths.
	LHBs []int
	// IntConfidence applies confidence to integer data too.
	IntConfidence bool
	// Proportional enables proportional confidence updates.
	Proportional bool
	// Seed is the workload input seed (0 means DefaultSeed).
	Seed uint64
	// CountersOnly drops the output-error column (OutputError is reported
	// as 0 for every point). In exchange, feedback-free benchmarks replay
	// the recorded precise stream instead of re-executing the kernel at
	// each design point — the cheap way to run huge cartesian grids when
	// only MPKI/coverage/fetch counters are needed. Benchmarks with
	// approximation feedback still execute.
	CountersOnly bool
}

// normalize fills defaults and returns the effective spec.
func (s SweepSpec) normalize() SweepSpec {
	if len(s.Benchmarks) == 0 {
		s.Benchmarks = workloads.Names()
	}
	if len(s.GHBs) == 0 {
		s.GHBs = []int{0}
	}
	if len(s.Windows) == 0 {
		s.Windows = []float64{0.10}
	}
	if len(s.Degrees) == 0 {
		s.Degrees = []int{0}
	}
	if len(s.Delays) == 0 {
		s.Delays = []int{4}
	}
	if len(s.MantissaLosses) == 0 {
		s.MantissaLosses = []int{0}
	}
	if len(s.LHBs) == 0 {
		s.LHBs = []int{4}
	}
	if s.Seed == 0 {
		s.Seed = DefaultSeed
	}
	return s
}

// Points returns how many simulations the spec implies (per benchmark
// combination count times benchmarks).
func (s SweepSpec) Points() int {
	n := s.normalize()
	return len(n.Benchmarks) * len(n.GHBs) * len(n.Windows) * len(n.Degrees) *
		len(n.Delays) * len(n.MantissaLosses) * len(n.LHBs)
}

// SweepPoint is one design point's results.
type SweepPoint struct {
	Benchmark    string
	GHB          int
	Window       float64
	Degree       int
	Delay        int
	MantissaLoss int
	LHB          int

	RawMPKI        float64
	EffectiveMPKI  float64
	NormalizedMPKI float64
	Coverage       float64
	Fetches        uint64
	NormFetches    float64
	OutputError    float64
}

// CSVHeader returns the column names matching SweepPoint.CSVRow.
func CSVHeader() []string {
	return []string{"benchmark", "ghb", "window", "degree", "delay", "mantissaLoss", "lhb",
		"rawMPKI", "effMPKI", "normMPKI", "coverage", "fetches", "normFetches", "outputError"}
}

// CSVRow renders the point as strings aligned with CSVHeader.
func (p SweepPoint) CSVRow() []string {
	return []string{
		p.Benchmark,
		fmt.Sprintf("%d", p.GHB),
		fmt.Sprintf("%g", p.Window),
		fmt.Sprintf("%d", p.Degree),
		fmt.Sprintf("%d", p.Delay),
		fmt.Sprintf("%d", p.MantissaLoss),
		fmt.Sprintf("%d", p.LHB),
		fmt.Sprintf("%.4f", p.RawMPKI),
		fmt.Sprintf("%.4f", p.EffectiveMPKI),
		fmt.Sprintf("%.4f", p.NormalizedMPKI),
		fmt.Sprintf("%.4f", p.Coverage),
		fmt.Sprintf("%d", p.Fetches),
		fmt.Sprintf("%.4f", p.NormFetches),
		fmt.Sprintf("%.4f", p.OutputError),
	}
}

// RunSweep executes the exploration and returns one point per combination,
// benchmark-major in the order given. The precise baselines warm up
// concurrently through the shared run cache before the cartesian product is
// expanded, and the points themselves run on a Parallelism-bounded worker
// pool admitting through the same process-wide gate as the figure drivers;
// results and the optional progress callback are deterministic in count,
// and the returned slice order is always the full cartesian order
// regardless of completion order.
func RunSweep(spec SweepSpec, progress func(done, total int)) ([]SweepPoint, error) {
	n := spec.normalize()
	total := spec.Points()

	// Resolve every benchmark first so bad names fail before any simulation,
	// then warm their precise baselines concurrently through the run cache.
	ws := make([]workloads.Workload, len(n.Benchmarks))
	for i, bench := range n.Benchmarks {
		w, err := workloads.ByName(bench)
		if err != nil {
			return nil, err
		}
		ws[i] = w
	}
	warm := newBatch("sweep")
	preciseRuns := make([]RunResult, len(ws))
	for i, w := range ws {
		i, w := i, w
		warm.add("warm-precise/"+w.Name(), func() { preciseRuns[i] = RunPrecise(w, n.Seed) })
	}
	warm.run()

	// Expand the cartesian product up front so workers fill a fixed slice.
	type job struct {
		idx     int
		bench   string
		w       workloads.Workload
		precise RunResult
		cfg     core.Config
		point   SweepPoint
	}
	var jobs []job
	for bi, bench := range n.Benchmarks {
		w := ws[bi]
		precise := preciseRuns[bi]
		for _, ghb := range n.GHBs {
			for _, win := range n.Windows {
				for _, deg := range n.Degrees {
					for _, delay := range n.Delays {
						for _, loss := range n.MantissaLosses {
							for _, lhb := range n.LHBs {
								cfg := core.DefaultConfig()
								cfg.GHBSize = ghb
								cfg.Window = win
								cfg.Degree = deg
								cfg.ValueDelay = delay
								cfg.MantissaLoss = loss
								cfg.LHBSize = lhb
								cfg.IntConfidence = n.IntConfidence
								cfg.ProportionalConfidence = n.Proportional
								if err := cfg.Validate(); err != nil {
									return nil, err
								}
								jobs = append(jobs, job{
									idx: len(jobs), bench: bench, w: w,
									precise: precise, cfg: cfg,
									point: SweepPoint{
										Benchmark: bench, GHB: ghb, Window: win,
										Degree: deg, Delay: delay,
										MantissaLoss: loss, LHB: lhb,
									},
								})
							}
						}
					}
				}
			}
		}
	}

	// A fixed worker pool (rather than one goroutine per point) keeps huge
	// sweeps cheap; every point still admits through the shared gate so
	// sweeps and figure drivers share one process-wide concurrency bound.
	out := make([]SweepPoint, len(jobs))
	feed := make(chan job)
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	workers := max(1, Parallelism)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range feed {
				var sim memsim.Result
				pt := j.point
				if n.CountersOnly && replayEnabled() && j.w.FeedbackFree() {
					gatedQ("sweep/"+j.bench, func(queued time.Duration) {
						sim = replayLVAPoint(j.w, j.cfg, n.Seed, queued)
					})
				} else {
					var run RunResult
					gatedQ("sweep/"+j.bench, func(queued time.Duration) {
						pc := provBegin(queued)
						run = RunLVA(j.w, j.cfg, n.Seed)
						if pc.on() {
							pc.point("sweep", "lva/"+j.bench, "sweep", prov.RouteExec, prov.CounterNone,
								provWhySweepExec, runKey("lva", j.w, fmt.Sprintf("%#v", j.cfg), n.Seed),
								nil, provStagesSweepExec, "")
						}
					})
					sim = run.Sim
					if !n.CountersOnly {
						pt.OutputError = ErrorVs(run, j.precise)
					}
				}
				pt.RawMPKI = sim.RawMPKI()
				pt.EffectiveMPKI = sim.EffectiveMPKI()
				pt.Coverage = sim.Coverage()
				pt.Fetches = sim.Fetches
				if p := j.precise.Sim.RawMPKI(); p > 0 {
					pt.NormalizedMPKI = pt.EffectiveMPKI / p
				}
				if p := float64(j.precise.Sim.Fetches); p > 0 {
					pt.NormFetches = float64(pt.Fetches) / p
				}
				out[j.idx] = pt
				eng().sweepPoints.Inc()
				mu.Lock()
				done++
				d := done
				if progress != nil {
					progress(d, total)
				}
				mu.Unlock()
				obs.Emit(obs.Event{Kind: obs.EventSweepPoint, Name: "lva", Done: d, Total: total})
			}
		}()
	}
	for _, j := range jobs {
		feed <- j
	}
	close(feed)
	wg.Wait()
	return out, nil
}
