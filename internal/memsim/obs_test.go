package memsim

import (
	"testing"

	"lva/internal/obs"
)

// TestObsGatedAtConstruction checks the zero-overhead contract: a
// simulator built with metrics disabled carries no metrics pointer at all,
// and one built with them enabled counts misses on the shared seam.
func TestObsGatedAtConstruction(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("test requires metrics disabled at entry")
	}
	s := New(DefaultConfig())
	if s.om != nil {
		t.Fatal("disabled simulator should have a nil metrics seam")
	}

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	s2 := New(DefaultConfig())
	if s2.om == nil {
		t.Fatal("enabled simulator should have a live metrics seam")
	}
	baseMiss := s2.om.misses.Value()
	baseFetch := s2.om.fetches.Value()
	s2.LoadFloat(0x400, 0x100000, 1.5, false) // cold: miss + demand fetch
	s2.LoadFloat(0x400, 0x100000, 1.5, false) // hit: no metric movement
	if got := s2.om.misses.Value() - baseMiss; got != 1 {
		t.Errorf("miss counter moved by %d, want 1", got)
	}
	if got := s2.om.fetches.Value() - baseFetch; got != 1 {
		t.Errorf("fetch counter moved by %d, want 1", got)
	}
}

// TestResultUnchangedByMetrics runs the same access sequence with metrics
// off and on and requires identical Result structs — instrumentation must
// observe, never steer.
func TestResultUnchangedByMetrics(t *testing.T) {
	run := func() Result {
		cfg := DefaultConfig()
		cfg.Approx.ValueDelay = 0
		s := New(cfg)
		for i := 0; i < 200; i++ {
			addr := uint64(0x100000 + (i%32)*64)
			s.LoadFloat(0x400, addr, float64(i%7), true)
			if i%3 == 0 {
				s.Store(0x500, addr+8)
			}
			s.Tick(2)
		}
		return s.Result()
	}
	if obs.Enabled() {
		t.Fatal("test requires metrics disabled at entry")
	}
	off := run()
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	on := run()
	if off != on {
		t.Fatalf("Result changed by enabling metrics:\noff: %+v\non:  %+v", off, on)
	}
}
