package experiments

import (
	"fmt"

	"lva/internal/fullsys"
	"lva/internal/workloads"
)

// ExtMLP is a full-system sensitivity study the paper's §VI-E observation
// invites: canneal speeds up more than its miss-latency reduction alone
// suggests because "the out-of-order processor is unable to fully mask the
// miss latency". Here we vary how much latency the core can hide — the
// ROB depth and the MSHR count — and measure LVA's degree-0 speedup under
// each. Expected shape: the more latency the baseline machine already
// hides (bigger ROB/more MSHRs), the smaller LVA's speedup; conversely a
// narrow machine benefits most.
func ExtMLP() *Figure {
	f := &Figure{
		ID:         "ext-mlp",
		Title:      "LVA speedup sensitivity to ROB depth and MSHR count (degree 0)",
		ValueUnit:  "speedup fraction",
		Benchmarks: workloads.Names(),
	}

	type machine struct {
		label string
		rob   int
		mshrs int
	}
	machines := []machine{
		{"ROB-16/MSHR-4", 16, 4},
		{"ROB-32/MSHR-8", 32, 8}, // paper Table II
		{"ROB-64/MSHR-16", 64, 16},
	}

	for _, m := range machines {
		m := m
		row := Row{Label: m.label, Values: make([]float64, len(workloads.Names()))}
		forEachWorkload("ext-mlp/"+m.label, func(i int, w workloads.Workload) {
			base := fullsys.DefaultConfig()
			base.ROB = m.rob
			base.MSHRs = m.mshrs
			precise := runFullsys(w, base)

			acfg := BaselineFor(w)
			acfg.ValueDelay = 1
			lvaCfg := base
			lvaCfg.Approx = &acfg
			lva := runFullsys(w, lvaCfg)

			row.Values[i] = float64(precise.Cycles)/float64(lva.Cycles) - 1
		})
		f.Rows = append(f.Rows, row)
	}
	f.Notes = append(f.Notes,
		"paper §VI-E: canneal's simple cost computation defeats the OoO engine's latency hiding, so LVA helps it most",
		fmt.Sprintf("middle row is the paper's Table II machine (%d-entry ROB)", fullsys.DefaultConfig().ROB))
	return f
}
