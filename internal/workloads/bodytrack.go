package workloads

import (
	"math"

	"lva/internal/memsim"
)

// Bodytrack stands in for PARSEC bodytrack: an annealed particle filter
// tracking a body through multi-camera image streams. Synthetic frames from
// four cameras contain a bright multi-part body on a noisy background; each
// particle hypothesizes a body pose and is weighted by a likelihood computed
// from image-map pixel values sampled around the hypothesized parts. Those
// integer pixel loads are the annotated approximate data (§IV); particle
// state and weights are precise. The output is the estimated position
// vector per frame, compared pairwise against precise execution.
type Bodytrack struct {
	// Width, Height are the per-camera image dimensions.
	Width, Height int
	// Cameras is the number of camera feeds (the paper's input has four).
	Cameras int
	// Frames is the number of tracked time steps.
	Frames int
	// Particles is the particle-filter population.
	Particles int
	// Layers is the number of annealing layers per frame.
	Layers int
	// PartPoints is the number of sample points per body part.
	PartPoints int
	// TickPerLikelihood models non-memory work per sampled point.
	TickPerLikelihood int
}

// NewBodytrack returns the calibrated default configuration.
func NewBodytrack() *Bodytrack {
	return &Bodytrack{
		Width: 256, Height: 192, Cameras: 4, Frames: 5,
		Particles: 128, Layers: 2, PartPoints: 12, TickPerLikelihood: 24,
	}
}

// Name implements Workload.
func (b *Bodytrack) Name() string { return "bodytrack" }

// FloatData implements Workload.
func (b *Bodytrack) FloatData() bool { return false }

// FeedbackFree implements Workload: particle weights computed from
// annotated image-map loads persist across frames, and the next frame's
// predicted body position (hence the region of interest and the sample
// addresses) depends on them — approximation feeds back into the stream.
func (b *Bodytrack) FeedbackFree() bool { return false }

// Vec2 is a 2-D position estimate.
type Vec2 struct{ X, Y float64 }

// BodytrackOutput is the per-frame estimated body position. The paper's
// metric: pair-wise comparison of the output vectors; we report the mean
// Euclidean distance normalized by the image diagonal.
type BodytrackOutput struct {
	Trajectory []Vec2
	Diagonal   float64
}

// Error implements Output.
func (o BodytrackOutput) Error(precise Output) float64 {
	p, ok := precise.(BodytrackOutput)
	if !ok || len(p.Trajectory) != len(o.Trajectory) || len(o.Trajectory) == 0 || o.Diagonal == 0 {
		return 1
	}
	var sum float64
	for i := range o.Trajectory {
		dx := o.Trajectory[i].X - p.Trajectory[i].X
		dy := o.Trajectory[i].Y - p.Trajectory[i].Y
		sum += math.Sqrt(dx*dx + dy*dy)
	}
	return sum / float64(len(o.Trajectory)) / o.Diagonal
}

// bodyPart describes one tracked part as an offset from the body centre.
type bodyPart struct {
	dx, dy float64 // centre offset, body-relative
	radius float64
}

var bodyParts = []bodyPart{
	{0, 0, 18},   // torso
	{0, -28, 10}, // head
	{-22, 8, 8},  // left arm
	{22, 8, 8},   // right arm
	{0, 32, 12},  // legs
}

// bodyCenter returns the true body position at a frame (smooth path).
func bodyCenter(w, h, frame int) (float64, float64) {
	t := float64(frame)
	x := float64(w)*0.30 + 8*t + 6*math.Sin(t*0.9)
	y := float64(h)*0.50 + 4*math.Cos(t*0.7)
	return x, y
}

// SynthFrame renders the synthetic image map for one camera and frame:
// background noise plus bright blobs at the body parts. Cameras view the
// scene with small offsets. Exported so examples can visualize tracking
// (Figure 1 analogue).
func SynthFrame(rng *RNG, w, h, cam, frame int) []int32 {
	img := make([]int32, w*h)
	for i := range img {
		img[i] = int32(20 + rng.Intn(20)) // background noise
	}
	cx, cy := bodyCenter(w, h, frame)
	// Camera parallax offset.
	cx += float64(cam%2) * 2
	cy += float64(cam/2) * 2
	for _, p := range bodyParts {
		px, py := cx+p.dx, cy+p.dy
		r := int(p.radius) + 2
		for y := int(py) - r; y <= int(py)+r; y++ {
			for x := int(px) - r; x <= int(px)+r; x++ {
				if x < 0 || y < 0 || x >= w || y >= h {
					continue
				}
				dx, dy := float64(x)-px, float64(y)-py
				d := math.Sqrt(dx*dx + dy*dy)
				if d <= p.radius+1.5 {
					v := 230 - 12*d
					if v > float64(img[y*w+x]) {
						img[y*w+x] = int32(v)
					}
				}
			}
		}
	}
	return img
}

// likelihoodSample is the expected edge intensity at a part sample point.
const expectedIntensity = 200

// Run implements Workload.
func (b *Bodytrack) Run(mem *memsim.Sim, seed uint64) Output {
	rng := NewRNG(seed)
	arena := NewArena()
	w, h := b.Width, b.Height

	type particle struct {
		x, y float64
		wt   float64
	}
	parts := make([]particle, b.Particles)
	cx0, cy0 := bodyCenter(w, h, 0)
	for i := range parts {
		parts[i] = particle{x: cx0 + rng.Norm()*4, y: cy0 + rng.Norm()*4, wt: 1}
	}

	traj := make([]Vec2, 0, b.Frames)

	for frame := 0; frame < b.Frames; frame++ {
		// Each frame's raw camera images arrive at fresh addresses (frames
		// stream in from the capture pipeline), so first touches are
		// compulsory misses, as with real camera input.
		frameRNG := NewRNG(seed ^ uint64(frame+1)*0x9E37)
		raws := make([]*I32Array, b.Cameras)
		images := make([]*I32Array, b.Cameras)
		for c := 0; c < b.Cameras; c++ {
			raws[c] = NewI32Array(arena, w*h)
			copy(raws[c].Data, SynthFrame(frameRNG, w, h, c, frame))
			images[c] = NewI32Array(arena, w*h)
		}

		// Image-map construction: a precise preprocessing pass (bodytrack
		// builds edge/foreground maps before the particle filter). Only a
		// region of interest around the predicted body position is
		// processed; these raw-pixel loads are NOT annotated approximate,
		// so their misses remain on the critical path under LVA, exactly
		// like the un-annotated majority of the real binary (Figure 12).
		pcx, pcy := bodyCenter(w, h, frame)
		roi := 64
		x0, x1 := clampIdx(int(pcx)-roi, w), clampIdx(int(pcx)+roi, w)
		y0, y1 := clampIdx(int(pcy)-roi, h), clampIdx(int(pcy)+roi, h)
		for c := 0; c < b.Cameras; c++ {
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					v := raws[c].Load(mem, pcBase(idBodytrack, 24+c), y*w+x, false)
					v2 := v
					if x+1 < w {
						v2 = raws[c].Load(mem, pcBase(idBodytrack, 28+c), y*w+x+1, false)
					}
					images[c].Store(mem, pcBase(idBodytrack, 32+c), y*w+x, (v+v2)/2)
				}
			}
		}

		sigma := 900.0
		for layer := 0; layer < b.Layers; layer++ {
			// Weight every particle by its likelihood. The evaluation is
			// camera-major (as in PARSEC bodytrack's per-image likelihood
			// pass) so one camera's image map stays cache-resident while
			// all particles sample it.
			errSums := make([]float64, len(parts))
			for c := 0; c < b.Cameras; c++ {
				for pi := range parts {
					mem.SetThread(pi * 4 / len(parts))
					for bp, part := range bodyParts {
						px := parts[pi].x + part.dx
						py := parts[pi].y + part.dy
						for s := 0; s < b.PartPoints; s++ {
							ang := 2 * math.Pi * float64(s) / float64(b.PartPoints)
							sx := int(px + part.radius*0.5*math.Cos(ang))
							sy := int(py + part.radius*0.5*math.Sin(ang))
							x, y := sx+c%2*2, sy+c/2*2
							if x < 0 || y < 0 || x >= w || y >= h {
								errSums[pi] += expectedIntensity * expectedIntensity / 4
								continue
							}
							// The image-map pixel load: approximate.
							v := images[c].Load(mem, pcBase(idBodytrack, bp*4+c), y*w+x, true)
							d := float64(expectedIntensity - v)
							errSums[pi] += d * d
							mem.Tick(uint64(b.TickPerLikelihood))
						}
					}
				}
			}
			for pi := range parts {
				parts[pi].wt = math.Exp(-errSums[pi] / (sigma * float64(b.Cameras*b.PartPoints*len(bodyParts))))
			}

			// Resample (systematic) and diffuse.
			var totalW float64
			for _, p := range parts {
				totalW += p.wt
			}
			if totalW == 0 {
				totalW = 1
			}
			newParts := make([]particle, len(parts))
			step := totalW / float64(len(parts))
			u := rng.Float64() * step
			acc, j := 0.0, 0
			for i := range parts {
				target := u + float64(i)*step
				for acc+parts[j].wt < target && j < len(parts)-1 {
					acc += parts[j].wt
					j++
				}
				spread := 3.0 / float64(layer+1)
				newParts[i] = particle{
					x:  parts[j].x + rng.Norm()*spread,
					y:  parts[j].y + rng.Norm()*spread,
					wt: 1,
				}
			}
			parts = newParts
			sigma *= 0.6
		}

		// Estimate: weighted mean of final-layer particles (weights were
		// reset by resampling; use unweighted mean of the population).
		var ex, ey float64
		for _, p := range parts {
			ex += p.x
			ey += p.y
		}
		ex /= float64(len(parts))
		ey /= float64(len(parts))
		traj = append(traj, Vec2{X: ex, Y: ey})

		// Predict: shift particles along the motion model toward the next
		// frame (constant-velocity assumption).
		for i := range parts {
			parts[i].x += 8
		}
	}

	return BodytrackOutput{
		Trajectory: traj,
		Diagonal:   math.Sqrt(float64(w*w + h*h)),
	}
}
