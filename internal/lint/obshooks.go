package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// obshooksAnalyzer guards the observability seams of the simulator hot
// paths. The packages on the per-load/per-miss path (memsim, cache, core)
// must stay deterministic and zero-overhead-when-off, so inside them:
//
//   - time.Now is forbidden: wall-clock reads do not belong on a simulated
//     path (timing metrics live in the experiment engine's volatile
//     histograms), and a stray one is usually a debugging leftover.
//   - mutating a package-level variable is forbidden: shared counters must
//     go through the lva/internal/obs registry (atomic, race-safe under
//     the cross-figure scheduler), not ad-hoc globals.
//
// The attribution flight recorder (lva/internal/obs/attr) is itself wired
// into the annotated-load path through a nil-pointer seam, so it obeys the
// same rules plus one more: no calls into package fmt anywhere in it —
// formatting boxes operands and its snapshot layer must stay encoding/json
// + strconv only.
//
// Test files are exempt, as is anything acknowledged with //lint:ignore.
var obshooksAnalyzer = &Analyzer{
	Name: "obshooks",
	Doc:  "forbid time.Now and package-level counter mutation in simulator hot-path packages; use the obs registry seams",
	Run:  runObshooks,
}

// hotPathPkgs are the packages on the per-load simulation path. The trace
// package is here for its grid capture sink: (*GridWriter).Access runs on
// every access of a recording run.
var hotPathPkgs = map[string]bool{
	"lva/internal/memsim":    true,
	"lva/internal/cache":     true,
	"lva/internal/core":      true,
	"lva/internal/obs/attr":  true,
	"lva/internal/obs/phase": true,
	"lva/internal/obs/prov":  true,
	"lva/internal/trace":     true,
}

// attrSeamPkgs additionally ban fmt outright (not just in hot-named
// functions, as hotpath does): the flight recorder is linked into every
// simulator build and must never grow a formatting dependency.
var attrSeamPkgs = map[string]bool{
	"lva/internal/obs/attr":  true,
	"lva/internal/obs/phase": true,
	"lva/internal/obs/prov":  true,
}

func runObshooks(p *Pass) {
	// Unlike the repo-wide analyzers, obshooks targets a few named
	// packages, so only its own fixtures opt in (the shared fixtures
	// legitimately use time.Now for other analyzers).
	if !hotPathPkgs[p.Pkg.Path] &&
		!(isFixturePath(p.Pkg.Path) && strings.Contains(p.Pkg.Path, "obshooks")) {
		return
	}
	banFmt := attrSeamPkgs[p.Pkg.Path] ||
		(isFixturePath(p.Pkg.Path) && strings.Contains(p.Pkg.Path, "obshooks_attr"))
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if p.InTestFile(n.Pos()) {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if isTimeNow(p, n) {
					p.Reportf(n.Pos(), "time.Now on a simulator hot path: wall-clock timing belongs in the experiment engine's volatile obs histograms")
				}
				if banFmt && isFmtCall(p, n) {
					p.Reportf(n.Pos(), "call into package fmt in the attribution seam: the flight recorder rides the annotated-load path; render with encoding/json or strconv instead")
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportGlobalMutation(p, n.Pos(), lhs)
				}
			case *ast.IncDecStmt:
				reportGlobalMutation(p, n.Pos(), n.X)
			}
			return true
		})
	}
}

// reportGlobalMutation flags writes whose root identifier is a
// package-level variable of the package under analysis.
func reportGlobalMutation(p *Pass, pos token.Pos, e ast.Expr) {
	id, ok := unwrapIdentExpr(e)
	if !ok {
		return
	}
	v, ok := p.Pkg.Info.ObjectOf(id).(*types.Var)
	if !ok || v.Parent() != p.Pkg.Types.Scope() {
		return
	}
	p.Reportf(pos, "mutation of package-level %s in a hot-path package: shared counters must go through the lva/internal/obs registry seam", v.Name())
}
