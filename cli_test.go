package lva_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// CLI integration tests: build the commands once and drive them end to end
// through their real entry points. Skipped under -short.

var (
	cliBin = map[string]string{}
	cliDir string
)

func buildCLI(t *testing.T, name string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	if p, ok := cliBin[name]; ok {
		return p
	}
	if cliDir == "" {
		// Binaries are shared across tests, so they must outlive any one
		// test's TempDir; the OS cleans this up.
		d, err := os.MkdirTemp("", "lva-cli-")
		if err != nil {
			t.Fatal(err)
		}
		cliDir = d
	}
	bin := filepath.Join(cliDir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	cliBin[name] = bin
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	return stdout.String(), stderr.String(), err
}

func TestLvaexpJSON(t *testing.T) {
	bin := buildCLI(t, "lvaexp")
	out, _, err := runCLI(t, bin, "-format", "json", "fig12")
	if err != nil {
		t.Fatalf("lvaexp: %v", err)
	}
	var fig struct {
		ID     string `json:"id"`
		Series []struct {
			Label  string    `json:"label"`
			Values []float64 `json:"values"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(out), &fig); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if fig.ID != "fig12" || len(fig.Series) == 0 || len(fig.Series[0].Values) != 7 {
		t.Fatalf("unexpected figure: %+v", fig)
	}
}

func TestLvaexpUnknownExperiment(t *testing.T) {
	bin := buildCLI(t, "lvaexp")
	_, stderr, err := runCLI(t, bin, "nosuch")
	if err == nil {
		t.Fatal("unknown experiment must exit nonzero")
	}
	if !strings.Contains(stderr, "unknown experiment") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestLvasimSingleBenchmark(t *testing.T) {
	bin := buildCLI(t, "lvasim")
	out, _, err := runCLI(t, bin, "-bench", "swaptions", "-attach", "lva")
	if err != nil {
		t.Fatalf("lvasim: %v", err)
	}
	if !strings.Contains(out, "swaptions") || !strings.Contains(out, "lva") {
		t.Fatalf("output missing expected fields:\n%s", out)
	}
}

func TestLvatraceCaptureInfoReplay(t *testing.T) {
	bin := buildCLI(t, "lvatrace")
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "sw.lvat")

	out, _, err := runCLI(t, bin, "-capture", "swaptions", "-o", tracePath)
	if err != nil {
		t.Fatalf("capture: %v\n%s", err, out)
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Fatalf("trace file missing: %v", err)
	}

	out, _, err = runCLI(t, bin, "-info", tracePath)
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if !strings.Contains(out, "4 threads") || !strings.Contains(out, "approximate=") {
		t.Fatalf("info output:\n%s", out)
	}

	out, _, err = runCLI(t, bin, "-replay", tracePath, "-degree", "4")
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !strings.Contains(out, "lva degree 4") || !strings.Contains(out, "cycles=") {
		t.Fatalf("replay output:\n%s", out)
	}
}

func TestLvadesignCSV(t *testing.T) {
	bin := buildCLI(t, "lvadesign")
	out, _, err := runCLI(t, bin, "-bench", "swaptions", "-degrees", "0,4", "-q")
	if err != nil {
		t.Fatalf("lvadesign: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "benchmark,ghb,window,degree") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.HasPrefix(l, "swaptions,") {
			t.Fatalf("row = %q", l)
		}
	}
}

// TestLvaexpMetricsSnapshotStable runs the same experiment twice in fresh
// processes and requires byte-identical -metrics output: the deterministic
// snapshot is part of the repo's reproducibility surface.
func TestLvaexpMetricsSnapshotStable(t *testing.T) {
	bin := buildCLI(t, "lvaexp")
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	var snaps [2][]byte
	for i, p := range paths {
		if out, stderr, err := runCLI(t, bin, "-metrics", p, "fig12"); err != nil {
			t.Fatalf("lvaexp -metrics: %v\n%s%s", err, out, stderr)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = b
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Fatalf("-metrics output not byte-stable across runs:\n%s\n---\n%s", snaps[0], snaps[1])
	}
	var snap struct {
		Metrics []struct {
			Name  string `json:"name"`
			Count uint64 `json:"count"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(snaps[0], &snap); err != nil {
		t.Fatalf("snapshot is not JSON: %v\n%s", err, snaps[0])
	}
	counts := map[string]uint64{}
	for _, m := range snap.Metrics {
		counts[m.Name] = m.Count
	}
	for _, name := range []string{"memsim_load_misses", "core_trainings", "runcache_simulated"} {
		if counts[name] == 0 {
			t.Errorf("snapshot metric %s is zero:\n%s", name, snaps[0])
		}
	}
	if _, volatile := counts["run_wall_seconds"]; volatile {
		t.Error("deterministic snapshot leaked a volatile timing histogram")
	}
}

// TestLvareportMetricsSection feeds an lvaexp snapshot to lvareport and
// checks the rendered Metrics table.
func TestLvareportMetricsSection(t *testing.T) {
	lvaexp := buildCLI(t, "lvaexp")
	lvareport := buildCLI(t, "lvareport")
	p := filepath.Join(t.TempDir(), "metrics.json")
	if out, stderr, err := runCLI(t, lvaexp, "-metrics", p, "fig12"); err != nil {
		t.Fatalf("lvaexp -metrics: %v\n%s%s", err, out, stderr)
	}
	out, _, err := runCLI(t, lvareport, "-only", "fig12", "-metrics", p)
	if err != nil {
		t.Fatalf("lvareport -metrics: %v", err)
	}
	for _, want := range []string{"## Metrics", "| metric | kind | value |", "memsim_load_misses"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestLvaexpTimelineAndAttr drives the flight-recorder flags end to end:
// -timeline must write Perfetto-loadable Chrome trace-event JSON and -attr
// a byte-stable attribution snapshot with per-site and per-epoch records.
func TestLvaexpTimelineAndAttr(t *testing.T) {
	bin := buildCLI(t, "lvaexp")
	dir := t.TempDir()
	tlPath := filepath.Join(dir, "timeline.json")
	attrPaths := [2]string{filepath.Join(dir, "attr-a.json"), filepath.Join(dir, "attr-b.json")}

	if out, stderr, err := runCLI(t, bin, "-timeline", tlPath, "-attr", attrPaths[0], "fig12"); err != nil {
		t.Fatalf("lvaexp -timeline -attr: %v\n%s%s", err, out, stderr)
	}

	tl, err := os.ReadFile(tlPath)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(tl, &trace); err != nil {
		t.Fatalf("-timeline output is not trace-event JSON: %v\n%.300s", err, tl)
	}
	if trace.DisplayTimeUnit != "ms" || len(trace.TraceEvents) == 0 {
		t.Fatalf("unexpected trace document: unit=%q events=%d", trace.DisplayTimeUnit, len(trace.TraceEvents))
	}
	var figSpan bool
	for _, e := range trace.TraceEvents {
		if e.Ph == "X" && e.Name == "fig12" {
			figSpan = true
		}
	}
	if !figSpan {
		t.Error("timeline missing the fig12 figure span")
	}

	// Attribution: sites + epochs present, and byte-stable across processes.
	if out, stderr, err := runCLI(t, bin, "-attr", attrPaths[1], "fig12"); err != nil {
		t.Fatalf("lvaexp -attr (second run): %v\n%s%s", err, out, stderr)
	}
	var snaps [2][]byte
	for i, p := range attrPaths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = b
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Error("-attr output not byte-stable across runs")
	}
	var snap struct {
		Scopes []struct {
			Scope  string            `json:"scope"`
			Sites  []json.RawMessage `json:"sites"`
			Epochs []json.RawMessage `json:"epochs"`
		} `json:"scopes"`
	}
	if err := json.Unmarshal(snaps[0], &snap); err != nil {
		t.Fatalf("-attr output is not a snapshot: %v", err)
	}
	if len(snap.Scopes) == 0 {
		t.Fatal("-attr snapshot has no scopes")
	}
	var sites, epochs int
	for _, sc := range snap.Scopes {
		sites += len(sc.Sites)
		epochs += len(sc.Epochs)
	}
	if sites == 0 || epochs == 0 {
		t.Fatalf("-attr snapshot has %d sites and %d epochs, want both > 0", sites, epochs)
	}
}

// TestLvareportAttrSection checks the rendered attribution report.
func TestLvareportAttrSection(t *testing.T) {
	bin := buildCLI(t, "lvareport")
	out, _, err := runCLI(t, bin, "-only", "fig12", "-attr")
	if err != nil {
		t.Fatalf("lvareport -attr: %v", err)
	}
	for _, want := range []string{
		"## Approximation attribution",
		"| pc | loads | misses | covered | mean rel err | max rel err | conf +/- |",
		"/lva/",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%.2000s", want, out)
		}
	}
}

func TestLvareportSubset(t *testing.T) {
	bin := buildCLI(t, "lvareport")
	out, _, err := runCLI(t, bin, "-only", "fig12")
	if err != nil {
		t.Fatalf("lvareport: %v", err)
	}
	for _, want := range []string{"# Load Value Approximation", "## fig12", "| series |", "x264"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}
