package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file implements the order-taint analysis underneath the mapiter
// analyzer. A value is order-tainted when the order of its elements (or
// the order in which it was produced) derives from an unspecified-order
// construct: iteration over a Go map or the winner of a multi-case select.
// Taint moves forward through assignments, appends, composite literals and
// calls; it is cleared by a recognized sort barrier. A finding is produced
// only when an order-tainted value reaches a configured sink with the
// whole chain statically visible — across function boundaries, per-function
// summaries carry the three facts that matter to callers: "my result is
// tainted", "taint on parameter i reaches my result" and "parameter i
// reaches a sink inside me".

// TaintSummary is the caller-visible behaviour of one function.
type TaintSummary struct {
	// ReturnsTainted marks a result whose order derives from a map/select
	// inside the function (or transitively inside its callees),
	// independent of the arguments.
	ReturnsTainted bool
	// ReturnSrc describes the source for ReturnsTainted findings.
	ReturnSrc string
	// ParamToResult is a bitmask: result order-tainted when argument i is.
	ParamToResult uint64
	// ParamToSink is a bitmask: argument i flows into an ordering-
	// sensitive sink inside the function without a sort barrier.
	ParamToSink uint64
	// SinkDesc describes (for messages) the sink behind ParamToSink.
	SinkDesc string
	// SortsParam is a bitmask: argument i is passed through a sort barrier
	// inside the function, so the caller's value is ordered afterwards.
	SortsParam uint64
}

// TaintConfig parameterizes the analysis with the analyzer's notion of
// sinks and barriers.
type TaintConfig struct {
	// IsSink classifies a resolved callee as ordering-sensitive; desc is
	// used in the finding message ("figure table", "hash", ...).
	IsSink func(callee *types.Func) (desc string, ok bool)
	// IsBarrier classifies a resolved callee as a sort barrier for its
	// first argument (sort.Slice, slices.Sort, ...).
	IsBarrier func(callee *types.Func) bool
	// SkipFindings suppresses findings (not summaries) for a function —
	// test files still contribute summaries but do not report.
	SkipFindings func(fn *Func) bool
}

// TaintFinding is one source-to-sink chain.
type TaintFinding struct {
	// Pos is the sink call site.
	Pos token.Pos
	// Fn encloses the sink call.
	Fn *Func
	// SinkDesc names what the value flowed into.
	SinkDesc string
	// Src describes the order source ("range over map", "multi-case
	// select receive", or a callee chain).
	Src string
	// SrcPos is the source position when it is in the same function.
	SrcPos token.Pos
}

// taintVal is the abstract value: which real sources and which enclosing-
// function parameters the expression's order derives from.
type taintVal struct {
	real   bool
	params uint64
	src    string
	srcPos token.Pos
}

func (t taintVal) empty() bool { return !t.real && t.params == 0 }

func (t taintVal) union(o taintVal) taintVal {
	out := t
	out.params |= o.params
	if o.real && !t.real {
		out.real, out.src, out.srcPos = true, o.src, o.srcPos
	}
	return out
}

// ref addresses a storage location precisely enough for the analysis: the
// root object plus a field path ("" for the variable itself, ".Scopes"
// for a field). Index expressions collapse onto their container, so
// element reads inherit container taint and sorts of x clear x[i] chains.
type ref struct {
	obj  types.Object
	path string
}

// AnalyzeTaint runs the analysis over the graph: summaries to a fixed
// point first, then one reporting pass that records sink findings.
func AnalyzeTaint(g *Graph, cfg TaintConfig) []TaintFinding {
	_, findings := runTaint(g, cfg)
	return findings
}

// runTaint is AnalyzeTaint with the analysis object kept, so tests can
// assert on the per-function summaries behind the findings.
func runTaint(g *Graph, cfg TaintConfig) (*taintAnalysis, []TaintFinding) {
	a := &taintAnalysis{g: g, cfg: cfg, sums: make(map[*Func]*TaintSummary, len(g.order))}
	for _, fn := range g.order {
		a.sums[fn] = &TaintSummary{}
	}
	g.Fixpoint(func(fn *Func) bool { return a.analyze(fn, nil) })
	var findings []TaintFinding
	for _, fn := range g.order {
		if cfg.SkipFindings != nil && cfg.SkipFindings(fn) {
			continue
		}
		a.analyze(fn, &findings)
	}
	return a, findings
}

// Summary exposes a function's fixed-point summary (for tests).
func (a *taintAnalysis) Summary(fn *Func) *TaintSummary { return a.sums[fn] }

type taintAnalysis struct {
	g    *Graph
	cfg  TaintConfig
	sums map[*Func]*TaintSummary
}

// analyze runs one forward pass over fn's body. With findings == nil it
// only grows the summary (fixpoint mode) and reports whether it changed;
// otherwise it appends sink findings.
func (a *taintAnalysis) analyze(fn *Func, findings *[]TaintFinding) bool {
	if fn.Decl.Body == nil {
		return false
	}
	sum := a.sums[fn]
	before := *sum
	st := &state{a: a, fn: fn, sum: sum, env: make(map[ref]taintVal), findings: findings}
	// Seed parameters with their bit so flows to returns/sinks surface in
	// the summary. 64 parameters is beyond any signature in this module.
	if sig, ok := fn.Obj.Type().(*types.Signature); ok {
		for i := 0; i < sig.Params().Len() && i < 64; i++ {
			p := sig.Params().At(i)
			st.env[ref{p, ""}] = taintVal{params: 1 << uint(i)}
		}
	}
	st.block(fn.Decl.Body)
	return *sum != before
}

type state struct {
	a        *taintAnalysis
	fn       *Func
	sum      *TaintSummary
	env      map[ref]taintVal
	findings *[]TaintFinding
	// litDepth counts enclosing function literals: a `return` inside a
	// closure returns from the closure, not from fn, so it must not feed
	// fn's return summary (a sort comparator's `return xs[i] < xs[j]`
	// would otherwise mark the sorter itself as returning tainted data).
	litDepth int
}

func (s *state) info() *types.Info { return s.fn.Pkg.Info }

// refOf resolves an assignable expression to its storage ref.
func (s *state) refOf(e ast.Expr) (ref, bool) {
	path := ""
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := s.info().ObjectOf(x)
			if obj == nil {
				return ref{}, false
			}
			return ref{obj, path}, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return ref{}, false
			}
			e = x.X
		case *ast.SelectorExpr:
			path = "." + x.Sel.Name + path
			e = x.X
		case *ast.IndexExpr:
			// Collapse elements onto their container.
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return ref{}, false
		}
	}
}

// lookup reads the taint of a ref, falling back to whole-variable taint
// for field paths.
func (s *state) lookup(r ref) taintVal {
	if t, ok := s.env[r]; ok {
		return t
	}
	if r.path != "" {
		if t, ok := s.env[ref{r.obj, ""}]; ok {
			return t
		}
	}
	return taintVal{}
}

// set writes (or kills) the taint of an assignable expression.
func (s *state) set(lhs ast.Expr, t taintVal) {
	// Keyed/indexed stores do not define the container's order: inserting
	// a map-ordered value into m[k] or out[i] is order-insensitive.
	if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); isIndex {
		return
	}
	r, ok := s.refOf(lhs)
	if !ok {
		return
	}
	if t.empty() {
		delete(s.env, r)
		return
	}
	s.env[r] = t
}

// kill clears taint for the expression's ref (sort barrier applied).
func (s *state) kill(e ast.Expr) {
	// sort.Sort(byName(xs)) sorts xs through a conversion: unwrap it.
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := s.info().Types[call.Fun]; ok && tv.IsType() {
			e = call.Args[0]
		}
	}
	if r, ok := s.refOf(e); ok {
		delete(s.env, r)
		// A sort of the whole variable also orders any tracked field.
		if r.path == "" {
			for k := range s.env {
				if k.obj == r.obj {
					delete(s.env, k)
				}
			}
		}
	}
}

// eval computes the taint of an expression, emitting findings/summary
// facts for any sink calls inside it.
func (s *state) eval(e ast.Expr) taintVal {
	switch x := e.(type) {
	case nil:
		return taintVal{}
	case *ast.Ident:
		return s.lookup(ref{s.info().ObjectOf(x), ""})
	case *ast.ParenExpr:
		return s.eval(x.X)
	case *ast.StarExpr:
		return s.eval(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			// Plain channel receive: not an order source for mapiter
			// (detsync owns channel-order rules); taint does not flow
			// through a channel element here.
			return taintVal{}
		}
		return s.eval(x.X)
	case *ast.BinaryExpr:
		return s.eval(x.X).union(s.eval(x.Y))
	case *ast.SelectorExpr:
		if r, ok := s.refOf(x); ok {
			return s.lookup(r)
		}
		return s.eval(x.X)
	case *ast.IndexExpr:
		return s.eval(x.X).union(s.eval(x.Index))
	case *ast.SliceExpr:
		return s.eval(x.X)
	case *ast.TypeAssertExpr:
		return s.eval(x.X)
	case *ast.CompositeLit:
		var t taintVal
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.union(s.eval(kv.Value))
				continue
			}
			t = t.union(s.eval(el))
		}
		return t
	case *ast.KeyValueExpr:
		return s.eval(x.Value)
	case *ast.FuncLit:
		// The closure body is walked in place: its effects (sorts, sinks)
		// belong to the writer of the literal. Its returns do not — see
		// litDepth.
		s.litDepth++
		s.block(x.Body)
		s.litDepth--
		return taintVal{}
	case *ast.CallExpr:
		return s.call(x)
	}
	return taintVal{}
}

// call models one call expression: builtins, barriers, summarized
// intra-graph callees, configured sinks, and conservative propagation
// through everything unknown.
func (s *state) call(call *ast.CallExpr) taintVal {
	// Builtins first: append propagates (append order is producer order);
	// size/bookkeeping builtins do not carry order.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := s.info().ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				var t taintVal
				for _, arg := range call.Args {
					t = t.union(s.eval(arg))
				}
				return t
			case "len", "cap", "delete", "clear", "print", "println", "min", "max", "make", "new":
				for _, arg := range call.Args {
					s.eval(arg) // still walk for nested calls/literals
				}
				return taintVal{}
			}
		}
	}
	// A type conversion T(x) keeps x's order.
	if tv, ok := s.info().Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return s.eval(call.Args[0])
		}
		return taintVal{}
	}

	argT := make([]taintVal, len(call.Args))
	for i, arg := range call.Args {
		argT[i] = s.eval(arg)
	}

	callee := CalleeOf(s.info(), call)
	if callee == nil {
		// Call through a function value: propagate conservatively.
		var t taintVal
		for _, at := range argT {
			t = t.union(at)
		}
		return t
	}

	if s.a.cfg.IsBarrier != nil && s.a.cfg.IsBarrier(callee) {
		if len(call.Args) > 0 {
			// Sorting a parameter is a caller-visible barrier: record it
			// so callers clear their argument after calling us.
			s.sum.SortsParam |= argT[0].params
			s.kill(call.Args[0])
		}
		return taintVal{}
	}

	if s.a.cfg.IsSink != nil {
		if desc, ok := s.a.cfg.IsSink(callee); ok {
			for _, at := range argT {
				s.sinkHit(call.Pos(), desc, at)
			}
			return taintVal{}
		}
	}

	if node := s.a.g.Lookup(callee); node != nil {
		csum := s.a.sums[node]
		var t taintVal
		if csum.ReturnsTainted {
			src := csum.ReturnSrc
			if src == "" {
				src = "call to " + callee.Name()
			}
			t = t.union(taintVal{real: true, src: src, srcPos: call.Pos()})
		}
		for i, at := range argT {
			if i >= 64 {
				break
			}
			bit := uint64(1) << uint(i)
			if csum.ParamToSink&bit != 0 {
				desc := csum.SinkDesc
				if desc == "" {
					desc = callee.Name()
				}
				s.sinkHit(call.Pos(), desc+" (via "+callee.Name()+")", at)
			}
			if csum.ParamToResult&bit != 0 {
				t = t.union(at)
			}
			if csum.SortsParam&bit != 0 {
				s.sum.SortsParam |= at.params
				s.kill(call.Args[i])
			}
		}
		return t
	}

	// Unknown extra-graph callee (stdlib, unloaded package): assume it
	// propagates order from arguments and receiver to its result.
	var t taintVal
	for _, at := range argT {
		t = t.union(at)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		t = t.union(s.eval(sel.X))
	}
	return t
}

// sinkHit records an order-tainted value reaching a sink: a finding when
// the taint has a real source, a summary bit when it rides a parameter.
func (s *state) sinkHit(pos token.Pos, desc string, t taintVal) {
	if t.real && s.findings != nil {
		*s.findings = append(*s.findings, TaintFinding{
			Pos: pos, Fn: s.fn, SinkDesc: desc, Src: t.src, SrcPos: t.srcPos,
		})
	}
	if t.params != 0 {
		s.sum.ParamToSink |= t.params
		if s.sum.SinkDesc == "" {
			s.sum.SinkDesc = desc
		}
	}
}

// block walks statements in source order.
func (s *state) block(b *ast.BlockStmt) {
	for _, stmt := range b.List {
		s.stmt(stmt)
	}
}

func (s *state) stmt(stmt ast.Stmt) {
	switch x := stmt.(type) {
	case nil:
	case *ast.BlockStmt:
		s.block(x)
	case *ast.ExprStmt:
		s.eval(x.X)
	case *ast.AssignStmt:
		s.assign(x)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var t taintVal
					if len(vs.Values) == len(vs.Names) {
						t = s.eval(vs.Values[i])
					} else if len(vs.Values) == 1 {
						t = s.eval(vs.Values[0])
					}
					s.set(name, t)
				}
			}
		}
	case *ast.ReturnStmt:
		results := x.Results
		if len(results) == 0 {
			// Bare return of named results: read their current taint.
			if ft := s.fn.Decl.Type; ft.Results != nil {
				for _, f := range ft.Results.List {
					for _, name := range f.Names {
						s.recordReturn(s.lookup(ref{s.info().ObjectOf(name), ""}))
					}
				}
			}
			return
		}
		for _, r := range results {
			s.recordReturn(s.eval(r))
		}
	case *ast.IfStmt:
		s.stmt(x.Init)
		s.eval(x.Cond)
		s.block(x.Body)
		s.stmt(x.Else)
	case *ast.ForStmt:
		s.stmt(x.Init)
		s.eval(x.Cond)
		s.block(x.Body)
		s.stmt(x.Post)
	case *ast.RangeStmt:
		s.rangeStmt(x)
	case *ast.SelectStmt:
		s.selectStmt(x)
	case *ast.SwitchStmt:
		s.stmt(x.Init)
		s.eval(x.Tag)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					s.eval(e)
				}
				for _, st := range cc.Body {
					s.stmt(st)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		s.stmt(x.Init)
		s.stmt(x.Assign)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					s.stmt(st)
				}
			}
		}
	case *ast.GoStmt:
		s.eval(x.Call)
	case *ast.DeferStmt:
		s.eval(x.Call)
	case *ast.SendStmt:
		s.eval(x.Chan)
		s.eval(x.Value)
	case *ast.LabeledStmt:
		s.stmt(x.Stmt)
	case *ast.IncDecStmt:
		s.eval(x.X)
	}
}

func (s *state) recordReturn(t taintVal) {
	if s.litDepth > 0 {
		return // a closure's return is not fn's return
	}
	if t.real && !s.sum.ReturnsTainted {
		s.sum.ReturnsTainted = true
		s.sum.ReturnSrc = t.src
	}
	s.sum.ParamToResult |= t.params
}

func (s *state) assign(x *ast.AssignStmt) {
	if x.Tok != token.ASSIGN && x.Tok != token.DEFINE && len(x.Lhs) == 1 && len(x.Rhs) == 1 {
		// Compound assignment is an accumulator fold. Over numbers the
		// fold commutes — `total += n` yields the same total in any
		// iteration order, and float rounding order is detfloat's beat —
		// so map order cannot reach the result and no taint propagates.
		// String += is concatenation, which records the order itself.
		rt := s.eval(x.Rhs[0])
		if lt := s.info().TypeOf(x.Lhs[0]); lt != nil {
			if basic, ok := lt.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
				s.set(x.Lhs[0], s.eval(x.Lhs[0]).union(rt))
			}
		}
		return
	}
	if len(x.Lhs) == len(x.Rhs) {
		ts := make([]taintVal, len(x.Rhs))
		for i, r := range x.Rhs {
			ts[i] = s.eval(r)
		}
		for i, l := range x.Lhs {
			s.set(l, ts[i])
		}
		return
	}
	// x, y := f() — every lhs inherits the call's taint.
	var t taintVal
	for _, r := range x.Rhs {
		t = t.union(s.eval(r))
	}
	for _, l := range x.Lhs {
		s.set(l, t)
	}
}

// rangeStmt handles the primary taint source: ranging over a map binds the
// key and value variables to map iteration order. Ranging over an ordered
// container hands its (possibly tainted) order to the value variable.
func (s *state) rangeStmt(x *ast.RangeStmt) {
	contT := s.eval(x.X)
	xt := s.info().TypeOf(x.X)
	if xt != nil {
		if _, isMap := xt.Underlying().(*types.Map); isMap {
			t := taintVal{real: true, src: "iteration order of a map", srcPos: x.Pos()}
			if x.Key != nil {
				s.set(x.Key, t)
			}
			if x.Value != nil {
				s.set(x.Value, t)
			}
			s.block(x.Body)
			return
		}
	}
	if x.Key != nil {
		s.set(x.Key, taintVal{})
	}
	if x.Value != nil {
		s.set(x.Value, contT)
	}
	s.block(x.Body)
}

// selectStmt taints values received in a select with two or more ready
// cases: which case wins is scheduler-dependent, so downstream ordering
// built from the winners is nondeterministic.
func (s *state) selectStmt(x *ast.SelectStmt) {
	comm := 0
	for _, c := range x.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			comm++
		}
	}
	for _, c := range x.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		if as, ok := cc.Comm.(*ast.AssignStmt); ok && comm >= 2 {
			t := taintVal{real: true, src: "multi-case select receive", srcPos: cc.Pos()}
			for _, l := range as.Lhs {
				s.set(l, t)
			}
		} else if cc.Comm != nil {
			s.stmt(cc.Comm)
		}
		for _, st := range cc.Body {
			s.stmt(st)
		}
	}
}
