// Command lvalint runs the repository's custom static-analysis suite: the
// determinism and validation invariants the simulator's credibility rests
// on (seeded randomness, validated configs, documented panic contracts,
// race-free fan-out, order-independent FP accumulation, map-order taint,
// deterministic concurrency shapes, and compiler-verified hot-path
// inlining/allocation budgets).
//
// Usage:
//
//	go run ./cmd/lvalint ./...            # lint every package
//	go run ./cmd/lvalint ./internal/core  # lint one package
//	go run ./cmd/lvalint -list            # describe the analyzers
//	go run ./cmd/lvalint -json ./...      # findings as NDJSON records
//	go run ./cmd/lvalint -gha ./...       # also emit GitHub annotations
//	go run ./cmd/lvalint -regen-budget    # re-record the hot-path budget
//
// Findings print as file:line: [analyzer] message; the process exits 1 when
// any unsuppressed finding remains and 2 on load/type errors. A finding is
// suppressed by a `//lint:ignore <analyzer> <reason>` comment on the same
// line or the line above; the reason is mandatory, the analyzer name must
// exist, and a suppression that no longer cancels anything is itself a
// finding. Set LVALINT_SKIP=name1,name2 to disable analyzers (e.g.
// LVALINT_SKIP=allocbudget on a toolchain the committed budget was not
// recorded under).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lva/internal/lint"
)

func main() {
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "also print suppressed findings")
	jsonFlag := flag.Bool("json", false, "emit findings as NDJSON records instead of text")
	ghaFlag := flag.Bool("gha", false, "also emit GitHub Actions ::error annotations for unsuppressed findings")
	regenBudget := flag.Bool("regen-budget", false, "re-record the hot-path inlining/escape budget from the current compiler and exit")
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *regenBudget {
		cwd, err := os.Getwd()
		if err == nil {
			var modRoot string
			modRoot, err = lint.FindModuleRoot(cwd)
			if err == nil {
				var path string
				path, err = lint.RegenerateBudget(modRoot)
				if err == nil {
					fmt.Printf("lvalint: rewrote %s\n", path)
				}
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvalint:", err)
			os.Exit(2)
		}
		return
	}

	if err := run(flag.Args(), *verbose, *jsonFlag, *ghaFlag); err != nil {
		fmt.Fprintln(os.Stderr, "lvalint:", err)
		os.Exit(2)
	}
}

// jsonFinding is one NDJSON output record.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

func run(patterns []string, verbose, asJSON, gha bool) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	modRoot, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		return err
	}
	dirs, err := lint.ExpandPatterns(cwd, patterns)
	if err != nil {
		return err
	}

	var pkgs []*lint.Package
	loadFailed := false
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lvalint: %v\n", err)
			loadFailed = true
			continue
		}
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(os.Stderr, "lvalint: %s: %v\n", pkg.Path, terr)
			loadFailed = true
		}
		pkgs = append(pkgs, pkg)
	}
	if loadFailed {
		os.Exit(2)
	}

	findings := lint.Run(loader.Fset(), pkgs, lint.EnabledAnalyzers())
	enc := json.NewEncoder(os.Stdout)
	failed := false
	for _, f := range findings {
		file := relPath(modRoot, f.Pos.Filename)
		switch {
		case asJSON:
			if f.Suppressed && !verbose {
				continue
			}
			rec := jsonFinding{
				File: file, Line: f.Pos.Line, Col: f.Pos.Column,
				Analyzer: f.Analyzer, Message: f.Message,
				Suppressed: f.Suppressed, Reason: f.SuppressReason,
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		case f.Suppressed:
			if verbose {
				fmt.Printf("%s (suppressed: %s)\n", rel(modRoot, f), f.SuppressReason)
			}
		default:
			fmt.Println(rel(modRoot, f))
		}
		if !f.Suppressed {
			failed = true
			if gha {
				fmt.Printf("::error file=%s,line=%d,col=%d,title=lvalint(%s)::%s\n",
					file, f.Pos.Line, f.Pos.Column, f.Analyzer, ghaEscape(f.Message))
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	return nil
}

// ghaEscape encodes a message for the GitHub Actions workflow-command
// grammar, which reserves %, CR and LF.
func ghaEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// relPath renders one filename relative to the module root.
func relPath(modRoot, name string) string {
	if r, err := filepath.Rel(modRoot, name); err == nil {
		return r
	}
	return name
}

// rel renders a finding with the filename relative to the module root.
func rel(modRoot string, f lint.Finding) string {
	f.Pos.Filename = relPath(modRoot, f.Pos.Filename)
	return f.String()
}
