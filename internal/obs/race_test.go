package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestProgressPrinterConcurrentThrottle drives the throttled printer from
// many goroutines at once — the shape Emit produces when sweep workers
// finish points in parallel. Every sweep must still print exactly its
// throttled subset (every 8th point plus the final) with no interleaved
// or torn lines, regardless of scheduling.
func TestProgressPrinterConcurrentThrottle(t *testing.T) {
	const sweeps = 8
	const points = 24 // multiple of 8, so expect lines at 8, 16 and 24

	var buf bytes.Buffer
	p := NewProgressPrinter(&buf)
	cancel := OnEvent(p)
	defer cancel()

	var wg sync.WaitGroup
	for g := 0; g < sweeps; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("sweep-%d", g)
			for i := 1; i <= points; i++ {
				Emit(Event{Kind: EventSweepPoint, Name: name, Done: i, Total: points})
			}
			Emit(Event{Kind: EventFigureDone, Name: name, Done: g + 1, Total: sweeps})
		}(g)
	}
	wg.Wait()

	out := buf.String()
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !strings.HasPrefix(line, "lva: ") {
			t.Fatalf("torn or malformed progress line %q in:\n%s", line, out)
		}
	}
	for g := 0; g < sweeps; g++ {
		name := fmt.Sprintf("sweep-%d", g)
		if n := strings.Count(out, "sweep "+name+" "); n != 3 {
			t.Errorf("%s printed %d times, want 3 (points 8, 16, 24):\n%s", name, n, out)
		}
		if !strings.Contains(out, fmt.Sprintf("figure %s done", name)) {
			t.Errorf("missing figure line for %s:\n%s", name, out)
		}
	}
}

// TestEmitSubscribeRace exercises subscribe/cancel churn concurrent with a
// stream of emissions. Run under -race (ci.sh does) this pins the
// subscriber registry's locking; functionally it checks a subscriber never
// receives events after its cancel returns.
func TestEmitSubscribeRace(t *testing.T) {
	stop := make(chan struct{})
	var emitters sync.WaitGroup
	for g := 0; g < 4; g++ {
		emitters.Add(1)
		go func() {
			defer emitters.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					Emit(Event{Kind: EventSweepPoint, Name: "churn", Done: i})
				}
			}
		}()
	}

	var subscribers sync.WaitGroup
	for g := 0; g < 4; g++ {
		subscribers.Add(1)
		go func() {
			defer subscribers.Done()
			for i := 0; i < 50; i++ {
				var mu sync.Mutex
				live := true
				cancel := OnEvent(func(Event) {
					mu.Lock()
					if !live {
						t.Error("subscriber invoked after cancel returned")
					}
					mu.Unlock()
				})
				cancel()
				mu.Lock()
				live = false
				mu.Unlock()
			}
		}()
	}
	subscribers.Wait()
	close(stop)
	emitters.Wait()
}

// TestServeDebugConcurrentScrape is the flight-recorder race gate for the
// debug endpoint: goroutines mutate metrics and emit events while several
// readers scrape /debug/vars, so the expvar snapshot path (Registry.Snapshot
// via the published expvar.Func) runs concurrently with every writer. Under
// -race this fails on any unsynchronized access; functionally each scrape
// must decode to a snapshot containing the mutating metrics.
func TestServeDebugConcurrentScrape(t *testing.T) {
	addr, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctr := Default().Counter("test_race_counter", "scrape-race marker")
	hist := Default().Histogram("test_race_hist", "scrape-race histogram", []float64{1, 10, 100}, true)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					ctr.Inc()
					hist.Observe(float64(i % 200))
					Emit(Event{Kind: EventSweepPoint, Name: "scrape", Done: i})
				}
			}
		}(g)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	var readers sync.WaitGroup
	errs := make(chan error, 3*10)
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 10; i++ {
				resp, err := client.Get("http://" + addr + "/debug/vars")
				if err != nil {
					errs <- err
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				var vars map[string]json.RawMessage
				if err := json.Unmarshal(body, &vars); err != nil {
					errs <- fmt.Errorf("scrape %d: /debug/vars not JSON under load: %w", i, err)
					return
				}
				var snap Snapshot
				if err := json.Unmarshal(vars["lva_metrics"], &snap); err != nil {
					errs <- fmt.Errorf("scrape %d: lva_metrics not a snapshot: %w", i, err)
					return
				}
				found := false
				for _, m := range snap.Metrics {
					if m.Name == "test_race_counter" && m.Count >= 1 {
						found = true
					}
				}
				if !found {
					errs <- fmt.Errorf("scrape %d: snapshot missing test_race_counter", i)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
