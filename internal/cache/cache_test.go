package cache

import (
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{SizeBytes: 1024, Ways: 2, BlockBytes: 64, LatencyCycles: 1} // 8 sets
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 1, BlockBytes: 64},
		{SizeBytes: 1024, Ways: 0, BlockBytes: 64},
		{SizeBytes: 1024, Ways: 2, BlockBytes: 48},     // not power of two
		{SizeBytes: 1000, Ways: 2, BlockBytes: 64},     // not divisible
		{SizeBytes: 1024 * 3, Ways: 2, BlockBytes: 64}, // 24 sets: not pow2
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSets(t *testing.T) {
	if got := smallConfig().Sets(); got != 8 {
		t.Fatalf("Sets = %d", got)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on invalid config")
		}
	}()
	New(Config{})
}

func TestLoadMissThenFillHits(t *testing.T) {
	c := New(smallConfig())
	if c.Load(0x1000) {
		t.Fatal("cold load must miss")
	}
	c.Fill(0x1000, false)
	if !c.Load(0x1000) {
		t.Fatal("load after fill must hit")
	}
	if !c.Load(0x1030) { // same 64B block
		t.Fatal("same-block load must hit")
	}
	st := c.Stats()
	if st.Loads != 3 || st.LoadMiss != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMissDoesNotInsert(t *testing.T) {
	c := New(smallConfig())
	c.Load(0x2000)
	if c.Contains(0x2000) {
		t.Fatal("a miss must not insert the block (fetch is the caller's decision)")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallConfig()) // 2 ways, 8 sets; blocks mapping to set 0: addr = k*8*64
	a, b, d := uint64(0), uint64(8*64), uint64(16*64)
	c.Fill(a, false)
	c.Fill(b, false)
	c.Load(a) // make a MRU
	evicted, was, _ := c.Fill(d, false)
	if !was {
		t.Fatal("third fill in a 2-way set must evict")
	}
	if evicted != b {
		t.Fatalf("LRU victim = %#x, want %#x", evicted, b)
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestDirtyEvictionWriteback(t *testing.T) {
	c := New(smallConfig())
	a, b, d := uint64(0), uint64(8*64), uint64(16*64)
	c.Fill(a, false)
	c.MarkDirty(a)
	c.Fill(b, false)
	c.Load(b) // b MRU, a LRU
	_, was, dirty := c.Fill(d, false)
	if !was || !dirty {
		t.Fatalf("dirty LRU eviction: was=%v dirty=%v", was, dirty)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats().Writebacks)
	}
}

func TestStoreWriteAllocateSemantics(t *testing.T) {
	c := New(smallConfig())
	if c.Store(0x40) {
		t.Fatal("cold store must miss")
	}
	c.Fill(0x40, false)
	c.MarkDirty(0x40)
	if !c.Store(0x40) {
		t.Fatal("store after fill must hit")
	}
	if c.Stats().StoreMiss != 1 || c.Stats().Stores != 2 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallConfig())
	c.Fill(0x80, false)
	c.MarkDirty(0x80)
	present, dirty := c.Invalidate(0x80)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Contains(0x80) {
		t.Fatal("block must be gone after invalidate")
	}
	present, _ = c.Invalidate(0x80)
	if present {
		t.Fatal("double invalidate must report absent")
	}
}

func TestPrefetchHitAccounting(t *testing.T) {
	c := New(smallConfig())
	c.Fill(0x100, true) // prefetched
	if c.PrefetchHits != 0 {
		t.Fatal("no demand access yet")
	}
	c.Load(0x100)
	if c.PrefetchHits != 1 {
		t.Fatalf("PrefetchHits = %d", c.PrefetchHits)
	}
	c.Load(0x100)
	if c.PrefetchHits != 1 {
		t.Fatal("prefetch hit must count once")
	}
}

func TestFillExistingRefreshes(t *testing.T) {
	c := New(smallConfig())
	c.Fill(0x200, false)
	_, was, _ := c.Fill(0x200, false)
	if was {
		t.Fatal("re-fill of resident block must not evict")
	}
	if c.Stats().Fills != 1 {
		t.Fatalf("fills = %d (re-fill must not count)", c.Stats().Fills)
	}
}

func TestBlockAddr(t *testing.T) {
	c := New(smallConfig())
	if got := c.BlockAddr(0x1234); got != 0x1200 {
		t.Fatalf("BlockAddr = %#x", got)
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	cfg := smallConfig()
	capacity := cfg.Sets() * cfg.Ways
	f := func(addrs []uint16) bool {
		c := New(cfg)
		for _, a := range addrs {
			addr := uint64(a) * 64
			if !c.Load(addr) {
				c.Fill(addr, false)
			}
		}
		return c.Occupancy() <= capacity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFilledBlocksAreFound(t *testing.T) {
	// Property: immediately after Fill(addr), Contains(addr) holds.
	cfg := smallConfig()
	f := func(addrs []uint32) bool {
		c := New(cfg)
		for _, a := range addrs {
			addr := uint64(a)
			c.Fill(addr, false)
			if !c.Contains(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvictedAddressReconstruction(t *testing.T) {
	// Property: the evicted address is block-aligned and maps to the same
	// set as the filled address.
	cfg := smallConfig()
	c := New(cfg)
	set0 := []uint64{0, 8 * 64, 16 * 64, 24 * 64}
	c.Fill(set0[0], false)
	c.Fill(set0[1], false)
	evicted, was, _ := c.Fill(set0[2], false)
	if !was {
		t.Fatal("expected eviction")
	}
	if evicted%64 != 0 {
		t.Fatalf("evicted address %#x not block-aligned", evicted)
	}
	if evicted != set0[0] {
		t.Fatalf("evicted %#x, want %#x", evicted, set0[0])
	}
}
