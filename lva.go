// Package lva is the public API of this reproduction of "Load Value
// Approximation" (San Miguel, Badr, Enright Jerger — MICRO 2014).
//
// Load value approximation (LVA) is a microarchitectural technique: when a
// load to approximation-tolerant data misses in the L1 cache, a hardware
// approximator generates an estimated value from the load's value history
// and the processor continues immediately — no speculation, no rollback.
// Because the fetched block is only needed to train the approximator, the
// fetch itself becomes optional; skipping it (the "approximation degree")
// trades output error for memory-hierarchy energy.
//
// The package re-exports the building blocks:
//
//   - Approximator (core): the GHB + approximator-table design of the
//     paper's Figure 3, including relaxed confidence windows and the
//     approximation degree, plus the idealized LVP baseline.
//   - Simulator (memsim): the phase-1, Pin-like execution-driven
//     memory-hierarchy model that workloads issue loads/stores through.
//   - System (fullsys): the phase-2 cycle-approximate 4-core model with a
//     mesh NoC, MSI-coherent distributed L2 and an energy model.
//   - Workloads: seven PARSEC-stand-in kernels with the paper's
//     per-benchmark output-error metrics.
//   - Experiments: one driver per table/figure of the paper's evaluation.
//
// Quick start (see examples/quickstart for a runnable version):
//
//	cfg := lva.DefaultSimConfig()          // 64 KB L1 + Table II approximator
//	sim := lva.NewSimulator(cfg)
//	v := sim.LoadFloat(pc, addr, precise, true /* approximate */)
//	// ... run your kernel, then:
//	res := sim.Result()
//	fmt.Println(res.EffectiveMPKI(), res.Coverage())
package lva

import (
	"io"

	"lva/internal/core"
	"lva/internal/experiments"
	"lva/internal/fullsys"
	"lva/internal/isa"
	"lva/internal/memsim"
	"lva/internal/obs"
	"lva/internal/obs/attr"
	"lva/internal/obs/phase"
	"lva/internal/obs/prov"
	"lva/internal/prefetch"
	"lva/internal/trace"
	"lva/internal/value"
	"lva/internal/workloads"
)

// Approximator is the load value approximator (paper Figure 3).
type Approximator = core.Approximator

// ApproximatorConfig configures an Approximator (paper Table II).
type ApproximatorConfig = core.Config

// Decision is the approximator's response to a cache miss.
type Decision = core.Decision

// Value is a 64-bit datum tagged as integer or floating point.
type Value = value.Value

// NewApproximator builds an approximator from a configuration.
func NewApproximator(cfg ApproximatorConfig) *Approximator { return core.New(cfg) }

// DefaultApproximatorConfig returns the paper's Table II baseline.
func DefaultApproximatorConfig() ApproximatorConfig { return core.DefaultConfig() }

// FloatValue packs a float64 for the approximator.
func FloatValue(f float64) Value { return value.FromFloat(f) }

// IntValue packs an int64 for the approximator.
func IntValue(i int64) Value { return value.FromInt(i) }

// Approximation modes.
const (
	// ModeLVA is load value approximation (no rollbacks).
	ModeLVA = core.ModeLVA
	// ModeLVP is the idealized load-value-prediction baseline.
	ModeLVP = core.ModeLVP
)

// Simulator is the phase-1 execution-driven memory-hierarchy simulator.
type Simulator = memsim.Simulator

// Memory is the interface workloads use for every simulated access.
type Memory = memsim.Memory

// SimConfig assembles a phase-1 simulation.
type SimConfig = memsim.Config

// SimResult carries phase-1 metrics (MPKI, coverage, fetches).
type SimResult = memsim.Result

// NewSimulator builds a phase-1 simulator.
func NewSimulator(cfg SimConfig) *Simulator { return memsim.New(cfg) }

// DefaultSimConfig returns the paper's phase-1 setup: a 64 KB 8-way L1
// with the baseline approximator attached.
func DefaultSimConfig() SimConfig { return memsim.DefaultConfig() }

// Attachment selects what augments the simulated L1.
type Attachment = memsim.Attachment

// L1 attachments.
const (
	// AttachNone runs precisely.
	AttachNone = memsim.AttachNone
	// AttachLVA attaches the load value approximator.
	AttachLVA = memsim.AttachLVA
	// AttachLVP attaches the idealized load value predictor.
	AttachLVP = memsim.AttachLVP
	// AttachPrefetch attaches the GHB prefetcher baseline.
	AttachPrefetch = memsim.AttachPrefetch
)

// PrefetcherConfig configures the GHB prefetcher baseline (§VI-D).
type PrefetcherConfig = prefetch.Config

// System is the phase-2 cycle-approximate full-system simulator.
type System = fullsys.Sim

// SystemConfig configures the full system (paper Table II).
type SystemConfig = fullsys.Config

// SystemResult carries phase-2 metrics (cycles, traffic, energy).
type SystemResult = fullsys.Result

// NewSystem builds a full-system simulator.
func NewSystem(cfg SystemConfig) *System { return fullsys.New(cfg) }

// DefaultSystemConfig returns the paper's Table II full-system setup.
func DefaultSystemConfig() SystemConfig { return fullsys.DefaultConfig() }

// Trace is a captured memory-access trace (phase-1 output, phase-2 input).
type Trace = trace.Trace

// Workload is one of the seven benchmark kernels.
type Workload = workloads.Workload

// WorkloadOutput is a kernel's final output with the paper's error metric.
type WorkloadOutput = workloads.Output

// Workloads returns the seven kernels with calibrated defaults.
func Workloads() []Workload { return workloads.All() }

// WorkloadByName looks up a kernel by its PARSEC name.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// Workload constructors and output types, re-exported so applications can
// run individual kernels and inspect their typed outputs.
type (
	// BlackscholesOutput is the option-price list (error: % of prices off by >1%).
	BlackscholesOutput = workloads.BlackscholesOutput
	// BodytrackOutput is the tracked trajectory (error: mean deviation).
	BodytrackOutput = workloads.BodytrackOutput
	// CannealOutput is the final routing cost (error: relative difference).
	CannealOutput = workloads.CannealOutput
	// FerretOutput is the per-query result sets (error: 1 - recall).
	FerretOutput = workloads.FerretOutput
	// FluidanimateOutput is the final cell per particle (error: % displaced).
	FluidanimateOutput = workloads.FluidanimateOutput
	// SwaptionsOutput is the swaption price list (error: mean relative).
	SwaptionsOutput = workloads.SwaptionsOutput
	// X264Output is the encoder PSNR and bit cost (error: weighted change).
	X264Output = workloads.X264Output
	// Vec2 is a 2-D position estimate in BodytrackOutput trajectories.
	Vec2 = workloads.Vec2
)

// NewBlackscholes returns the blackscholes kernel with calibrated defaults.
func NewBlackscholes() *workloads.Blackscholes { return workloads.NewBlackscholes() }

// NewBodytrack returns the bodytrack kernel with calibrated defaults.
func NewBodytrack() *workloads.Bodytrack { return workloads.NewBodytrack() }

// NewCanneal returns the canneal kernel with calibrated defaults.
func NewCanneal() *workloads.Canneal { return workloads.NewCanneal() }

// NewFerret returns the ferret kernel with calibrated defaults.
func NewFerret() *workloads.Ferret { return workloads.NewFerret() }

// NewFluidanimate returns the fluidanimate kernel with calibrated defaults.
func NewFluidanimate() *workloads.Fluidanimate { return workloads.NewFluidanimate() }

// NewSwaptions returns the swaptions kernel with calibrated defaults.
func NewSwaptions() *workloads.Swaptions { return workloads.NewSwaptions() }

// NewX264 returns the x264 kernel with calibrated defaults.
func NewX264() *workloads.X264 { return workloads.NewX264() }

// Figure is the structured result of one reproduced table/figure.
type Figure = experiments.Figure

// Experiments maps experiment ids (table1, fig1, fig4..fig13) to drivers.
func Experiments() map[string]func() *Figure { return experiments.Registry }

// RunExperiment runs one experiment by id (e.g. "fig4").
func RunExperiment(id string) (*Figure, bool) {
	d, ok := experiments.Registry[id]
	if !ok {
		return nil, false
	}
	return d(), true
}

// RunAll regenerates the named experiments ("all" of them when ids is
// empty) concurrently through the shared run cache: every driver admits
// its simulation points through one Parallelism-bounded gate and each
// distinct design point is simulated exactly once per process.
func RunAll(ids ...string) ([]*Figure, error) { return experiments.RunAll(ids...) }

// RunCacheStats is a snapshot of the process-wide run-cache counters.
type RunCacheStats = experiments.RunCacheStats

// RunCacheCounters reports how many simulations the run cache executed and
// how many Run* calls it satisfied from memory.
func RunCacheCounters() RunCacheStats { return experiments.RunCacheCounters() }

// ResetRunCache drops every memoized simulation result and zeroes the
// counters, restoring process-cold behaviour (for tests and benchmarks).
func ResetRunCache() { experiments.ResetRunCache() }

// TraceStats is a snapshot of the grid-trace store counters: streams
// recorded, design points served from recorded footers, replay passes and
// points, and counter points that still executed the kernel.
type TraceStats = experiments.TraceStats

// TraceCounters reports how the record-once trace store served the counter
// figures' design points.
func TraceCounters() TraceStats { return experiments.TraceCounters() }

// SetReplayEnabled toggles the record-once/replay-many grid pipeline for
// counter figures. Enabled by default; disabled, every design point
// executes its kernel exactly as before the trace store existed.
func SetReplayEnabled(on bool) { experiments.SetReplayEnabled(on) }

// SetTraceDir routes grid-stream recordings to dir until the next call
// (empty restores the default per-process temp directory). Recordings
// found there are trusted and served without re-simulating, so pointing
// successive processes at one directory — or setting LVA_TRACE_DIR —
// makes every counter figure warm-start.
func SetTraceDir(dir string) { experiments.SetTraceDir(dir) }

// MetricsSnapshot is a frozen, name-sorted view of the observability
// registry (see internal/obs).
type MetricsSnapshot = obs.Snapshot

// SetMetricsEnabled toggles hot-path metric collection (per-miss counters
// in the simulator, per-training error histograms in the approximator).
// Call it before constructing simulators or running experiments; the
// engine's coarse per-run metrics are always collected. Off by default so
// the simulator hot paths carry zero instrumentation cost.
func SetMetricsEnabled(on bool) { obs.SetEnabled(on) }

// Metrics snapshots the process-wide observability registry.
// includeVolatile also captures wall-clock timing histograms, whose values
// change run to run; leave it false for byte-stable output.
func Metrics(includeVolatile bool) MetricsSnapshot {
	return obs.Default().Snapshot(includeVolatile)
}

// AttributionSnapshot is a frozen view of the approximation flight
// recorder: per-PC error attribution and per-epoch time-series for every
// approximate run published since the last reset (see internal/obs/attr).
type AttributionSnapshot = attr.Snapshot

// SetAttributionEnabled toggles the approximation flight recorder. When
// on, every approximate/LVP/prefetch run records per-site (per-PC) load,
// miss, coverage and training-error counters plus an epoch time-series,
// published under a deterministic scope per design point. Call it before
// running experiments; off by default so annotated-load paths stay
// allocation-free.
func SetAttributionEnabled(on bool) { attr.SetEnabled(on) }

// SetAttributionEpochWindow sets how many annotated loads make one
// time-series epoch (n <= 0 disables the time-series, keeping per-site
// attribution only). Takes effect for recorders created afterwards.
func SetAttributionEpochWindow(n int) { attr.SetEpochWindow(n) }

// Attribution snapshots every published run attribution, sorted by scope.
func Attribution() AttributionSnapshot { return attr.TakeSnapshot() }

// ResetAttribution drops every published run attribution.
func ResetAttribution() { attr.Reset() }

// PhaseSnapshot is a frozen view of the phase observatory: per-run epoch
// fingerprints clustered into phases, with a representativeness
// projection per design point (see internal/obs/phase).
type PhaseSnapshot = phase.Snapshot

// SetPhaseProfilingEnabled toggles the phase observatory. When on, every
// simulated run fingerprints its annotated-load stream per epoch (PC
// sketch, address regions, stride histogram, miss/error rates), clusters
// the epochs into phases at snapshot time, and reports how well the phase
// medoid intervals alone reconstruct the whole-run counters. Call it
// before running experiments; off by default so annotated-load paths
// stay allocation-free.
func SetPhaseProfilingEnabled(on bool) { phase.SetEnabled(on) }

// SetPhaseEpochWindow sets how many annotated loads make one phase epoch
// (n < 0 disables epoching, 0 restores the default). Takes effect for
// profilers created afterwards.
func SetPhaseEpochWindow(n int) { phase.SetEpochWindow(n) }

// Phases snapshots every published phase profile, sorted by scope.
func Phases() PhaseSnapshot { return phase.TakeSnapshot() }

// ResetPhases drops every published phase profile.
func ResetPhases() { phase.Reset() }

// ProfilePhasesOfStream phase-profiles a recorded .lvag grid stream in
// one decode pass with no simulation, publishing (and returning) the
// resulting profile. Offline profiles cluster on access-vector shape
// alone; they carry no miss/error projection.
func ProfilePhasesOfStream(path string) (phase.ScopeProfile, error) {
	prof, _, err := experiments.ProfileGridStream(path)
	return prof, err
}

// ProvenanceManifest is a parsed run-provenance manifest (see
// internal/obs/prov): per-evaluation records of which route produced each
// design-point result and why, reconciled against the engine counters.
type ProvenanceManifest = prov.Manifest

// EnableProvenance starts recording run provenance: every design-point
// evaluation (run-cache lookup, footer read, grid replay, kernel
// execution, phase-2 stream) emits a deterministic record of its route,
// justification and source artifact. Call before the first run; off by
// default with a zero-cost disabled path.
func EnableProvenance() { experiments.EnableProvenance() }

// DisableProvenance ends the provenance session.
func DisableProvenance() { experiments.DisableProvenance() }

// WriteProvenanceManifest renders the active provenance ledger as a
// byte-stable NDJSON manifest reconciled against the engine counters
// (the `lvaexp -manifest` document; audit it with `lvareport
// -provenance`).
func WriteProvenanceManifest(w io.Writer) error { return experiments.WriteProvManifest(w) }

// ReadProvenanceManifest parses an NDJSON provenance manifest; call
// Validate on the result to reconcile it.
func ReadProvenanceManifest(r io.Reader) (*ProvenanceManifest, error) {
	return prov.ReadManifest(r)
}

// StartTimeline begins capturing a Chrome trace-event run timeline of the
// experiment engine (figure drivers, gate workers, kernel simulations and
// run-cache hits). Render the TimelineJSON output at ui.perfetto.dev.
func StartTimeline() { experiments.StartTimeline() }

// TimelineJSON returns the events captured so far as Chrome trace-event
// JSON; it errors when no capture is running.
func TimelineJSON() ([]byte, error) { return experiments.TimelineJSON() }

// StopTimeline ends the timeline capture session.
func StopTimeline() { experiments.StopTimeline() }

// CaptureTrace records a workload's 4-thread access trace for phase-2 replay.
func CaptureTrace(w Workload, seed uint64) *Trace {
	return experiments.CaptureTrace(w, seed)
}

// Program is an assembled approximate-ISA program (§IV: ISA extensions
// mark loads as approximate via ld.a / fld.a).
type Program = isa.Program

// VM executes an approximate-ISA program against a simulated hierarchy.
type VM = isa.VM

// Assemble parses approximate-ISA assembly text.
func Assemble(src string) (*Program, error) { return isa.Assemble(src) }

// NewVM binds an assembled program to a simulated memory hierarchy.
func NewVM(p *Program, mem Memory) *VM { return isa.NewVM(p, mem) }

// SweepSpec describes a phase-1 design-space exploration (see cmd/lvadesign).
type SweepSpec = experiments.SweepSpec

// SweepPoint is one design point's measured results.
type SweepPoint = experiments.SweepPoint

// RunSweep executes a cartesian design-space exploration.
func RunSweep(spec SweepSpec, progress func(done, total int)) ([]SweepPoint, error) {
	return experiments.RunSweep(spec, progress)
}
