// Package dram models main memory for the full-system simulator: a
// multi-bank DRAM with per-bank row buffers and a shared channel. The
// paper's Table II gives a flat 160-cycle main-memory latency; this model
// reproduces that as the row-miss (activate + column) latency while letting
// row-buffer hits return faster and bank conflicts queue, which is what
// couples the cores once LVA changes the fetch stream.
package dram

import "fmt"

// Config describes the memory device.
type Config struct {
	// Banks is the number of independent banks.
	Banks int
	// RowBytes is the row-buffer size per bank.
	RowBytes int
	// RowHitCycles is the access latency on a row-buffer hit (column
	// access only).
	RowHitCycles uint64
	// RowMissCycles is the access latency on a row-buffer miss
	// (precharge + activate + column). Table II's 160-cycle figure.
	RowMissCycles uint64
	// ChannelOccupancy is the data-bus busy time per 64 B transfer.
	ChannelOccupancy uint64
	// BankOccupancy is the bank busy time per access.
	BankOccupancy uint64
}

// DefaultConfig returns a device calibrated to the paper's 160-cycle
// main-memory latency (row miss) with a 2:1 row-hit advantage.
func DefaultConfig() Config {
	return Config{
		Banks:            8,
		RowBytes:         2048,
		RowHitCycles:     60,
		RowMissCycles:    160,
		ChannelOccupancy: 8,
		BankOccupancy:    24,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.Banks <= 0 || c.Banks&(c.Banks-1) != 0:
		return fmt.Errorf("dram: banks must be a positive power of two, got %d", c.Banks)
	case c.RowBytes <= 0 || c.RowBytes&(c.RowBytes-1) != 0:
		return fmt.Errorf("dram: row size must be a positive power of two, got %d", c.RowBytes)
	case c.RowHitCycles == 0 || c.RowMissCycles == 0:
		return fmt.Errorf("dram: latencies must be positive")
	case c.RowHitCycles > c.RowMissCycles:
		return fmt.Errorf("dram: row hit (%d) cannot be slower than row miss (%d)",
			c.RowHitCycles, c.RowMissCycles)
	}
	return nil
}

// Stats counts device events.
type Stats struct {
	Accesses  uint64
	RowHits   uint64
	RowMisses uint64
}

// HitRate returns the row-buffer hit fraction.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

type bank struct {
	openRow  uint64
	hasRow   bool
	busyTill uint64
}

// DRAM is the device model. Not safe for concurrent use. Requests must
// arrive in approximately nondecreasing time order (the full-system
// scheduler guarantees this) for the occupancy model to be meaningful.
type DRAM struct {
	cfg      Config
	banks    []bank
	chanFree uint64
	rowShift uint
	stats    Stats
}

// New builds a device; it panics on an invalid Config.
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift < cfg.RowBytes {
		shift++
	}
	return &DRAM{cfg: cfg, banks: make([]bank, cfg.Banks), rowShift: shift}
}

// Config returns the device configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a copy of the counters.
func (d *DRAM) Stats() Stats { return d.stats }

func (d *DRAM) decode(addr uint64) (bankIdx int, row uint64) {
	row = addr >> d.rowShift
	// Interleave rows across banks so streaming accesses spread out.
	return int(row % uint64(d.cfg.Banks)), row
}

// Access performs a 64 B read or write beginning no earlier than `now` and
// returns its completion time. Row-buffer state, bank occupancy and channel
// occupancy all apply.
func (d *DRAM) Access(addr uint64, now uint64) uint64 {
	d.stats.Accesses++
	bi, row := d.decode(addr)
	b := &d.banks[bi]

	start := now
	if b.busyTill > start {
		start = b.busyTill
	}
	if d.chanFree > start {
		start = d.chanFree
	}

	var lat uint64
	if b.hasRow && b.openRow == row {
		d.stats.RowHits++
		lat = d.cfg.RowHitCycles
	} else {
		d.stats.RowMisses++
		lat = d.cfg.RowMissCycles
		b.openRow, b.hasRow = row, true
	}

	b.busyTill = start + d.cfg.BankOccupancy
	d.chanFree = start + d.cfg.ChannelOccupancy
	return start + lat
}

// Reset clears all row buffers, occupancy state and statistics.
func (d *DRAM) Reset() {
	for i := range d.banks {
		d.banks[i] = bank{}
	}
	d.chanFree = 0
	d.stats = Stats{}
}
