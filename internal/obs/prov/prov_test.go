package prov

import (
	"bytes"
	"strings"
	"testing"
)

// sample builds a ledger carrying one of each line shape, with counters
// that reconcile exactly.
func sample() (*Ledger, Counters) {
	l := New("test-code")
	stages := []string{"schedule", "tracestore", "footer", "figure-append"}
	l.Emit(Record{
		Figure: "fig4", Label: "lva/canneal", Scheduler: "ctr",
		Route: RouteFooter, Counter: CounterFooter,
		Fingerprint: "aaaa", Justification: "baseline",
		Artifact: "aaaa.lvag", ArtifactSHA256: "ffff", ArtifactBytes: 10,
		Stages: stages,
	}, Cost{WallUS: 5})
	l.Emit(Record{
		Figure: "fig4", Label: "lvp/canneal", Scheduler: "ctr",
		Route: RouteReplay, Counter: CounterReplayed,
		Fingerprint: "bbbb", Justification: "lvp",
		Stages: stages,
	}, Cost{Served: "fresh"})
	l.Emit(Record{
		Figure: "tracestore", Label: "precise/canneal", Scheduler: "store",
		Route: RouteExec, Counter: CounterRecording,
		Fingerprint: "cccc", Justification: "cold",
		Stages: stages,
	}, Cost{})
	l.Call("cccc", "precise/canneal", false)
	l.Call("cccc", "precise/canneal", true)
	return l, Counters{
		Recordings:      1,
		FooterPoints:    1,
		ReplayedPoints:  1,
		ExecPoints:      0,
		RunCacheLookups: 2,
	}
}

func TestManifestRoundTrip(t *testing.T) {
	l, c := sample()
	var a, b bytes.Buffer
	if err := WriteManifest(&a, l, c); err != nil {
		t.Fatalf("WriteManifest: %v", err)
	}
	if err := WriteManifest(&b, l, c); err != nil {
		t.Fatalf("WriteManifest (second): %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two renders of the same ledger differ — manifest is not byte-stable")
	}
	m, err := ReadManifest(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if m.Header.Code != "test-code" || m.Header.Version != ManifestVersion {
		t.Errorf("header = %+v", m.Header)
	}
	if len(m.Records) != 3 || len(m.Calls) != 1 {
		t.Fatalf("parsed %d records, %d calls; want 3, 1", len(m.Records), len(m.Calls))
	}
	if problems := m.Validate(); len(problems) != 0 {
		t.Errorf("Validate on a consistent manifest: %v", problems)
	}
	if m.Summary.Evaluations != 3 || m.Summary.SimsAvoided != 2 || m.Summary.Calls != 2 {
		t.Errorf("summary = %+v", m.Summary)
	}
	pf := m.PerFigure()
	if len(pf) != 2 || pf[0].Figure != "fig4" || pf[0].Footer != 1 || pf[0].Replay != 1 ||
		pf[1].Figure != "tracestore" || pf[1].Exec != 1 {
		t.Errorf("PerFigure = %+v", pf)
	}
}

func TestEmitAggregatesIdenticalRecords(t *testing.T) {
	l := New("c")
	r := Record{Figure: "f", Label: "l", Scheduler: "ctr", Route: RouteReplay,
		Counter: CounterReplayed, Fingerprint: "ab", Justification: "j",
		Stages: []string{"s"}}
	l.Emit(r, Cost{Served: "memo"})
	l.Emit(r, Cost{Served: "fresh"})
	recs := l.snapshotRecords()
	if len(recs) != 1 || recs[0].Count != 2 {
		t.Fatalf("snapshot = %+v, want one record with count 2", recs)
	}
}

func TestValidateCatchesMismatches(t *testing.T) {
	render := func(l *Ledger, c Counters) *Manifest {
		var buf bytes.Buffer
		if err := WriteManifest(&buf, l, c); err != nil {
			t.Fatalf("WriteManifest: %v", err)
		}
		m, err := ReadManifest(&buf)
		if err != nil {
			t.Fatalf("ReadManifest: %v", err)
		}
		return m
	}

	// Counter drift: the engine says 5 footer points, records sum to 1.
	l, c := sample()
	c.FooterPoints = 5
	m := render(l, c)
	if problems := m.Validate(); len(problems) == 0 ||
		!strings.Contains(strings.Join(problems, "\n"), "counter/footer") {
		t.Errorf("footer drift not reported: %v", problems)
	}

	// Call-vs-lookup drift.
	l, c = sample()
	c.RunCacheLookups = 7
	if problems := render(l, c).Validate(); len(problems) == 0 {
		t.Error("run-cache lookup drift not reported")
	}

	// A record whose counter rides the wrong route.
	l, c = sample()
	l.Emit(Record{Figure: "f", Label: "l", Scheduler: "ctr", Route: RouteExec,
		Counter: CounterFooter, Fingerprint: "dd", Justification: "j",
		Stages: []string{"s"}}, Cost{})
	if problems := render(l, c).Validate(); len(problems) == 0 {
		t.Error("counter on wrong route not reported")
	}

	// Tampered summary.
	l, c = sample()
	m = render(l, c)
	m.Summary.Evaluations++
	if problems := m.Validate(); len(problems) == 0 {
		t.Error("tampered evaluation total not reported")
	}
}

func TestReadManifestRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no header":     `{"kind":"record","figure":"f"}`,
		"no summary":    `{"kind":"manifest","version":1,"code":"c"}`,
		"bad version":   `{"kind":"manifest","version":9,"code":"c"}`,
		"unknown kind":  `{"kind":"manifest","version":1,"code":"c"}` + "\n" + `{"kind":"wat"}`,
		"after summary": `{"kind":"manifest","version":1,"code":"c"}` + "\n" + `{"kind":"summary"}` + "\n" + `{"kind":"call"}`,
		"not an object": `nope`,
		"double header": `{"kind":"manifest","version":1,"code":"c"}` + "\n" + `{"kind":"manifest","version":1,"code":"c"}`,
	}
	for name, doc := range cases {
		if _, err := ReadManifest(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: ReadManifest accepted a malformed document", name)
		}
	}
}

// TestNilLedgerSafe pins the seam contract: every method is a no-op on a
// nil receiver, so call sites only need the one Active() nil check.
func TestNilLedgerSafe(t *testing.T) {
	var l *Ledger
	l.Emit(Record{}, Cost{})
	l.Call("x", "y", true)
	l.AddDecode(1, 2, 3)
	l.AddDecodedBytes(4)
	l.AddStream(5, 6)
	if l.CodeVersion() != "" || l.Costs() != (CostStats{}) {
		t.Error("nil ledger returned non-zero state")
	}
	if err := WriteManifest(&bytes.Buffer{}, nil, Counters{}); err == nil {
		t.Error("WriteManifest(nil) must error")
	}
}

// TestDisabledPathAllocsFree pins the off-path cost of the seam itself:
// with no active ledger, the probe is one atomic load and zero
// allocations.
func TestDisabledPathAllocsFree(t *testing.T) {
	if Enabled() {
		t.Fatal("ledger unexpectedly active")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if l := Active(); l != nil {
			t.Fatal("active mid-test")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled Active() check allocates %.1f times per run, want 0", allocs)
	}
}

func TestEnableDisable(t *testing.T) {
	Enable("v1")
	defer Disable()
	if !Enabled() {
		t.Fatal("Enabled() false after Enable")
	}
	if got := Active().CodeVersion(); got != "v1" {
		t.Errorf("CodeVersion = %q, want v1", got)
	}
	l := Disable()
	if l == nil || Enabled() {
		t.Error("Disable must return the final ledger and clear the seam")
	}
}
