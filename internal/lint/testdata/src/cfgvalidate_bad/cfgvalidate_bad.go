// Package cfgvalidate_bad exercises the cfgvalidate analyzer's failure
// cases: hand-rolled config literals that never meet Validate.
package cfgvalidate_bad

import (
	"lva/internal/cache"
	"lva/internal/core"
)

// HandRolled builds an approximator config from scratch and returns it
// unvalidated.
func HandRolled() core.Config {
	cfg := core.Config{TableEntries: 500, TableWays: 1, LHBSize: 4} // want:cfgvalidate
	return cfg
}

// InlineReturn returns an unvalidated literal directly.
func InlineReturn() cache.Config {
	return cache.Config{SizeBytes: 1000, Ways: 3, BlockBytes: 48} // want:cfgvalidate
}
