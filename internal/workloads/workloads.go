// Package workloads implements seven self-contained kernels standing in for
// the PARSEC 3.0 benchmarks the paper evaluates (§IV): blackscholes,
// bodytrack, canneal, ferret, fluidanimate, swaptions and x264. Each kernel
// implements the benchmark's computational core on synthetic, deterministic
// inputs, issues every significant data access through a memsim.Memory
// (with the paper's per-region approximation annotations), and computes the
// paper's per-benchmark output-error metric against a precise run.
package workloads

import (
	"fmt"
	"math"
	"sort"

	"lva/internal/memsim"
)

// Workload is one benchmark kernel.
type Workload interface {
	// Name is the PARSEC benchmark this kernel stands in for.
	Name() string
	// FloatData reports whether the approximate data is floating point
	// (blackscholes, ferret, fluidanimate, swaptions) or integer
	// (bodytrack, canneal, x264), per §V-A.
	FloatData() bool
	// FeedbackFree reports whether the kernel's annotated access stream —
	// the (PC, address, precise value) sequence the simulator observes —
	// is invariant under approximation. §IV's annotation rules already
	// keep approximate data out of addresses, branches and denominators;
	// a kernel is additionally feedback-free when no value derived from
	// an approximated load is ever stored and later re-observed through
	// an annotated access, and no loaded value steers which accesses
	// happen. Feedback-free kernels can be simulated from one recorded
	// precise trace under any approximator configuration; kernels with
	// feedback must re-execute per design point so approximated values
	// propagate into the stream.
	FeedbackFree() bool
	// Run executes the kernel, issuing accesses through the concrete
	// phase-1 simulator — kernels are the hot loop of every figure, so
	// they bypass the Memory interface entirely (trace capture lives
	// inside Sim and still sees every access). The seed makes inputs
	// deterministic so precise and approximate runs see the same
	// program. It returns the application's final output.
	Run(mem *memsim.Sim, seed uint64) Output
}

// Output is a kernel's final application output. Error is the paper's
// §IV metric comparing an approximate output against the precise one;
// it returns a fraction (0.1 == 10% output error).
type Output interface {
	Error(precise Output) float64
}

// All returns the seven kernels with their default (calibrated) parameters,
// in the paper's alphabetical order.
func All() []Workload {
	return []Workload{
		NewBlackscholes(),
		NewBodytrack(),
		NewCanneal(),
		NewFerret(),
		NewFluidanimate(),
		NewSwaptions(),
		NewX264(),
	}
}

// Names returns the benchmark names in the paper's order.
func Names() []string {
	ws := All()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name()
	}
	return out
}

// ByName returns the named kernel or an error listing valid names.
func ByName(name string) (Workload, error) {
	for _, w := range All() {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q (valid: %v)", name, Names())
}

// ---------------------------------------------------------------------------
// Deterministic RNG (xorshift64*), so runs are reproducible across machines.

// RNG is a small deterministic pseudo-random generator.
type RNG struct{ s uint64 }

// NewRNG seeds an RNG; a zero seed is remapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{s: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform float in [0,1).
func (r *RNG) Float64() float64 { return float64(r.Uint64()>>11) / (1 << 53) }

// Intn returns a uniform int in [0,n). It panics if n is not positive,
// mirroring math/rand's contract.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workloads: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box–Muller).
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ---------------------------------------------------------------------------
// Synthetic address space and typed arrays.
//
// Each workload allocates its data structures from an Arena, giving every
// element a stable synthetic byte address. Loads/stores of array elements go
// through memsim.Memory; the precise datum lives in the Go slice (memory
// keeps precise data — approximation clobbers only the consumed value).

// Arena hands out non-overlapping synthetic address ranges.
type Arena struct{ next uint64 }

// NewArena starts the address space at a non-zero base so address 0 never
// appears (it is reserved as "no address" in some models).
func NewArena() *Arena { return &Arena{next: 0x10000} }

// Alloc reserves n bytes aligned to 64 (a cache block) and returns the base.
func (a *Arena) Alloc(n int) uint64 {
	const align = 64
	a.next = (a.next + align - 1) &^ uint64(align-1)
	base := a.next
	a.next += uint64(n)
	return base
}

// F64Array is a float64 array with a synthetic base address.
type F64Array struct {
	Base uint64
	Data []float64
}

// NewF64Array allocates n float64s in the arena.
func NewF64Array(a *Arena, n int) *F64Array {
	return &F64Array{Base: a.Alloc(n * 8), Data: make([]float64, n)}
}

// Addr returns the synthetic address of element i.
func (f *F64Array) Addr(i int) uint64 { return f.Base + uint64(i)*8 }

// Load reads element i through the simulated hierarchy.
func (f *F64Array) Load(m *memsim.Sim, pc uint64, i int, approx bool) float64 {
	return m.LoadFloat(pc, f.Addr(i), f.Data[i], approx)
}

// Store writes element i through the simulated hierarchy.
func (f *F64Array) Store(m *memsim.Sim, pc uint64, i int, v float64) {
	f.Data[i] = v
	m.Store(pc, f.Addr(i))
}

// LoadRange reads elements [lo,hi) in ascending order into dst, all from
// the same load site. It issues exactly the accesses of the equivalent
// scalar loop (same PCs, addresses, values, order); batching only amortizes
// per-element accessor overhead. dst must have at least hi-lo elements.
func (f *F64Array) LoadRange(m *memsim.Sim, pc uint64, lo, hi int, approx bool, dst []float64) {
	addr := f.Addr(lo)
	for i := lo; i < hi; i++ {
		dst[i-lo] = m.LoadFloat(pc, addr, f.Data[i], approx)
		addr += 8
	}
}

// I32Array is a 32-bit integer array (4-byte elements, matching pixel and
// coordinate data) with a synthetic base address.
type I32Array struct {
	Base uint64
	Data []int32
}

// NewI32Array allocates n int32s in the arena.
func NewI32Array(a *Arena, n int) *I32Array {
	return &I32Array{Base: a.Alloc(n * 4), Data: make([]int32, n)}
}

// Addr returns the synthetic address of element i.
func (f *I32Array) Addr(i int) uint64 { return f.Base + uint64(i)*4 }

// Load reads element i through the simulated hierarchy.
func (f *I32Array) Load(m *memsim.Sim, pc uint64, i int, approx bool) int32 {
	v := m.LoadInt(pc, f.Addr(i), int64(f.Data[i]), approx)
	return int32(v)
}

// Store writes element i through the simulated hierarchy.
func (f *I32Array) Store(m *memsim.Sim, pc uint64, i int, v int32) {
	f.Data[i] = v
	m.Store(pc, f.Addr(i))
}

// LoadRange reads elements [lo,hi) in ascending order into dst, all from
// the same load site; access-for-access identical to the scalar loop.
func (f *I32Array) LoadRange(m *memsim.Sim, pc uint64, lo, hi int, approx bool, dst []int32) {
	addr := f.Addr(lo)
	for i := lo; i < hi; i++ {
		dst[i-lo] = int32(m.LoadInt(pc, addr, int64(f.Data[i]), approx))
		addr += 4
	}
}

// LoadRow reads the n elements starting at lo in ascending order into dst,
// with the load site cycling through pcs (dst[k] uses pcs[k%len(pcs)]) —
// the access pattern of an unrolled pixel row, where each unroll position
// is its own static PC. Identical to the scalar loop it replaces.
func (f *I32Array) LoadRow(m *memsim.Sim, pcs []uint64, lo, n int, approx bool, dst []int32) {
	addr := f.Addr(lo)
	for k := 0; k < n; k++ {
		dst[k] = int32(m.LoadInt(pcs[k%len(pcs)], addr, int64(f.Data[lo+k]), approx))
		addr += 4
	}
}

// StoreRange writes src to elements [lo,lo+len(src)) in ascending order,
// all from the same store site — the streaming publish loop of a producer
// kernel. Identical to the scalar loop it replaces.
func (f *I32Array) StoreRange(m *memsim.Sim, pc uint64, lo int, src []int32) {
	addr := f.Addr(lo)
	for k, v := range src {
		f.Data[lo+k] = v
		m.Store(pc, addr)
		addr += 4
	}
}

// GatherF64 reads element i of each array in turn (arrays[k] from site
// pcs[k]), writing the consumed values to dst — the structure-of-arrays
// gather at the top of a streaming iteration (spot/strike/rate/... or
// x/y/z). Identical to the scalar sequence it replaces.
func GatherF64(m *memsim.Sim, arrays []*F64Array, pcs []uint64, i int, approx bool, dst []float64) {
	for k, a := range arrays {
		dst[k] = m.LoadFloat(pcs[k], a.Addr(i), a.Data[i], approx)
	}
}

// pcBase builds a synthetic program counter: one per (workload, site).
// Distinct load sites in the kernel source get distinct sites, which is
// what Figure 12 counts.
func pcBase(workloadID, site int) uint64 {
	return uint64(workloadID)<<20 | uint64(site)<<2 | 0x400000
}

// Workload identifiers for PC construction.
const (
	idBlackscholes = iota + 1
	idBodytrack
	idCanneal
	idFerret
	idFluidanimate
	idSwaptions
	idX264
)

// topK returns the indices of the k smallest values in dist (ties broken by
// lower index), used by ferret's search.
func topK(dist []float64, k int) []int {
	idx := make([]int, len(dist))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return dist[idx[a]] < dist[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
