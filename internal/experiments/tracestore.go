package experiments

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lva/internal/memsim"
	"lva/internal/obs/attr"
	"lva/internal/obs/prov"
	"lva/internal/trace"
	"lva/internal/workloads"
)

// The trace store is the record-once half of the grid replay pipeline.
// §IV's annotation rules make the precise (PC, addr, value) stream of a
// kernel a function of (workload, seed) alone, so the store records each
// distinct annotated stream exactly once — through the same runcache
// singleflight the figure drivers already share — and every later counter
// row is served by replaying (or just footer-reading) the recording
// instead of re-executing kernel arithmetic.
//
// Two stream kinds exist per (workload, seed):
//
//   - "precise": the AttachNone stream. Config-invariant, so it can be
//     replayed under any LVP or prefetch configuration (neither ever
//     hands an approximate value back to the kernel) and under any LVA
//     configuration on feedback-free kernels.
//   - "lvabase": the stream of the Table II baseline LVA run. Only used
//     to serve the baseline design point itself (via its recorded
//     counters), which Table 1, Figure 12 and the GHB-0 rows all share.
//
// Files use the LVAG chunked encoding (internal/trace); the recording
// run's full memsim.Result rides in the footer as JSON, so serving a
// previously-recorded design point costs one footer read and no decode.

// TraceStats is a snapshot of the grid-trace store counters.
type TraceStats struct {
	// Recordings counts annotated streams captured from kernel execution
	// (each distinct (kind, workload, seed) records at most once per
	// process; a warm on-disk store records zero).
	Recordings uint64
	// HeaderHits counts design points served straight from a recorded
	// stream's footer counters, with no simulation at all.
	HeaderHits uint64
	// ReplayPasses counts trace decode passes; one pass drives every
	// design point of a replay group through per-point simulators.
	ReplayPasses uint64
	// ReplayPoints counts design points simulated by replay.
	ReplayPoints uint64
	// ReplayHits counts replay-route design points served from the
	// in-process replay memo: an earlier pass already simulated the
	// identical point, so the batch pays neither a decode nor a simulation.
	ReplayHits uint64
	// ExecPoints counts counter-figure design points that re-executed the
	// kernel while replay was enabled (feedback kernels off the baseline,
	// or a store failure).
	ExecPoints uint64
}

var traceStats struct {
	recordings   atomic.Uint64
	headerHits   atomic.Uint64
	replayPasses atomic.Uint64
	replayPoints atomic.Uint64
	replayHits   atomic.Uint64
	execPoints   atomic.Uint64
}

// TraceCounters returns a snapshot of the trace-store counters.
func TraceCounters() TraceStats {
	return TraceStats{
		Recordings:   traceStats.recordings.Load(),
		HeaderHits:   traceStats.headerHits.Load(),
		ReplayPasses: traceStats.replayPasses.Load(),
		ReplayPoints: traceStats.replayPoints.Load(),
		ReplayHits:   traceStats.replayHits.Load(),
		ExecPoints:   traceStats.execPoints.Load(),
	}
}

var replayOff atomic.Bool

// SetReplayEnabled toggles the record/replay pipeline. Disabled, every
// counter figure executes its design points exactly as before the trace
// store existed. Replay starts enabled but is also implicitly off while
// the run cache is disabled (bypassing memoization promises one kernel
// execution per Run* call, which replay would violate).
func SetReplayEnabled(on bool) { replayOff.Store(!on) }

func replayEnabled() bool { return !replayOff.Load() && !runCacheOff.Load() }

// Trace directory resolution: an explicit SetTraceDir wins, then the
// LVA_TRACE_DIR environment variable (a persistent store reused across
// processes), then a lazily-created per-process temp directory.
var traceDirState struct {
	mu       sync.Mutex
	explicit string
	lazy     string
}

// SetTraceDir routes grid recordings to dir (created if needed) until the
// next call; the empty string restores the default resolution. Recordings
// found in the directory are trusted and served without re-simulating, so
// pointing successive processes at one directory makes every counter
// figure warm-start.
func SetTraceDir(dir string) {
	traceDirState.mu.Lock()
	traceDirState.explicit = dir
	traceDirState.mu.Unlock()
}

func traceDir() (string, error) {
	traceDirState.mu.Lock()
	defer traceDirState.mu.Unlock()
	if d := traceDirState.explicit; d != "" {
		return d, os.MkdirAll(d, 0o755)
	}
	if d := os.Getenv("LVA_TRACE_DIR"); d != "" {
		return d, os.MkdirAll(d, 0o755)
	}
	if traceDirState.lazy == "" {
		d, err := os.MkdirTemp("", "lva-grid-")
		if err != nil {
			return "", err
		}
		traceDirState.lazy = d
	}
	return traceDirState.lazy, nil
}

// resetTraceStore forgets every ensured stream and (only) the lazy
// per-process directory — deleting it, since its recordings would
// otherwise defeat the process-cold semantics ResetRunCache promises.
// An explicit or LVA_TRACE_DIR directory survives: those are opted-in
// persistent stores.
func resetTraceStore() {
	recCells.Range(func(k, _ any) bool {
		recCells.Delete(k)
		return true
	})
	replayCells.Range(func(k, _ any) bool {
		replayCells.Delete(k)
		return true
	})
	traceDirState.mu.Lock()
	if traceDirState.lazy != "" {
		os.RemoveAll(traceDirState.lazy)
		traceDirState.lazy = ""
	}
	traceDirState.mu.Unlock()
	traceStats.recordings.Store(0)
	traceStats.headerHits.Store(0)
	traceStats.replayPasses.Store(0)
	traceStats.replayPoints.Store(0)
	traceStats.replayHits.Store(0)
	traceStats.execPoints.Store(0)
}

// Stream kinds.
const (
	streamPrecise = "precise"
	streamLVABase = "lvabase"
)

// gridStream is the once-cell of one recorded stream. res always holds
// the recording run's phase-1 counters; path is empty when no readable
// recording exists (replay consumers must then fall back to execution).
type gridStream struct {
	once sync.Once
	path string
	hdr  trace.GridHeader
	res  memsim.Result

	// Artifact identity for provenance records, hashed lazily at most
	// once per cell (see (*gridStream).artifact in provwire.go).
	artOnce sync.Once
	artHash string
	artSize int64
}

var recCells sync.Map // kind + "|" + runKey -> *gridStream

// replayCells memoizes replay-simulated counter results by design-point
// identity, so regenerating a figure twice in one process costs zero decode
// passes the second time. Deliberately separate from runCells: a replayed
// point has no kernel Output, which every runCell promises its callers.
var replayCells sync.Map // runKey("replay", ...) -> memsim.Result

// streamSpec maps a stream kind to the run-cache identity and simulator
// configuration of its recording run. The keys are exactly RunPrecise's
// and RunLVA's, so a recording and a plain Run* call share one runCell —
// whichever happens first, the kernel executes once.
func streamSpec(kind string, w workloads.Workload, seed uint64) (key, label string, precise bool, cfg memsim.Config) {
	cfg = memsim.DefaultConfig()
	switch kind {
	case streamPrecise:
		cfg.Attach = memsim.AttachNone
		return runKey("precise", w, "", seed), "precise/" + w.Name(), true, cfg
	case streamLVABase:
		cfg.Attach = memsim.AttachLVA
		cfg.Approx = BaselineFor(w)
		return runKey("lva", w, fmt.Sprintf("%#v", cfg.Approx), seed), "lva/" + w.Name(), false, cfg
	}
	panic("experiments: unknown stream kind " + kind)
}

// streamFile names a stream on disk by the hash of its run-cache key.
func streamFile(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:8]) + ".lvag"
}

// ensureStream returns the stream cell for (kind, w, seed), recording it
// on first use. Resolution order: a readable on-disk recording (footer
// only — no kernel work, no decode); else a kernel execution with the
// grid capture sink attached, run through the run-cache singleflight so
// it doubles as the memoized Run* result for that design point.
func ensureStream(kind string, w workloads.Workload, seed uint64) *gridStream {
	key, label, precise, cfg := streamSpec(kind, w, seed)
	c, _ := recCells.LoadOrStore(kind+"|"+key, &gridStream{})
	cell := c.(*gridStream)
	cell.once.Do(func() {
		pc := provBegin(0)
		why := provWhyColdRecord
		path := ""
		if dir, err := traceDir(); err == nil {
			path = filepath.Join(dir, streamFile(key))
			hdr, res, rerr := readStreamHeader(path, key)
			if rerr == nil {
				cell.path, cell.hdr, cell.res = path, hdr, res
				return
			}
			if !errors.Is(rerr, fs.ErrNotExist) {
				// A file exists but its footer is unreadable (truncated
				// or corrupt persistent store): fall through and
				// re-record over it, and say so in the provenance.
				why = provWhyReRecord
			}
		}
		recorded := false
		r := cachedRun(key, label, precise, func() RunResult {
			rr, hdr, err := recordStream(w, cfg, seed, key, path)
			if err == nil && path != "" {
				recorded = true
				cell.path, cell.hdr = path, hdr
			}
			return rr
		})
		cell.res = r.Sim
		if !recorded && path != "" && cell.path == "" {
			// The runCell was already filled by a plain Run* call (an
			// error figure got to this design point first), so the
			// singleflight closure never ran. Capture directly: one extra
			// kernel execution, at most once per stream and process.
			if _, hdr, err := recordStream(w, cfg, seed, key, path); err == nil {
				cell.path, cell.hdr = path, hdr
				eng().cacheSims.Inc()
				recorded = true
			}
		}
		if recorded && pc.on() {
			pc.point("tracestore", kind+"/"+w.Name(), "store", prov.RouteExec,
				prov.CounterRecording, why, key, cell, provStagesRecord, "")
			pc.stage("record "+kind+"/"+w.Name(), "s", key,
				map[string]any{"kind": kind, "workload": w.Name(), "why": why})
		}
	})
	return cell
}

// EnsureGridStream records (or, warm, just locates) the named stream kind
// — "precise" or "lvabase" — for (w, seed) and returns the path of its
// on-disk recording. It is the cmd/lvatrace record entry point; figures
// reaching the same (kind, workload, seed) later serve themselves from the
// recording without re-simulating.
func EnsureGridStream(kind string, w workloads.Workload, seed uint64) (string, error) {
	switch kind {
	case streamPrecise, streamLVABase:
	default:
		return "", fmt.Errorf("experiments: unknown stream kind %q (want %q or %q)", kind, streamPrecise, streamLVABase)
	}
	var st *gridStream
	gated("record/"+w.Name(), func() { st = ensureStream(kind, w, seed) })
	if st.path == "" {
		return "", fmt.Errorf("experiments: recording %s stream of %s failed (no writable trace directory?)", kind, w.Name())
	}
	return st.path, nil
}

// recordStream executes the kernel with the grid capture sink attached
// and persists the stream at path (written to a temp file and renamed,
// so concurrent processes sharing LVA_TRACE_DIR never observe a partial
// file). The returned RunResult is always valid — a persistence failure
// only costs the recording, never the simulation.
func recordStream(w workloads.Workload, cfg memsim.Config, seed uint64, key, path string) (RunResult, trace.GridHeader, error) {
	var (
		f   *os.File
		bw  *bufio.Writer
		gw  *trace.GridWriter
		err error
	)
	if path != "" {
		f, err = os.CreateTemp(filepath.Dir(path), ".lvag-*")
		if err == nil {
			bw = bufio.NewWriterSize(f, 1<<16)
			gw = trace.NewGridWriter(bw, w.Name(), key, seed)
		}
	} else {
		err = fmt.Errorf("experiments: no trace directory")
	}

	sim := memsim.New(cfg)
	rec := attrRecorder(w, cfg, seed)
	if rec != nil {
		sim.SetAttribution(rec)
	}
	pp := phaseProfiler(w, cfg, seed)
	var ppStart time.Time
	if pp != nil {
		sim.SetPhaseProfile(pp)
		ppStart = time.Now()
	}
	if gw != nil {
		sim.SetGridCapture(gw)
	}
	out := w.Run(sim, seed)
	res := RunResult{Output: out, Sim: sim.Result()}
	if rec != nil {
		attr.Publish(rec)
	}
	if pp != nil {
		publishPhaseProfile(pp, ppStart)
	}

	var hdr trace.GridHeader
	if gw != nil {
		meta, merr := json.Marshal(res.Sim)
		if merr == nil {
			hdr, err = gw.Finish(res.Sim.Instructions, meta)
		} else {
			err = merr
		}
		if err == nil {
			err = bw.Flush()
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(f.Name(), path)
		}
		if err != nil {
			os.Remove(f.Name())
		} else {
			traceStats.recordings.Add(1)
		}
	}
	return res, hdr, err
}

// readStreamHeader loads a recording's footer and the memsim.Result it
// carries, verifying the file really is the stream keyed by key.
func readStreamHeader(path, key string) (trace.GridHeader, memsim.Result, error) {
	var res memsim.Result
	f, err := os.Open(path)
	if err != nil {
		return trace.GridHeader{}, res, err
	}
	defer f.Close()
	hdr, err := trace.ReadGridFooter(f)
	if err != nil {
		return trace.GridHeader{}, res, err
	}
	if hdr.Key != key {
		return trace.GridHeader{}, res, fmt.Errorf("experiments: stream %s keyed %q, want %q", path, hdr.Key, key)
	}
	if err := json.Unmarshal(hdr.Meta, &res); err != nil {
		return trace.GridHeader{}, res, err
	}
	return hdr, res, nil
}
