package fullsys

import (
	"testing"

	"lva/internal/trace"
	"lva/internal/value"
)

// laneTrace produces an approximate-load stream with enough distinct
// blocks that training fetches keep flowing.
func laneTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "lane"}
	for i := 0; i < n; i++ {
		// Thread assignment is decorrelated from the block home so most
		// fetches actually cross the mesh.
		tr.Append(trace.Access{
			PC: 0x400, Addr: uint64(0x10000 + i*64), Value: value.FromInt(10),
			Gap: 8, Thread: uint8((i / 8) % 4), Op: trace.Load, Approx: true,
		})
	}
	return tr
}

func TestTrainingLaneMovesTrafficToLowPower(t *testing.T) {
	base := DefaultConfig()
	base.Approx = approxCfg(0)

	laned := base
	laned.TrainingLane = DefaultTrainingLane()

	rBase := New(base).Run(laneTrace(400))
	rLane := New(laned).Run(laneTrace(400))

	if rLane.LowPowerFlitHops == 0 {
		t.Fatal("training fetches must ride the low-power lane")
	}
	if rBase.LowPowerFlitHops != 0 {
		t.Fatal("without a lane no low-power traffic exists")
	}
	// Total flit work is conserved (same fetches, different lane).
	baseTotal := rBase.FlitHops
	laneTotal := rLane.FlitHops + rLane.LowPowerFlitHops
	if laneTotal < baseTotal*9/10 || laneTotal > baseTotal*11/10 {
		t.Fatalf("flit work must be comparable: %d vs %d", laneTotal, baseTotal)
	}
	// Energy must not increase: low-power flits are cheaper.
	if rLane.Energy.TotalPJ() > rBase.Energy.TotalPJ() {
		t.Fatalf("lane must not cost energy: %.3g vs %.3g",
			rLane.Energy.TotalPJ(), rBase.Energy.TotalPJ())
	}
}

func TestTrainingLaneDoesNotStallCores(t *testing.T) {
	// The default lane slows training fetches, but those are off the
	// critical path: the makespan must be essentially unchanged (LVA's
	// value-delay resilience, §VI-C).
	base := DefaultConfig()
	base.Approx = approxCfg(0)
	laned := base
	laned.TrainingLane = DefaultTrainingLane()

	rBase := New(base).Run(laneTrace(400))
	rLane := New(laned).Run(laneTrace(400))
	// This trace is deliberately MSHR-bound (a miss every few cycles with
	// only 8 MSHRs), so slower training fetches shave some throughput via
	// MSHR turnaround; the slowdown must stay mild. Real workloads, with
	// compute between misses, show none (see the ext-lane experiment).
	if rLane.Cycles > rBase.Cycles*5/4 {
		t.Fatalf("the default slow lane must not stall covered execution: %d vs %d cycles",
			rLane.Cycles, rBase.Cycles)
	}

	// An extreme lane does slow things — but only through MSHR occupancy
	// (in-flight training fetches holding miss registers), never by more
	// than the occupancy bound.
	extreme := base
	extreme.TrainingLane = &TrainingLaneConfig{RouterCycles: 30, ExtraLatency: 500}
	rExtreme := New(extreme).Run(laneTrace(400))
	if rExtreme.Cycles > rBase.Cycles*2 {
		t.Fatalf("even an extreme lane is bounded by MSHR turnaround: %d vs %d cycles",
			rExtreme.Cycles, rBase.Cycles)
	}
}

func TestDemandFetchesStayOnFastLane(t *testing.T) {
	// Precise (non-approximate) loads never use the slow lane.
	cfg := DefaultConfig()
	cfg.TrainingLane = DefaultTrainingLane()
	addrs := make([]uint64, 100)
	for i := range addrs {
		addrs[i] = uint64(0x20000 + i*64)
	}
	r := New(cfg).Run(mkTrace(addrs, 4, false))
	if r.LowPowerFlitHops != 0 {
		t.Fatalf("demand fetches must not use the training lane: %d", r.LowPowerFlitHops)
	}
}
