package phase

import (
	"math"
	"sync/atomic"
)

// Clustering happens entirely at snapshot time on the sealed epoch ring —
// the hot path only filled histograms. The algorithm is leader clustering
// over a normalized fingerprint distance, deterministic by construction:
// epochs are visited in time order, ties break toward the earlier cluster,
// and the medoid of each cluster is the member minimizing the summed
// distance to the others (ties toward the earlier epoch). No map
// iteration, no randomness, no floating-point reduction order that depends
// on scheduling — the same event stream always yields the same phases.

// maxPhases caps the phase count: once reached, new epochs join their
// nearest phase even beyond the distance threshold. Sampled simulation
// needs a handful of representative intervals; a run fragmenting into more
// phases than this is effectively phase-less for that purpose.
const maxPhases = 16

// defaultThreshold is the leader-clustering distance threshold: an epoch
// within this normalized distance of an existing phase leader joins that
// phase. Distances are in [0,1] (see distance), so 0.10 means "histograms
// and rates agree within ~10% total variation".
const defaultThreshold = 0.10

// clusterThreshold holds the configured threshold as float bits;
// 0 = unset (defaultThreshold).
var clusterThreshold atomic.Uint64

// SetClusterThreshold configures the leader-clustering distance threshold
// for profiles finalized afterwards. t <= 0 restores the default.
func SetClusterThreshold(t float64) {
	if t <= 0 || math.IsNaN(t) {
		clusterThreshold.Store(0)
		return
	}
	clusterThreshold.Store(math.Float64bits(t))
}

// ClusterThreshold returns the effective clustering threshold.
func ClusterThreshold() float64 {
	b := clusterThreshold.Load()
	if b == 0 {
		return defaultThreshold
	}
	return math.Float64frombits(b)
}

// histDims is the width of the flattened, per-histogram-normalized
// fingerprint vector.
const histDims = PCBuckets + RegionBuckets + StrideBuckets

// feature is one epoch's normalized view used for distance computation:
// each histogram scaled to proportions (so epoch length cancels out) plus
// the derived rates.
type feature struct {
	hist [histDims]float64
	mpki float64
	cov  float64
	merr float64
}

// scalarScale normalizes the rate terms so they are comparable with the
// [0,1] histogram term: each rate is divided by its maximum over the run.
type scalarScale struct {
	mpki float64
	merr float64
}

func normalizeInto(dst []float64, src []uint32) {
	var total uint64
	for _, c := range src {
		total += uint64(c)
	}
	if total == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	inv := 1 / float64(total)
	for i, c := range src {
		dst[i] = float64(c) * inv
	}
}

// epochRates derives the per-epoch rates used by features, phase stats and
// the projection alike.
func epochRates(e *Epoch) (mpki, cov, merr float64) {
	if e.Insts > 0 {
		mpki = float64(e.Misses) * 1000 / float64(e.Insts)
	}
	if e.Misses > 0 {
		cov = float64(e.Covered) / float64(e.Misses)
	}
	if e.Judged > 0 {
		merr = e.ErrSum / float64(e.Judged)
	}
	return
}

func featureOf(e *Epoch) feature {
	var f feature
	normalizeInto(f.hist[:PCBuckets], e.FP.PC[:])
	normalizeInto(f.hist[PCBuckets:PCBuckets+RegionBuckets], e.FP.Region[:])
	normalizeInto(f.hist[PCBuckets+RegionBuckets:], e.FP.Stride[:])
	f.mpki, f.cov, f.merr = epochRates(e)
	return f
}

// distance is the normalized dissimilarity of two epochs in [0,1]. The
// histogram term is the summed L1 distance of the three proportion
// histograms (each pair contributes at most 2, so /6 normalizes). For live
// simulations the rate term — MPKI, coverage and mean relative error, each
// scaled to [0,1] — is blended in at 1/4 weight, so epochs that touch the
// same code and data but behave differently in the cache still separate.
// Offline stream profiles have no rates and cluster on histograms alone.
func distance(a, b *feature, sc scalarScale, hasSim bool) float64 {
	var h float64
	for i := range a.hist {
		h += math.Abs(a.hist[i] - b.hist[i])
	}
	h /= 6
	if !hasSim {
		return h
	}
	var s float64
	if sc.mpki > 0 {
		s += math.Abs(a.mpki-b.mpki) / sc.mpki
	}
	s += math.Abs(a.cov - b.cov)
	if sc.merr > 0 {
		s += math.Abs(a.merr-b.merr) / sc.merr
	}
	return 0.75*h + 0.25*s/3
}

// cluster assigns each epoch to a phase and picks a medoid epoch per
// phase. assign[i] is the phase id of epochs[i] (ids are dense, ordered by
// first appearance); medoids[c] is the index into epochs of phase c's
// representative interval.
func cluster(epochs []Epoch, hasSim bool) (assign []int, medoids []int) {
	if len(epochs) == 0 {
		return nil, nil
	}
	feats := make([]feature, len(epochs))
	var sc scalarScale
	for i := range epochs {
		feats[i] = featureOf(&epochs[i])
		if feats[i].mpki > sc.mpki {
			sc.mpki = feats[i].mpki
		}
		if feats[i].merr > sc.merr {
			sc.merr = feats[i].merr
		}
	}
	threshold := ClusterThreshold()

	assign = make([]int, len(epochs))
	var leaders []int // index into epochs of each phase's first member
	for i := range feats {
		best, bestD := -1, math.Inf(1)
		for c, li := range leaders {
			d := distance(&feats[i], &feats[li], sc, hasSim)
			if d < bestD {
				best, bestD = c, d
			}
		}
		if best >= 0 && (bestD <= threshold || len(leaders) >= maxPhases) {
			assign[i] = best
			continue
		}
		assign[i] = len(leaders)
		leaders = append(leaders, i)
	}

	// Medoid refinement: within each phase, the representative interval is
	// the member with the smallest summed distance to all other members.
	members := make([][]int, len(leaders))
	for i, c := range assign {
		members[c] = append(members[c], i)
	}
	medoids = make([]int, len(leaders))
	for c, ms := range members {
		bestI, bestSum := ms[0], math.Inf(1)
		for _, m := range ms {
			var sum float64
			for _, o := range ms {
				sum += distance(&feats[m], &feats[o], sc, hasSim)
			}
			if sum < bestSum {
				bestI, bestSum = m, sum
			}
		}
		medoids[c] = bestI
	}
	return assign, medoids
}
