package dram

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Banks: 0, RowBytes: 2048, RowHitCycles: 1, RowMissCycles: 2},
		{Banks: 3, RowBytes: 2048, RowHitCycles: 1, RowMissCycles: 2},
		{Banks: 8, RowBytes: 1000, RowHitCycles: 1, RowMissCycles: 2},
		{Banks: 8, RowBytes: 2048, RowHitCycles: 0, RowMissCycles: 2},
		{Banks: 8, RowBytes: 2048, RowHitCycles: 5, RowMissCycles: 2},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on invalid config")
		}
	}()
	New(Config{})
}

func TestColdAccessIsRowMiss(t *testing.T) {
	d := New(DefaultConfig())
	done := d.Access(0x1000, 100)
	if done != 100+d.Config().RowMissCycles {
		t.Fatalf("cold access done at %d", done)
	}
	st := d.Stats()
	if st.RowMisses != 1 || st.RowHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRowBufferHit(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0x1000, 0)
	// Same row, later in time (past occupancy): a row hit.
	done := d.Access(0x1040, 1000)
	if done != 1000+d.Config().RowHitCycles {
		t.Fatalf("row hit done at %d", done)
	}
	if d.Stats().RowHits != 1 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestRowConflict(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	d.Access(0x0, 0)
	// Same bank, different row: banks interleave by row, so row+Banks
	// lands on the same bank.
	conflictAddr := uint64(cfg.RowBytes * cfg.Banks)
	done := d.Access(conflictAddr, 1000)
	if done != 1000+cfg.RowMissCycles {
		t.Fatalf("conflict done at %d", done)
	}
	if d.Stats().RowMisses != 2 {
		t.Fatalf("stats = %+v", d.Stats())
	}
}

func TestBankOccupancyQueues(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	first := d.Access(0x0, 0)
	// Immediate second access to the same bank must start after the bank
	// occupancy, not at time 0.
	second := d.Access(0x40, 0)
	if second <= first-cfg.RowMissCycles+cfg.RowHitCycles {
		t.Fatalf("second access did not queue: %d vs %d", second, first)
	}
}

func TestChannelSharedAcrossBanks(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	d.Access(0x0, 0) // bank 0
	// Different bank, same instant: must wait for the shared channel.
	done := d.Access(uint64(cfg.RowBytes), 0) // row 1 -> bank 1
	if done != cfg.ChannelOccupancy+cfg.RowMissCycles {
		t.Fatalf("cross-bank access done at %d, want %d",
			done, cfg.ChannelOccupancy+cfg.RowMissCycles)
	}
}

func TestStreamingGetsRowHits(t *testing.T) {
	d := New(DefaultConfig())
	now := uint64(0)
	for i := 0; i < 32; i++ { // 32 x 64B = one row
		now = d.Access(uint64(i*64), now)
	}
	st := d.Stats()
	if st.RowHits < 25 {
		t.Fatalf("streaming should mostly row-hit: %+v", st)
	}
	if st.HitRate() < 0.75 {
		t.Fatalf("hit rate = %v", st.HitRate())
	}
}

func TestCompletionNeverBeforeRequest(t *testing.T) {
	f := func(addrs []uint32, gaps []uint8) bool {
		d := New(DefaultConfig())
		now := uint64(0)
		for i, a := range addrs {
			if i < len(gaps) {
				now += uint64(gaps[i])
			}
			done := d.Access(uint64(a)*64, now)
			if done < now {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	d := New(DefaultConfig())
	d.Access(0x1000, 0)
	d.Reset()
	if d.Stats() != (Stats{}) {
		t.Fatal("Reset must clear stats")
	}
	done := d.Access(0x1000, 0)
	if done != d.Config().RowMissCycles {
		t.Fatalf("post-reset access must be a cold row miss, done at %d", done)
	}
}

func TestZeroStatsHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatal("empty hit rate must be 0")
	}
}
