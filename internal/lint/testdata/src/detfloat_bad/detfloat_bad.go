// Package detfloat_bad exercises the detfloat analyzer's failure cases:
// float accumulation in map order.
package detfloat_bad

// SumCompound accumulates with += while ranging over a map.
func SumCompound(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want:detfloat
	}
	return sum
}

// SumSpelledOut accumulates with the spelled-out form.
func SumSpelledOut(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total = total + v // want:detfloat
	}
	return total
}
