package memsim

import (
	"io"

	"lva/internal/obs/prov"
	"lva/internal/trace"
)

// Replay feeds a recorded grid stream through one or more simulators,
// reproducing the recording run's per-access dispatch without executing
// any kernel arithmetic. Every state transition in the phase-1 model is a
// function of (pc, addr, precise value, instruction gap, thread, approx
// flag) — all captured exactly — so counters from a replayed simulator are
// identical to the run that recorded the stream, for any attachment and
// configuration whose annotated stream matches the recording (see the
// experiments layer for which design points qualify).
//
// Passing K simulators amortizes the decode: each decoded chunk is
// dispatched into every sim before the next chunk is read, so one trace
// pass drives K independent design points while touching each chunk once.
// instructions is the recording run's final instruction count (from
// GridHeader.Instructions); trailing non-memory work past the last access
// is re-applied as a final Tick.
func Replay(src trace.ChunkSource, instructions uint64, sims []*Sim) error {
	var chunks, accesses uint64
	for {
		accs, insts, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		chunks++
		accesses += uint64(len(accs))
		for _, s := range sims {
			for i := range accs {
				a := &accs[i]
				// Catch up the non-memory instructions since this sim's
				// previous access: the recording observed the access at
				// global index insts[i], and dispatch below retires the
				// access instruction itself, exactly like execution.
				s.thread = a.Thread
				s.insts = insts[i]
				if a.Op == trace.Store {
					s.Store(a.PC, a.Addr)
				} else {
					s.load(a.PC, a.Addr, a.Value, a.Approx)
				}
			}
		}
	}
	for _, s := range sims {
		if instructions > s.insts {
			s.Tick(instructions - s.insts)
		}
	}
	// One provenance cost sample per pass, never per access: the decode
	// volume lands on the ledger only when provenance is on.
	if l := prov.Active(); l != nil {
		l.AddDecode(chunks, accesses, uint64(len(sims)))
	}
	return nil
}
