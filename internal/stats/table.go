package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows of strings and renders them with aligned columns.
// Experiment drivers use it to print the same rows/series the paper reports.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	aligned bool
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row built from (label, formatted floats).
func (t *Table) AddRowf(label string, format string, vals ...float64) {
	row := []string{label}
	for _, v := range vals {
		row = append(row, fmt.Sprintf(format, v))
	}
	t.rows = append(t.rows, row)
}

// NumRows reports how many data rows have been added.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table with fixed-width columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		var sep []string
		for _, w := range widths[:len(t.header)] {
			sep = append(sep, strings.Repeat("-", w))
		}
		writeRow(sep)
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
