package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on http.DefaultServeMux
	"sync"
)

// publishOnce guards the expvar registration: expvar.Publish panics on a
// duplicate name, and ServeDebug may be called more than once in tests.
var publishOnce sync.Once

// ServeDebug starts an HTTP server on addr (e.g. "localhost:6060"; use
// ":0" to pick a free port) exposing net/http/pprof under /debug/pprof/
// and expvar under /debug/vars, with the default registry published as the
// expvar variable "lva_metrics" (full snapshot, volatile metrics
// included). It returns the bound address. The server runs on a background
// goroutine for the life of the process — this is an opt-in debugging
// endpoint wired to a CLI flag, not a managed service.
func ServeDebug(addr string) (string, error) {
	publishOnce.Do(func() {
		expvar.Publish("lva_metrics", expvar.Func(func() any {
			return Default().Snapshot(true)
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug server: %w", err)
	}
	go func() {
		// Serve exits only when the listener closes at process death;
		// the error is uninteresting for a debug endpoint.
		_ = http.Serve(ln, http.DefaultServeMux)
	}()
	return ln.Addr().String(), nil
}
