package obs

import (
	"bytes"
	"strings"
	"testing"
)

// buildTestRegistry populates a registry with one metric of each kind.
func buildTestRegistry() *Registry {
	r := New()
	r.Counter("zz_last", "sorts last").Add(3)
	r.Counter("aa_first", "sorts first").Add(1)
	r.Gauge("mm_gauge", "").Set(-4)
	h := r.Histogram("hh_hist", "a histogram", []float64{0.5, 1}, false)
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(99)
	r.Histogram("tt_timing", "volatile timing", TimeBuckets, true).Observe(0.01)
	return r
}

// TestSnapshotSortedAndDeterministic checks snapshots are name-sorted and
// repeated JSON renderings are byte-identical.
func TestSnapshotSortedAndDeterministic(t *testing.T) {
	r := buildTestRegistry()
	s := r.Snapshot(false)
	var prev string
	for _, m := range s.Metrics {
		if m.Name <= prev {
			t.Fatalf("snapshot not strictly name-sorted: %q after %q", m.Name, prev)
		}
		prev = m.Name
	}
	a, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Snapshot(false).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("repeated snapshots differ:\n%s\n---\n%s", a, b)
	}
	if !bytes.HasSuffix(a, []byte("\n")) {
		t.Error("JSON output should end with a newline")
	}
}

// TestSnapshotVolatileFilter checks volatile metrics only appear when
// explicitly requested.
func TestSnapshotVolatileFilter(t *testing.T) {
	r := buildTestRegistry()
	names := func(s Snapshot) map[string]bool {
		out := make(map[string]bool, len(s.Metrics))
		for _, m := range s.Metrics {
			out[m.Name] = true
		}
		return out
	}
	det := names(r.Snapshot(false))
	if det["tt_timing"] {
		t.Error("deterministic snapshot includes a volatile metric")
	}
	all := names(r.Snapshot(true))
	if !all["tt_timing"] {
		t.Error("Snapshot(true) should include volatile metrics")
	}
}

// TestSnapshotRoundTrip checks ParseSnapshot inverts JSON.
func TestSnapshotRoundTrip(t *testing.T) {
	s := buildTestRegistry().Snapshot(true)
	b, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("round trip changed bytes:\n%s\n---\n%s", b, b2)
	}
	if _, err := ParseSnapshot([]byte("{nope")); err == nil {
		t.Error("ParseSnapshot should reject malformed input")
	}
}

// TestSnapshotBucketRendering pins the histogram wire format: every
// bucket present, overflow rendered as "+Inf".
func TestSnapshotBucketRendering(t *testing.T) {
	r := buildTestRegistry()
	s := r.Snapshot(false)
	var hist *MetricSnapshot
	for i := range s.Metrics {
		if s.Metrics[i].Name == "hh_hist" {
			hist = &s.Metrics[i]
		}
	}
	if hist == nil {
		t.Fatal("hh_hist missing from snapshot")
	}
	if hist.Count != 3 {
		t.Errorf("histogram Count = %d, want 3", hist.Count)
	}
	wantLe := []string{"0.5", "1", "+Inf"}
	wantN := []uint64{1, 1, 1}
	if len(hist.Buckets) != len(wantLe) {
		t.Fatalf("bucket count %d, want %d", len(hist.Buckets), len(wantLe))
	}
	for i, bk := range hist.Buckets {
		if bk.Le != wantLe[i] || bk.Count != wantN[i] {
			t.Errorf("bucket %d = {%s, %d}, want {%s, %d}", i, bk.Le, bk.Count, wantLe[i], wantN[i])
		}
	}
}

// TestSnapshotMarkdown spot-checks the report rendering.
func TestSnapshotMarkdown(t *testing.T) {
	md := buildTestRegistry().Snapshot(false).Markdown()
	for _, want := range []string{
		"| metric | kind | value |",
		"| aa_first | counter | 1 |",
		"| mm_gauge | gauge | -4 |",
		"≤+Inf: 1",
		"n=3",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	if strings.Contains(md, "tt_timing") {
		t.Error("deterministic markdown should not include volatile metrics")
	}
}
