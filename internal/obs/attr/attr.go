// Package attr is the approximation flight recorder: per-PC (per-site)
// error attribution and windowed epoch time-series for the phase-1
// simulator. Where internal/obs counts *how many* trainings and confidence
// rejections happen process-wide, attr records *which load sites* cause the
// error and *when* during a run the approximator drifts.
//
// The wiring follows the same zero-overhead-when-off convention as the obs
// metric seams: a Recorder is attached to a simulator only when
// SetEnabled(true) ran before the run was set up, the hot structs hold a
// nil-able pointer, and the per-access hooks are a single nil check when
// attribution is off. The plain (non-annotated) load-hit path is never
// touched — only annotated loads and their miss/training machinery report
// here, and a Recorder belongs to exactly one single-threaded simulation,
// so the hot methods take no locks and the float accumulators are
// deterministic.
//
// This package sits on the simulator hot path, so the lvalint obshooks and
// hotpath analyzers apply: no time.Now, no fmt, no package-level mutation,
// no interface-typed parameters in the per-access methods.
package attr

import (
	"math"
	"sync/atomic"
)

// enabled gates attribution the same way obs.SetEnabled gates metrics: it
// is consulted when a run is wired up, not per access.
var enabled atomic.Bool

// SetEnabled turns attribution on or off for subsequently wired runs.
// Off by default so the simulator hot paths carry zero cost.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether attribution is enabled.
func Enabled() bool { return enabled.Load() }

// DefaultEpochWindow is the epoch length in annotated loads when no window
// was configured: long enough that a full benchmark run yields tens of
// epochs, short enough to localize drift.
const DefaultEpochWindow = 50000

// epochRingCap bounds the per-run epoch ring; when a run exceeds it the
// oldest epochs are dropped (the snapshot reports how many).
const epochRingCap = 512

// epochWindow holds the configured window: 0 = unset (DefaultEpochWindow),
// negative = epochs disabled.
var epochWindow atomic.Int64

// SetEpochWindow configures the epoch length in annotated loads for
// Recorders created afterwards. n <= 0 disables the epoch time-series
// (per-site attribution still runs).
func SetEpochWindow(n int) {
	if n <= 0 {
		epochWindow.Store(-1)
		return
	}
	epochWindow.Store(int64(n))
}

// EpochWindow returns the effective epoch window (0 when disabled).
func EpochWindow() int {
	v := epochWindow.Load()
	if v == 0 {
		return DefaultEpochWindow
	}
	if v < 0 {
		return 0
	}
	return int(v)
}

// Site accumulates the attribution counters of one approximate-load PC.
type Site struct {
	PC         uint64
	Loads      uint64 // annotated loads issued from this PC
	Misses     uint64 // L1 misses of those loads
	Covered    uint64 // misses satisfied with an approximation
	Fetches    uint64 // block fetches those misses triggered
	Trainings  uint64 // training commits attributed to this PC
	Accepts    uint64 // trainings inside the confidence window
	Rejects    uint64 // trainings outside the window
	ConfGained uint64 // confidence counter crossings into conf >= 0
	ConfLost   uint64 // crossings out of the confident range
	WildErrs   uint64 // trainings whose relative error was undefined (actual 0, NaN)
	ErrSum     float64
	ErrMax     float64
}

// Epoch is one window of the time-series, raw counters only; derived rates
// (MPKI, coverage, mean error) are computed at snapshot time.
type Epoch struct {
	Index      int    // 0-based epoch number within the run
	Loads      uint64 // annotated loads (== the window, except a final partial epoch)
	Insts      uint64 // instructions elapsed during the epoch
	Misses     uint64
	Covered    uint64
	Trainings  uint64
	Accepts    uint64
	Rejects    uint64
	ConfGained uint64
	ConfLost   uint64
	WildErrs   uint64
	ErrSum     float64
}

// attrTableInitial sizes the open-addressed site table; Figure 12 shows at
// most ~300 static approximate PCs, so growth is rare.
const attrTableInitial = 256

// Recorder collects the attribution of one simulation run. It belongs to
// exactly one simulator and is not safe for concurrent use; publish it to
// the process-wide registry (Publish) once the run has drained.
type Recorder struct {
	scope string
	// tab is an open-addressed hash table keyed by PC with zero as the
	// empty-slot sentinel; PC 0 is tracked separately (same layout as
	// memsim's pcSet, with a payload).
	tab      []Site
	n        int
	zero     Site
	zeroUsed bool

	window          uint64 // epoch length in annotated loads; 0 = epochs off
	epoch           Epoch  // accumulator for the current epoch
	epochStartInsts uint64
	lastInsts       uint64
	ring            []Epoch // last epochRingCap sealed epochs
	ringStart       int     // index of the oldest sealed epoch in ring
	ringLen         int
	totalEpochs     int
}

// NewRecorder builds a recorder for one run. scope names the run in the
// published snapshot (the experiment harness uses bench/attach/confighash).
// The epoch window is captured from SetEpochWindow at construction.
func NewRecorder(scope string) *Recorder {
	r := &Recorder{scope: scope, window: uint64(EpochWindow())}
	if r.window > 0 {
		r.ring = make([]Epoch, 0, epochRingCap)
	}
	return r
}

// Scope returns the run label the recorder was created with.
func (r *Recorder) Scope() string { return r.scope }

func (r *Recorder) slot(pc uint64) uint64 {
	// Fibonacci hashing: synthetic PCs differ only in a few low bits.
	return (pc * 0x9E3779B97F4A7C15) >> 32 & uint64(len(r.tab)-1)
}

// site returns the accumulator for pc, inserting it on first use. The
// returned pointer is valid until the next insertion-triggered growth, so
// callers use it immediately and never retain it.
func (r *Recorder) site(pc uint64) *Site {
	if pc == 0 {
		if !r.zeroUsed {
			r.zeroUsed = true
			r.zero.PC = 0
			r.n++
		}
		return &r.zero
	}
	if r.tab == nil {
		r.tab = make([]Site, attrTableInitial)
	}
	mask := uint64(len(r.tab) - 1)
	for i := r.slot(pc); ; i = (i + 1) & mask {
		s := &r.tab[i]
		if s.PC == pc {
			return s
		}
		if s.PC == 0 {
			s.PC = pc
			r.n++
			if (r.n-1)*4 >= len(r.tab)*3 {
				r.growTable()
				return r.site(pc)
			}
			return s
		}
	}
}

func (r *Recorder) growTable() {
	old := r.tab
	r.tab = make([]Site, 2*len(old))
	mask := uint64(len(r.tab) - 1)
	for oi := range old {
		if old[oi].PC == 0 {
			continue
		}
		i := r.slot(old[oi].PC)
		for r.tab[i].PC != 0 {
			i = (i + 1) & mask
		}
		r.tab[i] = old[oi]
	}
}

// Load records one annotated load from pc; insts is the simulator's running
// instruction count, used to delimit epochs. Hot path: one table probe plus
// a window compare.
func (r *Recorder) Load(pc, insts uint64) {
	r.site(pc).Loads++
	r.lastInsts = insts
	if r.window == 0 {
		return
	}
	r.epoch.Loads++
	if r.epoch.Loads >= r.window {
		r.sealEpoch(insts)
	}
}

// Miss records the outcome of one annotated-load L1 miss: whether it was
// covered by an approximation and whether it fetched the block.
func (r *Recorder) Miss(pc uint64, covered, fetched bool) {
	s := r.site(pc)
	s.Misses++
	if covered {
		s.Covered++
	}
	if fetched {
		s.Fetches++
	}
	if r.window == 0 {
		return
	}
	r.epoch.Misses++
	if covered {
		r.epoch.Covered++
	}
}

// Train records one training commit for pc. hadApprox marks commits where
// an approximation existed to judge: only those carry accepted/gained/lost
// and relErr (the relative error of the approximation vs the actual value).
// A non-finite relErr — RelDiff against an actual value of zero is +Inf —
// counts as a wild error and stays out of the sums so means and snapshots
// remain finite.
func (r *Recorder) Train(pc uint64, hadApprox, accepted, gained, lost bool, relErr float64) {
	s := r.site(pc)
	s.Trainings++
	if r.window != 0 {
		r.epoch.Trainings++
	}
	if !hadApprox {
		return
	}
	wild := math.IsInf(relErr, 0) || math.IsNaN(relErr)
	if accepted {
		s.Accepts++
	} else {
		s.Rejects++
	}
	if gained {
		s.ConfGained++
	}
	if lost {
		s.ConfLost++
	}
	if wild {
		s.WildErrs++
	} else {
		s.ErrSum += relErr
		if relErr > s.ErrMax {
			s.ErrMax = relErr
		}
	}
	if r.window == 0 {
		return
	}
	e := &r.epoch
	if accepted {
		e.Accepts++
	} else {
		e.Rejects++
	}
	if gained {
		e.ConfGained++
	}
	if lost {
		e.ConfLost++
	}
	if wild {
		e.WildErrs++
	} else {
		e.ErrSum += relErr
	}
}

// sealEpoch closes the current epoch at instruction count insts and pushes
// it onto the ring, dropping the oldest epoch when full.
func (r *Recorder) sealEpoch(insts uint64) {
	e := r.epoch
	e.Index = r.totalEpochs
	e.Insts = insts - r.epochStartInsts
	r.totalEpochs++
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
		r.ringLen = len(r.ring)
	} else {
		r.ring[r.ringStart] = e
		r.ringStart = (r.ringStart + 1) % len(r.ring)
	}
	r.epochStartInsts = insts
	r.epoch = Epoch{}
}

// Sites returns the number of distinct PCs recorded.
func (r *Recorder) Sites() int { return r.n }

// TotalEpochs returns how many epochs have been sealed so far.
func (r *Recorder) TotalEpochs() int { return r.totalEpochs }
