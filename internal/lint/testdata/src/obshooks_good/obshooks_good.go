// Package obshooks_good exercises the obshooks analyzer's accepted
// patterns: per-instance state on receivers and locals, with shared
// counters reached only through a nil-able metrics seam.
package obshooks_good

// metrics stands in for the obs-registered seam struct each hot-path
// package keeps (nil when metrics are disabled).
type metrics struct{ misses counter }

// counter stands in for obs.Counter.
type counter struct{ n uint64 }

func (c *counter) inc() {
	if c != nil {
		c.n++
	}
}

// sim is per-instance simulator state: field mutation through a receiver
// is the normal, allowed pattern.
type sim struct {
	misses uint64
	om     *metrics
}

// OnMiss counts on the instance and through the seam, never on a global.
func (s *sim) OnMiss() {
	s.misses++
	if m := s.om; m != nil {
		m.misses.inc()
	}
}

// Sum accumulates into locals, which is always fine.
func Sum(vals []int) int {
	total := 0
	for _, v := range vals {
		total += v
	}
	return total
}
