package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Bucket is one histogram bucket in a snapshot. Le is the bucket's
// inclusive upper bound formatted as a string ("+Inf" for the overflow
// bucket) because JSON cannot encode infinities.
type Bucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// MetricSnapshot is one metric's frozen state.
type MetricSnapshot struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Help    string   `json:"help,omitempty"`
	Value   int64    `json:"value,omitempty"`   // gauges
	Count   uint64   `json:"count,omitempty"`   // counters and histogram totals
	Buckets []Bucket `json:"buckets,omitempty"` // histograms
}

// Snapshot is a frozen, name-sorted view of a registry. With volatile
// metrics excluded it is fully deterministic: the same simulations produce
// the same bytes regardless of Parallelism or scheduling order.
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

// formatBound renders a histogram bound compactly and reversibly.
func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// Snapshot freezes the registry. includeVolatile also captures metrics
// registered as volatile (wall-clock histograms); leave it false for
// deterministic output.
func (r *Registry) Snapshot(includeVolatile bool) Snapshot {
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.metrics))
	for _, e := range r.metrics {
		if e.volatile && !includeVolatile {
			continue
		}
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	snap := Snapshot{Metrics: make([]MetricSnapshot, 0, len(entries))}
	for _, e := range entries {
		m := MetricSnapshot{Name: e.name, Kind: e.kind, Help: e.help}
		switch e.kind {
		case kindCounter:
			m.Count = e.c.Value()
		case kindGauge:
			m.Value = e.g.Value()
		case kindHistogram:
			counts := e.h.BucketCounts()
			bounds := e.h.Bounds()
			m.Count = e.h.Count()
			m.Buckets = make([]Bucket, len(counts))
			for i, n := range counts {
				le := "+Inf"
				if i < len(bounds) {
					le = formatBound(bounds[i])
				}
				m.Buckets[i] = Bucket{Le: le, Count: n}
			}
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}

// JSON renders the snapshot as stable, indented JSON terminated by a
// newline. Struct-driven marshalling keeps field order fixed, and the
// metric slice is name-sorted, so identical registries always produce
// identical bytes.
func (s Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseSnapshot decodes bytes written by Snapshot.JSON.
func ParseSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parse snapshot: %w", err)
	}
	return s, nil
}

// Markdown renders the snapshot as a GitHub-flavored table, one row per
// metric. Histograms report their total count plus the non-empty buckets
// inline, so a report stays readable without losing the distribution.
func (s Snapshot) Markdown() string {
	var b strings.Builder
	b.WriteString("| metric | kind | value |\n|---|---|---|\n")
	for _, m := range s.Metrics {
		var v string
		switch m.Kind {
		case kindGauge:
			v = strconv.FormatInt(m.Value, 10)
		case kindHistogram:
			parts := make([]string, 0, len(m.Buckets))
			for _, bk := range m.Buckets {
				if bk.Count > 0 {
					parts = append(parts, fmt.Sprintf("≤%s: %d", bk.Le, bk.Count))
				}
			}
			v = fmt.Sprintf("n=%d", m.Count)
			if len(parts) > 0 {
				v += " (" + strings.Join(parts, ", ") + ")"
			}
		default:
			v = strconv.FormatUint(m.Count, 10)
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", m.Name, m.Kind, v)
	}
	return b.String()
}
