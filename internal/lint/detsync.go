package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lva/internal/lint/flow"
)

// detsyncAnalyzer enforces the deterministic-concurrency discipline of the
// experiment drivers (lva/internal/experiments) and the full-system mesh
// (lva/internal/fullsys): parallelism must never become ordering. The
// rules, each of which encodes a way fan-out has historically turned a
// deterministic sweep into run-to-run noise:
//
//   - worker results are index-assigned into preallocated slices; a
//     goroutine that appends to a captured slice — even under a mutex —
//     records completion order, which varies with the scheduler.
//   - sync.WaitGroup discipline is checked across the call graph:
//     Add must precede the `go` statement (an Add inside the goroutine
//     races Wait), and every goroutine that captures or receives a
//     WaitGroup must reach Done — directly, deferred, or through a callee
//     that (transitively) calls Done on its *sync.WaitGroup parameter.
//   - channel delivery order is not a result order: draining a channel
//     into an appended slice bakes scheduler timing into output; carry an
//     index in the message and assign by index instead.
//   - the simulator hot-path packages (memsim, cache, core, obs/attr) may
//     not launch goroutines at all, directly or through any call chain —
//     per-load code that forks is both a perf cliff and a determinism
//     hazard, so the ban is enforced transitively over the flow graph.
//
// Test files are exempt, as is anything acknowledged with //lint:ignore.
var detsyncAnalyzer = &Analyzer{
	Name:       "detsync",
	Doc:        "deterministic fan-out: index-assigned results, WaitGroup pairing across the call graph, no channel-order results, no goroutines on the hot path",
	RunProgram: runDetsync,
}

// detsyncScopePkgs are the fan-out packages the result/WaitGroup/channel
// rules apply to.
var detsyncScopePkgs = map[string]bool{
	"lva/internal/experiments": true,
	"lva/internal/fullsys":     true,
}

// inDetsyncScope reports whether the fan-out rules police this package.
func inDetsyncScope(path string) bool {
	return detsyncScopePkgs[path] ||
		(isFixturePath(path) && strings.Contains(path, "detsync") && !strings.Contains(path, "detsync_hot"))
}

// inHotBanScope reports whether the goroutine ban polices this package.
func inHotBanScope(path string) bool {
	return hotPathPkgs[path] || (isFixturePath(path) && strings.Contains(path, "detsync_hot"))
}

func runDetsync(p *ProgramPass) {
	flow.ComputeEffects(p.Graph)
	for _, fn := range p.Graph.All() {
		if fn.Decl.Body == nil || p.InTestFile(fn.Decl.Pos()) {
			continue
		}
		if inDetsyncScope(fn.Pkg.Path) {
			checkGoroutineAppends(p, fn)
			checkWaitGroups(p, fn)
			checkChannelOrder(p, fn)
		}
		if inHotBanScope(fn.Pkg.Path) {
			checkHotSpawns(p, fn)
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside node.
func declaredOutside(obj types.Object, node ast.Node) bool {
	if obj == nil {
		return false
	}
	pos := obj.Pos()
	return pos < node.Pos() || pos > node.End()
}

// checkGoroutineAppends flags `x = append(x, ...)` inside a goroutine
// literal when x is captured from outside: the append order is the
// scheduler's completion order, not the work order.
func checkGoroutineAppends(p *ProgramPass, fn *flow.Func) {
	info := fn.Pkg.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "append" {
					continue
				}
				if b, ok := info.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
					continue
				}
				if len(call.Args) == 0 {
					continue
				}
				root, ok := unwrapIdentExpr(call.Args[0])
				if !ok {
					continue
				}
				if obj := info.ObjectOf(root); obj != nil && declaredOutside(obj, lit) {
					p.Reportf(as.Pos(), "goroutine appends worker results to captured %s: append order is the scheduler's completion order; preallocate the slice and assign by index", root.Name)
				}
			}
			return true
		})
		return true
	})
}

// wgObjOf resolves e to a sync.WaitGroup-typed object, if any.
func wgObjOf(info *types.Info, e ast.Expr) types.Object {
	obj := flowRootObj(info, e)
	if obj != nil && flow.IsWaitGroup(obj.Type()) {
		return obj
	}
	return nil
}

// flowRootObj unwraps &x/(x)/x.f down to the root identifier's object.
func flowRootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// wgMethodCall matches wg.<method>() on a WaitGroup object and returns it.
func wgMethodCall(info *types.Info, call *ast.CallExpr, method string) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	return wgObjOf(info, sel.X)
}

// checkWaitGroups enforces Add-before-go / Done-inside-goroutine pairing,
// resolving Done through *sync.WaitGroup parameters across the call graph.
func checkWaitGroups(p *ProgramPass, fn *flow.Func) {
	info := fn.Pkg.Info

	// Pass 1: goroutine literals, Adds outside them, Waits, and every way
	// a Done can be reached in this function (direct call, deferred, or a
	// call that hands the WaitGroup to a transitively Done-ing callee).
	var goLits []ast.Node
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				goLits = append(goLits, lit)
			}
		}
		return true
	})
	insideGoLit := func(pos token.Pos) bool {
		for _, l := range goLits {
			if l.Pos() <= pos && pos <= l.End() {
				return true
			}
		}
		return false
	}
	addsBefore := make(map[types.Object]bool)
	donesAnywhere := make(map[types.Object]bool)
	waitPos := make(map[types.Object]token.Pos)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if wg := wgMethodCall(info, call, "Add"); wg != nil && !insideGoLit(call.Pos()) {
			addsBefore[wg] = true
		}
		if wg := wgMethodCall(info, call, "Done"); wg != nil {
			donesAnywhere[wg] = true
		}
		if wg := wgMethodCall(info, call, "Wait"); wg != nil {
			if _, seen := waitPos[wg]; !seen {
				waitPos[wg] = call.Pos()
			}
		}
		for _, arg := range call.Args {
			if wg := wgObjOf(info, arg); wg != nil && p.Graph.CallDonesWaitGroup(info, call, wg) {
				donesAnywhere[wg] = true
			}
		}
		return true
	})

	// Pass 2: per-goroutine pairing. reported suppresses the coarser
	// Add/Wait-level rule once a sharper per-launch finding exists.
	reported := make(map[types.Object]bool)
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
			checkGoroutineWG(p, fn, gs, lit, addsBefore, reported)
			return true
		}
		// go worker(&wg, ...): the callee must (transitively) Done the
		// WaitGroup it was handed.
		for _, arg := range gs.Call.Args {
			wg := wgObjOf(info, arg)
			if wg == nil {
				continue
			}
			if !p.Graph.CallDonesWaitGroup(info, gs.Call, wg) {
				p.Reportf(gs.Pos(), "goroutine is handed WaitGroup %s but its target never calls Done on it (checked across the call graph): the matching Wait deadlocks or returns early", wgName(wg))
				reported[wg] = true
			} else if !addsBefore[wg] {
				p.Reportf(gs.Pos(), "goroutine Dones WaitGroup %s but no Add precedes the launch in this function: pair every Done with an Add before the go statement", wgName(wg))
				reported[wg] = true
			}
		}
		return true
	})

	// Add + Wait with no Done reachable anywhere — the goroutines launched
	// in between never signal completion, so Wait hangs. Only fires when
	// no sharper per-launch finding already covers the WaitGroup.
	for wg, pos := range waitPos {
		if addsBefore[wg] && !donesAnywhere[wg] && !reported[wg] {
			p.Reportf(pos, "WaitGroup %s is Added and Waited in this function but nothing ever calls Done on it (checked across the call graph): Wait deadlocks", wgName(wg))
		}
	}
}

// checkGoroutineWG checks one `go func(...){...}` against the WaitGroup
// rules.
func checkGoroutineWG(p *ProgramPass, fn *flow.Func, gs *ast.GoStmt, lit *ast.FuncLit, addsBefore, reported map[types.Object]bool) {
	info := fn.Pkg.Info
	captured := make(map[types.Object]bool) // WaitGroups referenced by the literal
	dones := make(map[types.Object]bool)
	addsInside := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.ObjectOf(n); obj != nil && flow.IsWaitGroup(obj.Type()) && declaredOutside(obj, lit) {
				captured[obj] = true
			}
		case *ast.CallExpr:
			if wg := wgMethodCall(info, n, "Add"); wg != nil && declaredOutside(wg, lit) {
				p.Reportf(n.Pos(), "WaitGroup Add inside the goroutine races the launcher's Wait: Add before the go statement")
				addsInside[wg] = true
				reported[wg] = true
			}
			if wg := wgMethodCall(info, n, "Done"); wg != nil {
				dones[wg] = true
			}
			// Forwarding the WaitGroup to a Done-ing callee counts.
			for _, arg := range n.Args {
				if wg := wgObjOf(info, arg); wg != nil && p.Graph.CallDonesWaitGroup(info, n, wg) {
					dones[wg] = true
				}
			}
		}
		return true
	})
	for wg := range captured {
		if !dones[wg] {
			p.Reportf(gs.Pos(), "goroutine captures WaitGroup %s but never reaches Done (checked across the call graph): the matching Wait deadlocks", wgName(wg))
			reported[wg] = true
		} else if !addsBefore[wg] && !addsInside[wg] {
			p.Reportf(gs.Pos(), "goroutine Dones WaitGroup %s but no Add precedes the launch in this function: pair every Done with an Add before the go statement", wgName(wg))
			reported[wg] = true
		}
	}
}

// wgName renders the WaitGroup variable name for messages.
func wgName(obj types.Object) string { return obj.Name() }

// checkChannelOrder flags result slices built in channel delivery order:
// inside a loop that receives from a channel, appending a received (or
// receive-derived) value to a slice declared outside the loop.
func checkChannelOrder(p *ProgramPass, fn *flow.Func) {
	info := fn.Pkg.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.RangeStmt:
			t := info.TypeOf(loop.X)
			if t == nil {
				return true
			}
			if _, isChan := t.Underlying().(*types.Chan); !isChan {
				return true
			}
			derived := make(map[types.Object]bool)
			if id, ok := loop.Key.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					derived[obj] = true
				}
			}
			checkRecvLoopBody(p, fn, loop, loop.Body, derived)
		case *ast.ForStmt:
			derived := collectRecvBindings(info, loop.Body)
			if len(derived) > 0 {
				checkRecvLoopBody(p, fn, loop, loop.Body, derived)
			}
		}
		return true
	})
}

// collectRecvBindings finds objects bound from `<-ch` receives in a loop
// body.
func collectRecvBindings(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	derived := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		fromRecv := false
		for _, rhs := range as.Rhs {
			if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				fromRecv = true
			}
		}
		if !fromRecv {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					derived[obj] = true
				}
			}
		}
		return true
	})
	return derived
}

// checkRecvLoopBody propagates receive-derived values through the loop
// body's assignments and reports appends of them to slices declared
// outside the loop.
func checkRecvLoopBody(p *ProgramPass, fn *flow.Func, loop ast.Node, body *ast.BlockStmt, derived map[types.Object]bool) {
	info := fn.Pkg.Info
	mentionsDerived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil && derived[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	// Two propagation sweeps cover the worked-example depth (pt := job;
	// pt.X = f(job); append(out, pt)) without a full fixpoint.
	for sweep := 0; sweep < 2; sweep++ {
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			derivedRHS := false
			for _, rhs := range as.Rhs {
				if mentionsDerived(rhs) {
					derivedRHS = true
				}
			}
			if !derivedRHS {
				return true
			}
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil && !declaredOutside(obj, loop) {
						derived[obj] = true
					}
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := info.ObjectOf(id).(*types.Builtin); !ok || b.Name() != "append" {
				continue
			}
			if len(call.Args) < 2 {
				continue
			}
			root, ok := unwrapIdentExpr(call.Args[0])
			if !ok {
				continue
			}
			obj := info.ObjectOf(root)
			if obj == nil || !declaredOutside(obj, loop) {
				continue
			}
			for _, el := range call.Args[1:] {
				if mentionsDerived(el) {
					p.Reportf(as.Pos(), "result slice %s is appended in channel delivery order, which is scheduler-dependent: carry an index in the message and assign out[i] instead", root.Name)
					break
				}
			}
		}
		return true
	})
}

// checkHotSpawns bans goroutine creation on the hot path, transitively:
// a direct `go` statement, or any call whose static target spawns one
// somewhere in its call tree.
func checkHotSpawns(p *ProgramPass, fn *flow.Func) {
	info := fn.Pkg.Info
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "goroutine launch in hot-path package %s: per-load code must not fork (determinism and inlining both die here)", fn.Pkg.Path)
		case *ast.CallExpr:
			callee := p.Graph.Lookup(flow.CalleeOf(info, n))
			if callee == nil || !callee.Spawns {
				return true
			}
			p.Reportf(n.Pos(), "call to %s from hot-path package %s launches goroutines (%s): per-load code must not fork", callee.Obj.Name(), fn.Pkg.Path, spawnChain(callee))
		}
		return true
	})
}

// spawnChain renders a short call chain from fn to the first function
// with a direct `go` statement, for the finding message.
func spawnChain(fn *flow.Func) string {
	seen := map[*flow.Func]bool{fn: true}
	chain := []string{fn.Obj.Name()}
	cur := fn
	for !cur.SpawnsDirect {
		next := (*flow.Func)(nil)
		for _, c := range cur.Callees {
			if c.Spawns && !seen[c] {
				next = c
				break
			}
		}
		if next == nil {
			break
		}
		seen[next] = true
		chain = append(chain, next.Obj.Name())
		cur = next
	}
	return strings.Join(chain, " -> ") + " contains `go`"
}
