package phase

import (
	"math"
	"reflect"
	"strconv"
	"sync"
	"testing"
)

// resetWindow restores the unset (default-window) state tests start from.
func resetWindow() { epochWindow.Store(0) }

// drivePhased feeds a synthetic two-phase stream: phase A walks a small
// array with unit stride from a few PCs, phase B strides widely through a
// distant region from different PCs. Each epoch also gets distinct miss
// and training rates so the rate term separates them too.
func drivePhased(p *Profiler, epochs, window int) {
	insts := uint64(0)
	for e := 0; e < epochs; e++ {
		phaseB := (e/4)%2 == 1 // 4 epochs of A, 4 of B, repeat
		for i := 0; i < window; i++ {
			insts += 2
			if phaseB {
				p.Load(uint64(0x9000+i%3*4), uint64(0x40000000+i*4096), insts)
			} else {
				p.Load(uint64(0x400+i%3*4), uint64(0x100000+i*8), insts)
			}
			if i%10 == 0 {
				p.Miss(phaseB)
				if phaseB {
					p.Train(0.25)
				} else {
					p.Train(0.01)
				}
			}
		}
	}
}

func TestRunShorterThanOneWindow(t *testing.T) {
	SetEpochWindow(1000)
	defer resetWindow()
	p := NewProfiler("short")
	for i := 0; i < 37; i++ {
		p.Load(0x40, uint64(0x1000+i*8), uint64(i*2))
	}
	p.Miss(true)
	prof := p.Finalize()
	if prof.TotalEpochs != 1 || len(prof.Timeline) != 1 {
		t.Fatalf("TotalEpochs = %d, timeline = %v; want one partial epoch", prof.TotalEpochs, prof.Timeline)
	}
	if prof.Loads != 37 {
		t.Fatalf("Loads = %d, want 37", prof.Loads)
	}
	if len(prof.Phases) != 1 || prof.Phases[0].Epochs != 1 || prof.Phases[0].Occupancy != 1 {
		t.Fatalf("phases = %+v, want one phase with full occupancy", prof.Phases)
	}
}

func TestExactMultipleWindowBoundary(t *testing.T) {
	SetEpochWindow(50)
	defer resetWindow()
	p := NewProfiler("exact")
	for i := 0; i < 3*50; i++ {
		p.Load(0x40, uint64(0x1000+i*8), uint64(i))
	}
	if p.TotalEpochs() != 3 {
		t.Fatalf("TotalEpochs = %d before Finalize, want 3", p.TotalEpochs())
	}
	prof := p.Finalize()
	if prof.TotalEpochs != 3 || len(prof.Timeline) != 3 {
		t.Fatalf("finalize on an exact window multiple must not seal an empty fourth epoch: %+v", prof)
	}
	if prof.Loads != 150 {
		t.Fatalf("Loads = %d, want 150", prof.Loads)
	}
}

func TestRingWrapDroppedAccounting(t *testing.T) {
	SetEpochWindow(10)
	defer resetWindow()
	p := NewProfiler("ring")
	total := (epochRingCap + 33) * 10
	for i := 0; i < total; i++ {
		p.Load(0x40, uint64(0x1000+i*64), uint64(i*3))
	}
	prof := p.Finalize()
	if prof.TotalEpochs != epochRingCap+33 {
		t.Fatalf("TotalEpochs = %d, want %d", prof.TotalEpochs, epochRingCap+33)
	}
	if prof.DroppedEpochs != 33 {
		t.Fatalf("DroppedEpochs = %d, want 33", prof.DroppedEpochs)
	}
	if len(prof.Timeline) != epochRingCap {
		t.Fatalf("retained epochs = %d, want %d", len(prof.Timeline), epochRingCap)
	}
	// Totals cover retained epochs only, so projection weights stay
	// consistent with what was clustered.
	if prof.Loads != uint64(epochRingCap*10) {
		t.Fatalf("Loads = %d, want %d (retained only)", prof.Loads, epochRingCap*10)
	}
}

func TestWindowDisabled(t *testing.T) {
	SetEpochWindow(-1)
	defer resetWindow()
	if EpochWindow() != 0 {
		t.Fatalf("EpochWindow() = %d, want 0 when disabled", EpochWindow())
	}
	p := NewProfiler("off")
	for i := 0; i < 1000; i++ {
		p.Load(0x40, uint64(i*8), uint64(i))
	}
	prof := p.Finalize()
	if prof.TotalEpochs != 0 || len(prof.Phases) != 0 {
		t.Fatalf("epochs recorded with window disabled: %+v", prof)
	}
}

func TestStrideSlotBuckets(t *testing.T) {
	cases := []struct {
		delta int64
		want  int
	}{
		{0, 0}, {1, 1}, {-1, 1}, {2, 2}, {3, 2}, {4, 3}, {8, 4},
		{1 << 14, 15}, {-(1 << 20), 15}, {1<<62 - 1, 15},
	}
	for _, c := range cases {
		if got := strideSlot(c.delta); got != c.want {
			t.Errorf("strideSlot(%d) = %d, want %d", c.delta, got, c.want)
		}
	}
}

func TestTwoPhaseStreamClusters(t *testing.T) {
	SetEpochWindow(100)
	defer resetWindow()
	p := NewProfiler("twophase")
	drivePhased(p, 16, 100)
	prof := p.Finalize()
	if prof.TotalEpochs != 16 {
		t.Fatalf("TotalEpochs = %d, want 16", prof.TotalEpochs)
	}
	if len(prof.Phases) != 2 {
		t.Fatalf("phases = %d (%+v), want 2", len(prof.Phases), prof.Phases)
	}
	want := []int{0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1}
	if !reflect.DeepEqual(prof.Timeline, want) {
		t.Fatalf("timeline = %v, want %v", prof.Timeline, want)
	}
	for _, ph := range prof.Phases {
		if ph.Epochs != 8 || ph.Occupancy != 0.5 {
			t.Fatalf("phase %+v, want 8 epochs at 0.5 occupancy", ph)
		}
	}
	// Epochs within a phase are identical, so the medoid projection must
	// reproduce the whole-run rates exactly.
	pr := prof.Projection
	if !pr.HasSim {
		t.Fatal("live profile must carry HasSim")
	}
	if pr.MPKIErr > 1e-12 || pr.CoverageErr > 1e-12 || pr.MeanRelErrErr > 1e-12 {
		t.Fatalf("projection of an ideal two-phase stream must be exact: %+v", pr)
	}
	if !pr.Representative {
		t.Fatalf("ideal stream not judged representative: %+v", pr)
	}
	if pr.ActualCoverage != 0.5 {
		t.Fatalf("ActualCoverage = %v, want 0.5 (phase B covered, phase A not)", pr.ActualCoverage)
	}
}

func TestUniformStreamIsOnePhase(t *testing.T) {
	SetEpochWindow(100)
	defer resetWindow()
	p := NewProfiler("uniform")
	insts := uint64(0)
	for i := 0; i < 800; i++ {
		insts += 2
		p.Load(uint64(0x400+i%5*4), uint64(0x100000+i%64*8), insts)
		if i%8 == 0 {
			p.Miss(true)
			p.Train(0.05)
		}
	}
	prof := p.Finalize()
	if len(prof.Phases) != 1 {
		t.Fatalf("uniform stream split into %d phases: %+v", len(prof.Phases), prof.Phases)
	}
	if !prof.Projection.Representative {
		t.Fatalf("single-phase run must be representative: %+v", prof.Projection)
	}
}

func TestOfflineProfileHasNoSim(t *testing.T) {
	SetEpochWindow(50)
	defer resetWindow()
	p := NewStreamProfiler("stream")
	for i := 0; i < 200; i++ {
		p.Load(uint64(0x400+i%4*4), uint64(0x2000+i*8), uint64(i*2))
	}
	prof := p.Finalize()
	if prof.Projection.HasSim {
		t.Fatal("stream profile must not claim simulation rates")
	}
	if prof.Projection.Representative {
		t.Fatal("offline profile has nothing to project; must not claim representativeness")
	}
	if len(prof.Phases) == 0 {
		t.Fatal("offline profile still clusters on access vectors")
	}
}

func TestWildTrainingErrorsExcluded(t *testing.T) {
	SetEpochWindow(10)
	defer resetWindow()
	p := NewProfiler("wild")
	for i := 0; i < 9; i++ {
		p.Load(0x40, uint64(i*8), uint64(i))
	}
	p.Train(0.2)
	p.Train(math.Inf(1))
	p.Train(math.NaN())
	prof := p.Finalize()
	if got := prof.Projection.ActualMeanRelErr; got != 0.2 {
		t.Fatalf("ActualMeanRelErr = %v, want 0.2 (wild errors excluded)", got)
	}
	if len(prof.Phases) != 1 || prof.Phases[0].MeanRelErr != 0.2 {
		t.Fatalf("medoid MeanRelErr = %+v, want 0.2", prof.Phases)
	}
}

func TestIdenticalStreamsFinalizeIdentically(t *testing.T) {
	SetEpochWindow(60)
	defer resetWindow()
	run := func() ScopeProfile {
		p := NewProfiler("det")
		drivePhased(p, 12, 60)
		return p.Finalize()
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("identical event streams must finalize identically")
	}
}

func TestDistanceProperties(t *testing.T) {
	SetEpochWindow(100)
	defer resetWindow()
	p := NewProfiler("d")
	drivePhased(p, 8, 100)
	prof := p.Finalize()
	_ = prof
	// Rebuild features directly from a fresh profiler's ring via cluster's
	// helpers: identity and symmetry of the distance.
	p2 := NewProfiler("d2")
	drivePhased(p2, 8, 100)
	p2.Finalize()
	a := featureOf(&p2.ring[0])
	b := featureOf(&p2.ring[4])
	sc := scalarScale{mpki: 10, merr: 1}
	if d := distance(&a, &a, sc, true); d != 0 {
		t.Fatalf("distance(a,a) = %v, want 0", d)
	}
	dab := distance(&a, &b, sc, true)
	dba := distance(&b, &a, sc, true)
	if dab != dba {
		t.Fatalf("distance not symmetric: %v vs %v", dab, dba)
	}
	if dab <= 0 || dab > 1 {
		t.Fatalf("distance(a,b) = %v, want in (0,1]", dab)
	}
}

func TestClusterThresholdConfigurable(t *testing.T) {
	defer SetClusterThreshold(0)
	SetClusterThreshold(2) // beyond any possible distance: everything is one phase
	SetEpochWindow(100)
	defer resetWindow()
	p := NewProfiler("coarse")
	drivePhased(p, 16, 100)
	if prof := p.Finalize(); len(prof.Phases) != 1 {
		t.Fatalf("threshold 2 must collapse all epochs into one phase, got %d", len(prof.Phases))
	}
	SetClusterThreshold(0)
	if ClusterThreshold() != defaultThreshold {
		t.Fatalf("ClusterThreshold() = %v after reset, want default %v", ClusterThreshold(), defaultThreshold)
	}
}

func TestMaxPhasesCap(t *testing.T) {
	SetEpochWindow(10)
	defer resetWindow()
	p := NewProfiler("cap")
	// Every epoch hits a different code+data region: far more distinct
	// fingerprints than maxPhases.
	insts := uint64(0)
	for e := 0; e < 3*maxPhases; e++ {
		for i := 0; i < 10; i++ {
			insts += 2
			p.Load(uint64(0x1000*e+i*4), uint64(0x100000*uint64(e+1)+uint64(i)*8), insts)
		}
	}
	prof := p.Finalize()
	if len(prof.Phases) > maxPhases {
		t.Fatalf("phases = %d, want <= %d", len(prof.Phases), maxPhases)
	}
}

func TestPublishSnapshotRoundtrip(t *testing.T) {
	Reset()
	defer Reset()
	SetEpochWindow(50)
	defer resetWindow()
	mk := func() *Profiler {
		p := NewProfiler("bench/lva/cafe")
		drivePhased(p, 4, 50)
		return p
	}
	Publish(mk())
	Publish(mk()) // replace-semantics: republishing the same scope is idempotent

	snap := TakeSnapshot()
	if len(snap.Scopes) != 1 {
		t.Fatalf("scopes = %d, want 1 (publish must replace per scope)", len(snap.Scopes))
	}
	b, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatal("snapshot JSON roundtrip not identical")
	}
	Reset()
	if n := len(TakeSnapshot().Scopes); n != 0 {
		t.Fatalf("Reset left %d scopes", n)
	}
}

func TestSnapshotSortedByScope(t *testing.T) {
	Reset()
	defer Reset()
	for _, scope := range []string{"zeta/lva/1", "alpha/lva/2", "mid/lvp/3"} {
		p := NewProfiler(scope)
		p.Load(0x40, 0x1000, 1)
		Publish(p)
	}
	snap := TakeSnapshot()
	if len(snap.Scopes) != 3 {
		t.Fatalf("scopes = %d, want 3", len(snap.Scopes))
	}
	for i := 1; i < len(snap.Scopes); i++ {
		if snap.Scopes[i-1].Scope >= snap.Scopes[i].Scope {
			t.Fatalf("scopes not sorted: %q before %q", snap.Scopes[i-1].Scope, snap.Scopes[i].Scope)
		}
	}
}

// TestConcurrentPublishSnapshot pins the registry's locking the same way
// the attr registry test does: the harness publishes one profile per
// finished run from whichever scheduler goroutine ran it, concurrently
// with snapshot readers. Run under -race (ci.sh does) this is the
// registry's race gate.
func TestConcurrentPublishSnapshot(t *testing.T) {
	Reset()
	defer Reset()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p := NewProfiler("bench/lva/" + strconv.Itoa(g))
				p.Load(uint64(0x400+g), uint64(0x1000+i*8), uint64(i))
				Publish(p)
				if len(TakeSnapshot().Scopes) == 0 {
					t.Error("snapshot empty while publishing")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := len(TakeSnapshot().Scopes); n != 8 {
		t.Fatalf("scopes = %d, want 8 (one per goroutine, republication idempotent)", n)
	}
}
