// Package suppressed_stale exercises the suppression-hygiene rules: a
// suppression naming an analyzer that reports nothing on its line is
// stale, and a suppression naming an analyzer that does not exist is a
// silent no-op in disguise; both must be findings.
package suppressed_stale

// Stale documents a suppression that outlived the code it excused.
func Stale(xs []int) int {
	//lint:ignore seedrand the random fallback this excused was removed long ago
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Typo documents a suppression whose analyzer name matches nothing.
func Typo(a, b int) int {
	//lint:ignore sedrand transposed letters make this suppress nothing
	if a > b {
		return a
	}
	return b
}
