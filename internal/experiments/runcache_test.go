package experiments

import (
	"reflect"
	"testing"

	"lva/internal/workloads"
)

// TestRunCacheSingleflight checks that repeated Run* calls with the same
// fingerprint simulate once and hit thereafter.
func TestRunCacheSingleflight(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()

	w := workloads.NewSwaptions()
	cfg := BaselineFor(w)
	first := RunLVA(w, cfg, DefaultSeed)
	s := RunCacheCounters()
	if s.Simulated != 1 || s.Hits != 0 {
		t.Fatalf("after first run: got %+v, want 1 simulated, 0 hits", s)
	}
	second := RunLVA(w, cfg, DefaultSeed)
	s = RunCacheCounters()
	if s.Simulated != 1 || s.Hits != 1 {
		t.Fatalf("after second run: got %+v, want 1 simulated, 1 hit", s)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cache hit returned a different result:\nfirst:  %+v\nsecond: %+v", first, second)
	}

	// A different configuration is a different fingerprint.
	cfg.GHBSize = 2
	RunLVA(w, cfg, DefaultSeed)
	if s = RunCacheCounters(); s.Simulated != 2 {
		t.Fatalf("distinct config should simulate again: %+v", s)
	}
}

// TestRunCacheKeysDistinguishAttachModes guards the fingerprint: the same
// workload/config/seed must not collide across attach modes.
func TestRunCacheKeysDistinguishAttachModes(t *testing.T) {
	w := workloads.NewSwaptions()
	keys := map[string]bool{
		runKey("precise", w, "", DefaultSeed):     true,
		runKey("lva", w, "cfg", DefaultSeed):      true,
		runKey("lvp", w, "cfg", DefaultSeed):      true,
		runKey("prefetch", w, "cfg", DefaultSeed): true,
		runKey("lva", w, "cfg", DefaultSeed+1):    true,
	}
	if len(keys) != 5 {
		t.Fatalf("fingerprints collide: %d distinct keys, want 5", len(keys))
	}
}

// TestRunCacheBypassIdentical checks that a figure computed through the
// cache is byte-identical to one computed with the cache disabled.
func TestRunCacheBypassIdentical(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()

	cached := Fig13().String()

	SetRunCacheEnabled(false)
	defer SetRunCacheEnabled(true)
	bypassed := Fig13().String()

	if cached != bypassed {
		t.Fatalf("cached and bypassed figures differ:\ncached:\n%s\nbypassed:\n%s", cached, bypassed)
	}
}

// TestRegistryDeterministicAcrossParallelismAndCache is the end-to-end
// guarantee of the run cache + scheduler: every registry figure renders
// byte-identically whether design points are simulated cold or served from
// the cache, and whether one or many simulations are in flight.
func TestRegistryDeterministicAcrossParallelismAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full registry three times")
	}
	if raceEnabled {
		t.Skip("three full-registry regenerations exceed the race detector's time budget; the lighter cache/scheduler tests run race-instrumented")
	}
	saved := Parallelism
	defer func() { Parallelism = saved; ResetRunCache() }()
	// The dedup bound measures the run cache itself, so run with the trace
	// store out of the way: replay serves grid points without Run* calls,
	// which would deflate both Hits and Simulated. (Replay-on determinism
	// is covered by TestFigureGoldenHashes and the replay_test.go suite.)
	SetReplayEnabled(false)
	defer SetReplayEnabled(true)

	render := func(figs []*Figure) map[string]string {
		out := make(map[string]string, len(figs))
		for _, f := range figs {
			out[f.ID] = f.String()
		}
		return out
	}

	Parallelism = 8
	ResetRunCache()
	figs, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	cold := render(figs)
	stats := RunCacheCounters()
	if got := stats.DedupFraction(); got < 0.30 {
		t.Errorf("run cache avoided only %.1f%% of kernel simulations, want >= 30%% (%+v)", 100*got, stats)
	}

	// Warm pass: everything must come from the cache and render identically.
	figs, err = RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range render(figs) {
		if s != cold[id] {
			t.Errorf("%s: warm (cache-hit) rendering differs from cold run:\ncold:\n%s\nwarm:\n%s", id, cold[id], s)
		}
	}
	warmStats := RunCacheCounters()
	if warmStats.Simulated != stats.Simulated {
		t.Errorf("warm pass simulated %d new kernels, want 0", warmStats.Simulated-stats.Simulated)
	}

	// Serial pass: Parallelism=1, cold cache.
	Parallelism = 1
	ResetRunCache()
	figs, err = RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for id, s := range render(figs) {
		if s != cold[id] {
			t.Errorf("%s: Parallelism=1 rendering differs from Parallelism=8:\nP=8:\n%s\nP=1:\n%s", id, cold[id], s)
		}
	}
}

// TestRunAllUnknownID checks RunAll validates ids before running anything.
func TestRunAllUnknownID(t *testing.T) {
	if _, err := RunAll("fig99"); err == nil {
		t.Fatal("RunAll(fig99) should fail")
	}
}
