package energy

import (
	"math"
	"testing"
)

func TestTotalPJ(t *testing.T) {
	m := Model{L1Access: 1, L2Access: 10, DRAMAccess: 100, FlitHop: 0.5, ApproxAccess: 2}
	tl := NewTally(m)
	tl.L1Accesses = 4
	tl.L2Accesses = 3
	tl.DRAMAccesses = 2
	tl.FlitHops = 10
	tl.ApproxAccesses = 5
	want := 4*1.0 + 3*10 + 2*100 + 10*0.5 + 5*2
	if got := tl.TotalPJ(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("TotalPJ = %v, want %v", got, want)
	}
}

func TestFetchPathExcludesL1AndApproximator(t *testing.T) {
	m := Model{L1Access: 1000, L2Access: 1, DRAMAccess: 1, FlitHop: 1, ApproxAccess: 1000}
	tl := NewTally(m)
	tl.L1Accesses = 7
	tl.ApproxAccesses = 7
	tl.L2Accesses = 1
	tl.DRAMAccesses = 1
	tl.FlitHops = 1
	if got := tl.FetchPathPJ(); got != 3 {
		t.Fatalf("FetchPathPJ = %v, want 3 (L1/approximator excluded)", got)
	}
}

func TestDefault32nmOrdering(t *testing.T) {
	m := Default32nm()
	// Sanity: the hierarchy's energy ordering must hold (L1 < L2 << DRAM)
	// and the approximator must be cheap SRAM-scale.
	if !(m.L1Access < m.L2Access && m.L2Access < m.DRAMAccess) {
		t.Fatalf("energy ordering broken: %+v", m)
	}
	if m.ApproxAccess >= m.L2Access {
		t.Fatalf("approximator must be cheaper than an L2 access: %+v", m)
	}
	if m.FlitHop <= 0 {
		t.Fatal("flit-hop energy must be positive")
	}
}

func TestZeroTally(t *testing.T) {
	tl := NewTally(Default32nm())
	if tl.TotalPJ() != 0 || tl.FetchPathPJ() != 0 {
		t.Fatal("empty tally must be zero energy")
	}
}
