// Vision: the paper's Figure 1 — run the bodytrack kernel precisely and
// under load value approximation, then render the camera view with the
// estimated body positions overlaid, one PGM image per configuration.
// The two outputs should be nearly indiscernible.
//
//	go run ./examples/vision [-out DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lva"
	"lva/internal/workloads"
)

const seed = 42

func main() {
	outDir := flag.String("out", ".", "directory for the rendered PGM images")
	flag.Parse()

	w := lva.NewBodytrack()

	pcfg := lva.DefaultSimConfig()
	pcfg.Attach = lva.AttachNone
	psim := lva.NewSimulator(pcfg)
	preciseOut := w.Run(psim, seed).(lva.BodytrackOutput)

	acfg := lva.DefaultSimConfig()
	asim := lva.NewSimulator(acfg)
	approxOut := w.Run(asim, seed).(lva.BodytrackOutput)
	res := asim.Result()

	fmt.Printf("bodytrack: %d frames tracked, LVA coverage %.1f%%\n",
		len(approxOut.Trajectory), res.Coverage()*100)
	fmt.Printf("trajectory deviation (output error): %.2f%% of image diagonal\n",
		approxOut.Error(preciseOut)*100)
	for i := range preciseOut.Trajectory {
		p, a := preciseOut.Trajectory[i], approxOut.Trajectory[i]
		fmt.Printf("  frame %d: precise (%6.2f,%6.2f)  approx (%6.2f,%6.2f)\n",
			i, p.X, p.Y, a.X, a.Y)
	}

	// Render the final frame from camera 0 with the trajectory overlaid.
	lastFrame := len(preciseOut.Trajectory) - 1
	rng := workloads.NewRNG(seed ^ uint64(lastFrame+1)*0x9E37)
	img := workloads.SynthFrame(rng, w.Width, w.Height, 0, lastFrame)

	if err := writeOverlay(filepath.Join(*outDir, "bodytrack_precise.pgm"), img, w.Width, w.Height, preciseOut.Trajectory); err != nil {
		log.Fatal(err)
	}
	if err := writeOverlay(filepath.Join(*outDir, "bodytrack_approx.pgm"), img, w.Width, w.Height, approxOut.Trajectory); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s and %s\n",
		filepath.Join(*outDir, "bodytrack_precise.pgm"),
		filepath.Join(*outDir, "bodytrack_approx.pgm"))
}

// writeOverlay writes a binary PGM of the frame with crosses marking the
// estimated positions (brightest at the most recent frame).
func writeOverlay(path string, img []int32, w, h int, traj []lva.Vec2) error {
	pix := make([]byte, len(img))
	for i, v := range img {
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		pix[i] = byte(v)
	}
	for i, p := range traj {
		shade := byte(120 + 135*i/len(traj))
		drawCross(pix, w, h, int(p.X), int(p.Y), 6, shade)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P5\n%d %d\n255\n", w, h); err != nil {
		return err
	}
	_, err = f.Write(pix)
	return err
}

func drawCross(pix []byte, w, h, cx, cy, r int, shade byte) {
	for d := -r; d <= r; d++ {
		if x := cx + d; x >= 0 && x < w && cy >= 0 && cy < h {
			pix[cy*w+x] = shade
		}
		if y := cy + d; y >= 0 && y < h && cx >= 0 && cx < w {
			pix[y*w+cx] = shade
		}
	}
}
