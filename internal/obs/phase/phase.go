// Package phase is the phase observatory: per-epoch memory-access-vector
// fingerprints of the annotated load stream, clustered at snapshot time
// into program phases with a medoid (representative) interval per phase.
// Where internal/obs/attr answers *which sites* cause approximation error
// and *when* the approximator drifts, phase answers *how repetitive* a run
// is — the prerequisite for sampled simulation: if a handful of medoid
// intervals projects the whole-run MPKI/coverage/error within a small
// error, simulating only those intervals is sound.
//
// The wiring follows the same zero-overhead-when-off convention as the
// obs/attr seams: a Profiler is attached to a simulator only when
// SetEnabled(true) ran before the run was wired, the hot structs hold a
// nil-able pointer, and the per-access hooks are a single nil check when
// profiling is off. Only annotated loads and their miss/training machinery
// report here — the plain load-hit path is never touched. A Profiler
// belongs to exactly one single-threaded simulation (or one offline stream
// decode), so the hot methods take no locks, allocate nothing after
// construction, and the float accumulators are deterministic.
//
// This package sits on the simulator hot path, so the lvalint obshooks and
// hotpath analyzers apply: no time.Now, no fmt anywhere in the package, no
// package-level mutation, no interface-typed parameters in the per-access
// methods.
package phase

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// enabled gates phase profiling the same way attr.SetEnabled gates the
// flight recorder: it is consulted when a run is wired up, not per access.
var enabled atomic.Bool

// SetEnabled turns phase profiling on or off for subsequently wired runs.
// Off by default so the simulator hot paths carry zero cost.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether phase profiling is enabled.
func Enabled() bool { return enabled.Load() }

// DefaultEpochWindow is the fingerprint interval length in annotated loads
// when no window was configured. It matches attr.DefaultEpochWindow so the
// two observability time-series line up epoch for epoch.
const DefaultEpochWindow = 50000

// epochRingCap bounds the per-run epoch ring; when a run exceeds it the
// oldest epochs are dropped (the profile reports how many).
const epochRingCap = 512

// epochWindow holds the configured window: 0 = unset (DefaultEpochWindow),
// negative = profiling effectively disabled (no epochs, no phases).
var epochWindow atomic.Int64

// SetEpochWindow configures the fingerprint interval length in annotated
// loads for Profilers created afterwards. n <= 0 disables the epoch
// time-series, which leaves nothing to cluster.
func SetEpochWindow(n int) {
	if n <= 0 {
		epochWindow.Store(-1)
		return
	}
	epochWindow.Store(int64(n))
}

// EpochWindow returns the effective epoch window (0 when disabled).
func EpochWindow() int {
	v := epochWindow.Load()
	if v == 0 {
		return DefaultEpochWindow
	}
	if v < 0 {
		return 0
	}
	return int(v)
}

// Fingerprint histogram sizes. The vector is deliberately tiny — the hot
// hooks only increment fixed-size counters; everything derived (normalized
// proportions, distances, clusters) happens at snapshot time.
const (
	// PCBuckets is the PC-set sketch width: each annotated load's PC is
	// Fibonacci-hashed into one of these buckets, so the sketch separates
	// code regions without tracking individual sites.
	PCBuckets = 32
	// RegionBuckets is the address-region sketch width over 4 KiB pages.
	RegionBuckets = 32
	// StrideBuckets is the stride histogram width: bucket 0 holds repeated
	// addresses, bucket k holds strides with log2 magnitude k (capped).
	StrideBuckets = 16
	// regionShift folds addresses to 4 KiB regions before hashing.
	regionShift = 12
)

// Fingerprint is the memory-access vector of one epoch: three small
// histograms over the epoch's annotated loads.
type Fingerprint struct {
	PC     [PCBuckets]uint32
	Region [RegionBuckets]uint32
	Stride [StrideBuckets]uint32
}

// Epoch is one fingerprint interval: the access-vector histograms plus the
// raw per-epoch counters the projection is computed from. Derived rates
// (MPKI, coverage, mean error) are computed at snapshot time.
type Epoch struct {
	Index   int    // 0-based epoch number within the run
	Loads   uint64 // annotated loads (== the window, except a final partial epoch)
	Insts   uint64 // instructions elapsed during the epoch
	Misses  uint64 // annotated-load L1 misses
	Covered uint64 // misses satisfied by an approximation
	Judged  uint64 // training commits with a finite relative error
	Wild    uint64 // training commits with an undefined error (actual 0, NaN)
	ErrSum  float64
	FP      Fingerprint
}

// Profiler collects the phase fingerprints of one simulation run or one
// offline stream decode. It belongs to exactly one producer and is not
// safe for concurrent use; publish its Finalize result to the process-wide
// registry (PublishProfile) once the run has drained.
type Profiler struct {
	scope  string
	hasSim bool // live simulation (miss/training counters flow) vs offline stream

	window          uint64 // epoch length in annotated loads; 0 = profiling off
	epoch           Epoch  // accumulator for the current epoch
	epochStartInsts uint64
	lastInsts       uint64
	prevAddr        uint64
	havePrev        bool
	ring            []Epoch // last epochRingCap sealed epochs
	ringStart       int     // index of the oldest sealed epoch in ring
	ringLen         int
	totalEpochs     int
}

// NewProfiler builds a profiler for one live simulation run. scope names
// the run in the published snapshot (the experiment harness uses
// bench/attach/confighash). The epoch window is captured from
// SetEpochWindow at construction.
func NewProfiler(scope string) *Profiler {
	p := &Profiler{scope: scope, hasSim: true, window: uint64(EpochWindow())}
	if p.window > 0 {
		p.ring = make([]Epoch, 0, epochRingCap)
	}
	return p
}

// NewStreamProfiler builds a profiler for an offline decode of a recorded
// access stream: only Load is fed, so the profile clusters on the access
// vectors alone and carries no MPKI/coverage projection.
func NewStreamProfiler(scope string) *Profiler {
	p := NewProfiler(scope)
	p.hasSim = false
	return p
}

// Scope returns the run label the profiler was created with.
func (p *Profiler) Scope() string { return p.scope }

// pcSlot Fibonacci-hashes a PC into the PC sketch: synthetic PCs differ
// only in a few low bits, so plain masking would collide them.
func pcSlot(pc uint64) uint64 {
	return (pc * 0x9E3779B97F4A7C15) >> (64 - 5) // 2^5 = PCBuckets
}

// regionSlot hashes the 4 KiB region of an address into the region sketch.
func regionSlot(addr uint64) uint64 {
	return ((addr >> regionShift) * 0x9E3779B97F4A7C15) >> (64 - 5) // 2^5 = RegionBuckets
}

// strideSlot buckets the delta from the previous annotated load's address
// by log2 magnitude: 0 = same address, k = |delta| in [2^(k-1), 2^k),
// capped at the last bucket.
func strideSlot(delta int64) int {
	if delta < 0 {
		delta = -delta
	}
	b := bits.Len64(uint64(delta))
	if b >= StrideBuckets {
		b = StrideBuckets - 1
	}
	return b
}

// Load records one annotated load from pc to addr; insts is the producer's
// running instruction count, used to delimit epochs. Hot path: three
// histogram increments plus a window compare.
func (p *Profiler) Load(pc, addr, insts uint64) {
	p.lastInsts = insts
	if p.window == 0 {
		return
	}
	e := &p.epoch
	e.Loads++
	e.FP.PC[pcSlot(pc)]++
	e.FP.Region[regionSlot(addr)]++
	if p.havePrev {
		e.FP.Stride[strideSlot(int64(addr-p.prevAddr))]++
	}
	p.prevAddr, p.havePrev = addr, true
	if e.Loads >= p.window {
		p.sealEpoch(insts)
	}
}

// Miss records the outcome of one annotated-load L1 miss: whether it was
// covered by an approximation.
func (p *Profiler) Miss(covered bool) {
	if p.window == 0 {
		return
	}
	p.epoch.Misses++
	if covered {
		p.epoch.Covered++
	}
}

// Train records the relative error of one judged training commit (an
// approximation existed and was compared against the actual value). A
// non-finite relErr — RelDiff against an actual value of zero is +Inf —
// counts as a wild error and stays out of the sums so per-epoch means and
// the projection remain finite.
func (p *Profiler) Train(relErr float64) {
	if p.window == 0 {
		return
	}
	if math.IsInf(relErr, 0) || math.IsNaN(relErr) {
		p.epoch.Wild++
		return
	}
	p.epoch.Judged++
	p.epoch.ErrSum += relErr
}

// sealEpoch closes the current epoch at instruction count insts and pushes
// it onto the ring, dropping the oldest epoch when full.
func (p *Profiler) sealEpoch(insts uint64) {
	e := p.epoch
	e.Index = p.totalEpochs
	e.Insts = insts - p.epochStartInsts
	p.totalEpochs++
	if len(p.ring) < cap(p.ring) {
		p.ring = append(p.ring, e)
		p.ringLen = len(p.ring)
	} else {
		p.ring[p.ringStart] = e
		p.ringStart = (p.ringStart + 1) % len(p.ring)
	}
	p.epochStartInsts = insts
	p.epoch = Epoch{}
}

// TotalEpochs returns how many epochs have been sealed so far.
func (p *Profiler) TotalEpochs() int { return p.totalEpochs }
