package phase

import (
	"encoding/json"
	"errors"
	"sort"
	"sync"
)

// PhaseStats is one detected phase: how much of the run it occupies and
// the rates of its medoid (representative) interval.
type PhaseStats struct {
	ID          int     `json:"id"`
	Epochs      int     `json:"epochs"`
	Occupancy   float64 `json:"occupancy"`    // fraction of retained epochs
	MedoidEpoch int     `json:"medoid_epoch"` // run-level epoch index of the representative interval
	Loads       uint64  `json:"loads"`
	Insts       uint64  `json:"insts"`
	// Medoid-interval rates; zero for offline stream profiles.
	MPKI       float64 `json:"mpki"`
	Coverage   float64 `json:"coverage"`
	MeanRelErr float64 `json:"mean_rel_error"`
}

// Projection compares the whole run's counters against the projection
// from the weighted medoid intervals: each phase contributes its medoid's
// rates weighted by the phase's share of instructions (MPKI), misses
// (coverage) and judged trainings (mean error). Small errors mean the
// medoids are faithful stand-ins — the sampled-simulation soundness
// criterion.
type Projection struct {
	HasSim              bool    `json:"has_sim"` // false for offline stream profiles (no rates to project)
	ActualMPKI          float64 `json:"actual_mpki"`
	ProjectedMPKI       float64 `json:"projected_mpki"`
	MPKIErr             float64 `json:"mpki_rel_error"`
	ActualCoverage      float64 `json:"actual_coverage"`
	ProjectedCoverage   float64 `json:"projected_coverage"`
	CoverageErr         float64 `json:"coverage_abs_error"`
	ActualMeanRelErr    float64 `json:"actual_mean_rel_error"`
	ProjectedMeanRelErr float64 `json:"projected_mean_rel_error"`
	MeanRelErrErr       float64 `json:"mean_rel_error_rel_error"`
	Representative      bool    `json:"representative"`
}

// Representativeness verdict thresholds: the medoid projection must land
// within 5% relative on MPKI and mean error and within 2 points absolute
// on coverage for the run to count as representable by its medoids.
const (
	maxMPKIProjErr     = 0.05
	maxCoverageProjErr = 0.02
	maxMeanErrProjErr  = 0.05
)

// ScopeProfile is the published phase profile of one run. Totals and the
// projection cover the retained epochs only (DroppedEpochs reports how
// many fell off the ring), so actual and projected sides always describe
// the same interval set.
type ScopeProfile struct {
	Scope         string       `json:"scope"`
	EpochWindow   int          `json:"epoch_window"`
	TotalEpochs   int          `json:"total_epochs"`
	DroppedEpochs int          `json:"dropped_epochs"`
	Loads         uint64       `json:"loads"`
	Insts         uint64       `json:"insts"`
	Phases        []PhaseStats `json:"phases,omitempty"`
	// Timeline is the phase-occupancy timeline: the phase id of each
	// retained epoch in time order.
	Timeline   []int      `json:"timeline,omitempty"`
	Projection Projection `json:"projection"`
}

// Snapshot is a frozen, scope-sorted view of every published profile.
type Snapshot struct {
	Scopes []ScopeProfile `json:"scopes"`
}

// relErrOf is the guarded relative error |proj-actual|/|actual|: an actual
// of zero projects exactly (error 0) or not at all (error 1).
func relErrOf(actual, proj float64) float64 {
	if actual == 0 {
		if proj == 0 {
			return 0
		}
		return 1
	}
	d := (proj - actual) / actual
	if d < 0 {
		d = -d
	}
	return d
}

// project computes the weighted-medoid projection over the retained
// epochs. Weights are per-phase resource shares, so a medoid's rate is
// scaled by how much of the run its phase covers.
func project(epochs []Epoch, assign, medoids []int) Projection {
	var pr Projection
	pr.HasSim = true

	type phaseTotals struct{ insts, misses, judged uint64 }
	totals := make([]phaseTotals, len(medoids))
	var insts, misses, covered, judged uint64
	var errSum float64
	for i := range epochs {
		e := &epochs[i]
		insts += e.Insts
		misses += e.Misses
		covered += e.Covered
		judged += e.Judged
		errSum += e.ErrSum
		t := &totals[assign[i]]
		t.insts += e.Insts
		t.misses += e.Misses
		t.judged += e.Judged
	}
	if insts > 0 {
		pr.ActualMPKI = float64(misses) * 1000 / float64(insts)
	}
	if misses > 0 {
		pr.ActualCoverage = float64(covered) / float64(misses)
	}
	if judged > 0 {
		pr.ActualMeanRelErr = errSum / float64(judged)
	}

	var projMisses, projCovered, projErrSum float64
	for c, m := range medoids {
		mpki, cov, merr := epochRates(&epochs[m])
		projMisses += mpki / 1000 * float64(totals[c].insts)
		projCovered += cov * float64(totals[c].misses)
		projErrSum += merr * float64(totals[c].judged)
	}
	if insts > 0 {
		pr.ProjectedMPKI = projMisses * 1000 / float64(insts)
	}
	if misses > 0 {
		pr.ProjectedCoverage = projCovered / float64(misses)
	}
	if judged > 0 {
		pr.ProjectedMeanRelErr = projErrSum / float64(judged)
	}
	pr.MPKIErr = relErrOf(pr.ActualMPKI, pr.ProjectedMPKI)
	pr.CoverageErr = pr.ProjectedCoverage - pr.ActualCoverage
	if pr.CoverageErr < 0 {
		pr.CoverageErr = -pr.CoverageErr
	}
	pr.MeanRelErrErr = relErrOf(pr.ActualMeanRelErr, pr.ProjectedMeanRelErr)
	pr.Representative = pr.MPKIErr <= maxMPKIProjErr &&
		pr.CoverageErr <= maxCoverageProjErr &&
		pr.MeanRelErrErr <= maxMeanErrProjErr
	return pr
}

// Finalize seals any partial epoch, clusters the retained epochs into
// phases and freezes the profiler into its exported form. The result is
// deterministic for a deterministic event stream regardless of scheduling:
// epochs are visited in time order and every tie-break is index-ordered.
func (p *Profiler) Finalize() ScopeProfile {
	if p.window > 0 && p.epoch.Loads > 0 {
		p.sealEpoch(p.lastInsts)
	}
	out := ScopeProfile{
		Scope:         p.scope,
		EpochWindow:   int(p.window),
		TotalEpochs:   p.totalEpochs,
		DroppedEpochs: p.totalEpochs - p.ringLen,
	}
	out.Projection.HasSim = p.hasSim
	if p.ringLen == 0 {
		return out
	}
	epochs := make([]Epoch, 0, p.ringLen)
	for i := 0; i < p.ringLen; i++ {
		epochs = append(epochs, p.ring[(p.ringStart+i)%len(p.ring)])
	}
	for i := range epochs {
		out.Loads += epochs[i].Loads
		out.Insts += epochs[i].Insts
	}

	assign, medoids := cluster(epochs, p.hasSim)
	out.Timeline = assign
	out.Phases = make([]PhaseStats, len(medoids))
	inv := 1 / float64(len(epochs))
	for c, m := range medoids {
		ps := &out.Phases[c]
		ps.ID = c
		ps.MedoidEpoch = epochs[m].Index
		ps.MPKI, ps.Coverage, ps.MeanRelErr = epochRates(&epochs[m])
	}
	for i, c := range assign {
		ps := &out.Phases[c]
		ps.Epochs++
		ps.Loads += epochs[i].Loads
		ps.Insts += epochs[i].Insts
	}
	for c := range out.Phases {
		out.Phases[c].Occupancy = float64(out.Phases[c].Epochs) * inv
	}
	if p.hasSim {
		out.Projection = project(epochs, assign, medoids)
	}
	return out
}

// registry is the process-wide store of published phase profiles.
type registry struct {
	mu     sync.Mutex
	scopes map[string]ScopeProfile
}

// reg lazily builds the registry exactly once (the sync.OnceValue accessor
// keeps every mutation behind a local, per the obshooks global-mutation
// rule).
var reg = sync.OnceValue(func() *registry {
	return &registry{scopes: make(map[string]ScopeProfile)}
})

// PublishProfile stores a finalized profile under its scope, replacing any
// prior publication of the same scope. Runs are deterministic functions of
// their scope fingerprint, so republication (e.g. with the run cache
// disabled) is idempotent. The profile is published rather than the
// profiler so callers can also render it (timeline spans, reports) without
// finalizing twice.
func PublishProfile(s ScopeProfile) {
	g := reg()
	g.mu.Lock()
	g.scopes[s.Scope] = s
	g.mu.Unlock()
}

// Publish finalizes p and publishes the result.
func Publish(p *Profiler) { PublishProfile(p.Finalize()) }

// Reset drops every published profile (for tests).
func Reset() {
	g := reg()
	g.mu.Lock()
	g.scopes = make(map[string]ScopeProfile)
	g.mu.Unlock()
}

// TakeSnapshot returns the published profiles sorted by scope —
// byte-stable across runs and Parallelism levels for a deterministic
// experiment set.
func TakeSnapshot() Snapshot {
	g := reg()
	g.mu.Lock()
	out := Snapshot{Scopes: make([]ScopeProfile, 0, len(g.scopes))}
	for _, s := range g.scopes {
		out.Scopes = append(out.Scopes, s)
	}
	g.mu.Unlock()
	sort.Slice(out.Scopes, func(i, j int) bool { return out.Scopes[i].Scope < out.Scopes[j].Scope })
	return out
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseSnapshot decodes a snapshot written by JSON.
func ParseSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, errors.Join(errors.New("phase: invalid snapshot"), err)
	}
	return s, nil
}
