//go:build !race

package experiments

// raceEnabled reports whether the binary was built with the race detector
// (see race_on.go). The full-registry determinism test consults it: three
// registry regenerations exceed the race-instrumented time budget, and the
// scheduler/cache interleavings it would exercise are already covered by
// the lighter concurrent tests.
const raceEnabled = false
