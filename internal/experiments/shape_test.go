package experiments

import (
	"testing"
)

// Shape tests: run the main experiment drivers end to end and assert the
// qualitative claims the paper makes (and EXPERIMENTS.md records). These
// are the repository's regression net for "does the reproduction still
// reproduce" — each takes seconds, so they are skipped under -short.

func shortSkip(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full workload runs")
	}
}

func TestTable1Shape(t *testing.T) {
	shortSkip(t)
	f := Table1()
	mpki, _ := f.Row("precise L1 MPKI")
	// Calibration bands around the paper's Table I values.
	paper := map[string]struct{ lo, hi float64 }{
		"blackscholes": {0.7, 1.2},
		"bodytrack":    {3.9, 6.5},
		"canneal":      {10.0, 15.0},
		"ferret":       {2.6, 4.1},
		"fluidanimate": {0.9, 1.6},
		"swaptions":    {0.0, 0.05},
		"x264":         {0.4, 0.85},
	}
	for i, bench := range f.Benchmarks {
		band := paper[bench]
		if mpki.Values[i] < band.lo || mpki.Values[i] > band.hi {
			t.Errorf("%s precise MPKI %.3f outside calibration band [%.2f, %.2f]",
				bench, mpki.Values[i], band.lo, band.hi)
		}
	}
	vari, _ := f.Row("inst count variation %")
	for i, v := range vari.Values {
		if v > 3 {
			t.Errorf("%s instruction variation %.2f%% exceeds the paper's ceiling", f.Benchmarks[i], v)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	shortSkip(t)
	f := Fig4()
	lva, _ := f.Row("LVA-GHB-0")
	lvp, _ := f.Row("LVP-GHB-0")
	// Headline: LVA beats the idealized LVP on average.
	if lva.Mean() >= lvp.Mean() {
		t.Fatalf("LVA mean %.3f must beat idealized LVP mean %.3f", lva.Mean(), lvp.Mean())
	}
	// canneal: approximate-but-never-exact integer data — LVA wins big.
	lvaCan, _ := f.Value("LVA-GHB-0", "canneal")
	lvpCan, _ := f.Value("LVP-GHB-0", "canneal")
	if lvaCan > 0.5 || lvpCan < 0.8 {
		t.Errorf("canneal: LVA %.3f / LVP %.3f lost the paper's contrast", lvaCan, lvpCan)
	}
	// MPKI rises (or stays flat) with GHB size on average for LVA.
	lva4, _ := f.Row("LVA-GHB-4")
	if lva4.Mean() < lva.Mean() {
		t.Errorf("LVA mean MPKI must not improve with GHB size: %.3f -> %.3f", lva.Mean(), lva4.Mean())
	}
}

func TestFig5Shape(t *testing.T) {
	shortSkip(t)
	f := Fig5()
	for _, row := range f.Rows {
		for i, bench := range f.Benchmarks {
			limit := 0.12
			if bench == "ferret" {
				limit = 0.45 // the paper's pessimistic outlier
			}
			if row.Values[i] > limit {
				t.Errorf("%s %s error %.3f above the paper's envelope", row.Label, bench, row.Values[i])
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	shortSkip(t)
	f := Fig6()
	// Wider windows: MPKI monotonically non-increasing, error non-decreasing
	// (on the mean).
	order := []string{"0% (ideal LVP)", "5%", "10%", "20%", "infinite"}
	var prevMPKI, prevErr float64
	for i, label := range order {
		m, _ := f.Row("MPKI " + label)
		e, _ := f.Row("error " + label)
		if i > 0 {
			if m.Mean() > prevMPKI+0.02 {
				t.Errorf("mean MPKI rose when relaxing window to %s: %.3f -> %.3f", label, prevMPKI, m.Mean())
			}
			if e.Mean() < prevErr-0.02 {
				t.Errorf("mean error fell when relaxing window to %s: %.3f -> %.3f", label, prevErr, e.Mean())
			}
		}
		prevMPKI, prevErr = m.Mean(), e.Mean()
	}
}

func TestFig7Shape(t *testing.T) {
	shortSkip(t)
	f := Fig7()
	m4, _ := f.Row("MPKI delay-4")
	m32, _ := f.Row("MPKI delay-32")
	if diff := m32.Mean() - m4.Mean(); diff > 0.05 || diff < -0.05 {
		t.Errorf("value delay must barely move MPKI: %.3f vs %.3f", m4.Mean(), m32.Mean())
	}
	e4, _ := f.Row("error delay-4")
	e32, _ := f.Row("error delay-32")
	if diff := e32.Mean() - e4.Mean(); diff > 0.03 || diff < -0.03 {
		t.Errorf("value delay must barely move error: %.3f vs %.3f", e4.Mean(), e32.Mean())
	}
}

func TestFig8Shape(t *testing.T) {
	shortSkip(t)
	f := Fig8()
	pf16, _ := f.Row("fetches prefetch-16")
	ap16, _ := f.Row("fetches approx-16")
	if pf16.Mean() <= 1.2 {
		t.Errorf("prefetch-16 must inflate fetches, got %.3f", pf16.Mean())
	}
	if ap16.Mean() >= 0.95 {
		t.Errorf("approx-16 must reduce fetches, got %.3f", ap16.Mean())
	}
	// canneal defeats the prefetcher.
	cm, _ := f.Value("MPKI prefetch-16", "canneal")
	cf, _ := f.Value("fetches prefetch-16", "canneal")
	if cm < 0.9 || cf < 3 {
		t.Errorf("canneal must defeat the prefetcher: MPKI %.3f, fetches %.3f", cm, cf)
	}
	// ...while LVA slashes its fetches.
	cfA, _ := f.Value("fetches approx-16", "canneal")
	if cfA > 0.4 {
		t.Errorf("LVA-16 must slash canneal fetches, got %.3f", cfA)
	}
}

func TestFig9Shape(t *testing.T) {
	shortSkip(t)
	f := Fig9()
	var prev float64 = -1
	for _, label := range []string{"approx-0", "approx-2", "approx-4", "approx-8", "approx-16"} {
		r, _ := f.Row(label)
		if r.Mean() < prev-0.01 {
			t.Errorf("mean error must grow with degree: %s fell to %.3f from %.3f", label, r.Mean(), prev)
		}
		prev = r.Mean()
	}
}

func TestFig10Shape(t *testing.T) {
	shortSkip(t)
	f := Fig10()
	s0, _ := f.Row("speedup approx-0")
	// Paper: 8.5% mean speedup; accept a broad band around it.
	if s0.Mean() < 0.02 || s0.Mean() > 0.25 {
		t.Errorf("mean speedup at degree 0 = %.3f, outside the plausible band", s0.Mean())
	}
	// swaptions is compute-bound: ~no speedup.
	sw, _ := f.Value("speedup approx-0", "swaptions")
	if sw > 0.02 {
		t.Errorf("swaptions speedup %.3f should be ~0", sw)
	}
	// Energy savings grow with degree on the mean.
	e0, _ := f.Row("energy savings approx-0")
	e16, _ := f.Row("energy savings approx-16")
	if e16.Mean() <= e0.Mean() {
		t.Errorf("energy savings must grow with degree: %.3f -> %.3f", e0.Mean(), e16.Mean())
	}
	if e16.Mean() < 0.05 {
		t.Errorf("mean energy savings at degree 16 = %.3f, too small", e16.Mean())
	}
}

func TestFig11Shape(t *testing.T) {
	shortSkip(t)
	f := Fig11()
	var prev = 2.0
	for _, label := range []string{"approx-0", "approx-2", "approx-4", "approx-8", "approx-16"} {
		r, _ := f.Row(label)
		if r.Mean() > prev+0.01 {
			t.Errorf("mean normalized EDP must fall with degree: %s rose to %.3f", label, r.Mean())
		}
		prev = r.Mean()
	}
	r0, _ := f.Row("approx-0")
	if r0.Mean() > 0.8 {
		t.Errorf("degree-0 EDP reduction too small: %.3f (paper: ~0.58)", r0.Mean())
	}
}

func TestFig12Shape(t *testing.T) {
	shortSkip(t)
	f := Fig12()
	r, _ := f.Row("static approx load PCs")
	maxV, maxI := 0.0, 0
	for i, v := range r.Values {
		if v <= 0 || v > 300 {
			t.Errorf("%s: %v static PCs outside the paper's range", f.Benchmarks[i], v)
		}
		if v > maxV {
			maxV, maxI = v, i
		}
	}
	// The paper's Figure 12 has x264 on top.
	if f.Benchmarks[maxI] != "x264" {
		t.Errorf("x264 should have the most static approximate PCs, %s does (%v)",
			f.Benchmarks[maxI], maxV)
	}
}

func TestAblationTableShape(t *testing.T) {
	shortSkip(t)
	f := AblationTable()
	big, _ := f.Row("entries-512")
	mid, _ := f.Row("entries-256")
	if mid.Mean() > big.Mean()+0.05 {
		t.Errorf("256 entries must be nearly as good as 512: %.3f vs %.3f", mid.Mean(), big.Mean())
	}
	small, _ := f.Row("entries-64")
	if small.Mean() > big.Mean()+0.25 {
		t.Errorf("even 64 entries must retain most of the benefit: %.3f vs %.3f", small.Mean(), big.Mean())
	}
}

func TestExtMLPShape(t *testing.T) {
	shortSkip(t)
	f := ExtMLP()
	narrow, _ := f.Row("ROB-16/MSHR-4")
	wide, _ := f.Row("ROB-64/MSHR-16")
	if wide.Mean() >= narrow.Mean() {
		t.Errorf("a wider OoO machine must shrink LVA's mean speedup: %.3f vs %.3f",
			wide.Mean(), narrow.Mean())
	}
}

func TestExtLaneShape(t *testing.T) {
	shortSkip(t)
	f := ExtLane()
	fast, _ := f.Row("speedup fast-lane")
	slow, _ := f.Row("speedup slow-lane")
	if slow.Mean() < fast.Mean()-0.03 {
		t.Errorf("the slow training lane must not cost speedup: %.3f vs %.3f", slow.Mean(), fast.Mean())
	}
}
