// Package loopcapture_good shows the blessed fan-out patterns: index
// disjointness through parameters or per-iteration variables, and locked
// shared updates.
package loopcapture_good

import "sync"

// ParamIndex passes the loop index as a goroutine parameter; each worker
// owns its slot.
func ParamIndex(out []int) {
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i * i
		}(i)
	}
	wg.Wait()
}

// IterLocal writes through a variable declared inside the loop body, fresh
// per iteration.
func IterLocal(out []int) {
	var wg sync.WaitGroup
	for i := range out {
		slot := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[slot] = slot
		}()
	}
	wg.Wait()
}

// LockedCounter guards the shared counter with a mutex.
func LockedCounter(n int) int {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		done int
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			done++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return done
}
