package core

import (
	"testing"

	"lva/internal/value"
)

func TestTableWaysValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TableWays = 0
	if cfg.Validate() == nil {
		t.Fatal("zero ways must be rejected")
	}
	cfg.TableWays = 3 // 512/3 is not integral
	if cfg.Validate() == nil {
		t.Fatal("non-dividing ways must be rejected")
	}
	cfg.TableWays = 4
	if err := cfg.Validate(); err != nil {
		t.Fatalf("4-way 512-entry table must validate: %v", err)
	}
	if cfg.Sets() != 128 {
		t.Fatalf("sets = %d", cfg.Sets())
	}
}

func TestAssociativityReducesAliasing(t *testing.T) {
	// Two PCs that collide in a 1-set table: direct-mapped they evict each
	// other (no coverage); 2-way they coexist.
	run := func(ways int) uint64 {
		cfg := immediate()
		cfg.TableEntries = 2
		cfg.TableWays = ways
		a := New(cfg)
		for i := 0; i < 50; i++ {
			a.OnMiss(0x0001, value.FromInt(10))
			a.OnMiss(0x10001, value.FromInt(20))
		}
		return a.Stats().Approximations
	}
	// Find two PCs mapping to the same set in a 1-set config is trivial:
	// with TableWays == TableEntries there is a single set.
	direct := run(1) // 2 sets, possibly separate; use as baseline
	assoc := run(2)  // 1 set, 2 ways: both PCs fit
	if assoc == 0 {
		t.Fatal("2-way single-set table must cover both streams")
	}
	_ = direct // direct-mapped behaviour depends on hash placement
}

func TestAssociativeLRUReplacement(t *testing.T) {
	cfg := immediate()
	cfg.TableEntries = 2
	cfg.TableWays = 2 // single set, 2 ways
	a := New(cfg)
	// Fill both ways.
	a.OnMiss(0xA, value.FromInt(1))
	a.OnMiss(0xB, value.FromInt(2))
	// Touch A to make B the LRU, then allocate C: B must be evicted.
	a.OnMiss(0xA, value.FromInt(1))
	a.OnMiss(0xC, value.FromInt(3))
	if _, ok := a.EntryConfidence(0xA); !ok {
		t.Fatal("A must survive (recently used)")
	}
	if _, ok := a.EntryConfidence(0xC); !ok {
		t.Fatal("C must be resident after allocation")
	}
	if _, ok := a.EntryConfidence(0xB); ok {
		t.Fatal("B must have been the LRU victim")
	}
}

func TestOccupiedEntries(t *testing.T) {
	a := New(immediate())
	if a.OccupiedEntries() != 0 {
		t.Fatal("fresh table must be empty")
	}
	a.OnMiss(0x100, value.FromInt(1))
	a.OnMiss(0x200, value.FromInt(2))
	if got := a.OccupiedEntries(); got != 2 {
		t.Fatalf("occupied = %d, want 2", got)
	}
}

func TestProportionalConfidenceFasterDecay(t *testing.T) {
	run := func(prop bool) int {
		cfg := immediate()
		cfg.ProportionalConfidence = prop
		a := New(cfg)
		// Saturate confidence with stable values.
		for i := 0; i < 20; i++ {
			a.OnMiss(0x400, value.FromFloat(100))
		}
		// One wildly-off training: far beyond 2x the ±10% window.
		a.OnMiss(0x400, value.FromFloat(1e9))
		conf, _ := a.EntryConfidence(0x400)
		return conf
	}
	plain := run(false)
	prop := run(true)
	if prop >= plain {
		t.Fatalf("proportional decay must drop confidence faster: %d vs %d", prop, plain)
	}
	if plain != 6 || prop != 5 {
		t.Fatalf("expected 7-1=6 and 7-2=5, got %d and %d", plain, prop)
	}
}

func TestProportionalConfidenceMildMiss(t *testing.T) {
	// An approximation just outside the window (but within 2x) must still
	// decay by one even with proportional updates.
	cfg := immediate()
	cfg.ProportionalConfidence = true
	a := New(cfg)
	for i := 0; i < 20; i++ {
		a.OnMiss(0x400, value.FromFloat(100))
	}
	// LHB average is 100; actual 85 is 15% off less than 2x window (20%).
	a.OnMiss(0x400, value.FromFloat(85))
	conf, _ := a.EntryConfidence(0x400)
	if conf != 6 {
		t.Fatalf("mild miss must cost one step, got conf %d", conf)
	}
}

func TestProportionalConfidenceFloorsAtMin(t *testing.T) {
	cfg := immediate()
	cfg.ProportionalConfidence = true
	a := New(cfg)
	for i := 0; i < 100; i++ {
		v := 1.0
		if i%2 == 0 {
			v = 1e9
		}
		a.OnMiss(0x400, value.FromFloat(v))
	}
	conf, ok := a.EntryConfidence(0x400)
	if !ok || conf < cfg.ConfMin() {
		t.Fatalf("confidence must floor at %d, got %d", cfg.ConfMin(), conf)
	}
}
