package cache

import (
	"sync"

	"lva/internal/obs"
)

// cacheMetrics is the package's obs seam; see the matching struct in
// memsim for the wiring convention. Shared across every cache in the
// process (L1s and L2 banks alike).
type cacheMetrics struct {
	evictions  *obs.Counter
	writebacks *obs.Counter
}

// sharedCacheMetrics lazily registers the package's metrics exactly once.
var sharedCacheMetrics = sync.OnceValue(func() *cacheMetrics {
	r := obs.Default()
	return &cacheMetrics{
		evictions:  r.Counter("cache_evictions", "valid blocks evicted across all modeled caches"),
		writebacks: r.Counter("cache_writebacks", "dirty evictions across all modeled caches"),
	}
})
