package memsim

import (
	"testing"

	"lva/internal/obs/phase"
)

// TestPhaseProfileCountsMatchResult checks the simulator seam: the phase
// profiler sees every annotated load (and only annotated loads), and its
// miss/covered totals agree with the simulation's own counters.
func TestPhaseProfileCountsMatchResult(t *testing.T) {
	phase.SetEpochWindow(500)
	defer phase.SetEpochWindow(phase.DefaultEpochWindow)
	sim := New(DefaultConfig())
	p := phase.NewProfiler("memsim-phase")
	sim.SetPhaseProfile(p)
	driveAnnotated(sim)
	res := sim.Result()

	prof := p.Finalize()
	if prof.Loads != 4000 {
		t.Fatalf("profiled loads = %d, want 4000 (plain loads must not profile)", prof.Loads)
	}
	if prof.TotalEpochs != 8 {
		t.Fatalf("epochs = %d, want 8 (4000 annotated loads / 500)", prof.TotalEpochs)
	}
	misses, covered := phaseMissTotals(prof)
	if misses == 0 || covered == 0 {
		t.Fatalf("expected misses and coverage, got %d/%d", misses, covered)
	}
	if covered != res.Covered {
		t.Fatalf("profiled covered = %d, simulator counted %d", covered, res.Covered)
	}
}

// phaseMissTotals reconstructs run totals from the projection's actual
// rates: actual MPKI/coverage are computed over every retained epoch, so
// with no ring wrap they must reproduce the run's absolute counts.
func phaseMissTotals(prof phase.ScopeProfile) (misses, covered uint64) {
	// ActualMPKI = misses*1000/insts; ActualCoverage = covered/misses.
	m := prof.Projection.ActualMPKI * float64(prof.Insts) / 1000
	c := prof.Projection.ActualCoverage * m
	return uint64(m + 0.5), uint64(c + 0.5)
}

// TestPhaseProfilePreciseAttachment checks the uncovered-miss path: under
// AttachNone annotated misses are profiled (phase structure of the
// precise stream) but never covered and never trained.
func TestPhaseProfilePreciseAttachment(t *testing.T) {
	phase.SetEpochWindow(500)
	defer phase.SetEpochWindow(phase.DefaultEpochWindow)
	cfg := DefaultConfig()
	cfg.Attach = AttachNone
	sim := New(cfg)
	p := phase.NewProfiler("memsim-phase-precise")
	sim.SetPhaseProfile(p)
	driveAnnotated(sim)

	prof := p.Finalize()
	if prof.Loads != 4000 {
		t.Fatalf("profiled loads = %d, want 4000", prof.Loads)
	}
	if prof.Projection.ActualMPKI == 0 {
		t.Fatal("expected annotated misses under AttachNone")
	}
	if prof.Projection.ActualCoverage != 0 {
		t.Fatalf("coverage = %v under AttachNone, want 0", prof.Projection.ActualCoverage)
	}
	if prof.Projection.ActualMeanRelErr != 0 {
		t.Fatalf("mean rel err = %v under AttachNone, want 0 (no trainings)", prof.Projection.ActualMeanRelErr)
	}
}

// TestPhaseProfileSteadyStateAllocFree pins the profiler's hot methods:
// with the fingerprint arrays fixed-size and the epoch ring preallocated,
// profiling a load/miss/training allocates nothing.
func TestPhaseProfileSteadyStateAllocFree(t *testing.T) {
	phase.SetEpochWindow(64)
	defer phase.SetEpochWindow(phase.DefaultEpochWindow)
	cfg := DefaultConfig()
	cfg.Approx.ValueDelay = 0
	sim := New(cfg)
	p := phase.NewProfiler("memsim-phase-allocs")
	sim.SetPhaseProfile(p)
	driveAnnotated(sim)
	addr := uint64(0x900000)
	i := 0
	assertZeroAllocs(t, "phase-profiled covered miss", func() {
		sim.LoadFloat(uint64(0x400+i%5*4), addr, 1, true)
		addr += 64
		i++
	})
}

// TestPhaseProfileDoesNotChangeResults pins the observer contract: wiring
// a phase profiler must not perturb any simulation metric.
func TestPhaseProfileDoesNotChangeResults(t *testing.T) {
	run := func(wire bool) Result {
		sim := New(DefaultConfig())
		if wire {
			sim.SetPhaseProfile(phase.NewProfiler("observer"))
		}
		driveAnnotated(sim)
		return sim.Result()
	}
	if run(false) != run(true) {
		t.Fatal("attaching a phase profiler changed simulation results")
	}
}
