// Package detsync_bad holds fan-out shapes that turn scheduling into
// ordering: appended worker results, broken WaitGroup pairing, and result
// slices built in channel delivery order.
package detsync_bad

import "sync"

// GatherAppend collects worker results by appending under a mutex: the
// slice order is the goroutines' completion order.
func GatherAppend(jobs []int) []int {
	var mu sync.Mutex
	var wg sync.WaitGroup
	var out []int
	for _, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := j * j
			mu.Lock()
			out = append(out, v) // want:detsync
			mu.Unlock()
		}()
	}
	wg.Wait()
	return out
}

// AddInside moves the Add into the goroutine, racing the Wait below: Wait
// can observe the counter at zero before any worker has registered.
func AddInside(jobs []int, out []int) {
	var wg sync.WaitGroup
	for i, j := range jobs {
		go func() {
			wg.Add(1) // want:detsync
			defer wg.Done()
			out[i] = j * j
		}()
	}
	wg.Wait()
}

// MissingDone Adds and Waits but nothing ever Dones: Wait deadlocks.
func MissingDone(jobs []int, out []int) {
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			out[i] = j * j
		}()
	}
	wg.Wait() // want:detsync
}

// worker computes one job but never touches its WaitGroup argument.
func worker(wg *sync.WaitGroup, out []int, i, j int) {
	out[i] = j * j
}

// HandOffNoDone launches a named worker that is handed the WaitGroup but
// never Dones it, checked through the call graph.
func HandOffNoDone(jobs []int, out []int) {
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go worker(&wg, out, i, j) // want:detsync
	}
	wg.Wait()
}

// DrainOrder builds the result slice in channel delivery order, which is
// whatever order the workers happened to finish in.
func DrainOrder(results chan int, n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		v := <-results
		out = append(out, v) // want:detsync
	}
	return out
}

// RangeDrain is the range-over-channel spelling of the same bug.
func RangeDrain(results chan int) []int {
	var out []int
	for v := range results {
		scaled := v * 10
		out = append(out, scaled) // want:detsync
	}
	return out
}
