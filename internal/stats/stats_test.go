package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRatioAndPerKilo(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio with zero denominator must be 0")
	}
	if got := Ratio(3, 4); got != 0.75 {
		t.Fatalf("Ratio = %v", got)
	}
	if got := PerKilo(5, 1000); got != 5 {
		t.Fatalf("PerKilo = %v", got)
	}
	if PerKilo(5, 0) != 0 {
		t.Fatal("PerKilo with zero units must be 0")
	}
}

func TestSafeDiv(t *testing.T) {
	if SafeDiv(1, 0) != 0 || SafeDiv(6, 3) != 2 {
		t.Fatal("SafeDiv")
	}
}

func TestMeanMedianStddev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 2.5 {
		t.Fatalf("Median = %v", Median(xs))
	}
	if Median([]float64{5, 1, 9}) != 5 {
		t.Fatal("odd median")
	}
	if got := Stddev([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("Stddev of constants = %v", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Stddev(nil) != 0 {
		t.Fatal("empty-input conventions")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated its input: %v", xs)
	}
}

func TestGeomean(t *testing.T) {
	if got := Geomean([]float64{1, 4}); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Geomean = %v", got)
	}
	if Geomean(nil) != 0 {
		t.Fatal("empty geomean")
	}
	// Non-positive entries are clamped, not fatal.
	if got := Geomean([]float64{0, 4}); math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("clamped geomean = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-2, 0, 3) != 0 || Clamp(1, 0, 3) != 1 {
		t.Fatal("Clamp")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-2, 0, 3) != 0 || ClampInt(1, 0, 3) != 1 {
		t.Fatal("ClampInt")
	}
}

func TestMeanBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.123); got != "12.3%" {
		t.Fatalf("Percent = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRowf("beta", "%.2f", 2.5)
	out := tbl.String()
	for _, want := range []string{"demo", "name", "alpha", "2.50", "----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	// Columns must be aligned: every line of the body shares the prefix
	// width of the widest first column ("alpha").
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableExtraCells(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("x", "extra", "cells")
	if !strings.Contains(tbl.String(), "cells") {
		t.Fatal("extra cells must be rendered")
	}
}
