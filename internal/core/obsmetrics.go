package core

import (
	"sync"

	"lva/internal/obs"
)

// coreMetrics is the package's obs seam; see the matching struct in memsim
// for the wiring convention. Shared across all approximators.
type coreMetrics struct {
	trainings   *obs.Counter
	confAccepts *obs.Counter
	confRejects *obs.Counter
	confGained  *obs.Counter
	confLost    *obs.Counter
	relErr      *obs.Histogram
}

// sharedCoreMetrics lazily registers the package's metrics exactly once.
var sharedCoreMetrics = sync.OnceValue(func() *coreMetrics {
	r := obs.Default()
	return &coreMetrics{
		trainings:   r.Counter("core_trainings", "training commits after value delay"),
		confAccepts: r.Counter("core_conf_accepts", "trainings whose approximation fell inside the confidence window"),
		confRejects: r.Counter("core_conf_rejects", "trainings whose approximation fell outside the confidence window"),
		confGained:  r.Counter("core_conf_gained", "confidence counters crossing into the confident range (conf >= 0)"),
		confLost:    r.Counter("core_conf_lost", "confidence counters dropping out of the confident range (conf < 0)"),
		relErr:      r.Histogram("core_approx_rel_error", "per-training relative error of the approximated value vs the actual (missed zeros land in the overflow bucket)", obs.ErrorBuckets, false),
	}
})
