// Package value provides bit-level utilities for the data values that flow
// through the load value approximator: packing integer and floating-point
// values into 64-bit lanes, floating-point mantissa truncation (paper
// §VII-B), relative differences and relaxed confidence-window tests
// (paper §III-B).
package value

import "math"

// Kind identifies how the 64-bit payload of a Value is interpreted.
type Kind uint8

const (
	// Int means the payload is a two's-complement signed integer.
	Int Kind = iota
	// Float means the payload is an IEEE-754 double.
	Float
)

// String returns "int" or "float".
func (k Kind) String() string {
	if k == Float {
		return "float"
	}
	return "int"
}

// Value is a single datum as seen by the memory hierarchy: a 64-bit payload
// plus its interpretation. The approximator stores and averages Values.
type Value struct {
	Bits uint64
	Kind Kind
}

// FromFloat packs a float64.
func FromFloat(f float64) Value {
	return Value{Bits: math.Float64bits(f), Kind: Float}
}

// FromInt packs a signed integer.
func FromInt(i int64) Value {
	return Value{Bits: uint64(i), Kind: Int}
}

// Float unpacks the payload as a float64. Integer payloads are converted.
func (v Value) Float() float64 {
	if v.Kind == Float {
		return math.Float64frombits(v.Bits)
	}
	return float64(int64(v.Bits))
}

// Int unpacks the payload as an int64. Float payloads are rounded to nearest.
func (v Value) Int() int64 {
	if v.Kind == Int {
		return int64(v.Bits)
	}
	return int64(math.RoundToEven(math.Float64frombits(v.Bits)))
}

// Equal reports exact bit equality of payloads with the same kind, which is
// the correctness criterion for traditional load value prediction.
func (v Value) Equal(o Value) bool {
	return v.Kind == o.Kind && v.Bits == o.Bits
}

// TruncateMantissa clears the low `bits` bits of a float64 mantissa
// (mantissa has 52 bits). The paper (§VII-B) truncates single-precision
// mantissas by up to 23 bits to improve floating-point value locality; for
// our 64-bit lanes the same precision loss is applied to the top of the
// double mantissa so that a loss of b bits leaves 23-b significant mantissa
// bits, matching the single-precision experiment.
func TruncateMantissa(f float64, bits int) float64 {
	if bits <= 0 {
		return f
	}
	// Map "single-precision mantissa bits lost" onto the double mantissa:
	// single has 23 mantissa bits; keep (23 - bits) significant bits.
	keep := 23 - bits
	if keep < 0 {
		keep = 0
	}
	drop := uint(52 - keep)
	if drop > 52 {
		drop = 52
	}
	u := math.Float64bits(f)
	mask := ^uint64(0) << drop
	// Preserve sign and exponent untouched; they sit above bit 52.
	return math.Float64frombits(u & (mask | 0xFFF0000000000000))
}

// Truncate applies mantissa truncation to float values and leaves integer
// values unchanged.
func Truncate(v Value, bits int) Value {
	if bits <= 0 || v.Kind != Float {
		return v
	}
	return FromFloat(TruncateMantissa(v.Float(), bits))
}

// RelDiff returns |approx-actual| / |actual|. When actual is zero it returns
// 0 if approx is also zero and +Inf otherwise, so a zero actual value only
// admits an exact approximation.
func RelDiff(approx, actual float64) float64 {
	if actual == 0 {
		if approx == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(approx-actual) / math.Abs(actual)
}

// WithinWindow reports whether approx falls within the relaxed confidence
// window of actual. The window is a fraction (0.10 = ±10%); a window of 0
// requires exact equality (traditional value prediction); a negative window
// means "infinitely relaxed" and always accepts.
func WithinWindow(approx, actual Value, window float64) bool {
	if window < 0 {
		return true
	}
	if window == 0 {
		return approx.Equal(actual)
	}
	if actual.Kind == Int && approx.Kind == Int {
		a, b := approx.Int(), actual.Int()
		if b == 0 {
			return a == 0
		}
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		mag := b
		if mag < 0 {
			mag = -mag
		}
		return float64(diff) <= window*float64(mag)
	}
	return RelDiff(approx.Float(), actual.Float()) <= window
}

// Average computes the computation function f(LHB) = AVERAGE used by the
// baseline approximator. Integer inputs produce a rounded integer result;
// any float input produces a float result. An empty input yields the zero
// Value of Int kind.
func Average(vs []Value) Value {
	if len(vs) == 0 {
		return Value{}
	}
	anyFloat := false
	var sum float64
	for _, v := range vs {
		if v.Kind == Float {
			anyFloat = true
		}
		sum += v.Float()
	}
	avg := sum / float64(len(vs))
	if anyFloat {
		return FromFloat(avg)
	}
	return FromInt(int64(math.RoundToEven(avg)))
}

// LastValue returns the most recently inserted value (last element), used by
// the last-value computation function. Empty input yields the zero Value.
func LastValue(vs []Value) Value {
	if len(vs) == 0 {
		return Value{}
	}
	return vs[len(vs)-1]
}

// Stride extrapolates the next value from the stride between the last two
// values (a computational predictor in the Sazeides/Smith taxonomy). With
// fewer than two values it degenerates to LastValue.
func Stride(vs []Value) Value {
	if len(vs) < 2 {
		return LastValue(vs)
	}
	last := vs[len(vs)-1]
	prev := vs[len(vs)-2]
	if last.Kind == Int && prev.Kind == Int {
		return FromInt(last.Int() + (last.Int() - prev.Int()))
	}
	return FromFloat(last.Float() + (last.Float() - prev.Float()))
}
