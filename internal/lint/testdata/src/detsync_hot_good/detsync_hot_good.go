// Package detsync_hot_good is hot-path-scoped code that stays serial: no
// goroutine anywhere in its call tree, so the ban has nothing to say.
package detsync_hot_good

// sum is a leaf helper.
func sum(xs []uint64) uint64 {
	var total uint64
	for _, x := range xs {
		total += x
	}
	return total
}

// Probe calls only serial helpers.
func Probe(addrs []uint64) uint64 {
	return sum(addrs)
}
