// Package trace defines the memory-access record exchanged between the
// phase-1 execution-driven simulator (which captures it) and the phase-2
// full-system simulator (which replays it), plus a compact binary encoding
// for storing traces on disk.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"lva/internal/value"
)

// Op distinguishes access types.
type Op uint8

const (
	// Load is a data load.
	Load Op = iota
	// Store is a data store.
	Store
)

func (o Op) String() string {
	if o == Store {
		return "store"
	}
	return "load"
}

// Access is one dynamic memory access.
type Access struct {
	// PC is the (synthetic) program counter of the instruction.
	PC uint64
	// Addr is the byte address accessed.
	Addr uint64
	// Value is the precise data value (meaningful for loads).
	Value value.Value
	// Gap is the number of non-memory instructions executed since the
	// previous access on the same thread (used by the timing model).
	Gap uint32
	// Thread is the logical thread id (0..3 for 4-thread runs).
	Thread uint8
	// Op is Load or Store.
	Op Op
	// Approx marks accesses to data annotated approximate (§IV).
	Approx bool
}

// Trace is an in-memory access sequence in program order.
type Trace struct {
	Name     string
	Accesses []Access
}

// NewSized returns an empty trace whose Accesses slice is preallocated for
// n records, so capture paths that know the access count up front (from a
// prior precise run of the same workload) never regrow the slice. n <= 0
// yields an ordinary empty trace.
func NewSized(name string, n int) *Trace {
	t := &Trace{Name: name}
	if n > 0 {
		t.Accesses = make([]Access, 0, n)
	}
	return t
}

// Append adds an access.
func (t *Trace) Append(a Access) { t.Accesses = append(t.Accesses, a) }

// Len returns the number of accesses.
func (t *Trace) Len() int { return len(t.Accesses) }

// Threads returns 1 + the highest thread id present (0 for an empty trace).
func (t *Trace) Threads() int {
	hi := -1
	for _, a := range t.Accesses {
		hi = max(hi, int(a.Thread))
	}
	return hi + 1
}

// Split partitions the trace into per-thread sub-traces, preserving order.
func (t *Trace) Split() []*Trace {
	n := t.Threads()
	out := make([]*Trace, n)
	for i := range out {
		out[i] = &Trace{Name: fmt.Sprintf("%s.t%d", t.Name, i)}
	}
	for _, a := range t.Accesses {
		out[a.Thread].Append(a)
	}
	return out
}

const (
	magic   = uint32(0x4C564154) // "LVAT"
	version = uint32(1)

	flagStore  = 1 << 0
	flagApprox = 1 << 1
	flagFloat  = 1 << 2
)

// Write serializes the trace. Format: header (magic, version, name length,
// name, record count) then fixed 30-byte records, all little-endian.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	hdr := make([]byte, 12)
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(t.Name)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(t.Accesses)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	rec := make([]byte, 30)
	for _, a := range t.Accesses {
		binary.LittleEndian.PutUint64(rec[0:], a.PC)
		binary.LittleEndian.PutUint64(rec[8:], a.Addr)
		binary.LittleEndian.PutUint64(rec[16:], a.Value.Bits)
		binary.LittleEndian.PutUint32(rec[24:], a.Gap)
		rec[28] = a.Thread
		var f byte
		if a.Op == Store {
			f |= flagStore
		}
		if a.Approx {
			f |= flagApprox
		}
		if a.Value.Kind == value.Float {
			f |= flagFloat
		}
		rec[29] = f
		if _, err := bw.Write(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != magic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	nameLen := binary.LittleEndian.Uint32(hdr[8:])
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	if n > 1<<32 {
		return nil, fmt.Errorf("trace: implausible record count %d", n)
	}
	t := &Trace{Name: string(name), Accesses: make([]Access, 0, n)}
	rec := make([]byte, 30)
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("trace: reading record %d: %w", i, err)
		}
		a := Access{
			PC:     binary.LittleEndian.Uint64(rec[0:]),
			Addr:   binary.LittleEndian.Uint64(rec[8:]),
			Gap:    binary.LittleEndian.Uint32(rec[24:]),
			Thread: rec[28],
		}
		f := rec[29]
		kind := value.Int
		if f&flagFloat != 0 {
			kind = value.Float
		}
		a.Value = value.Value{Bits: binary.LittleEndian.Uint64(rec[16:]), Kind: kind}
		if f&flagStore != 0 {
			a.Op = Store
		}
		a.Approx = f&flagApprox != 0
		t.Accesses = append(t.Accesses, a)
	}
	return t, nil
}
