// Command lvaexp regenerates the paper's tables and figures. Each
// experiment id maps to one table/figure of the evaluation (§VI):
//
//	lvaexp table1         # Table I
//	lvaexp fig4 fig5      # selected figures
//	lvaexp all            # everything (phase 1 + full-system)
//
// The output rows/series mirror what the paper plots; EXPERIMENTS.md
// records the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lva/internal/experiments"
	"lva/internal/obs"
	"lva/internal/obs/attr"
	"lva/internal/obs/phase"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lvaexp [flags] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: %v, or 'all'\n", experiments.IDs())
		flag.PrintDefaults()
	}
	verbose := flag.Bool("v", false, "print total timing and run-cache statistics")
	format := flag.String("format", "table", "output format: table|csv|json|chart")
	metricsOut := flag.String("metrics", "", "write a deterministic metrics snapshot (JSON) to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	progress := flag.Bool("progress", false, "print live per-figure progress to stderr")
	timelineOut := flag.String("timeline", "", "capture a Chrome trace-event run timeline (load in Perfetto) to this file")
	attrOut := flag.String("attr", "", "write a per-site/per-epoch attribution snapshot (JSON) to this file")
	attrWindow := flag.Int("attr-window", 0, "epoch window in annotated loads for -attr time-series (0 = default, <0 = sites only)")
	phaseOut := flag.String("phase", "", "write a phase-observatory snapshot (per-run phase clustering + representativeness, JSON) to this file")
	phaseWindow := flag.Int("phase-window", 0, "epoch window in annotated loads for -phase fingerprints (0 = default)")
	manifestOut := flag.String("manifest", "", "record run provenance and write the NDJSON manifest to this file")
	flag.Parse()

	// -metrics implies full instrumentation: enable before any simulator is
	// constructed so the hot-path seams wire up. -attr likewise enables the
	// flight recorder before the first run.
	if *metricsOut != "" || *pprofAddr != "" {
		obs.SetEnabled(true)
	}
	if *attrOut != "" {
		if *attrWindow != 0 {
			attr.SetEpochWindow(*attrWindow)
		}
		attr.SetEnabled(true)
	}
	if *phaseOut != "" {
		if *phaseWindow != 0 {
			phase.SetEpochWindow(*phaseWindow)
		}
		phase.SetEnabled(true)
	}
	if *timelineOut != "" {
		experiments.StartTimeline()
	}
	if *manifestOut != "" {
		experiments.EnableProvenance()
	}
	if *pprofAddr != "" {
		addr, err := obs.ServeDebug(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvaexp:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "lvaexp: debug server on http://%s/debug/pprof/\n", addr)
	}
	if *progress {
		cancel := obs.OnEvent(obs.NewProgressPrinter(os.Stderr))
		defer cancel()
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	var ids []string
	for _, a := range args {
		if a == "all" {
			ids = experiments.IDs()
			break
		}
		ids = append(ids, a)
	}

	for _, id := range ids {
		if _, ok := experiments.Registry[id]; !ok {
			fmt.Fprintf(os.Stderr, "lvaexp: unknown experiment %q (valid: %v)\n", id, experiments.IDs())
			os.Exit(2)
		}
	}

	// All requested experiments run concurrently: points from different
	// figures interleave through the shared gate, and the run cache
	// simulates every shared design point exactly once.
	start := time.Now()
	figs, err := experiments.RunAll(ids...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lvaexp:", err)
		os.Exit(2)
	}
	for _, fig := range figs {
		switch *format {
		case "table":
			fmt.Println(fig.String())
		case "csv":
			fmt.Print(fig.CSV())
		case "json":
			out, err := fig.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, "lvaexp:", err)
				os.Exit(1)
			}
			fmt.Println(out)
		case "chart":
			fmt.Println(fig.Chart())
		default:
			fmt.Fprintf(os.Stderr, "lvaexp: unknown format %q\n", *format)
			os.Exit(2)
		}
	}
	if *verbose {
		s := experiments.RunCacheCounters()
		fmt.Fprintf(os.Stderr, "lvaexp: %d experiment(s) in %v; %d kernel simulation(s), %d run-cache hit(s) (%.1f%% dedup)\n",
			len(figs), time.Since(start).Round(time.Millisecond), s.Simulated, s.Hits, 100*s.DedupFraction())
		t := experiments.TraceCounters()
		fmt.Fprintf(os.Stderr, "lvaexp: grid traces: %d recorded, %d point(s) footer-served, %d replayed in %d pass(es) (+%d memo hits), %d executed\n",
			t.Recordings, t.HeaderHits, t.ReplayPoints, t.ReplayPasses, t.ReplayHits, t.ExecPoints)
	}
	if *metricsOut != "" {
		b, err := obs.Default().Snapshot(false).JSON()
		if err == nil {
			err = os.WriteFile(*metricsOut, b, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvaexp: write metrics:", err)
			os.Exit(1)
		}
	}
	if *timelineOut != "" {
		b, err := experiments.TimelineJSON()
		if err == nil {
			err = os.WriteFile(*timelineOut, b, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvaexp: write timeline:", err)
			os.Exit(1)
		}
		experiments.StopTimeline()
	}
	if *attrOut != "" {
		b, err := attr.TakeSnapshot().JSON()
		if err == nil {
			err = os.WriteFile(*attrOut, b, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvaexp: write attribution:", err)
			os.Exit(1)
		}
	}
	if *phaseOut != "" {
		b, err := phase.TakeSnapshot().JSON()
		if err == nil {
			err = os.WriteFile(*phaseOut, b, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvaexp: write phase snapshot:", err)
			os.Exit(1)
		}
	}
	if *manifestOut != "" {
		f, err := os.Create(*manifestOut)
		if err == nil {
			err = experiments.WriteProvManifest(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "lvaexp: write manifest:", err)
			os.Exit(1)
		}
	}
}
