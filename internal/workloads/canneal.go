package workloads

import (
	"math"

	"lva/internal/memsim"
)

// Canneal stands in for PARSEC canneal: simulated-annealing placement of
// netlist blocks on a 2-D grid, minimizing total routing cost (sum of
// Manhattan distances along nets). Following §IV, only the integer <x,y>
// coordinates of *neighbouring* blocks loaded inside the cost functions are
// annotated approximate; the coordinates of the two blocks being swapped
// (which are written) and all indices/pointers are precise. Swap targets
// are random, so the cost loads have essentially no spatial locality —
// this is the paper's highest-MPKI benchmark (12.50).
type Canneal struct {
	// Blocks is the number of netlist blocks (= grid cells).
	Blocks int
	// GridSide is the placement grid dimension (GridSide^2 == Blocks).
	GridSide int
	// FanIn is the number of nets terminating at each block.
	FanIn int
	// Steps is the number of proposed swaps.
	Steps int
	// TickPerStep models the non-memory cost of a swap evaluation; the
	// paper notes canneal's cost computation is very simple, so this is
	// small and the MPKI correspondingly high.
	TickPerStep int
}

// NewCanneal returns the calibrated default configuration.
func NewCanneal() *Canneal {
	return &Canneal{Blocks: 1 << 16, GridSide: 256, FanIn: 4, Steps: 24000, TickPerStep: 2450}
}

// Name implements Workload.
func (c *Canneal) Name() string { return "canneal" }

// FloatData implements Workload.
func (c *Canneal) FloatData() bool { return false }

// FeedbackFree implements Workload: swap acceptance depends on the cost
// delta computed from annotated neighbour-coordinate loads, so an
// approximated coordinate changes which stores execute and the values
// every later load observes.
func (c *Canneal) FeedbackFree() bool { return false }

// CannealOutput is the final total routing cost. The paper's metric: the
// relative difference between approximate and precise final cost.
type CannealOutput struct {
	RoutingCost float64
}

// Error implements Output.
func (o CannealOutput) Error(precise Output) float64 {
	p, ok := precise.(CannealOutput)
	if !ok || p.RoutingCost == 0 {
		return 1
	}
	return math.Abs(o.RoutingCost-p.RoutingCost) / p.RoutingCost
}

// Load-site identifiers.
const (
	cnSiteFaninX = iota
	cnSiteFaninY
	cnSiteFanoutX
	cnSiteFanoutY
)

// Run implements Workload.
func (c *Canneal) Run(mem *memsim.Sim, seed uint64) Output {
	rng := NewRNG(seed)
	arena := NewArena()
	n := c.Blocks

	// Placement: block id -> (x, y), initialized to a random permutation.
	xs := NewI32Array(arena, n)
	ys := NewI32Array(arena, n)
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i, p := range perm {
		xs.Data[i] = p % int32(c.GridSide)
		ys.Data[i] = p / int32(c.GridSide)
	}

	// Netlist in CSR form. fanin[b] is the fixed-width row b of `srcs`;
	// fanout (the inverse adjacency, variable degree) is offsets+array.
	// The original slice-of-slices build was one make per block plus
	// append growth per edge — over 90% of the whole Table 1 allocation
	// count. The RNG is drawn in the same block-major, slot-minor order,
	// and the counting sort fills each fanout list in the same ascending-b
	// order the appends produced, so the netlist is identical bit for bit.
	srcs := make([]int32, n*c.FanIn)
	for b := 0; b < n; b++ {
		for k := 0; k < c.FanIn; k++ {
			srcs[b*c.FanIn+k] = int32(rng.Intn(n))
		}
	}
	foOff := make([]int32, n+1)
	for _, src := range srcs {
		foOff[src+1]++
	}
	for b := 0; b < n; b++ {
		foOff[b+1] += foOff[b]
	}
	fanout := make([]int32, len(srcs))
	next := make([]int32, n)
	copy(next, foOff[:n])
	for b := 0; b < n; b++ {
		for k := 0; k < c.FanIn; k++ {
			src := srcs[b*c.FanIn+k]
			fanout[next[src]] = int32(b)
			next[src]++
		}
	}

	// cost returns the wire cost of placing block b at (bx, by): Manhattan
	// distance to every fanin and fanout neighbour. Neighbour coordinates
	// are the annotated approximate loads.
	cost := func(b int, bx, by int32) int64 {
		var total int64
		for _, nb := range srcs[b*c.FanIn : (b+1)*c.FanIn] {
			nx := xs.Load(mem, pcBase(idCanneal, cnSiteFaninX), int(nb), true)
			ny := ys.Load(mem, pcBase(idCanneal, cnSiteFaninY), int(nb), true)
			total += int64(absI32(bx-nx)) + int64(absI32(by-ny))
		}
		for _, nb := range fanout[foOff[b]:foOff[b+1]] {
			nx := xs.Load(mem, pcBase(idCanneal, cnSiteFanoutX), int(nb), true)
			ny := ys.Load(mem, pcBase(idCanneal, cnSiteFanoutY), int(nb), true)
			total += int64(absI32(bx-nx)) + int64(absI32(by-ny))
		}
		return total
	}

	temp := 400.0
	for step := 0; step < c.Steps; step++ {
		mem.SetThread(step % 4)
		a := rng.Intn(n)
		b := rng.Intn(n)
		if a == b {
			continue
		}
		// The swapped blocks' own coordinates are written data: precise.
		ax := xs.Load(mem, pcBase(idCanneal, 8), a, false)
		ay := ys.Load(mem, pcBase(idCanneal, 9), a, false)
		bx := xs.Load(mem, pcBase(idCanneal, 10), b, false)
		by := ys.Load(mem, pcBase(idCanneal, 11), b, false)

		delta := cost(a, bx, by) + cost(b, ax, ay) - cost(a, ax, ay) - cost(b, bx, by)
		mem.Tick(uint64(c.TickPerStep))

		u := rng.Float64() // drawn unconditionally to keep streams aligned
		accept := delta < 0 || u < math.Exp(-float64(delta)/temp)
		if accept {
			xs.Store(mem, pcBase(idCanneal, 12), a, bx)
			ys.Store(mem, pcBase(idCanneal, 13), a, by)
			xs.Store(mem, pcBase(idCanneal, 14), b, ax)
			ys.Store(mem, pcBase(idCanneal, 15), b, ay)
		}
		if step%1024 == 1023 {
			temp *= 0.92 // cooling schedule
		}
	}

	// Final routing cost is the application output, computed from the real
	// (precise) placement data.
	var total int64
	for b := 0; b < n; b++ {
		for _, nb := range srcs[b*c.FanIn : (b+1)*c.FanIn] {
			total += int64(absI32(xs.Data[b]-xs.Data[nb])) + int64(absI32(ys.Data[b]-ys.Data[nb]))
		}
	}
	return CannealOutput{RoutingCost: float64(total)}
}

func absI32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}
