package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches one Loader (and thus one type-checked stdlib) across
// all tests in this package.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		cwd, err := os.Getwd()
		if err != nil {
			loaderErr = err
			return
		}
		root, err := FindModuleRoot(cwd)
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("building loader: %v", loaderErr)
	}
	return loader
}

// loadFixture loads one testdata package and fails the test on type errors:
// a fixture that does not compile tests nothing.
func loadFixture(t *testing.T, l *Loader, name string) *Package {
	t.Helper()
	pkg, err := l.LoadDir(filepath.Join(l.ModDir(), "internal", "lint", "testdata", "src", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("fixture %s: type error: %v", name, terr)
	}
	return pkg
}

// wantLines extracts the `// want:<analyzer>` markers from a fixture.
func wantLines(l *Loader, pkg *Package, analyzer string) map[int]bool {
	want := make(map[int]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if rest, ok := strings.CutPrefix(text, "want:"); ok && strings.TrimSpace(rest) == analyzer {
					want[l.Fset().Position(c.Pos()).Line] = true
				}
			}
		}
	}
	return want
}

func lineSet(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// TestFixtures runs each analyzer over its bad and good fixture packages
// and requires the findings to match the `// want:<analyzer>` markers
// exactly — every bad case flagged, every good case silent.
func TestFixtures(t *testing.T) {
	cases := []struct {
		dir      string
		analyzer string
		bad      bool
	}{
		{"seedrand_bad", "seedrand", true},
		{"seedrand_good", "seedrand", false},
		{"cfgvalidate_bad", "cfgvalidate", true},
		{"cfgvalidate_good", "cfgvalidate", false},
		{"nopanic_bad", "nopanic", true},
		{"nopanic_good", "nopanic", false},
		{"loopcapture_bad", "loopcapture", true},
		{"loopcapture_good", "loopcapture", false},
		{"detfloat_bad", "detfloat", true},
		{"detfloat_good", "detfloat", false},
		{"obshooks_bad", "obshooks", true},
		{"obshooks_good", "obshooks", false},
		{"obshooks_attr_bad", "obshooks", true},
		{"obshooks_attr_good", "obshooks", false},
		{"hotpath_bad", "hotpath", true},
		{"hotpath_good", "hotpath", false},
		{"mapiter_bad", "mapiter", true},
		{"mapiter_good", "mapiter", false},
		{"detsync_bad", "detsync", true},
		{"detsync_good", "detsync", false},
		{"detsync_hot_bad", "detsync", true},
		{"detsync_hot_good", "detsync", false},
		{"allocbudget_bad", "allocbudget", true},
		{"allocbudget_good", "allocbudget", false},
	}
	l := testLoader(t)
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			if tc.analyzer == "allocbudget" && !allocbudgetToolchainMatches(t, l) {
				t.Skipf("budget recorded under a different Go release; allocbudget skips itself")
			}
			a := AnalyzerByName(tc.analyzer)
			if a == nil {
				t.Fatalf("no analyzer named %q", tc.analyzer)
			}
			pkg := loadFixture(t, l, tc.dir)
			want := wantLines(l, pkg, tc.analyzer)
			if tc.bad && len(want) == 0 {
				t.Fatalf("bad fixture %s has no want markers", tc.dir)
			}
			if !tc.bad && len(want) != 0 {
				t.Fatalf("good fixture %s has want markers", tc.dir)
			}
			got := make(map[int]bool)
			for _, f := range Unsuppressed(Run(l.Fset(), []*Package{pkg}, []*Analyzer{a})) {
				if f.Analyzer != tc.analyzer {
					t.Errorf("unexpected %s finding in %s: %s", f.Analyzer, tc.dir, f)
					continue
				}
				got[f.Pos.Line] = true
			}
			for line := range want {
				if !got[line] {
					t.Errorf("%s: expected %s finding on line %d, got none", tc.dir, tc.analyzer, line)
				}
			}
			for line := range got {
				if !want[line] {
					t.Errorf("%s: unexpected %s finding on line %d", tc.dir, tc.analyzer, line)
				}
			}
			if t.Failed() {
				t.Logf("want lines %v, got lines %v", lineSet(want), lineSet(got))
			}
		})
	}
}

// allocbudgetToolchainMatches reports whether the committed budget was
// recorded under the running Go release; when it was not, the analyzer
// deliberately no-ops and its fixtures cannot fire.
func allocbudgetToolchainMatches(t *testing.T, l *Loader) bool {
	t.Helper()
	budget, _, err := loadBudget(l.ModDir())
	if err != nil {
		t.Fatalf("loading budget: %v", err)
	}
	return budget.Go == goRelease(runtime.Version())
}

// TestSuppression checks the //lint:ignore mechanism end to end: valid
// suppressions (line-above and same-line) cancel findings and carry their
// reasons; a reason-less suppression is not honored and is itself reported.
func TestSuppression(t *testing.T) {
	l := testLoader(t)
	pkg := loadFixture(t, l, "suppressed")
	findings := Run(l.Fset(), []*Package{pkg}, Analyzers())

	var suppressed, unsuppressed, malformed []Finding
	for _, f := range findings {
		switch {
		case f.Suppressed:
			suppressed = append(suppressed, f)
		case f.Analyzer == "lint":
			malformed = append(malformed, f)
		default:
			unsuppressed = append(unsuppressed, f)
		}
	}
	if len(suppressed) != 2 {
		t.Errorf("want 2 suppressed seedrand findings, got %d: %v", len(suppressed), suppressed)
	}
	for _, f := range suppressed {
		if f.Analyzer != "seedrand" || f.SuppressReason == "" {
			t.Errorf("suppressed finding missing analyzer/reason: %+v", f)
		}
	}
	if len(malformed) != 1 {
		t.Errorf("want 1 malformed-suppression finding, got %d: %v", len(malformed), malformed)
	}
	want := wantLines(l, pkg, "nopanic")
	if len(unsuppressed) != len(want) {
		t.Errorf("want %d unsuppressed findings, got %d: %v", len(want), len(unsuppressed), unsuppressed)
	}
	for _, f := range unsuppressed {
		if f.Analyzer != "nopanic" || !want[f.Pos.Line] {
			t.Errorf("unexpected unsuppressed finding: %s", f)
		}
	}
}

// TestSuppressionHygiene checks the rules that keep //lint:ignore honest
// beyond the malformed case: a suppression whose analyzer ran but matched
// nothing is reported stale, and a typo'd analyzer name is reported
// instead of silently suppressing nothing.
func TestSuppressionHygiene(t *testing.T) {
	l := testLoader(t)
	pkg := loadFixture(t, l, "suppressed_stale")
	var stale, unknown, other []Finding
	for _, f := range Unsuppressed(Run(l.Fset(), []*Package{pkg}, Analyzers())) {
		switch {
		case f.Analyzer == "lint" && strings.Contains(f.Message, "stale"):
			stale = append(stale, f)
		case f.Analyzer == "lint" && strings.Contains(f.Message, "unknown analyzer"):
			unknown = append(unknown, f)
		default:
			other = append(other, f)
		}
	}
	if len(stale) != 1 {
		t.Errorf("want 1 stale-suppression finding, got %d: %v", len(stale), stale)
	}
	if len(unknown) != 1 {
		t.Errorf("want 1 unknown-analyzer finding, got %d: %v", len(unknown), unknown)
	}
	if len(other) != 0 {
		t.Errorf("unexpected findings in hygiene fixture: %v", other)
	}
}

// TestSelfClean is the gate future PRs must keep green: the full analyzer
// suite over every package in the repository reports zero unsuppressed
// findings. EnabledAnalyzers honors LVALINT_SKIP, mirroring what ci.sh
// actually runs on machines whose toolchain cannot satisfy allocbudget.
func TestSelfClean(t *testing.T) {
	l := testLoader(t)
	dirs, err := ExpandPatterns(l.ModDir(), []string{"./..."})
	if err != nil {
		t.Fatalf("expanding ./...: %v", err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) < 20 {
		t.Fatalf("expected to load the whole repo, got only %d packages", len(pkgs))
	}
	for _, f := range Unsuppressed(Run(l.Fset(), pkgs, EnabledAnalyzers())) {
		t.Errorf("unsuppressed finding: %s", f)
	}
}

// TestExpandPatternsTestdata checks that explicit testdata patterns are
// honored (the fixtures must be reachable by the CLI) while plain walks
// skip testdata.
func TestExpandPatternsTestdata(t *testing.T) {
	l := testLoader(t)
	all, err := ExpandPatterns(l.ModDir(), []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range all {
		if strings.Contains(d, "testdata") {
			t.Errorf("./... walk included testdata dir %s", d)
		}
	}
	fixtures, err := ExpandPatterns(l.ModDir(), []string{"./internal/lint/testdata/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) < 10 {
		t.Errorf("testdata walk found only %d fixture dirs", len(fixtures))
	}
}
