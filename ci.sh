#!/usr/bin/env bash
# ci.sh — the repository's full verification gate. Run it locally before
# pushing; .github/workflows/ci.yml runs the same steps.
#
#   build  — go build ./...
#   vet    — go vet ./...
#   lint   — go run ./cmd/lvalint ./...   (project invariants, see DESIGN.md)
#   test   — go test ./...
#   race   — go test -race ./...
#
# `./ci.sh bench` instead runs the benchmark suite once (-benchtime=1x) and
# writes the machine-readable go-test event stream to BENCH_<stamp>.json so
# CI can archive performance snapshots; it is advisory, not a gate.
#
# Tier-1 (the minimum every PR must keep green) is build + test; the other
# steps are the determinism/validation gate this repo's results depend on.
set -euo pipefail
cd "$(dirname "$0")"

step() {
    echo "==> $*"
    "$@"
}

if [[ "${1:-}" == "bench" ]]; then
    stamp="$(date -u +%Y%m%dT%H%M%SZ)"
    out="BENCH_${stamp}.json"
    echo "==> go test -bench (single iteration) -> ${out}"
    go test -json -run '^$' -bench . -benchtime=1x -benchmem ./... > "${out}"
    echo "ci.sh: benchmark snapshot written to ${out}"
    exit 0
fi

step go build ./...
step go vet ./...
step go run ./cmd/lvalint ./...
step go test ./...
step go test -race ./...
echo "ci.sh: all checks passed"
