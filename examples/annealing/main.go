// Annealing: run the canneal kernel — the paper's highest-MPKI benchmark —
// under load value approximation, comparing against the idealized load
// value predictor and the GHB prefetcher. Canneal is the workload where
// the contrast is starkest: its random swap targets defeat the prefetcher
// (more fetches, no MPKI reduction) and exact-match prediction (integer
// coordinates rarely repeat exactly), while LVA's averaged coordinates
// keep the annealer converging.
//
//	go run ./examples/annealing
package main

import (
	"fmt"

	"lva"
)

const seed = 42

func main() {
	w := lva.NewCanneal()

	pcfg := lva.DefaultSimConfig()
	pcfg.Attach = lva.AttachNone
	psim := lva.NewSimulator(pcfg)
	preciseOut := w.Run(psim, seed)
	precise := psim.Result()
	fmt.Printf("canneal: %d blocks, %d swap steps, precise MPKI %.2f, routing cost %.0f\n\n",
		w.Blocks, w.Steps, precise.RawMPKI(),
		preciseOut.(lva.CannealOutput).RoutingCost)

	type config struct {
		name  string
		build func() lva.SimConfig
	}
	configs := []config{
		{"lva", func() lva.SimConfig { return lva.DefaultSimConfig() }},
		{"lva-deg4", func() lva.SimConfig {
			c := lva.DefaultSimConfig()
			c.Approx.Degree = 4
			return c
		}},
		{"lva-deg16", func() lva.SimConfig {
			c := lva.DefaultSimConfig()
			c.Approx.Degree = 16
			return c
		}},
		{"lvp-ideal", func() lva.SimConfig {
			c := lva.DefaultSimConfig()
			c.Attach = lva.AttachLVP
			return c
		}},
		{"prefetch-4", func() lva.SimConfig {
			c := lva.DefaultSimConfig()
			c.Attach = lva.AttachPrefetch
			c.Prefetch.Degree = 4
			return c
		}},
	}

	fmt.Printf("%-11s %10s %10s %12s %10s\n", "config", "effMPKI", "coverage", "fetchRatio", "costErr")
	for _, cf := range configs {
		sim := lva.NewSimulator(cf.build())
		out := w.Run(sim, seed)
		res := sim.Result()
		fmt.Printf("%-11s %10.3f %9.1f%% %11.2fx %9.2f%%\n",
			cf.name, res.EffectiveMPKI(), res.Coverage()*100,
			float64(res.Fetches)/float64(precise.Fetches),
			out.Error(preciseOut)*100)
	}
	fmt.Println("\nexpected: LVA slashes MPKI and (with degree) fetches at a small cost error;")
	fmt.Println("LVP finds almost no exact matches; the prefetcher multiplies fetches for nothing.")
}
