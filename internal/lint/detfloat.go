package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// detfloatAnalyzer catches a subtle nondeterminism source: floating-point
// accumulation over Go map iteration. Map order varies run to run and FP
// addition is not associative, so a sum accumulated in map order can differ
// in the last bits between runs — enough to flip a rounded figure. Iterate
// over sorted keys instead.
var detfloatAnalyzer = &Analyzer{
	Name: "detfloat",
	Doc:  "floating-point accumulation over map iteration is order-nondeterministic; sort keys first",
	Run:  runDetfloat,
}

func runDetfloat(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Pkg.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(p, rs)
			return true
		})
	}
}

// checkMapRangeBody flags float accumulators updated inside a map-range
// body: `sum += v`, `sum -= v`, `sum *= v`, `sum /= v` and the spelled-out
// `sum = sum + v` where sum is declared outside the range body.
func checkMapRangeBody(p *Pass, rs *ast.RangeStmt) {
	declaredOutside := func(e ast.Expr) bool {
		id, ok := unwrapIdentExpr(e)
		if !ok {
			return false
		}
		obj := p.Pkg.Info.ObjectOf(id)
		if obj == nil {
			return false
		}
		pos := obj.Pos()
		return pos < rs.Body.Pos() || pos > rs.Body.End()
	}
	isFloat := func(e ast.Expr) bool {
		t := p.Pkg.Info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		lhs := as.Lhs[0]
		if !isFloat(lhs) || !declaredOutside(lhs) {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			p.Reportf(as.Pos(), "floating-point accumulation over map iteration order is nondeterministic: iterate over sorted keys instead")
		case token.ASSIGN:
			// sum = sum + v (or sum = v + sum).
			bin, ok := as.Rhs[0].(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				lhsText := exprText(lhs)
				if exprText(bin.X) == lhsText || exprText(bin.Y) == lhsText {
					p.Reportf(as.Pos(), "floating-point accumulation over map iteration order is nondeterministic: iterate over sorted keys instead")
				}
			}
		}
		return true
	})
}

// exprText renders an expression for structural comparison.
func exprText(e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), e)
	return buf.String()
}
