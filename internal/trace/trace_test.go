package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"lva/internal/value"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "sample",
		Accesses: []Access{
			{PC: 0x400, Addr: 0x1000, Value: value.FromFloat(3.14), Gap: 7, Thread: 0, Op: Load, Approx: true},
			{PC: 0x404, Addr: 0x1008, Value: value.FromInt(-5), Gap: 0, Thread: 1, Op: Load, Approx: false},
			{PC: 0x408, Addr: 0x2000, Gap: 12, Thread: 2, Op: Store},
			{PC: 0x40c, Addr: 0x2040, Value: value.FromInt(9), Gap: 1, Thread: 3, Op: Load, Approx: true},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != tr.Name || got.Len() != tr.Len() {
		t.Fatalf("header mismatch: %q/%d", got.Name, got.Len())
	}
	for i := range tr.Accesses {
		if got.Accesses[i] != tr.Accesses[i] {
			t.Fatalf("record %d: %+v != %+v", i, got.Accesses[i], tr.Accesses[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pcs []uint64, flags []uint8) bool {
		tr := &Trace{Name: "prop"}
		for i, pc := range pcs {
			var fl uint8
			if i < len(flags) {
				fl = flags[i]
			}
			a := Access{
				PC:     pc,
				Addr:   pc ^ 0xABCD,
				Gap:    uint32(pc % 1000),
				Thread: fl % 4,
				Approx: fl&8 != 0,
			}
			if fl&16 != 0 {
				a.Op = Store
			}
			if fl&32 != 0 {
				a.Value = value.FromFloat(float64(pc))
			} else {
				a.Value = value.FromInt(int64(pc))
			}
			tr.Append(a)
		}
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Accesses {
			if got.Accesses[i] != tr.Accesses[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestThreadsAndSplit(t *testing.T) {
	tr := sampleTrace()
	if tr.Threads() != 4 {
		t.Fatalf("Threads = %d", tr.Threads())
	}
	parts := tr.Split()
	if len(parts) != 4 {
		t.Fatalf("Split produced %d traces", len(parts))
	}
	total := 0
	for i, p := range parts {
		for _, a := range p.Accesses {
			if int(a.Thread) != i {
				t.Fatalf("thread %d access in split %d", a.Thread, i)
			}
		}
		total += p.Len()
	}
	if total != tr.Len() {
		t.Fatalf("split lost accesses: %d != %d", total, tr.Len())
	}
	if (&Trace{}).Threads() != 0 {
		t.Fatal("empty trace thread count")
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] ^= 0xFF
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted magic must fail")
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("unsupported version must fail")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("truncated stream must fail")
	}
	if _, err := Read(bytes.NewReader(raw[:3])); err == nil {
		t.Fatal("truncated header must fail")
	}
}

func TestOpString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatal("op strings")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Trace{Name: "empty"}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil || got.Len() != 0 || got.Name != "empty" {
		t.Fatalf("empty roundtrip: %v %v", got, err)
	}
}
