package experiments

import (
	"fmt"

	"lva/internal/core"
	"lva/internal/fullsys"
	"lva/internal/memsim"
	"lva/internal/workloads"
)

// Ablations beyond the paper's figures, covering design choices the paper
// discusses but does not plot: approximator table size and associativity
// (§VII-A hardware budget, §VI-A aliasing), the LHB computation function
// (§VI: "we tried different LHB functions such as strides and deltas and
// found average to be most accurate"), the proportional-confidence
// future-work optimization (§III-B), and the deprioritized low-power
// training lane (§VI-C).

// ablationTableSizes sweeps the approximator-table capacity.
var ablationTableSizes = []int{64, 128, 256, 512, 1024}

// AblationTable sweeps approximator-table entries (direct-mapped) and, at
// the baseline 512 entries, associativity. Expected shape: performance
// saturates at small tables (Figure 12 shows at most ~300 static
// approximate PCs), so even 64-256 entries retain most of the benefit;
// associativity helps the FP workloads that suffer hash aliasing.
func AblationTable() *Figure {
	f := &Figure{
		ID:         "ablation-table",
		Title:      "Approximator table size and associativity",
		ValueUnit:  "normalized MPKI",
		Benchmarks: workloads.Names(),
	}
	ablationWays := []int{2, 4}
	b := newBatch("ablation-table")
	precise := b.ctrPrecise()
	sizeRuns := make([][]*memsim.Result, len(ablationTableSizes))
	for si, entries := range ablationTableSizes {
		entries := entries
		sizeRuns[si] = b.ctrLVA(fmt.Sprintf("entries-%d", entries), func(w workloads.Workload) core.Config {
			cfg := BaselineFor(w)
			cfg.TableEntries = entries
			return cfg
		})
	}
	wayRuns := make([][]*memsim.Result, len(ablationWays))
	for wi, ways := range ablationWays {
		ways := ways
		wayRuns[wi] = b.ctrLVA(fmt.Sprintf("ways-%d", ways), func(w workloads.Workload) core.Config {
			cfg := BaselineFor(w)
			cfg.TableWays = ways
			return cfg
		})
	}
	b.run()
	for si, entries := range ablationTableSizes {
		f.Rows = append(f.Rows, Row{Label: fmt.Sprintf("entries-%d", entries), Values: ctrMPKIValues(sizeRuns[si], precise)})
	}
	for wi, ways := range ablationWays {
		f.Rows = append(f.Rows, Row{Label: fmt.Sprintf("512-entries-%d-way", ways), Values: ctrMPKIValues(wayRuns[wi], precise)})
	}
	f.Notes = append(f.Notes, "paper §VII-A: the table only needs to hold ~300 entries; LVA is feasible on a small hardware budget")
	return f
}

// AblationCompute compares the LHB computation functions. Expected shape:
// average wins on error (the paper's finding); last-value is competitive
// for run-structured data; stride overshoots on non-linear streams.
func AblationCompute() *Figure {
	f := &Figure{
		ID:         "ablation-compute",
		Title:      "LHB computation function f: average vs last-value vs stride",
		ValueUnit:  "normalized MPKI / error fraction",
		Benchmarks: workloads.Names(),
	}
	kinds := []core.ComputeKind{core.ComputeAverage, core.ComputeLast, core.ComputeStride}
	b := newBatch("ablation-compute")
	precise := b.precise()
	kindRuns := make([][]RunResult, len(kinds))
	for ki, kind := range kinds {
		kind := kind
		kindRuns[ki] = b.lva(kind.String(), func(w workloads.Workload) core.Config {
			cfg := BaselineFor(w)
			cfg.Compute = kind
			return cfg
		})
	}
	b.run()
	for ki, kind := range kinds {
		f.Rows = append(f.Rows,
			Row{Label: "MPKI " + kind.String(), Values: mpkiValues(kindRuns[ki], precise)},
			Row{Label: "error " + kind.String(), Values: errorValues(kindRuns[ki], precise)})
	}
	f.Notes = append(f.Notes, "paper §VI: average was found the most accurate computation function")
	return f
}

// AblationLHB sweeps the local-history-buffer depth. Expected shape: a
// single-entry LHB (last-value approximation) loses accuracy for noisy FP
// data, deep LHBs smooth too much and react slowly to run boundaries; the
// paper's 4 entries sit at the knee.
func AblationLHB() *Figure {
	f := &Figure{
		ID:         "ablation-lhb",
		Title:      "Local history buffer depth",
		ValueUnit:  "normalized MPKI / error fraction",
		Benchmarks: workloads.Names(),
	}
	depths := []int{1, 2, 4, 8}
	b := newBatch("ablation-lhb")
	precise := b.precise()
	depthRuns := make([][]RunResult, len(depths))
	for di, depth := range depths {
		depth := depth
		depthRuns[di] = b.lva(fmt.Sprintf("lhb-%d", depth), func(w workloads.Workload) core.Config {
			cfg := BaselineFor(w)
			cfg.LHBSize = depth
			return cfg
		})
	}
	b.run()
	for di, depth := range depths {
		f.Rows = append(f.Rows,
			Row{Label: fmt.Sprintf("MPKI lhb-%d", depth), Values: mpkiValues(depthRuns[di], precise)},
			Row{Label: fmt.Sprintf("error lhb-%d", depth), Values: errorValues(depthRuns[di], precise)})
	}
	f.Notes = append(f.Notes, "paper Table II: 4 LHB entries; average over a short window balances accuracy and reactivity")
	return f
}

// AblationConfidence evaluates the §III-B future-work optimization:
// adjusting the confidence counter by more than one when the approximation
// is far outside the window. Expected shape: same-or-better error at
// slightly lower coverage (bad entries are quarantined faster).
func AblationConfidence() *Figure {
	f := &Figure{
		ID:         "ablation-conf",
		Title:      "Proportional confidence updates (§III-B future work)",
		ValueUnit:  "coverage fraction / error fraction",
		Benchmarks: workloads.Names(),
	}
	props := []bool{false, true}
	b := newBatch("ablation-conf")
	precise := b.precise()
	propRuns := make([][]RunResult, len(props))
	for pi, prop := range props {
		prop := prop
		label := "step-1"
		if prop {
			label = "proportional"
		}
		propRuns[pi] = b.lva(label, func(w workloads.Workload) core.Config {
			cfg := BaselineFor(w)
			cfg.IntConfidence = true // give the counter authority everywhere
			cfg.ProportionalConfidence = prop
			return cfg
		})
	}
	b.run()
	for pi, prop := range props {
		label := "step-1"
		if prop {
			label = "proportional"
		}
		covRow := Row{Label: "coverage " + label}
		for _, r := range propRuns[pi] {
			covRow.Values = append(covRow.Values, r.Sim.Coverage())
		}
		f.Rows = append(f.Rows, covRow,
			Row{Label: "error " + label, Values: errorValues(propRuns[pi], precise)})
	}
	return f
}

// ExtLane evaluates the §VI-C optimization: training fetches ride a
// deprioritized, low-power NoC lane plus slower memory. Expected shape:
// speedup essentially unchanged (training is off the critical path; LVA is
// resilient to the extra value delay) while NoC fetch energy drops.
func ExtLane() *Figure {
	f := &Figure{
		ID:         "ext-lane",
		Title:      "Low-power training lane (§VI-C): speedup and energy impact",
		ValueUnit:  "speedup fraction / energy-savings fraction",
		Benchmarks: workloads.Names(),
	}
	const degree = 4
	mk := func(label string, lane *fullsys.TrainingLaneConfig) []fullsys.Result {
		out := make([]fullsys.Result, len(workloads.Names()))
		forEachWorkload("ext-lane/"+label, func(i int, w workloads.Workload) {
			acfg := BaselineFor(w)
			acfg.Degree = degree
			acfg.ValueDelay = 1
			cfg := fullsys.DefaultConfig()
			cfg.Approx = &acfg
			cfg.TrainingLane = lane
			out[i] = runFullsys(w, cfg)
		})
		return out
	}
	precise := make([]fullsys.Result, len(workloads.Names()))
	forEachWorkload("ext-lane/precise", func(i int, w workloads.Workload) {
		precise[i] = fullSystemSweep(w).precise
	})
	fast := mk("fast-lane", nil)
	slow := mk("slow-lane", fullsys.DefaultTrainingLane())

	speedFast := Row{Label: "speedup fast-lane"}
	speedSlow := Row{Label: "speedup slow-lane"}
	enFast := Row{Label: "energy savings fast-lane"}
	enSlow := Row{Label: "energy savings slow-lane"}
	for i := range precise {
		speedFast.Values = append(speedFast.Values, float64(precise[i].Cycles)/float64(fast[i].Cycles)-1)
		speedSlow.Values = append(speedSlow.Values, float64(precise[i].Cycles)/float64(slow[i].Cycles)-1)
		enFast.Values = append(enFast.Values, 1-fast[i].Energy.TotalPJ()/precise[i].Energy.TotalPJ())
		enSlow.Values = append(enSlow.Values, 1-slow[i].Energy.TotalPJ()/precise[i].Energy.TotalPJ())
	}
	f.Rows = []Row{speedFast, speedSlow, enFast, enSlow}
	f.Notes = append(f.Notes, "paper §VI-C: LVA's value-delay resilience lets approximate fetches take slow, low-energy paths without hurting performance")
	return f
}
