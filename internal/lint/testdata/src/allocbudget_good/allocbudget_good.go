// Package allocbudget_good meets its committed hot-path budget: tiny
// inlinable functions with zero heap traffic.
package allocbudget_good

// Counter is a hot-path-shaped accumulator.
type Counter struct {
	n int
}

// Bump stays well under its inline-cost ceiling and allocates nothing.
func (c *Counter) Bump() {
	c.n++
}

// Sum folds a slice without touching the heap.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
