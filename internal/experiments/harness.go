// Package experiments contains one driver per table/figure of the paper's
// evaluation (§VI), plus the shared harness that runs a workload kernel
// under a given memory-hierarchy configuration and measures MPKI, fetches
// and final output error exactly as the paper's two-phase methodology does.
package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"

	"lva/internal/core"
	"lva/internal/memsim"
	"lva/internal/obs/attr"
	"lva/internal/prefetch"
	"lva/internal/workloads"
)

// DefaultSeed makes every experiment deterministic end-to-end.
const DefaultSeed uint64 = 42

// RunResult bundles one simulated execution of a kernel.
type RunResult struct {
	Output workloads.Output
	Sim    memsim.Result
}

// RunPrecise executes the kernel with no approximation attached: the
// baseline against which MPKI is normalized and output error measured.
// Like all Run* entry points it is memoized in the process-wide run cache.
func RunPrecise(w workloads.Workload, seed uint64) RunResult {
	return cachedRun(runKey("precise", w, "", seed), "precise/"+w.Name(), true, func() RunResult {
		cfg := memsim.DefaultConfig()
		cfg.Attach = memsim.AttachNone
		return runWith(w, cfg, seed)
	})
}

// RunLVA executes the kernel with a load value approximator built from
// coreCfg attached to the L1.
func RunLVA(w workloads.Workload, coreCfg core.Config, seed uint64) RunResult {
	return cachedRun(runKey("lva", w, fmt.Sprintf("%#v", coreCfg), seed), "lva/"+w.Name(), false, func() RunResult {
		cfg := memsim.DefaultConfig()
		cfg.Attach = memsim.AttachLVA
		cfg.Approx = coreCfg
		return runWith(w, cfg, seed)
	})
}

// RunLVP executes the kernel with the idealized load value predictor
// baseline (exact-match coverage, always fetch).
func RunLVP(w workloads.Workload, coreCfg core.Config, seed uint64) RunResult {
	return cachedRun(runKey("lvp", w, fmt.Sprintf("%#v", coreCfg), seed), "lvp/"+w.Name(), false, func() RunResult {
		cfg := memsim.DefaultConfig()
		cfg.Attach = memsim.AttachLVP
		cfg.Approx = coreCfg
		return runWith(w, cfg, seed)
	})
}

// prefetchKey is the canonical fingerprint of a GHB-prefetcher point.
func prefetchKey(w workloads.Workload, degree int, seed uint64) string {
	return runKey("prefetch", w, fmt.Sprintf("%#v|degree=%d", prefetch.DefaultConfig(), degree), seed)
}

// RunPrefetch executes the kernel with the GHB prefetcher at the given
// degree (applied to all data, as in the paper).
func RunPrefetch(w workloads.Workload, degree int, seed uint64) RunResult {
	return cachedRun(prefetchKey(w, degree, seed), fmt.Sprintf("prefetch-%d/%s", degree, w.Name()), false, func() RunResult {
		cfg := memsim.DefaultConfig()
		cfg.Attach = memsim.AttachPrefetch
		p := prefetch.DefaultConfig()
		p.Degree = degree
		cfg.Prefetch = p
		return runWith(w, cfg, seed)
	})
}

func runWith(w workloads.Workload, cfg memsim.Config, seed uint64) RunResult {
	sim := memsim.New(cfg)
	rec := attrRecorder(w, cfg, seed)
	if rec != nil {
		sim.SetAttribution(rec)
	}
	pp := phaseProfiler(w, cfg, seed)
	var ppStart time.Time
	if pp != nil {
		sim.SetPhaseProfile(pp)
		ppStart = time.Now()
	}
	out := w.Run(sim, seed)
	res := RunResult{Output: out, Sim: sim.Result()}
	if rec != nil {
		attr.Publish(rec)
	}
	if pp != nil {
		publishPhaseProfile(pp, ppStart)
	}
	return res
}

// attrRecorder builds the flight recorder for one simulation when
// attribution is enabled. The scope fingerprints the full design point —
// workload name, attachment and a short hash of the exact configuration and
// seed — so distinct points publish under distinct scopes while re-running
// the same point (cache disabled, repeated figures) republishes
// identically. Precise runs carry no annotated-load machinery worth
// attributing and get no recorder.
func attrRecorder(w workloads.Workload, cfg memsim.Config, seed uint64) *attr.Recorder {
	if !attr.Enabled() || cfg.Attach == memsim.AttachNone {
		return nil
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v|%#v|seed=%d", w, cfg, seed)))
	scope := fmt.Sprintf("%s/%s/%s", w.Name(), cfg.Attach, hex.EncodeToString(sum[:4]))
	return attr.NewRecorder(scope)
}

// BaselineFor returns the paper's Table II approximator configuration,
// with the confidence window applied only to floating-point data: the
// baseline uses a ±10% window for FP and no confidence for integers.
func BaselineFor(w workloads.Workload) core.Config {
	cfg := core.DefaultConfig()
	if !w.FloatData() {
		cfg.IntConfidence = false
	}
	return cfg
}

// ErrorVs computes the paper's output-error metric for an approximate run
// against the precise run of the same kernel and seed.
func ErrorVs(approx, precise RunResult) float64 {
	return approx.Output.Error(precise.Output)
}
