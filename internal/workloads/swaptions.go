package workloads

import (
	"math"

	"lva/internal/memsim"
)

// Swaptions stands in for PARSEC swaptions: Monte-Carlo pricing of a small
// portfolio of swaptions under an HJM-style forward-rate evolution. Its
// working set (the forward curve and swaption parameters) fits easily in
// the L1, giving the near-zero precise MPKI the paper reports (4.92e-05);
// the kernel is compute-bound. The floating-point input arrays (forward
// curve, parameters) are annotated approximate.
type Swaptions struct {
	// NSwaptions is the portfolio size.
	NSwaptions int
	// Paths is the number of Monte-Carlo paths per swaption.
	Paths int
	// CurvePoints is the forward-curve resolution.
	CurvePoints int
	// TickPerPath models the per-path simulation cost (rate evolution,
	// discounting), calibrated for a near-zero MPKI.
	TickPerPath int
}

// NewSwaptions returns the calibrated default configuration.
func NewSwaptions() *Swaptions {
	return &Swaptions{NSwaptions: 16, Paths: 300, CurvePoints: 32, TickPerPath: 2200}
}

// Name implements Workload.
func (s *Swaptions) Name() string { return "swaptions" }

// FloatData implements Workload.
func (s *Swaptions) FloatData() bool { return true }

// FeedbackFree implements Workload: the annotated maturity load selects
// the forward-curve index to read (and the tenor bounds the annuity loop),
// so an approximated parameter changes the addresses of later accesses.
func (s *Swaptions) FeedbackFree() bool { return false }

// SwaptionsOutput is the list of swaption prices. The paper's metric:
// per-price relative error, averaged with equal weights.
type SwaptionsOutput struct {
	Prices []float64
}

// Error implements Output.
func (o SwaptionsOutput) Error(precise Output) float64 {
	p, ok := precise.(SwaptionsOutput)
	if !ok || len(p.Prices) != len(o.Prices) || len(o.Prices) == 0 {
		return 1
	}
	var sum float64
	for i := range o.Prices {
		ref := p.Prices[i]
		d := math.Abs(o.Prices[i] - ref)
		if ref != 0 {
			d /= math.Abs(ref)
		}
		sum += d
	}
	return sum / float64(len(o.Prices))
}

// Load-site identifiers.
const (
	swSiteCurve = iota
	swSiteStrike
	swSiteMaturity
	swSiteTenor
	swSiteVol
)

// Run implements Workload.
func (s *Swaptions) Run(mem *memsim.Sim, seed uint64) Output {
	rng := NewRNG(seed)
	arena := NewArena()

	curve := NewF64Array(arena, s.CurvePoints)
	strike := NewF64Array(arena, s.NSwaptions)
	maturity := NewF64Array(arena, s.NSwaptions)
	tenor := NewF64Array(arena, s.NSwaptions)
	vol := NewF64Array(arena, s.NSwaptions)

	// Upward-sloping forward curve with small humps.
	for i := 0; i < s.CurvePoints; i++ {
		t := float64(i) / float64(s.CurvePoints)
		curve.Data[i] = 0.02 + 0.03*t + 0.002*math.Sin(6*t)
	}
	for i := 0; i < s.NSwaptions; i++ {
		strike.Data[i] = 0.03 + 0.02*rng.Float64()
		maturity.Data[i] = 1 + float64(rng.Intn(5))
		tenor.Data[i] = 2 + float64(rng.Intn(8))
		vol.Data[i] = 0.1 + 0.15*rng.Float64()
	}

	prices := make([]float64, s.NSwaptions)
	for sw := 0; sw < s.NSwaptions; sw++ {
		mem.SetThread(sw * 4 / s.NSwaptions)

		var payoffSum float64
		steps := 8
		for p := 0; p < s.Paths; p++ {
			// Parameters are re-loaded every path (as the inner pricing
			// loop of the real kernel does); a cold-miss approximation
			// therefore perturbs a single path, not the whole price.
			k := strike.Load(mem, pcBase(idSwaptions, swSiteStrike), sw, true)
			mat := maturity.Load(mem, pcBase(idSwaptions, swSiteMaturity), sw, true)
			ten := tenor.Load(mem, pcBase(idSwaptions, swSiteTenor), sw, true)
			sg := vol.Load(mem, pcBase(idSwaptions, swSiteVol), sw, true)
			if sg < 0.01 {
				sg = 0.01
			}
			if mat < 0.25 {
				mat = 0.25
			}
			if ten < 0.25 {
				ten = 0.25
			}
			// Evolve a short rate along the forward curve with lognormal
			// shocks; price the underlying swap at maturity.
			idx := int(mat) * s.CurvePoints / 12
			if idx >= s.CurvePoints {
				idx = s.CurvePoints - 1
			}
			r := curve.Load(mem, pcBase(idSwaptions, swSiteCurve), idx, true)
			if r < 0.0001 {
				r = 0.0001
			}
			dt := mat / float64(steps)
			for st := 0; st < steps; st++ {
				r *= math.Exp((0.0-
					0.5*sg*sg)*dt + sg*math.Sqrt(dt)*rng.Norm())
			}
			// Swap value: annuity * (r - k), floored at zero (payer swaption).
			annuity := 0.0
			for y := 1; y <= int(ten); y++ {
				annuity += math.Exp(-r * float64(y))
			}
			pay := annuity * (r - k)
			if pay < 0 {
				pay = 0
			}
			payoffSum += pay * math.Exp(-0.02*mat)
			mem.Tick(uint64(s.TickPerPath))
		}
		prices[sw] = payoffSum / float64(s.Paths)
	}
	return SwaptionsOutput{Prices: prices}
}
