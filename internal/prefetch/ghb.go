// Package prefetch implements the paper's prefetching baseline: a Global
// History Buffer prefetcher (Nesbit & Smith) using local delta correlation
// with next-line fallback (§VI-D). The paper configures 2048 GHB entries and
// a 2048-entry index table to make the hardware budget comparable to the
// 512-entry/4-LHB approximator.
package prefetch

import "fmt"

// Config sizes the prefetcher.
type Config struct {
	// GHBEntries is the global history buffer depth (FIFO of miss
	// addresses). Paper: 2048.
	GHBEntries int
	// IndexEntries is the index-table size (PC -> newest GHB entry).
	// Paper: 2048.
	IndexEntries int
	// Degree is how many extra blocks to fetch per miss. A degree of 4
	// yields a 5:1 fetch-to-miss ratio.
	Degree int
	// BlockBytes is the cache line size used for next-line prefetching.
	BlockBytes int
}

// DefaultConfig returns the paper's prefetcher configuration with degree 4.
func DefaultConfig() Config {
	return Config{GHBEntries: 2048, IndexEntries: 2048, Degree: 4, BlockBytes: 64}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.GHBEntries <= 0:
		return fmt.Errorf("prefetch: GHB entries must be positive, got %d", c.GHBEntries)
	case c.IndexEntries <= 0 || c.IndexEntries&(c.IndexEntries-1) != 0:
		return fmt.Errorf("prefetch: index entries must be a positive power of two, got %d", c.IndexEntries)
	case c.Degree < 0:
		return fmt.Errorf("prefetch: degree must be >= 0, got %d", c.Degree)
	case c.BlockBytes <= 0 || c.BlockBytes&(c.BlockBytes-1) != 0:
		return fmt.Errorf("prefetch: block size must be a positive power of two, got %d", c.BlockBytes)
	}
	return nil
}

// ghbEntry is one slot of the global history buffer. prev links to the
// previous miss by the same index-table key; seq detects stale links after
// the FIFO wraps.
type ghbEntry struct {
	addr uint64
	prev int
	pseq uint64 // sequence number the prev link expects
	seq  uint64
}

type indexEntry struct {
	pos int
	seq uint64
}

// Stats counts prefetcher events.
type Stats struct {
	Misses   uint64 // demand misses observed
	Issued   uint64 // prefetch addresses produced
	DeltaHit uint64 // misses where a delta pattern was found
	NextLine uint64 // misses that fell back to next-line only
}

// Prefetcher is a GHB/local-delta-correlation prefetcher. Not safe for
// concurrent use.
type Prefetcher struct {
	cfg   Config
	ghb   []ghbEntry
	head  int
	seq   uint64
	index []indexEntry
	stats Stats
}

// New builds a prefetcher; it panics on an invalid Config.
func New(cfg Config) *Prefetcher {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Prefetcher{
		cfg:   cfg,
		ghb:   make([]ghbEntry, cfg.GHBEntries),
		index: make([]indexEntry, cfg.IndexEntries),
	}
	for i := range p.ghb {
		p.ghb[i].prev = -1
	}
	for i := range p.index {
		p.index[i].pos = -1
	}
	return p
}

// Config returns the prefetcher configuration.
func (p *Prefetcher) Config() Config { return p.cfg }

// Stats returns a copy of the event counters.
func (p *Prefetcher) Stats() Stats { return p.stats }

func (p *Prefetcher) indexSlot(pc uint64) int {
	h := pc ^ (pc >> 13)
	return int(h & uint64(p.cfg.IndexEntries-1))
}

// history walks the link chain for pc's slot and returns up to max most
// recent miss addresses (newest first), starting from the just-inserted one.
func (p *Prefetcher) history(start int, max int) []uint64 {
	addrs := make([]uint64, 0, max)
	pos := start
	var expect uint64 = p.ghb[start].seq
	for pos >= 0 && len(addrs) < max {
		e := p.ghb[pos]
		if e.seq != expect {
			break // FIFO overwrote this link target
		}
		addrs = append(addrs, e.addr)
		pos = e.prev
		expect = e.pseq
	}
	return addrs
}

// OnMiss records a demand miss (block-aligned address) for the given load
// PC and returns the block addresses to prefetch, at most Degree of them.
// Local delta correlation: the deltas between this PC's recent misses are
// matched and extended; when no correlated pattern exists the prefetcher
// falls back to next-line.
func (p *Prefetcher) OnMiss(pc, blockAddr uint64) []uint64 {
	p.stats.Misses++
	slot := p.indexSlot(pc)

	// Insert into GHB, linking to the previous miss for this slot.
	p.seq++
	prev := -1
	var pseq uint64
	if ie := p.index[slot]; ie.pos >= 0 && p.ghb[ie.pos].seq == ie.seq {
		prev = ie.pos
		pseq = ie.seq
	}
	p.ghb[p.head] = ghbEntry{addr: blockAddr, prev: prev, pseq: pseq, seq: p.seq}
	inserted := p.head
	p.index[slot] = indexEntry{pos: inserted, seq: p.seq}
	p.head = (p.head + 1) % len(p.ghb)

	if p.cfg.Degree == 0 {
		return nil
	}

	hist := p.history(inserted, 4) // newest first: current, m1, m2, m3
	targets := make([]uint64, 0, p.cfg.Degree)
	seen := map[uint64]bool{blockAddr: true}
	add := func(a uint64) {
		if !seen[a] && len(targets) < p.cfg.Degree {
			seen[a] = true
			targets = append(targets, a)
		}
	}

	if len(hist) >= 2 {
		d1 := int64(hist[0]) - int64(hist[1])
		matched := false
		if len(hist) >= 3 {
			d2 := int64(hist[1]) - int64(hist[2])
			matched = d1 == d2 && d1 != 0
		} else {
			matched = d1 != 0
		}
		if matched {
			p.stats.DeltaHit++
			next := int64(blockAddr)
			for i := 0; i < p.cfg.Degree; i++ {
				next += d1
				if next < 0 {
					break
				}
				add(uint64(next))
			}
		}
	}
	if len(targets) == 0 {
		// Next-line fallback.
		p.stats.NextLine++
		next := blockAddr
		for i := 0; i < p.cfg.Degree; i++ {
			next += uint64(p.cfg.BlockBytes)
			add(next)
		}
	}
	p.stats.Issued += uint64(len(targets))
	return targets
}

// Reset clears history and statistics, keeping the configuration.
func (p *Prefetcher) Reset() {
	for i := range p.ghb {
		p.ghb[i] = ghbEntry{prev: -1}
	}
	for i := range p.index {
		p.index[i] = indexEntry{pos: -1}
	}
	p.head, p.seq = 0, 0
	p.stats = Stats{}
}
