package isa

import (
	"fmt"

	"lva/internal/memsim"
)

// VM executes an assembled Program against a simulated memory hierarchy.
// Data memory is backed by sparse maps (one for integer lanes, one for
// float lanes); the precise value always lives there, and approximate
// loads consume whatever the hierarchy returns — the exact contract of
// the paper's hardware.
type VM struct {
	prog *Program
	mem  memsim.Memory

	R [32]int64
	F [32]float64

	intMem   map[uint64]int64
	floatMem map[uint64]float64

	// Executed counts retired instructions (VM-level, not Tick-inflated).
	Executed uint64
	// MaxSteps bounds execution to catch runaway programs (default 10M).
	MaxSteps uint64
}

// NewVM binds a program to a memory hierarchy.
func NewVM(prog *Program, mem memsim.Memory) *VM {
	return &VM{
		prog:     prog,
		mem:      mem,
		intMem:   make(map[uint64]int64),
		floatMem: make(map[uint64]float64),
		MaxSteps: 10_000_000,
	}
}

// PokeInt seeds integer data memory before execution.
func (v *VM) PokeInt(addr uint64, val int64) { v.intMem[addr] = val }

// PokeFloat seeds float data memory before execution.
func (v *VM) PokeFloat(addr uint64, val float64) { v.floatMem[addr] = val }

// PeekInt reads integer data memory after execution (the precise backing
// store, not an approximation).
func (v *VM) PeekInt(addr uint64) int64 { return v.intMem[addr] }

// PeekFloat reads float data memory after execution.
func (v *VM) PeekFloat(addr uint64) float64 { return v.floatMem[addr] }

// Run executes until halt, the end of the program, or MaxSteps.
func (v *VM) Run() error {
	pc := 0
	for steps := uint64(0); ; steps++ {
		if steps >= v.MaxSteps {
			return fmt.Errorf("isa: exceeded %d steps (infinite loop?)", v.MaxSteps)
		}
		if pc < 0 || pc >= len(v.prog.Insts) {
			return nil // fell off the end: implicit halt
		}
		in := v.prog.Insts[pc]
		v.Executed++
		v.R[0] = 0
		switch in.Op {
		case OpHalt:
			return nil
		case OpLi:
			v.setR(in.D, in.Imm)
		case OpFli:
			v.F[in.D] = in.FImm
		case OpMov:
			v.setR(in.D, v.R[in.A])
		case OpFmov:
			v.F[in.D] = v.F[in.A]
		case OpAdd:
			v.setR(in.D, v.R[in.A]+v.R[in.B])
		case OpSub:
			v.setR(in.D, v.R[in.A]-v.R[in.B])
		case OpMul:
			v.setR(in.D, v.R[in.A]*v.R[in.B])
		case OpDiv:
			if v.R[in.B] == 0 {
				return fmt.Errorf("isa: line %d: integer division by zero", in.Line)
			}
			v.setR(in.D, v.R[in.A]/v.R[in.B])
		case OpAddi:
			v.setR(in.D, v.R[in.A]+in.Imm)
		case OpFadd:
			v.F[in.D] = v.F[in.A] + v.F[in.B]
		case OpFsub:
			v.F[in.D] = v.F[in.A] - v.F[in.B]
		case OpFmul:
			v.F[in.D] = v.F[in.A] * v.F[in.B]
		case OpFdiv:
			v.F[in.D] = v.F[in.A] / v.F[in.B]
		case OpCvtf:
			v.F[in.D] = float64(v.R[in.A])
		case OpCvti:
			v.setR(in.D, int64(v.F[in.A]))
		case OpTick:
			v.mem.Tick(uint64(in.Imm))

		case OpLd, OpLdA:
			addr := uint64(v.R[in.A] + in.Off)
			precise := v.intMem[addr]
			got := v.mem.LoadInt(v.pcOf(pc), addr, precise, in.Op == OpLdA)
			v.setR(in.D, got)
		case OpFld, OpFldA:
			addr := uint64(v.R[in.A] + in.Off)
			precise := v.floatMem[addr]
			got := v.mem.LoadFloat(v.pcOf(pc), addr, precise, in.Op == OpFldA)
			v.F[in.D] = got
		case OpSt:
			addr := uint64(v.R[in.A] + in.Off)
			v.intMem[addr] = v.R[in.D]
			v.mem.Store(v.pcOf(pc), addr)
		case OpFst:
			addr := uint64(v.R[in.A] + in.Off)
			v.floatMem[addr] = v.F[in.D]
			v.mem.Store(v.pcOf(pc), addr)

		case OpBeq:
			if v.R[in.A] == v.R[in.B] {
				pc = int(in.Imm)
				continue
			}
		case OpBne:
			if v.R[in.A] != v.R[in.B] {
				pc = int(in.Imm)
				continue
			}
		case OpBlt:
			if v.R[in.A] < v.R[in.B] {
				pc = int(in.Imm)
				continue
			}
		case OpBge:
			if v.R[in.A] >= v.R[in.B] {
				pc = int(in.Imm)
				continue
			}
		case OpJmp:
			pc = int(in.Imm)
			continue
		default:
			return fmt.Errorf("isa: line %d: unimplemented opcode %d", in.Line, in.Op)
		}
		pc++
	}
}

// setR writes a register, keeping r0 hard-wired to zero.
func (v *VM) setR(d int, val int64) {
	if d != 0 {
		v.R[d] = val
	}
}

// pcOf returns the synthetic program counter of instruction index i.
func (v *VM) pcOf(i int) uint64 { return v.prog.PCBase + uint64(i)*4 }
