package experiments

import (
	"encoding/json"
	"fmt"
	"sort"
	"testing"
)

// decodeTrace parses a Chrome trace-event document as Perfetto would.
func decodeTrace(t *testing.T, b []byte) []traceEvent {
	t.Helper()
	var doc struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("timeline is not valid trace-event JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents
}

// TestTimelineCapture drives one figure under an active capture and checks
// the document shape: named process groups, figure spans, worker spans
// with queue-wait args, and simulation spans marked by cache outcome.
func TestTimelineCapture(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()
	if _, err := TimelineJSON(); err == nil {
		t.Fatal("TimelineJSON must error with no capture running")
	}
	StartTimeline()
	defer StopTimeline()
	if !TimelineActive() {
		t.Fatal("TimelineActive false after StartTimeline")
	}
	if _, err := RunAll("fig13"); err != nil {
		t.Fatal(err)
	}
	b, err := TimelineJSON()
	if err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, b)

	var metas, figSpans, workerSpans, simSpans int
	for _, e := range evs {
		switch {
		case e.Ph == "M":
			metas++
		case e.Ph == "X" && e.PID == tlPidFigures:
			figSpans++
			if e.Name != "fig13" {
				t.Errorf("unexpected figure span %q", e.Name)
			}
		case e.Ph == "X" && e.PID == tlPidWorkers:
			workerSpans++
			if _, ok := e.Args["queue_wait_us"]; !ok {
				t.Errorf("worker span %q missing queue_wait_us arg", e.Name)
			}
		case e.Ph == "X" && e.PID == tlPidSims:
			simSpans++
			if e.Args["cache"] != "miss" {
				t.Errorf("sim span %q not marked as a cache miss", e.Name)
			}
		}
	}
	if metas != 5 {
		t.Errorf("process_name metadata events = %d, want 5", metas)
	}
	if figSpans != 1 {
		t.Errorf("figure spans = %d, want 1", figSpans)
	}
	// fig13 schedules one precise + five mantissa-loss points.
	if workerSpans != 6 {
		t.Errorf("worker spans = %d, want 6", workerSpans)
	}
	if simSpans != 6 {
		t.Errorf("executed-simulation spans = %d, want 6", simSpans)
	}
	for _, e := range evs {
		if e.Ph == "X" && e.Dur < 1 {
			t.Errorf("span %q has zero width (Perfetto drops it)", e.Name)
		}
	}

	StopTimeline()
	if TimelineActive() {
		t.Fatal("TimelineActive true after StopTimeline")
	}
}

// canonicalize reduces a capture to its scheduling-independent shape: the
// sorted multiset of (pid, phase, name), dropping metadata events and the
// volatile fields (timestamps, durations, tids, queue waits).
func canonicalize(evs []traceEvent) []string {
	var out []string
	for _, e := range evs {
		if e.Ph == "M" {
			continue
		}
		out = append(out, fmt.Sprintf("%d|%s|%s", e.PID, e.Ph, e.Name))
	}
	sort.Strings(out)
	return out
}

// TestTimelineDeterministicAcrossParallelism checks the capture's canonical
// shape is identical at Parallelism 1 and 8: labels are derived from design
// points (not callers) and the singleflight cache fixes which points
// execute, so only timing may differ between schedules.
func TestTimelineDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("regenerates two figures twice")
	}
	saved := Parallelism
	defer func() {
		Parallelism = saved
		ResetRunCache()
		StopTimeline()
	}()

	capture := func(par int) []string {
		Parallelism = par
		ResetRunCache()
		StartTimeline()
		if _, err := RunAll("fig12", "fig13"); err != nil {
			t.Fatal(err)
		}
		b, err := TimelineJSON()
		if err != nil {
			t.Fatal(err)
		}
		StopTimeline()
		return canonicalize(decodeTrace(t, b))
	}

	p8 := capture(8)
	p1 := capture(1)
	if len(p8) != len(p1) {
		t.Fatalf("event counts differ: P=8 has %d, P=1 has %d", len(p8), len(p1))
	}
	for i := range p8 {
		if p8[i] != p1[i] {
			t.Fatalf("canonical event %d differs: P=8 %q, P=1 %q", i, p8[i], p1[i])
		}
	}
}
