// Package lint implements lvalint, the repository's custom static-analysis
// pass. It loads packages with the standard library's go/parser and go/types
// (no external module dependencies) and runs a suite of project-specific
// analyzers that enforce the simulator's determinism and validation
// invariants: seeded randomness, validated configurations, documented panic
// contracts, race-free goroutine writes and order-independent floating-point
// accumulation. See DESIGN.md "Static analysis & determinism guarantees".
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path within the module (e.g. lva/internal/core).
	Path string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Files are the parsed sources, including in-package _test.go files.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's resolution tables.
	Info *types.Info
	// TypeErrors collects type-check problems; analyzers still run on a
	// package with errors, but the driver reports them separately.
	TypeErrors []error
}

// Loader parses and type-checks packages inside one module, resolving
// intra-module imports itself and delegating everything else to the
// standard library's source importer (export data for the stdlib is not
// shipped with modern toolchains, so "source" mode is the dependency-free
// option).
type Loader struct {
	fset     *token.FileSet
	modDir   string
	modPath  string
	pkgs     map[string]*Package
	loading  map[string]bool
	fallback types.Importer
}

// NewLoader builds a loader rooted at the module directory containing
// go.mod. The module path is read from go.mod's module directive.
func NewLoader(modDir string) (*Loader, error) {
	abs, err := filepath.Abs(modDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:     fset,
		modDir:   abs,
		modPath:  modPath,
		pkgs:     make(map[string]*Package),
		loading:  make(map[string]bool),
		fallback: importer.ForCompiler(fset, "source", nil),
	}, nil
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModDir returns the absolute module root.
func (l *Loader) ModDir() string { return l.modDir }

// importPathFor maps an absolute directory inside the module to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modDir, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modDir)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// dirForImport maps an intra-module import path to its directory, or ""
// when the path belongs to another module.
func (l *Loader) dirForImport(path string) string {
	if path == l.modPath {
		return l.modDir
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modDir, filepath.FromSlash(rest))
	}
	return ""
}

// Import implements types.Importer: intra-module paths are loaded (and
// cached) by the loader itself; everything else falls back to the source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := l.dirForImport(path); dir != "" {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}

// LoadDir parses and type-checks the package in one directory. In-package
// _test.go files are included; external (_test-suffixed) test packages are
// skipped. Results are cached by import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		// Honor //go:build constraints (and GOOS/GOARCH filename rules) the
		// same way the compiler does, so constraint-gated twins (e.g. a
		// race-detector toggle) don't look like redeclarations.
		match, err := build.Default.MatchFile(abs, e.Name())
		if err != nil {
			return nil, fmt.Errorf("lint: matching %s: %w", e.Name(), err)
		}
		if !match {
			continue
		}
		names = append(names, filepath.Join(abs, e.Name()))
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", abs)
	}

	// Pick the primary (non-external-test) package name and keep only its
	// files: the package's own sources plus in-package tests.
	primary := ""
	for _, f := range files {
		if n := f.Name.Name; !strings.HasSuffix(n, "_test") {
			primary = n
			break
		}
	}
	if primary == "" {
		return nil, fmt.Errorf("lint: only external test files in %s", abs)
	}
	kept := files[:0]
	for _, f := range files {
		if f.Name.Name == primary {
			kept = append(kept, f)
		}
	}
	files = kept

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg := &Package{Path: path, Dir: abs, Files: files, Info: info}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	return pkg, nil
}

// ExpandPatterns resolves command-line package patterns to directories.
// Supported forms: "./...", "dir/...", "dir" and "." (all relative to cwd).
// Walks skip testdata, vendor and hidden directories unless the pattern
// root itself lies inside a testdata tree (so fixtures can be linted
// explicitly).
func ExpandPatterns(cwd string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "" || root == "." {
				root = cwd
			} else if !filepath.IsAbs(root) {
				root = filepath.Join(cwd, root)
			}
			inTestdata := strings.Contains(root, string(filepath.Separator)+"testdata")
			err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					name := d.Name()
					if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
						name == "vendor" || (name == "testdata" && !inTestdata)) {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(d.Name(), ".go") {
					add(filepath.Dir(p))
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}
