package attr

import (
	"reflect"
	"strconv"
	"sync"
	"testing"
)

// resetWindow restores the unset (default-window) state tests start from.
func resetWindow() { epochWindow.Store(0) }

func TestSiteTableGrowthKeepsCounts(t *testing.T) {
	r := NewRecorder("grow")
	const n = 2000
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			pc := uint64(0x400000 + i*4)
			r.Load(pc, uint64(i))
			if i%2 == 0 {
				r.Miss(pc, true, false)
			}
		}
	}
	if r.Sites() != n {
		t.Fatalf("Sites() = %d, want %d", r.Sites(), n)
	}
	s := r.Finalize()
	if len(s.Sites) != n {
		t.Fatalf("Finalize sites = %d, want %d", len(s.Sites), n)
	}
	for i := 1; i < len(s.Sites); i++ {
		if s.Sites[i-1].PC >= s.Sites[i].PC {
			t.Fatalf("sites not sorted by PC: %s before %s", s.Sites[i-1].PC, s.Sites[i].PC)
		}
	}
	for _, st := range s.Sites {
		if st.Loads != 3 {
			t.Fatalf("site %s: Loads = %d, want 3 (growth lost counts)", st.PC, st.Loads)
		}
	}
}

func TestZeroPCTracked(t *testing.T) {
	r := NewRecorder("zero")
	r.Load(0, 1)
	r.Load(0, 2)
	r.Miss(0, false, true)
	if r.Sites() != 1 {
		t.Fatalf("Sites() = %d, want 1", r.Sites())
	}
	s := r.Finalize()
	if len(s.Sites) != 1 || s.Sites[0].PC != "0x0" {
		t.Fatalf("zero-PC site missing: %+v", s.Sites)
	}
	if s.Sites[0].Loads != 2 || s.Sites[0].Fetches != 1 {
		t.Fatalf("zero-PC counters wrong: %+v", s.Sites[0])
	}
}

func TestTrainAccumulatesError(t *testing.T) {
	r := NewRecorder("train")
	r.Train(0x40, true, true, true, false, 0.02)
	r.Train(0x40, true, false, false, true, 0.30)
	r.Train(0x40, false, false, false, false, 0) // no approximation to judge
	s := r.Finalize()
	st := s.Sites[0]
	if st.Trainings != 3 || st.Accepts != 1 || st.Rejects != 1 {
		t.Fatalf("training counters wrong: %+v", st)
	}
	if st.ConfGained != 1 || st.ConfLost != 1 {
		t.Fatalf("confidence crossings wrong: %+v", st)
	}
	if want := (0.02 + 0.30) / 2; st.MeanRelErr != want {
		t.Fatalf("MeanRelErr = %v, want %v", st.MeanRelErr, want)
	}
	if st.MaxRelErr != 0.30 {
		t.Fatalf("MaxRelErr = %v, want 0.30", st.MaxRelErr)
	}
}

func TestEpochSealingAndRingWrap(t *testing.T) {
	SetEpochWindow(10)
	defer resetWindow()
	r := NewRecorder("ring")
	total := (epochRingCap + 88) * 10
	for i := 0; i < total; i++ {
		r.Load(0x40, uint64(i*3)) // 3 insts per load keeps Insts nonzero
	}
	if r.TotalEpochs() != epochRingCap+88 {
		t.Fatalf("TotalEpochs = %d, want %d", r.TotalEpochs(), epochRingCap+88)
	}
	s := r.Finalize()
	if s.DroppedEpochs != 88 {
		t.Fatalf("DroppedEpochs = %d, want 88", s.DroppedEpochs)
	}
	if len(s.Epochs) != epochRingCap {
		t.Fatalf("retained epochs = %d, want %d", len(s.Epochs), epochRingCap)
	}
	if s.Epochs[0].Index != 88 {
		t.Fatalf("oldest retained epoch index = %d, want 88 (ring should drop oldest)", s.Epochs[0].Index)
	}
	for i := 1; i < len(s.Epochs); i++ {
		if s.Epochs[i].Index != s.Epochs[i-1].Index+1 {
			t.Fatalf("epoch indices not consecutive at %d: %d after %d", i, s.Epochs[i].Index, s.Epochs[i-1].Index)
		}
	}
}

func TestFinalizeSealsPartialEpoch(t *testing.T) {
	SetEpochWindow(100)
	defer resetWindow()
	r := NewRecorder("partial")
	for i := 0; i < 250; i++ {
		r.Load(0x40, uint64(i))
	}
	s := r.Finalize()
	if len(s.Epochs) != 3 {
		t.Fatalf("epochs = %d, want 3 (two full + one partial)", len(s.Epochs))
	}
	if s.Epochs[2].Loads != 50 {
		t.Fatalf("partial epoch loads = %d, want 50", s.Epochs[2].Loads)
	}
}

func TestRunShorterThanOneWindow(t *testing.T) {
	SetEpochWindow(100)
	defer resetWindow()
	r := NewRecorder("short")
	for i := 0; i < 7; i++ {
		r.Load(0x40, uint64(i))
	}
	s := r.Finalize()
	if len(s.Epochs) != 1 {
		t.Fatalf("epochs = %d, want 1 (run shorter than one window still seals)", len(s.Epochs))
	}
	if s.Epochs[0].Loads != 7 {
		t.Fatalf("epoch loads = %d, want 7", s.Epochs[0].Loads)
	}
	if s.DroppedEpochs != 0 {
		t.Fatalf("DroppedEpochs = %d, want 0", s.DroppedEpochs)
	}
}

func TestExactMultipleWindowBoundary(t *testing.T) {
	SetEpochWindow(50)
	defer resetWindow()
	r := NewRecorder("exact")
	for i := 0; i < 150; i++ {
		r.Load(0x40, uint64(i))
	}
	s := r.Finalize()
	if len(s.Epochs) != 3 {
		t.Fatalf("epochs = %d, want exactly 3 (no empty trailing epoch at an exact multiple)", len(s.Epochs))
	}
	for i, e := range s.Epochs {
		if e.Loads != 50 {
			t.Fatalf("epoch %d loads = %d, want 50", i, e.Loads)
		}
	}
}

func TestRingWrapAccountingReconciles(t *testing.T) {
	SetEpochWindow(10)
	defer resetWindow()
	r := NewRecorder("reconcile")
	total := (epochRingCap+5)*10 + 4 // cap+5 full epochs, then a 4-load partial
	for i := 0; i < total; i++ {
		r.Load(0x40, uint64(i))
	}
	s := r.Finalize()
	if got, want := s.DroppedEpochs+len(s.Epochs), epochRingCap+6; got != want {
		t.Fatalf("dropped (%d) + retained (%d) = %d, want %d total epochs",
			s.DroppedEpochs, len(s.Epochs), got, want)
	}
	if s.DroppedEpochs != 6 {
		t.Fatalf("DroppedEpochs = %d, want 6", s.DroppedEpochs)
	}
	var loads uint64
	for _, e := range s.Epochs {
		loads += e.Loads
	}
	if want := uint64((epochRingCap-1)*10 + 4); loads != want {
		t.Fatalf("retained epoch loads = %d, want %d (full epochs + trailing partial)", loads, want)
	}
	if last := s.Epochs[len(s.Epochs)-1]; last.Loads != 4 {
		t.Fatalf("trailing partial epoch loads = %d, want 4", last.Loads)
	}
}

func TestEpochWindowDisabled(t *testing.T) {
	SetEpochWindow(-1)
	defer resetWindow()
	if EpochWindow() != 0 {
		t.Fatalf("EpochWindow() = %d, want 0 when disabled", EpochWindow())
	}
	r := NewRecorder("off")
	for i := 0; i < 1000; i++ {
		r.Load(0x40, uint64(i))
	}
	s := r.Finalize()
	if len(s.Epochs) != 0 || s.TotalEpochs != 0 {
		t.Fatalf("epochs recorded with window disabled: %+v", s)
	}
	if len(s.Sites) != 1 || s.Sites[0].Loads != 1000 {
		t.Fatal("per-site attribution must keep running with epochs disabled")
	}
}

func TestEpochStatsDerivedRates(t *testing.T) {
	e := Epoch{Loads: 100, Insts: 2000, Misses: 10, Covered: 5, Accepts: 3, Rejects: 1, ErrSum: 0.4}
	s := epochStats(e)
	if s.MPKI != 5.0 { // 10 misses * 1000 / 2000 insts
		t.Fatalf("MPKI = %v, want 5.0", s.MPKI)
	}
	if s.Coverage != 0.5 {
		t.Fatalf("Coverage = %v, want 0.5", s.Coverage)
	}
	if s.MeanRelErr != 0.1 {
		t.Fatalf("MeanRelErr = %v, want 0.1", s.MeanRelErr)
	}
}

func TestDriftRatio(t *testing.T) {
	mk := func(errs ...float64) ScopeStats {
		var s ScopeStats
		for i, e := range errs {
			s.Epochs = append(s.Epochs, EpochStats{Index: i, MeanRelErr: e, Accepts: 10})
		}
		return s
	}
	if ratio, ok := mk(0.1, 0.1, 0.2, 0.2).DriftRatio(); !ok || ratio != 2.0 {
		t.Fatalf("DriftRatio = %v, %v; want 2.0, true", ratio, ok)
	}
	if _, ok := mk(0.1).DriftRatio(); ok {
		t.Fatal("DriftRatio with one epoch must report not-ok")
	}
	var noJudged ScopeStats
	noJudged.Epochs = []EpochStats{{}, {}}
	if _, ok := noJudged.DriftRatio(); ok {
		t.Fatal("DriftRatio with no judged trainings must report not-ok")
	}
}

func TestPublishSnapshotRoundtrip(t *testing.T) {
	Reset()
	defer Reset()
	r := NewRecorder("bench/lva/cafe")
	r.Load(0x40, 10)
	r.Miss(0x40, true, false)
	r.Train(0x40, true, true, false, false, 0.05)
	Publish(r)

	// Replace-semantics: republishing the same scope is idempotent.
	r2 := NewRecorder("bench/lva/cafe")
	r2.Load(0x40, 10)
	r2.Miss(0x40, true, false)
	r2.Train(0x40, true, true, false, false, 0.05)
	Publish(r2)

	snap := TakeSnapshot()
	if len(snap.Scopes) != 1 {
		t.Fatalf("scopes = %d, want 1 (publish must replace per scope)", len(snap.Scopes))
	}
	b, err := snap.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatal("snapshot JSON roundtrip not identical")
	}
	Reset()
	if n := len(TakeSnapshot().Scopes); n != 0 {
		t.Fatalf("Reset left %d scopes", n)
	}
}

func TestSnapshotSortedByScope(t *testing.T) {
	Reset()
	defer Reset()
	for _, scope := range []string{"zeta/lva/1", "alpha/lva/2", "mid/lvp/3"} {
		r := NewRecorder(scope)
		r.Load(0x40, 1)
		Publish(r)
	}
	snap := TakeSnapshot()
	for i := 1; i < len(snap.Scopes); i++ {
		if snap.Scopes[i-1].Scope >= snap.Scopes[i].Scope {
			t.Fatalf("scopes not sorted: %q before %q", snap.Scopes[i-1].Scope, snap.Scopes[i].Scope)
		}
	}
}

func TestIdenticalRunsFinalizeIdentically(t *testing.T) {
	SetEpochWindow(7)
	defer resetWindow()
	run := func() ScopeStats {
		r := NewRecorder("det")
		for i := 0; i < 300; i++ {
			pc := uint64(0x400 + i%13*4)
			r.Load(pc, uint64(i*2))
			if i%3 == 0 {
				r.Miss(pc, i%6 == 0, i%6 != 0)
				r.Train(pc, true, i%2 == 0, false, false, float64(i%7)*0.01)
			}
		}
		return r.Finalize()
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("identical event streams must finalize identically")
	}
}

// TestConcurrentPublishSnapshot pins the registry's locking: the harness
// publishes one recorder per finished run from whichever scheduler
// goroutine ran it, concurrently with snapshot readers. Run under -race
// (ci.sh does) this is the registry's race gate.
func TestConcurrentPublishSnapshot(t *testing.T) {
	Reset()
	defer Reset()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				r := NewRecorder("bench/lva/" + strconv.Itoa(g))
				r.Load(uint64(0x400+g), uint64(i))
				r.Train(uint64(0x400+g), true, true, false, false, 0.25)
				Publish(r)
				if len(TakeSnapshot().Scopes) == 0 {
					t.Error("snapshot empty while publishing")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	snap := TakeSnapshot()
	if len(snap.Scopes) != 8 {
		t.Fatalf("scopes = %d, want 8 (one per goroutine, republication idempotent)", len(snap.Scopes))
	}
}
