package lint

import (
	"go/types"
	"strings"

	"lva/internal/lint/flow"
)

// mapiterAnalyzer is the interprocedural successor to detfloat's narrow
// float-accumulation rule: it taints every value whose *order* derives
// from ranging over a Go map (or from whichever case wins a multi-case
// select) and reports when such a value reaches an ordering-sensitive
// sink — figure rendering, hashing, a Snapshot/Publish call — without
// passing through a recognized sort barrier first. Byte-identical output
// at any parallelism is the repo's core guarantee; an unsorted map-range
// feeding a figure writer is precisely the bug class that breaks it one
// run in twenty.
//
// The analysis is flow-assisted (see lva/internal/lint/flow): helpers that
// return map-ordered slices, forward a parameter to a sink, or sort their
// argument in place are summarized, so the source, the sink and the sort
// may live in three different functions and the verdict is still exact.
// Sort barriers are the sort package, the slices package's Sort* family,
// and any summarized intra-repo function that passes its parameter into
// one of those.
//
// Test files are exempt, as is anything acknowledged with //lint:ignore.
var mapiterAnalyzer = &Analyzer{
	Name:       "mapiter",
	Doc:        "map-iteration-ordered values must pass a sort barrier before reaching rendering, hashing, Snapshot/Publish or other ordering-sensitive sinks",
	RunProgram: runMapiter,
}

// mapiterSinkNames are callee names treated as ordering-sensitive
// regardless of package: the repo's publication seams plus the formatted
// writers figures render through.
var mapiterSinkNames = map[string]string{
	"Snapshot":      "a deterministic snapshot",
	"TakeSnapshot":  "a deterministic snapshot",
	"Publish":       "a published result",
	"AddRow":        "a figure table row",
	"NewTable":      "a figure table",
	"Fprintf":       "formatted output",
	"Fprintln":      "formatted output",
	"Fprint":        "formatted output",
	"WriteString":   "rendered output",
	"Marshal":       "an encoded snapshot",
	"MarshalIndent": "an encoded snapshot",
	"Encode":        "an encoded snapshot",
}

// mapiterHashPkgs are package-path prefixes whose calls are hashing sinks:
// feeding map-ordered bytes to a hash makes golden-figure hashes flap.
var mapiterHashPkgs = []string{"hash", "crypto"}

// mapiterIsSink classifies a resolved callee.
func mapiterIsSink(callee *types.Func) (string, bool) {
	if pkg := callee.Pkg(); pkg != nil {
		for _, prefix := range mapiterHashPkgs {
			if pkg.Path() == prefix || strings.HasPrefix(pkg.Path(), prefix+"/") {
				return "a hash (" + pkg.Path() + "." + callee.Name() + ")", true
			}
		}
	}
	if desc, ok := mapiterSinkNames[callee.Name()]; ok {
		return desc, true
	}
	return "", false
}

// mapiterIsBarrier recognizes in-place sorts: the sort package wholesale
// and the slices package's Sort family. Intra-repo helpers that sort a
// parameter are recognized through their flow summary instead.
func mapiterIsBarrier(callee *types.Func) bool {
	pkg := callee.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(callee.Name(), "Sort")
	}
	return false
}

func runMapiter(p *ProgramPass) {
	findings := flow.AnalyzeTaint(p.Graph, flow.TaintConfig{
		IsSink:    mapiterIsSink,
		IsBarrier: mapiterIsBarrier,
		SkipFindings: func(fn *flow.Func) bool {
			return p.InTestFile(fn.Decl.Pos())
		},
	})
	for _, f := range findings {
		p.Reportf(f.Pos, "value ordered by %s flows into %s without a sort barrier: order it (sort.Slice / slices.Sort) before it becomes output", f.Src, f.SinkDesc)
	}
}
